// Retail: the paper's Figure-1 story — one commodity flow, two views.
//
// A nationwide retailer tracks items from factories through distribution
// centers and trucks into store backrooms, shelves and checkout counters.
// The same paths are analyzed at two path abstraction levels:
//
//   - the store manager's view keeps every in-store location at full detail
//     and collapses transportation into one concept, while
//   - the transportation manager's view keeps distribution centers and
//     trucks at detail and collapses the store.
//
// The program generates a synthetic retail workload, builds one flowcube
// materializing both views, and contrasts the two flowgraphs plus the
// dwell-time summaries each manager cares about.
//
// Run with: go run ./examples/retail
package main

import (
	"fmt"
	"log"
	"math/rand"

	"flowcube"
)

func main() {
	location := flowcube.NewHierarchy("location")
	location.MustAddPath("factory", "assembly")
	location.MustAddPath("factory", "packaging")
	location.MustAddPath("transportation", "dc-east")
	location.MustAddPath("transportation", "dc-west")
	location.MustAddPath("transportation", "truck")
	location.MustAddPath("store", "backroom")
	location.MustAddPath("store", "shelf")
	location.MustAddPath("store", "checkout")

	product := flowcube.NewHierarchy("product")
	product.MustAddPath("electronics", "audio", "headphones")
	product.MustAddPath("electronics", "audio", "speakers")
	product.MustAddPath("electronics", "video", "camera")
	product.MustAddPath("clothing", "outerwear", "jacket")
	product.MustAddPath("clothing", "shoes", "tennis")

	region := flowcube.NewHierarchy("region")
	region.MustAddPath("us", "east")
	region.MustAddPath("us", "west")

	schema := flowcube.MustNewSchema(location, product, region)
	db := flowcube.NewDB(schema)
	generateRetail(db, location, product, region, 5000)

	// The two Figure-1 views as location cuts.
	storeView, err := flowcube.CutByNames(location,
		"factory", "transportation", "backroom", "shelf", "checkout")
	if err != nil {
		log.Fatal(err)
	}
	transportView, err := flowcube.CutByNames(location,
		"factory", "dc-east", "dc-west", "truck", "store")
	if err != nil {
		log.Fatal(err)
	}

	plan := flowcube.Plan{PathLevels: []flowcube.PathLevel{
		{Cut: storeView, Time: flowcube.TimeBase},     // path level 0
		{Cut: transportView, Time: flowcube.TimeBase}, // path level 1
	}}
	cube, err := flowcube.Build(db, flowcube.Config{
		MinSupport: 0.01,
		Plan:       plan,
	})
	if err != nil {
		log.Fatal(err)
	}

	apexValues := []flowcube.NodeID{flowcube.RootConcept, flowcube.RootConcept}
	storeCell, _ := cube.Cell(flowcube.CuboidSpec{Item: flowcube.ItemLevel{0, 0}, PathLevel: 0}, apexValues)
	transportCell, _ := cube.Cell(flowcube.CuboidSpec{Item: flowcube.ItemLevel{0, 0}, PathLevel: 1}, apexValues)

	fmt.Println("=== Store manager's view (transportation collapsed) ===")
	fmt.Print(storeCell.Graph)
	fmt.Println("\n=== Transportation manager's view (store collapsed) ===")
	fmt.Print(transportCell.Graph)

	// The store manager asks: how long do items sit on the shelf, by
	// product category?
	fmt.Println("\n=== Mean shelf dwell by product category (store view) ===")
	for _, cat := range []string{"electronics", "clothing"} {
		spec := flowcube.CuboidSpec{Item: flowcube.ItemLevel{1, 0}, PathLevel: 0}
		cell, ok := cube.Cell(spec, []flowcube.NodeID{product.MustLookup(cat), flowcube.RootConcept})
		if !ok {
			continue
		}
		shelf := findNode(cell.Graph.Root(), location.MustLookup("shelf"))
		if shelf != nil {
			fmt.Printf("%-12s %6.2f time units (%d items)\n", cat, shelf.Durations.Mean(), shelf.Count)
		}
	}

	// The transportation manager asks: which distribution center is
	// slower, and does it differ by region?
	fmt.Println("\n=== Mean DC dwell by region (transportation view) ===")
	for _, reg := range []string{"east", "west"} {
		spec := flowcube.CuboidSpec{Item: flowcube.ItemLevel{0, 2}, PathLevel: 1}
		cell, ok := cube.Cell(spec, []flowcube.NodeID{flowcube.RootConcept, region.MustLookup(reg)})
		if !ok {
			continue
		}
		for _, dc := range []string{"dc-east", "dc-west"} {
			if n := findNode(cell.Graph.Root(), location.MustLookup(dc)); n != nil {
				fmt.Printf("region %-6s %-8s %6.2f time units (%d items)\n",
					reg, dc, n.Durations.Mean(), n.Count)
			}
		}
	}

	// Both views summarize the same paths: the path counts agree.
	fmt.Printf("\nboth views summarize %d = %d paths\n", storeCell.Count, transportCell.Count)

	// Intro question 3: contrast this year's flows with last year's. Last
	// year the east DC cleared freight as fast as the west one; Contrast
	// pinpoints where behaviour shifted.
	lastYear := flowcube.NewDB(schema)
	generateRetailBaseline(lastYear, location, product, region, 5000)
	var currentPaths, baselinePaths []flowcube.Path
	for _, r := range db.Records {
		currentPaths = append(currentPaths, r.Path)
	}
	for _, r := range lastYear.Records {
		baselinePaths = append(baselinePaths, r.Path)
	}
	level := flowcube.PathLevel{Cut: transportView, Time: flowcube.TimeBase}
	cur := flowcube.BuildFlowgraph(location, level, currentPaths)
	base := flowcube.BuildFlowgraph(location, level, baselinePaths)

	fmt.Println("\n=== Year-over-year contrast (transportation view) ===")
	for _, d := range flowcube.Contrast(cur, base, 3) {
		names := make([]string, len(d.Prefix))
		for i, l := range d.Prefix {
			names[i] = location.Name(l)
		}
		fmt.Printf("at %v: mean stay %+.1f units (reach %.0f%%, duration deviation %.2f)\n",
			names, d.DurationShift, 100*d.CurrentReach, d.DurationDeviation)
	}
}

// generateRetailBaseline synthesizes last year's flows: identical to this
// year's except the east DC was as fast as the west one.
func generateRetailBaseline(db *flowcube.DB, location, product, region *flowcube.Hierarchy, n int) {
	rng := rand.New(rand.NewSource(8))
	products := []string{"headphones", "speakers", "camera", "jacket", "tennis"}
	loc := func(name string) flowcube.NodeID { return location.MustLookup(name) }
	for i := 0; i < n; i++ {
		prod := products[rng.Intn(len(products))]
		reg, dc := "east", "dc-east"
		if rng.Intn(2) == 0 {
			reg, dc = "west", "dc-west"
		}
		shelfDwell := 2 + rng.Int63n(3)
		if prod == "headphones" || prod == "speakers" || prod == "camera" {
			shelfDwell = 5 + rng.Int63n(5)
		}
		db.MustAppend(flowcube.Record{
			Dims: []flowcube.NodeID{product.MustLookup(prod), region.MustLookup(reg)},
			Path: flowcube.Path{
				{Location: loc("assembly"), Duration: 1 + rng.Int63n(2)},
				{Location: loc("packaging"), Duration: 1},
				{Location: loc(dc), Duration: 1 + rng.Int63n(2)}, // both DCs fast
				{Location: loc("truck"), Duration: 1 + rng.Int63n(2)},
				{Location: loc("backroom"), Duration: 1 + rng.Int63n(3)},
				{Location: loc("shelf"), Duration: shelfDwell},
				{Location: loc("checkout"), Duration: 0},
			},
		})
	}
}

// findNode locates the first node with the given location in a depth-first
// walk; flows here visit each location at most once per path.
func findNode(n *flowcube.FlowNode, loc flowcube.NodeID) *flowcube.FlowNode {
	for _, c := range n.Children() {
		if c.Location == loc {
			return c
		}
		if found := findNode(c, loc); found != nil {
			return found
		}
	}
	return nil
}

// generateRetail synthesizes item movements: east-region items route
// through dc-east (slow), west through dc-west (fast); electronics dwell
// longer on shelves than clothing.
func generateRetail(db *flowcube.DB, location, product, region *flowcube.Hierarchy, n int) {
	rng := rand.New(rand.NewSource(7))
	products := []string{"headphones", "speakers", "camera", "jacket", "tennis"}
	loc := func(name string) flowcube.NodeID { return location.MustLookup(name) }
	for i := 0; i < n; i++ {
		prod := products[rng.Intn(len(products))]
		reg := "east"
		dc, dcDwell := "dc-east", 4+rng.Int63n(4) // the slow DC
		if rng.Intn(2) == 0 {
			reg = "west"
			dc, dcDwell = "dc-west", 1+rng.Int63n(2)
		}
		shelfDwell := 2 + rng.Int63n(3) // clothing
		if prod == "headphones" || prod == "speakers" || prod == "camera" {
			shelfDwell = 5 + rng.Int63n(5) // electronics linger
		}
		p := flowcube.Path{
			{Location: loc("assembly"), Duration: 1 + rng.Int63n(2)},
			{Location: loc("packaging"), Duration: 1},
			{Location: loc(dc), Duration: dcDwell},
			{Location: loc("truck"), Duration: 1 + rng.Int63n(2)},
			{Location: loc("backroom"), Duration: 1 + rng.Int63n(3)},
			{Location: loc("shelf"), Duration: shelfDwell},
		}
		// Most items sell; a few go back to the backroom first.
		if rng.Intn(10) == 0 {
			p = append(p, flowcube.Stage{Location: loc("backroom"), Duration: 1})
			p = append(p, flowcube.Stage{Location: loc("shelf"), Duration: 1 + rng.Int63n(2)})
		}
		p = append(p, flowcube.Stage{Location: loc("checkout"), Duration: 0})
		db.MustAppend(flowcube.Record{
			Dims: []flowcube.NodeID{product.MustLookup(prod), region.MustLookup(reg)},
			Path: p,
		})
	}
}
