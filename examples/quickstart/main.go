// Quickstart: the paper's running example end to end.
//
// Builds the Table-1 path database — eight items moving through factories,
// distribution centers, trucks and stores — materializes an iceberg
// flowcube over it, prints the Figure-3 flowgraph of the whole database and
// the Figure-4 flowgraph of the (outerwear, nike) cell, and lists the
// mined exceptions, including the paper's "items that stay 1 hour on the
// truck divert to the warehouse" deviation.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"flowcube"
)

func main() {
	// Concept hierarchies (paper Figures 2 and 5).
	product := flowcube.NewHierarchy("product")
	product.MustAddPath("clothing", "shoes", "tennis")
	product.MustAddPath("clothing", "shoes", "sandals")
	product.MustAddPath("clothing", "outerwear", "shirt")
	product.MustAddPath("clothing", "outerwear", "jacket")

	brand := flowcube.NewHierarchy("brand")
	brand.MustAddPath("sports", "nike")
	brand.MustAddPath("sports", "adidas")

	location := flowcube.NewHierarchy("location")
	location.MustAddPath("transportation", "d") // distribution center
	location.MustAddPath("transportation", "t") // truck
	location.MustAddPath("factory", "f")
	location.MustAddPath("store", "w") // warehouse
	location.MustAddPath("store", "b") // backroom
	location.MustAddPath("store", "s") // shelf
	location.MustAddPath("store", "c") // checkout

	schema := flowcube.MustNewSchema(location, product, brand)
	db := flowcube.NewDB(schema)

	// The eight Table-1 records.
	add := func(prod, br, path string, stages ...any) {
		_ = path
		rec := flowcube.Record{Dims: []flowcube.NodeID{
			product.MustLookup(prod), brand.MustLookup(br),
		}}
		for i := 0; i < len(stages); i += 2 {
			rec.Path = append(rec.Path, flowcube.Stage{
				Location: location.MustLookup(stages[i].(string)),
				Duration: int64(stages[i+1].(int)),
			})
		}
		db.MustAppend(rec)
	}
	add("tennis", "nike", "", "f", 10, "d", 2, "t", 1, "s", 5, "c", 0)
	add("tennis", "nike", "", "f", 5, "d", 2, "t", 1, "s", 10, "c", 0)
	add("sandals", "nike", "", "f", 10, "d", 1, "t", 2, "s", 5, "c", 0)
	add("shirt", "nike", "", "f", 10, "t", 1, "s", 5, "c", 0)
	add("jacket", "nike", "", "f", 10, "t", 2, "s", 5, "c", 1)
	add("jacket", "nike", "", "f", 10, "t", 1, "w", 5)
	add("tennis", "adidas", "", "f", 5, "d", 2, "t", 2, "s", 20)
	add("tennis", "adidas", "", "f", 5, "d", 2, "t", 3, "s", 10, "d", 5)

	// Path abstraction levels: leaf locations and the one-level-up cut,
	// each with exact durations and durations aggregated to '*'.
	leaf := flowcube.LevelCut(location, location.Depth())
	up := flowcube.LevelCut(location, 1)
	plan := flowcube.Plan{PathLevels: []flowcube.PathLevel{
		{Cut: leaf, Time: flowcube.TimeBase},
		{Cut: leaf, Time: flowcube.TimeAny},
		{Cut: up, Time: flowcube.TimeBase},
		{Cut: up, Time: flowcube.TimeAny},
	}}

	cube, err := flowcube.Build(db, flowcube.Config{
		MinCount:              2,   // iceberg δ: at least 2 paths per cell
		Epsilon:               0.1, // minimum deviation for exceptions
		Plan:                  plan,
		MineExceptions:        true,
		SingleStageExceptions: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("materialized %d cells across %d cuboids (δ=%d)\n\n",
		cube.NumCells(), len(cube.Cuboids), cube.MinCount())

	// Figure 3: the flowgraph of every path (the apex cell).
	apex := flowcube.CuboidSpec{Item: flowcube.ItemLevel{0, 0}, PathLevel: 0}
	cell, ok := cube.Cell(apex, []flowcube.NodeID{flowcube.RootConcept, flowcube.RootConcept})
	if !ok {
		log.Fatal("apex cell missing")
	}
	fmt.Println("=== Figure 3: flowgraph of the full path database ===")
	fmt.Print(cell.Graph)

	f := cell.Graph.NodeAt([]flowcube.NodeID{location.MustLookup("f")})
	fmt.Printf("\nfactory node: duration dist [%s], transition dist [%s]\n\n",
		f.Durations, f.Transitions)

	// Figure 4: the (outerwear, nike) cell.
	spec := flowcube.CuboidSpec{Item: flowcube.ItemLevel{2, 2}, PathLevel: 0}
	ow, ok := cube.Cell(spec, []flowcube.NodeID{
		product.MustLookup("outerwear"), brand.MustLookup("nike"),
	})
	if !ok {
		log.Fatal("(outerwear, nike) cell missing")
	}
	fmt.Println("=== Figure 4: flowgraph for cell (outerwear, nike) ===")
	fmt.Print(ow.Graph)

	// The paper's §3 exception: truck→warehouse is 33% in general but 50%
	// for items that stayed 1 hour at the truck.
	fmt.Println("\n=== Exceptions in (outerwear, nike) ===")
	for _, x := range ow.Graph.Exceptions() {
		fmt.Printf("at %v given %v: support=%d transitions[%s] (deviation %.2f)\n",
			prefixNames(location, x.Node), pins(location, x.Condition),
			x.Support, x.Transitions, x.TransitionDeviation)
	}

	// Roll-up inference: (sandals, nike) holds a single path — below the
	// iceberg threshold — so the query answers from an ancestor cell, and
	// the Answer carries that provenance.
	q := flowcube.Query{
		Spec: flowcube.CuboidSpec{Item: flowcube.ItemLevel{3, 2}, PathLevel: 0},
		Values: []flowcube.NodeID{
			product.MustLookup("sandals"), brand.MustLookup("nike"),
		},
	}
	a, err := cube.Answer(context.Background(), q)
	if err != nil {
		log.Fatal(err)
	}
	sandals := a.Cells[0]
	fmt.Printf("\nquery (sandals, nike): provenance=%s exact=%v, answered from cell with %d paths\n",
		sandals.Provenance, sandals.Exact, sandals.Source.Count)

	// The transportation manager's Figure-5 view: warehouse kept at
	// detail, the rest of the store collapsed.
	transport, err := flowcube.CutByNames(location, "d", "t", "w", "factory", "store")
	if err != nil {
		log.Fatal(err)
	}
	tg := flowcube.BuildFlowgraph(location, flowcube.PathLevel{Cut: transport, Time: flowcube.TimeBase}, paths(db))
	fmt.Println("\n=== Transportation view (Figure 5 cut) ===")
	fmt.Print(tg)
}

func paths(db *flowcube.DB) []flowcube.Path {
	out := make([]flowcube.Path, 0, db.Len())
	for _, r := range db.Records {
		out = append(out, r.Path)
	}
	return out
}

func prefixNames(loc *flowcube.Hierarchy, n *flowcube.FlowNode) []string {
	var out []string
	for _, id := range n.Prefix() {
		out = append(out, loc.Name(id))
	}
	return out
}

func pins(loc *flowcube.Hierarchy, ps []flowcube.StagePin) []string {
	var out []string
	for _, p := range ps {
		out = append(out, fmt.Sprintf("stage%d=%s,dur=%d", p.Depth, loc.Name(p.Location), p.Duration))
	}
	return out
}
