// Leadtime: the paper's introduction question 1, starting from raw RFID
// readings.
//
// "What are the most typical paths, with average duration at each stage,
// that shoes manufactured in China take before arriving to the L.A.
// distribution center, and list the most notable deviations from the
// typical paths that significantly increase total lead time?"
//
// This example exercises the full pipeline:
//
//  1. a raw (EPC, location, time) reading stream is synthesized — the form
//     an RFID deployment actually produces, with repeated antenna reads;
//  2. §2 cleaning sessionizes it into a path database with hour-level
//     durations;
//  3. a flowcube is built, and the (shoes, china) cell is interrogated for
//     its typical paths, per-stage mean durations, expected lead time, and
//     the exceptions that most increase it.
//
// Run with: go run ./examples/leadtime
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"flowcube"
)

const hour = 3600 // raw readings tick in seconds

func main() {
	location := flowcube.NewHierarchy("location")
	location.MustAddPath("factory", "cn-line1")
	location.MustAddPath("factory", "cn-line2")
	location.MustAddPath("transport", "ship")
	location.MustAddPath("transport", "customs")
	location.MustAddPath("dc", "la-dc")

	product := flowcube.NewHierarchy("product")
	product.MustAddPath("shoes", "tennis")
	product.MustAddPath("shoes", "sandals")
	product.MustAddPath("clothing", "jacket")

	origin := flowcube.NewHierarchy("origin")
	origin.MustAddPath("asia", "china")
	origin.MustAddPath("asia", "vietnam")

	schema := flowcube.MustNewSchema(location, product, origin)

	// 1. Synthesize the raw stream: each item is read every few minutes
	// while it sits at a location.
	readings, items := synthesizeStream(location, product, origin, 1500)
	fmt.Printf("raw stream: %d readings for %d items\n", len(readings), len(items))

	// 2. Clean into a path database at hour granularity. A 2-hour read gap
	// at one location splits the stay; sub-15-minute blips are dropped.
	db, err := flowcube.Clean(schema, readings, items, flowcube.CleanOptions{
		MaxGap:  2 * hour,
		MinStay: 900,
		Unit:    hour,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cleaned: %d paths\n\n", db.Len())

	// 3. Build the cube and query the (shoes, china) cell.
	leaf := flowcube.LevelCut(location, location.Depth())
	cube, err := flowcube.Build(db, flowcube.Config{
		MinSupport:            0.02,
		Epsilon:               0.15,
		Plan:                  flowcube.Plan{PathLevels: []flowcube.PathLevel{{Cut: leaf, Time: flowcube.TimeBase}}},
		MineExceptions:        true,
		SingleStageExceptions: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	spec := flowcube.CuboidSpec{Item: flowcube.ItemLevel{1, 2}, PathLevel: 0}
	cell, ok := cube.Cell(spec, []flowcube.NodeID{
		product.MustLookup("shoes"), origin.MustLookup("china"),
	})
	if !ok {
		log.Fatal("(shoes, china) cell missing")
	}
	g := cell.Graph
	fmt.Printf("=== (shoes, china): %d items, expected lead time %.1f h ===\n\n",
		cell.Count, g.ExpectedLeadTime())

	fmt.Println("most typical paths (probability, mean hours per stage):")
	for _, p := range g.TopPaths(3) {
		names := make([]string, len(p.Locations))
		for i, l := range p.Locations {
			names[i] = fmt.Sprintf("%s(%.1fh)", location.Name(l), p.MeanDurations[i])
		}
		fmt.Printf("  %5.1f%%  %s  — mean lead %.1f h\n",
			100*p.Prob, strings.Join(names, " → "), p.MeanLeadTime)
	}

	fmt.Println("\ndeviations that most increase lead time:")
	for i, x := range g.SlowestDeviations(3) {
		pin := x.Condition[len(x.Condition)-1]
		fmt.Printf("  %d. when %s took %d h, the stay at %v averages %.1f h vs %.1f h in general (support %d)\n",
			i+1, location.Name(pin.Location), pin.Duration,
			location.Name(x.Node.Location), x.Durations.Mean(), x.Node.Durations.Mean(), x.Support)
	}
}

// synthesizeStream emits raw readings: china-made shoes route line→ship→
// customs→la-dc; a slice of shipments hits a customs hold that also slows
// their release to the DC (the lead-time deviation the analysis finds).
func synthesizeStream(location, product, origin *flowcube.Hierarchy, n int) ([]flowcube.Reading, map[string]flowcube.TaggedItem) {
	rng := rand.New(rand.NewSource(23))
	var readings []flowcube.Reading
	items := make(map[string]flowcube.TaggedItem)
	loc := func(s string) flowcube.NodeID { return location.MustLookup(s) }

	emitStay := func(epc string, l flowcube.NodeID, start, dur int64) int64 {
		for t := start; t <= start+dur; t += 600 + rng.Int63n(600) {
			readings = append(readings, flowcube.Reading{EPC: epc, Location: l, Time: t})
		}
		return start + dur
	}

	for i := 0; i < n; i++ {
		epc := fmt.Sprintf("epc-%05d", i)
		prod := []string{"tennis", "sandals", "jacket"}[rng.Intn(3)]
		org := []string{"china", "vietnam"}[rng.Intn(2)]
		items[epc] = flowcube.TaggedItem{Dims: []flowcube.NodeID{
			product.MustLookup(prod), origin.MustLookup(org),
		}}

		line := "cn-line1"
		if rng.Intn(2) == 0 {
			line = "cn-line2"
		}
		t := int64(rng.Intn(1000)) * 60
		t = emitStay(epc, loc(line), t, (4+rng.Int63n(4))*hour)
		t = emitStay(epc, loc("ship"), t+hour/2, (20+rng.Int63n(8))*hour)

		customsDwell := (2 + rng.Int63n(2)) * hour
		dcDwell := (3 + rng.Int63n(3)) * hour
		if rng.Intn(6) == 0 {
			// Customs hold: a fixed 10-hour secondary inspection, after
			// which the held freight also queues at the DC.
			customsDwell = 10*hour + rng.Int63n(hour/2)
			dcDwell = (10 + rng.Int63n(4)) * hour
		}
		t = emitStay(epc, loc("customs"), t+hour/2, customsDwell)
		emitStay(epc, loc("la-dc"), t+hour/2, dcDwell)
	}
	return readings, items
}
