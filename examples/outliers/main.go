// Outliers: the paper's introduction questions Q1/Q2 — exception discovery
// and non-redundant drill-down.
//
// A synthetic supply chain ships milk from several farms through a quality
// control station to store shelves. Two anomalies are planted:
//
//  1. items that linger at quality control are far more likely to end at
//     the returns counter (the paper's duration/transition correlation —
//     §1 question 2), and
//  2. one producer, "farm-a", routes and dwells differently from every
//     other farm, while the rest behave identically.
//
// The flowcube surfaces both: exception mining recovers the QC-dwell →
// returns rule as a flowgraph exception, and redundancy analysis marks
// every farm's cell redundant against the all-farms parent except farm-a —
// the paper's "milk from every manufacturer has very similar flow
// patterns, except for the milk from farm A" scenario.
//
// Run with: go run ./examples/outliers
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"flowcube"
)

func main() {
	location := flowcube.NewHierarchy("location")
	location.MustAddPath("production", "farm")
	location.MustAddPath("production", "qc") // quality control
	location.MustAddPath("distribution", "dc")
	location.MustAddPath("distribution", "cold-truck")
	location.MustAddPath("retail", "shelf")
	location.MustAddPath("retail", "checkout")
	location.MustAddPath("retail", "returns")

	producer := flowcube.NewHierarchy("producer")
	farms := []string{"farm-a", "farm-b", "farm-c", "farm-d", "farm-e", "farm-f", "farm-g", "farm-h"}
	for _, f := range farms {
		producer.MustAddPath("dairy", f)
	}

	schema := flowcube.MustNewSchema(location, producer)
	db := flowcube.NewDB(schema)
	generateDairy(db, location, producer, 8000)

	leaf := flowcube.LevelCut(location, location.Depth())
	plan := flowcube.Plan{PathLevels: []flowcube.PathLevel{
		{Cut: leaf, Time: flowcube.TimeBase},
	}}
	cube, err := flowcube.Build(db, flowcube.Config{
		MinSupport:            0.01,
		Epsilon:               0.15,
		Tau:                   0.60,
		Plan:                  plan,
		MineExceptions:        true,
		SingleStageExceptions: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Q2: does time spent at quality control correlate with returns?
	apex := flowcube.CuboidSpec{Item: flowcube.ItemLevel{0}, PathLevel: 0}
	cell, ok := cube.Cell(apex, []flowcube.NodeID{flowcube.RootConcept})
	if !ok {
		log.Fatal("apex cell missing")
	}
	fmt.Println("=== Flowgraph over all producers ===")
	fmt.Print(cell.Graph)

	qc := location.MustLookup("qc")
	returns := location.MustLookup("returns")
	fmt.Println("\n=== Exceptions involving quality-control dwell ===")
	shown := 0
	for _, x := range cell.Graph.Exceptions() {
		// Single-pin conditions on a flagged QC dwell only.
		if len(x.Condition) != 1 || x.Condition[0].Location != qc || x.Condition[0].Duration < 5 {
			continue
		}
		base := baseReturnsProb(x.Node, returns)
		cond := x.Transitions.Prob(int64(returns))
		if cond == 0 && base == 0 {
			continue
		}
		fmt.Printf("given %d units at QC: P(→returns) = %.2f at %v (in general %.2f), support %d\n",
			x.Condition[0].Duration, cond, names(location, x.Node), base, x.Support)
		shown++
		if shown >= 6 {
			break
		}
	}
	if shown == 0 {
		fmt.Println("(no QC exceptions above ε — increase the planted effect)")
	}

	// Non-redundant analysis: which producers deviate from the norm?
	fmt.Println("\n=== Per-producer redundancy against the all-producers cell ===")
	spec := flowcube.CuboidSpec{Item: flowcube.ItemLevel{2}, PathLevel: 0}
	type row struct {
		farm string
		sim  float64
		red  bool
	}
	var rows []row
	for _, f := range farms {
		c, ok := cube.Cell(spec, []flowcube.NodeID{producer.MustLookup(f)})
		if !ok {
			continue
		}
		rows = append(rows, row{f, c.Similarity, c.Redundant})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].sim < rows[j].sim })
	for _, r := range rows {
		verdict := "redundant (inferable from parent)"
		if !r.red {
			verdict = "NON-REDUNDANT — drill down here"
		}
		fmt.Printf("%-8s similarity=%.3f  %s\n", r.farm, r.sim, verdict)
	}

	// Drill down on the outlier.
	fmt.Println("\n=== Drill-down: farm-a's flowgraph ===")
	if c, ok := cube.Cell(spec, []flowcube.NodeID{producer.MustLookup("farm-a")}); ok {
		fmt.Print(c.Graph)
	}
}

func baseReturnsProb(n *flowcube.FlowNode, returns flowcube.NodeID) float64 {
	return n.Transitions.Prob(int64(returns))
}

func names(loc *flowcube.Hierarchy, n *flowcube.FlowNode) []string {
	var out []string
	for _, id := range n.Prefix() {
		out = append(out, loc.Name(id))
	}
	return out
}

// generateDairy plants the two anomalies described in the package comment.
func generateDairy(db *flowcube.DB, location, producer *flowcube.Hierarchy, n int) {
	rng := rand.New(rand.NewSource(11))
	loc := func(name string) flowcube.NodeID { return location.MustLookup(name) }
	farms := []string{"farm-a", "farm-b", "farm-c", "farm-d", "farm-e", "farm-f", "farm-g", "farm-h"}
	for i := 0; i < n; i++ {
		farm := farms[rng.Intn(len(farms))]

		qcDwell := 1 + rng.Int63n(3) // normal QC pass: 1-3 units
		if rng.Intn(5) == 0 {
			qcDwell = 5 + rng.Int63n(3) // flagged batch: 5-7 units
		}
		// Planted correlation: long QC dwell quadruples the return rate.
		returnProb := 0.05
		if qcDwell >= 5 {
			returnProb = 0.45
		}

		p := flowcube.Path{
			{Location: loc("farm"), Duration: 1 + rng.Int63n(2)},
			{Location: loc("qc"), Duration: qcDwell},
		}
		if farm == "farm-a" {
			// The outlier producer: skips the distribution center, ships
			// directly by cold truck, and dwells long on the shelf.
			p = append(p, flowcube.Stage{Location: loc("cold-truck"), Duration: 3 + rng.Int63n(2)})
			p = append(p, flowcube.Stage{Location: loc("shelf"), Duration: 6 + rng.Int63n(4)})
		} else {
			p = append(p, flowcube.Stage{Location: loc("dc"), Duration: 1 + rng.Int63n(2)})
			p = append(p, flowcube.Stage{Location: loc("cold-truck"), Duration: 1})
			p = append(p, flowcube.Stage{Location: loc("shelf"), Duration: 2 + rng.Int63n(3)})
		}
		p = append(p, flowcube.Stage{Location: loc("checkout"), Duration: 0})
		if rng.Float64() < returnProb {
			p = append(p, flowcube.Stage{Location: loc("returns"), Duration: 1})
		}
		db.MustAppend(flowcube.Record{
			Dims: []flowcube.NodeID{producer.MustLookup(farm)},
			Path: p,
		})
	}
}
