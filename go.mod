module flowcube

go 1.22
