package main

import (
	"os"
	"strings"
	"testing"

	"flowcube/internal/lint"
)

func TestListAnalyzers(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(-list) = %d, stderr: %s", code, stderr.String())
	}
	for _, a := range lint.All() {
		if !strings.Contains(stdout.String(), a.Name) {
			t.Errorf("-list output missing analyzer %s:\n%s", a.Name, stdout.String())
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-only", "nope"}, &stdout, &stderr); code != 2 {
		t.Fatalf("run(-only nope) = %d, want 2", code)
	}
}

// TestFindingsExitCode points the checker at a seeded-bad testdata package
// and expects exit status 1 with findings on stdout.
func TestFindingsExitCode(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-only", "errpath", "../../internal/lint/testdata/src/errpath"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("run over seeded-bad package = %d, want 1\nstdout: %s\nstderr: %s",
			code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "[errpath]") {
		t.Errorf("findings missing [errpath] tag:\n%s", stdout.String())
	}
}

// TestRepoIsClean runs the full analyzer suite over the whole module, so
// `go test ./...` enforces flowlint cleanliness alongside `make lint`.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is slow")
	}
	root, _, err := lint.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(root); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(cwd); err != nil {
			t.Error(err)
		}
	}()
	pkgs, err := lint.Load([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range lint.Run(pkgs, lint.All()) {
		t.Errorf("%s", f)
	}
}
