package main

import (
	"os"
	"os/exec"
	"strings"
	"testing"

	"flowcube/internal/lint"
)

func TestListAnalyzers(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(-list) = %d, stderr: %s", code, stderr.String())
	}
	for _, a := range lint.All() {
		if !strings.Contains(stdout.String(), a.Name) {
			t.Errorf("-list output missing analyzer %s:\n%s", a.Name, stdout.String())
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-only", "nope"}, &stdout, &stderr); code != 2 {
		t.Fatalf("run(-only nope) = %d, want 2", code)
	}
}

// TestFindingsExitCode points the checker at a seeded-bad testdata package
// and expects exit status 1 with findings on stdout.
func TestFindingsExitCode(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-only", "errpath", "../../internal/lint/testdata/src/errpath"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("run over seeded-bad package = %d, want 1\nstdout: %s\nstderr: %s",
			code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "[errpath]") {
		t.Errorf("findings missing [errpath] tag:\n%s", stdout.String())
	}
}

// TestRepoIsClean runs the full analyzer suite over the whole module, so
// `go test ./...` enforces flowlint cleanliness alongside `make lint`.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is slow")
	}
	root, _, err := lint.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(root); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(cwd); err != nil {
			t.Error(err)
		}
	}()
	pkgs, err := lint.Load([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range lint.Run(pkgs, lint.All()) {
		t.Errorf("%s", f)
	}
}

// TestLoadMatchesGoList pins the loader's package discovery to the go
// command's: every package `go list` reports with non-test Go files —
// cmd/* included — must be loaded by Load("./..."), and nothing else. A
// drift here means TestRepoIsClean is silently skipping packages.
func TestLoadMatchesGoList(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is slow")
	}
	root, _, err := lint.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(root); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(cwd); err != nil {
			t.Error(err)
		}
	}()

	out, err := exec.Command("go", "list", "-f", "{{if .GoFiles}}{{.ImportPath}}{{end}}", "./...").Output()
	if err != nil {
		t.Fatalf("go list: %v", err)
	}
	want := make(map[string]bool)
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		if line != "" {
			want[line] = true
		}
	}

	pkgs, err := lint.Load([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]bool, len(pkgs))
	for _, p := range pkgs {
		got[p.PkgPath] = true
		if !want[p.PkgPath] {
			t.Errorf("Load(./...) loaded %s, which go list does not report", p.PkgPath)
		}
	}
	for path := range want {
		if !got[path] {
			t.Errorf("Load(./...) missed %s (reported by go list)", path)
		}
	}
	if !got["flowcube/cmd/flowlint"] || !got["flowcube/cmd/flowserve"] {
		t.Error("Load(./...) must cover the cmd/* packages")
	}
}

// TestDeterministicOutput runs the checker twice over the same seeded-bad
// fixture and requires byte-identical findings and fact dumps — `make
// lint` output must not depend on map iteration or scheduling.
func TestDeterministicOutput(t *testing.T) {
	args := []string{"-only", "errpath,floatcmp",
		"../../internal/lint/testdata/src/errpath",
		"../../internal/lint/testdata/src/floatcmp"}
	var first string
	for i := 0; i < 2; i++ {
		var stdout, stderr strings.Builder
		if code := run(args, &stdout, &stderr); code != 1 {
			t.Fatalf("run #%d = %d, want 1\nstderr: %s", i, code, stderr.String())
		}
		if i == 0 {
			first = stdout.String()
		} else if stdout.String() != first {
			t.Errorf("findings differ between identical runs:\n--- run 0\n%s--- run 1\n%s", first, stdout.String())
		}
	}

	var facts string
	for i := 0; i < 2; i++ {
		var stdout, stderr strings.Builder
		if code := run([]string{"-facts", "../../internal/lint/testdata/src/errpath"}, &stdout, &stderr); code != 0 {
			t.Fatalf("run(-facts) #%d = %d\nstderr: %s", i, code, stderr.String())
		}
		if i == 0 {
			facts = stdout.String()
			if facts == "" {
				t.Fatal("-facts printed nothing")
			}
		} else if stdout.String() != facts {
			t.Errorf("fact table differs between identical runs:\n--- run 0\n%s--- run 1\n%s", facts, stdout.String())
		}
	}
}
