// Command flowlint is the project's static-analysis multichecker: five
// analyzers that machine-check the contracts the flowcube codebase relies
// on but the compiler cannot see — cube immutability after build
// (immutcube), byte-deterministic encodings (mapdet), serving-layer lock
// discipline (locksafe), epsilon-safe float comparisons (floatcmp), and
// surfaced errors on persistence paths (errpath).
//
// Usage:
//
//	flowlint [-only name,name] [package pattern ...]
//
// Patterns are directory patterns relative to the working directory
// (./..., ./internal/core, ./cmd/...); the default is ./... over the
// enclosing module. The exit status is 1 when any finding is reported,
// 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"flowcube/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("flowlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: flowlint [-only name,name] [package pattern ...]\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.All()
	if *only != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a := byName[strings.TrimSpace(name)]
			if a == nil {
				fmt.Fprintf(stderr, "flowlint: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(patterns)
	if err != nil {
		fmt.Fprintf(stderr, "flowlint: %v\n", err)
		return 2
	}
	if len(pkgs) == 0 {
		// A typo'd pattern must not read as "no findings" in CI.
		fmt.Fprintf(stderr, "flowlint: no Go packages match %s\n", strings.Join(patterns, " "))
		return 2
	}
	findings := lint.Run(pkgs, analyzers)
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "flowlint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		return 1
	}
	return 0
}
