// Command flowlint is the project's static-analysis multichecker: ten
// analyzers that machine-check the contracts the flowcube codebase relies
// on but the compiler cannot see. Five are single-package — cube
// immutability after build (immutcube), byte-deterministic encodings
// (mapdet), serving-layer lock discipline (locksafe), epsilon-safe float
// comparisons (floatcmp), surfaced errors on persistence paths (errpath) —
// and five run over cross-package facts computed in a first phase over
// every loaded package: leak-prone goroutine spawns (goroleak), context
// plumbing on blocking exported surfaces (ctxflow), unclosed HTTP response
// bodies (bodyclose), locks held across interprocedurally blocking calls
// (lockblock), and nondeterminism reaching the byte-deterministic snapshot
// codec (detrand).
//
// Usage:
//
//	flowlint [-only name,name] [-stats] [-facts] [package pattern ...]
//
// Patterns are directory patterns relative to the working directory
// (./..., ./internal/core, ./cmd/...); the default is ./... over the
// enclosing module. Cross-package facts cover exactly the loaded packages,
// so narrowing the pattern narrows what the fact-driven analyzers can see —
// CI always runs the full module. -stats prints per-analyzer finding counts
// and wall time to stderr; -facts dumps the phase-1 fact table instead of
// running phase 2. The exit status is 1 when any finding is reported, 2 on
// usage or load errors, and a failure names the offending analyzers.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"flowcube/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("flowlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	stats := fs.Bool("stats", false, "print per-analyzer finding counts and wall time to stderr")
	facts := fs.Bool("facts", false, "dump the phase-1 cross-package fact table and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: flowlint [-only name,name] [-stats] [-facts] [package pattern ...]\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.All()
	if *only != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a := byName[strings.TrimSpace(name)]
			if a == nil {
				fmt.Fprintf(stderr, "flowlint: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(patterns)
	if err != nil {
		fmt.Fprintf(stderr, "flowlint: %v\n", err)
		return 2
	}
	if len(pkgs) == 0 {
		// A typo'd pattern must not read as "no findings" in CI.
		fmt.Fprintf(stderr, "flowlint: no Go packages match %s\n", strings.Join(patterns, " "))
		return 2
	}
	table := lint.ComputeFacts(pkgs)
	if *facts {
		fmt.Fprint(stdout, lint.FormatFacts(table))
		return 0
	}
	findings, perAnalyzer := lint.RunStats(pkgs, analyzers, table)
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if *stats {
		for _, s := range perAnalyzer {
			fmt.Fprintf(stderr, "flowlint: %-10s %3d finding(s) %8.1fms\n",
				s.Name, s.Findings, float64(s.Elapsed.Microseconds())/1e3)
		}
	}
	if len(findings) > 0 {
		var offending []string
		for _, s := range perAnalyzer {
			if s.Findings > 0 {
				offending = append(offending, s.Name)
			}
		}
		fmt.Fprintf(stderr, "flowlint: %d finding(s) in %d package(s) from %s\n",
			len(findings), len(pkgs), strings.Join(offending, ", "))
		return 1
	}
	return 0
}
