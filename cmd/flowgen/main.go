// Command flowgen generates synthetic RFID path databases with the paper's
// §6.1 generator and writes them in the self-describing text format that
// flowquery consumes.
//
// Usage:
//
//	flowgen -n 100000 -d 5 -sequences 50 -out paths.fdb
//	flowgen -n 10000 -fanouts 2,2,5 -dim-skew 1.2 > paths.fdb
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"flowcube/internal/datagen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "flowgen: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("flowgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	def := datagen.Default()
	n := fs.Int("n", def.NumPaths, "number of paths to generate")
	d := fs.Int("d", def.NumDims, "number of path-independent dimensions")
	fanouts := fs.String("fanouts", join(def.DimFanouts[:]), "distinct values per dimension level (3 comma-separated ints)")
	locFanouts := fs.String("loc-fanouts", join(def.LocFanouts[:]), "location hierarchy fanouts (2 comma-separated ints)")
	sequences := fs.Int("sequences", def.NumSequences, "distinct valid location sequences (path density)")
	seqLen := fs.String("seqlen", fmt.Sprintf("%d,%d", def.SeqLenMin, def.SeqLenMax), "min,max sequence length")
	durations := fs.Int("durations", def.DurationDomain, "distinct stage durations")
	dimSkew := fs.Float64("dim-skew", def.DimSkew, "Zipf skew for dimension values")
	seqSkew := fs.Float64("seq-skew", def.SeqSkew, "Zipf skew for sequence selection")
	durSkew := fs.Float64("dur-skew", def.DurationSkew, "Zipf skew for durations")
	seed := fs.Int64("seed", def.Seed, "generator seed")
	out := fs.String("out", "-", "output file ('-' for stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := datagen.Config{
		Seed:           *seed,
		NumPaths:       *n,
		NumDims:        *d,
		DimSkew:        *dimSkew,
		NumSequences:   *sequences,
		SeqSkew:        *seqSkew,
		DurationDomain: *durations,
		DurationSkew:   *durSkew,
	}
	if err := parseInts(*fanouts, cfg.DimFanouts[:]); err != nil {
		return fmt.Errorf("-fanouts: %w", err)
	}
	if err := parseInts(*locFanouts, cfg.LocFanouts[:]); err != nil {
		return fmt.Errorf("-loc-fanouts: %w", err)
	}
	var lens [2]int
	if err := parseInts(*seqLen, lens[:]); err != nil {
		return fmt.Errorf("-seqlen: %w", err)
	}
	cfg.SeqLenMin, cfg.SeqLenMax = lens[0], lens[1]

	ds, err := datagen.Generate(cfg)
	if err != nil {
		return err
	}

	w := stdout
	var f *os.File
	if *out != "-" {
		f, err = os.Create(*out)
		if err != nil {
			return err
		}
		w = f
	}
	written, err := ds.WriteTo(w)
	if err != nil {
		return err
	}
	if f != nil {
		if err := f.Close(); err != nil {
			return err
		}
	}
	fmt.Fprintf(stderr, "flowgen: wrote %d paths (%d bytes)\n", ds.DB.Len(), written)
	return nil
}

func join(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, ",")
}

func parseInts(s string, dst []int) error {
	parts := strings.Split(s, ",")
	if len(parts) != len(dst) {
		return fmt.Errorf("want %d comma-separated ints, got %q", len(dst), s)
	}
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return fmt.Errorf("bad int %q", p)
		}
		dst[i] = v
	}
	return nil
}
