package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"flowcube/internal/datagen"
)

func TestRunToStdout(t *testing.T) {
	var out, errw bytes.Buffer
	err := run([]string{"-n", "50", "-d", "2", "-sequences", "5"}, &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := datagen.Read(&out)
	if err != nil {
		t.Fatalf("output not readable: %v", err)
	}
	if ds.DB.Len() != 50 {
		t.Errorf("generated %d paths, want 50", ds.DB.Len())
	}
	if !strings.Contains(errw.String(), "wrote 50 paths") {
		t.Errorf("status line missing: %q", errw.String())
	}
}

func TestRunToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "paths.fdb")
	var out, errw bytes.Buffer
	if err := run([]string{"-n", "20", "-out", path}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("file mode wrote to stdout")
	}
}

func TestRunBadFlags(t *testing.T) {
	cases := [][]string{
		{"-fanouts", "1,2"},   // wrong arity
		{"-fanouts", "a,b,c"}, // not ints
		{"-seqlen", "9"},      // wrong arity
		{"-loc-fanouts", "1"}, // wrong arity
		{"-n", "0"},           // generator rejects
		{"-nosuchflag"},       // flag error
	}
	for _, args := range cases {
		var out, errw bytes.Buffer
		if err := run(args, &out, &errw); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestDeterministicOutput(t *testing.T) {
	var a, b, errw bytes.Buffer
	if err := run([]string{"-n", "30", "-seed", "9"}, &a, &errw); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-n", "30", "-seed", "9"}, &b, &errw); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("same seed produced different files")
	}
}
