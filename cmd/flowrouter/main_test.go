package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"flowcube/internal/cluster"
	"flowcube/internal/core"
	"flowcube/internal/datagen"
	"flowcube/internal/server"
)

// lockedBuffer lets the test read stderr while run() is still writing logs.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenRE = regexp.MustCompile(`listening on (http://[^\s]+)`)

// clusterCube builds the shared test cube once; it is immutable after.
var cubeOnce sync.Once
var clusterCube *core.Cube
var clusterCubeErr error

// newCluster saves a small cube, splits it across two in-process shard
// servers, and returns the snapshot path plus the shard URLs.
func newCluster(t *testing.T) (string, []string) {
	t.Helper()
	cubeOnce.Do(func() {
		cfg := datagen.Default()
		cfg.NumPaths = 300
		cfg.NumDims = 2
		cfg.NumSequences = 10
		cfg.SeqLenMin, cfg.SeqLenMax = 3, 4
		cfg.DurationDomain = 3
		ds := datagen.MustGenerate(cfg)
		clusterCube, clusterCubeErr = core.Build(ds.DB, core.Config{MinCount: 3, Plan: ds.DefaultPlan()})
	})
	if clusterCubeErr != nil {
		t.Fatal(clusterCubeErr)
	}
	cube := clusterCube
	path := filepath.Join(t.TempDir(), "cube.fcb")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := cube.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	parts, err := cluster.Split(cube, 2)
	if err != nil {
		t.Fatal(err)
	}
	urls := make([]string, len(parts))
	for i, part := range parts {
		srv, err := server.New(func() (*core.Cube, server.LoadInfo, error) {
			return part, server.LoadInfo{}, nil
		}, "test", server.Config{Logger: log.New(io.Discard, "", 0)})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	return path, urls
}

// startRouter runs flowrouter on an ephemeral port and returns its base URL
// plus a shutdown function that cancels the serve context (the SIGINT path)
// and returns run's error.
func startRouter(t *testing.T, args ...string) (string, func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var stderr lockedBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, append(args, "-addr", "127.0.0.1:0"), io.Discard, &stderr)
	}()

	deadline := time.Now().Add(30 * time.Second)
	for {
		if m := listenRE.FindStringSubmatch(stderr.String()); m != nil {
			return m[1], func() error {
				cancel()
				return <-done
			}
		}
		select {
		case err := <-done:
			cancel()
			t.Fatalf("router exited before listening: %v\nstderr: %s", err, stderr.String())
		default:
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("router did not listen in time\nstderr: %s", stderr.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRouterEndToEnd(t *testing.T) {
	metaPath, urls := newCluster(t)
	base, shutdown := startRouter(t,
		"-meta", metaPath,
		"-shards", strings.Join(urls, ","),
		"-source", "e2e",
		"-quiet")

	resp, err := http.Get(base + "/v1/summary")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("summary status %d: %s", resp.StatusCode, body)
	}
	var sum map[string]any
	if err := json.Unmarshal(body, &sum); err != nil {
		t.Fatalf("bad summary JSON: %v\n%s", err, body)
	}
	if sum["source"] != "e2e" {
		t.Errorf("summary source = %v, want e2e", sum["source"])
	}
	if sum["cells"].(float64) <= 0 {
		t.Errorf("summary cells = %v, want > 0", sum["cells"])
	}

	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if cerr := resp.Body.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d, want 200", resp.StatusCode)
	}

	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestRouterValidationFailure(t *testing.T) {
	metaPath, _ := newCluster(t)
	// A shard that answers the census scatter with garbage must be rejected
	// at startup, before the router ever listens.
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "not a flowcube shard", http.StatusNotFound)
	}))
	defer bad.Close()
	err := run(context.Background(),
		[]string{"-meta", metaPath, "-shards", bad.URL, "-addr", "127.0.0.1:0", "-quiet"},
		io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "shard") {
		t.Fatalf("run with a non-shard backend = %v, want validation error", err)
	}
}

func TestRouterFlagErrors(t *testing.T) {
	metaPath, _ := newCluster(t)
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{}, "-meta is required"},
		{[]string{"-meta", metaPath}, "-shards is required"},
		{[]string{"-meta", filepath.Join(t.TempDir(), "missing.fcb"), "-shards", "http://127.0.0.1:1"}, "no such file"},
	} {
		err := run(context.Background(), tc.args, io.Discard, io.Discard)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%v) = %v, want error containing %q", tc.args, err, tc.want)
		}
	}
}
