// Command flowrouter is the stateless query router for a sharded flowcube
// cluster. It loads only the snapshot preamble of the unsplit cube (the
// hierarchies, plan, and thresholds — no cells), validates at startup that
// every shard serves a split of that snapshot, and then routes: cell
// queries go to the owning shard with a roll-up scatter fallback, summary
// and exception queries scatter-gather with per-shard timeouts and partial
// degradation, and appends fan to every shard all-or-nothing. Responses
// are byte-identical to a single flowserve over the unsplit cube.
//
// Usage:
//
//	flowshard -in cube.fcb -shards 2 -out shards/
//	flowserve -in shards/shard-0-of-2.fcb -db paths.fdb -shard 0/2 -addr :8081 &
//	flowserve -in shards/shard-1-of-2.fcb -db paths.fdb -shard 1/2 -addr :8082 &
//	flowrouter -meta cube.fcb -shards http://localhost:8081,http://localhost:8082 -addr :8080
//
//	curl 'localhost:8080/v1/cell?cell=d0=d0.1,d1=*&pathlevel=0'
//	curl 'localhost:8080/v1/summary'
//	curl 'localhost:8080/v1/exceptions?k=10'
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"flowcube/internal/cluster"
	"flowcube/internal/core"
	"flowcube/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "flowrouter: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("flowrouter", flag.ContinueOnError)
	fs.SetOutput(stderr)
	meta := fs.String("meta", "", "the unsplit cube snapshot; only its preamble is loaded (required)")
	shards := fs.String("shards", "", "comma-separated shard base URLs, in split order (required)")
	addr := fs.String("addr", ":8080", "listen address")
	timeout := fs.Duration("timeout", server.DefaultRequestTimeout, "per-request timeout")
	shardTimeout := fs.Duration("shard-timeout", cluster.DefaultShardTimeout, "per-shard timeout for scatter-gather reads")
	source := fs.String("source", "", `"source" reported in responses (default: the -meta path)`)
	quiet := fs.Bool("quiet", false, "suppress per-request logging")
	skipValidate := fs.Bool("skip-validate", false, "skip the startup shard-census validation (testing only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *meta == "" {
		fs.Usage()
		return fmt.Errorf("-meta is required")
	}
	shardURLs := splitURLs(*shards)
	if len(shardURLs) == 0 {
		fs.Usage()
		return fmt.Errorf("-shards is required")
	}

	f, err := os.Open(*meta)
	if err != nil {
		return err
	}
	metaCube, err := core.LoadMeta(f)
	_ = f.Close() // read-only; close errors carry no information
	if err != nil {
		return fmt.Errorf("load meta %s: %w", *meta, err)
	}

	logger := log.New(stderr, "flowrouter: ", log.LstdFlags)
	if *quiet {
		logger = log.New(io.Discard, "", 0)
	}
	if *source == "" {
		*source = *meta
	}
	rt, err := cluster.NewRouter(metaCube, shardURLs, cluster.RouterConfig{
		Source:         *source,
		RequestTimeout: *timeout,
		ShardTimeout:   *shardTimeout,
		Logger:         logger,
	})
	if err != nil {
		return err
	}

	if !*skipValidate {
		start := time.Now()
		vctx, cancel := context.WithTimeout(ctx, *shardTimeout+time.Second)
		err := rt.Validate(vctx)
		cancel()
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "flowrouter: %d shards validated in %s\n",
			len(shardURLs), time.Since(start).Round(time.Millisecond))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The address line goes to stderr unconditionally so scripts (and the
	// e2e test) can discover a :0 port.
	fmt.Fprintf(stderr, "flowrouter: listening on http://%s\n", ln.Addr())
	return rt.Serve(ctx, ln)
}

// splitURLs parses the comma-separated -shards value, dropping empties so a
// trailing comma is harmless.
func splitURLs(s string) []string {
	var out []string
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimSpace(u); u != "" {
			out = append(out, u)
		}
	}
	return out
}
