// Command flowserve is a long-lived HTTP/JSON query server over a
// materialized flowcube. It loads a cube snapshot saved by flowquery -save
// (or builds one from a flowgen path database at startup) and answers
// concurrent read traffic: flowgraph cell queries with roll-up inference,
// cube summaries, ranked exceptions, health and metrics. POST /admin/reload
// re-reads the input file and atomically swaps the serving snapshot, so a
// rebuilt cube can be rolled forward without dropping traffic; SIGINT or
// SIGTERM drains in-flight requests and exits.
//
// Usage:
//
//	flowgen -n 20000 -out paths.fdb
//	flowquery -in paths.fdb -save cube.fcb
//	flowserve -in cube.fcb -addr :8080
//	flowserve -in cube.fcb -lazy                       # mmap, decode on touch
//	flowserve -in paths.fdb -minsup 0.01 -exceptions   # build at startup
//	flowserve -in paths.fdb -wal ingest.wal            # durable appends
//
//	curl 'localhost:8080/v1/cell?cell=d0=d0.1,d1=*&pathlevel=0'
//	curl 'localhost:8080/v1/cell?cell=d0=d0.1&format=dot'
//	curl 'localhost:8080/v1/summary'
//	curl 'localhost:8080/v1/exceptions?k=10'
//	curl 'localhost:8080/metrics'
//	curl -X POST 'localhost:8080/admin/reload'
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"flowcube/internal/cluster"
	"flowcube/internal/core"
	"flowcube/internal/server"
)

// parseShard parses an "i/N" cluster position, e.g. "0/4".
func parseShard(spec string) (index, total int, err error) {
	i, n, ok := strings.Cut(spec, "/")
	if ok {
		var ei, en error
		index, ei = strconv.Atoi(i)
		total, en = strconv.Atoi(n)
		if ei == nil && en == nil {
			return index, total, nil
		}
	}
	return 0, 0, fmt.Errorf("bad -shard %q, want index/total (e.g. 0/4)", spec)
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "flowserve: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("flowserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "input file: a cube saved by flowquery -save, or a flowgen path database (required)")
	db := fs.String("db", "", "path database backing /admin/append when -in is a saved cube (shard servers: the replicated full database)")
	shardSpec := fs.String("shard", "", "serve as shard i/N of a cluster split (e.g. 0/4): appends keep only cells this shard owns")
	addr := fs.String("addr", ":8080", "listen address")
	minsup := fs.Float64("minsup", 0.01, "iceberg minimum support δ (when building from a path database)")
	epsilon := fs.Float64("epsilon", 0.1, "minimum deviation ε for exceptions (when building)")
	tau := fs.Float64("tau", 0, "similarity threshold τ, 0 disables redundancy marking (when building)")
	exceptions := fs.Bool("exceptions", false, "mine flowgraph exceptions (when building)")
	workers := fs.Int("workers", 0, "goroutines for flowgraph construction (when building; 0 = sequential)")
	lazy := fs.Bool("lazy", false, "mmap v2 cube snapshots and decode sections on first touch (cold open in milliseconds, bounded RSS)")
	lazyCache := fs.Int64("lazy-cache", 0, "decoded-section LRU budget in bytes for -lazy (0 = default 64 MiB, negative = unbounded)")
	timeout := fs.Duration("timeout", server.DefaultRequestTimeout, "per-request timeout")
	cacheSize := fs.Int("cache", server.DefaultCacheSize, "response cache entries (negative disables)")
	wal := fs.String("wal", "", "write-ahead log path: journal append batches before folding and replay them on startup (empty disables durability)")
	group := fs.Int("group", 0, "max append requests coalesced per commit group (0 = default 64, 1 = serialize appends)")
	quiet := fs.Bool("quiet", false, "suppress per-request logging")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		fs.Usage()
		return fmt.Errorf("-in is required")
	}

	logger := log.New(stderr, "flowserve: ", log.LstdFlags)
	if *quiet {
		logger = log.New(io.Discard, "", 0)
	}
	loader := server.FileLoader(*in, server.BuildOptions{
		MinSupport:     *minsup,
		Epsilon:        *epsilon,
		Tau:            *tau,
		MineExceptions: *exceptions,
		Workers:        *workers,
		Lazy:           *lazy,
		LazyCacheBytes: *lazyCache,
	})
	if *db != "" {
		loader = server.WithDatabase(loader, *db)
	}
	var postAppend func(*core.Cube) *core.Cube
	if *shardSpec != "" {
		index, total, err := parseShard(*shardSpec)
		if err != nil {
			return err
		}
		postAppend, err = cluster.ShardFilter(index, total)
		if err != nil {
			return err
		}
	}

	start := time.Now()
	srv, err := server.New(loader, *in, server.Config{
		RequestTimeout: *timeout,
		CacheSize:      *cacheSize,
		Logger:         logger,
		PostAppend:     postAppend,
		WALPath:        *wal,
		GroupLimit:     *group,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "flowserve: snapshot ready in %s: %d cells from %s\n",
		time.Since(start).Round(time.Millisecond), srv.Snapshot().Cube.NumCells(), *in)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The address line goes to stderr unconditionally so scripts (and the
	// e2e test) can discover a :0 port.
	fmt.Fprintf(stderr, "flowserve: listening on http://%s\n", ln.Addr())
	return srv.Serve(ctx, ln)
}
