package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"flowcube/internal/core"
	"flowcube/internal/datagen"
)

// writeDataset writes a small flowgen dataset for the e2e tests.
func writeDataset(t *testing.T) (string, *datagen.Dataset) {
	t.Helper()
	cfg := datagen.Default()
	cfg.NumPaths = 300
	cfg.NumDims = 2
	cfg.NumSequences = 10
	cfg.SeqLenMin, cfg.SeqLenMax = 3, 4
	cfg.DurationDomain = 3
	ds := datagen.MustGenerate(cfg)
	path := filepath.Join(t.TempDir(), "paths.fdb")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, ds
}

// lockedBuffer lets the test read stderr while run() is still writing logs.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenRE = regexp.MustCompile(`listening on (http://[^\s]+)`)

// startServer runs flowserve against args on an ephemeral port and returns
// its base URL plus a shutdown function that cancels the serve context (the
// same path SIGINT/SIGTERM take through signal.NotifyContext) and returns
// run's error.
func startServer(t *testing.T, args ...string) (string, func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var stderr lockedBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, append(args, "-addr", "127.0.0.1:0"), io.Discard, &stderr)
	}()

	deadline := time.Now().Add(30 * time.Second)
	for {
		if m := listenRE.FindStringSubmatch(stderr.String()); m != nil {
			return m[1], func() error {
				cancel()
				select {
				case err := <-done:
					return err
				case <-time.After(10 * time.Second):
					t.Fatal("flowserve did not shut down")
					return nil
				}
			}
		}
		select {
		case err := <-done:
			cancel()
			t.Fatalf("flowserve exited early: %v\nstderr: %s", err, stderr.String())
		case <-time.After(10 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("flowserve never listened\nstderr: %s", stderr.String())
		}
	}
}

func getJSON(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if strings.HasPrefix(resp.Header.Get("Content-Type"), "application/json") {
		if err := json.Unmarshal(body, &m); err != nil {
			t.Fatalf("GET %s: bad JSON %v\n%s", url, err, body)
		}
	}
	return resp.StatusCode, m
}

func TestFlagValidation(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run(context.Background(), nil, &out, &errw); err == nil {
		t.Fatal("run without -in succeeded")
	}
	if err := run(context.Background(), []string{"-in", "/does/not/exist"}, &out, &errw); err == nil {
		t.Fatal("run with a missing input succeeded")
	}
}

// TestEndToEnd drives the full acceptance flow: build from a generated
// .fdb, answer exact and rolled-up cell queries matching the library's own
// QueryGraph output, reload, and shut down gracefully.
func TestEndToEnd(t *testing.T) {
	path, ds := writeDataset(t)
	base, shutdown := startServer(t, "-in", path, "-minsup", "0.05", "-quiet")

	status, health := getJSON(t, base+"/healthz")
	if status != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("healthz: %d %v", status, health)
	}

	// The served answers must match a cube built directly with the same
	// parameters (the flowquery path).
	cube, err := core.Build(ds.DB, core.Config{MinSupport: 0.05, Plan: ds.DefaultPlan()})
	if err != nil {
		t.Fatal(err)
	}
	if int(health["cells"].(float64)) != cube.NumCells() {
		t.Errorf("served cells = %v, reference build has %d", health["cells"], cube.NumCells())
	}

	// Exact apex query as DOT: byte-identical to the library's rendering.
	spec := "d0=*,d1=*"
	resp, err := http.Get(base + "/v1/cell?cell=" + spec + "&format=dot")
	if err != nil {
		t.Fatal(err)
	}
	dot, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	il, values, err := core.ParseCellSpec(ds.Schema, spec)
	if err != nil {
		t.Fatal(err)
	}
	g, _, exact, ok := cube.QueryGraph(core.CuboidSpec{Item: il, PathLevel: 0}, values)
	if !ok || !exact {
		t.Fatal("reference apex query failed")
	}
	if string(dot) != g.DOT(spec) {
		t.Errorf("served DOT differs from reference build")
	}

	// A concrete leaf-level cell: JSON answer, exact or rolled up, with the
	// graph paths matching the source count.
	leaf := ds.Schema.Dims[0].Leaves()[0]
	cellSpec := fmt.Sprintf("d0=%s", ds.Schema.Dims[0].Name(leaf))
	status, body := getJSON(t, base+"/v1/cell?cell="+cellSpec)
	if status != http.StatusOK {
		t.Fatalf("cell query: %d %v", status, body)
	}
	src := body["source"].(map[string]any)
	graph := body["graph"].(map[string]any)
	if src["count"].(float64) != graph["paths"].(float64) {
		t.Errorf("source count %v != graph paths %v", src["count"], graph["paths"])
	}

	// Hot reload while queries continue.
	var wg sync.WaitGroup
	stopQueries := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stopQueries:
				return
			default:
			}
			resp, err := http.Get(base + "/v1/cell?cell=" + spec)
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	reload, err := http.Post(base+"/admin/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, reload.Body)
	reload.Body.Close()
	if reload.StatusCode != http.StatusOK {
		t.Errorf("reload: status %d", reload.StatusCode)
	}
	close(stopQueries)
	wg.Wait()

	status, metricsBody := getJSON(t, base+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics: %d", status)
	}
	if metricsBody["reloads"].(float64) != 1 {
		t.Errorf("reloads = %v, want 1", metricsBody["reloads"])
	}

	if err := shutdown(); err != nil {
		t.Errorf("graceful shutdown returned %v", err)
	}
}

// TestServeSavedCube exercises the flowquery -save → flowserve flow: the
// snapshot file format is sniffed, not taken from the extension.
func TestServeSavedCube(t *testing.T) {
	_, ds := writeDataset(t)
	cube, err := core.Build(ds.DB, core.Config{MinSupport: 0.05, Plan: ds.DefaultPlan()})
	if err != nil {
		t.Fatal(err)
	}
	saved := filepath.Join(t.TempDir(), "cube.fcb")
	f, err := os.Create(saved)
	if err != nil {
		t.Fatal(err)
	}
	if err := cube.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	base, shutdown := startServer(t, "-in", saved, "-quiet")
	status, summary := getJSON(t, base+"/v1/summary")
	if status != http.StatusOK {
		t.Fatalf("summary: %d", status)
	}
	if int(summary["cells"].(float64)) != cube.NumCells() {
		t.Errorf("served cells = %v, saved cube has %d", summary["cells"], cube.NumCells())
	}
	if err := shutdown(); err != nil {
		t.Errorf("graceful shutdown returned %v", err)
	}
}
