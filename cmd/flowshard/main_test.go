package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"

	"flowcube/internal/core"
	"flowcube/internal/datagen"
)

// writeCube builds a small cube and saves it where flowshard can load it.
// The build is cached: both tests read the same immutable fixture.
var cubeOnce sync.Once
var cubeFixture *core.Cube
var cubeErr error

func writeCube(t *testing.T) (string, *core.Cube) {
	t.Helper()
	cubeOnce.Do(func() {
		cfg := datagen.Default()
		cfg.NumPaths = 300
		cfg.NumDims = 2
		cfg.NumSequences = 10
		cfg.SeqLenMin, cfg.SeqLenMax = 3, 4
		cfg.DurationDomain = 3
		ds := datagen.MustGenerate(cfg)
		cubeFixture, cubeErr = core.Build(ds.DB, core.Config{
			MinCount:              3,
			Epsilon:               0.1,
			Plan:                  ds.DefaultPlan(),
			MineExceptions:        true,
			SingleStageExceptions: true,
			Workers:               runtime.GOMAXPROCS(0),
		})
	})
	if cubeErr != nil {
		t.Fatal(cubeErr)
	}
	path := filepath.Join(t.TempDir(), "cube.fcb")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := cubeFixture.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, cubeFixture
}

func TestSplitAndVerify(t *testing.T) {
	cubePath, cube := writeCube(t)
	outDir := filepath.Join(t.TempDir(), "shards")

	var stdout, stderr bytes.Buffer
	err := run([]string{"-in", cubePath, "-shards", "3", "-out", outDir, "-verify"}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	var rep summary
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("bad summary JSON: %v\n%s", err, stdout.String())
	}
	if rep.Shards != 3 || !rep.Verified {
		t.Fatalf("summary = %+v, want 3 verified shards", rep)
	}
	if rep.Cells != cube.NumCells() {
		t.Errorf("summary cells = %d, cube has %d", rep.Cells, cube.NumCells())
	}
	if len(rep.Files) != 3 {
		t.Fatalf("summary lists %d files, want 3", len(rep.Files))
	}

	// The written shards are complete snapshots: loadable, disjoint, and
	// exhaustive.
	total := 0
	for i, path := range rep.Files {
		if want := filepath.Join(outDir, "shard-"+string(rune('0'+i))+"-of-3.fcb"); path != want {
			t.Errorf("files[%d] = %s, want %s", i, path, want)
		}
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		part, err := core.Load(f)
		if cerr := f.Close(); cerr != nil {
			t.Fatal(cerr)
		}
		if err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
		total += part.NumCells()
	}
	if total != cube.NumCells() {
		t.Errorf("shards hold %d cells total, input has %d", total, cube.NumCells())
	}
}

func TestFlagErrors(t *testing.T) {
	cubePath, _ := writeCube(t)
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{}, "-in is required"},
		{[]string{"-in", cubePath, "-shards", "0"}, "shard count"},
		{[]string{"-in", filepath.Join(t.TempDir(), "missing.fcb")}, "no such file"},
	} {
		err := run(tc.args, io.Discard, io.Discard)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%v) = %v, want error containing %q", tc.args, err, tc.want)
		}
	}
}
