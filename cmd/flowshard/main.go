// Command flowshard splits a saved flowcube into per-shard snapshots for a
// sharded cluster. Each output is a complete, independently servable cube
// snapshot holding the subset of cells the shard owns under rendezvous
// hashing (internal/cluster); hierarchies and the aggregation plan are
// replicated into every shard. The split is exhaustive and disjoint:
// merging the shards back reproduces the input cube byte-for-byte, which
// -verify checks before reporting success.
//
// Usage:
//
//	flowquery -in paths.fdb -save cube.fcb
//	flowshard -in cube.fcb -shards 4 -out shards/
//	flowserve -in shards/shard-0-of-4.fcb -db paths.fdb -shard 0/4 -addr :8081
//	flowrouter -meta cube.fcb -shards http://localhost:8081,... -addr :8080
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"flowcube/internal/cluster"
	"flowcube/internal/core"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "flowshard: %v\n", err)
		os.Exit(1)
	}
}

// summary is the JSON report printed to stdout on success.
type summary struct {
	Input    string   `json:"input"`
	Shards   int      `json:"shards"`
	Cells    int      `json:"cells"`
	Files    []string `json:"files"`
	Verified bool     `json:"verified"`
	SplitMS  float64  `json:"split_ms"`
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("flowshard", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "input cube saved by flowquery -save (required)")
	shards := fs.Int("shards", 2, "number of shards to split into")
	out := fs.String("out", "shards", "output directory for shard-i-of-N.fcb files")
	workers := fs.Int("workers", 0, "goroutines per shard snapshot encode (0 = sequential)")
	verify := fs.Bool("verify", false, "merge the written shards back and check the save digest matches the input cube")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		fs.Usage()
		return fmt.Errorf("-in is required")
	}

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	cube, err := core.Load(f)
	_ = f.Close() // read-only; close errors carry no information
	if err != nil {
		return fmt.Errorf("load %s: %w", *in, err)
	}

	start := time.Now()
	files, err := cluster.WriteShards(cube, *shards, *out, *workers)
	if err != nil {
		return err
	}
	rep := summary{
		Input:   *in,
		Shards:  *shards,
		Cells:   cube.NumCells(),
		Files:   files,
		SplitMS: float64(time.Since(start).Nanoseconds()) / 1e6,
	}

	if *verify {
		parts := make([]*core.Cube, len(files))
		for i, path := range files {
			sf, err := os.Open(path)
			if err != nil {
				return err
			}
			parts[i], err = core.Load(sf)
			_ = sf.Close() // read-only; close errors carry no information
			if err != nil {
				return fmt.Errorf("verify: load %s: %w", path, err)
			}
		}
		merged, err := cluster.Merge(parts)
		if err != nil {
			return fmt.Errorf("verify: merge: %w", err)
		}
		var want, got bytes.Buffer
		if err := cube.Save(&want); err != nil {
			return fmt.Errorf("verify: save input: %w", err)
		}
		if err := merged.Save(&got); err != nil {
			return fmt.Errorf("verify: save merged: %w", err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			return fmt.Errorf("verify: merged shards differ from input (%d vs %d bytes)", got.Len(), want.Len())
		}
		rep.Verified = true
	}

	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
