// Command flowquery materializes a flowcube over a generated path database
// and inspects it: cube summaries, per-cell flowgraphs (answered through
// the OLAP algebra — roll-up, drill-down, slice, dice, and exact query-time
// reconstruction of non-materialized cells), exceptions, and Graphviz
// output. Cubes can be serialized with -save and reopened with -load,
// skipping the build.
//
// Usage:
//
//	flowgen -n 20000 -out paths.fdb
//	flowquery -in paths.fdb -summary
//	flowquery -in paths.fdb -cell 'd0=d0.1,d1=*' -pathlevel 0
//	flowquery -in paths.fdb -cell 'd0=d0.1' -op rollup -dim d0
//	flowquery -in paths.fdb -op slice -select 'd1=d1.2'
//	flowquery -in paths.fdb -cell 'd0=d0.1.0.2' -exceptions
//	flowquery -in paths.fdb -cell 'd0=*' -dot > apex.dot
//	flowquery -in paths.fdb -save cube.fcb
//	flowquery -in paths.fdb -load cube.fcb -summary
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/url"
	"os"
	"sort"
	"strconv"

	"flowcube/internal/core"
	"flowcube/internal/datagen"
	"flowcube/internal/hierarchy"
	"flowcube/internal/olap"
	"flowcube/internal/pathdb"
	"flowcube/internal/pdfa"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "flowquery: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("flowquery", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "dataset file written by flowgen (required)")
	minsup := fs.Float64("minsup", 0.01, "iceberg minimum support δ")
	epsilon := fs.Float64("epsilon", 0.1, "minimum deviation ε for exceptions")
	tau := fs.Float64("tau", 0, "similarity threshold τ (0 disables redundancy marking)")
	exceptions := fs.Bool("exceptions", false, "mine and print flowgraph exceptions")
	summary := fs.Bool("summary", false, "print cube summary statistics")
	cellSpec := fs.String("cell", "", "cell to query: comma-separated dim=concept pairs ('*' for aggregated)")
	op := fs.String("op", "cell", "OLAP operation: cell|rollup|drilldown|slice|dice")
	dim := fs.String("dim", "", "dimension name -op rollup/drilldown moves along")
	sel := fs.String("select", "", "slice/dice selectors: comma-separated dim=concept pairs")
	maxCells := fs.Int("max", 0, "cap multi-cell results (0 = default)")
	pathLevel := fs.Int("pathlevel", 0, "path abstraction level index (0-3)")
	dot := fs.Bool("dot", false, "emit the queried cell's flowgraph as Graphviz dot")
	pdfaAlpha := fs.Float64("pdfa", -1, "also learn and print an ALERGIA PDFA over the whole database at this alpha (0 = no merging)")
	top := fs.Int("top", 0, "list the N largest cells of the queried cuboid")
	workers := fs.Int("workers", 1, "goroutines for flowgraph construction and exception mining")
	saveCube := fs.String("save", "", "serialize the materialized cube to this file")
	loadCube := fs.String("load", "", "load a cube serialized with -save instead of building")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *in == "" {
		fs.Usage()
		return fmt.Errorf("-in is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	ds, err := datagen.Read(f)
	_ = f.Close() // read-only; any close error is irrelevant next to Read's
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "loaded %d paths, %d dimensions\n", ds.DB.Len(), len(ds.Schema.Dims))

	var cube *core.Cube
	if *loadCube != "" {
		cf, err := os.Open(*loadCube)
		if err != nil {
			return err
		}
		cube, err = core.Load(cf)
		_ = cf.Close() // read-only; any close error is irrelevant next to Load's
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "loaded cube: %d cells\n", cube.NumCells())
	} else {
		cube, err = core.Build(ds.DB, core.Config{
			MinSupport:            *minsup,
			Epsilon:               *epsilon,
			Tau:                   *tau,
			Plan:                  ds.DefaultPlan(),
			MineExceptions:        *exceptions,
			SingleStageExceptions: *exceptions,
			Workers:               *workers,
		})
		if err != nil {
			return err
		}
	}
	if *saveCube != "" {
		cf, err := os.Create(*saveCube)
		if err != nil {
			return err
		}
		if err := cube.Save(cf); err != nil {
			_ = cf.Close() // the Save error is the one worth reporting
			return err
		}
		if err := cf.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "saved cube to %s\n", *saveCube)
	}

	queried := *cellSpec != "" || *sel != ""
	if *summary || !queried {
		printSummary(stdout, cube)
	}
	if *pdfaAlpha >= 0 {
		var paths []pathdb.Path
		for _, r := range ds.DB.Records {
			paths = append(paths, r.Path)
		}
		a, err := pdfa.Learn(paths, pdfa.Options{Alpha: *pdfaAlpha})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "PDFA over %d paths (alpha=%g):\n%s", len(paths), *pdfaAlpha, a.String(ds.Schema.Location))
	}
	if queried {
		return queryCell(stdout, stderr, cube, ds, queryOpts{
			op: *op, cell: *cellSpec, dim: *dim, sel: *sel,
			pathLevel: *pathLevel, maxCells: *maxCells,
			dot: *dot, exceptions: *exceptions, top: *top,
		})
	}
	return nil
}

func printSummary(w io.Writer, cube *core.Cube) {
	fmt.Fprintf(w, "flowcube: %d cuboids, %d cells, δ=%d paths\n",
		len(cube.Cuboids), cube.NumCells(), cube.MinCount())
	type row struct {
		key   string
		cells int
	}
	var rows []row
	for k, cb := range cube.Cuboids {
		if len(cb.Cells) > 0 {
			rows = append(rows, row{k, len(cb.Cells)})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].cells != rows[j].cells {
			return rows[i].cells > rows[j].cells
		}
		return rows[i].key < rows[j].key
	})
	fmt.Fprintln(w, "largest cuboids (item-levels@path-level: cells):")
	for i, r := range rows {
		if i >= 10 {
			break
		}
		fmt.Fprintf(w, "  %-16s %6d\n", r.key, r.cells)
	}
	if cube.Mining != nil {
		total := 0
		for _, l := range cube.Mining.Levels {
			total += l.Frequent
		}
		fmt.Fprintf(w, "mining: %d scans, %d frequent patterns, longest %d\n",
			cube.Mining.Scans, total, cube.Mining.MaxLen())
	}
}

// queryOpts carries the query-shaped flags into queryCell.
type queryOpts struct {
	op, cell, dim, sel  string
	pathLevel, maxCells int
	dot, exceptions     bool
	top                 int
}

func queryCell(stdout, stderr io.Writer, cube *core.Cube, ds *datagen.Dataset, o queryOpts) error {
	// The CLI shares /v2/query's parser so both surfaces name cells, ops,
	// and selectors identically.
	params := url.Values{}
	params.Set("op", o.op)
	params.Set("cell", o.cell)
	params.Set("pathlevel", strconv.Itoa(o.pathLevel))
	if o.dim != "" {
		params.Set("dim", o.dim)
	}
	if o.sel != "" {
		params.Set("select", o.sel)
	}
	if o.maxCells > 0 {
		params.Set("max", strconv.Itoa(o.maxCells))
	}
	q, err := olap.ParseQuery(cube, params)
	if err != nil {
		return err
	}

	if o.top > 0 {
		cb := cube.Cuboid(q.Spec)
		if cb == nil {
			return fmt.Errorf("cuboid %s not materialized", q.Spec.Key())
		}
		cells := cb.SortedCells()
		sort.SliceStable(cells, func(i, j int) bool { return cells[i].Count > cells[j].Count })
		fmt.Fprintf(stdout, "top cells of cuboid %s:\n", q.Spec.Key())
		for i, c := range cells {
			if i >= o.top {
				break
			}
			fmt.Fprintf(stdout, "  %v: %d paths\n", cellNames(ds, c.Values), c.Count)
		}
		return nil
	}

	a, err := cube.Answer(context.Background(), q)
	if err != nil {
		if errors.Is(err, core.ErrCellNotFound) {
			return fmt.Errorf("no materialized cell answers %q (even by roll-up)", o.cell)
		}
		return err
	}
	if len(a.Cells) == 0 {
		return fmt.Errorf("op %s matched no answerable cells (%d skipped)", q.Op, a.Skipped)
	}
	if a.Truncated || a.Skipped > 0 {
		fmt.Fprintf(stderr, "op %s: %d cells answered, %d skipped, truncated=%v\n",
			q.Op, len(a.Cells), a.Skipped, a.Truncated)
	}
	for _, ca := range a.Cells {
		cellName := core.FormatCell(ds.Schema, ca.Values)
		switch ca.Provenance {
		case core.AncestorFallback:
			fmt.Fprintf(stderr, "cell below iceberg threshold; answered from ancestor %v (%d paths)\n",
				cellNames(ds, ca.Source.Values), ca.Source.Count)
		case core.ComputedFromDescendants:
			fmt.Fprintf(stderr, "cuboid %s not materialized; cell %s reconstructed exactly by folding %d descendant cells\n",
				ca.Spec.Key(), cellName, len(ca.Folded))
		}
		if o.dot {
			// Graphviz output is one document; emit the first answered cell.
			fmt.Fprint(stdout, ca.Graph.DOT(cellName))
			return nil
		}
		if len(a.Cells) > 1 {
			fmt.Fprintf(stdout, "cell %s (%s, %d paths):\n", cellName, ca.Provenance, ca.Source.Count)
		}
		fmt.Fprint(stdout, ca.Graph)
		if o.exceptions {
			g := ca.Graph
			fmt.Fprintf(stdout, "%d exceptions:\n", len(g.Exceptions()))
			for i, x := range g.Exceptions() {
				if i >= 20 {
					fmt.Fprintf(stdout, "  ... and %d more\n", len(g.Exceptions())-20)
					break
				}
				fmt.Fprintf(stdout, "  node %v cond %v support=%d devT=%.2f devD=%.2f\n",
					prefixNames(ds, x.Node.Prefix()), x.Condition, x.Support,
					x.TransitionDeviation, x.DurationDeviation)
			}
		}
	}
	return nil
}

func cellNames(ds *datagen.Dataset, values []hierarchy.NodeID) []string {
	out := make([]string, len(values))
	for i, v := range values {
		out[i] = ds.Schema.Dims[i].Name(v)
	}
	return out
}

func prefixNames(ds *datagen.Dataset, prefix []hierarchy.NodeID) []string {
	out := make([]string, len(prefix))
	for i, v := range prefix {
		out[i] = ds.Schema.Location.Name(v)
	}
	return out
}
