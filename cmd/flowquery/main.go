// Command flowquery materializes a flowcube over a generated path database
// and inspects it: cube summaries, per-cell flowgraphs (with roll-up
// inference for missing cells), exceptions, and Graphviz output. Cubes can
// be serialized with -save and reopened with -load, skipping the build.
//
// Usage:
//
//	flowgen -n 20000 -out paths.fdb
//	flowquery -in paths.fdb -summary
//	flowquery -in paths.fdb -cell 'd0=d0.1,d1=*' -pathlevel 0
//	flowquery -in paths.fdb -cell 'd0=d0.1.0.2' -exceptions
//	flowquery -in paths.fdb -cell 'd0=*' -dot > apex.dot
//	flowquery -in paths.fdb -save cube.fcb
//	flowquery -in paths.fdb -load cube.fcb -summary
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"flowcube/internal/core"
	"flowcube/internal/datagen"
	"flowcube/internal/hierarchy"
	"flowcube/internal/pathdb"
	"flowcube/internal/pdfa"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "flowquery: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("flowquery", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "dataset file written by flowgen (required)")
	minsup := fs.Float64("minsup", 0.01, "iceberg minimum support δ")
	epsilon := fs.Float64("epsilon", 0.1, "minimum deviation ε for exceptions")
	tau := fs.Float64("tau", 0, "similarity threshold τ (0 disables redundancy marking)")
	exceptions := fs.Bool("exceptions", false, "mine and print flowgraph exceptions")
	summary := fs.Bool("summary", false, "print cube summary statistics")
	cellSpec := fs.String("cell", "", "cell to query: comma-separated dim=concept pairs ('*' for aggregated)")
	pathLevel := fs.Int("pathlevel", 0, "path abstraction level index (0-3)")
	dot := fs.Bool("dot", false, "emit the queried cell's flowgraph as Graphviz dot")
	pdfaAlpha := fs.Float64("pdfa", -1, "also learn and print an ALERGIA PDFA over the whole database at this alpha (0 = no merging)")
	top := fs.Int("top", 0, "list the N largest cells of the queried cuboid")
	workers := fs.Int("workers", 1, "goroutines for flowgraph construction and exception mining")
	saveCube := fs.String("save", "", "serialize the materialized cube to this file")
	loadCube := fs.String("load", "", "load a cube serialized with -save instead of building")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *in == "" {
		fs.Usage()
		return fmt.Errorf("-in is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	ds, err := datagen.Read(f)
	_ = f.Close() // read-only; any close error is irrelevant next to Read's
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "loaded %d paths, %d dimensions\n", ds.DB.Len(), len(ds.Schema.Dims))

	var cube *core.Cube
	if *loadCube != "" {
		cf, err := os.Open(*loadCube)
		if err != nil {
			return err
		}
		cube, err = core.Load(cf)
		_ = cf.Close() // read-only; any close error is irrelevant next to Load's
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "loaded cube: %d cells\n", cube.NumCells())
	} else {
		cube, err = core.Build(ds.DB, core.Config{
			MinSupport:            *minsup,
			Epsilon:               *epsilon,
			Tau:                   *tau,
			Plan:                  ds.DefaultPlan(),
			MineExceptions:        *exceptions,
			SingleStageExceptions: *exceptions,
			Workers:               *workers,
		})
		if err != nil {
			return err
		}
	}
	if *saveCube != "" {
		cf, err := os.Create(*saveCube)
		if err != nil {
			return err
		}
		if err := cube.Save(cf); err != nil {
			_ = cf.Close() // the Save error is the one worth reporting
			return err
		}
		if err := cf.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "saved cube to %s\n", *saveCube)
	}

	if *summary || *cellSpec == "" {
		printSummary(stdout, cube)
	}
	if *pdfaAlpha >= 0 {
		var paths []pathdb.Path
		for _, r := range ds.DB.Records {
			paths = append(paths, r.Path)
		}
		a, err := pdfa.Learn(paths, pdfa.Options{Alpha: *pdfaAlpha})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "PDFA over %d paths (alpha=%g):\n%s", len(paths), *pdfaAlpha, a.String(ds.Schema.Location))
	}
	if *cellSpec != "" {
		return queryCell(stdout, stderr, cube, ds, *cellSpec, *pathLevel, *dot, *exceptions, *top)
	}
	return nil
}

func printSummary(w io.Writer, cube *core.Cube) {
	fmt.Fprintf(w, "flowcube: %d cuboids, %d cells, δ=%d paths\n",
		len(cube.Cuboids), cube.NumCells(), cube.MinCount())
	type row struct {
		key   string
		cells int
	}
	var rows []row
	for k, cb := range cube.Cuboids {
		if len(cb.Cells) > 0 {
			rows = append(rows, row{k, len(cb.Cells)})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].cells != rows[j].cells {
			return rows[i].cells > rows[j].cells
		}
		return rows[i].key < rows[j].key
	})
	fmt.Fprintln(w, "largest cuboids (item-levels@path-level: cells):")
	for i, r := range rows {
		if i >= 10 {
			break
		}
		fmt.Fprintf(w, "  %-16s %6d\n", r.key, r.cells)
	}
	if cube.Mining != nil {
		total := 0
		for _, l := range cube.Mining.Levels {
			total += l.Frequent
		}
		fmt.Fprintf(w, "mining: %d scans, %d frequent patterns, longest %d\n",
			cube.Mining.Scans, total, cube.Mining.MaxLen())
	}
}

func queryCell(stdout, stderr io.Writer, cube *core.Cube, ds *datagen.Dataset, spec string, pathLevel int, dot, exceptions bool, top int) error {
	il, values, err := core.ParseCellSpec(ds.Schema, spec)
	if err != nil {
		return fmt.Errorf("-cell: %w", err)
	}
	cs := core.CuboidSpec{Item: il, PathLevel: pathLevel}

	if top > 0 {
		cb := cube.Cuboid(cs)
		if cb == nil {
			return fmt.Errorf("cuboid %s not materialized", cs.Key())
		}
		cells := cb.SortedCells()
		sort.SliceStable(cells, func(i, j int) bool { return cells[i].Count > cells[j].Count })
		fmt.Fprintf(stdout, "top cells of cuboid %s:\n", cs.Key())
		for i, c := range cells {
			if i >= top {
				break
			}
			fmt.Fprintf(stdout, "  %v: %d paths\n", cellNames(ds, c.Values), c.Count)
		}
		return nil
	}

	g, src, exact, ok := cube.QueryGraph(cs, values)
	if !ok {
		return fmt.Errorf("no materialized cell answers %q (even by roll-up)", spec)
	}
	if !exact {
		fmt.Fprintf(stderr, "cell below iceberg threshold; answered from ancestor %v (%d paths)\n",
			cellNames(ds, src.Values), src.Count)
	}
	if dot {
		fmt.Fprint(stdout, g.DOT(spec))
		return nil
	}
	fmt.Fprint(stdout, g)
	if exceptions {
		fmt.Fprintf(stdout, "%d exceptions:\n", len(g.Exceptions()))
		for i, x := range g.Exceptions() {
			if i >= 20 {
				fmt.Fprintf(stdout, "  ... and %d more\n", len(g.Exceptions())-20)
				break
			}
			fmt.Fprintf(stdout, "  node %v cond %v support=%d devT=%.2f devD=%.2f\n",
				prefixNames(ds, x.Node.Prefix()), x.Condition, x.Support,
				x.TransitionDeviation, x.DurationDeviation)
		}
	}
	return nil
}

func cellNames(ds *datagen.Dataset, values []hierarchy.NodeID) []string {
	out := make([]string, len(values))
	for i, v := range values {
		out[i] = ds.Schema.Dims[i].Name(v)
	}
	return out
}

func prefixNames(ds *datagen.Dataset, prefix []hierarchy.NodeID) []string {
	out := make([]string, len(prefix))
	for i, v := range prefix {
		out[i] = ds.Schema.Location.Name(v)
	}
	return out
}
