package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"flowcube/internal/datagen"
)

// writeDataset writes a small dataset file for the CLI tests.
func writeDataset(t *testing.T) string {
	t.Helper()
	cfg := datagen.Default()
	cfg.NumPaths = 300
	cfg.NumDims = 2
	cfg.NumSequences = 10
	cfg.SeqLenMin, cfg.SeqLenMax = 3, 4
	cfg.DurationDomain = 3
	ds := datagen.MustGenerate(cfg)
	path := filepath.Join(t.TempDir(), "paths.fdb")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSummary(t *testing.T) {
	path := writeDataset(t)
	var out, errw bytes.Buffer
	if err := run([]string{"-in", path, "-minsup", "0.05", "-summary"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"flowcube:", "largest cuboids", "mining:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("summary missing %q:\n%s", want, out.String())
		}
	}
}

func TestCellQueryAndDot(t *testing.T) {
	path := writeDataset(t)
	var out, errw bytes.Buffer
	if err := run([]string{"-in", path, "-minsup", "0.05", "-cell", "d0=*,d1=*"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "flowgraph (300 paths") {
		t.Errorf("apex query output unexpected:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-in", path, "-minsup", "0.05", "-cell", "d0=*", "-dot"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "digraph") {
		t.Errorf("dot output unexpected:\n%.80s", out.String())
	}
}

func TestOLAPOps(t *testing.T) {
	path := writeDataset(t)

	// A roll-up from a level-1 cell along d0 lands on the apex cell, which
	// holds all 300 paths.
	var out, errw bytes.Buffer
	if err := run([]string{"-in", path, "-minsup", "0.05", "-cell", "d0=d0.0", "-op", "rollup", "-dim", "d0"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "flowgraph (300 paths") {
		t.Errorf("rollup output unexpected:\n%s", out.String())
	}

	// A slice over the (d0, d1) cuboid enumerates every answerable cell
	// pinning d0=d0.0, each headed by its name.
	out.Reset()
	errw.Reset()
	if err := run([]string{"-in", path, "-minsup", "0.01", "-op", "slice", "-select", "d0=d0.0", "-cell", "d1=d1.0"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if strings.Count(out.String(), "cell d0=d0.0") < 2 {
		t.Errorf("slice output lists fewer than 2 cells:\n%s\nstderr: %s", out.String(), errw.String())
	}

	// Bad op and a rollup without -dim are rejected.
	for _, args := range [][]string{
		{"-in", path, "-minsup", "0.05", "-cell", "d0=d0.0", "-op", "pivot"},
		{"-in", path, "-minsup", "0.05", "-cell", "d0=d0.0", "-op", "rollup"},
	} {
		if err := run(args, &out, &errw); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestTopCells(t *testing.T) {
	path := writeDataset(t)
	var out, errw bytes.Buffer
	if err := run([]string{"-in", path, "-minsup", "0.05", "-cell", "d0=d0.0", "-top", "3"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "top cells of cuboid") {
		t.Errorf("top output unexpected:\n%s", out.String())
	}
}

func TestSaveAndLoad(t *testing.T) {
	path := writeDataset(t)
	cubePath := filepath.Join(t.TempDir(), "cube.fcb")
	var out, errw bytes.Buffer
	if err := run([]string{"-in", path, "-minsup", "0.05", "-save", cubePath}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	built := out.String()
	out.Reset()
	errw.Reset()
	if err := run([]string{"-in", path, "-load", cubePath}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errw.String(), "loaded cube") {
		t.Errorf("load path not taken: %q", errw.String())
	}
	// Cell counts agree between built and loaded summaries (first line).
	firstLine := func(s string) string { return strings.SplitN(s, "\n", 2)[0] }
	if firstLine(built) != firstLine(out.String()) {
		t.Errorf("summaries differ:\n%s\n%s", firstLine(built), firstLine(out.String()))
	}
}

func TestErrors(t *testing.T) {
	path := writeDataset(t)
	cases := [][]string{
		{},                                // missing -in
		{"-in", "/nonexistent"},           // unreadable dataset
		{"-in", path, "-cell", "bogus"},   // malformed cell
		{"-in", path, "-cell", "nodim=x"}, // unknown dimension
		{"-in", path, "-cell", "d0=nosuchconcept"}, // unknown concept
		{"-in", path, "-load", "/nonexistent"},     // unreadable cube
	}
	for _, args := range cases {
		var out, errw bytes.Buffer
		if err := run(args, &out, &errw); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestPDFAOutput(t *testing.T) {
	path := writeDataset(t)
	var out, errw bytes.Buffer
	if err := run([]string{"-in", path, "-minsup", "0.05", "-pdfa", "0.3", "-summary"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "PDFA over 300 paths") || !strings.Contains(out.String(), "q0") {
		t.Errorf("pdfa output missing:\n%s", out.String())
	}
	// A bad alpha propagates as an error.
	if err := run([]string{"-in", path, "-pdfa", "1.5"}, &out, &errw); err == nil {
		t.Errorf("bad alpha accepted")
	}
}
