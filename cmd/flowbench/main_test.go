package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestFigureSmoke(t *testing.T) {
	var out, errw bytes.Buffer
	err := run([]string{
		"-fig", "9", "-scale", "0.005", "-support-floor", "25",
		"-algos", "shared", "-quiet",
	}, &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# Figure 9", "shared", "a", "b", "c"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("figure output missing %q:\n%s", want, out.String())
		}
	}
}

func TestAblationSmoke(t *testing.T) {
	var out, errw bytes.Buffer
	err := run([]string{
		"-ablation", "merge,counting", "-scale", "0.005", "-support-floor", "25", "-quiet",
	}, &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"A2:", "A3:", "algebraic merge", "candidate trie"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("ablation output missing %q:\n%s", want, out.String())
		}
	}
}

func TestSelectionErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-fig", "99"},
		{"-ablation", "nosuch"},
		{"-badflag"},
	} {
		var out, errw bytes.Buffer
		if err := run(args, &out, &errw); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
