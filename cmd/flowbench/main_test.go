package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"flowcube/internal/bench"
)

func TestFigureSmoke(t *testing.T) {
	var out, errw bytes.Buffer
	err := run([]string{
		"-fig", "9", "-scale", "0.005", "-support-floor", "25",
		"-algos", "shared", "-quiet",
	}, &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# Figure 9", "shared", "a", "b", "c"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("figure output missing %q:\n%s", want, out.String())
		}
	}
}

func TestAblationSmoke(t *testing.T) {
	var out, errw bytes.Buffer
	err := run([]string{
		"-ablation", "merge,counting", "-scale", "0.005", "-support-floor", "25", "-quiet",
	}, &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"A2:", "A3:", "algebraic merge", "candidate trie"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("ablation output missing %q:\n%s", want, out.String())
		}
	}
}

func TestMicroSmoke(t *testing.T) {
	dir := t.TempDir()
	microPath := filepath.Join(dir, "micro.json")
	cpuPath := filepath.Join(dir, "cpu.pprof")
	memPath := filepath.Join(dir, "mem.pprof")
	var out, errw bytes.Buffer
	err := run([]string{
		"-micro", "-micro-iters", "1", "-scale", "0.002", "-support-floor", "10",
		"-micro-out", microPath, "-cpuprofile", cpuPath, "-memprofile", memPath,
		"-quiet",
	}, &out, &errw)
	if err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(microPath)
	if err != nil {
		t.Fatal(err)
	}
	var suite bench.MicroSuite
	if err := json.Unmarshal(raw, &suite); err != nil {
		t.Fatalf("micro output is not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, r := range suite.Results {
		names[r.Name] = true
		if r.Iterations != 1 {
			t.Errorf("%s: iterations = %d, want 1 (-micro-iters 1)", r.Name, r.Iterations)
		}
	}
	for _, want := range []string{"scan1/workers=1", "populate/run", "populate/assign"} {
		if !names[want] {
			t.Errorf("micro suite missing %q; have %v", want, names)
		}
	}

	for _, p := range []string{cpuPath, memPath} {
		info, err := os.Stat(p)
		if err != nil {
			t.Errorf("profile %s: %v", p, err)
		} else if info.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestMicroToStdout(t *testing.T) {
	var out, errw bytes.Buffer
	err := run([]string{
		"-micro", "-micro-iters", "1", "-scale", "0.002", "-support-floor", "10", "-quiet",
	}, &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	var suite bench.MicroSuite
	if err := json.Unmarshal(out.Bytes(), &suite); err != nil {
		t.Fatalf("stdout is not valid JSON: %v\n%s", err, out.String())
	}
	if len(suite.Results) == 0 {
		t.Error("micro suite has no results")
	}
}

func TestSelectionErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-fig", "99"},
		{"-ablation", "nosuch"},
		{"-badflag"},
	} {
		var out, errw bytes.Buffer
		if err := run(args, &out, &errw); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
