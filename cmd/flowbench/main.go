// Command flowbench regenerates the paper's §6 evaluation: one runner per
// figure (6–11) sweeping the same parameters and printing the same series,
// plus the ablation experiments DESIGN.md calls out.
//
// Usage:
//
//	flowbench -fig all                 # every figure at the default scale
//	flowbench -fig 6 -scale 1          # Figure 6 at the paper's full 100k–1M
//	flowbench -fig 7 -algos shared,cubing
//	flowbench -ablation pruning,merge,counting,redundancy,iceberg,engine,parallel
//	flowbench -persist -persist-out BENCH_persist.json
//	flowbench -incr -incr-out BENCH_incr.json
//	flowbench -olap -olap-out BENCH_olap.json
//
// Scale multiplies the paper's database sizes; the default 0.1 sweeps
// 10k–100k paths and completes in minutes. Absolute times will not match
// the 2006 C++/Pentium-IV testbed — the reproduced result is the shape of
// each curve (see EXPERIMENTS.md).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"flowcube/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "flowbench: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("flowbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fig := fs.String("fig", "", "figures to run: comma-separated subset of 6,7,8,9,10,11 or 'all'")
	ablation := fs.String("ablation", "", "ablations to run: comma-separated subset of pruning,merge,counting,redundancy,iceberg,engine,parallel or 'all'")
	scale := fs.Float64("scale", 0.1, "multiplier on the paper's database sizes (1.0 = full 100k-1M sweep)")
	seed := fs.Int64("seed", 1, "synthetic generator seed")
	algos := fs.String("algos", "", "restrict algorithms: comma-separated subset of shared,cubing,basic")
	candLimit := fs.Int("candidate-limit", 2_000_000, "per-length candidate cap for the basic baseline")
	floor := fs.Int64("support-floor", 0, "lower bound on the absolute iceberg count (guards tiny -scale runs)")
	quiet := fs.Bool("quiet", false, "suppress per-point progress lines")
	micro := fs.Bool("micro", false, "run the counting-core micro-benchmarks (scan-1, trie counting, populate)")
	microOut := fs.String("micro-out", "", "write the micro-benchmark suite as JSON to this file (default stdout)")
	microIters := fs.Int("micro-iters", 0, "fixed iteration count per micro-benchmark (0 = time-targeted, the canonical mode)")
	persist := fs.Bool("persist", false, "run the snapshot-codec benchmarks (v1 gob vs v2 columnar, save/load, seq/parallel)")
	persistOut := fs.String("persist-out", "", "write the persist benchmark suite as JSON to this file (default stdout)")
	incr := fs.Bool("incr", false, "run the incremental-maintenance benchmarks (1% batch delta vs full rebuild)")
	incrOut := fs.String("incr-out", "", "write the incremental benchmark suite as JSON to this file (default stdout)")
	ingest := fs.Bool("ingest", false, "run the ingest write-path benchmarks (group commit vs serialized appends, reader tail latency, restricted re-mine)")
	ingestOut := fs.String("ingest-out", "", "write the ingest benchmark suite as JSON to this file (default stdout)")
	olapBench := fs.Bool("olap", false, "run the OLAP query-algebra benchmarks (computed vs materialized latency, planner budget sweep)")
	olapOut := fs.String("olap-out", "", "write the OLAP benchmark suite as JSON to this file (default stdout)")
	clusterBench := fs.Bool("cluster", false, "run the sharded-cluster benchmarks (single node vs router over 1/2/4 shard processes)")
	clusterOut := fs.String("cluster-out", "", "write the cluster benchmark suite as JSON to this file (default stdout)")
	clusterServe := fs.String("cluster-serve", "", "internal: serve one snapshot for the cluster bench (prints the URL, exits on stdin EOF)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile at exit to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *clusterServe != "" {
		return bench.ClusterServe(context.Background(), *clusterServe, os.Stdin, stdout)
	}

	if *fig == "" && *ablation == "" && !*micro && !*persist && !*incr && !*ingest && !*clusterBench && !*olapBench {
		*fig = "all"
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			_ = f.Close() // the profile never started; the empty file is useless either way
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			_ = f.Close() // StopCPUProfile flushed the data; a close failure loses nothing
		}()
	}
	opts := bench.Options{
		Scale:          *scale,
		Seed:           *seed,
		CandidateLimit: *candLimit,
		SupportFloor:   *floor,
		MicroIters:     *microIters,
	}
	if !*quiet {
		opts.Progress = stderr
	}
	if *algos != "" {
		opts.Algorithms = strings.Split(*algos, ",")
	}

	figures := map[string]func(bench.Options) bench.Figure{
		"6": bench.Fig6, "7": bench.Fig7, "8": bench.Fig8,
		"9": bench.Fig9, "10": bench.Fig10, "11": bench.Fig11,
	}
	order := []string{"6", "7", "8", "9", "10", "11"}

	if *fig != "" {
		want, err := selection(*fig, order, func(id string) bool { return figures[id] != nil })
		if err != nil {
			return fmt.Errorf("%w (have 6-11)", err)
		}
		for _, id := range order {
			if !want[id] {
				continue
			}
			f := figures[id](opts)
			if id == "11" {
				f.WriteCounts(stdout)
			} else {
				f.WriteTable(stdout)
			}
			fmt.Fprintln(stdout)
		}
	}

	ablations := map[string]struct {
		title string
		run   func(bench.Options) []bench.AblationRow
	}{
		"pruning":    {"A1: Shared pruning rules", bench.AblationPruning},
		"merge":      {"A2: algebraic flowgraph merge vs rescan", bench.AblationMerge},
		"counting":   {"A3: candidate trie vs naive counting", bench.AblationCounting},
		"redundancy": {"A4: cells retained vs tau", bench.AblationRedundancy},
		"iceberg":    {"A5: cells materialized vs delta", bench.AblationIceberg},
		"engine":     {"A6: per-cell Apriori vs FP-growth", bench.AblationEngine},
		"parallel":   {"A7: Shared counting worker scaling", bench.AblationParallel},
	}
	ablOrder := []string{"pruning", "merge", "counting", "redundancy", "iceberg", "engine", "parallel"}
	if *ablation != "" {
		want, err := selection(*ablation, ablOrder, func(id string) bool { _, ok := ablations[id]; return ok })
		if err != nil {
			return err
		}
		for _, id := range ablOrder {
			if !want[id] {
				continue
			}
			a := ablations[id]
			bench.WriteRows(stdout, a.title, a.run(opts))
			fmt.Fprintln(stdout)
		}
	}

	if *micro {
		if err := writeJSON(bench.Micro(opts), *microOut, stdout); err != nil {
			return err
		}
	}
	if *persist {
		if err := writeJSON(bench.Persist(opts), *persistOut, stdout); err != nil {
			return err
		}
	}
	if *incr {
		if err := writeJSON(bench.Incr(opts), *incrOut, stdout); err != nil {
			return err
		}
	}
	if *ingest {
		if err := writeJSON(bench.Ingest(context.Background(), opts), *ingestOut, stdout); err != nil {
			return err
		}
	}
	if *olapBench {
		if err := writeJSON(bench.OLAP(context.Background(), opts), *olapOut, stdout); err != nil {
			return err
		}
	}
	if *clusterBench {
		exe, err := os.Executable()
		if err != nil {
			return fmt.Errorf("cluster: resolve own binary for shard processes: %w", err)
		}
		if err := writeJSON(bench.Cluster(context.Background(), opts, exe), *clusterOut, stdout); err != nil {
			return err
		}
	}
	if *memprofile != "" {
		if err := writeMemProfile(*memprofile); err != nil {
			return err
		}
	}
	return nil
}

// writeJSON serializes a benchmark suite as indented JSON, to a file when
// path is set and to stdout otherwise.
func writeJSON(suite any, path string, stdout io.Writer) error {
	out, err := json.MarshalIndent(suite, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "" {
		_, err := stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}

// writeMemProfile snapshots the heap into path.
func writeMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	runtime.GC() // settle the heap so the profile reflects live allocations
	if err := pprof.WriteHeapProfile(f); err != nil {
		_ = f.Close() // the profile write already failed; that is the error to report
		return fmt.Errorf("memprofile: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	return nil
}

// selection expands a comma-separated id list (or "all") against the known
// ids.
func selection(spec string, order []string, known func(string) bool) (map[string]bool, error) {
	want := map[string]bool{}
	if spec == "all" {
		for _, id := range order {
			want[id] = true
		}
		return want, nil
	}
	for _, id := range strings.Split(spec, ",") {
		id = strings.TrimSpace(id)
		if !known(id) {
			return nil, fmt.Errorf("unknown selection %q", id)
		}
		want[id] = true
	}
	return want, nil
}
