package flowcube_test

import (
	"bytes"
	"fmt"
	"testing"

	"flowcube"
)

// table1 rebuilds the paper's running example through the public API only.
func table1() (*flowcube.Hierarchy, *flowcube.Hierarchy, *flowcube.Hierarchy, *flowcube.DB) {
	product := flowcube.NewHierarchy("product")
	product.MustAddPath("clothing", "shoes", "tennis")
	product.MustAddPath("clothing", "shoes", "sandals")
	product.MustAddPath("clothing", "outerwear", "shirt")
	product.MustAddPath("clothing", "outerwear", "jacket")
	brand := flowcube.NewHierarchy("brand")
	brand.MustAddPath("sports", "nike")
	brand.MustAddPath("sports", "adidas")
	location := flowcube.NewHierarchy("location")
	location.MustAddPath("transportation", "d")
	location.MustAddPath("transportation", "t")
	location.MustAddPath("factory", "f")
	location.MustAddPath("store", "w")
	location.MustAddPath("store", "s")
	location.MustAddPath("store", "c")

	schema := flowcube.MustNewSchema(location, product, brand)
	db := flowcube.NewDB(schema)
	add := func(prod, br string, stages ...any) {
		rec := flowcube.Record{Dims: []flowcube.NodeID{
			product.MustLookup(prod), brand.MustLookup(br),
		}}
		for i := 0; i < len(stages); i += 2 {
			rec.Path = append(rec.Path, flowcube.Stage{
				Location: location.MustLookup(stages[i].(string)),
				Duration: int64(stages[i+1].(int)),
			})
		}
		db.MustAppend(rec)
	}
	add("tennis", "nike", "f", 10, "d", 2, "t", 1, "s", 5, "c", 0)
	add("tennis", "nike", "f", 5, "d", 2, "t", 1, "s", 10, "c", 0)
	add("sandals", "nike", "f", 10, "d", 1, "t", 2, "s", 5, "c", 0)
	add("shirt", "nike", "f", 10, "t", 1, "s", 5, "c", 0)
	add("jacket", "nike", "f", 10, "t", 2, "s", 5, "c", 1)
	add("jacket", "nike", "f", 10, "t", 1, "w", 5)
	add("tennis", "adidas", "f", 5, "d", 2, "t", 2, "s", 20)
	add("tennis", "adidas", "f", 5, "d", 2, "t", 3, "s", 10, "d", 5)
	return product, brand, location, db
}

func TestPublicAPIEndToEnd(t *testing.T) {
	product, brand, location, db := table1()
	leaf := flowcube.LevelCut(location, location.Depth())
	cube, err := flowcube.Build(db, flowcube.Config{
		MinCount: 2,
		Epsilon:  0.1,
		Plan: flowcube.Plan{PathLevels: []flowcube.PathLevel{
			{Cut: leaf, Time: flowcube.TimeBase},
			{Cut: leaf, Time: flowcube.TimeAny},
		}},
		MineExceptions:        true,
		SingleStageExceptions: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := flowcube.CuboidSpec{Item: flowcube.ItemLevel{2, 2}, PathLevel: 0}
	cell, ok := cube.Cell(spec, []flowcube.NodeID{
		product.MustLookup("shoes"), brand.MustLookup("nike"),
	})
	if !ok || cell.Count != 3 {
		t.Fatalf("(shoes,nike) missing or wrong count")
	}
	_ = cell.Graph.String()

	g, _, exact, ok := cube.QueryGraph(
		flowcube.CuboidSpec{Item: flowcube.ItemLevel{3, 2}, PathLevel: 0},
		[]flowcube.NodeID{product.MustLookup("shirt"), brand.MustLookup("nike")})
	if !ok || exact {
		t.Fatalf("roll-up inference failed: ok=%v exact=%v", ok, exact)
	}
	if g.Paths() < 2 {
		t.Errorf("inferred graph too small")
	}
}

func TestPublicSimilarityAndAggregate(t *testing.T) {
	_, _, location, db := table1()
	leaf := flowcube.LevelCut(location, location.Depth())
	level := flowcube.PathLevel{Cut: leaf, Time: flowcube.TimeBase}
	var paths []flowcube.Path
	for _, r := range db.Records {
		paths = append(paths, r.Path)
	}
	a := flowcube.BuildFlowgraph(location, level, paths)
	b := flowcube.BuildFlowgraph(location, level, paths[:4])
	if s := flowcube.Similarity(a, a); s != 1 {
		t.Errorf("self similarity = %g", s)
	}
	if d := flowcube.Divergence(a, a); d != 0 {
		t.Errorf("self divergence = %g", d)
	}
	if s := flowcube.Similarity(a, b); s <= 0 || s >= 1 {
		t.Errorf("cross similarity = %g", s)
	}

	up, err := flowcube.CutByNames(location, "transportation", "factory", "store")
	if err != nil {
		t.Fatal(err)
	}
	agg := flowcube.AggregatePath(db.Records[0].Path, flowcube.PathLevel{Cut: up, Time: flowcube.TimeBase})
	if len(agg) != 3 {
		t.Errorf("aggregated path has %d stages, want 3", len(agg))
	}
}

func TestPublicGenerate(t *testing.T) {
	cfg := flowcube.DefaultGenConfig()
	cfg.NumPaths = 100
	ds, err := flowcube.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.DB.Len() != 100 {
		t.Fatalf("generated %d paths", ds.DB.Len())
	}
	if _, err := flowcube.Build(ds.DB, flowcube.Config{
		MinSupport: 0.1,
		Plan:       ds.DefaultPlan(),
	}); err != nil {
		t.Fatal(err)
	}
}

// ExampleBuild demonstrates the minimal end-to-end flow on godoc.
func ExampleBuild() {
	product, brand, location, db := exampleTable1()
	leaf := flowcube.LevelCut(location, location.Depth())
	cube, err := flowcube.Build(db, flowcube.Config{
		MinCount: 2,
		Plan:     flowcube.Plan{PathLevels: []flowcube.PathLevel{{Cut: leaf, Time: flowcube.TimeBase}}},
	})
	if err != nil {
		panic(err)
	}
	spec := flowcube.CuboidSpec{Item: flowcube.ItemLevel{2, 2}, PathLevel: 0}
	cell, _ := cube.Cell(spec, []flowcube.NodeID{
		product.MustLookup("outerwear"), brand.MustLookup("nike"),
	})
	fmt.Printf("(outerwear, nike): %d paths\n", cell.Count)
	// Output: (outerwear, nike): 3 paths
}

func exampleTable1() (*flowcube.Hierarchy, *flowcube.Hierarchy, *flowcube.Hierarchy, *flowcube.DB) {
	return table1()
}

func TestPublicPDFA(t *testing.T) {
	_, _, _, db := table1()
	var paths []flowcube.Path
	for _, r := range db.Records {
		paths = append(paths, r.Path)
	}
	a, err := flowcube.LearnPDFA(paths, flowcube.PDFAOptions{Alpha: 0})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumStates() == 0 {
		t.Fatal("empty automaton")
	}
	if p := a.PathProb(paths[0]); p <= 0 || p > 1 {
		t.Errorf("PathProb = %g", p)
	}
	if _, err := flowcube.LearnPDFA(paths, flowcube.PDFAOptions{Alpha: 2}); err == nil {
		t.Errorf("bad alpha accepted")
	}
}

func TestPublicContrast(t *testing.T) {
	_, _, location, db := table1()
	leaf := flowcube.LevelCut(location, location.Depth())
	level := flowcube.PathLevel{Cut: leaf, Time: flowcube.TimeBase}
	var a, b []flowcube.Path
	for i, r := range db.Records {
		if i%2 == 0 {
			a = append(a, r.Path)
		} else {
			b = append(b, r.Path)
		}
	}
	diffs := flowcube.Contrast(
		flowcube.BuildFlowgraph(location, level, a),
		flowcube.BuildFlowgraph(location, level, b), 5)
	if len(diffs) == 0 || len(diffs) > 5 {
		t.Fatalf("contrast returned %d diffs", len(diffs))
	}
}

func TestPublicCleanAndPlan(t *testing.T) {
	location := flowcube.NewHierarchy("location")
	location.MustAddPath("factory", "f")
	location.MustAddPath("store", "s")
	product := flowcube.GenerateHierarchy("product", 2, 2)
	schema := flowcube.MustNewSchema(location, product)

	leafProd := product.Leaves()[0]
	db, err := flowcube.Clean(schema, []flowcube.Reading{
		{EPC: "e1", Location: location.MustLookup("f"), Time: 0},
		{EPC: "e1", Location: location.MustLookup("f"), Time: 100},
		{EPC: "e1", Location: location.MustLookup("s"), Time: 200},
	}, map[string]flowcube.TaggedItem{
		"e1": {Dims: []flowcube.NodeID{leafProd}},
	}, flowcube.CleanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 1 || len(db.Records[0].Path) != 2 {
		t.Fatalf("clean produced %d records", db.Len())
	}

	specs, err := flowcube.PlanCuboids(flowcube.LayerPlan{
		Minimum:     flowcube.ItemLevel{1},
		Observation: flowcube.ItemLevel{2},
		PathLevels:  []int{0},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("planned %d cuboids, want 2", len(specs))
	}
}

func TestPublicSaveLoad(t *testing.T) {
	_, _, location, db := table1()
	leaf := flowcube.LevelCut(location, location.Depth())
	cube, err := flowcube.Build(db, flowcube.Config{
		MinCount: 2,
		Plan:     flowcube.Plan{PathLevels: []flowcube.PathLevel{{Cut: leaf, Time: flowcube.TimeBase}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cube.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := flowcube.LoadCube(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumCells() != cube.NumCells() {
		t.Fatalf("loaded %d cells, want %d", loaded.NumCells(), cube.NumCells())
	}
}
