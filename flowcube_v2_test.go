package flowcube_test

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"flowcube"
)

func table1Config(location *flowcube.Hierarchy, opts ...flowcube.Option) (flowcube.Config, error) {
	leaf := flowcube.LevelCut(location, location.Depth())
	plan := flowcube.Plan{PathLevels: []flowcube.PathLevel{{Cut: leaf, Time: flowcube.TimeBase}}}
	return flowcube.NewConfig(plan, opts...)
}

func TestNewConfigOptions(t *testing.T) {
	_, _, location, _ := table1()
	cfg, err := table1Config(location,
		flowcube.WithDelta(2),
		flowcube.WithEpsilon(0.1),
		flowcube.WithTau(0.5),
		flowcube.WithWorkers(2),
		flowcube.WithExceptions(),
		flowcube.WithDeltaLedger(),
	)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.MinCount != 2 || cfg.Epsilon != 0.1 || cfg.Tau != 0.5 ||
		cfg.Workers != 2 || !cfg.MineExceptions || !cfg.DeltaLedger {
		t.Fatalf("options not applied: %+v", cfg)
	}

	if _, err := table1Config(location, flowcube.WithMinSupport(0.25)); err != nil {
		t.Fatalf("fractional threshold rejected: %v", err)
	}

	var ce *flowcube.ConfigError
	if _, err := table1Config(location); !errors.As(err, &ce) {
		t.Fatalf("missing threshold: got %v, want *ConfigError", err)
	} else if ce.Field != "MinSupport" {
		t.Errorf("ConfigError.Field = %q, want MinSupport", ce.Field)
	}
	if _, err := table1Config(location, flowcube.WithDelta(2), flowcube.WithTau(1.5)); !errors.As(err, &ce) {
		t.Fatalf("bad tau: got %v, want *ConfigError", err)
	}
	if _, err := flowcube.NewConfig(flowcube.Plan{}, flowcube.WithDelta(2)); !errors.As(err, &ce) {
		t.Fatalf("empty plan: got %v, want *ConfigError", err)
	} else if ce.Field != "Plan" {
		t.Errorf("ConfigError.Field = %q, want Plan", ce.Field)
	}
}

func TestBuildReturnsConfigError(t *testing.T) {
	_, _, _, db := table1()
	var ce *flowcube.ConfigError
	if _, err := flowcube.Build(db, flowcube.Config{MinCount: -1}); !errors.As(err, &ce) {
		t.Fatalf("Build with invalid config: got %v, want *ConfigError", err)
	}
}

func TestBuildContextCancellation(t *testing.T) {
	_, _, location, db := table1()
	cfg, err := table1Config(location, flowcube.WithDelta(2))
	if err != nil {
		t.Fatal(err)
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := flowcube.BuildContext(cancelled, db, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled build: got %v, want context.Canceled", err)
	}

	cube, err := flowcube.BuildContext(context.Background(), db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cube.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := flowcube.LoadCubeContext(cancelled, bytes.NewReader(buf.Bytes())); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled load: got %v, want context.Canceled", err)
	}
	if _, err := flowcube.LoadCubeContext(context.Background(), bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("uncancelled load: %v", err)
	}
}

func TestResolveGraphSentinel(t *testing.T) {
	product, brand, location, db := table1()
	cfg, err := table1Config(location, flowcube.WithDelta(2))
	if err != nil {
		t.Fatal(err)
	}
	cube, err := flowcube.Build(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := flowcube.CuboidSpec{Item: flowcube.ItemLevel{2, 2}, PathLevel: 0}
	if _, _, _, err := cube.ResolveGraph(spec, []flowcube.NodeID{
		product.MustLookup("shoes"), brand.MustLookup("nike"),
	}); err != nil {
		t.Fatalf("materialized cell: %v", err)
	}
	// A path level outside the plan has no materialized cuboids at all, so
	// not even roll-up inference can answer — a genuine miss.
	missSpec := flowcube.CuboidSpec{Item: flowcube.ItemLevel{2, 2}, PathLevel: 7}
	_, _, _, err = cube.ResolveGraph(missSpec, []flowcube.NodeID{
		product.MustLookup("shoes"), brand.MustLookup("nike"),
	})
	if !errors.Is(err, flowcube.ErrCellNotFound) {
		t.Fatalf("missing cell: got %v, want ErrCellNotFound", err)
	}
}

func TestLoadCubeCorruptSnapshotError(t *testing.T) {
	_, _, location, db := table1()
	cfg, err := table1Config(location, flowcube.WithDelta(2))
	if err != nil {
		t.Fatal(err)
	}
	cube, err := flowcube.Build(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cube.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)/2] ^= 0xff
	var cse *flowcube.CorruptSnapshotError
	if _, err := flowcube.LoadCube(bytes.NewReader(raw)); err == nil {
		t.Skip("bit flip landed in a slack byte")
	} else if !errors.As(err, &cse) {
		t.Fatalf("corrupt snapshot: got %v, want *CorruptSnapshotError", err)
	}
}

// TestApplyDeltaRoot drives the streaming-append flow through the public
// API: build over a prefix, delta in the rest, compare against a full
// build.
func TestApplyDeltaRoot(t *testing.T) {
	_, _, location, db := table1()
	cfg, err := table1Config(location, flowcube.WithDelta(2), flowcube.WithDeltaLedger())
	if err != nil {
		t.Fatal(err)
	}
	full, err := flowcube.Build(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := full.Save(&want); err != nil {
		t.Fatal(err)
	}

	const split = 5
	prefix := flowcube.NewDB(db.Schema)
	for _, r := range db.Records[:split] {
		prefix.MustAppend(r)
	}
	cube, err := flowcube.Build(prefix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := flowcube.ApplyDelta(cube, prefix, db.Records[split:])
	if err != nil {
		t.Fatal(err)
	}
	if stats.BatchRecords != db.Len()-split {
		t.Errorf("BatchRecords = %d, want %d", stats.BatchRecords, db.Len()-split)
	}
	var got bytes.Buffer
	if err := cube.Save(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Error("delta-maintained cube differs from full build")
	}

	fractional, err := flowcube.Build(db, flowcube.Config{MinSupport: 0.25, Plan: cfg.Plan})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := flowcube.ApplyDelta(fractional, db, nil); !errors.Is(err, flowcube.ErrAbsoluteMinCount) {
		t.Fatalf("fractional cube: got %v, want ErrAbsoluteMinCount", err)
	}
}
