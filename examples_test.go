package flowcube_test

// Smoke tests keeping the example programs green: each one is compiled and
// run, and its output checked for the markers that demonstrate the paper
// behaviour it exists to show. They are skipped in -short mode (each run
// builds and executes a full program).

import (
	"os/exec"
	"strings"
	"testing"
)

func runExample(t *testing.T, name string) string {
	t.Helper()
	if testing.Short() {
		t.Skip("example smoke tests skipped in -short mode")
	}
	out, err := exec.Command("go", "run", "./examples/"+name).CombinedOutput()
	if err != nil {
		t.Fatalf("example %s failed: %v\n%s", name, err, out)
	}
	return string(out)
}

func TestExampleQuickstart(t *testing.T) {
	out := runExample(t, "quickstart")
	for _, want := range []string{
		"Figure 3", "Figure 4", "Exceptions in (outerwear, nike)",
		"query (sandals, nike): provenance=ancestor exact=false",
		"Transportation view",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("quickstart output missing %q", want)
		}
	}
}

func TestExampleRetail(t *testing.T) {
	out := runExample(t, "retail")
	for _, want := range []string{
		"Store manager's view", "Transportation manager's view",
		"Mean shelf dwell", "Year-over-year contrast", "dc-east",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("retail output missing %q", want)
		}
	}
	// The contrast must isolate the east DC slowdown as the top shift.
	idx := strings.Index(out, "Year-over-year contrast")
	tail := out[idx:]
	if !strings.Contains(strings.SplitN(tail, "\n", 3)[1], "dc-east") {
		t.Errorf("contrast did not rank the east DC first:\n%s", tail)
	}
}

func TestExampleOutliers(t *testing.T) {
	out := runExample(t, "outliers")
	for _, want := range []string{
		"Exceptions involving quality-control dwell",
		"NON-REDUNDANT", "redundant (inferable from parent)",
		"farm-a", "Drill-down",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("outliers output missing %q", want)
		}
	}
	// Exactly one producer may be non-redundant: farm-a.
	if strings.Count(out, "NON-REDUNDANT") != 1 {
		t.Errorf("expected exactly one non-redundant producer:\n%s", out)
	}
}

func TestExampleLeadtime(t *testing.T) {
	out := runExample(t, "leadtime")
	for _, want := range []string{
		"cleaned: 1500 paths", "most typical paths",
		"deviations that most increase lead time", "customs",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("leadtime output missing %q", want)
		}
	}
}
