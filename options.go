package flowcube

// The v2 construction API: context-aware entry points, functional
// configuration options, typed errors, and incremental (delta) cube
// maintenance. The original Build / LoadCube / Config literal forms remain
// the thin, canonical core; everything here composes on top of them.

import (
	"context"
	"io"

	"flowcube/internal/core"
	"flowcube/internal/incr"
)

// Typed errors, re-exported for errors.Is / errors.As against root-package
// results.
type (
	// ConfigError reports an invalid Config field; returned (wrapped) by
	// Build, BuildContext, and NewConfig.
	ConfigError = core.ConfigError
	// CorruptSnapshotError reports a structurally invalid cube snapshot;
	// returned (wrapped) by LoadCube and LoadCubeContext.
	CorruptSnapshotError = core.CorruptSnapshotError
)

// ErrCellNotFound is wrapped by (*Cube).ResolveGraph when neither the
// requested cell nor any materialized ancestor exists.
var ErrCellNotFound = core.ErrCellNotFound

// BuildContext is Build with cancellation: ctx is checked between pipeline
// phases (encode/mine, populate, ledger, exceptions, redundancy), so a
// cancelled build returns ctx.Err() without finishing the remaining phases.
func BuildContext(ctx context.Context, db *DB, cfg Config) (*Cube, error) {
	return core.BuildContext(ctx, db, cfg)
}

// LoadCubeContext is LoadCube with cancellation: ctx is checked between
// snapshot sections, so loading a large cube can be abandoned early.
func LoadCubeContext(ctx context.Context, r io.Reader) (*Cube, error) {
	return core.LoadContext(ctx, r)
}

// LazyOptions configures LoadCubeLazy (decoded-section cache budget).
type LazyOptions = core.LazyOptions

// LazyStats reports a lazily loaded cube's mapping and cache gauges; see
// (*Cube).LazyStats.
type LazyStats = core.LazyStats

// ErrNotLazySnapshot is returned by LoadCubeLazy when the file is not a v2
// cube snapshot (v1 cubes and path databases need the eager LoadCube path).
var ErrNotLazySnapshot = core.ErrNotLazySnapshot

// LoadCubeLazy memory-maps a v2 cube snapshot read-only and returns a cube
// whose cuboid sections decode on first touch, kept in a bounded LRU: the
// open validates framing and checksums but materializes nothing, so it
// completes in milliseconds with resident memory bounded by the cache
// budget rather than the cube size. The returned cube answers the full
// query surface identically to LoadCube; mutating paths (ApplyDelta on a
// Clone, FilterCells, Merge) transparently materialize first. Close the
// cube with (*Cube).Close when done — or let the finalizer unmap it.
func LoadCubeLazy(path string, opts LazyOptions) (*Cube, error) {
	return core.LoadCubeLazy(path, opts)
}

// Option is one functional configuration setting for NewConfig.
type Option func(*Config)

// NewConfig assembles a validated Config from the materialization plan and
// options. It returns a *ConfigError (wrapped) when the resulting
// configuration is invalid — callers get the failure at construction time
// instead of from Build.
func NewConfig(plan Plan, opts ...Option) (Config, error) {
	cfg := Config{Plan: plan}
	for _, opt := range opts {
		opt(&cfg)
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// WithWorkers sets the build parallelism (0 = GOMAXPROCS).
func WithWorkers(n int) Option { return func(c *Config) { c.Workers = n } }

// WithMinSupport sets a fractional iceberg threshold: cells covering fewer
// than s·N of the N records are not materialized. Mutually exclusive with
// WithDelta; fractional thresholds re-resolve against a grown database, so
// cubes built this way cannot be delta-maintained.
func WithMinSupport(s float64) Option { return func(c *Config) { c.MinSupport = s } }

// WithDelta sets the absolute iceberg threshold δ: cells with fewer than d
// paths are not materialized. An absolute δ is what ApplyDelta requires.
func WithDelta(d int64) Option { return func(c *Config) { c.MinCount = d } }

// WithEpsilon sets the exception-significance threshold ε.
func WithEpsilon(e float64) Option { return func(c *Config) { c.Epsilon = e } }

// WithTau sets the redundancy-similarity threshold τ; 0 disables
// redundancy marking.
func WithTau(t float64) Option { return func(c *Config) { c.Tau = t } }

// WithExceptions enables exception mining (conditioned on frequent path
// segments; see Config.MineExceptions).
func WithExceptions() Option { return func(c *Config) { c.MineExceptions = true } }

// WithDeltaLedger carries the sub-δ count ledger in the cube and its
// snapshots, letting ApplyDelta admit newly-frequent cells without
// re-scanning the base database.
func WithDeltaLedger() Option { return func(c *Config) { c.DeltaLedger = true } }

// Incremental maintenance (streaming append), implemented by internal/incr.
type (
	// DeltaStats reports what one ApplyDelta call did.
	DeltaStats = incr.Stats
	// BatchError reports the first invalid record of a rejected append
	// batch.
	BatchError = incr.BatchError
)

// Delta-maintenance sentinels, matched with errors.Is.
var (
	// ErrAbsoluteMinCount: the cube was built with a fractional threshold.
	ErrAbsoluteMinCount = incr.ErrAbsoluteMinCount
	// ErrCustomMining: the cube was built with a MiningOptions override.
	ErrCustomMining = incr.ErrCustomMining
	// ErrSchemaMismatch: the database's schema is not the cube's.
	ErrSchemaMismatch = incr.ErrSchemaMismatch
)

// ApplyDelta appends a batch of records to a materialized cube and its
// path database, updating only the affected cells — counts, flowgraphs,
// exceptions, redundancy marks, and sub-δ admissions. The result is exact:
// saving the patched cube yields the same bytes as a full Build over the
// union database. The cube must have been built with an absolute threshold
// (WithDelta / Config.MinCount) and no MiningOptions override.
//
// ApplyDelta must not run concurrently with readers of the cube or db;
// long-lived servers patch a (*Cube).Clone and swap. See DESIGN.md §9.
func ApplyDelta(cube *Cube, db *DB, batch []Record) (*DeltaStats, error) {
	return incr.ApplyDelta(cube, db, batch)
}
