#!/usr/bin/env bash
# Repo verify path: static analysis plus the full test suite under the race
# detector. The race run is what keeps the concurrent serving layer
# (internal/server, cmd/flowserve) honest — snapshot hot-reload, the
# single-flight response cache and graceful shutdown are all exercised by
# tests that hammer the server from many goroutines.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "ok"
