#!/usr/bin/env bash
# Repo verify path: static analysis plus the full test suite under the race
# detector. The race run is what keeps the concurrent serving layer
# (internal/server, cmd/flowserve) honest — snapshot hot-reload, the
# single-flight response cache and graceful shutdown are all exercised by
# tests that hammer the server from many goroutines. flowlint layers the
# project-specific contracts on top — ten analyzers over two phases: five
# single-package (cube immutability, byte-deterministic encodings, lock
# discipline, epsilon float comparisons, surfaced errors) and five driven
# by cross-package facts (goroutine leaks, context plumbing, unclosed
# response bodies, locks held across interprocedurally blocking calls,
# nondeterminism reaching the snapshot codec) — and the short fuzz pass
# keeps the text parsers panic-free on garbage.
# The race run also carries the delta-equivalence property tests
# (internal/incr: ApplyDelta + Save must be byte-identical to a full
# rebuild over the union database at random split points).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== flowlint =="
# -stats prints each analyzer's finding count and wall time to stderr; on
# failure the trailing line names the offending analyzers.
go run ./cmd/flowlint -stats ./...

echo "== go test -race =="
# Includes the cluster round-trip suite (internal/cluster): split cubes
# served by live 2- and 3-shard fleets answered through the router, checked
# byte-for-byte against a single node, under the race detector.
go test -race ./...

echo "== nommap fallback (lazy serving without mmap) =="
# The pread fallback behind the nommap build tag is what non-linux builds
# get; the lazy parity suite must hold there too.
go build -tags nommap ./...
go test -tags nommap ./internal/core -run Lazy

echo "== cluster bench smoke =="
# Tiny multi-process run of the sharded-cluster bench: real re-exec'd shard
# server processes behind the router. Writes to a scratch file so the
# committed full-scale BENCH_cluster.json is never clobbered by smoke
# numbers.
go run ./cmd/flowbench -cluster -scale 0.02 -quiet \
  -cluster-out "$(mktemp -t BENCH_cluster_smoke.XXXXXX.json)"

echo "== ingest bench smoke =="
# Tiny run of the ingest write-path bench: WAL + group commit vs the
# serialized baseline, reader latency under write load, restricted
# re-mine exactness (the bench panics if restricted and full re-mines
# diverge). Scratch output keeps the committed BENCH_ingest.json intact.
go run ./cmd/flowbench -ingest -scale 0.02 -quiet \
  -ingest-out "$(mktemp -t BENCH_ingest_smoke.XXXXXX.json)"

echo "== olap bench smoke =="
# Tiny run of the OLAP query-algebra bench: the materialization planner's
# budget sweep with per-cell digest verification (the bench panics if a
# reconstructed cell diverges from its eager twin). Scratch output keeps
# the committed BENCH_olap.json intact.
go run ./cmd/flowbench -olap -scale 0.02 -quiet \
  -olap-out "$(mktemp -t BENCH_olap_smoke.XXXXXX.json)"

echo "== fuzz (10s per target) =="
go test ./internal/core -run '^$' -fuzz FuzzParseCellSpec -fuzztime 10s
go test ./internal/olap -run '^$' -fuzz FuzzParseQuery -fuzztime 10s
go test ./internal/core -run '^$' -fuzz FuzzLoadSnapshot -fuzztime 10s -fuzzminimizetime 10x
go test ./internal/pathdb -run '^$' -fuzz FuzzRead -fuzztime 10s
go test ./internal/incr -run '^$' -fuzz FuzzApplyDelta -fuzztime 10s
go test ./internal/ingest -run '^$' -fuzz FuzzWALReplay -fuzztime 10s

echo "ok"
