package starcube_test

import (
	"testing"

	"flowcube/internal/cubing"
	"flowcube/internal/datagen"
	"flowcube/internal/hierarchy"
	"flowcube/internal/mining"
	"flowcube/internal/paperex"
	"flowcube/internal/pathdb"
	"flowcube/internal/starcube"
	"flowcube/internal/transact"
)

func TestRunningExampleCells(t *testing.T) {
	ex := paperex.New()
	res, err := starcube.Build(ex.DB, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Leaf-level iceberg cells of Table 1 at δ=2: apex (8), tennis (4),
	// jacket (2), nike (6), adidas (2), (tennis,nike) (2),
	// (tennis,adidas) (2), (jacket,nike) (2).
	want := map[string]int64{
		starcube.Key([]hierarchy.NodeID{starcube.Star, starcube.Star}):                                   8,
		starcube.Key([]hierarchy.NodeID{ex.Product.MustLookup("tennis"), starcube.Star}):                 4,
		starcube.Key([]hierarchy.NodeID{ex.Product.MustLookup("jacket"), starcube.Star}):                 2,
		starcube.Key([]hierarchy.NodeID{starcube.Star, ex.Brand.MustLookup("nike")}):                     6,
		starcube.Key([]hierarchy.NodeID{starcube.Star, ex.Brand.MustLookup("adidas")}):                   2,
		starcube.Key([]hierarchy.NodeID{ex.Product.MustLookup("tennis"), ex.Brand.MustLookup("nike")}):   2,
		starcube.Key([]hierarchy.NodeID{ex.Product.MustLookup("tennis"), ex.Brand.MustLookup("adidas")}): 2,
		starcube.Key([]hierarchy.NodeID{ex.Product.MustLookup("jacket"), ex.Brand.MustLookup("nike")}):   2,
	}
	if len(res.Cells) != len(want) {
		t.Errorf("found %d cells, want %d: %v", len(res.Cells), len(want), res.SortedCells())
	}
	for k, n := range want {
		if res.Cells[k] != n {
			t.Errorf("cell %s = %d, want %d", k, res.Cells[k], n)
		}
	}
	// Shirt and sandals occur once: star reduction must have removed them.
	if _, ok := res.Cells[starcube.Key([]hierarchy.NodeID{ex.Product.MustLookup("shirt"), starcube.Star})]; ok {
		t.Errorf("iceberg violated: shirt cell materialized")
	}
}

func TestValidation(t *testing.T) {
	ex := paperex.New()
	if _, err := starcube.Build(ex.DB, 0); err == nil {
		t.Errorf("minCount 0 accepted")
	}
	// Threshold above N: no cells at all.
	res, err := starcube.Build(ex.DB, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 0 {
		t.Errorf("impossible threshold produced cells: %v", res.SortedCells())
	}
}

// TestMatchesBUC cross-validates the star-tree cube against the BUC engine
// in internal/cubing: restricted to leaf-level dimensions, both must
// enumerate exactly the same iceberg cells with the same counts.
func TestMatchesBUC(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		cfg := datagen.Default()
		cfg.Seed = seed
		cfg.NumPaths = 600
		cfg.NumDims = 3
		cfg.DimFanouts = [3]int{2, 2, 3}
		ds := datagen.MustGenerate(cfg)

		const minCount = 12
		star, err := starcube.Build(ds.DB, minCount)
		if err != nil {
			t.Fatal(err)
		}

		// BUC via the cubing engine with only the leaf level materialized
		// per dimension (so its lattice is {*, leaf}^d, matching the
		// star cube's).
		leaf := hierarchy.LevelCut(ds.Schema.Location, ds.Schema.Location.Depth())
		dimLevels := make([][]int, len(ds.Schema.Dims))
		for i, h := range ds.Schema.Dims {
			dimLevels[i] = []int{h.Depth()}
		}
		syms := transact.MustNewSymbols(ds.Schema, transact.Plan{
			DimLevels:  dimLevels,
			PathLevels: []pathdb.PathLevel{{Cut: leaf, Time: pathdb.TimeBase}},
		})
		syms.Encode(ds.DB)
		buc, err := cubing.RunEngine(ds.DB, syms, mining.Options{MinCount: minCount, MaxLen: 1}, cubing.EngineApriori)
		if err != nil {
			t.Fatal(err)
		}

		if len(star.Cells) != len(buc.Cells) {
			t.Fatalf("seed %d: star-cube found %d cells, BUC %d", seed, len(star.Cells), len(buc.Cells))
		}
		for _, cell := range buc.Cells {
			// BUC cell keys encode the same values; rebuild a star key.
			n, ok := star.Cells[starcube.Key(cell.Values)]
			if !ok {
				t.Fatalf("seed %d: BUC cell %v missing from star cube", seed, cell.Values)
			}
			if n != cell.Count {
				t.Fatalf("seed %d: cell %v count %d vs BUC %d", seed, cell.Values, n, cell.Count)
			}
		}
	}
}

func TestStarReductionShrinksTree(t *testing.T) {
	cfg := datagen.Default()
	cfg.NumPaths = 2000
	cfg.NumDims = 3
	ds := datagen.MustGenerate(cfg)
	loose, err := starcube.Build(ds.DB, 1) // nothing starred
	if err != nil {
		t.Fatal(err)
	}
	tight, err := starcube.Build(ds.DB, 100) // heavy starring
	if err != nil {
		t.Fatal(err)
	}
	if tight.TreeNodes >= loose.TreeNodes {
		t.Errorf("star reduction did not shrink the tree: %d vs %d", tight.TreeNodes, loose.TreeNodes)
	}
}

func TestKeyRoundTrip(t *testing.T) {
	values := []hierarchy.NodeID{0, 17, 3}
	back := starcube.FromKey(starcube.Key(values))
	for i := range values {
		if back[i] != values[i] {
			t.Fatalf("round trip failed: %v vs %v", back, values)
		}
	}
}
