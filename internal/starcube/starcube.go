// Package starcube implements a star-tree iceberg cube in the spirit of
// Star-Cubing (Xin, Han, Li & Wah, VLDB 2003) — the other cubing algorithm
// the paper's §5.2 names as a valid substrate for the Cubing competitor
// ("the precise cubing algorithm used in this problem is not critical, as
// long as the cube computation order is from high abstraction level to low
// level ... Examples ... are BUC and Star Cubing").
//
// The two defining ideas are kept:
//
//   - *star reduction*: a dimension value whose total count is below the
//     iceberg threshold can never appear in a frequent cell, so it is
//     replaced by a star before the tree is built, collapsing its subtrees
//     with its siblings'; and
//   - *shared traversal*: all 2^d cuboids are computed from one compressed
//     prefix tree, descending dimension by dimension — each dimension is
//     either kept (children visited per value, iceberg-pruned) or starred
//     (sibling subtrees merged on the fly), so common prefixes are
//     aggregated once instead of once per cuboid.
//
// The measure is the path count, which is what the flowcube's iceberg
// condition needs; the package cross-validates the BUC engine in
// internal/cubing and provides an independent cell enumeration.
package starcube

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"flowcube/internal/hierarchy"
	"flowcube/internal/pathdb"
)

// Star is the starred value marker in result cells.
const Star hierarchy.NodeID = hierarchy.Root

// Cell is one iceberg cell: a concrete value or Star per dimension.
type Cell struct {
	Values []hierarchy.NodeID
	Count  int64
}

// Result is the set of iceberg cells keyed by their canonical encoding.
type Result struct {
	Cells    map[string]int64
	MinCount int64
	// TreeNodes reports the size of the base star-tree (diagnostics for
	// the star-reduction effect).
	TreeNodes int
}

// Key canonically encodes a cell's values.
func Key(values []hierarchy.NodeID) string {
	parts := make([]string, len(values))
	for i, v := range values {
		parts[i] = fmt.Sprint(v)
	}
	return strings.Join(parts, ",")
}

// FromKey decodes a Key back into values. Malformed components decode to
// the root/star value 0, matching what Key can actually produce.
func FromKey(key string) []hierarchy.NodeID {
	parts := strings.Split(key, ",")
	out := make([]hierarchy.NodeID, len(parts))
	for i, p := range parts {
		v, _ := strconv.Atoi(p)
		out[i] = hierarchy.NodeID(v)
	}
	return out
}

type node struct {
	count    int64
	children map[hierarchy.NodeID]*node
}

func newNode() *node { return &node{children: make(map[hierarchy.NodeID]*node)} }

// Build computes the iceberg cube over the records' leaf-level dimension
// values with the given absolute threshold.
func Build(db *pathdb.DB, minCount int64) (*Result, error) {
	if minCount < 1 {
		return nil, fmt.Errorf("starcube: minCount must be positive, got %d", minCount)
	}
	d := len(db.Schema.Dims)
	if d == 0 {
		return nil, fmt.Errorf("starcube: schema has no dimensions")
	}

	// Star reduction: per-dimension value counts; values below the
	// threshold are replaced by Star when the tree is built.
	counts := make([]map[hierarchy.NodeID]int64, d)
	for i := range counts {
		counts[i] = make(map[hierarchy.NodeID]int64)
	}
	for _, r := range db.Records {
		for i, v := range r.Dims {
			counts[i][v]++
		}
	}
	starred := func(dim int, v hierarchy.NodeID) hierarchy.NodeID {
		if counts[dim][v] < minCount {
			return Star
		}
		return v
	}

	// Base star-tree.
	root := newNode()
	treeNodes := 1
	for _, r := range db.Records {
		cur := root
		cur.count++
		for i, v := range r.Dims {
			sv := starred(i, v)
			next := cur.children[sv]
			if next == nil {
				next = newNode()
				cur.children[sv] = next
				treeNodes++
			}
			next.count++
			cur = next
		}
	}

	res := &Result{Cells: make(map[string]int64), MinCount: minCount, TreeNodes: treeNodes}
	if root.count < minCount {
		return res, nil // even the apex cell misses the threshold
	}
	values := make([]hierarchy.NodeID, d)
	cubeRec([]*node{root}, 0, d, minCount, values, res)
	return res, nil
}

// cubeRec processes dimension depth over a group of tree nodes that share
// the cell prefix in values[:depth]. For the starred branch the whole
// group's children are pooled; for each concrete value the matching
// children form the subgroup, pruned by the iceberg condition.
func cubeRec(group []*node, depth, d int, minCount int64, values []hierarchy.NodeID, res *Result) {
	if depth == d {
		var total int64
		for _, n := range group {
			total += n.count
		}
		res.Cells[Key(values)] = total
		return
	}
	// Starred branch: dimension collapsed; same group total flows down.
	var pooled []*node
	byValue := make(map[hierarchy.NodeID][]*node)
	for _, n := range group {
		for v, c := range n.children {
			pooled = append(pooled, c)
			if v != Star {
				byValue[v] = append(byValue[v], c)
			}
		}
	}
	values[depth] = Star
	cubeRec(pooled, depth+1, d, minCount, values, res)

	// Concrete branches, iceberg-pruned. (Values starred at tree build
	// time were already folded into the Star child and cannot reappear.)
	vals := make([]hierarchy.NodeID, 0, len(byValue))
	for v := range byValue {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, v := range vals {
		sub := byValue[v]
		var total int64
		for _, n := range sub {
			total += n.count
		}
		if total < minCount {
			continue
		}
		values[depth] = v
		cubeRec(sub, depth+1, d, minCount, values, res)
	}
	values[depth] = Star
}

// SortedCells returns the cells in canonical order.
func (r *Result) SortedCells() []Cell {
	keys := make([]string, 0, len(r.Cells))
	for k := range r.Cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Cell, len(keys))
	for i, k := range keys {
		out[i] = Cell{Values: FromKey(k), Count: r.Cells[k]}
	}
	return out
}
