// Package hierarchy implements concept hierarchies and the abstraction
// machinery the flowcube is defined over (paper §4.1).
//
// A concept hierarchy is a tree whose nodes are concepts and whose edges are
// is-a relationships. The most general concept "*" is the root at level 0;
// the most concrete concepts are the leaves. Every dimension of the path
// database — the path-independent item dimensions as well as the stage
// location and duration dimensions — carries one hierarchy.
//
// Two abstraction devices are built on top:
//
//   - a level (an integer depth) for item dimensions, combined across
//     dimensions into the item abstraction lattice, and
//   - a Cut for the location hierarchy: an antichain of concepts that covers
//     every leaf, generalizing the paper's Figure 5 where a transportation
//     manager keeps transport locations at full detail while collapsing
//     store and factory locations.
package hierarchy

import (
	"fmt"
	"sort"
	"strings"
)

// NodeID identifies a concept within one Hierarchy. The root "*" is always
// node 0. IDs are dense and stable for the life of the hierarchy.
type NodeID int32

// Root is the NodeID of the apex concept "*" in every hierarchy.
const Root NodeID = 0

// RootName is the display name of the apex concept.
const RootName = "*"

type node struct {
	name     string
	parent   NodeID
	level    int
	children []NodeID
}

// Hierarchy is a concept hierarchy. Construct with New and populate with
// Add; a Hierarchy is immutable once shared and safe for concurrent reads.
type Hierarchy struct {
	name   string
	nodes  []node
	byName map[string]NodeID
	depth  int
}

// New returns a hierarchy for the named dimension containing only the root
// concept "*".
func New(dimension string) *Hierarchy {
	h := &Hierarchy{
		name:   dimension,
		nodes:  []node{{name: RootName, parent: -1, level: 0}},
		byName: map[string]NodeID{RootName: Root},
	}
	return h
}

// Dimension reports the name of the dimension this hierarchy describes.
func (h *Hierarchy) Dimension() string { return h.name }

// Add inserts concept child under the named parent and returns its id.
// Concept names must be unique within a hierarchy; Add returns an error for
// duplicates or unknown parents.
func (h *Hierarchy) Add(parent, child string) (NodeID, error) {
	p, ok := h.byName[parent]
	if !ok {
		return 0, fmt.Errorf("hierarchy %q: unknown parent concept %q", h.name, parent)
	}
	if _, dup := h.byName[child]; dup {
		return 0, fmt.Errorf("hierarchy %q: duplicate concept %q", h.name, child)
	}
	id := NodeID(len(h.nodes))
	lvl := h.nodes[p].level + 1
	h.nodes = append(h.nodes, node{name: child, parent: p, level: lvl})
	h.nodes[p].children = append(h.nodes[p].children, id)
	h.byName[child] = id
	if lvl > h.depth {
		h.depth = lvl
	}
	return id, nil
}

// MustAdd is Add for static construction; it panics on error.
func (h *Hierarchy) MustAdd(parent, child string) NodeID {
	id, err := h.Add(parent, child)
	if err != nil {
		panic(err)
	}
	return id
}

// AddPath inserts every missing concept along the given root-to-leaf chain
// (excluding the root) and returns the id of the last one. Existing
// concepts are reused, so AddPath("clothing","outerwear","jacket") then
// AddPath("clothing","outerwear","shirt") builds the paper's Figure-2 tree.
// It is an error if an existing concept appears under a different parent.
func (h *Hierarchy) AddPath(chain ...string) (NodeID, error) {
	parent := RootName
	var id NodeID
	for _, c := range chain {
		if existing, ok := h.byName[c]; ok {
			if h.nodes[existing].parent != h.byName[parent] {
				return 0, fmt.Errorf("hierarchy %q: concept %q already exists under %q, not %q",
					h.name, c, h.nodes[h.nodes[existing].parent].name, parent)
			}
			id = existing
		} else {
			var err error
			id, err = h.Add(parent, c)
			if err != nil {
				return 0, err
			}
		}
		parent = c
	}
	return id, nil
}

// MustAddPath is AddPath for static construction; it panics on error.
func (h *Hierarchy) MustAddPath(chain ...string) NodeID {
	id, err := h.AddPath(chain...)
	if err != nil {
		panic(err)
	}
	return id
}

// Len reports the number of concepts including the root.
func (h *Hierarchy) Len() int { return len(h.nodes) }

// Depth reports the deepest level present (root = 0).
func (h *Hierarchy) Depth() int { return h.depth }

// Name reports the display name of a concept.
func (h *Hierarchy) Name(id NodeID) string { return h.nodes[id].name }

// Level reports the level of a concept (root = 0).
func (h *Hierarchy) Level(id NodeID) int { return h.nodes[id].level }

// Parent reports the parent of a concept; the root's parent is -1.
func (h *Hierarchy) Parent(id NodeID) NodeID { return h.nodes[id].parent }

// Children returns the direct children of a concept in insertion order. The
// returned slice is owned by the hierarchy and must not be modified.
func (h *Hierarchy) Children(id NodeID) []NodeID { return h.nodes[id].children }

// IsLeaf reports whether the concept has no children.
func (h *Hierarchy) IsLeaf(id NodeID) bool { return len(h.nodes[id].children) == 0 }

// Lookup resolves a concept name; ok is false if absent.
func (h *Hierarchy) Lookup(name string) (NodeID, bool) {
	id, ok := h.byName[name]
	return id, ok
}

// MustLookup resolves a concept name and panics if it is absent. Intended
// for statically-known names in examples and tests.
func (h *Hierarchy) MustLookup(name string) NodeID {
	id, ok := h.byName[name]
	if !ok {
		panic(fmt.Sprintf("hierarchy %q: unknown concept %q", h.name, name))
	}
	return id
}

// AncestorAt returns the ancestor of id at the requested level. If the
// concept is already above that level it is returned unchanged.
func (h *Hierarchy) AncestorAt(id NodeID, level int) NodeID {
	for h.nodes[id].level > level {
		id = h.nodes[id].parent
	}
	return id
}

// IsAncestorOrSelf reports whether a is an ancestor of b or equal to it.
func (h *Hierarchy) IsAncestorOrSelf(a, b NodeID) bool {
	for {
		if a == b {
			return true
		}
		p := h.nodes[b].parent
		if p < 0 {
			return false
		}
		b = p
	}
}

// Leaves returns all leaf concepts in id order.
func (h *Hierarchy) Leaves() []NodeID {
	var out []NodeID
	for i := range h.nodes {
		if len(h.nodes[i].children) == 0 {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// NodesAtLevel returns all concepts at exactly the given level, in id order.
func (h *Hierarchy) NodesAtLevel(level int) []NodeID {
	var out []NodeID
	for i := range h.nodes {
		if h.nodes[i].level == level {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// String renders the hierarchy as an indented tree, mainly for debugging
// and documentation output.
func (h *Hierarchy) String() string {
	var b strings.Builder
	var walk func(id NodeID, indent int)
	walk = func(id NodeID, indent int) {
		b.WriteString(strings.Repeat("  ", indent))
		b.WriteString(h.nodes[id].name)
		b.WriteByte('\n')
		for _, c := range h.nodes[id].children {
			walk(c, indent+1)
		}
	}
	walk(Root, 0)
	return b.String()
}

// Generate builds a balanced hierarchy for the named dimension with the
// given fanout per level: fanouts[i] children under every node at level i.
// Concept names are of the form "<dim>.<l1>[.<l2>...]" so generated
// hierarchies are self-describing. This is the shape the paper's synthetic
// generator uses (3-level item hierarchies, 2-level location hierarchies)
// with configurable distinct values per level.
func Generate(dimension string, fanouts ...int) *Hierarchy {
	h := New(dimension)
	frontier := []NodeID{Root}
	for _, fan := range fanouts {
		var next []NodeID
		for _, p := range frontier {
			for c := 0; c < fan; c++ {
				name := fmt.Sprintf("%s.%d", h.nodes[p].name, c)
				if p == Root {
					name = fmt.Sprintf("%s.%d", dimension, c)
				}
				id := h.MustAdd(h.nodes[p].name, name)
				next = append(next, id)
			}
		}
		frontier = next
	}
	return h
}

// A Cut selects the concepts a path abstraction level keeps (paper §4.1,
// Figure 5): a set of concepts covering every leaf, where each leaf maps to
// its *deepest* selected ancestor-or-self. The set need not be an
// antichain — Figure 5's cut ⟨dist.center, truck, warehouse, factory,
// store⟩ contains both store and its child warehouse, meaning the warehouse
// is kept at full detail while backroom/shelf/checkout collapse into store.
// A Cut is immutable once built.
type Cut struct {
	h     *Hierarchy
	nodes []NodeID
	set   map[NodeID]bool
	cover map[NodeID]NodeID // leaf -> deepest selected ancestor
	key   string
}

// NewCut validates the node set as a proper cut of h and returns it.
func NewCut(h *Hierarchy, nodes []NodeID) (*Cut, error) {
	return newCut(h, nodes)
}

func newCut(h *Hierarchy, nodes []NodeID) (*Cut, error) {
	set := make(map[NodeID]bool, len(nodes))
	for _, n := range nodes {
		if int(n) < 0 || int(n) >= len(h.nodes) {
			return nil, fmt.Errorf("hierarchy %q: cut node %d out of range", h.name, n)
		}
		if set[n] {
			return nil, fmt.Errorf("hierarchy %q: duplicate cut node %q", h.name, h.Name(n))
		}
		set[n] = true
	}
	cover := make(map[NodeID]NodeID)
	for _, leaf := range h.Leaves() {
		var found NodeID = -1
		// Walk upward from the leaf; the first selected concept found is
		// the deepest, which is the one the cut keeps.
		for cur := leaf; cur >= 0; cur = h.nodes[cur].parent {
			if set[cur] {
				found = cur
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("hierarchy %q: leaf %q not covered by cut", h.name, h.Name(leaf))
		}
		cover[leaf] = found
	}
	sorted := append([]NodeID(nil), nodes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	parts := make([]string, len(sorted))
	for i, n := range sorted {
		parts[i] = h.Name(n)
	}
	return &Cut{h: h, nodes: sorted, set: set, cover: cover, key: strings.Join(parts, "|")}, nil
}

// MustNewCut is NewCut for static construction; it panics on error.
func MustNewCut(h *Hierarchy, nodes []NodeID) *Cut {
	c, err := newCut(h, nodes)
	if err != nil {
		panic(err)
	}
	return c
}

// CutByNames builds a cut from concept names.
func CutByNames(h *Hierarchy, names ...string) (*Cut, error) {
	ids := make([]NodeID, 0, len(names))
	for _, n := range names {
		id, ok := h.Lookup(n)
		if !ok {
			return nil, fmt.Errorf("hierarchy %q: unknown concept %q in cut", h.name, n)
		}
		ids = append(ids, id)
	}
	return newCut(h, ids)
}

// LevelCut builds the uniform cut at the given level: every leaf maps to
// its ancestor at that level (or to itself when shallower). LevelCut(depth)
// is the identity cut; LevelCut(1) aggregates to top-level concepts.
func LevelCut(h *Hierarchy, level int) *Cut {
	set := make(map[NodeID]bool)
	for _, leaf := range h.Leaves() {
		set[h.AncestorAt(leaf, level)] = true
	}
	nodes := make([]NodeID, 0, len(set))
	for n := range set {
		nodes = append(nodes, n)
	}
	c, err := newCut(h, nodes)
	if err != nil {
		// A level cut of ancestors of leaves is always a valid cut.
		panic(fmt.Sprintf("hierarchy: internal error building level cut: %v", err))
	}
	return c
}

// Hierarchy returns the hierarchy this cut belongs to.
func (c *Cut) Hierarchy() *Hierarchy { return c.h }

// Nodes returns the cut's concepts in id order; the slice is owned by the
// cut and must not be modified.
func (c *Cut) Nodes() []NodeID { return c.nodes }

// Key returns a canonical string identity for the cut, usable as a map key.
func (c *Cut) Key() string { return c.key }

// Map returns the cut concept covering the given (leaf or internal)
// concept: its deepest selected ancestor-or-self. Concepts above every
// selected node (such as the root) map to themselves.
func (c *Cut) Map(id NodeID) NodeID {
	if m, ok := c.cover[id]; ok {
		return m
	}
	for cur := id; cur >= 0; cur = c.h.nodes[cur].parent {
		if c.set[cur] {
			return cur
		}
	}
	return id
}

// Refines reports whether c is at least as detailed as other: every node of
// c maps under other to a single covering node (i.e. other can be obtained
// from c by aggregation only).
func (c *Cut) Refines(other *Cut) bool {
	for _, n := range c.nodes {
		covered := false
		for _, o := range other.nodes {
			if c.h.IsAncestorOrSelf(o, n) {
				covered = true
				break
			}
		}
		if !covered {
			return false
		}
	}
	return true
}
