package hierarchy_test

import (
	"strings"
	"testing"
	"testing/quick"

	"flowcube/internal/hierarchy"
)

func figure5(t *testing.T) *hierarchy.Hierarchy {
	t.Helper()
	h := hierarchy.New("location")
	h.MustAddPath("transportation", "d")
	h.MustAddPath("transportation", "t")
	h.MustAddPath("factory", "f")
	h.MustAddPath("store", "w")
	h.MustAddPath("store", "b")
	h.MustAddPath("store", "s")
	h.MustAddPath("store", "c")
	return h
}

func TestBasicStructure(t *testing.T) {
	h := figure5(t)
	if h.Depth() != 2 {
		t.Errorf("depth = %d, want 2", h.Depth())
	}
	if h.Len() != 11 { // root + 3 groups + 7 leaves
		t.Errorf("len = %d, want 11", h.Len())
	}
	d := h.MustLookup("d")
	if h.Level(d) != 2 {
		t.Errorf("level(d) = %d, want 2", h.Level(d))
	}
	tr := h.MustLookup("transportation")
	if h.Parent(d) != tr {
		t.Errorf("parent(d) != transportation")
	}
	if h.AncestorAt(d, 1) != tr {
		t.Errorf("ancestorAt(d,1) != transportation")
	}
	if h.AncestorAt(d, 0) != hierarchy.Root {
		t.Errorf("ancestorAt(d,0) != root")
	}
	if h.AncestorAt(d, 5) != d {
		t.Errorf("ancestorAt below own level must return the node itself")
	}
	if !h.IsAncestorOrSelf(tr, d) || h.IsAncestorOrSelf(d, tr) {
		t.Errorf("IsAncestorOrSelf wrong for transportation/d")
	}
	if !h.IsLeaf(d) || h.IsLeaf(tr) {
		t.Errorf("IsLeaf wrong")
	}
	if len(h.Leaves()) != 7 {
		t.Errorf("leaves = %d, want 7", len(h.Leaves()))
	}
	if got := len(h.NodesAtLevel(1)); got != 3 {
		t.Errorf("nodes at level 1 = %d, want 3", got)
	}
}

func TestAddErrors(t *testing.T) {
	h := hierarchy.New("x")
	if _, err := h.Add("nope", "a"); err == nil {
		t.Errorf("unknown parent accepted")
	}
	h.MustAdd("*", "a")
	if _, err := h.Add("*", "a"); err == nil {
		t.Errorf("duplicate concept accepted")
	}
	if _, err := h.AddPath("a", "b"); err != nil {
		t.Errorf("AddPath reusing existing node failed: %v", err)
	}
	h.MustAdd("*", "other")
	if _, err := h.AddPath("other", "b"); err == nil {
		t.Errorf("AddPath accepted concept under conflicting parent")
	}
}

func TestLookup(t *testing.T) {
	h := figure5(t)
	if _, ok := h.Lookup("nosuch"); ok {
		t.Errorf("Lookup found a missing concept")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("MustLookup on a missing concept did not panic")
		}
	}()
	h.MustLookup("nosuch")
}

func TestLevelCut(t *testing.T) {
	h := figure5(t)
	cut := hierarchy.LevelCut(h, 1)
	if len(cut.Nodes()) != 3 {
		t.Fatalf("level-1 cut has %d nodes, want 3", len(cut.Nodes()))
	}
	if cut.Map(h.MustLookup("d")) != h.MustLookup("transportation") {
		t.Errorf("d should map to transportation")
	}
	if cut.Map(h.MustLookup("w")) != h.MustLookup("store") {
		t.Errorf("w should map to store")
	}
	leaf := hierarchy.LevelCut(h, 2)
	if leaf.Map(h.MustLookup("d")) != h.MustLookup("d") {
		t.Errorf("leaf cut must be the identity on leaves")
	}
	if !leaf.Refines(cut) {
		t.Errorf("leaf cut must refine the level-1 cut")
	}
	if cut.Refines(leaf) {
		t.Errorf("level-1 cut must not refine the leaf cut")
	}
}

// TestFigure5Cut exercises the paper's mixed cut ⟨d, t, w, factory, store⟩:
// warehouse stays at detail even though it lies below store.
func TestFigure5Cut(t *testing.T) {
	h := figure5(t)
	cut, err := hierarchy.CutByNames(h, "d", "t", "w", "factory", "store")
	if err != nil {
		t.Fatal(err)
	}
	if cut.Map(h.MustLookup("w")) != h.MustLookup("w") {
		t.Errorf("warehouse must map to itself (deepest selected wins)")
	}
	if cut.Map(h.MustLookup("b")) != h.MustLookup("store") {
		t.Errorf("backroom must map to store")
	}
	if cut.Map(h.MustLookup("d")) != h.MustLookup("d") {
		t.Errorf("dist.center must map to itself")
	}
	if cut.Map(h.MustLookup("f")) != h.MustLookup("factory") {
		t.Errorf("f must map to factory")
	}
}

func TestCutErrors(t *testing.T) {
	h := figure5(t)
	if _, err := hierarchy.CutByNames(h, "transportation", "factory"); err == nil {
		t.Errorf("cut not covering store leaves accepted")
	}
	if _, err := hierarchy.CutByNames(h, "nosuch"); err == nil {
		t.Errorf("cut with unknown concept accepted")
	}
	if _, err := hierarchy.NewCut(h, []hierarchy.NodeID{1, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}); err == nil {
		t.Errorf("cut with duplicate node accepted")
	}
	if _, err := hierarchy.NewCut(h, []hierarchy.NodeID{99}); err == nil {
		t.Errorf("cut with out-of-range node accepted")
	}
}

func TestCutKeyDeterminism(t *testing.T) {
	h := figure5(t)
	a, _ := hierarchy.CutByNames(h, "store", "factory", "transportation")
	b, _ := hierarchy.CutByNames(h, "transportation", "store", "factory")
	if a.Key() != b.Key() {
		t.Errorf("cut key depends on node order: %q vs %q", a.Key(), b.Key())
	}
}

func TestGenerate(t *testing.T) {
	h := hierarchy.Generate("dim", 3, 2)
	if h.Depth() != 2 {
		t.Errorf("depth = %d, want 2", h.Depth())
	}
	if got := len(h.Leaves()); got != 6 {
		t.Errorf("leaves = %d, want 6", got)
	}
	if got := len(h.NodesAtLevel(1)); got != 3 {
		t.Errorf("level-1 nodes = %d, want 3", got)
	}
	// Names are self-describing.
	for _, l := range h.Leaves() {
		if !strings.HasPrefix(h.Name(l), "dim.") {
			t.Errorf("generated name %q lacks dimension prefix", h.Name(l))
		}
	}
}

// Property: for every generated hierarchy and level, LevelCut maps each
// leaf to its AncestorAt that level.
func TestLevelCutProperty(t *testing.T) {
	f := func(fan1, fan2 uint8, level uint8) bool {
		f1 := int(fan1%4) + 1
		f2 := int(fan2%4) + 1
		h := hierarchy.Generate("p", f1, f2)
		l := int(level % 3)
		cut := hierarchy.LevelCut(h, l)
		for _, leaf := range h.Leaves() {
			if cut.Map(leaf) != h.AncestorAt(leaf, l) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Refines is reflexive and LevelCut(l) refines LevelCut(l') for
// l >= l'.
func TestRefinesProperty(t *testing.T) {
	f := func(fan1, fan2 uint8, la, lb uint8) bool {
		f1 := int(fan1%4) + 1
		f2 := int(fan2%4) + 1
		h := hierarchy.Generate("p", f1, f2)
		a := int(la % 3)
		b := int(lb % 3)
		ca, cb := hierarchy.LevelCut(h, a), hierarchy.LevelCut(h, b)
		if !ca.Refines(ca) {
			return false
		}
		if a >= b && !ca.Refines(cb) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStringRendering(t *testing.T) {
	h := figure5(t)
	s := h.String()
	if !strings.Contains(s, "transportation") || !strings.Contains(s, "  d") {
		t.Errorf("String() output unexpected:\n%s", s)
	}
}
