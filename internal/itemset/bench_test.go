package itemset_test

import (
	"fmt"
	"math/rand"
	"testing"

	"flowcube/internal/itemset"
	"flowcube/internal/transact"
)

// benchWorkload builds a counting workload shaped like a real Apriori level:
// a few thousand length-k candidates drawn from a skewed item domain, and a
// database of sorted transactions.
func benchWorkload(k int) (cands [][]transact.Item, txs []transact.Transaction) {
	rng := rand.New(rand.NewSource(int64(k)))
	domain := 120
	seen := map[string]bool{}
	for len(cands) < 4000 {
		set := make([]transact.Item, 0, k)
		for len(set) < k {
			// Square the draw to skew toward low items, like real frequent
			// itemsets concentrate on frequent symbols.
			v := transact.Item(rng.Intn(domain) * rng.Intn(domain) / domain)
			dup := false
			for _, have := range set {
				if have == v {
					dup = true
				}
			}
			if !dup {
				set = append(set, v)
			}
		}
		sortItems(set)
		key := itemset.Key(set)
		if !seen[key] {
			seen[key] = true
			cands = append(cands, set)
		}
	}
	for i := 0; i < 4000; i++ {
		var tx transact.Transaction
		for v := 0; v < domain; v++ {
			if rng.Intn(domain/8) < 8 {
				tx = append(tx, transact.Item(v))
			}
		}
		txs = append(txs, tx)
	}
	return cands, txs
}

func sortItems(s []transact.Item) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func newBenchTrie(cands [][]transact.Item) *itemset.Trie {
	tr := itemset.NewTrie()
	for _, c := range cands {
		tr.Insert(c)
	}
	return tr
}

// BenchmarkTrieCount compares the counting variants on identical workloads:
// the sequential iterative walk, the sharded per-worker-buffer parallel walk,
// and the pre-sharding atomic pointer-trie reference.
func BenchmarkTrieCount(b *testing.B) {
	for _, k := range []int{2, 3, 4} {
		cands, txs := benchWorkload(k)
		b.Run(fmt.Sprintf("k=%d/seq", k), func(b *testing.B) {
			tr := newBenchTrie(cands)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, tx := range txs {
					tr.Count(tx)
				}
			}
		})
		b.Run(fmt.Sprintf("k=%d/sharded-8", k), func(b *testing.B) {
			tr := newBenchTrie(cands)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.CountParallel(txs, 8)
			}
		})
		b.Run(fmt.Sprintf("k=%d/atomic-8", k), func(b *testing.B) {
			tr := newBenchTrie(cands)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.CountParallelAtomic(txs, 8)
			}
		})
	}
}
