package itemset

import "flowcube/internal/transact"

// CountRecursive applies the recursive reference counter (countNode) to one
// transaction. Tests use it as the oracle the iterative flat-trie merge-walk
// must agree with.
func (t *Trie) CountRecursive(tx transact.Transaction) {
	t.thaw()
	countNode(&t.root, tx)
}

// Frozen reports whether the trie currently holds a flattened counting
// layout, for tests asserting the freeze/thaw lifecycle.
func (t *Trie) Frozen() bool { return t.flat != nil }
