package itemset_test

import (
	"sort"
	"testing"
	"testing/quick"

	"flowcube/internal/itemset"
	"flowcube/internal/transact"
)

func set(items ...transact.Item) []transact.Item { return items }

func TestKeyRoundTrip(t *testing.T) {
	s := set(3, 1, 4, 159)
	k := itemset.Key(s)
	back := itemset.FromKey(k)
	if len(back) != len(s) {
		t.Fatalf("round trip length %d, want %d", len(back), len(s))
	}
	for i := range s {
		if back[i] != s[i] {
			t.Errorf("round trip[%d] = %d, want %d", i, back[i], s[i])
		}
	}
	if itemset.Key(set(1, 2)) == itemset.Key(set(1, 3)) {
		t.Errorf("distinct sets share a key")
	}
}

func TestJoinClassic(t *testing.T) {
	// L2 = {ab, ac, ad, bc, bd}: join gives abc (ab+ac? prefix a), abd,
	// acd, bcd; subset pruning removes acd (cd not frequent) and bcd (cd
	// not frequent).
	l2 := []itemset.Counted{
		{Set: set(1, 2), Count: 3},
		{Set: set(1, 3), Count: 3},
		{Set: set(1, 4), Count: 3},
		{Set: set(2, 3), Count: 3},
		{Set: set(2, 4), Count: 3},
	}
	cands := itemset.Join(l2)
	keys := make(map[string]bool)
	for _, c := range cands {
		keys[itemset.Key(c)] = true
	}
	if !keys[itemset.Key(set(1, 2, 3))] || !keys[itemset.Key(set(1, 2, 4))] {
		t.Errorf("expected candidates {1,2,3} and {1,2,4} missing: %v", cands)
	}
	if keys[itemset.Key(set(1, 3, 4))] || keys[itemset.Key(set(2, 3, 4))] {
		t.Errorf("subset pruning failed: %v", cands)
	}
	if len(cands) != 2 {
		t.Errorf("join produced %d candidates, want 2", len(cands))
	}
}

func TestJoinEmpty(t *testing.T) {
	if got := itemset.Join(nil); got != nil {
		t.Errorf("Join(nil) = %v", got)
	}
}

func TestTrieCounting(t *testing.T) {
	trie := itemset.NewTrie()
	trie.Insert(set(1, 3))
	trie.Insert(set(1, 5))
	trie.Insert(set(2, 3))
	if trie.Size() != 3 {
		t.Fatalf("size = %d", trie.Size())
	}
	txs := []transact.Transaction{
		{1, 2, 3},    // contains {1,3} and {2,3}
		{1, 3, 5},    // contains {1,3} and {1,5}
		{2, 3},       // contains {2,3}
		{4, 6},       // contains nothing
		{1, 2, 3, 5}, // contains all three
	}
	for _, tx := range txs {
		trie.Count(tx)
	}
	counts := map[string]int64{}
	trie.Walk(func(s []transact.Item, n int64) {
		counts[itemset.Key(append([]transact.Item(nil), s...))] = n
	})
	if counts[itemset.Key(set(1, 3))] != 3 {
		t.Errorf("{1,3} = %d, want 3", counts[itemset.Key(set(1, 3))])
	}
	if counts[itemset.Key(set(1, 5))] != 2 {
		t.Errorf("{1,5} = %d, want 2", counts[itemset.Key(set(1, 5))])
	}
	if counts[itemset.Key(set(2, 3))] != 3 {
		t.Errorf("{2,3} = %d, want 3", counts[itemset.Key(set(2, 3))])
	}

	freq := trie.Frequent(3)
	if len(freq) != 2 {
		t.Errorf("Frequent(3) = %d sets, want 2", len(freq))
	}
}

func TestTrieDuplicateInsert(t *testing.T) {
	trie := itemset.NewTrie()
	trie.Insert(set(1, 2))
	trie.Insert(set(1, 2))
	if trie.Size() != 1 {
		t.Errorf("duplicate insert counted twice")
	}
	trie.Count(transact.Transaction{1, 2})
	freq := trie.Frequent(1)
	if len(freq) != 1 || freq[0].Count != 1 {
		t.Errorf("duplicate insert double-counts: %v", freq)
	}
}

func TestSortCounted(t *testing.T) {
	s := []itemset.Counted{
		{Set: set(2, 3)},
		{Set: set(1)},
		{Set: set(1, 9)},
		{Set: set(1, 2)},
	}
	itemset.SortCounted(s)
	want := [][]transact.Item{set(1), set(1, 2), set(1, 9), set(2, 3)}
	for i := range want {
		if itemset.Key(s[i].Set) != itemset.Key(want[i]) {
			t.Fatalf("order wrong at %d: %v", i, s)
		}
	}
}

// Property: trie counting agrees with a naive subset test.
func TestTrieMatchesNaiveProperty(t *testing.T) {
	f := func(candSeed, txSeed []uint8) bool {
		// Derive a small candidate set and transactions from the fuzz input.
		mk := func(b []uint8, width int) []transact.Item {
			m := map[transact.Item]bool{}
			for _, x := range b {
				m[transact.Item(x%16)] = true
				if len(m) == width {
					break
				}
			}
			var s []transact.Item
			for it := range m {
				s = append(s, it)
			}
			sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
			return s
		}
		cand := mk(candSeed, 3)
		if len(cand) == 0 {
			return true
		}
		tx := transact.Transaction(mk(txSeed, 8))

		trie := itemset.NewTrie()
		trie.Insert(cand)
		trie.Count(tx)
		var got int64
		trie.Walk(func(_ []transact.Item, n int64) { got = n })

		want := int64(1)
		for _, c := range cand {
			found := false
			for _, x := range tx {
				if x == c {
					found = true
					break
				}
			}
			if !found {
				want = 0
				break
			}
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestCountParallelMatchesSequential: atomic parallel counting must agree
// with sequential counting on identical inputs.
func TestCountParallelMatchesSequential(t *testing.T) {
	mkTx := func(seed int) transact.Transaction {
		var tx transact.Transaction
		for v := 0; v < 12; v++ {
			if (seed>>v)&1 == 1 {
				tx = append(tx, transact.Item(v))
			}
		}
		return tx
	}
	var txs []transact.Transaction
	for i := 1; i < 400; i++ {
		txs = append(txs, mkTx(i*2654435761))
	}
	var cands [][]transact.Item
	for a := 0; a < 10; a++ {
		for b := a + 1; b < 12; b++ {
			cands = append(cands, set(transact.Item(a), transact.Item(b)))
		}
	}
	seqTrie, parTrie := itemset.NewTrie(), itemset.NewTrie()
	for _, c := range cands {
		seqTrie.Insert(c)
		parTrie.Insert(c)
	}
	for _, tx := range txs {
		seqTrie.Count(tx)
	}
	parTrie.CountParallel(txs, 4)

	want := map[string]int64{}
	seqTrie.Walk(func(s []transact.Item, n int64) { want[itemset.Key(s)] = n })
	parTrie.Walk(func(s []transact.Item, n int64) {
		if want[itemset.Key(s)] != n {
			t.Fatalf("parallel count of %v = %d, sequential %d", s, n, want[itemset.Key(s)])
		}
	})

	// Degenerate worker counts fall back to the serial path.
	one := itemset.NewTrie()
	one.Insert(set(1, 2))
	one.CountParallel(txs, 1)
	one.CountParallel(txs[:1], 16)
}
