package itemset_test

import (
	"testing"

	"flowcube/internal/hierarchy"
	"flowcube/internal/itemset"
	"flowcube/internal/mining"
	"flowcube/internal/paperex"
	"flowcube/internal/pathdb"
	"flowcube/internal/transact"
)

func TestClosedSimple(t *testing.T) {
	// {1}:5, {1,2}:5 → {1} is not closed; {1,2}:5, {1,3}:3 closed.
	sets := []itemset.Counted{
		{Set: set(1), Count: 5},
		{Set: set(1, 2), Count: 5},
		{Set: set(2), Count: 5},
		{Set: set(1, 3), Count: 3},
		{Set: set(3), Count: 3},
	}
	closed := itemset.Closed(sets)
	keys := map[string]bool{}
	for _, c := range closed {
		keys[itemset.Key(c.Set)] = true
	}
	if keys[itemset.Key(set(1))] || keys[itemset.Key(set(2))] {
		t.Errorf("{1} and {2} must be absorbed by {1,2}: %v", closed)
	}
	if !keys[itemset.Key(set(1, 2))] || !keys[itemset.Key(set(1, 3))] {
		t.Errorf("closed sets missing: %v", closed)
	}
	if keys[itemset.Key(set(3))] {
		t.Errorf("{3}:3 absorbed by {1,3}:3 — expected, but keep the deviation visible")
	}
}

// TestClosedLossless: on the running example's full mining output, the
// closed subset reconstructs every original support exactly.
func TestClosedLossless(t *testing.T) {
	ex := paperex.New()
	leaf := hierarchy.LevelCut(ex.Location, ex.Location.Depth())
	syms := transact.MustNewSymbols(ex.Schema, transact.Plan{
		PathLevels: []pathdb.PathLevel{
			{Cut: leaf, Time: pathdb.TimeBase},
			{Cut: leaf, Time: pathdb.TimeAny},
		},
	})
	txs := syms.Encode(ex.DB)
	res, err := mining.Mine(syms, txs, mining.Options{MinCount: 2, PruneAncestor: true, PruneLink: true})
	if err != nil {
		t.Fatal(err)
	}
	all := res.All()
	closed := itemset.Closed(all)
	if len(closed) >= len(all) {
		t.Fatalf("closure did not compress: %d of %d", len(closed), len(all))
	}
	for _, c := range all {
		got, ok := itemset.SupportFromClosed(closed, c.Set)
		if !ok {
			t.Fatalf("closed collection lost %s", syms.SetString(c.Set))
		}
		if got != c.Count {
			t.Fatalf("support of %s reconstructed as %d, want %d", syms.SetString(c.Set), got, c.Count)
		}
	}
	t.Logf("closure: %d → %d itemsets", len(all), len(closed))
}

func TestSupportFromClosedMiss(t *testing.T) {
	closed := []itemset.Counted{{Set: set(1, 2), Count: 4}}
	if _, ok := itemset.SupportFromClosed(closed, set(3)); ok {
		t.Errorf("non-frequent set reconstructed")
	}
	if n, ok := itemset.SupportFromClosed(closed, set(1)); !ok || n != 4 {
		t.Errorf("subset support = %d,%v", n, ok)
	}
}
