package itemset_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"flowcube/internal/itemset"
	"flowcube/internal/transact"
)

// randomSortedSet derives a sorted, duplicate-free itemset over [0, domain)
// from a seed, of size up to maxLen.
func randomSortedSet(rng *rand.Rand, domain, maxLen int) []transact.Item {
	n := rng.Intn(maxLen + 1)
	seen := map[transact.Item]bool{}
	for len(seen) < n {
		seen[transact.Item(rng.Intn(domain))] = true
	}
	out := make([]transact.Item, 0, len(seen))
	for it := range seen {
		out = append(out, it)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// harvest snapshots a trie's counts keyed by candidate.
func harvest(t *itemset.Trie) map[string]int64 {
	out := map[string]int64{}
	t.Walk(func(s []transact.Item, n int64) { out[itemset.Key(s)] = n })
	return out
}

// TestIterativeMatchesRecursive: the flat trie's explicit-stack merge-walk
// must agree with the recursive reference counter on random candidate sets
// and random sorted transactions — including deep transactions that would
// stress the call stack on the recursive path.
func TestIterativeMatchesRecursive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 200; round++ {
		iter, ref := itemset.NewTrie(), itemset.NewTrie()
		for c := 0; c < 1+rng.Intn(20); c++ {
			cand := randomSortedSet(rng, 24, 5)
			if len(cand) == 0 {
				continue
			}
			iter.Insert(cand)
			ref.Insert(cand)
		}
		for x := 0; x < 1+rng.Intn(30); x++ {
			tx := transact.Transaction(randomSortedSet(rng, 24, 24))
			iter.Count(tx)
			ref.CountRecursive(tx)
		}
		got, want := harvest(iter), harvest(ref)
		if len(got) != len(want) {
			t.Fatalf("round %d: %d candidates walked, reference %d", round, len(got), len(want))
		}
		for k, n := range want {
			if got[k] != n {
				t.Fatalf("round %d: count of %v = %d, reference %d",
					round, itemset.FromKey(k), got[k], n)
			}
		}
	}
}

// Property form of the same check, driven by testing/quick inputs.
func TestIterativeMatchesRecursiveProperty(t *testing.T) {
	f := func(candSeeds [][]uint8, txSeeds [][]uint8) bool {
		iter, ref := itemset.NewTrie(), itemset.NewTrie()
		mk := func(b []uint8) []transact.Item {
			seen := map[transact.Item]bool{}
			for _, x := range b {
				seen[transact.Item(x%20)] = true
			}
			var s []transact.Item
			for it := range seen {
				s = append(s, it)
			}
			sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
			return s
		}
		inserted := false
		for _, seed := range candSeeds {
			if cand := mk(seed); len(cand) > 0 && len(cand) <= 4 {
				iter.Insert(cand)
				ref.Insert(cand)
				inserted = true
			}
		}
		if !inserted {
			return true
		}
		for _, seed := range txSeeds {
			tx := transact.Transaction(mk(seed))
			iter.Count(tx)
			ref.CountRecursive(tx)
		}
		got, want := harvest(iter), harvest(ref)
		if len(got) != len(want) {
			return false
		}
		for k, n := range want {
			if got[k] != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestDeepTransactionCounting: a maximal-depth candidate inside a long
// transaction — the case the explicit stack exists for.
func TestDeepTransactionCounting(t *testing.T) {
	const depth = 512
	cand := make([]transact.Item, depth)
	tx := make(transact.Transaction, depth)
	for i := range cand {
		cand[i] = transact.Item(i)
		tx[i] = transact.Item(i)
	}
	trie := itemset.NewTrie()
	trie.Insert(cand)
	// Every prefix is also a candidate, so the walk keeps many frames live.
	for l := 1; l < depth; l += 37 {
		trie.Insert(cand[:l])
	}
	for i := 0; i < 3; i++ {
		trie.Count(tx)
	}
	trie.Walk(func(_ []transact.Item, n int64) {
		if n != 3 {
			t.Fatalf("deep candidate counted %d, want 3", n)
		}
	})
}

// TestInsertAfterCountPreservesCounts: Insert invalidates the flattened
// layout; counts accumulated before the insert must survive the thaw.
func TestInsertAfterCountPreservesCounts(t *testing.T) {
	trie := itemset.NewTrie()
	trie.Insert(set(1, 2))
	trie.Count(transact.Transaction{1, 2, 3})
	if !trie.Frozen() {
		t.Fatalf("Count did not freeze the trie")
	}
	trie.Insert(set(1, 3))
	if trie.Frozen() {
		t.Fatalf("Insert did not thaw the trie")
	}
	trie.Count(transact.Transaction{1, 2, 3})
	counts := harvest(trie)
	if counts[itemset.Key(set(1, 2))] != 2 {
		t.Errorf("{1,2} = %d, want 2 (count before Insert lost?)", counts[itemset.Key(set(1, 2))])
	}
	if counts[itemset.Key(set(1, 3))] != 1 {
		t.Errorf("{1,3} = %d, want 1", counts[itemset.Key(set(1, 3))])
	}
}

// shardedEquivalenceTxs builds a deterministic transaction set large enough
// to engage the parallel path at every tested worker count.
func shardedEquivalenceTxs() []transact.Transaction {
	var txs []transact.Transaction
	for i := 1; i < 600; i++ {
		seed := i * 2654435761
		var tx transact.Transaction
		for v := 0; v < 14; v++ {
			if (seed>>v)&1 == 1 {
				tx = append(tx, transact.Item(v))
			}
		}
		txs = append(txs, tx)
	}
	return txs
}

// TestShardedMatchesSequentialAndAtomic: per-worker buffer counting must
// agree with both the sequential count and the atomic reference, at the
// worker counts the race-detector CI run uses.
func TestShardedMatchesSequentialAndAtomic(t *testing.T) {
	txs := shardedEquivalenceTxs()
	var cands [][]transact.Item
	for a := 0; a < 12; a++ {
		for b := a + 1; b < 14; b++ {
			cands = append(cands, set(transact.Item(a), transact.Item(b)))
		}
	}
	seq := itemset.NewTrie()
	for _, c := range cands {
		seq.Insert(c)
	}
	for _, tx := range txs {
		seq.Count(tx)
	}
	want := harvest(seq)

	for _, workers := range []int{2, 4, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			sharded, atomicTrie := itemset.NewTrie(), itemset.NewTrie()
			for _, c := range cands {
				sharded.Insert(c)
				atomicTrie.Insert(c)
			}
			sharded.CountParallel(txs, workers)
			atomicTrie.CountParallelAtomic(txs, workers)
			for name, got := range map[string]map[string]int64{
				"sharded": harvest(sharded),
				"atomic":  harvest(atomicTrie),
			} {
				if len(got) != len(want) {
					t.Fatalf("%s walked %d candidates, want %d", name, len(got), len(want))
				}
				for k, n := range want {
					if got[k] != n {
						t.Errorf("%s count of %v = %d, want %d", name, itemset.FromKey(k), got[k], n)
					}
				}
			}
		})
	}
}

// FuzzIterativeMatchesRecursive fuzzes the iterative counter against the
// recursive oracle with arbitrary byte-derived candidates and transactions.
func FuzzIterativeMatchesRecursive(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{1, 2, 3, 4})
	f.Add([]byte{7}, []byte{})
	f.Add([]byte{0, 0, 5, 9}, []byte{5, 9, 9, 1})
	f.Fuzz(func(t *testing.T, candBytes, txBytes []byte) {
		mk := func(b []byte) []transact.Item {
			seen := map[transact.Item]bool{}
			for _, x := range b {
				seen[transact.Item(x%32)] = true
			}
			var s []transact.Item
			for it := range seen {
				s = append(s, it)
			}
			sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
			return s
		}
		cand := mk(candBytes)
		if len(cand) == 0 {
			t.Skip()
		}
		tx := transact.Transaction(mk(txBytes))
		iter, ref := itemset.NewTrie(), itemset.NewTrie()
		iter.Insert(cand)
		ref.Insert(cand)
		iter.Count(tx)
		ref.CountRecursive(tx)
		got, want := harvest(iter), harvest(ref)
		for k, n := range want {
			if got[k] != n {
				t.Fatalf("iterative count %d, recursive %d for %v", got[k], n, itemset.FromKey(k))
			}
		}
	})
}
