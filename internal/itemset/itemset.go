// Package itemset provides the frequent-itemset machinery shared by the
// Shared/Basic miners (§5.1) and the Cubing competitor (§5.2): canonical
// itemset keys, Apriori candidate generation with subset pruning, and a
// candidate trie that counts support of all candidates of one length in a
// single pass over each transaction.
package itemset

import (
	"encoding/binary"
	"sort"
	"sync"
	"sync/atomic"

	"flowcube/internal/transact"
)

// Key packs a sorted itemset into a compact string usable as a map key.
func Key(set []transact.Item) string {
	b := make([]byte, 4*len(set))
	for i, it := range set {
		binary.LittleEndian.PutUint32(b[4*i:], uint32(it))
	}
	return string(b)
}

// FromKey unpacks a Key back into an itemset.
func FromKey(key string) []transact.Item {
	set := make([]transact.Item, len(key)/4)
	for i := range set {
		set[i] = transact.Item(binary.LittleEndian.Uint32([]byte(key[4*i : 4*i+4])))
	}
	return set
}

// Counted is a frequent itemset with its support count.
type Counted struct {
	Set   []transact.Item
	Count int64
}

// SortCounted orders itemsets lexicographically, for deterministic output.
func SortCounted(sets []Counted) {
	sort.Slice(sets, func(i, j int) bool {
		a, b := sets[i].Set, sets[j].Set
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}

// Join generates the candidates of length k+1 from the frequent itemsets of
// length k by the classic Apriori join (merge two sets sharing their first
// k-1 items) followed by the subset test: every k-subset of a candidate
// must itself be frequent. prev must all have the same length and be
// internally sorted; the result sets are sorted.
//
// Candidates are carved out of bulk-allocated backing arrays rather than
// allocated one by one, and the subset test reuses a single scratch buffer,
// so a level with a million candidates costs a handful of allocations
// instead of millions.
func Join(prev []Counted) [][]transact.Item {
	if len(prev) == 0 {
		return nil
	}
	k := len(prev[0].Set)
	sets := make([][]transact.Item, len(prev))
	for i, c := range prev {
		sets[i] = c.Set
	}
	sort.Slice(sets, func(i, j int) bool { return lexLess(sets[i], sets[j]) })
	frequent := make(map[string]bool, len(sets))
	for _, s := range sets {
		frequent[Key(s)] = true
	}

	// Backing storage for accepted candidates, grown chunk-wise. Rejected
	// candidates release their reservation, so garbage stays bounded by one
	// chunk regardless of how many candidates the subset test kills.
	chunk := 256 * (k + 1)
	backing := make([]transact.Item, 0, chunk)
	subBuf := make([]transact.Item, k)
	keyBuf := make([]byte, 4*k)

	var out [][]transact.Item
	for i := 0; i < len(sets); i++ {
		for j := i + 1; j < len(sets); j++ {
			if !samePrefix(sets[i], sets[j], k-1) {
				break // sorted order: no further j shares the prefix
			}
			if cap(backing)-len(backing) < k+1 {
				backing = make([]transact.Item, 0, chunk)
			}
			cand := backing[len(backing) : len(backing)+k+1 : len(backing)+k+1]
			backing = backing[:len(backing)+k+1]
			copy(cand, sets[i])
			cand[k] = sets[j][k-1]
			if hasInfrequentSubset(cand, frequent, k, subBuf, keyBuf) {
				backing = backing[:len(backing)-(k+1)]
				continue
			}
			out = append(out, cand)
		}
	}
	return out
}

func lexLess(a, b []transact.Item) bool {
	for k := 0; k < len(a) && k < len(b); k++ {
		if a[k] != b[k] {
			return a[k] < b[k]
		}
	}
	return len(a) < len(b)
}

func samePrefix(a, b []transact.Item, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// hasInfrequentSubset checks every k-subset of the (k+1)-candidate. The two
// subsets obtained by dropping one of the joined tails are the parents and
// are frequent by construction, so only subsets dropping an earlier
// position need checking. subBuf (k items) and keyBuf (4k bytes) are caller
// scratch; the map probe via string(keyBuf) does not allocate.
func hasInfrequentSubset(cand []transact.Item, frequent map[string]bool, k int, subBuf []transact.Item, keyBuf []byte) bool {
	for drop := 0; drop < k-1; drop++ {
		copy(subBuf, cand[:drop])
		copy(subBuf[drop:], cand[drop+1:])
		for i, it := range subBuf {
			binary.LittleEndian.PutUint32(keyBuf[4*i:], uint32(it))
		}
		if !frequent[string(keyBuf)] {
			return true
		}
	}
	return false
}

// trieNode is the pointer-linked builder node. Insert grows this structure;
// counting runs over the flattened form (see flatTrie), which is rebuilt
// lazily whenever the trie changed since the last freeze.
type trieNode struct {
	item     transact.Item
	children []*trieNode
	count    int64 // authoritative only while the trie is thawed
	leaf     bool
	id       int32 // flat node index; valid only while frozen
}

func (n *trieNode) ensureChild(it transact.Item) *trieNode {
	lo, hi := 0, len(n.children)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.children[mid].item < it {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(n.children) && n.children[lo].item == it {
		return n.children[lo]
	}
	c := &trieNode{item: it}
	n.children = append(n.children, nil)
	copy(n.children[lo+1:], n.children[lo:])
	n.children[lo] = c
	return c
}

// flatTrie is the counting layout: the builder trie flattened into
// contiguous index-based arrays, in breadth-first order so that every
// node's children occupy one consecutive, item-sorted range. The merge-walk
// against a sorted transaction then streams over items[childLo[n]:childLo[n+1]]
// instead of chasing child pointers, and supports live in a dense counts
// slice indexed by node id — which is what lets parallel counting hand each
// worker a private count buffer and merge them after the scan.
//
// BFS order makes the children ranges consecutive, so one childLo slice with
// a trailing sentinel encodes every range: node n's children are
// [childLo[n], childLo[n+1]).
type flatTrie struct {
	items   []transact.Item
	childLo []int32 // len(items)+1 entries; childLo[len(items)] is the sentinel
	leaf    []bool
	counts  []int64
	// words is the transaction-bitmap size (in uint64 words) covering the
	// largest item in the trie; items beyond it cannot match any candidate.
	words int
	// rootChild maps an item to the root child carrying it (-1 if none),
	// indexed 0..words*64. The root's child range spans every distinct first
	// item — usually far more entries than one transaction has items — so
	// the root step walks the transaction through this index instead of
	// scanning the range.
	rootChild []int32
}

// count counts one transaction. Because candidates and transactions are both
// sorted sets, containment needs no positional merge: the transaction is
// scattered into a bitmap (words, caller scratch, zeroed on entry and on
// return), and each node visit reduces to scanning its child range with an
// O(1) membership test per child — no transaction-suffix scan, no
// (node, position) frames, just node ids on the explicit stack.
//
// The bitmap scan is O(children) per visit, which is the wrong side of the
// intersection when a node's child range dwarfs the transaction — the
// level-2 trie of a dense candidate set gives every first item hundreds of
// children while a transaction holds a few dozen items. Ranges wider than
// wideRangeFactor× the transaction flip to intersecting from the
// transaction side instead: each transaction item binary-searches the
// (item-sorted) child range with a monotonically advancing lower bound,
// O(|tx|·log children) per visit. Both strategies visit the same matches,
// so counts are identical either way.
//
// Every visited node is counted unconditionally: reaching a node means the
// transaction contains its prefix, so counts at candidate-end nodes are
// exact while interior nodes accumulate values nobody reads (Walk, Frequent,
// and thaw only look at end nodes). That keeps the leaf check — and the leaf
// array's cache stream — out of the hot loop. Childless matches are counted
// inline instead of round-tripping through the stack; at the deepest level
// of a candidate trie that is nearly every match. stack is caller scratch,
// returned for reuse.
// wideRangeFactor is the child-range-to-transaction size ratio above which
// count intersects from the transaction side instead of bit-testing every
// child. Below it the branch-free bitmap scan wins on constants.
const wideRangeFactor = 4

func (f *flatTrie) count(tx transact.Transaction, counts []int64, words []uint64, stack []int32) []int32 {
	limit := transact.Item(f.words << 6)
	for _, it := range tx {
		if it < limit {
			words[int(it)>>6] |= 1 << (uint32(it) & 63)
		}
	}
	items := f.items
	childLo := f.childLo
	// Root step: walk the transaction through the direct item→child index
	// rather than bit-testing the root's whole child range.
	counts[0]++
	stack = stack[:0]
	for _, it := range tx {
		if it >= limit {
			continue
		}
		ci := f.rootChild[it]
		if ci < 0 {
			continue
		}
		if childLo[ci] == childLo[ci+1] {
			counts[ci]++ // childless: necessarily a candidate end
		} else {
			stack = append(stack, ci)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		counts[n]++
		lo, hi := childLo[n], childLo[n+1]
		if int(hi-lo) > wideRangeFactor*len(tx) {
			// Wide range: intersect from the transaction side.
			p := lo
			for _, it := range tx {
				if p >= hi {
					break
				}
				if it < items[p] {
					continue
				}
				if it > items[p] {
					l, r := p+1, hi
					for l < r {
						m := l + (r-l)/2
						if items[m] < it {
							l = m + 1
						} else {
							r = m
						}
					}
					p = l
					if p >= hi || items[p] != it {
						continue
					}
				}
				if childLo[p] == childLo[p+1] {
					counts[p]++ // childless: necessarily a candidate end
				} else {
					stack = append(stack, p)
				}
				p++
			}
			continue
		}
		for ci := lo; ci < hi; ci++ {
			it := items[ci]
			if words[int(it)>>6]&(1<<(uint32(it)&63)) == 0 {
				continue
			}
			if childLo[ci] == childLo[ci+1] {
				counts[ci]++ // childless: necessarily a candidate end
			} else {
				stack = append(stack, ci)
			}
		}
	}
	for _, it := range tx {
		if it < limit {
			words[int(it)>>6] = 0
		}
	}
	return stack
}

// Trie counts support for a set of same-length candidates. Insert all
// candidates, call Count once per transaction, then harvest with Walk.
type Trie struct {
	root trieNode
	size int
	flat *flatTrie
	// Scratch for the sequential Count path: the transaction bitmap and the
	// traversal stack.
	words []uint64
	stack []int32
}

// NewTrie returns an empty candidate trie.
func NewTrie() *Trie { return &Trie{} }

// Size reports the number of inserted candidates.
func (t *Trie) Size() int { return t.size }

// Insert adds a sorted candidate itemset.
func (t *Trie) Insert(set []transact.Item) {
	t.thaw()
	n := &t.root
	for _, it := range set {
		n = n.ensureChild(it)
	}
	if !n.leaf {
		n.leaf = true
		t.size++
	}
}

// freeze flattens the builder trie into the counting layout, seeding the
// dense counts from whatever the pointer nodes accumulated so far. The flat
// form is cached until the next Insert.
func (t *Trie) freeze() *flatTrie {
	if t.flat != nil {
		return t.flat
	}
	f := &flatTrie{}
	t.root.id = 0
	f.items = append(f.items, t.root.item)
	f.leaf = append(f.leaf, t.root.leaf)
	f.counts = append(f.counts, t.root.count)
	queue := []*trieNode{&t.root}
	for head := 0; head < len(queue); head++ {
		n := queue[head]
		f.childLo = append(f.childLo, int32(len(queue)))
		for _, c := range n.children {
			c.id = int32(len(queue))
			queue = append(queue, c)
			f.items = append(f.items, c.item)
			f.leaf = append(f.leaf, c.leaf)
			f.counts = append(f.counts, c.count)
		}
	}
	f.childLo = append(f.childLo, int32(len(queue))) // sentinel
	maxItem := transact.Item(0)
	for _, it := range f.items[1:] {
		if it > maxItem {
			maxItem = it
		}
	}
	f.words = int(maxItem)>>6 + 1
	f.rootChild = make([]int32, f.words<<6)
	for i := range f.rootChild {
		f.rootChild[i] = -1
	}
	for ci := f.childLo[0]; ci < f.childLo[1]; ci++ {
		f.rootChild[f.items[ci]] = ci
	}
	t.flat = f
	return f
}

// thaw folds the flat counts back into the pointer nodes and drops the flat
// form, so a subsequent Insert (which changes the node set) cannot lose
// counts already accumulated. Only candidate-end nodes are folded: interior
// flat counts hold the unconditional visit tallies the merge-walk leaves
// behind, while interior pointer nodes stay at zero — which is what keeps a
// later Insert that turns an interior node into a candidate end starting
// from a clean count.
func (t *Trie) thaw() {
	if t.flat == nil {
		return
	}
	counts := t.flat.counts
	var rec func(n *trieNode)
	rec = func(n *trieNode) {
		if n.leaf {
			n.count = counts[n.id]
		}
		for _, c := range n.children {
			rec(c)
		}
	}
	rec(&t.root)
	t.flat = nil
}

// Count increments the support of every inserted candidate contained in the
// sorted transaction. Not safe to call concurrently; use CountParallel for
// that.
func (t *Trie) Count(tx transact.Transaction) {
	f := t.freeze()
	if len(t.words) < f.words {
		t.words = make([]uint64, f.words)
	}
	t.stack = f.count(tx, f.counts, t.words, t.stack)
}

// CountParallel counts the whole transaction set across the given number of
// workers. Each worker scans a contiguous transaction chunk into a private
// count buffer indexed by flat node id — no shared writes, no atomics, no
// false sharing on hot leaves — and the buffers are merged in worker order
// after the scan. Integer addition makes the merge exact, so the result is
// identical to sequential Count over every transaction. workers <= 1
// degrades to the serial path.
func (t *Trie) CountParallel(txs []transact.Transaction, workers int) {
	if workers <= 1 || len(txs) < 2*workers {
		for _, tx := range txs {
			t.Count(tx)
		}
		return
	}
	f := t.freeze()
	shards := make([][]int64, workers)
	var wg sync.WaitGroup
	chunk := (len(txs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(txs) {
			break
		}
		hi := lo + chunk
		if hi > len(txs) {
			hi = len(txs)
		}
		wg.Add(1)
		go func(w int, part []transact.Transaction) {
			defer wg.Done()
			counts := make([]int64, len(f.counts))
			words := make([]uint64, f.words)
			var stack []int32
			for _, tx := range part {
				stack = f.count(tx, counts, words, stack)
			}
			shards[w] = counts
		}(w, txs[lo:hi])
	}
	wg.Wait()
	for _, shard := range shards {
		if shard == nil {
			continue
		}
		for i, v := range shard {
			if v != 0 {
				f.counts[i] += v
			}
		}
	}
}

// CountParallelAtomic is the pre-sharding reference implementation of
// parallel counting: workers share the pointer trie and accumulate supports
// with atomic adds on the nodes themselves. It is kept as the regression
// baseline for the BENCH_mining.json micro-benchmarks and the equivalence
// tests; new code should use CountParallel, which replaces the contended
// atomics with per-worker count buffers.
func (t *Trie) CountParallelAtomic(txs []transact.Transaction, workers int) {
	t.thaw() // supports accumulate in the pointer nodes on this path
	if workers <= 1 || len(txs) < 2*workers {
		for _, tx := range txs {
			countNode(&t.root, tx)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (len(txs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(txs) {
			break
		}
		hi := lo + chunk
		if hi > len(txs) {
			hi = len(txs)
		}
		wg.Add(1)
		go func(part []transact.Transaction) {
			defer wg.Done()
			for _, tx := range part {
				countNodeAtomic(&t.root, tx)
			}
		}(txs[lo:hi])
	}
	wg.Wait()
}

func countNodeAtomic(n *trieNode, tx transact.Transaction) {
	if n.leaf {
		atomic.AddInt64(&n.count, 1)
	}
	if len(n.children) == 0 || len(tx) == 0 {
		return
	}
	ci, ti := 0, 0
	for ci < len(n.children) && ti < len(tx) {
		c := n.children[ci]
		switch {
		case c.item < tx[ti]:
			ci++
		case c.item > tx[ti]:
			ti++
		default:
			countNodeAtomic(c, tx[ti+1:])
			ci++
			ti++
		}
	}
}

// countNode is the recursive reference counter over the pointer trie. The
// production path is the iterative merge-walk in flatTrie.count; this stays
// as the oracle the property tests compare against.
func countNode(n *trieNode, tx transact.Transaction) {
	if n.leaf {
		n.count++
	}
	if len(n.children) == 0 || len(tx) == 0 {
		return
	}
	// Merge-walk the sorted transaction against the sorted children.
	ci, ti := 0, 0
	for ci < len(n.children) && ti < len(tx) {
		c := n.children[ci]
		switch {
		case c.item < tx[ti]:
			ci++
		case c.item > tx[ti]:
			ti++
		default:
			countNode(c, tx[ti+1:])
			ci++
			ti++
		}
	}
}

// Walk visits every candidate with its accumulated count, in lexicographic
// order (children are stored item-sorted, so a depth-first walk of the flat
// form is lexicographic). The set slice passed to fn is reused across
// calls; copy it to retain.
func (t *Trie) Walk(fn func(set []transact.Item, count int64)) {
	f := t.freeze()
	var buf []transact.Item
	var rec func(n int32)
	rec = func(n int32) {
		if f.leaf[n] {
			fn(buf, f.counts[n])
		}
		for ci := f.childLo[n]; ci < f.childLo[n+1]; ci++ {
			buf = append(buf, f.items[ci])
			rec(ci)
			buf = buf[:len(buf)-1]
		}
	}
	rec(0)
}

// Frequent harvests the candidates whose count meets minCount, copying the
// sets.
func (t *Trie) Frequent(minCount int64) []Counted {
	var out []Counted
	t.Walk(func(set []transact.Item, count int64) {
		if count >= minCount {
			out = append(out, Counted{Set: append([]transact.Item(nil), set...), Count: count})
		}
	})
	return out
}
