// Package itemset provides the frequent-itemset machinery shared by the
// Shared/Basic miners (§5.1) and the Cubing competitor (§5.2): canonical
// itemset keys, Apriori candidate generation with subset pruning, and a
// candidate trie that counts support of all candidates of one length in a
// single pass over each transaction.
package itemset

import (
	"encoding/binary"
	"sort"
	"sync"
	"sync/atomic"

	"flowcube/internal/transact"
)

// Key packs a sorted itemset into a compact string usable as a map key.
func Key(set []transact.Item) string {
	b := make([]byte, 4*len(set))
	for i, it := range set {
		binary.LittleEndian.PutUint32(b[4*i:], uint32(it))
	}
	return string(b)
}

// FromKey unpacks a Key back into an itemset.
func FromKey(key string) []transact.Item {
	set := make([]transact.Item, len(key)/4)
	for i := range set {
		set[i] = transact.Item(binary.LittleEndian.Uint32([]byte(key[4*i : 4*i+4])))
	}
	return set
}

// Counted is a frequent itemset with its support count.
type Counted struct {
	Set   []transact.Item
	Count int64
}

// SortCounted orders itemsets lexicographically, for deterministic output.
func SortCounted(sets []Counted) {
	sort.Slice(sets, func(i, j int) bool {
		a, b := sets[i].Set, sets[j].Set
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}

// Join generates the candidates of length k+1 from the frequent itemsets of
// length k by the classic Apriori join (merge two sets sharing their first
// k-1 items) followed by the subset test: every k-subset of a candidate
// must itself be frequent. prev must all have the same length and be
// internally sorted; the result sets are sorted.
func Join(prev []Counted) [][]transact.Item {
	if len(prev) == 0 {
		return nil
	}
	k := len(prev[0].Set)
	sets := make([][]transact.Item, len(prev))
	for i, c := range prev {
		sets[i] = c.Set
	}
	sort.Slice(sets, func(i, j int) bool { return lexLess(sets[i], sets[j]) })
	frequent := make(map[string]bool, len(sets))
	for _, s := range sets {
		frequent[Key(s)] = true
	}

	var out [][]transact.Item
	for i := 0; i < len(sets); i++ {
		for j := i + 1; j < len(sets); j++ {
			if !samePrefix(sets[i], sets[j], k-1) {
				break // sorted order: no further j shares the prefix
			}
			cand := make([]transact.Item, k+1)
			copy(cand, sets[i])
			cand[k] = sets[j][k-1]
			if hasInfrequentSubset(cand, frequent, k) {
				continue
			}
			out = append(out, cand)
		}
	}
	return out
}

func lexLess(a, b []transact.Item) bool {
	for k := 0; k < len(a) && k < len(b); k++ {
		if a[k] != b[k] {
			return a[k] < b[k]
		}
	}
	return len(a) < len(b)
}

func samePrefix(a, b []transact.Item, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// hasInfrequentSubset checks every k-subset of the (k+1)-candidate. The two
// subsets obtained by dropping one of the joined tails are the parents and
// are frequent by construction, so only subsets dropping an earlier
// position need checking.
func hasInfrequentSubset(cand []transact.Item, frequent map[string]bool, k int) bool {
	buf := make([]transact.Item, k)
	for drop := 0; drop < k-1; drop++ {
		copy(buf, cand[:drop])
		copy(buf[drop:], cand[drop+1:])
		if !frequent[Key(buf)] {
			return true
		}
	}
	return false
}

type trieNode struct {
	item     transact.Item
	children []*trieNode
	count    int64
	leaf     bool
}

func (n *trieNode) ensureChild(it transact.Item) *trieNode {
	lo, hi := 0, len(n.children)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.children[mid].item < it {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(n.children) && n.children[lo].item == it {
		return n.children[lo]
	}
	c := &trieNode{item: it}
	n.children = append(n.children, nil)
	copy(n.children[lo+1:], n.children[lo:])
	n.children[lo] = c
	return c
}

// Trie counts support for a set of same-length candidates. Insert all
// candidates, call Count once per transaction, then harvest with Walk.
type Trie struct {
	root trieNode
	size int
}

// NewTrie returns an empty candidate trie.
func NewTrie() *Trie { return &Trie{} }

// Size reports the number of inserted candidates.
func (t *Trie) Size() int { return t.size }

// Insert adds a sorted candidate itemset.
func (t *Trie) Insert(set []transact.Item) {
	n := &t.root
	for _, it := range set {
		n = n.ensureChild(it)
	}
	if !n.leaf {
		n.leaf = true
		t.size++
	}
}

// Count increments the support of every inserted candidate contained in the
// sorted transaction. Not safe to call concurrently; use CountParallel for
// that.
func (t *Trie) Count(tx transact.Transaction) {
	countNode(&t.root, tx)
}

// CountParallel counts the whole transaction set across the given number
// of workers. The trie structure is read-only during counting; supports
// accumulate with atomic adds, so the result is identical to sequential
// Count over every transaction. workers <= 1 degrades to the serial path.
func (t *Trie) CountParallel(txs []transact.Transaction, workers int) {
	if workers <= 1 || len(txs) < 2*workers {
		for _, tx := range txs {
			t.Count(tx)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (len(txs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(txs) {
			break
		}
		hi := lo + chunk
		if hi > len(txs) {
			hi = len(txs)
		}
		wg.Add(1)
		go func(part []transact.Transaction) {
			defer wg.Done()
			for _, tx := range part {
				countNodeAtomic(&t.root, tx)
			}
		}(txs[lo:hi])
	}
	wg.Wait()
}

func countNodeAtomic(n *trieNode, tx transact.Transaction) {
	if n.leaf {
		atomic.AddInt64(&n.count, 1)
	}
	if len(n.children) == 0 || len(tx) == 0 {
		return
	}
	ci, ti := 0, 0
	for ci < len(n.children) && ti < len(tx) {
		c := n.children[ci]
		switch {
		case c.item < tx[ti]:
			ci++
		case c.item > tx[ti]:
			ti++
		default:
			countNodeAtomic(c, tx[ti+1:])
			ci++
			ti++
		}
	}
}

func countNode(n *trieNode, tx transact.Transaction) {
	if n.leaf {
		n.count++
	}
	if len(n.children) == 0 || len(tx) == 0 {
		return
	}
	// Merge-walk the sorted transaction against the sorted children.
	ci, ti := 0, 0
	for ci < len(n.children) && ti < len(tx) {
		c := n.children[ci]
		switch {
		case c.item < tx[ti]:
			ci++
		case c.item > tx[ti]:
			ti++
		default:
			countNode(c, tx[ti+1:])
			ci++
			ti++
		}
	}
}

// Walk visits every candidate with its accumulated count, in lexicographic
// order. The set slice passed to fn is reused across calls; copy it to
// retain.
func (t *Trie) Walk(fn func(set []transact.Item, count int64)) {
	var buf []transact.Item
	var rec func(n *trieNode)
	rec = func(n *trieNode) {
		if n.leaf {
			fn(buf, n.count)
		}
		for _, c := range n.children {
			buf = append(buf, c.item)
			rec(c)
			buf = buf[:len(buf)-1]
		}
	}
	rec(&t.root)
}

// Frequent harvests the candidates whose count meets minCount, copying the
// sets.
func (t *Trie) Frequent(minCount int64) []Counted {
	var out []Counted
	t.Walk(func(set []transact.Item, count int64) {
		if count >= minCount {
			out = append(out, Counted{Set: append([]transact.Item(nil), set...), Count: count})
		}
	})
	return out
}
