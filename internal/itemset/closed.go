package itemset

import (
	"sort"

	"flowcube/internal/transact"
)

// Closed-itemset compression. A frequent itemset is *closed* when no
// strict superset has the same support; the closed sets determine the
// support of every frequent itemset, so storing only them loses nothing.
// The flowcube's frequent-segment output is highly redundant in exactly
// this way — e.g. every sub-prefix of a frequent path segment is frequent
// with at least its support — which makes closure a natural compression
// for materialized mining results.

// Closed filters a complete frequent-itemset collection (every frequent
// set with its exact support, as produced by the miners) down to the
// closed ones. The input order is not disturbed; the result is a new
// slice.
func Closed(sets []Counted) []Counted {
	// Group by support: a set can only be non-closed due to a superset
	// with the *same* support.
	bySupport := make(map[int64][]int)
	for i, c := range sets {
		bySupport[c.Count] = append(bySupport[c.Count], i)
	}
	closed := make([]bool, len(sets))
	for i := range closed {
		closed[i] = true
	}
	for _, idxs := range bySupport {
		// Sort by length descending; check each set against the longer
		// ones in its support class.
		sort.Slice(idxs, func(a, b int) bool { return len(sets[idxs[a]].Set) > len(sets[idxs[b]].Set) })
		for a := 1; a < len(idxs); a++ {
			sa := sets[idxs[a]].Set
			for b := 0; b < a; b++ {
				if !closed[idxs[b]] {
					continue
				}
				if len(sets[idxs[b]].Set) <= len(sa) {
					break // no longer supersets remain
				}
				if isSubset(sa, sets[idxs[b]].Set) {
					closed[idxs[a]] = false
					break
				}
			}
		}
	}
	var out []Counted
	for i, c := range sets {
		if closed[i] {
			out = append(out, c)
		}
	}
	return out
}

// isSubset reports a ⊆ b for sorted item slices.
func isSubset(a, b []transact.Item) bool {
	i := 0
	for _, want := range a {
		for i < len(b) && b[i] < want {
			i++
		}
		if i >= len(b) || b[i] != want {
			return false
		}
		i++
	}
	return true
}

// SupportFromClosed reconstructs the support of an arbitrary itemset from
// a closed collection: the minimum support among closed supersets. ok is
// false when no closed superset exists (the set is not frequent).
func SupportFromClosed(closed []Counted, set []transact.Item) (int64, bool) {
	var best int64 = -1
	for _, c := range closed {
		if len(c.Set) < len(set) {
			continue
		}
		if isSubset(set, c.Set) && (best < 0 || c.Count > best) {
			best = c.Count
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}
