package datagen_test

import (
	"strings"
	"testing"

	"flowcube/internal/datagen"
)

func TestDatasetIORoundTrip(t *testing.T) {
	cfg := datagen.Default()
	cfg.NumPaths = 250
	ds := datagen.MustGenerate(cfg)

	var sb strings.Builder
	if _, err := ds.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := datagen.Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.DB.Len() != ds.DB.Len() {
		t.Fatalf("round trip: %d records, want %d", back.DB.Len(), ds.DB.Len())
	}
	if back.Config != ds.Config {
		t.Errorf("config did not round trip: %+v vs %+v", back.Config, ds.Config)
	}
	for i := range ds.DB.Records {
		if !back.DB.Records[i].Path.Equal(ds.DB.Records[i].Path) {
			t.Fatalf("record %d path mismatch", i)
		}
		for d := range ds.DB.Records[i].Dims {
			if back.DB.Records[i].Dims[d] != ds.DB.Records[i].Dims[d] {
				t.Fatalf("record %d dim %d mismatch", i, d)
			}
		}
	}
	// The rebuilt schema must agree on hierarchy shapes.
	for d, h := range ds.Schema.Dims {
		if back.Schema.Dims[d].Len() != h.Len() {
			t.Errorf("dimension %d hierarchy size mismatch", d)
		}
	}
}

func TestReadRejectsMissingHeader(t *testing.T) {
	if _, err := datagen.Read(strings.NewReader("a|f:1\n")); err == nil {
		t.Errorf("missing header accepted")
	}
	if _, err := datagen.Read(strings.NewReader("#flowcube-genconfig notjson\nrest\n")); err == nil {
		t.Errorf("malformed header accepted")
	}
}
