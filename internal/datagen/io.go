package datagen

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"flowcube/internal/pathdb"
)

// Generated datasets serialize self-contained: the first line carries the
// generator configuration as JSON (from which the schema is rebuilt
// deterministically), followed by the pathdb text format.

const headerPrefix = "#flowcube-genconfig "

// WriteTo writes the dataset with its config header.
func (ds *Dataset) WriteTo(w io.Writer) (int64, error) {
	cfgJSON, err := json.Marshal(ds.Config)
	if err != nil {
		return 0, fmt.Errorf("datagen: marshal config: %w", err)
	}
	header := headerPrefix + string(cfgJSON) + "\n"
	n, err := io.WriteString(w, header)
	if err != nil {
		return int64(n), err
	}
	m, err := ds.DB.WriteTo(w)
	return int64(n) + m, err
}

// Read loads a dataset written by WriteTo, rebuilding the schema from the
// embedded generator configuration.
func Read(r io.Reader) (*Dataset, error) {
	br := bufio.NewReader(r)
	line, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("datagen: read header: %w", err)
	}
	if !strings.HasPrefix(line, headerPrefix) {
		return nil, fmt.Errorf("datagen: missing %q header", strings.TrimSpace(headerPrefix))
	}
	var cfg Config
	if err := json.Unmarshal([]byte(strings.TrimPrefix(strings.TrimSpace(line), headerPrefix)), &cfg); err != nil {
		return nil, fmt.Errorf("datagen: parse config header: %w", err)
	}
	// Rebuild the schema exactly as Generate does (hierarchies are
	// deterministic in the fanouts), then parse the records against it.
	empty := cfg
	empty.NumPaths = 1
	skel, err := Generate(empty)
	if err != nil {
		return nil, fmt.Errorf("datagen: rebuild schema: %w", err)
	}
	db, err := pathdb.Read(br, skel.Schema)
	if err != nil {
		return nil, err
	}
	return &Dataset{Config: cfg, Schema: skel.Schema, DB: db, Sequences: skel.Sequences}, nil
}
