// Package datagen re-implements the paper's §6.1 synthetic path generator,
// which simulates the movement of items through a retail operation.
//
// The generator first builds the set of valid location sequences an item
// can take through the system, over a location hierarchy with two levels of
// abstraction. Each record is then produced in two steps: values for the
// path-independent dimensions are drawn level by level down their 3-level
// concept hierarchies, and a valid location sequence is selected and
// annotated with random durations. Every choice — dimension values per
// level, sequence selection, and durations — is drawn from a Zipf
// distribution with configurable α to simulate varying data skew.
package datagen

import (
	"fmt"
	"math/rand"

	"flowcube/internal/hierarchy"
	"flowcube/internal/pathdb"
	"flowcube/internal/transact"
	"flowcube/internal/zipf"
)

// Config parameterizes the generator. The zero value is not usable; start
// from Default and adjust.
type Config struct {
	Seed     int64
	NumPaths int
	// NumDims is the number of path-independent dimensions (paper: d).
	NumDims int
	// DimFanouts gives the distinct values per level of every dimension's
	// 3-level concept hierarchy — the paper's item-density knob
	// (Fig. 9: a=(2,2,5), b=(4,4,6), c=(5,5,10)).
	DimFanouts [3]int
	// DimSkew is the Zipf α used when drawing a child at each level.
	DimSkew float64
	// LocFanouts gives the location hierarchy shape: top-level concepts
	// and children per concept (2 abstraction levels, §6.1).
	LocFanouts [2]int
	// NumSequences is the number of distinct valid location sequences —
	// the paper's path-density knob (Fig. 10; fewer sequences = denser).
	NumSequences int
	// SeqSkew is the Zipf α over sequence selection.
	SeqSkew float64
	// SeqLenMin and SeqLenMax bound the length of valid sequences.
	SeqLenMin, SeqLenMax int
	// DurationDomain is the number of distinct stage durations (1..D).
	DurationDomain int
	// DurationSkew is the Zipf α over durations.
	DurationSkew float64
}

// Default returns the baseline configuration used across the experiments:
// 5 dimensions at the paper's dataset-b density, 20 leaf locations, 50
// valid sequences of length 4..8, 10 distinct durations, moderate skew.
func Default() Config {
	return Config{
		Seed:           1,
		NumPaths:       10000,
		NumDims:        5,
		DimFanouts:     [3]int{4, 4, 6},
		DimSkew:        0.8,
		LocFanouts:     [2]int{5, 4},
		NumSequences:   50,
		SeqSkew:        0.8,
		SeqLenMin:      4,
		SeqLenMax:      8,
		DurationDomain: 10,
		DurationSkew:   1.0,
	}
}

// Dataset is a generated path database plus the sequence pool it was drawn
// from.
type Dataset struct {
	Config    Config
	Schema    *pathdb.Schema
	DB        *pathdb.DB
	Sequences [][]hierarchy.NodeID
}

// Generate builds a dataset. It returns an error for nonsensical
// configurations (no paths, no dimensions, an empty sequence pool, ...).
func Generate(cfg Config) (*Dataset, error) {
	if cfg.NumPaths <= 0 {
		return nil, fmt.Errorf("datagen: NumPaths must be positive, got %d", cfg.NumPaths)
	}
	if cfg.NumDims <= 0 {
		return nil, fmt.Errorf("datagen: NumDims must be positive, got %d", cfg.NumDims)
	}
	for _, f := range cfg.DimFanouts {
		if f <= 0 {
			return nil, fmt.Errorf("datagen: dimension fanouts must be positive, got %v", cfg.DimFanouts)
		}
	}
	if cfg.LocFanouts[0] <= 0 || cfg.LocFanouts[1] <= 0 {
		return nil, fmt.Errorf("datagen: location fanouts must be positive, got %v", cfg.LocFanouts)
	}
	if cfg.NumSequences <= 0 {
		return nil, fmt.Errorf("datagen: NumSequences must be positive, got %d", cfg.NumSequences)
	}
	if cfg.SeqLenMin < 1 || cfg.SeqLenMax < cfg.SeqLenMin {
		return nil, fmt.Errorf("datagen: bad sequence length bounds [%d,%d]", cfg.SeqLenMin, cfg.SeqLenMax)
	}
	if cfg.DurationDomain <= 0 {
		return nil, fmt.Errorf("datagen: DurationDomain must be positive, got %d", cfg.DurationDomain)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))

	location := hierarchy.Generate("loc", cfg.LocFanouts[0], cfg.LocFanouts[1])
	dims := make([]*hierarchy.Hierarchy, cfg.NumDims)
	for i := range dims {
		dims[i] = hierarchy.Generate(fmt.Sprintf("d%d", i),
			cfg.DimFanouts[0], cfg.DimFanouts[1], cfg.DimFanouts[2])
	}
	schema, err := pathdb.NewSchema(location, dims...)
	if err != nil {
		return nil, err
	}

	leaves := location.Leaves()
	sequences := generateSequences(rng, leaves, cfg)

	// Per-level child pickers. Every node at one level has the same fanout,
	// so one sampler per level suffices.
	dimPick := [3]*zipf.Zipf{}
	for l := 0; l < 3; l++ {
		dimPick[l] = zipf.New(rng, cfg.DimFanouts[l], cfg.DimSkew)
	}
	seqPick := zipf.New(rng, len(sequences), cfg.SeqSkew)
	durPick := zipf.New(rng, cfg.DurationDomain, cfg.DurationSkew)

	db := pathdb.New(schema)
	for i := 0; i < cfg.NumPaths; i++ {
		rec := pathdb.Record{Dims: make([]hierarchy.NodeID, cfg.NumDims)}
		for d, h := range dims {
			node := hierarchy.Root
			for l := 0; l < 3; l++ {
				children := h.Children(node)
				node = children[dimPick[l].Next()]
			}
			rec.Dims[d] = node
		}
		seq := sequences[seqPick.Next()]
		rec.Path = make(pathdb.Path, len(seq))
		for j, loc := range seq {
			rec.Path[j] = pathdb.Stage{Location: loc, Duration: int64(durPick.Next() + 1)}
		}
		db.MustAppend(rec)
	}
	return &Dataset{Config: cfg, Schema: schema, DB: db, Sequences: sequences}, nil
}

// MustGenerate is Generate for tests and benchmarks; it panics on error.
func MustGenerate(cfg Config) *Dataset {
	ds, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return ds
}

// generateSequences builds the pool of valid location sequences: random
// leaf walks without immediate repeats. Duplicate sequences are allowed to
// keep generation O(n); with realistic domains collisions are rare and
// harmless (they only skew density slightly, which the SeqSkew knob does
// anyway).
func generateSequences(rng *rand.Rand, leaves []hierarchy.NodeID, cfg Config) [][]hierarchy.NodeID {
	out := make([][]hierarchy.NodeID, cfg.NumSequences)
	for i := range out {
		n := cfg.SeqLenMin
		if cfg.SeqLenMax > cfg.SeqLenMin {
			n += rng.Intn(cfg.SeqLenMax - cfg.SeqLenMin + 1)
		}
		seq := make([]hierarchy.NodeID, n)
		for j := range seq {
			for {
				l := leaves[rng.Intn(len(leaves))]
				if j > 0 && seq[j-1] == l {
					continue
				}
				seq[j] = l
				break
			}
		}
		out[i] = seq
	}
	return out
}

// DefaultPlan returns the encoding plan the experiments use (§6.1): every
// level of every item dimension, and four path abstraction levels —
// locations at the level present in the database and one level higher,
// crossed with durations at the present level and at '*'.
func (ds *Dataset) DefaultPlan() transact.Plan {
	loc := ds.Schema.Location
	leaf := hierarchy.LevelCut(loc, loc.Depth())
	up := hierarchy.LevelCut(loc, loc.Depth()-1)
	return transact.Plan{
		PathLevels: []pathdb.PathLevel{
			{Cut: leaf, Time: pathdb.TimeBase},
			{Cut: leaf, Time: pathdb.TimeAny},
			{Cut: up, Time: pathdb.TimeBase},
			{Cut: up, Time: pathdb.TimeAny},
		},
	}
}
