package datagen_test

import (
	"testing"

	"flowcube/internal/datagen"
	"flowcube/internal/hierarchy"
)

func TestGenerateShape(t *testing.T) {
	cfg := datagen.Default()
	cfg.NumPaths = 1000
	ds, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.DB.Len() != 1000 {
		t.Fatalf("generated %d paths, want 1000", ds.DB.Len())
	}
	if len(ds.Schema.Dims) != cfg.NumDims {
		t.Fatalf("schema has %d dims, want %d", len(ds.Schema.Dims), cfg.NumDims)
	}
	for _, h := range ds.Schema.Dims {
		if h.Depth() != 3 {
			t.Errorf("dimension %q depth = %d, want 3", h.Dimension(), h.Depth())
		}
		want := cfg.DimFanouts[0] * cfg.DimFanouts[1] * cfg.DimFanouts[2]
		if got := len(h.Leaves()); got != want {
			t.Errorf("dimension %q has %d leaves, want %d", h.Dimension(), got, want)
		}
	}
	if ds.Schema.Location.Depth() != 2 {
		t.Errorf("location depth = %d, want 2", ds.Schema.Location.Depth())
	}
	if len(ds.Sequences) != cfg.NumSequences {
		t.Errorf("sequence pool = %d, want %d", len(ds.Sequences), cfg.NumSequences)
	}
	for i, r := range ds.DB.Records {
		if len(r.Path) < cfg.SeqLenMin || len(r.Path) > cfg.SeqLenMax {
			t.Fatalf("record %d path length %d outside [%d,%d]", i, len(r.Path), cfg.SeqLenMin, cfg.SeqLenMax)
		}
		for j, st := range r.Path {
			if st.Duration < 1 || st.Duration > int64(cfg.DurationDomain) {
				t.Fatalf("record %d stage %d duration %d outside [1,%d]", i, j, st.Duration, cfg.DurationDomain)
			}
			if j > 0 && r.Path[j-1].Location == st.Location {
				t.Fatalf("record %d has consecutive repeated location", i)
			}
			if !ds.Schema.Location.IsLeaf(st.Location) {
				t.Fatalf("record %d stage %d location not a leaf", i, j)
			}
		}
		for d, v := range r.Dims {
			if ds.Schema.Dims[d].Level(v) != 3 {
				t.Fatalf("record %d dim %d value not at leaf level", i, d)
			}
		}
	}
}

func TestDeterministicBySeed(t *testing.T) {
	cfg := datagen.Default()
	cfg.NumPaths = 200
	a := datagen.MustGenerate(cfg)
	b := datagen.MustGenerate(cfg)
	for i := range a.DB.Records {
		if !a.DB.Records[i].Path.Equal(b.DB.Records[i].Path) {
			t.Fatalf("same seed produced different path at record %d", i)
		}
		for d := range a.DB.Records[i].Dims {
			if a.DB.Records[i].Dims[d] != b.DB.Records[i].Dims[d] {
				t.Fatalf("same seed produced different dims at record %d", i)
			}
		}
	}
	cfg.Seed = 2
	c := datagen.MustGenerate(cfg)
	same := true
	for i := range a.DB.Records {
		if !a.DB.Records[i].Path.Equal(c.DB.Records[i].Path) {
			same = false
			break
		}
	}
	if same {
		t.Errorf("different seeds produced identical databases")
	}
}

func TestSkewEffect(t *testing.T) {
	// Higher sequence skew concentrates mass on fewer distinct paths.
	base := datagen.Default()
	base.NumPaths = 3000
	base.SeqSkew = 0.0
	flat := datagen.MustGenerate(base)
	base.SeqSkew = 2.0
	skewed := datagen.MustGenerate(base)

	distinct := func(ds *datagen.Dataset) int {
		seen := map[string]bool{}
		for _, r := range ds.DB.Records {
			key := ""
			for _, st := range r.Path {
				key += string(rune(st.Location)) + "|"
			}
			seen[key] = true
		}
		return len(seen)
	}
	if distinct(skewed) >= distinct(flat) {
		t.Errorf("skewed data has %d distinct location sequences, flat has %d; skew should concentrate",
			distinct(skewed), distinct(flat))
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*datagen.Config){
		func(c *datagen.Config) { c.NumPaths = 0 },
		func(c *datagen.Config) { c.NumDims = 0 },
		func(c *datagen.Config) { c.DimFanouts = [3]int{0, 1, 1} },
		func(c *datagen.Config) { c.LocFanouts = [2]int{0, 2} },
		func(c *datagen.Config) { c.NumSequences = 0 },
		func(c *datagen.Config) { c.SeqLenMin, c.SeqLenMax = 5, 3 },
		func(c *datagen.Config) { c.SeqLenMin = 0 },
		func(c *datagen.Config) { c.DurationDomain = 0 },
	}
	for i, mut := range bad {
		cfg := datagen.Default()
		mut(&cfg)
		if _, err := datagen.Generate(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestDefaultPlan(t *testing.T) {
	cfg := datagen.Default()
	cfg.NumPaths = 10
	ds := datagen.MustGenerate(cfg)
	plan := ds.DefaultPlan()
	if len(plan.PathLevels) != 4 {
		t.Fatalf("default plan has %d path levels, want 4", len(plan.PathLevels))
	}
	anyCount := 0
	for _, pl := range plan.PathLevels {
		if pl.Time.Any {
			anyCount++
		}
	}
	if anyCount != 2 {
		t.Errorf("default plan has %d '*'-time levels, want 2", anyCount)
	}
	// The leaf cut must refine the one-up cut.
	if !plan.PathLevels[0].Cut.Refines(plan.PathLevels[2].Cut) {
		t.Errorf("leaf cut does not refine the aggregated cut")
	}
	_ = hierarchy.Root
}
