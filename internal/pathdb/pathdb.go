// Package pathdb implements the RFID path database of paper §2.
//
// A cleansed RFID stream reduces to one tuple per item:
//
//	⟨d1, ..., dm : (l1, t1)(l2, t2)...(lk, tk)⟩
//
// where d1..dm are path-independent dimensions describing the item (product,
// brand, ...) and each (li, ti) records that the item stayed at location li
// for ti time units. Locations and dimension values are concepts in their
// respective hierarchies; records store leaf-level concepts and all
// aggregation happens on demand.
package pathdb

import (
	"fmt"
	"strings"

	"flowcube/internal/hierarchy"
)

// Stage is one step of a path: a location concept and the number of time
// units the item remained there.
type Stage struct {
	Location hierarchy.NodeID
	Duration int64
}

// Path is the ordered sequence of stages an item traversed.
type Path []Stage

// Record is one path database tuple: leaf-level item dimension values plus
// the item's path.
type Record struct {
	Dims []hierarchy.NodeID
	Path Path
}

// Schema describes a path database: one hierarchy per path-independent
// dimension plus the location hierarchy. Durations are integer time units;
// their abstraction is captured by TimeLevel at aggregation time.
type Schema struct {
	Dims     []*hierarchy.Hierarchy
	Location *hierarchy.Hierarchy
}

// NewSchema builds a schema, validating that dimension names are unique.
func NewSchema(location *hierarchy.Hierarchy, dims ...*hierarchy.Hierarchy) (*Schema, error) {
	if location == nil {
		return nil, fmt.Errorf("pathdb: schema requires a location hierarchy")
	}
	seen := make(map[string]bool, len(dims))
	for _, d := range dims {
		if d == nil {
			return nil, fmt.Errorf("pathdb: nil dimension hierarchy")
		}
		if seen[d.Dimension()] {
			return nil, fmt.Errorf("pathdb: duplicate dimension %q", d.Dimension())
		}
		seen[d.Dimension()] = true
	}
	return &Schema{Dims: dims, Location: location}, nil
}

// MustNewSchema is NewSchema for static construction; it panics on error.
func MustNewSchema(location *hierarchy.Hierarchy, dims ...*hierarchy.Hierarchy) *Schema {
	s, err := NewSchema(location, dims...)
	if err != nil {
		panic(err)
	}
	return s
}

// DimIndex resolves a dimension name to its index, or -1.
func (s *Schema) DimIndex(name string) int {
	for i, d := range s.Dims {
		if d.Dimension() == name {
			return i
		}
	}
	return -1
}

// DB is an in-memory path database.
type DB struct {
	Schema  *Schema
	Records []Record
}

// New returns an empty database over the schema.
func New(schema *Schema) *DB {
	return &DB{Schema: schema}
}

// Append validates a record against the schema and adds it.
func (db *DB) Append(r Record) error {
	if err := db.Schema.ValidateRecord(r); err != nil {
		return err
	}
	db.Records = append(db.Records, r)
	return nil
}

// ValidateRecord checks a record against the schema without storing it:
// dimension value arity and ranges, a non-empty path, location ranges, and
// non-negative durations. Batch ingestion (incr.ApplyDelta) validates whole
// batches up front with it so a bad record rejects the batch before any
// state changes.
func (s *Schema) ValidateRecord(r Record) error {
	if len(r.Dims) != len(s.Dims) {
		return fmt.Errorf("pathdb: record has %d dimension values, schema has %d",
			len(r.Dims), len(s.Dims))
	}
	for i, v := range r.Dims {
		if int(v) < 0 || int(v) >= s.Dims[i].Len() {
			return fmt.Errorf("pathdb: dimension %q value %d out of range",
				s.Dims[i].Dimension(), v)
		}
	}
	if len(r.Path) == 0 {
		return fmt.Errorf("pathdb: record has an empty path")
	}
	for _, st := range r.Path {
		if int(st.Location) < 0 || int(st.Location) >= s.Location.Len() {
			return fmt.Errorf("pathdb: location %d out of range", st.Location)
		}
		if st.Duration < 0 {
			return fmt.Errorf("pathdb: negative stage duration %d", st.Duration)
		}
	}
	return nil
}

// MustAppend is Append for static fixtures; it panics on error.
func (db *DB) MustAppend(r Record) {
	if err := db.Append(r); err != nil {
		panic(err)
	}
}

// Len reports the number of records.
func (db *DB) Len() int { return len(db.Records) }

// TimeLevel is the duration component of a path abstraction level. Grain
// discretizes durations into buckets of that many time units (Grain 1 keeps
// them as-is); Any aggregates durations to '*' so only the location sequence
// matters.
type TimeLevel struct {
	Grain int64
	Any   bool
}

// TimeBase is the identity time level (durations kept at source precision).
var TimeBase = TimeLevel{Grain: 1}

// TimeAny is the fully aggregated time level.
var TimeAny = TimeLevel{Any: true}

// Key returns a canonical identity string for the time level.
func (t TimeLevel) Key() string {
	if t.Any {
		return "t*"
	}
	return fmt.Sprintf("t%d", t.grain())
}

func (t TimeLevel) grain() int64 {
	if t.Grain <= 0 {
		return 1
	}
	return t.Grain
}

// Apply maps a raw duration to this time level. Under Any it returns 0 for
// every duration (the caller treats the value as '*').
func (t TimeLevel) Apply(d int64) int64 {
	if t.Any {
		return 0
	}
	return d / t.grain() * t.grain()
}

// PathLevel is a path abstraction level (⟨v1..vk⟩, tl) from §4.1: a cut
// through the location hierarchy plus a time level.
type PathLevel struct {
	Cut  *hierarchy.Cut
	Time TimeLevel
}

// Key returns a canonical identity string for the path level.
func (pl PathLevel) Key() string { return pl.Cut.Key() + "/" + pl.Time.Key() }

// DurationMerge combines the durations of consecutive stages that collapse
// to the same location concept during aggregation. The paper leaves the
// policy to the application; SumDurations is the default.
type DurationMerge func(durations []int64) int64

// SumDurations adds the merged stages' durations — the paper's "as simple
// as just adding the individual durations".
func SumDurations(durations []int64) int64 {
	var s int64
	for _, d := range durations {
		s += d
	}
	return s
}

// AggregatePath aggregates a path to a path abstraction level in the two
// steps of §4.1: (1) map each stage location through the cut and the
// duration through the time level; (2) merge runs of consecutive stages
// whose locations aggregated to the same concept, combining their raw
// durations with merge (then applying the time level to the merged value).
// A nil merge uses SumDurations.
func AggregatePath(p Path, level PathLevel, merge DurationMerge) Path {
	if merge == nil {
		merge = SumDurations
	}
	out := make(Path, 0, len(p))
	for i := 0; i < len(p); {
		loc := level.Cut.Map(p[i].Location)
		j := i + 1
		for j < len(p) && level.Cut.Map(p[j].Location) == loc {
			j++
		}
		var dur int64
		if j == i+1 {
			dur = p[i].Duration
		} else {
			ds := make([]int64, 0, j-i)
			for k := i; k < j; k++ {
				ds = append(ds, p[k].Duration)
			}
			dur = merge(ds)
		}
		out = append(out, Stage{Location: loc, Duration: level.Time.Apply(dur)})
		i = j
	}
	return out
}

// String renders a path as "(loc,dur)(loc,dur)..." using concept names,
// matching the paper's Table-1 notation.
func (p Path) String(loc *hierarchy.Hierarchy) string {
	var b strings.Builder
	for _, st := range p {
		fmt.Fprintf(&b, "(%s,%d)", loc.Name(st.Location), st.Duration)
	}
	return b.String()
}

// Equal reports stage-wise equality of two paths.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the path.
func (p Path) Clone() Path {
	return append(Path(nil), p...)
}
