package pathdb

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The on-disk format is line oriented, one record per line:
//
//	dim1,dim2,...|loc:dur loc:dur ...
//
// using concept names. Blank lines and lines starting with '#' are ignored.
// The schema is not serialized; readers supply it, which keeps data files
// small and makes them diffable in tests.

// WriteTo writes the database in the text format. It returns the number of
// bytes written.
func (db *DB) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	for _, r := range db.Records {
		line := db.formatRecord(r)
		m, err := bw.WriteString(line)
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

func (db *DB) formatRecord(r Record) string {
	var b strings.Builder
	for i, v := range r.Dims {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(db.Schema.Dims[i].Name(v))
	}
	b.WriteByte('|')
	for i, st := range r.Path {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(db.Schema.Location.Name(st.Location))
		b.WriteByte(':')
		b.WriteString(strconv.FormatInt(st.Duration, 10))
	}
	b.WriteByte('\n')
	return b.String()
}

// Read parses a database in the text format against the given schema.
func Read(r io.Reader, schema *Schema) (*DB, error) {
	db := New(schema)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rec, err := parseRecord(line, schema)
		if err != nil {
			return nil, fmt.Errorf("pathdb: line %d: %w", lineNo, err)
		}
		if err := db.Append(rec); err != nil {
			return nil, fmt.Errorf("pathdb: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("pathdb: read: %w", err)
	}
	return db, nil
}

func parseRecord(line string, schema *Schema) (Record, error) {
	dimsPart, pathPart, ok := strings.Cut(line, "|")
	if !ok {
		return Record{}, fmt.Errorf("missing '|' separator")
	}
	dimNames := splitNonEmpty(dimsPart, ",")
	if len(dimNames) != len(schema.Dims) {
		return Record{}, fmt.Errorf("got %d dimension values, schema has %d", len(dimNames), len(schema.Dims))
	}
	rec := Record{}
	for i, name := range dimNames {
		id, ok := schema.Dims[i].Lookup(strings.TrimSpace(name))
		if !ok {
			return Record{}, fmt.Errorf("unknown %s concept %q", schema.Dims[i].Dimension(), name)
		}
		rec.Dims = append(rec.Dims, id)
	}
	for _, tok := range strings.Fields(pathPart) {
		locName, durStr, ok := strings.Cut(tok, ":")
		if !ok {
			return Record{}, fmt.Errorf("bad stage %q, want loc:dur", tok)
		}
		loc, ok := schema.Location.Lookup(locName)
		if !ok {
			return Record{}, fmt.Errorf("unknown location %q", locName)
		}
		dur, err := strconv.ParseInt(durStr, 10, 64)
		if err != nil {
			return Record{}, fmt.Errorf("bad duration %q: %v", durStr, err)
		}
		rec.Path = append(rec.Path, Stage{Location: loc, Duration: dur})
	}
	return rec, nil
}

func splitNonEmpty(s, sep string) []string {
	parts := strings.Split(s, sep)
	out := parts[:0]
	for _, p := range parts {
		if strings.TrimSpace(p) != "" {
			out = append(out, p)
		}
	}
	return out
}
