package pathdb_test

import (
	"sync"
	"testing"

	"flowcube/internal/paperex"
	"flowcube/internal/pathdb"
)

func storeRecords(t *testing.T, n int) []pathdb.Record {
	t.Helper()
	ex := paperex.New()
	out := make([]pathdb.Record, 0, n)
	for len(out) < n {
		out = append(out, ex.DB.Records[len(out)%ex.DB.Len()])
	}
	return out
}

func TestStoreReserveCommit(t *testing.T) {
	recs := storeRecords(t, 10)
	s := pathdb.NewStore(append([]pathdb.Record(nil), recs[:4]...))
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}

	before := s.Committed()
	view := s.Reserve(3)
	if len(view) != 4 || cap(view) != 7 {
		t.Fatalf("Reserve view len=%d cap=%d, want 4/7", len(view), cap(view))
	}
	view = append(view, recs[4], recs[5], recs[6])
	// Not yet committed: readers still see 4 records.
	if s.Len() != 4 || len(s.Committed()) != 4 {
		t.Fatalf("pre-commit Len = %d, want 4", s.Len())
	}
	s.Commit(view)
	if s.Len() != 7 {
		t.Fatalf("post-commit Len = %d, want 7", s.Len())
	}
	// The pre-append view is capacity-clamped and still valid.
	if len(before) != 4 || cap(before) != 4 {
		t.Fatalf("old view len=%d cap=%d, want 4/4", len(before), cap(before))
	}
	for i := range before {
		if !sameRecord(before[i], recs[i]) {
			t.Fatalf("old view record %d changed", i)
		}
	}
	got := s.Committed()
	for i := range got {
		if !sameRecord(got[i], recs[i]) {
			t.Fatalf("committed record %d mismatch", i)
		}
	}
}

// TestStoreAbandonedReservation verifies an error path: reserving and
// writing but never committing leaves the store unchanged, and the next
// reservation reuses the tail.
func TestStoreAbandonedReservation(t *testing.T) {
	recs := storeRecords(t, 6)
	s := pathdb.NewStore(append([]pathdb.Record(nil), recs[:2]...))
	view := s.Reserve(2)
	_ = append(view, recs[2], recs[3])
	if s.Len() != 2 {
		t.Fatalf("abandoned reservation changed Len to %d", s.Len())
	}
	view = s.Reserve(2)
	view = append(view, recs[4], recs[5])
	s.Commit(view)
	got := s.Committed()
	if len(got) != 4 {
		t.Fatalf("Len = %d, want 4", len(got))
	}
	want := []pathdb.Record{recs[0], recs[1], recs[4], recs[5]}
	for i := range got {
		if !sameRecord(got[i], want[i]) {
			t.Fatalf("record %d mismatch after abandoned reservation", i)
		}
	}
}

// TestStoreInPlaceCommitKeepsCapacity checks the amortized-growth contract:
// committing an in-place append must not shrink the store's capacity to the
// reservation bound, or every subsequent reserve would reallocate.
func TestStoreInPlaceCommitKeepsCapacity(t *testing.T) {
	recs := storeRecords(t, 64)
	s := pathdb.NewStore(nil)
	allocs := 0
	var lastFirst *pathdb.Record
	for i := 0; i < 64; i++ {
		view := s.Reserve(1)
		view = append(view, recs[i])
		s.Commit(view)
		if first := &s.Committed()[0]; first != lastFirst {
			allocs++
			lastFirst = first
		}
	}
	// Doubling growth from 0: well under one reallocation per append.
	if allocs > 10 {
		t.Fatalf("64 single-record commits caused %d reallocations, want amortized growth", allocs)
	}
	if s.Len() != 64 {
		t.Fatalf("Len = %d, want 64", s.Len())
	}
}

// TestStoreConcurrentReaders hammers Committed views from readers while the
// single writer reserves, fills and commits — the exact access pattern the
// serving layer's MVCC snapshots rely on. Run under -race.
func TestStoreConcurrentReaders(t *testing.T) {
	recs := storeRecords(t, 512)
	s := pathdb.NewStore(append([]pathdb.Record(nil), recs[:8]...))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				view := s.Committed()
				for i := range view {
					if len(view[i].Dims) == 0 {
						t.Error("reader observed a partially written record")
						return
					}
				}
			}
		}()
	}
	for i := 8; i < len(recs); i += 4 {
		hi := i + 4
		if hi > len(recs) {
			hi = len(recs)
		}
		view := s.Reserve(hi - i)
		view = append(view, recs[i:hi]...)
		s.Commit(view)
	}
	close(stop)
	wg.Wait()
	if s.Len() != len(recs) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(recs))
	}
}

func sameRecord(a, b pathdb.Record) bool {
	if len(a.Dims) != len(b.Dims) || len(a.Path) != len(b.Path) {
		return false
	}
	for i := range a.Dims {
		if a.Dims[i] != b.Dims[i] {
			return false
		}
	}
	for i := range a.Path {
		if a.Path[i] != b.Path[i] {
			return false
		}
	}
	return true
}
