package pathdb

// Store is a single-writer, copy-on-write record log: the committed prefix
// is immutable and shared by every snapshot that references it, so an
// append costs O(batch) — reserve capacity past the committed length, write
// the new records there, publish by advancing the length — instead of the
// O(cube) full-slice copy the serving layer used to pay per batch.
//
// Concurrency contract: exactly one goroutine (the commit loop) may call
// Reserve and Commit. Committed may be called from anywhere; the views it
// returns are safe for concurrent readers even while the writer fills the
// reserved tail, because readers and writer touch disjoint index ranges of
// the backing array and the views are capacity-clamped (a reader appending
// to its view reallocates instead of clobbering the tail).
type Store struct {
	buf []Record
	n   int // committed length; buf[:n] is immutable
}

// NewStore adopts recs as the committed prefix. The caller hands over
// ownership: recs must not be mutated afterwards.
func NewStore(recs []Record) *Store {
	return &Store{buf: recs, n: len(recs)}
}

// Len reports the committed record count.
func (s *Store) Len() int { return s.n }

// Committed returns the committed records as a capacity-clamped view:
// len == cap == Len(), so appending to the view cannot reach into the
// store's reserved tail. The view stays valid (and immutable) forever —
// growth reallocates rather than moving committed records.
func (s *Store) Committed() []Record {
	return s.buf[:s.n:s.n]
}

// Reserve returns a view of the committed records with capacity for k more:
// len == Len(), cap == Len()+k. Appending up to k records to the view
// writes them in place past the committed prefix without reallocating —
// the in-progress tail existing readers never see. Publish with Commit;
// abandoning the view (on error) leaves the store unchanged.
//
// Growth copies only the committed prefix and doubles capacity, so a
// sequence of appends costs amortized O(records appended), and views handed
// out earlier keep their own (old) backing array untouched.
func (s *Store) Reserve(k int) []Record {
	if k < 0 {
		k = 0
	}
	if s.n+k > cap(s.buf) {
		newCap := 2 * cap(s.buf)
		if newCap < s.n+k {
			newCap = s.n + k
		}
		grown := make([]Record, s.n, newCap)
		copy(grown, s.buf[:s.n])
		s.buf = grown
	}
	return s.buf[: s.n : s.n+k]
}

// Commit publishes view — a slice obtained from Reserve and extended with
// appended records — as the new committed state. When the appends stayed
// within the reservation the records are already in place and only the
// committed length advances; a view that outgrew its reservation (and
// therefore reallocated) is adopted wholesale, leaving prior Committed
// views on the old backing array.
func (s *Store) Commit(view []Record) {
	n := len(view)
	if n > 0 && n <= cap(s.buf) && &s.buf[:n][n-1] == &view[n-1] {
		// In place: the appends landed in the reserved tail of the store's
		// own array. Keep the full capacity for future reservations.
		s.n = n
		return
	}
	s.buf = view[:n:cap(view)]
	s.n = n
}
