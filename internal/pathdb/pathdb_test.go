package pathdb_test

import (
	"strings"
	"testing"
	"testing/quick"

	"flowcube/internal/hierarchy"
	"flowcube/internal/pathdb"
)

func testSchema(t *testing.T) (*pathdb.Schema, *hierarchy.Hierarchy, *hierarchy.Hierarchy) {
	t.Helper()
	loc := hierarchy.New("location")
	loc.MustAddPath("transportation", "d")
	loc.MustAddPath("transportation", "t")
	loc.MustAddPath("factory", "f")
	loc.MustAddPath("store", "s")
	loc.MustAddPath("store", "c")
	prod := hierarchy.New("product")
	prod.MustAddPath("clothing", "shoes", "tennis")
	prod.MustAddPath("clothing", "shoes", "sandals")
	return pathdb.MustNewSchema(loc, prod), loc, prod
}

func mkPath(loc *hierarchy.Hierarchy, spec ...any) pathdb.Path {
	var p pathdb.Path
	for i := 0; i < len(spec); i += 2 {
		p = append(p, pathdb.Stage{
			Location: loc.MustLookup(spec[i].(string)),
			Duration: int64(spec[i+1].(int)),
		})
	}
	return p
}

func TestSchemaValidation(t *testing.T) {
	loc := hierarchy.New("loc")
	loc.MustAdd("*", "a")
	d := hierarchy.New("d")
	if _, err := pathdb.NewSchema(nil, d); err == nil {
		t.Errorf("nil location accepted")
	}
	if _, err := pathdb.NewSchema(loc, d, d); err == nil {
		t.Errorf("duplicate dimension accepted")
	}
	if _, err := pathdb.NewSchema(loc, nil); err == nil {
		t.Errorf("nil dimension accepted")
	}
	s, err := pathdb.NewSchema(loc, d)
	if err != nil {
		t.Fatal(err)
	}
	if s.DimIndex("d") != 0 || s.DimIndex("nope") != -1 {
		t.Errorf("DimIndex wrong")
	}
}

func TestAppendValidation(t *testing.T) {
	schema, loc, prod := testSchema(t)
	db := pathdb.New(schema)
	good := pathdb.Record{
		Dims: []hierarchy.NodeID{prod.MustLookup("tennis")},
		Path: mkPath(loc, "f", 1, "s", 2),
	}
	if err := db.Append(good); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	bad := []pathdb.Record{
		{Dims: nil, Path: mkPath(loc, "f", 1)},                                                              // missing dims
		{Dims: []hierarchy.NodeID{prod.MustLookup("tennis")}, Path: nil},                                    // empty path
		{Dims: []hierarchy.NodeID{999}, Path: mkPath(loc, "f", 1)},                                          // bad dim value
		{Dims: []hierarchy.NodeID{prod.MustLookup("tennis")}, Path: pathdb.Path{{99, 1}}},                   // bad location
		{Dims: []hierarchy.NodeID{prod.MustLookup("tennis")}, Path: pathdb.Path{{loc.MustLookup("f"), -1}}}, // negative duration
	}
	for i, r := range bad {
		if err := db.Append(r); err == nil {
			t.Errorf("bad record %d accepted", i)
		}
	}
	if db.Len() != 1 {
		t.Errorf("db.Len = %d, want 1", db.Len())
	}
}

func TestAggregatePathMergesRuns(t *testing.T) {
	_, loc, _ := testSchema(t)
	p := mkPath(loc, "f", 10, "d", 2, "t", 1, "s", 5, "c", 0)
	level := pathdb.PathLevel{Cut: hierarchy.LevelCut(loc, 1), Time: pathdb.TimeBase}
	agg := pathdb.AggregatePath(p, level, nil)
	if len(agg) != 3 {
		t.Fatalf("aggregated length = %d, want 3 (factory, transportation, store)", len(agg))
	}
	want := []struct {
		name string
		dur  int64
	}{{"factory", 10}, {"transportation", 3}, {"store", 5}}
	for i, w := range want {
		if agg[i].Location != loc.MustLookup(w.name) || agg[i].Duration != w.dur {
			t.Errorf("stage %d = (%s,%d), want (%s,%d)",
				i, loc.Name(agg[i].Location), agg[i].Duration, w.name, w.dur)
		}
	}
}

func TestAggregatePathCustomMerge(t *testing.T) {
	_, loc, _ := testSchema(t)
	p := mkPath(loc, "d", 2, "t", 4)
	level := pathdb.PathLevel{Cut: hierarchy.LevelCut(loc, 1), Time: pathdb.TimeBase}
	maxMerge := func(ds []int64) int64 {
		m := ds[0]
		for _, d := range ds[1:] {
			if d > m {
				m = d
			}
		}
		return m
	}
	agg := pathdb.AggregatePath(p, level, maxMerge)
	if len(agg) != 1 || agg[0].Duration != 4 {
		t.Errorf("max merge = %v, want single stage duration 4", agg)
	}
}

func TestAggregateIdentityLevel(t *testing.T) {
	_, loc, _ := testSchema(t)
	p := mkPath(loc, "f", 10, "d", 2, "s", 5)
	level := pathdb.PathLevel{Cut: hierarchy.LevelCut(loc, loc.Depth()), Time: pathdb.TimeBase}
	agg := pathdb.AggregatePath(p, level, nil)
	if !agg.Equal(p) {
		t.Errorf("identity aggregation changed the path: %v", agg)
	}
}

func TestTimeLevels(t *testing.T) {
	if pathdb.TimeBase.Apply(17) != 17 {
		t.Errorf("TimeBase must be identity")
	}
	if pathdb.TimeAny.Apply(17) != 0 {
		t.Errorf("TimeAny must collapse durations")
	}
	grain := pathdb.TimeLevel{Grain: 5}
	if grain.Apply(17) != 15 || grain.Apply(4) != 0 {
		t.Errorf("grain-5 bucketing wrong: %d %d", grain.Apply(17), grain.Apply(4))
	}
	if pathdb.TimeBase.Key() == pathdb.TimeAny.Key() || grain.Key() == pathdb.TimeBase.Key() {
		t.Errorf("time level keys collide")
	}
}

func TestPathLevelKeyDistinguishes(t *testing.T) {
	_, loc, _ := testSchema(t)
	leaf := hierarchy.LevelCut(loc, loc.Depth())
	up := hierarchy.LevelCut(loc, 1)
	keys := map[string]bool{}
	for _, pl := range []pathdb.PathLevel{
		{Cut: leaf, Time: pathdb.TimeBase},
		{Cut: leaf, Time: pathdb.TimeAny},
		{Cut: up, Time: pathdb.TimeBase},
		{Cut: up, Time: pathdb.TimeAny},
	} {
		keys[pl.Key()] = true
	}
	if len(keys) != 4 {
		t.Errorf("path level keys collide: %v", keys)
	}
}

func TestIORoundTrip(t *testing.T) {
	schema, loc, prod := testSchema(t)
	db := pathdb.New(schema)
	db.MustAppend(pathdb.Record{
		Dims: []hierarchy.NodeID{prod.MustLookup("tennis")},
		Path: mkPath(loc, "f", 10, "d", 2, "s", 5),
	})
	db.MustAppend(pathdb.Record{
		Dims: []hierarchy.NodeID{prod.MustLookup("sandals")},
		Path: mkPath(loc, "f", 3, "c", 0),
	})
	var sb strings.Builder
	if _, err := db.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := pathdb.Read(strings.NewReader(sb.String()), schema)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != db.Len() {
		t.Fatalf("round trip lost records: %d vs %d", back.Len(), db.Len())
	}
	for i := range db.Records {
		if !back.Records[i].Path.Equal(db.Records[i].Path) {
			t.Errorf("record %d path mismatch", i)
		}
		for d := range db.Records[i].Dims {
			if back.Records[i].Dims[d] != db.Records[i].Dims[d] {
				t.Errorf("record %d dim %d mismatch", i, d)
			}
		}
	}
}

func TestReadErrors(t *testing.T) {
	schema, _, _ := testSchema(t)
	cases := []string{
		"tennis f:10",         // missing separator
		"tennis,extra|f:10",   // wrong dim count
		"nosuch|f:10",         // unknown dim value
		"tennis|nosuch:10",    // unknown location
		"tennis|f:notanumber", // bad duration
		"tennis|f10",          // bad stage syntax
	}
	for _, c := range cases {
		if _, err := pathdb.Read(strings.NewReader(c+"\n"), schema); err == nil {
			t.Errorf("malformed line %q accepted", c)
		}
	}
	// Comments and blank lines are fine.
	ok := "# header\n\ntennis|f:10 s:2\n"
	db, err := pathdb.Read(strings.NewReader(ok), schema)
	if err != nil || db.Len() != 1 {
		t.Errorf("comment handling broken: %v", err)
	}
}

func TestPathHelpers(t *testing.T) {
	_, loc, _ := testSchema(t)
	p := mkPath(loc, "f", 10, "d", 2)
	if s := p.String(loc); s != "(f,10)(d,2)" {
		t.Errorf("String = %q", s)
	}
	c := p.Clone()
	c[0].Duration = 99
	if p[0].Duration == 99 {
		t.Errorf("Clone aliases the original")
	}
	if p.Equal(c) {
		t.Errorf("Equal missed a difference")
	}
	if !p.Equal(p.Clone()) {
		t.Errorf("Equal rejected identical paths")
	}
	if p.Equal(p[:1]) {
		t.Errorf("Equal ignored length")
	}
}

// Property: aggregating an already-aggregated path at the same level is
// the identity (idempotence), and aggregation never lengthens a path.
func TestAggregateIdempotentProperty(t *testing.T) {
	loc := hierarchy.Generate("loc", 3, 3)
	leaves := loc.Leaves()
	levels := []pathdb.PathLevel{
		{Cut: hierarchy.LevelCut(loc, 2), Time: pathdb.TimeBase},
		{Cut: hierarchy.LevelCut(loc, 1), Time: pathdb.TimeBase},
		{Cut: hierarchy.LevelCut(loc, 1), Time: pathdb.TimeAny},
	}
	f := func(locIdx []uint8, durs []uint8, levelIdx uint8) bool {
		n := len(locIdx)
		if len(durs) < n {
			n = len(durs)
		}
		if n == 0 {
			return true
		}
		var p pathdb.Path
		for i := 0; i < n; i++ {
			l := leaves[int(locIdx[i])%len(leaves)]
			if len(p) > 0 && p[len(p)-1].Location == l {
				continue // keep the consecutive-distinct invariant
			}
			p = append(p, pathdb.Stage{Location: l, Duration: int64(durs[i] % 20)})
		}
		if len(p) == 0 {
			return true
		}
		level := levels[int(levelIdx)%len(levels)]
		once := pathdb.AggregatePath(p, level, nil)
		twice := pathdb.AggregatePath(once, level, nil)
		return twice.Equal(once) && len(once) <= len(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: total duration is preserved by aggregation under SumDurations
// at TimeBase — merging only redistributes stage boundaries.
func TestAggregatePreservesTotalDurationProperty(t *testing.T) {
	loc := hierarchy.Generate("loc", 3, 3)
	leaves := loc.Leaves()
	level := pathdb.PathLevel{Cut: hierarchy.LevelCut(loc, 1), Time: pathdb.TimeBase}
	f := func(locIdx []uint8, durs []uint8) bool {
		n := len(locIdx)
		if len(durs) < n {
			n = len(durs)
		}
		var p pathdb.Path
		for i := 0; i < n; i++ {
			l := leaves[int(locIdx[i])%len(leaves)]
			if len(p) > 0 && p[len(p)-1].Location == l {
				continue
			}
			p = append(p, pathdb.Stage{Location: l, Duration: int64(durs[i] % 20)})
		}
		var want, got int64
		for _, st := range p {
			want += st.Duration
		}
		for _, st := range pathdb.AggregatePath(p, level, nil) {
			got += st.Duration
		}
		return want == got
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: coarse-of-fine equals coarse-of-raw — aggregating to a coarse
// cut via an intermediate finer cut gives the same location sequence as
// aggregating directly (durations also agree under SumDurations).
func TestAggregateCommutesProperty(t *testing.T) {
	loc := hierarchy.Generate("loc", 3, 3)
	leaves := loc.Leaves()
	fine := pathdb.PathLevel{Cut: hierarchy.LevelCut(loc, 2), Time: pathdb.TimeBase}
	coarse := pathdb.PathLevel{Cut: hierarchy.LevelCut(loc, 1), Time: pathdb.TimeBase}
	f := func(locIdx []uint8, durs []uint8) bool {
		n := len(locIdx)
		if len(durs) < n {
			n = len(durs)
		}
		var p pathdb.Path
		for i := 0; i < n; i++ {
			l := leaves[int(locIdx[i])%len(leaves)]
			if len(p) > 0 && p[len(p)-1].Location == l {
				continue
			}
			p = append(p, pathdb.Stage{Location: l, Duration: int64(durs[i] % 20)})
		}
		direct := pathdb.AggregatePath(p, coarse, nil)
		viaFine := pathdb.AggregatePath(pathdb.AggregatePath(p, fine, nil), coarse, nil)
		return direct.Equal(viaFine)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
