package pathdb_test

import (
	"bytes"
	"strings"
	"testing"

	"flowcube/internal/hierarchy"
	"flowcube/internal/pathdb"
)

func fuzzIOSchema(t testing.TB) *pathdb.Schema {
	t.Helper()
	loc := hierarchy.New("location")
	loc.MustAddPath("wa", "seattle")
	loc.MustAddPath("wa", "tacoma")
	loc.MustAddPath("ca", "la")
	d0 := hierarchy.New("d0")
	d0.MustAddPath("a", "a1")
	d0.MustAddPath("b")
	d1 := hierarchy.New("d1")
	d1.MustAddPath("x")
	d1.MustAddPath("y")
	schema, err := pathdb.NewSchema(loc, d0, d1)
	if err != nil {
		t.Fatal(err)
	}
	return schema
}

// FuzzRead throws arbitrary bytes at the .fdb text parser. Malformed input
// must come back as an error — never a panic — and any database the parser
// accepts must survive a WriteTo/Read round trip with identical content
// (the same property the CLI relies on when regenerating datasets).
func FuzzRead(f *testing.F) {
	schema := fuzzIOSchema(f)
	for _, seed := range []string{
		"",
		"# comment only\n",
		"a1,x|seattle:3 tacoma:4\n",
		"a1,x|seattle:3\nb,y|la:10 seattle:2\n",
		"a1,x|\n",
		"a1,x|seattle\n",
		"a1,x|seattle:\n",
		"a1,x|seattle:nope\n",
		"a1,x|seattle:-5\n",
		"a1|seattle:3\n",
		"a1,x,extra|seattle:3\n",
		"nope,x|seattle:3\n",
		"a1,x|nowhere:3\n",
		"a1,x seattle:3\n",
		"  a1 , x |  seattle:3   tacoma:4  \n",
		"a1,x|seattle:9223372036854775807\n",
		"a1,x|seattle:99999999999999999999\n",
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		db, err := pathdb.Read(bytes.NewReader(data), schema)
		if err != nil {
			return // rejected without panicking: fine
		}
		var out bytes.Buffer
		n, err := db.WriteTo(&out)
		if err != nil {
			t.Fatalf("WriteTo failed on accepted input %q: %v", data, err)
		}
		if n != int64(out.Len()) {
			t.Fatalf("WriteTo reported %d bytes, wrote %d", n, out.Len())
		}
		db2, err := pathdb.Read(bytes.NewReader(out.Bytes()), schema)
		if err != nil {
			t.Fatalf("round trip of accepted input %q does not re-parse: %v\nwritten: %q", data, err, out.String())
		}
		if len(db2.Records) != len(db.Records) {
			t.Fatalf("round trip changed record count: %d -> %d", len(db.Records), len(db2.Records))
		}
		for i := range db.Records {
			a, b := db.Records[i], db2.Records[i]
			if len(a.Dims) != len(b.Dims) || len(a.Path) != len(b.Path) {
				t.Fatalf("record %d shape changed", i)
			}
			for d := range a.Dims {
				if a.Dims[d] != b.Dims[d] {
					t.Fatalf("record %d dim %d: %d -> %d", i, d, a.Dims[d], b.Dims[d])
				}
			}
			for s := range a.Path {
				if a.Path[s] != b.Path[s] {
					t.Fatalf("record %d stage %d: %+v -> %+v", i, s, a.Path[s], b.Path[s])
				}
			}
		}
		// A second WriteTo is byte-identical: serialization is deterministic.
		var out2 bytes.Buffer
		if _, err := db2.WriteTo(&out2); err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(out2.String(), out.String()) || out2.Len() != out.Len() {
			t.Fatalf("re-serialization differs:\n%q\nvs\n%q", out.String(), out2.String())
		}
	})
}
