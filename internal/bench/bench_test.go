package bench_test

import (
	"context"
	"strings"
	"testing"

	"flowcube/internal/bench"
)

// tiny runs the harness at a minuscule scale so the tests validate the
// runners' wiring and invariants, not their timing. The support floor
// keeps percentage supports from rounding down to a handful of paths,
// which would explode the pattern space at this scale.
func tiny() bench.Options {
	return bench.Options{Scale: 0.005, Seed: 1, SupportFloor: 25} // 500 paths at the 100k baseline
}

func TestFig6Shape(t *testing.T) {
	opts := tiny()
	opts.Algorithms = []string{bench.AlgoShared, bench.AlgoCubing}
	fig := bench.Fig6(opts)
	if len(fig.Series) != 2 {
		t.Fatalf("fig6 has %d series, want 2", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Points) != 6 {
			t.Fatalf("series %s has %d points, want 6", s.Algorithm, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Seconds <= 0 || p.Aborted {
				t.Errorf("series %s point X=%g invalid: %+v", s.Algorithm, p.X, p)
			}
		}
		// X must be the scaled database sizes, increasing.
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].X <= s.Points[i-1].X {
				t.Errorf("series %s X not increasing", s.Algorithm)
			}
		}
	}
	// Shared and cubing find the same number of frequent patterns? Not in
	// general (cubing double-counts per cell) — but both must find some.
	for _, s := range fig.Series {
		if s.Points[0].Patterns == 0 {
			t.Errorf("series %s found no patterns", s.Algorithm)
		}
	}
}

func TestFig7SupportsDecreasing(t *testing.T) {
	opts := tiny()
	opts.Algorithms = []string{bench.AlgoShared}
	fig := bench.Fig7(opts)
	s := fig.Series[0]
	if len(s.Points) != 6 {
		t.Fatalf("fig7 has %d points", len(s.Points))
	}
	// Higher support ⇒ no more patterns than lower support.
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].Patterns > s.Points[i-1].Patterns {
			t.Errorf("patterns increased with support: %v", s.Points)
		}
	}
}

func TestFig11CandidateDominance(t *testing.T) {
	fig := bench.Fig11(tiny())
	var shared, basic *bench.Series
	for i := range fig.Series {
		switch fig.Series[i].Algorithm {
		case bench.AlgoShared:
			shared = &fig.Series[i]
		case bench.AlgoBasic:
			basic = &fig.Series[i]
		}
	}
	if shared == nil || basic == nil {
		t.Fatal("fig11 missing a series")
	}
	sharedTotal, basicTotal := 0, 0
	for i := range shared.Points {
		sharedTotal += shared.Points[i].Patterns
	}
	for i := range basic.Points {
		basicTotal += basic.Points[i].Patterns
	}
	if sharedTotal >= basicTotal {
		t.Errorf("shared counted %d candidates, basic %d: pruning has no effect", sharedTotal, basicTotal)
	}
	// Shared's longest counted length must not exceed basic's.
	last := func(s *bench.Series) int {
		n := 0
		for i, p := range s.Points {
			if p.Patterns > 0 {
				n = i + 1
			}
		}
		return n
	}
	if last(shared) > last(basic) {
		t.Errorf("shared counted longer patterns (%d) than basic (%d)", last(shared), last(basic))
	}
}

func TestWriteTableRendering(t *testing.T) {
	opts := tiny()
	opts.Algorithms = []string{bench.AlgoShared}
	fig := bench.Fig9(opts)
	var sb strings.Builder
	fig.WriteTable(&sb)
	out := sb.String()
	for _, want := range []string{"# Figure 9", "dataset", "shared", "a", "b", "c"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestAblationPruningShape(t *testing.T) {
	rows := bench.AblationPruning(tiny())
	if len(rows) != 5 {
		t.Fatalf("pruning ablation has %d rows, want 5", len(rows))
	}
	all := rows[0]
	none := rows[len(rows)-1]
	if !strings.Contains(all.Name, "shared") || !strings.Contains(none.Name, "basic") {
		t.Fatalf("unexpected row order: %v", rows)
	}
	if !none.Aborted && all.Candidates >= none.Candidates {
		t.Errorf("full pruning (%d candidates) should beat none (%d)", all.Candidates, none.Candidates)
	}
	// Each single-disabled variant counts at least as many candidates as
	// the fully-pruned run.
	for _, r := range rows[1:4] {
		if !r.Aborted && r.Candidates < all.Candidates {
			t.Errorf("variant %q counted fewer candidates (%d) than full pruning (%d)",
				r.Name, r.Candidates, all.Candidates)
		}
	}
}

func TestAblationMergeAgreesAndRuns(t *testing.T) {
	rows := bench.AblationMerge(tiny())
	if len(rows) != 2 {
		t.Fatalf("merge ablation has %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Seconds < 0 {
			t.Errorf("negative time in %v", r)
		}
	}
}

func TestAblationCountingAgrees(t *testing.T) {
	rows := bench.AblationCounting(tiny())
	if len(rows) != 2 || rows[0].Candidates != rows[1].Candidates {
		t.Fatalf("counting ablation rows inconsistent: %v", rows)
	}
}

func TestAblationRedundancyMonotone(t *testing.T) {
	rows := bench.AblationRedundancy(tiny())
	// Retained cells must be non-increasing as tau falls? tau rises ⇒
	// similarity bar rises ⇒ fewer cells redundant ⇒ more retained.
	for i := 1; i < len(rows); i++ {
		if rows[i].Cells < rows[i-1].Cells {
			t.Errorf("retained cells decreased as tau rose: %v", rows)
		}
	}
}

func TestAblationIcebergMonotone(t *testing.T) {
	rows := bench.AblationIceberg(tiny())
	for i := 1; i < len(rows); i++ {
		if rows[i].Cells > rows[i-1].Cells {
			t.Errorf("materialized cells increased with delta: %v", rows)
		}
	}
}

func TestWriteRowsRendering(t *testing.T) {
	var sb strings.Builder
	bench.WriteRows(&sb, "test", []bench.AblationRow{
		{Name: "x", Seconds: 0.5, Candidates: 10},
		{Name: "y", Aborted: true},
	})
	out := sb.String()
	if !strings.Contains(out, "aborted") || !strings.Contains(out, "0.500") {
		t.Errorf("rows output unexpected:\n%s", out)
	}
}

func TestAblationEngineAgrees(t *testing.T) {
	rows := bench.AblationEngine(tiny())
	if len(rows) != 2 {
		t.Fatalf("engine ablation has %d rows", len(rows))
	}
	if rows[0].Candidates != rows[1].Candidates {
		t.Errorf("engines disagree: %d vs %d segments", rows[0].Candidates, rows[1].Candidates)
	}
}

func TestAblationParallelConsistent(t *testing.T) {
	rows := bench.AblationParallel(tiny())
	if len(rows) != 4 {
		t.Fatalf("parallel ablation has %d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Candidates != rows[0].Candidates {
			t.Errorf("worker count changed results: %v", rows)
		}
	}
}

// TestOLAPSuiteShape validates the -olap runner's invariants at a tiny
// scale: the planner must shrink the snapshot, every sampled
// reconstruction must digest-verify against its eager twin, and loosening
// the budget must never drop fewer cuboids.
func TestOLAPSuiteShape(t *testing.T) {
	// The floor keeps δ from collapsing to a couple of paths at this scale,
	// which would explode the frequent-cell space and turn the planner's
	// per-cell verification into minutes of work.
	suite := bench.OLAP(context.Background(), bench.Options{Scale: 0.02, Seed: 1, SupportFloor: 8})
	if !suite.DigestVerified {
		t.Fatal("sampled reconstructions did not digest-verify against eager cells")
	}
	if suite.Queries == 0 {
		t.Fatal("no dropped-cell queries sampled")
	}
	if len(suite.Budgets) == 0 {
		t.Fatal("no budget rows")
	}
	last := suite.Budgets[len(suite.Budgets)-1]
	if last.Budget != 0 {
		t.Fatalf("last budget row is %d, want 0 (unlimited)", last.Budget)
	}
	if last.SnapshotBytes >= suite.EagerSnapshotBytes {
		t.Errorf("unlimited budget saved no bytes: %d vs eager %d", last.SnapshotBytes, suite.EagerSnapshotBytes)
	}
	prev := -1
	for _, row := range suite.Budgets[:len(suite.Budgets)-1] {
		if row.Budget > 0 && row.MaxFold > row.Budget {
			t.Errorf("budget %d exceeded: max fold %d", row.Budget, row.MaxFold)
		}
		if prev >= 0 && row.CuboidsDropped < prev {
			t.Errorf("budget %d dropped fewer cuboids (%d) than a tighter budget (%d)", row.Budget, row.CuboidsDropped, prev)
		}
		prev = row.CuboidsDropped
	}
	if last.CuboidsDropped < prev {
		t.Errorf("unlimited budget dropped fewer cuboids (%d) than budget 64 (%d)", last.CuboidsDropped, prev)
	}
}
