package bench

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"flowcube/internal/core"
	"flowcube/internal/datagen"
	"flowcube/internal/incr"
	"flowcube/internal/pathdb"
	"flowcube/internal/server"
)

// IngestThroughput is one append-throughput measurement: many writers
// posting equal-size batches against a live server.
type IngestThroughput struct {
	// GroupLimit is the committer's coalescing cap (1 = serialized).
	GroupLimit int     `json:"group_limit"`
	WallMs     float64 `json:"wall_ms"`
	// AppendsPerSec is accepted append requests per second of wall time.
	AppendsPerSec float64 `json:"appends_per_sec"`
	// Folds is how many commit groups (delta folds + fsyncs) the run cost.
	Folds    int64 `json:"folds"`
	GroupP50 int   `json:"group_p50"`
	GroupMax int   `json:"group_max"`
}

// IngestRemine compares the two exception re-mining paths on the same batch:
// the warm-cache restricted path (re-mine only what the batch moved) against
// the cold full per-cell re-mine. Exactness is asserted, not assumed:
// DigestsEqual records that both paths produced byte-identical Save output.
type IngestRemine struct {
	FullMs       float64 `json:"full_ms"`
	RestrictedMs float64 `json:"restricted_ms"`
	// Speedup is full-re-mine time over restricted time for the same batch.
	Speedup         float64 `json:"speedup_full_over_restricted"`
	CellsRestricted int     `json:"cells_remined_restricted"`
	PrefixesRemined int     `json:"prefixes_remined"`
	DigestsEqual    bool    `json:"digests_equal"`
}

// IngestSuite is the write-path benchmark serialized to BENCH_ingest.json
// via cmd/flowbench -ingest: group-commit throughput against the serialized
// baseline (same batch size, same WAL), reader tail latency while the write
// path is saturated, and the batch-proportional exception re-mine against
// the full per-cell re-mine. See DESIGN.md §11.
type IngestSuite struct {
	GoVersion        string `json:"go_version"`
	GOMAXPROCS       int    `json:"gomaxprocs"`
	Paths            int    `json:"paths"`
	BatchRecords     int    `json:"batch_records"`
	Writers          int    `json:"writers"`
	BatchesPerWriter int    `json:"batches_per_writer"`
	MinCount         int64  `json:"min_count"`
	Seed             int64  `json:"seed"`

	Serialized IngestThroughput `json:"serialized"`
	Grouped    IngestThroughput `json:"grouped"`
	// Speedup is the headline number (acceptance: >= 3x): grouped
	// appends/sec over serialized appends/sec at equal batch size.
	Speedup float64 `json:"speedup_grouped_over_serialized"`

	// Reader tail latency (GET /v1/summary, response cache off so every
	// read computes): sampled during a grouped write storm on a dedicated
	// server, against an idle baseline taken on the same server — same
	// grown snapshot, same heap — after the storm drains. MVCC reads never
	// block on commits, so the loaded p99 must stay within 2x of idle.
	ReadIdleP99Ms   float64 `json:"read_idle_p99_ms"`
	ReadLoadedP99Ms float64 `json:"read_loaded_p99_ms"`
	ReadP99Ratio    float64 `json:"read_p99_ratio"`
	ReadsLoaded     int     `json:"reads_loaded"`

	Remine IngestRemine `json:"remine_1pct_batch"`
}

const (
	ingestWriters     = 16
	ingestRemineIters = 2
)

// ingestBatchesPerWriter bounds the run: the serialized baseline pays one
// clone-and-fold per body, so tiny smoke scales get a shorter storm.
func ingestBatchesPerWriter(o Options) int {
	if o.scale() < 0.05 {
		return 2
	}
	return 6
}

// Ingest benchmarks the serving write path end to end. ctx covers server
// startup (WAL scan/replay); the storms themselves run to completion.
func Ingest(ctx context.Context, o Options) IngestSuite {
	cfg := o.baseConfig()
	cfg.NumPaths = int(20_000 * o.scale())
	if cfg.NumPaths < 200 {
		cfg.NumPaths = 200
	}
	ds := datagen.MustGenerate(cfg)
	n := ds.DB.Len()
	base := n * 9 / 10
	batchLen := n / 200 // 0.5% batches: small enough that folds queue up
	if batchLen < 1 {
		batchLen = 1
	}
	minCount := o.minCount(0.01, n)
	coreCfg := core.Config{
		MinCount: minCount, Plan: ds.DefaultPlan(),
		DeltaLedger: true, Workers: runtime.GOMAXPROCS(0),
	}

	bpw := ingestBatchesPerWriter(o)
	suite := IngestSuite{
		GoVersion:        runtime.Version(),
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		Paths:            n,
		BatchRecords:     batchLen,
		Writers:          ingestWriters,
		BatchesPerWriter: bpw,
		MinCount:         minCount,
		Seed:             cfg.Seed,
	}

	// Pre-render every batch body once; both runs post identical payloads.
	// Batches cycle over the held-out 10% (duplicates are ordinary appends).
	bodies := make([]string, ingestWriters*bpw)
	for i := range bodies {
		lo := base + (i*batchLen)%(n-base-batchLen+1)
		var buf bytes.Buffer
		db := &pathdb.DB{Schema: ds.DB.Schema, Records: ds.DB.Records[lo : lo+batchLen]}
		if _, err := db.WriteTo(&buf); err != nil {
			panic(fmt.Sprintf("bench: render ingest batch: %v", err))
		}
		bodies[i] = buf.String()
	}

	walDir, err := os.MkdirTemp("", "flowbench-ingest")
	if err != nil {
		panic(fmt.Sprintf("bench: ingest WAL scratch dir: %v", err))
	}
	defer func() { _ = os.RemoveAll(walDir) }() // scratch; nothing actionable on failure

	// Append throughput, nothing else on the box: the two modes run the
	// identical storm (same bodies, same writers, same WAL) with only the
	// committer's group limit changed.
	for _, mode := range []struct {
		name       string
		groupLimit int
	}{
		{"serialized", 1},
		{"grouped", 0}, // ingest default (64)
	} {
		s := newIngestServer(ctx, ds, base, coreCfg, server.Config{
			GroupLimit: mode.groupLimit,
			WALPath:    filepath.Join(walDir, mode.name+".wal"),
		})
		tp := ingestThroughput(s, bodies)
		tp.GroupLimit = mode.groupLimit
		_ = s.Close() // scratch server over a temp WAL; nothing actionable
		o.progress("ingest %s: %.1f appends/sec (%d folds, group p50 %d max %d) in %.0f ms",
			mode.name, tp.AppendsPerSec, tp.Folds, tp.GroupP50, tp.GroupMax, tp.WallMs)
		if mode.name == "grouped" {
			suite.Grouped = tp
		} else {
			suite.Serialized = tp
		}
	}
	if suite.Serialized.AppendsPerSec > 0 {
		suite.Speedup = suite.Grouped.AppendsPerSec / suite.Serialized.AppendsPerSec
	}

	// Reader tail latency on a dedicated grouped server, response cache off
	// so every sample computes against the current snapshot. The idle
	// baseline runs on the same server after the storm drains: same grown
	// cube, same heap — only the write path is absent.
	rs := newIngestServer(ctx, ds, base, coreCfg, server.Config{
		GroupLimit: 0,
		WALPath:    filepath.Join(walDir, "reads.wal"),
		CacheSize:  -1,
	})
	loaded := ingestReadStorm(rs, bodies[:len(bodies)/2])
	suite.ReadLoadedP99Ms = p99Ms(loaded)
	suite.ReadsLoaded = len(loaded)
	suite.ReadIdleP99Ms = p99Ms(readLatencies(rs.Handler(), 200, nil))
	_ = rs.Close() // scratch server over a temp WAL; nothing actionable
	if suite.ReadIdleP99Ms > 0 {
		suite.ReadP99Ratio = suite.ReadLoadedP99Ms / suite.ReadIdleP99Ms
	}
	o.progress("ingest reads: idle p99 %.3f ms, loaded p99 %.3f ms (%.2fx over %d reads)",
		suite.ReadIdleP99Ms, suite.ReadLoadedP99Ms, suite.ReadP99Ratio, suite.ReadsLoaded)

	suite.Remine = ingestRemine(o, ds, minCount)
	return suite
}

// newIngestServer serves a cube built over the dataset's first base records,
// with the database attached so appends work.
func newIngestServer(ctx context.Context, ds *datagen.Dataset, base int, coreCfg core.Config, sCfg server.Config) *server.Server {
	sCfg.Logger = log.New(io.Discard, "", 0)
	s, err := server.NewContext(ctx, func() (*core.Cube, server.LoadInfo, error) {
		db := &pathdb.DB{Schema: ds.DB.Schema, Records: append([]pathdb.Record(nil), ds.DB.Records[:base]...)}
		cube, err := core.Build(db, coreCfg)
		if err != nil {
			return nil, server.LoadInfo{}, err
		}
		return cube, server.LoadInfo{DB: db}, nil
	}, "bench", sCfg)
	if err != nil {
		panic(fmt.Sprintf("bench: ingest server: %v", err))
	}
	return s
}

// ingestStorm fires every batch body at /admin/append from ingestWriters
// concurrent goroutines (a shared counter hands out bodies, so any writer
// count drains any storm size) and returns the wall time.
func ingestStorm(h http.Handler, bodies []string) time.Duration {
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < ingestWriters; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(len(bodies)) {
					return
				}
				req := httptest.NewRequest(http.MethodPost, "/admin/append", strings.NewReader(bodies[i]))
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					panic(fmt.Sprintf("bench: ingest append: status %d: %s", rec.Code, rec.Body.String()))
				}
			}
		}()
	}
	wg.Wait()
	return time.Since(start)
}

// ingestThroughput runs one write storm with nothing else on the box and
// reports wall-clock append throughput.
func ingestThroughput(s *server.Server, bodies []string) IngestThroughput {
	wall := ingestStorm(s.Handler(), bodies)
	m := s.Metrics()
	tp := IngestThroughput{
		WallMs:   float64(wall.Nanoseconds()) / 1e6,
		Folds:    m.Ingest.Groups,
		GroupP50: m.Ingest.GroupP50,
		GroupMax: m.Ingest.GroupMax,
	}
	if wall > 0 {
		tp.AppendsPerSec = float64(len(bodies)) / wall.Seconds()
	}
	return tp
}

// ingestReadStorm runs a write storm while one reader goroutine samples
// GET /v1/summary latency, returning the samples taken inside the storm
// window.
func ingestReadStorm(s *server.Server, bodies []string) []time.Duration {
	h := s.Handler()
	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	var loaded []time.Duration
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		loaded = readLatencies(h, 0, stop)
	}()
	ingestStorm(h, bodies)
	close(stop)
	readerWG.Wait()
	return loaded
}

// readLatencies issues GET /v1/summary requests and returns their
// latencies: a fixed count when count > 0, otherwise until stop closes.
func readLatencies(h http.Handler, count int, stop <-chan struct{}) []time.Duration {
	var out []time.Duration
	for i := 0; count == 0 || i < count; i++ {
		if stop != nil {
			select {
			case <-stop:
				return out
			default:
			}
		}
		req := httptest.NewRequest(http.MethodGet, "/v1/summary", nil)
		rec := httptest.NewRecorder()
		start := time.Now()
		h.ServeHTTP(rec, req)
		out = append(out, time.Since(start))
		if rec.Code != http.StatusOK {
			panic(fmt.Sprintf("bench: ingest read: status %d", rec.Code))
		}
	}
	return out
}

func p99Ms(samples []time.Duration) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := len(sorted) * 99 / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx].Nanoseconds()) / 1e6
}

// ingestRemine times the same 1% exception-mining batch down both re-mining
// paths — warm condition cache (restricted) versus dropped cache (full
// per-cell re-mine) — and asserts their Save outputs are byte-identical.
func ingestRemine(o Options, ds *datagen.Dataset, minCount int64) IngestRemine {
	n := ds.DB.Len()
	batchLen := n / 100
	if batchLen < 1 {
		batchLen = 1
	}
	split := n - batchLen
	batch := ds.DB.Records[split:]
	cfg := core.Config{
		MinCount: minCount, Epsilon: 0.1, Plan: ds.DefaultPlan(),
		MineExceptions: true, SingleStageExceptions: true,
		DeltaLedger: true, Workers: runtime.GOMAXPROCS(0),
	}
	prefix := &pathdb.DB{Schema: ds.DB.Schema, Records: append([]pathdb.Record(nil), ds.DB.Records[:split]...)}
	base, err := core.Build(prefix, cfg) // Build warms the condition cache
	if err != nil {
		panic(fmt.Sprintf("bench: ingest remine base build: %v", err))
	}

	run := func(dropCache bool) (int64, *incr.Stats, *core.Cube) {
		best := int64(0)
		var stats *incr.Stats
		var cube *core.Cube
		for i := 0; i < ingestRemineIters; i++ {
			cube = base.Clone()
			if dropCache {
				cube.DropCondCache()
			}
			db := &pathdb.DB{Schema: ds.DB.Schema, Records: append([]pathdb.Record(nil), prefix.Records...)}
			start := time.Now()
			stats, err = incr.ApplyDelta(cube, db, batch)
			if err != nil {
				panic(fmt.Sprintf("bench: ingest remine delta: %v", err))
			}
			if ns := time.Since(start).Nanoseconds(); best == 0 || ns < best {
				best = ns
			}
		}
		return best, stats, cube
	}

	restrictedNs, restrictedStats, warmCube := run(false)
	fullNs, _, coldCube := run(true)

	var warmSave, coldSave bytes.Buffer
	if err := warmCube.Save(&warmSave); err != nil {
		panic(fmt.Sprintf("bench: ingest remine save: %v", err))
	}
	if err := coldCube.Save(&coldSave); err != nil {
		panic(fmt.Sprintf("bench: ingest remine save: %v", err))
	}

	res := IngestRemine{
		FullMs:          float64(fullNs) / 1e6,
		RestrictedMs:    float64(restrictedNs) / 1e6,
		CellsRestricted: restrictedStats.CellsReminedRestricted,
		PrefixesRemined: restrictedStats.PrefixesRemined,
		DigestsEqual:    bytes.Equal(warmSave.Bytes(), coldSave.Bytes()),
	}
	if !res.DigestsEqual {
		panic("bench: ingest remine: restricted and full re-mines diverged (exactness violated)")
	}
	if restrictedNs > 0 {
		res.Speedup = float64(fullNs) / float64(restrictedNs)
	}
	o.progress("ingest remine (1%% batch): full %.1f ms, restricted %.1f ms (%.1fx), %d cells restricted, %d prefixes",
		res.FullMs, res.RestrictedMs, res.Speedup, res.CellsRestricted, res.PrefixesRemined)
	return res
}
