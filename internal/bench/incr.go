package bench

import (
	"fmt"
	"runtime"
	"time"

	"flowcube/internal/core"
	"flowcube/internal/datagen"
	"flowcube/internal/incr"
	"flowcube/internal/pathdb"
)

// IncrVariant is one configuration's full-rebuild-vs-delta comparison.
type IncrVariant struct {
	Name          string  `json:"name"`
	FullRebuildMs float64 `json:"full_rebuild_ms"`
	DeltaMs       float64 `json:"delta_ms"`
	// Speedup is full-rebuild time over delta time for the same batch.
	Speedup       float64 `json:"speedup_full_over_delta"`
	CellsTouched  int     `json:"cells_touched"`
	CellsAdmitted int     `json:"cells_admitted"`
	LedgerEntries int     `json:"ledger_entries"`
}

// IncrSuite is the incremental-maintenance benchmark serialized to
// BENCH_incr.json via cmd/flowbench -incr: a 1% append batch applied by
// incr.ApplyDelta against rebuilding the whole cube from scratch. The
// headline Speedup is the plain variant's — counts, flowgraphs and sub-δ
// admissions only, the work that scales with batch size. The other two
// variants quantify the maintenance passes whose cost tracks cube size
// rather than batch size and are reported for context: redundancy
// re-marking walks the touched-cell frontier (near-global once the batch
// touches the apex cell), and exception re-mining recomputes every touched
// cell's conditions over its full record set, including the apex's entire
// union database. See DESIGN.md §9 "Cost".
type IncrSuite struct {
	GoVersion    string `json:"go_version"`
	GOMAXPROCS   int    `json:"gomaxprocs"`
	Paths        int    `json:"paths"`
	BatchRecords int    `json:"batch_records"`
	MinCount     int64  `json:"min_count"`
	Seed         int64  `json:"seed"`
	// Speedup echoes the plain variant's speedup — the suite's headline
	// number (acceptance: >= 10x for a 1% batch).
	Speedup  float64       `json:"speedup_full_over_delta"`
	Variants []IncrVariant `json:"variants"`
}

// Iteration counts: the minimum over a few runs is stable enough for a
// tracked artifact. The context variants run fewer iterations — their
// deltas deliberately include the cube-sized maintenance passes, so one
// round is tens of seconds at the default scale.
const (
	incrFullIters  = 2
	incrDeltaIters = 3
)

// Incr benchmarks delta maintenance: build over the first 99% of the
// generated database, then time folding the final 1% in via ApplyDelta
// against one full Build over everything.
func Incr(o Options) IncrSuite {
	cfg := o.baseConfig()
	cfg.NumPaths = int(100_000 * o.scale())
	ds := datagen.MustGenerate(cfg)
	n := ds.DB.Len()
	batchLen := n / 100
	if batchLen < 1 {
		batchLen = 1
	}
	split := n - batchLen
	minCount := o.minCount(0.01, n)
	batch := ds.DB.Records[split:]

	suite := IncrSuite{
		GoVersion:    runtime.Version(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Paths:        n,
		BatchRecords: batchLen,
		MinCount:     minCount,
		Seed:         cfg.Seed,
	}

	variants := []struct {
		name       string
		fullIters  int
		deltaIters int
		cfg        core.Config
	}{
		{"plain", incrFullIters, incrDeltaIters, core.Config{
			MinCount: minCount, Plan: ds.DefaultPlan(),
			DeltaLedger: true, Workers: runtime.GOMAXPROCS(0),
		}},
		{"redundancy", 1, 1, core.Config{
			MinCount: minCount, Tau: 0.5, Plan: ds.DefaultPlan(),
			DeltaLedger: true, Workers: runtime.GOMAXPROCS(0),
		}},
		{"exceptions", 1, 1, core.Config{
			MinCount: minCount, Epsilon: 0.1, Plan: ds.DefaultPlan(),
			MineExceptions: true, SingleStageExceptions: true,
			DeltaLedger: true, Workers: runtime.GOMAXPROCS(0),
		}},
	}
	for _, v := range variants {
		prefix := &pathdb.DB{Schema: ds.DB.Schema, Records: append([]pathdb.Record(nil), ds.DB.Records[:split]...)}
		base, err := core.Build(prefix, v.cfg)
		if err != nil {
			panic(fmt.Sprintf("bench: incr base build failed: %v", err))
		}

		fullNs := int64(0)
		for i := 0; i < v.fullIters; i++ {
			start := time.Now()
			if _, err := core.Build(ds.DB, v.cfg); err != nil {
				panic(fmt.Sprintf("bench: incr full build failed: %v", err))
			}
			if ns := time.Since(start).Nanoseconds(); fullNs == 0 || ns < fullNs {
				fullNs = ns
			}
		}

		deltaNs := int64(0)
		var stats *incr.Stats
		for i := 0; i < v.deltaIters; i++ {
			// Clone the cube and copy the database outside the timer: the
			// serving path (POST /admin/append) amortizes those copies over
			// the snapshot swap; the delta itself is what scales with batch
			// size.
			cube := base.Clone()
			db := &pathdb.DB{Schema: ds.DB.Schema, Records: append([]pathdb.Record(nil), prefix.Records...)}
			start := time.Now()
			stats, err = incr.ApplyDelta(cube, db, batch)
			if err != nil {
				panic(fmt.Sprintf("bench: incr delta failed: %v", err))
			}
			if ns := time.Since(start).Nanoseconds(); deltaNs == 0 || ns < deltaNs {
				deltaNs = ns
			}
		}

		res := IncrVariant{
			Name:          v.name,
			FullRebuildMs: float64(fullNs) / 1e6,
			DeltaMs:       float64(deltaNs) / 1e6,
			CellsTouched:  stats.CellsTouched,
			CellsAdmitted: stats.CellsAdmitted,
			LedgerEntries: stats.LedgerSize,
		}
		if deltaNs > 0 {
			res.Speedup = float64(fullNs) / float64(deltaNs)
		}
		suite.Variants = append(suite.Variants, res)
		o.progress("incr %s: full %.1f ms, delta %.2f ms (%.1fx), %d touched, %d admitted",
			v.name, res.FullRebuildMs, res.DeltaMs, res.Speedup, res.CellsTouched, res.CellsAdmitted)
		if v.name == "plain" {
			suite.Speedup = res.Speedup
		}
	}
	return suite
}
