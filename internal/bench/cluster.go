package bench

// Multi-process cluster benchmark behind cmd/flowbench -cluster: build one
// cube, save it, split it into shard snapshots, then compare a single
// flowserve-equivalent process against a scatter-gather router over 1, 2,
// and 4 shard server processes. Shards are real child processes (spawned by
// re-executing the flowbench binary in its hidden -cluster-serve mode), so
// every measured request crosses real HTTP hops; the router runs in-process
// on a real TCP listener, which is the same code path cmd/flowrouter
// serves. Latency is measured client-side over sequential requests;
// throughput over a concurrent burst.

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"flowcube/internal/cluster"
	"flowcube/internal/core"
	"flowcube/internal/datagen"
	"flowcube/internal/server"
)

// ClusterWorkload is one endpoint's measured latency/throughput under one
// topology.
type ClusterWorkload struct {
	Name     string  `json:"name"`
	Requests int     `json:"requests"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MeanMs   float64 `json:"mean_ms"`
	// RPS is throughput from a concurrent burst (clusterClients in-flight).
	RPS float64 `json:"rps"`
}

// ClusterTopology is one serving configuration's results.
type ClusterTopology struct {
	// Name is "single" for the direct single-process baseline, "router-N"
	// for the scatter-gather router over N shard processes.
	Name      string            `json:"name"`
	Shards    int               `json:"shards"`
	Workloads []ClusterWorkload `json:"workloads"`
}

// ClusterSuite is the cluster benchmark serialized to BENCH_cluster.json
// via cmd/flowbench -cluster.
type ClusterSuite struct {
	GoVersion  string            `json:"go_version"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Paths      int               `json:"paths"`
	Cells      int               `json:"cells"`
	MinCount   int64             `json:"min_count"`
	Seed       int64             `json:"seed"`
	Topologies []ClusterTopology `json:"topologies"`
}

// Request counts per workload. Cell queries dominate real traffic, so they
// get the biggest sample; the scatter endpoints are heavier per request.
const (
	clusterCellReqs    = 400
	clusterScatterReqs = 120
	clusterClients     = 8
	clusterSampleCells = 64
)

// Cluster runs the benchmark. exe is the flowbench binary to re-execute for
// shard processes (os.Executable() in cmd/flowbench). Cancelling ctx stops
// the in-process router between topologies.
func Cluster(ctx context.Context, o Options, exe string) ClusterSuite {
	cfg := o.baseConfig()
	cfg.NumPaths = int(100_000 * o.scale())
	ds := datagen.MustGenerate(cfg)
	n := ds.DB.Len()
	minCount := o.minCount(0.01, n)
	cube, err := core.Build(ds.DB, core.Config{
		MinCount: minCount, Plan: ds.DefaultPlan(), Workers: runtime.GOMAXPROCS(0),
	})
	if err != nil {
		panic(fmt.Sprintf("bench: cluster build failed: %v", err))
	}

	dir, err := os.MkdirTemp("", "flowbench-cluster-")
	if err != nil {
		panic(fmt.Sprintf("bench: cluster tempdir: %v", err))
	}
	defer func() { _ = os.RemoveAll(dir) }() // best-effort temp cleanup

	snapPath := filepath.Join(dir, "cube.fcb")
	saveCube(cube, snapPath)

	suite := ClusterSuite{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Paths:      n,
		Cells:      cube.NumCells(),
		MinCount:   minCount,
		Seed:       cfg.Seed,
	}
	cells := sampleCellQueries(cube, o.Seed)

	single := spawnShard(exe, snapPath)
	suite.Topologies = append(suite.Topologies,
		ClusterTopology{Name: "single", Shards: 1, Workloads: measure(o, "single", single.url, cells)})
	single.stop()

	for _, nShards := range []int{1, 2, 4} {
		shardDir := filepath.Join(dir, fmt.Sprintf("shards-%d", nShards))
		files, err := cluster.WriteShards(cube, nShards, shardDir, runtime.GOMAXPROCS(0))
		if err != nil {
			panic(fmt.Sprintf("bench: cluster split %d: %v", nShards, err))
		}
		procs := make([]*shardProc, len(files))
		urls := make([]string, len(files))
		for i, f := range files {
			procs[i] = spawnShard(exe, f)
			urls[i] = procs[i].url
		}
		rt, err := cluster.NewRouter(cube, urls, cluster.RouterConfig{
			Source: "bench", Logger: log.New(io.Discard, "", 0),
		})
		if err != nil {
			panic(fmt.Sprintf("bench: cluster router %d: %v", nShards, err))
		}
		ctx, cancel := context.WithCancel(ctx)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			panic(fmt.Sprintf("bench: cluster router listen: %v", err))
		}
		done := make(chan error, 1)
		go func() { done <- rt.Serve(ctx, ln) }()
		name := fmt.Sprintf("router-%d", nShards)
		suite.Topologies = append(suite.Topologies,
			ClusterTopology{Name: name, Shards: nShards,
				Workloads: measure(o, name, "http://"+ln.Addr().String(), cells)})
		cancel()
		<-done
		for _, p := range procs {
			p.stop()
		}
	}
	return suite
}

// saveCube writes a snapshot, panicking on failure like the other bench
// setup steps.
func saveCube(cube *core.Cube, path string) {
	f, err := os.Create(path)
	if err != nil {
		panic(fmt.Sprintf("bench: cluster save: %v", err))
	}
	if err := cube.Save(f); err != nil {
		panic(fmt.Sprintf("bench: cluster save: %v", err))
	}
	if err := f.Close(); err != nil {
		panic(fmt.Sprintf("bench: cluster save: %v", err))
	}
}

// sampleCellQueries picks a deterministic spread of materialized cells and
// renders them as /v1/cell query strings.
func sampleCellQueries(cube *core.Cube, seed int64) []string {
	var all []string
	for _, s := range cube.CuboidSummaries() {
		cb := cube.Cuboids[s.Key]
		if cb == nil {
			continue
		}
		for _, cell := range cb.SortedCells() {
			all = append(all,
				"/v1/cell?cell="+core.FormatCell(cube.Schema, cell.Values)+
					"&pathlevel="+strconv.Itoa(s.PathLevel))
		}
	}
	if len(all) == 0 {
		panic("bench: cluster cube has no cells to query")
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	if len(all) > clusterSampleCells {
		all = all[:clusterSampleCells]
	}
	return all
}

// measure runs the three read workloads against one base URL.
func measure(o Options, topo, baseURL string, cells []string) []ClusterWorkload {
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clusterClients * 2}}
	workloads := []struct {
		name string
		reqs int
		path func(i int) string
	}{
		{"cell", clusterCellReqs, func(i int) string { return cells[i%len(cells)] }},
		{"summary", clusterScatterReqs, func(int) string { return "/v1/summary" }},
		{"exceptions", clusterScatterReqs, func(int) string { return "/v1/exceptions?k=20" }},
	}
	var out []ClusterWorkload
	for _, wl := range workloads {
		// Warm connections and caches off the clock.
		for i := 0; i < clusterClients; i++ {
			get(client, baseURL+wl.path(i))
		}
		lat := make([]time.Duration, wl.reqs)
		for i := range lat {
			start := time.Now()
			get(client, baseURL+wl.path(i))
			lat[i] = time.Since(start)
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		var sum time.Duration
		for _, d := range lat {
			sum += d
		}
		w := ClusterWorkload{
			Name:     wl.name,
			Requests: wl.reqs,
			P50Ms:    float64(lat[len(lat)/2].Nanoseconds()) / 1e6,
			P99Ms:    float64(lat[len(lat)*99/100].Nanoseconds()) / 1e6,
			MeanMs:   float64(sum.Nanoseconds()) / float64(len(lat)) / 1e6,
		}

		// Throughput: the same request mix with clusterClients in flight.
		start := time.Now()
		next := make(chan int, wl.reqs)
		for i := 0; i < wl.reqs; i++ {
			next <- i
		}
		close(next)
		var wg sync.WaitGroup
		for c := 0; c < clusterClients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					get(client, baseURL+wl.path(i))
				}
			}()
		}
		wg.Wait()
		if wall := time.Since(start).Seconds(); wall > 0 {
			w.RPS = float64(wl.reqs) / wall
		}
		out = append(out, w)
		o.progress("cluster %s/%s: p50 %.3f ms, p99 %.3f ms, %.0f req/s",
			topo, wl.name, w.P50Ms, w.P99Ms, w.RPS)
	}
	client.CloseIdleConnections()
	return out
}

// get issues one request, retrying once on a transient failure (loopback
// bursts occasionally drop a connection) and panicking when the retry fails
// too — a dead server mid-benchmark invalidates the whole suite.
func get(client *http.Client, url string) {
	var lastErr string
	for attempt := 0; attempt < 2; attempt++ {
		resp, err := client.Get(url)
		if err != nil {
			lastErr = fmt.Sprintf("bench: cluster request %s: %v", url, err)
			continue
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			lastErr = fmt.Sprintf("bench: cluster read %s: %v", url, err)
			_ = resp.Body.Close() // aborting the attempt; nothing left to read
			continue
		}
		_ = resp.Body.Close() // body already drained; close cannot lose data
		if resp.StatusCode != http.StatusOK {
			lastErr = fmt.Sprintf("bench: cluster request %s: status %d: %s", url, resp.StatusCode, body)
			continue
		}
		return
	}
	panic(lastErr)
}

// shardProc is one child server process in -cluster-serve mode.
type shardProc struct {
	cmd   *exec.Cmd
	stdin io.WriteCloser
	url   string
}

// spawnShard starts exe in -cluster-serve mode over one snapshot and reads
// the listen URL it prints. The child exits when its stdin closes, so a
// crashed parent cannot leak servers.
func spawnShard(exe, snapshot string) *shardProc {
	cmd := exec.Command(exe, "-cluster-serve", snapshot)
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		panic(fmt.Sprintf("bench: cluster spawn: %v", err))
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		panic(fmt.Sprintf("bench: cluster spawn: %v", err))
	}
	if err := cmd.Start(); err != nil {
		panic(fmt.Sprintf("bench: cluster spawn %s: %v", exe, err))
	}
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		_ = cmd.Wait() // child died before printing its address; reap it
		panic(fmt.Sprintf("bench: cluster shard for %s exited before listening", snapshot))
	}
	return &shardProc{cmd: cmd, stdin: stdin, url: sc.Text()}
}

// stop closes the child's stdin (its exit signal) and reaps it.
func (p *shardProc) stop() {
	_ = p.stdin.Close() // closing stdin IS the shutdown signal
	_ = p.cmd.Wait()    // exit status is uninteresting; the child just serves
}

// ClusterServe is the hidden child mode behind flowbench -cluster-serve: it
// serves one snapshot on an ephemeral port, prints the base URL as the
// first stdout line, and exits when stdin reaches EOF or ctx is cancelled.
func ClusterServe(ctx context.Context, snapshot string, stdin io.Reader, stdout io.Writer) error {
	// Shards open lazily: per-shard snapshots are v2 files, so the cluster
	// comes up in milliseconds with each shard's RSS bounded by the section
	// LRU instead of its full cube (non-v2 inputs fall back to eager).
	srv, err := server.NewContext(ctx, server.FileLoader(snapshot, server.BuildOptions{Lazy: true}), snapshot, server.Config{
		Logger: log.New(io.Discard, "", 0),
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "http://%s\n", ln.Addr())
	ctx, cancel := context.WithCancel(ctx)
	go func() {
		_, _ = io.Copy(io.Discard, stdin) // block until parent closes our stdin
		cancel()
	}()
	return srv.Serve(ctx, ln)
}
