package bench

import (
	"fmt"
	"io"
	"time"

	"flowcube/internal/core"
	"flowcube/internal/cubing"
	"flowcube/internal/datagen"
	"flowcube/internal/flowgraph"
	"flowcube/internal/hierarchy"
	"flowcube/internal/itemset"
	"flowcube/internal/mining"
	"flowcube/internal/pathdb"
	"flowcube/internal/transact"
)

// Ablation experiments for the design choices DESIGN.md calls out (A1–A5).
// These have no counterpart figure in the paper; they quantify the
// individual contributions of its optimizations.

// AblationRow is one configuration's outcome.
type AblationRow struct {
	Name       string
	Seconds    float64
	Candidates int // total candidates counted (A1, A3)
	Cells      int // retained cells (A4, A5)
	Aborted    bool
}

// WriteRows renders ablation rows as an aligned table.
func WriteRows(w io.Writer, title string, rows []AblationRow) {
	fmt.Fprintf(w, "# Ablation — %s\n", title)
	fmt.Fprintf(w, "%-24s %10s %12s %8s\n", "variant", "seconds", "candidates", "cells")
	for _, r := range rows {
		sec := fmt.Sprintf("%.3f", r.Seconds)
		if r.Aborted {
			sec = "aborted"
		}
		fmt.Fprintf(w, "%-24s %10s %12d %8d\n", r.Name, sec, r.Candidates, r.Cells)
	}
}

// AblationPruning (A1) toggles Shared's pruning rules one at a time and
// reports runtime and candidates counted, isolating where the Figure-11
// reduction comes from.
func AblationPruning(o Options) []AblationRow {
	cfg := o.baseConfig()
	cfg.NumPaths = int(100_000 * o.scale())
	ds := datagen.MustGenerate(cfg)
	syms := transact.MustNewSymbols(ds.Schema, ds.DefaultPlan())
	txs := syms.Encode(ds.DB)

	variants := []struct {
		name string
		opts mining.Options
	}{
		{"shared (all prunes)", mining.SharedOptions(0.01)},
		{"no precount", mining.Options{MinSupport: 0.01, PruneAncestor: true, PruneLink: true}},
		{"no linkability", mining.Options{MinSupport: 0.01, PruneAncestor: true, Precount: true}},
		{"no ancestor", mining.Options{MinSupport: 0.01, PruneLink: true, Precount: true}},
		{"basic (no prunes)", mining.BasicOptions(0.01)},
	}
	minCount := o.minCount(0.01, ds.DB.Len())
	var rows []AblationRow
	for _, v := range variants {
		v.opts.MinCount = minCount
		v.opts.CandidateLimit = o.candidateLimit()
		start := time.Now()
		res, err := mining.Mine(syms, txs, v.opts)
		if err != nil {
			panic(fmt.Sprintf("bench: ablation mining failed: %v", err))
		}
		total := 0
		for _, l := range res.Levels {
			total += l.Counted
		}
		rows = append(rows, AblationRow{
			Name: v.name, Seconds: time.Since(start).Seconds(),
			Candidates: total, Aborted: res.Aborted,
		})
		o.progress("ablation-pruning %s: %.2fs %d candidates", v.name, rows[len(rows)-1].Seconds, total)
	}
	return rows
}

// AblationMerge (A2) measures Lemma 4.2 in practice: building a parent
// cell's flowgraph distributions by merging K child flowgraphs versus
// rescanning all underlying paths.
func AblationMerge(o Options) []AblationRow {
	cfg := o.baseConfig()
	cfg.NumPaths = int(200_000 * o.scale())
	ds := datagen.MustGenerate(cfg)
	level := pathdb.PathLevel{
		Cut:  hierarchy.LevelCut(ds.Schema.Location, ds.Schema.Location.Depth()),
		Time: pathdb.TimeBase,
	}

	// Partition by the first dimension's top-level concept — the children
	// of one parent cell in the item lattice.
	h := ds.Schema.Dims[0]
	parts := map[hierarchy.NodeID][]pathdb.Path{}
	var all []pathdb.Path
	for _, r := range ds.DB.Records {
		k := h.AncestorAt(r.Dims[0], 1)
		parts[k] = append(parts[k], r.Path)
		all = append(all, r.Path)
	}
	children := make([]*flowgraph.Graph, 0, len(parts))
	for _, paths := range parts {
		children = append(children, flowgraph.Build(ds.Schema.Location, level, paths, nil))
	}

	start := time.Now()
	merged, err := flowgraph.Fold(children)
	if err != nil {
		panic(err)
	}
	mergeSec := time.Since(start).Seconds()

	start = time.Now()
	rescan := flowgraph.Build(ds.Schema.Location, level, all, nil)
	rescanSec := time.Since(start).Seconds()

	if merged.Paths() != rescan.Paths() {
		panic("bench: merge ablation produced diverging graphs")
	}
	o.progress("ablation-merge: merge %.4fs rescan %.4fs", mergeSec, rescanSec)
	return []AblationRow{
		{Name: "algebraic merge", Seconds: mergeSec},
		{Name: "rescan paths", Seconds: rescanSec},
	}
}

// AblationCounting (A3) compares the candidate-trie support counting with
// the naive per-candidate subset test over the same length-2 candidates.
func AblationCounting(o Options) []AblationRow {
	cfg := o.baseConfig()
	cfg.NumPaths = int(20_000 * o.scale())
	ds := datagen.MustGenerate(cfg)
	syms := transact.MustNewSymbols(ds.Schema, ds.DefaultPlan())
	txs := syms.Encode(ds.DB)

	// Recreate L1 and C2 the way the miner does.
	counts := map[transact.Item]int64{}
	for _, tx := range txs {
		for _, it := range tx {
			counts[it]++
		}
	}
	minCount := o.minCount(0.01, len(txs))
	var l1 []itemset.Counted
	for it, n := range counts {
		if n >= minCount {
			l1 = append(l1, itemset.Counted{Set: []transact.Item{it}, Count: n})
		}
	}
	itemset.SortCounted(l1)
	cands := itemset.Join(l1)
	kept := cands[:0]
	for _, c := range cands {
		if !syms.HasAncestorPair(c) && syms.AllLinkable(c) {
			kept = append(kept, c)
		}
	}

	start := time.Now()
	trie := itemset.NewTrie()
	for _, c := range kept {
		trie.Insert(c)
	}
	for _, tx := range txs {
		trie.Count(tx)
	}
	trieSec := time.Since(start).Seconds()

	start = time.Now()
	naive := make([]int64, len(kept))
	for _, tx := range txs {
		present := make(map[transact.Item]bool, len(tx))
		for _, it := range tx {
			present[it] = true
		}
		for i, c := range kept {
			if present[c[0]] && present[c[1]] {
				naive[i]++
			}
		}
	}
	naiveSec := time.Since(start).Seconds()

	// Sanity: both counters agree.
	byKey := map[string]int64{}
	trie.Walk(func(s []transact.Item, n int64) { byKey[itemset.Key(s)] = n })
	for i, c := range kept {
		if byKey[itemset.Key(c)] != naive[i] {
			panic("bench: trie and naive counts disagree")
		}
	}
	o.progress("ablation-counting: trie %.4fs naive %.4fs over %d candidates", trieSec, naiveSec, len(kept))
	return []AblationRow{
		{Name: "candidate trie", Seconds: trieSec, Candidates: len(kept)},
		{Name: "naive subset test", Seconds: naiveSec, Candidates: len(kept)},
	}
}

// AblationRedundancy (A4) sweeps the similarity threshold τ and reports the
// cells a non-redundant flowcube retains.
func AblationRedundancy(o Options) []AblationRow {
	cube := smallCube(o)
	total := cube.NumCells()
	var rows []AblationRow
	for _, tau := range []float64{0.2, 0.4, 0.6, 0.8, 0.95} {
		start := time.Now()
		redundant := cube.MarkRedundancy(tau)
		rows = append(rows, AblationRow{
			Name:    fmt.Sprintf("tau=%.2f", tau),
			Seconds: time.Since(start).Seconds(),
			Cells:   total - redundant,
		})
		o.progress("ablation-redundancy tau=%.2f: %d/%d cells retained", tau, total-redundant, total)
	}
	return rows
}

// AblationIceberg (A5) sweeps the iceberg threshold δ and reports
// materialized cells.
func AblationIceberg(o Options) []AblationRow {
	var rows []AblationRow
	for _, sup := range []float64{0.002, 0.005, 0.01, 0.02, 0.05} {
		start := time.Now()
		cube := buildCube(o, sup)
		rows = append(rows, AblationRow{
			Name:    fmt.Sprintf("delta=%.3f", sup),
			Seconds: time.Since(start).Seconds(),
			Cells:   cube.NumCells(),
		})
		o.progress("ablation-iceberg δ=%.3f: %d cells", sup, cube.NumCells())
	}
	return rows
}

func smallCube(o Options) *core.Cube { return buildCube(o, 0.01) }

func buildCube(o Options, minSupport float64) *core.Cube {
	cfg := o.baseConfig()
	cfg.NumPaths = int(20_000 * o.scale())
	cfg.NumDims = 2
	ds := datagen.MustGenerate(cfg)
	cube, err := core.Build(ds.DB, core.Config{
		MinCount: o.minCount(minSupport, ds.DB.Len()),
		Plan:     ds.DefaultPlan(),
	})
	if err != nil {
		panic(fmt.Sprintf("bench: cube build failed: %v", err))
	}
	return cube
}

// AblationEngine (A6) compares the Cubing competitor's per-cell mining
// engines: the paper's Apriori versus FP-growth, on identical cells.
func AblationEngine(o Options) []AblationRow {
	cfg := o.baseConfig()
	cfg.NumPaths = int(50_000 * o.scale())
	cfg.NumDims = 2
	ds := datagen.MustGenerate(cfg)
	syms := transact.MustNewSymbols(ds.Schema, ds.DefaultPlan())
	syms.Encode(ds.DB)
	opts := mining.Options{MinCount: o.minCount(0.01, ds.DB.Len())}

	var rows []AblationRow
	var segments [2]int
	for i, eng := range []struct {
		name   string
		engine cubing.Engine
	}{
		{"apriori per cell", cubing.EngineApriori},
		{"fp-growth per cell", cubing.EngineFPGrowth},
	} {
		start := time.Now()
		res, err := cubing.RunEngine(ds.DB, syms, opts, eng.engine)
		if err != nil {
			panic(fmt.Sprintf("bench: engine ablation failed: %v", err))
		}
		for _, c := range res.Cells {
			segments[i] += len(c.Segments)
		}
		rows = append(rows, AblationRow{
			Name: eng.name, Seconds: time.Since(start).Seconds(), Candidates: segments[i],
		})
		o.progress("ablation-engine %s: %.2fs %d segments", eng.name, rows[i].Seconds, segments[i])
	}
	if segments[0] != segments[1] {
		panic("bench: engines disagree on segment counts")
	}
	return rows
}

// AblationParallel (A7) scales the Shared miner's counting across workers.
func AblationParallel(o Options) []AblationRow {
	cfg := o.baseConfig()
	cfg.NumPaths = int(100_000 * o.scale())
	ds := datagen.MustGenerate(cfg)
	syms := transact.MustNewSymbols(ds.Schema, ds.DefaultPlan())
	txs := syms.Encode(ds.DB)
	minCount := o.minCount(0.01, ds.DB.Len())

	var rows []AblationRow
	var base int
	for _, workers := range []int{1, 2, 4, 8} {
		opts := mining.SharedOptions(0.01)
		opts.MinCount = minCount
		opts.Workers = workers
		start := time.Now()
		res, err := mining.Mine(syms, txs, opts)
		if err != nil {
			panic(fmt.Sprintf("bench: parallel ablation failed: %v", err))
		}
		n := len(res.All())
		if base == 0 {
			base = n
		} else if base != n {
			panic("bench: parallel run changed the result")
		}
		rows = append(rows, AblationRow{
			Name: fmt.Sprintf("workers=%d", workers), Seconds: time.Since(start).Seconds(), Candidates: n,
		})
		o.progress("ablation-parallel workers=%d: %.2fs", workers, rows[len(rows)-1].Seconds)
	}
	return rows
}
