// Package bench implements the paper's §6 experimental evaluation: one
// runner per figure (6–11) that regenerates the same series the paper
// reports, plus ablation experiments for the design choices DESIGN.md calls
// out. The cmd/flowbench binary and the repository-root testing.B benches
// are thin wrappers over this package.
//
// Absolute times will differ from the paper's 2006 C++/Pentium-IV testbed;
// what the runners reproduce is the shape: who wins, by roughly what
// factor, and where candidate explosions stop the Basic baseline.
package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"flowcube/internal/cubing"
	"flowcube/internal/datagen"
	"flowcube/internal/mining"
	"flowcube/internal/transact"
)

// Algorithm names used in series.
const (
	AlgoShared = "shared"
	AlgoCubing = "cubing"
	AlgoBasic  = "basic"
)

// Point is one measurement of a sweep.
type Point struct {
	// X is the sweep coordinate (database size, support %, ...).
	X float64
	// Label overrides the numeric X in output when non-empty (e.g. the
	// item-density datasets "a", "b", "c").
	Label string
	// Seconds is the end-to-end runtime: transaction transformation plus
	// mining, from the raw path database.
	Seconds float64
	// Aborted marks runs stopped by the candidate-explosion guard — the
	// analogue of the paper's "could not run basic" data points.
	Aborted bool
	// Patterns is the number of frequent itemsets found (0 for aborted).
	Patterns int
}

// Series is one algorithm's measurements across a sweep.
type Series struct {
	Algorithm string
	Points    []Point
}

// Figure is a regenerated paper figure.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	Series []Series
}

// WriteTable renders the figure as an aligned text table, one row per X.
func (f Figure) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "# Figure %s — %s\n", f.ID, f.Title)
	fmt.Fprintf(w, "%-14s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(w, " %14s", s.Algorithm)
	}
	fmt.Fprintln(w)
	if len(f.Series) == 0 {
		return
	}
	for i := range f.Series[0].Points {
		p := f.Series[0].Points[i]
		label := p.Label
		if label == "" {
			label = trimFloat(p.X)
		}
		fmt.Fprintf(w, "%-14s", label)
		for _, s := range f.Series {
			if i >= len(s.Points) {
				fmt.Fprintf(w, " %14s", "-")
				continue
			}
			q := s.Points[i]
			if q.Aborted {
				fmt.Fprintf(w, " %14s", "aborted")
			} else {
				fmt.Fprintf(w, " %13.3fs", q.Seconds)
			}
		}
		fmt.Fprintln(w)
	}
}

func trimFloat(x float64) string {
	// %.4g keeps sweep coordinates readable (0.009*100 prints as 0.9, not
	// 0.8999999999999999).
	return fmt.Sprintf("%.4g", x)
}

// Options configures the figure runners.
type Options struct {
	// Scale multiplies the paper's database sizes. The paper sweeps
	// 100,000–1,000,000 paths; Scale=0.1 sweeps 10,000–100,000. Values
	// <= 0 default to 0.1.
	Scale float64
	// Seed drives the synthetic generator.
	Seed int64
	// Algorithms restricts which algorithms run; nil runs every algorithm
	// a figure compares.
	Algorithms []string
	// CandidateLimit caps per-length candidates for the Basic baseline
	// (and only it); 0 defaults to 2,000,000. Exceeding it reports the
	// point as aborted, mirroring the paper's out-of-memory runs.
	CandidateLimit int
	// SupportFloor bounds the absolute iceberg count from below. At
	// heavily scaled-down sizes a percentage support rounds to a handful
	// of paths and the pattern space explodes combinatorially; smoke runs
	// set a floor to stay meaningful. 0 means no floor.
	SupportFloor int64
	// Progress, when non-nil, receives one line per completed point.
	Progress io.Writer
	// MicroIters, when positive, runs every micro-benchmark for exactly
	// this many iterations instead of testing.Benchmark's time-targeted
	// ramp-up. Smoke tests use 1; the canonical BENCH_mining.json run
	// leaves it 0.
	MicroIters int
}

func (o Options) scale() float64 {
	if o.Scale <= 0 {
		return 0.1
	}
	return o.Scale
}

func (o Options) candidateLimit() int {
	if o.CandidateLimit <= 0 {
		return 2_000_000
	}
	return o.CandidateLimit
}

func (o Options) wants(algo string) bool {
	if len(o.Algorithms) == 0 {
		return true
	}
	for _, a := range o.Algorithms {
		if a == algo {
			return true
		}
	}
	return false
}

func (o Options) progress(format string, args ...any) {
	if o.Progress != nil {
		fmt.Fprintf(o.Progress, format+"\n", args...)
	}
}

// minCount resolves the absolute iceberg threshold for a dataset,
// honouring the floor.
func (o Options) minCount(minSupport float64, n int) int64 {
	c, err := mining.ResolveMinCount(mining.Options{MinSupport: minSupport}, n)
	if err != nil {
		panic(fmt.Sprintf("bench: bad support %g: %v", minSupport, err))
	}
	if c < o.SupportFloor {
		c = o.SupportFloor
	}
	return c
}

// runOne executes one algorithm end to end on a dataset: the timer covers
// symbol-table construction, transaction transformation and mining, since
// the paper's measured runtimes cover the whole materialization pass.
func (o Options) runOne(ds *datagen.Dataset, algo string, minSupport float64) Point {
	minCount := o.minCount(minSupport, ds.DB.Len())
	start := time.Now()
	syms := transact.MustNewSymbols(ds.Schema, ds.DefaultPlan())
	var patterns int
	aborted := false
	switch algo {
	case AlgoShared, AlgoBasic:
		opts := mining.SharedOptions(minSupport)
		if algo == AlgoBasic {
			opts = mining.BasicOptions(minSupport)
			opts.CandidateLimit = o.candidateLimit()
		}
		opts.MinCount = minCount
		txs := syms.Encode(ds.DB)
		res, err := mining.Mine(syms, txs, opts)
		if err != nil {
			panic(fmt.Sprintf("bench: mining failed: %v", err))
		}
		aborted = res.Aborted
		if !aborted {
			patterns = len(res.All())
		}
	case AlgoCubing:
		res, err := cubing.Run(ds.DB, syms, mining.Options{MinCount: minCount})
		if err != nil {
			panic(fmt.Sprintf("bench: cubing failed: %v", err))
		}
		for _, c := range res.Cells {
			patterns += len(c.Segments)
		}
	default:
		panic(fmt.Sprintf("bench: unknown algorithm %q", algo))
	}
	return Point{Seconds: time.Since(start).Seconds(), Aborted: aborted, Patterns: patterns}
}

func (o Options) baseConfig() datagen.Config {
	cfg := datagen.Default()
	cfg.Seed = o.Seed
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return cfg
}

// Fig6 — runtime vs. path database size (paper: 100k–1M paths, δ=1%, d=5).
func Fig6(o Options) Figure {
	fig := Figure{ID: "6", Title: "runtime vs database size (δ=1%, d=5)", XLabel: "paths"}
	sizes := []int{100_000, 200_000, 400_000, 600_000, 800_000, 1_000_000}
	algos := []string{AlgoShared, AlgoCubing, AlgoBasic}
	series := map[string]*Series{}
	for _, a := range algos {
		if o.wants(a) {
			series[a] = &Series{Algorithm: a}
		}
	}
	for _, n := range sizes {
		cfg := o.baseConfig()
		cfg.NumPaths = int(float64(n) * o.scale())
		ds := datagen.MustGenerate(cfg)
		for _, a := range algos {
			s := series[a]
			if s == nil {
				continue
			}
			// The paper could not run Basic past 200k paths; the guard
			// reproduces that as "aborted" without exhausting memory.
			p := o.runOne(ds, a, 0.01)
			p.X = float64(cfg.NumPaths)
			s.Points = append(s.Points, p)
			o.progress("fig6 %s N=%d: %.2fs aborted=%v", a, cfg.NumPaths, p.Seconds, p.Aborted)
		}
	}
	for _, a := range algos {
		if s := series[a]; s != nil {
			fig.Series = append(fig.Series, *s)
		}
	}
	return fig
}

// Fig7 — runtime vs. minimum support (paper: 0.3%–2.0%, N=100k, d=5).
func Fig7(o Options) Figure {
	fig := Figure{ID: "7", Title: "runtime vs minimum support (N=100k·scale, d=5)", XLabel: "support %"}
	supports := []float64{0.003, 0.006, 0.009, 0.012, 0.016, 0.020}
	cfg := o.baseConfig()
	cfg.NumPaths = int(100_000 * o.scale())
	ds := datagen.MustGenerate(cfg)
	for _, a := range []string{AlgoShared, AlgoCubing, AlgoBasic} {
		if !o.wants(a) {
			continue
		}
		s := Series{Algorithm: a}
		for _, sup := range supports {
			p := o.runOne(ds, a, sup)
			p.X = sup * 100
			s.Points = append(s.Points, p)
			o.progress("fig7 %s δ=%.2f%%: %.2fs aborted=%v", a, sup*100, p.Seconds, p.Aborted)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Fig8 — runtime vs. number of path-independent dimensions (paper: 2–10,
// N=100k, δ=1%, sparse data).
func Fig8(o Options) Figure {
	fig := Figure{ID: "8", Title: "runtime vs dimensions (N=100k·scale, δ=1%, sparse)", XLabel: "dimensions"}
	dims := []int{2, 4, 6, 8, 10}
	for _, a := range []string{AlgoShared, AlgoCubing, AlgoBasic} {
		if !o.wants(a) {
			continue
		}
		s := Series{Algorithm: a}
		for _, d := range dims {
			cfg := o.baseConfig()
			cfg.NumPaths = int(100_000 * o.scale())
			cfg.NumDims = d
			// The paper keeps these datasets sparse so high-dimension
			// cuboids do not explode: the densest per-level domain.
			cfg.DimFanouts = [3]int{5, 5, 10}
			cfg.DimSkew = 0.2
			ds := datagen.MustGenerate(cfg)
			p := o.runOne(ds, a, 0.01)
			p.X = float64(d)
			s.Points = append(s.Points, p)
			o.progress("fig8 %s d=%d: %.2fs aborted=%v", a, d, p.Seconds, p.Aborted)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Fig9 — runtime vs. item-dimension density (paper datasets a/b/c with
// 2,2,5 / 4,4,6 / 5,5,10 distinct values per level).
func Fig9(o Options) Figure {
	fig := Figure{ID: "9", Title: "runtime vs item density (N=100k·scale, δ=1%, d=5)", XLabel: "dataset"}
	datasets := []struct {
		label   string
		fanouts [3]int
	}{
		{"a", [3]int{2, 2, 5}},
		{"b", [3]int{4, 4, 6}},
		{"c", [3]int{5, 5, 10}},
	}
	for _, a := range []string{AlgoShared, AlgoCubing, AlgoBasic} {
		if !o.wants(a) {
			continue
		}
		s := Series{Algorithm: a}
		for i, d := range datasets {
			cfg := o.baseConfig()
			cfg.NumPaths = int(100_000 * o.scale())
			cfg.DimFanouts = d.fanouts
			ds := datagen.MustGenerate(cfg)
			p := o.runOne(ds, a, 0.01)
			p.X = float64(i)
			p.Label = d.label
			s.Points = append(s.Points, p)
			o.progress("fig9 %s dataset=%s: %.2fs aborted=%v", a, d.label, p.Seconds, p.Aborted)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Fig10 — runtime vs. path density (paper: 10–150 distinct location
// sequences; fewer sequences = denser paths). The paper could not run
// Basic on this experiment at all.
func Fig10(o Options) Figure {
	fig := Figure{ID: "10", Title: "runtime vs path density (N=100k·scale, δ=1%, d=5)", XLabel: "sequences"}
	counts := []int{10, 25, 50, 100, 150}
	for _, a := range []string{AlgoShared, AlgoCubing, AlgoBasic} {
		if !o.wants(a) {
			continue
		}
		s := Series{Algorithm: a}
		for _, n := range counts {
			cfg := o.baseConfig()
			cfg.NumPaths = int(100_000 * o.scale())
			cfg.NumSequences = n
			ds := datagen.MustGenerate(cfg)
			p := o.runOne(ds, a, 0.01)
			p.X = float64(n)
			s.Points = append(s.Points, p)
			o.progress("fig10 %s seqs=%d: %.2fs aborted=%v", a, n, p.Seconds, p.Aborted)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Fig11 — pruning power: candidates counted per pattern length, Basic vs
// Shared (paper: Shared stops at length 8, Basic reaches 12).
func Fig11(o Options) Figure {
	fig := Figure{ID: "11", Title: "candidates counted per pattern length (N=100k·scale, δ=1%, d=5)", XLabel: "length"}
	cfg := o.baseConfig()
	cfg.NumPaths = int(100_000 * o.scale())
	ds := datagen.MustGenerate(cfg)
	syms := transact.MustNewSymbols(ds.Schema, ds.DefaultPlan())
	txs := syms.Encode(ds.DB)

	minCount := o.minCount(0.01, ds.DB.Len())
	runs := []struct {
		algo string
		opts mining.Options
	}{
		{AlgoShared, func() mining.Options {
			s := mining.SharedOptions(0.01)
			s.MinCount = minCount
			return s
		}()},
		{AlgoBasic, func() mining.Options {
			b := mining.BasicOptions(0.01)
			b.MinCount = minCount
			b.CandidateLimit = o.candidateLimit()
			return b
		}()},
	}
	maxLen := 0
	results := map[string]*mining.Result{}
	for _, r := range runs {
		if !o.wants(r.algo) {
			continue
		}
		res, err := mining.Mine(syms, txs, r.opts)
		if err != nil {
			panic(fmt.Sprintf("bench: fig11 mining failed: %v", err))
		}
		results[r.algo] = res
		if n := len(res.Levels); n > maxLen {
			maxLen = n
		}
		o.progress("fig11 %s: %d levels, aborted=%v", r.algo, len(res.Levels), res.Aborted)
	}
	algos := make([]string, 0, len(results))
	for a := range results {
		algos = append(algos, a)
	}
	sort.Strings(algos)
	for _, a := range algos {
		res := results[a]
		s := Series{Algorithm: a}
		for k := 0; k < maxLen; k++ {
			p := Point{X: float64(k + 1)}
			if k < len(res.Levels) {
				// Candidate counts are stored in Seconds' sibling field;
				// reuse Patterns for the count so WriteCounts can render.
				p.Patterns = res.Levels[k].Counted
			}
			s.Points = append(s.Points, p)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// WriteCounts renders a candidate-count figure (Fig 11 style) where the
// measurement is Patterns rather than Seconds.
func (f Figure) WriteCounts(w io.Writer) {
	fmt.Fprintf(w, "# Figure %s — %s\n", f.ID, f.Title)
	fmt.Fprintf(w, "%-10s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(w, " %12s", s.Algorithm)
	}
	fmt.Fprintln(w)
	if len(f.Series) == 0 {
		return
	}
	for i := range f.Series[0].Points {
		fmt.Fprintf(w, "%-10s", trimFloat(f.Series[0].Points[i].X))
		for _, s := range f.Series {
			fmt.Fprintf(w, " %12d", s.Points[i].Patterns)
		}
		fmt.Fprintln(w)
	}
}
