package bench

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"testing"

	"flowcube/internal/core"
	"flowcube/internal/datagen"
	"flowcube/internal/hierarchy"
)

// PersistSuite is the snapshot-codec benchmark set serialized to
// BENCH_persist.json via cmd/flowbench -persist: the v1 gob baseline against
// the v2 columnar codec, save and load, sequential and parallel. The summary
// ratios are the two the format was built for — serialized size (v2/v1) and
// load speedup (v1 time over parallel v2 time).
type PersistSuite struct {
	GoVersion   string  `json:"go_version"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	Paths       int     `json:"paths"`
	Seed        int64   `json:"seed"`
	Cells       int     `json:"cells"`
	V1Bytes     int     `json:"v1_bytes"`
	V2Bytes     int     `json:"v2_bytes"`
	BytesRatio  float64 `json:"v2_over_v1_bytes"`
	LoadSpeedup float64 `json:"load_speedup_v2_parallel_over_v1"`
	// LazyOpenSpeedup is the zero-copy serving headline: a cold lazy open
	// (mmap + framing validation, nothing decoded) against the parallel
	// eager load of the same snapshot.
	LazyOpenSpeedup float64       `json:"lazy_open_speedup_over_v2_parallel"`
	Results         []MicroResult `json:"results"`
}

// persistWorkers is the parallel codec width benchmarked against the
// sequential path; 8 matches the counting-core sharding benchmarks.
const persistWorkers = 8

// Persist benchmarks the snapshot codecs on one materialized cube (paper
// baseline scaled by Options.Scale, exceptions mined so every section kind
// is populated). It is a synchronous benchmark harness: the timed bodies
// run under testing.Benchmark, which cannot be cancelled mid-iteration, so
// a context would be decorative.
//
//flowlint:ignore ctxflow benchmark harness runs to completion by design; testing.Benchmark is not cancellable
func Persist(o Options) PersistSuite {
	cfg := o.baseConfig()
	cfg.NumPaths = int(100_000 * o.scale())
	ds := datagen.MustGenerate(cfg)
	cube, err := core.Build(ds.DB, core.Config{
		MinSupport:            0.01,
		Epsilon:               0.1,
		Tau:                   0.5,
		Plan:                  ds.DefaultPlan(),
		MineExceptions:        true,
		SingleStageExceptions: true,
		Workers:               runtime.GOMAXPROCS(0),
	})
	if err != nil {
		panic(fmt.Sprintf("bench: persist cube build failed: %v", err))
	}

	var v1buf, v2buf bytes.Buffer
	if err := cube.SaveV1(&v1buf); err != nil {
		panic(fmt.Sprintf("bench: v1 save failed: %v", err))
	}
	if err := cube.Save(&v2buf); err != nil {
		panic(fmt.Sprintf("bench: v2 save failed: %v", err))
	}
	v1bytes, v2bytes := v1buf.Bytes(), v2buf.Bytes()

	cells := 0
	for _, cb := range cube.Cuboids {
		cells += len(cb.Cells)
	}
	suite := PersistSuite{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Paths:      cfg.NumPaths,
		Seed:       cfg.Seed,
		Cells:      cells,
		V1Bytes:    len(v1bytes),
		V2Bytes:    len(v2bytes),
		BytesRatio: float64(len(v2bytes)) / float64(len(v1bytes)),
	}
	add := func(name string, op func()) MicroResult {
		var res MicroResult
		if o.MicroIters > 0 {
			res = measureFixed(o.MicroIters, op)
		} else {
			r := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					op()
				}
			})
			res = MicroResult{
				Iterations:  r.N,
				NsPerOp:     r.NsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
			}
		}
		res.Name = name
		suite.Results = append(suite.Results, res)
		o.progress("persist %s: %d ns/op, %d B/op, %d allocs/op",
			name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
		return res
	}
	mustLoad := func(cube *core.Cube, err error) {
		if err != nil {
			panic(fmt.Sprintf("bench: persist load failed: %v", err))
		}
	}

	add("save/v1-gob", func() {
		if err := cube.SaveV1(io.Discard); err != nil {
			panic(fmt.Sprintf("bench: v1 save failed: %v", err))
		}
	})
	add("save/v2/seq", func() {
		if err := cube.SaveWith(io.Discard, core.SaveOptions{Workers: 1}); err != nil {
			panic(fmt.Sprintf("bench: v2 save failed: %v", err))
		}
	})
	add(fmt.Sprintf("save/v2/parallel-%d", persistWorkers), func() {
		if err := cube.SaveWith(io.Discard, core.SaveOptions{Workers: persistWorkers}); err != nil {
			panic(fmt.Sprintf("bench: v2 save failed: %v", err))
		}
	})

	loadV1 := add("load/v1-gob", func() {
		mustLoad(core.Load(bytes.NewReader(v1bytes)))
	})
	add("load/v2/seq", func() {
		mustLoad(core.LoadWith(bytes.NewReader(v2bytes), core.LoadOptions{Workers: 1}))
	})
	loadV2 := add(fmt.Sprintf("load/v2/parallel-%d", persistWorkers), func() {
		mustLoad(core.LoadWith(bytes.NewReader(v2bytes), core.LoadOptions{Workers: persistWorkers}))
	})
	if loadV2.NsPerOp > 0 {
		suite.LoadSpeedup = float64(loadV1.NsPerOp) / float64(loadV2.NsPerOp)
	}

	// Lazy serving cases need the snapshot on disk (the lazy opener maps a
	// file, not a reader).
	snapFile, err := os.CreateTemp("", "flowbench-*.fcb")
	if err != nil {
		panic(fmt.Sprintf("bench: persist temp snapshot: %v", err))
	}
	snapPath := snapFile.Name()
	defer os.Remove(snapPath) //nolint:errcheck // best-effort cleanup
	if _, err := snapFile.Write(v2bytes); err != nil {
		panic(fmt.Sprintf("bench: persist temp snapshot: %v", err))
	}
	if err := snapFile.Close(); err != nil {
		panic(fmt.Sprintf("bench: persist temp snapshot: %v", err))
	}
	mustOpenLazy := func() *core.Cube {
		lz, err := core.LoadCubeLazy(snapPath, core.LazyOptions{})
		if err != nil {
			panic(fmt.Sprintf("bench: lazy open failed: %v", err))
		}
		return lz
	}

	// The steady-state query mix: every materialized cell once, in sorted
	// cuboid/cell order.
	type cellQuery struct {
		spec   core.CuboidSpec
		values []hierarchy.NodeID
	}
	var queries []cellQuery
	cuboidKeys := make([]string, 0, len(cube.Cuboids))
	for key := range cube.Cuboids {
		cuboidKeys = append(cuboidKeys, key)
	}
	sort.Strings(cuboidKeys)
	for _, key := range cuboidKeys {
		cb := cube.Cuboids[key]
		for _, cell := range cb.SortedCells() {
			queries = append(queries, cellQuery{spec: cb.Spec, values: cell.Values})
		}
	}
	if len(queries) == 0 {
		panic("bench: persist cube has no cells to query")
	}
	runQueries := func(c *core.Cube) {
		for _, q := range queries {
			if _, ok := c.Cell(q.spec, q.values); !ok {
				panic(fmt.Sprintf("bench: cell %v of %s missing", q.values, q.spec.Key()))
			}
		}
	}

	// Cold open: mapping + framing/CRC validation, nothing decoded.
	openLazy := add("open-lazy", func() {
		mustOpenLazy().Close() //nolint:errcheck // benchmark body
	})
	if openLazy.NsPerOp > 0 {
		suite.LazyOpenSpeedup = float64(loadV2.NsPerOp) / float64(openLazy.NsPerOp)
	}

	// Cold open plus the first cell query: one section decodes.
	first := queries[0]
	add("first-query-lazy", func() {
		lz := mustOpenLazy()
		if _, ok := lz.Cell(first.spec, first.values); !ok {
			panic("bench: first lazy query missed")
		}
		lz.Close() //nolint:errcheck // benchmark body
	})

	// Steady state: one long-lived lazy cube answering the full query mix
	// from its LRU. MaxRSS is the GC-settled live-heap delta the serving
	// cube retains — the bound the default cache budget promises — measured
	// against what the fully decoded eager cube holds.
	liveHeap := func() int64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return int64(ms.HeapAlloc)
	}
	heap0 := liveHeap()
	steady := mustOpenLazy()
	runQueries(steady)
	lazyRSS := liveHeap() - heap0
	add("steady-state-lazy", func() {
		runQueries(steady)
	})
	setRSS(&suite, "steady-state-lazy", lazyRSS)
	steady.Close() //nolint:errcheck // benchmark body

	heap0 = liveHeap()
	eagerCube, err := core.LoadWith(bytes.NewReader(v2bytes), core.LoadOptions{Workers: persistWorkers})
	if err != nil {
		panic(fmt.Sprintf("bench: persist load failed: %v", err))
	}
	eagerRSS := liveHeap() - heap0
	setRSS(&suite, fmt.Sprintf("load/v2/parallel-%d", persistWorkers), eagerRSS)
	runtime.KeepAlive(eagerCube)
	return suite
}

// setRSS stamps a recorded result's MaxRSSBytes after the fact (the heap
// measurement brackets the long-lived state, not the timed loop).
func setRSS(suite *PersistSuite, name string, rss int64) {
	for i := range suite.Results {
		if suite.Results[i].Name == name {
			suite.Results[i].MaxRSSBytes = rss
		}
	}
}
