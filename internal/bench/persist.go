package bench

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"testing"

	"flowcube/internal/core"
	"flowcube/internal/datagen"
)

// PersistSuite is the snapshot-codec benchmark set serialized to
// BENCH_persist.json via cmd/flowbench -persist: the v1 gob baseline against
// the v2 columnar codec, save and load, sequential and parallel. The summary
// ratios are the two the format was built for — serialized size (v2/v1) and
// load speedup (v1 time over parallel v2 time).
type PersistSuite struct {
	GoVersion   string        `json:"go_version"`
	GOMAXPROCS  int           `json:"gomaxprocs"`
	Paths       int           `json:"paths"`
	Seed        int64         `json:"seed"`
	Cells       int           `json:"cells"`
	V1Bytes     int           `json:"v1_bytes"`
	V2Bytes     int           `json:"v2_bytes"`
	BytesRatio  float64       `json:"v2_over_v1_bytes"`
	LoadSpeedup float64       `json:"load_speedup_v2_parallel_over_v1"`
	Results     []MicroResult `json:"results"`
}

// persistWorkers is the parallel codec width benchmarked against the
// sequential path; 8 matches the counting-core sharding benchmarks.
const persistWorkers = 8

// Persist benchmarks the snapshot codecs on one materialized cube (paper
// baseline scaled by Options.Scale, exceptions mined so every section kind
// is populated).
func Persist(o Options) PersistSuite {
	cfg := o.baseConfig()
	cfg.NumPaths = int(100_000 * o.scale())
	ds := datagen.MustGenerate(cfg)
	cube, err := core.Build(ds.DB, core.Config{
		MinSupport:            0.01,
		Epsilon:               0.1,
		Tau:                   0.5,
		Plan:                  ds.DefaultPlan(),
		MineExceptions:        true,
		SingleStageExceptions: true,
		Workers:               runtime.GOMAXPROCS(0),
	})
	if err != nil {
		panic(fmt.Sprintf("bench: persist cube build failed: %v", err))
	}

	var v1buf, v2buf bytes.Buffer
	if err := cube.SaveV1(&v1buf); err != nil {
		panic(fmt.Sprintf("bench: v1 save failed: %v", err))
	}
	if err := cube.Save(&v2buf); err != nil {
		panic(fmt.Sprintf("bench: v2 save failed: %v", err))
	}
	v1bytes, v2bytes := v1buf.Bytes(), v2buf.Bytes()

	cells := 0
	for _, cb := range cube.Cuboids {
		cells += len(cb.Cells)
	}
	suite := PersistSuite{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Paths:      cfg.NumPaths,
		Seed:       cfg.Seed,
		Cells:      cells,
		V1Bytes:    len(v1bytes),
		V2Bytes:    len(v2bytes),
		BytesRatio: float64(len(v2bytes)) / float64(len(v1bytes)),
	}
	add := func(name string, op func()) MicroResult {
		var res MicroResult
		if o.MicroIters > 0 {
			res = measureFixed(o.MicroIters, op)
		} else {
			r := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					op()
				}
			})
			res = MicroResult{
				Iterations:  r.N,
				NsPerOp:     r.NsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
			}
		}
		res.Name = name
		suite.Results = append(suite.Results, res)
		o.progress("persist %s: %d ns/op, %d B/op, %d allocs/op",
			name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
		return res
	}
	mustLoad := func(cube *core.Cube, err error) {
		if err != nil {
			panic(fmt.Sprintf("bench: persist load failed: %v", err))
		}
	}

	add("save/v1-gob", func() {
		if err := cube.SaveV1(io.Discard); err != nil {
			panic(fmt.Sprintf("bench: v1 save failed: %v", err))
		}
	})
	add("save/v2/seq", func() {
		if err := cube.SaveWith(io.Discard, core.SaveOptions{Workers: 1}); err != nil {
			panic(fmt.Sprintf("bench: v2 save failed: %v", err))
		}
	})
	add(fmt.Sprintf("save/v2/parallel-%d", persistWorkers), func() {
		if err := cube.SaveWith(io.Discard, core.SaveOptions{Workers: persistWorkers}); err != nil {
			panic(fmt.Sprintf("bench: v2 save failed: %v", err))
		}
	})

	loadV1 := add("load/v1-gob", func() {
		mustLoad(core.Load(bytes.NewReader(v1bytes)))
	})
	add("load/v2/seq", func() {
		mustLoad(core.LoadWith(bytes.NewReader(v2bytes), core.LoadOptions{Workers: 1}))
	})
	loadV2 := add(fmt.Sprintf("load/v2/parallel-%d", persistWorkers), func() {
		mustLoad(core.LoadWith(bytes.NewReader(v2bytes), core.LoadOptions{Workers: persistWorkers}))
	})
	if loadV2.NsPerOp > 0 {
		suite.LoadSpeedup = float64(loadV1.NsPerOp) / float64(loadV2.NsPerOp)
	}
	return suite
}
