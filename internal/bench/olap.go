package bench

// The OLAP query-algebra benchmark (cmd/flowbench -olap → BENCH_olap.json):
// what the materialization planner buys and what it costs. One eager cube
// is built, then pruned under a sweep of query-cost budgets; each budget
// row reports how many cuboids the planner dropped, the snapshot bytes the
// drop saved, and the answer latency of the dropped cells — reconstructed
// exactly at query time — next to the eager cube's materialized latency for
// the same queries. Every reconstruction is digest-verified against its
// eager twin, so the latency numbers measure honest, byte-identical
// answers.

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	"flowcube/internal/core"
	"flowcube/internal/datagen"
	"flowcube/internal/hierarchy"
	"flowcube/internal/olap"
)

// OLAPBudgetRow is one planner budget point of the sweep.
type OLAPBudgetRow struct {
	// Budget is the query-cost budget (max descendant cells folded per
	// answer); 0 means unlimited.
	Budget int `json:"budget"`
	// CuboidsDropped and CellsDropped census what the planner pruned.
	CuboidsDropped int `json:"cuboids_dropped"`
	CellsDropped   int `json:"cells_dropped"`
	// MaxFold is the widest fold any computed cell needs under this budget.
	MaxFold int `json:"max_fold"`
	// SnapshotBytes is the serialized cube size after pruning;
	// SavingsPct is the reduction against the eager snapshot.
	SnapshotBytes int64   `json:"snapshot_bytes"`
	SavingsPct    float64 `json:"savings_pct"`
	// ComputedP50Ms/P99Ms are answer latencies for dropped cells,
	// reconstructed at query time.
	ComputedP50Ms float64 `json:"computed_p50_ms"`
	ComputedP99Ms float64 `json:"computed_p99_ms"`
}

// OLAPSuite is the -olap benchmark serialized to BENCH_olap.json.
type OLAPSuite struct {
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Paths      int    `json:"paths"`
	MinCount   int64  `json:"min_count"`
	Seed       int64  `json:"seed"`
	// Queries is how many dropped-cell queries the latency percentiles
	// cover; Iters how often each ran.
	Queries int `json:"queries"`
	Iters   int `json:"iters"`
	// EagerSnapshotBytes is the unpruned cube's serialized size.
	EagerSnapshotBytes int64 `json:"eager_snapshot_bytes"`
	// MaterializedP50Ms/P99Ms are the same queries answered by the eager
	// cube (direct cell hits) — the baseline computed latency compares to.
	MaterializedP50Ms float64 `json:"materialized_p50_ms"`
	MaterializedP99Ms float64 `json:"materialized_p99_ms"`
	// ComputedOverMaterialized is the unlimited-budget p50 ratio: how much
	// a reconstructed answer costs relative to a materialized one.
	ComputedOverMaterialized float64 `json:"computed_over_materialized_p50"`
	// DigestVerified confirms sampled reconstructions digested
	// byte-identical to their eager cells.
	DigestVerified bool `json:"digest_verified"`
	// Budgets sweeps the planner's query-cost budget, unlimited last.
	Budgets []OLAPBudgetRow `json:"budgets"`
}

// olapIters is how often each sampled query runs; the percentile pool is
// queries × iters.
const olapIters = 5

// countingWriter measures a serialized snapshot without keeping it.
type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

// OLAP benchmarks the query algebra over partially materialized cubes.
func OLAP(ctx context.Context, o Options) OLAPSuite {
	cfg := o.baseConfig()
	cfg.NumPaths = int(20_000 * o.scale())
	ds := datagen.MustGenerate(cfg)
	n := ds.DB.Len()
	minCount := o.minCount(0.01, n)

	// Exceptions stay off: exception-bearing cells are holistic (paper
	// Lemma 4.3) and never verify, so the planner would refuse every drop.
	build := func() *core.Cube {
		cube, err := core.Build(ds.DB, core.Config{
			MinCount: minCount,
			Plan:     ds.DefaultPlan(),
			Workers:  runtime.GOMAXPROCS(0),
		})
		if err != nil {
			panic(fmt.Sprintf("bench: olap build failed: %v", err))
		}
		return cube
	}
	eager := build()

	suite := OLAPSuite{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Paths:      n,
		MinCount:   minCount,
		Seed:       cfg.Seed,
		Iters:      olapIters,
	}
	var cw countingWriter
	if err := eager.Save(&cw); err != nil {
		panic(fmt.Sprintf("bench: olap save failed: %v", err))
	}
	suite.EagerSnapshotBytes = cw.n

	// The query sample: cells of every cuboid the unlimited-budget planner
	// drops — the cells that exist materialized in the eager cube and only
	// computed in the pruned ones.
	unlimited := build()
	res, err := olap.Prune(ctx, unlimited, olap.PlannerConfig{})
	if err != nil {
		panic(fmt.Sprintf("bench: olap prune failed: %v", err))
	}
	if len(res.Dropped) == 0 {
		panic("bench: olap planner dropped nothing; no computed cells to measure")
	}
	type query struct {
		spec   core.CuboidSpec
		values []hierarchy.NodeID
	}
	var queries []query
	const maxQueries = 64
	for _, d := range res.Dropped {
		spec, err := core.ParseCuboidKey(d.Cuboid)
		if err != nil {
			panic(fmt.Sprintf("bench: olap bad dropped cuboid key %q: %v", d.Cuboid, err))
		}
		for _, cell := range eager.Cuboid(spec).SortedCells() {
			if len(queries) >= maxQueries {
				break
			}
			queries = append(queries, query{spec, cell.Values})
		}
	}
	suite.Queries = len(queries)

	// Digest honesty: sampled reconstructions must be byte-identical to
	// their eager twins (the planner verified every cell once; this re-runs
	// the check on the artifact's own sample).
	suite.DigestVerified = true
	for i, q := range queries {
		if i >= 8 {
			break
		}
		rec, _, err := unlimited.ReconstructCell(ctx, q.spec, q.values)
		if err != nil {
			panic(fmt.Sprintf("bench: olap reconstruct %s failed: %v", q.spec.Key(), err))
		}
		ec, ok := eager.Cell(q.spec, q.values)
		if !ok || core.CellDigest(rec) != core.CellDigest(ec) {
			suite.DigestVerified = false
		}
	}

	answerAll := func(cube *core.Cube, wantExact bool) (p50, p99 float64) {
		lat := make([]time.Duration, 0, len(queries)*olapIters)
		for i := 0; i < olapIters; i++ {
			for _, q := range queries {
				start := time.Now()
				a, err := cube.Answer(ctx, core.Query{Spec: q.spec, Values: q.values})
				d := time.Since(start)
				if err != nil {
					panic(fmt.Sprintf("bench: olap answer %s failed: %v", q.spec.Key(), err))
				}
				if wantExact && !a.Cells[0].Exact {
					panic(fmt.Sprintf("bench: olap answer %s not exact", q.spec.Key()))
				}
				lat = append(lat, d)
			}
		}
		return percentileMs(lat, 0.50), percentileMs(lat, 0.99)
	}

	suite.MaterializedP50Ms, suite.MaterializedP99Ms = answerAll(eager, true)
	o.progress("olap: %d queries materialized p50 %.4f ms p99 %.4f ms",
		len(queries), suite.MaterializedP50Ms, suite.MaterializedP99Ms)

	// The budget sweep, unlimited (0) last so its row doubles as the
	// headline computed latency.
	for _, budget := range []int{1, 4, 16, 64, 0} {
		pruned := unlimited
		plan := res
		if budget != 0 {
			pruned = build()
			plan, err = olap.Prune(ctx, pruned, olap.PlannerConfig{CostBudget: budget})
			if err != nil {
				panic(fmt.Sprintf("bench: olap prune (budget %d) failed: %v", budget, err))
			}
		}
		row := OLAPBudgetRow{Budget: budget}
		cells := 0
		for _, d := range plan.Dropped {
			cells += d.Cells
			if d.MaxFold > row.MaxFold {
				row.MaxFold = d.MaxFold
			}
		}
		row.CuboidsDropped = len(plan.Dropped)
		row.CellsDropped = cells
		var cw countingWriter
		if err := pruned.Save(&cw); err != nil {
			panic(fmt.Sprintf("bench: olap save (budget %d) failed: %v", budget, err))
		}
		row.SnapshotBytes = cw.n
		if suite.EagerSnapshotBytes > 0 {
			row.SavingsPct = 100 * float64(suite.EagerSnapshotBytes-row.SnapshotBytes) / float64(suite.EagerSnapshotBytes)
		}
		// Dropped cells answer exactly on every pruned cube: a cell whose
		// cuboid survived this tighter budget is a materialized hit, the
		// rest reconstruct.
		row.ComputedP50Ms, row.ComputedP99Ms = answerAll(pruned, true)
		suite.Budgets = append(suite.Budgets, row)
		o.progress("olap: budget %d dropped %d cuboids (%d cells), snapshot %d B (-%.1f%%), p50 %.4f ms p99 %.4f ms",
			budget, row.CuboidsDropped, row.CellsDropped, row.SnapshotBytes, row.SavingsPct,
			row.ComputedP50Ms, row.ComputedP99Ms)
	}
	last := suite.Budgets[len(suite.Budgets)-1]
	if suite.MaterializedP50Ms > 0 {
		suite.ComputedOverMaterialized = last.ComputedP50Ms / suite.MaterializedP50Ms
	}
	return suite
}

// percentileMs returns the q-quantile of the latencies in milliseconds.
func percentileMs(lat []time.Duration, q float64) float64 {
	if len(lat) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return float64(sorted[idx].Nanoseconds()) / 1e6
}
