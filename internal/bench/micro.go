package bench

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"flowcube/internal/core"
	"flowcube/internal/datagen"
	"flowcube/internal/hierarchy"
	"flowcube/internal/itemset"
	"flowcube/internal/mining"
	"flowcube/internal/transact"
)

// MicroResult is one micro-benchmark measurement; the suite serializes to
// BENCH_mining.json via cmd/flowbench -micro.
type MicroResult struct {
	Name        string `json:"name"`
	Iterations  int    `json:"iterations"`
	NsPerOp     int64  `json:"ns_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	// MaxRSSBytes is the live-heap footprint the measured configuration
	// retains (GC-settled HeapAlloc delta), recorded only for the persist
	// suite's serving cases where bounded residency is the point.
	MaxRSSBytes int64 `json:"max_rss_bytes,omitempty"`
}

// MicroSuite is the canonical counting-core benchmark set: the dense first
// scan, candidate-trie support counting (sequential, sharded, and the
// pre-sharding atomic reference), and the populate assignment loop against
// its pre-optimization string-key reference.
type MicroSuite struct {
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Paths      int           `json:"paths"`
	Seed       int64         `json:"seed"`
	Results    []MicroResult `json:"results"`
}

// Micro runs the counting-core micro-benchmarks on one synthetic dataset
// (paper baseline scaled by Options.Scale).
func Micro(o Options) MicroSuite {
	cfg := o.baseConfig()
	cfg.NumPaths = int(100_000 * o.scale())
	ds := datagen.MustGenerate(cfg)
	syms := transact.MustNewSymbols(ds.Schema, ds.DefaultPlan())
	txs := syms.Encode(ds.DB)

	suite := MicroSuite{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Paths:      cfg.NumPaths,
		Seed:       cfg.Seed,
	}
	add := func(name string, op func()) {
		var res MicroResult
		if o.MicroIters > 0 {
			res = measureFixed(o.MicroIters, op)
		} else {
			r := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					op()
				}
			})
			res = MicroResult{
				Iterations:  r.N,
				NsPerOp:     r.NsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
			}
		}
		res.Name = name
		suite.Results = append(suite.Results, res)
		o.progress("micro %s: %d ns/op, %d B/op, %d allocs/op",
			name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
	}

	// First scan: dense slice counters plus the top-level pair precount.
	for _, workers := range []int{1, 8} {
		workers := workers
		add(fmt.Sprintf("scan1/workers=%d", workers), func() {
			mining.FirstScan(syms, txs, true, workers)
		})
	}

	// Candidate-trie support counting at lengths 2–4. One op is a full pass
	// over the database; counts accumulate across ops, which costs nothing
	// and keeps the timed region pure counting.
	minCount := o.minCount(0.01, ds.DB.Len())
	for k := 2; k <= 4; k++ {
		cands := candidatesAt(syms, txs, k, minCount)
		if len(cands) == 0 {
			o.progress("micro trie-count/k=%d: no candidates at this scale, skipped", k)
			continue
		}
		build := func() *itemset.Trie {
			tr := itemset.NewTrie()
			for _, c := range cands {
				tr.Insert(c)
			}
			return tr
		}
		seq := build()
		add(fmt.Sprintf("trie-count/k=%d/seq", k), func() {
			for _, tx := range txs {
				seq.Count(tx)
			}
		})
		sharded := build()
		add(fmt.Sprintf("trie-count/k=%d/sharded-8", k), func() {
			sharded.CountParallel(txs, 8)
		})
		atomicRef := build()
		add(fmt.Sprintf("trie-count/k=%d/atomic-8", k), func() {
			atomicRef.CountParallelAtomic(txs, 8)
		})
	}

	// populate: the full pass, the record→cell assignment alone, and the
	// pre-optimization fmt-string-key assignment loop as the allocation
	// reference.
	ccfg := core.Config{MinCount: minCount, Plan: ds.DefaultPlan()}
	cube, run, assign, err := core.PopulateBench(ds.DB, ccfg)
	if err != nil {
		panic(fmt.Sprintf("bench: populate preparation failed: %v", err))
	}
	add("populate/run", run)
	add("populate/assign", assign)
	add("populate/assign-reference-stringkey", func() {
		referenceAssign(cube, ds)
	})
	return suite
}

// measureFixed times exactly iters calls of op, reading allocator stats
// around the loop — the quick path smoke tests use in place of
// testing.Benchmark's ~1s-per-benchmark ramp-up.
func measureFixed(iters int, op func()) MicroResult {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		op()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	n := int64(iters)
	return MicroResult{
		Iterations:  iters,
		NsPerOp:     elapsed.Nanoseconds() / n,
		BytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / n,
		AllocsPerOp: int64(after.Mallocs-before.Mallocs) / n,
	}
}

// candidatesAt reproduces the Apriori candidate set of length k: mine the
// frequent itemsets up to length k-1, then join.
func candidatesAt(syms *transact.Symbols, txs []transact.Transaction, k int, minCount int64) [][]transact.Item {
	opts := mining.SharedOptions(0.01)
	opts.MinCount = minCount
	opts.MaxLen = k - 1
	res, err := mining.Mine(syms, txs, opts)
	if err != nil {
		panic(fmt.Sprintf("bench: candidate mining failed: %v", err))
	}
	if len(res.ByLength) < k-1 || len(res.ByLength[k-2]) == 0 {
		return nil
	}
	return itemset.Join(res.ByLength[k-2])
}

// referenceAssign is the pre-optimization record→cell assignment loop —
// fmt-formatted string keys, per-target ancestor lookups — kept read-only
// here as the allocation baseline populate/assign is measured against.
func referenceAssign(cube *core.Cube, ds *datagen.Dataset) int {
	schema := ds.Schema
	values := make([]hierarchy.NodeID, len(schema.Dims))
	hits := 0
	for _, cb := range cube.Cuboids {
		if len(cb.Cells) == 0 {
			continue
		}
		levels := cb.Spec.Item
		for tid := range ds.DB.Records {
			rec := &ds.DB.Records[tid]
			for d, v := range rec.Dims {
				if levels[d] == 0 {
					values[d] = hierarchy.Root
				} else {
					values[d] = schema.Dims[d].AncestorAt(v, levels[d])
				}
			}
			if _, ok := cb.Cells[referenceCellKey(values)]; ok {
				hits++
			}
		}
	}
	return hits
}

// referenceCellKey reproduces the fmt-based cell key the assignment loop
// used before the packed-key plan.
func referenceCellKey(values []hierarchy.NodeID) string {
	var b strings.Builder
	for i, v := range values {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	return b.String()
}
