// Package mining implements the paper's Algorithm 1 ("Shared") — the
// simultaneous, multi-level mining of frequent cells and frequent path
// segments over the transformed transaction database — together with the
// "Basic" baseline used in the evaluation, which is the same Apriori loop
// with every candidate-pruning optimization disabled.
package mining

import (
	"fmt"
	"math"
	"sync"

	"flowcube/internal/itemset"
	"flowcube/internal/transact"
)

// Options configures one mining run. Shared and Basic presets are provided
// by SharedOptions and BasicOptions; individual toggles support the
// ablation study.
type Options struct {
	// MinSupport is the relative minimum support δ in (0,1]. Ignored when
	// MinCount > 0.
	MinSupport float64
	// MinCount is the absolute minimum support; overrides MinSupport.
	MinCount int64

	// PruneAncestor removes candidates containing an item together with one
	// of its ancestors (optimization 4 of §5).
	PruneAncestor bool
	// PruneLink removes candidates containing two stages that can never
	// appear in the same path (optimization 2 of §5).
	PruneLink bool
	// Precount counts high-abstraction-level pairs during the first scan
	// and removes length-2 candidates whose pre-counted image pair is
	// infrequent (optimization 1 of §5).
	Precount bool

	// MaxLen stops the level-wise loop after this pattern length; 0 means
	// unlimited.
	MaxLen int
	// Workers shards support counting across goroutines. The result is
	// identical to the sequential run; 0 or 1 keeps counting sequential.
	Workers int
	// CandidateLimit aborts the run when the number of candidates of one
	// length exceeds it; 0 means unlimited. The paper reports Basic
	// exceeding memory on larger inputs — this is the controlled analogue.
	CandidateLimit int
}

// SharedOptions returns the Shared algorithm's configuration at the given
// minimum support.
func SharedOptions(minSupport float64) Options {
	return Options{
		MinSupport:    minSupport,
		PruneAncestor: true,
		PruneLink:     true,
		Precount:      true,
	}
}

// BasicOptions returns the Basic baseline's configuration: no candidate
// pruning beyond the Apriori subset test.
func BasicOptions(minSupport float64) Options {
	return Options{MinSupport: minSupport}
}

// LevelStats records per-length work for the pruning-power analysis
// (paper Figure 11).
type LevelStats struct {
	Length    int
	Generated int // candidates produced by the Apriori join
	Pruned    int // removed by Shared's optimizations before counting
	Counted   int // candidates whose support was measured
	Frequent  int
}

// Result is the output of one mining run.
type Result struct {
	// ByLength[k-1] holds the frequent itemsets of length k.
	ByLength [][]itemset.Counted
	// Levels holds per-length candidate statistics.
	Levels []LevelStats
	// Scans is the number of passes over the transaction database.
	Scans int
	// MinCount is the absolute support threshold used.
	MinCount int64
	// Aborted is true when CandidateLimit stopped the run early.
	Aborted bool

	// indexOnce guards the lazy build of index: Result is reachable from
	// concurrent readers (e.g. flowserve handlers inspecting a cube's
	// mining run), so the first Support call must not race later ones.
	indexOnce sync.Once
	index     map[string]int64
}

// All returns every frequent itemset across lengths.
func (r *Result) All() []itemset.Counted {
	var out []itemset.Counted
	for _, l := range r.ByLength {
		out = append(out, l...)
	}
	return out
}

// Support looks up the support count of a sorted itemset; ok is false when
// the set is not frequent. Safe for concurrent callers: the lazy index
// builds exactly once.
func (r *Result) Support(set []transact.Item) (int64, bool) {
	r.indexOnce.Do(func() {
		r.index = make(map[string]int64)
		for _, l := range r.ByLength {
			for _, c := range l {
				r.index[itemset.Key(c.Set)] = c.Count
			}
		}
	})
	n, ok := r.index[itemset.Key(set)]
	return n, ok
}

// MaxLen reports the longest frequent pattern length found.
func (r *Result) MaxLen() int {
	for k := len(r.ByLength); k > 0; k-- {
		if len(r.ByLength[k-1]) > 0 {
			return k
		}
	}
	return 0
}

// ResolveMinCount converts options to an absolute support threshold over n
// transactions. Minimum support must be positive: a zero threshold would
// ask for every subset of every transaction.
func ResolveMinCount(opts Options, n int) (int64, error) {
	if opts.MinCount > 0 {
		return opts.MinCount, nil
	}
	if opts.MinSupport <= 0 || opts.MinSupport > 1 {
		return 0, fmt.Errorf("mining: minimum support must be in (0,1], got %g", opts.MinSupport)
	}
	c := int64(math.Ceil(opts.MinSupport * float64(n)))
	if c < 1 {
		c = 1
	}
	return c, nil
}

// maxDensePairs caps the dense pair matrix at 1M entries (8 MiB per
// worker); beyond that the precount falls back to a sparse map. A variable
// so tests can shrink it to exercise the sparse path.
var maxDensePairs = 1 << 20

// PairCounts holds the pre-counted supports of unordered pairs of
// top-abstraction-level items from the first scan. The counts live either
// in a dense T×T matrix over the T top-level items (the common case —
// cache-friendly, allocation-free increments) or, when T² exceeds
// maxDensePairs, in a sparse map keyed by packed item pair.
type PairCounts struct {
	// topIdx maps every interned item to its dense top-level index, or -1
	// when the item is not at the top abstraction level. Shared (read-only)
	// across per-worker shards.
	topIdx []int32
	nTop   int

	dense  []int64
	sparse map[int64]int64
}

// newPairCounts builds the shared index over the symbol table and the
// zeroed count store.
func newPairCounts(syms *transact.Symbols) *PairCounts {
	p := &PairCounts{topIdx: make([]int32, syms.Len())}
	for i := range p.topIdx {
		if syms.IsTopLevel(transact.Item(i)) {
			p.topIdx[i] = int32(p.nTop)
			p.nTop++
		} else {
			p.topIdx[i] = -1
		}
	}
	p.alloc()
	return p
}

func (p *PairCounts) alloc() {
	if p.nTop*p.nTop <= maxDensePairs {
		p.dense = make([]int64, p.nTop*p.nTop)
	} else {
		p.sparse = make(map[int64]int64)
	}
}

// emptyShard returns a zeroed store sharing the read-only top-level index,
// for one scan worker.
func (p *PairCounts) emptyShard() *PairCounts {
	s := &PairCounts{topIdx: p.topIdx, nTop: p.nTop}
	s.alloc()
	return s
}

// merge folds a worker shard into p. Integer addition is exact and
// commutative, so the merged counts match the sequential scan regardless of
// worker scheduling.
func (p *PairCounts) merge(s *PairCounts) {
	if p.dense != nil {
		for i, v := range s.dense {
			if v != 0 {
				p.dense[i] += v
			}
		}
		return
	}
	for k, v := range s.sparse {
		p.sparse[k] += v
	}
}

// Get reports the pre-counted support of the unordered pair {a, b}; zero
// when either item is not top-level or the pair never co-occurred.
func (p *PairCounts) Get(a, b transact.Item) int64 {
	if p == nil {
		return 0
	}
	if p.dense != nil {
		ia, ib := p.topIdx[a], p.topIdx[b]
		if ia < 0 || ib < 0 {
			return 0
		}
		if ia > ib {
			ia, ib = ib, ia
		}
		return p.dense[int(ia)*p.nTop+int(ib)]
	}
	return p.sparse[pairKey(a, b)]
}

// FirstScan performs the first database pass: per-item supports in a dense
// slice indexed by transact.Item (items are small dense ints, so the scan's
// inner loop is a slice increment, not a map probe), plus — when precount
// is set — the supports of pairs of top-abstraction-level items. With
// workers > 1 the transactions are sharded into contiguous chunks and the
// per-worker counters merged; integer merges are exact, so the result is
// identical to the sequential scan. Exported for the micro-benchmark
// harness and the equivalence tests; Mine is the production caller.
func FirstScan(syms *transact.Symbols, txs []transact.Transaction, precount bool, workers int) ([]int64, *PairCounts) {
	var master *PairCounts
	if precount {
		master = newPairCounts(syms)
	}
	scan := func(items []int64, pairs *PairCounts, part []transact.Transaction) {
		var topBuf []int32
		for _, tx := range part {
			for _, it := range tx {
				items[it]++
			}
			if pairs == nil {
				continue
			}
			// Transactions are item-sorted and dense top indexes are
			// assigned in item order, so topBuf stays ascending and the
			// dense writes hit the upper triangle Get reads.
			topBuf = topBuf[:0]
			if pairs.dense != nil {
				for _, it := range tx {
					if idx := pairs.topIdx[it]; idx >= 0 {
						topBuf = append(topBuf, idx)
					}
				}
				for i := 0; i < len(topBuf); i++ {
					row := int(topBuf[i]) * pairs.nTop
					for j := i + 1; j < len(topBuf); j++ {
						pairs.dense[row+int(topBuf[j])]++
					}
				}
				continue
			}
			for _, it := range tx {
				if pairs.topIdx[it] >= 0 {
					topBuf = append(topBuf, int32(it))
				}
			}
			for i := 0; i < len(topBuf); i++ {
				for j := i + 1; j < len(topBuf); j++ {
					pairs.sparse[pairKey(transact.Item(topBuf[i]), transact.Item(topBuf[j]))]++
				}
			}
		}
	}
	if workers <= 1 || len(txs) < 2*workers {
		items := make([]int64, syms.Len())
		scan(items, master, txs)
		return items, master
	}
	itemShards := make([][]int64, workers)
	pairShards := make([]*PairCounts, workers)
	var wg sync.WaitGroup
	chunk := (len(txs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(txs) {
			break
		}
		hi := lo + chunk
		if hi > len(txs) {
			hi = len(txs)
		}
		wg.Add(1)
		go func(w int, part []transact.Transaction) {
			defer wg.Done()
			items := make([]int64, syms.Len())
			var pairs *PairCounts
			if master != nil {
				pairs = master.emptyShard()
			}
			scan(items, pairs, part)
			itemShards[w], pairShards[w] = items, pairs
		}(w, txs[lo:hi])
	}
	wg.Wait()
	items := make([]int64, syms.Len())
	for w, shard := range itemShards {
		if shard == nil {
			continue
		}
		for i, v := range shard {
			if v != 0 {
				items[i] += v
			}
		}
		if master != nil {
			master.merge(pairShards[w])
		}
	}
	return items, master
}

// pairKey packs an unordered item pair.
func pairKey(a, b transact.Item) int64 {
	if a > b {
		a, b = b, a
	}
	return int64(a)<<32 | int64(uint32(b))
}

// Mine runs the level-wise loop of Algorithm 1 over the encoded
// transactions. The symbol table must be the one that produced them.
func Mine(syms *transact.Symbols, txs []transact.Transaction, opts Options) (*Result, error) {
	minCount, err := ResolveMinCount(opts, len(txs))
	if err != nil {
		return nil, err
	}
	res := &Result{MinCount: minCount}

	// Scan 1: supports of single items, plus — under Precount — supports
	// of pairs of high-abstraction-level items (paper: "collect frequent
	// items of length 1 into L1, and pre-count patterns of length > 1 at
	// high abstraction levels into P1").
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	itemCounts, pairCounts := FirstScan(syms, txs, opts.Precount, workers)
	res.Scans = 1

	// The dense counter covers every interned item; only items that occur
	// in the scanned transactions count as generated (matching the old
	// map-based scan, whose keys were exactly the occurring items).
	var l1 []itemset.Counted
	distinct := 0
	for it, n := range itemCounts {
		if n == 0 {
			continue
		}
		distinct++
		if n >= minCount {
			l1 = append(l1, itemset.Counted{Set: []transact.Item{transact.Item(it)}, Count: n})
		}
	}
	itemset.SortCounted(l1)
	res.ByLength = append(res.ByLength, l1)
	res.Levels = append(res.Levels, LevelStats{
		Length: 1, Generated: distinct, Counted: distinct, Frequent: len(l1),
	})

	prev := l1
	for k := 2; len(prev) > 0 && (opts.MaxLen == 0 || k <= opts.MaxLen); k++ {
		cands := itemset.Join(prev)
		stats := LevelStats{Length: k, Generated: len(cands)}

		kept := cands[:0]
		for _, c := range cands {
			if opts.PruneAncestor && syms.HasAncestorPair(c) {
				continue
			}
			if opts.PruneLink && !syms.AllLinkable(c) {
				continue
			}
			if opts.Precount && k == 2 && precountPrunes(syms, pairCounts, c[0], c[1], minCount) {
				continue
			}
			kept = append(kept, c)
		}
		stats.Pruned = stats.Generated - len(kept)
		stats.Counted = len(kept)

		if opts.CandidateLimit > 0 && len(kept) > opts.CandidateLimit {
			res.Levels = append(res.Levels, stats)
			res.Aborted = true
			return res, nil
		}
		if len(kept) == 0 {
			res.Levels = append(res.Levels, stats)
			break
		}

		trie := itemset.NewTrie()
		for _, c := range kept {
			trie.Insert(c)
		}
		trie.CountParallel(txs, workers)
		res.Scans++

		lk := trie.Frequent(minCount)
		stats.Frequent = len(lk)
		res.Levels = append(res.Levels, stats)
		res.ByLength = append(res.ByLength, lk)
		prev = lk
	}
	return res, nil
}

// precountPrunes reports whether the pre-counted image pair of {a,b} proves
// the candidate infrequent. The image of an item is itself when it is
// already at the top abstraction level, its derivable top-level
// generalization otherwise; when either image is unknown the candidate
// cannot be pruned.
func precountPrunes(syms *transact.Symbols, pairCounts *PairCounts, a, b transact.Item, minCount int64) bool {
	ia, ib := syms.PrecountImage(a), syms.PrecountImage(b)
	if ia < 0 || ib < 0 || ia == ib {
		return false
	}
	return pairCounts.Get(ia, ib) < minCount
}

// Shared runs Algorithm 1 with all optimizations enabled.
func Shared(syms *transact.Symbols, txs []transact.Transaction, minSupport float64) (*Result, error) {
	return Mine(syms, txs, SharedOptions(minSupport))
}

// Basic runs the unoptimized baseline.
func Basic(syms *transact.Symbols, txs []transact.Transaction, minSupport float64) (*Result, error) {
	return Mine(syms, txs, BasicOptions(minSupport))
}
