// Package mining implements the paper's Algorithm 1 ("Shared") — the
// simultaneous, multi-level mining of frequent cells and frequent path
// segments over the transformed transaction database — together with the
// "Basic" baseline used in the evaluation, which is the same Apriori loop
// with every candidate-pruning optimization disabled.
package mining

import (
	"fmt"
	"math"
	"sync"

	"flowcube/internal/itemset"
	"flowcube/internal/transact"
)

// Options configures one mining run. Shared and Basic presets are provided
// by SharedOptions and BasicOptions; individual toggles support the
// ablation study.
type Options struct {
	// MinSupport is the relative minimum support δ in (0,1]. Ignored when
	// MinCount > 0.
	MinSupport float64
	// MinCount is the absolute minimum support; overrides MinSupport.
	MinCount int64

	// PruneAncestor removes candidates containing an item together with one
	// of its ancestors (optimization 4 of §5).
	PruneAncestor bool
	// PruneLink removes candidates containing two stages that can never
	// appear in the same path (optimization 2 of §5).
	PruneLink bool
	// Precount counts high-abstraction-level pairs during the first scan
	// and removes length-2 candidates whose pre-counted image pair is
	// infrequent (optimization 1 of §5).
	Precount bool

	// MaxLen stops the level-wise loop after this pattern length; 0 means
	// unlimited.
	MaxLen int
	// Workers shards support counting across goroutines. The result is
	// identical to the sequential run; 0 or 1 keeps counting sequential.
	Workers int
	// CandidateLimit aborts the run when the number of candidates of one
	// length exceeds it; 0 means unlimited. The paper reports Basic
	// exceeding memory on larger inputs — this is the controlled analogue.
	CandidateLimit int
}

// SharedOptions returns the Shared algorithm's configuration at the given
// minimum support.
func SharedOptions(minSupport float64) Options {
	return Options{
		MinSupport:    minSupport,
		PruneAncestor: true,
		PruneLink:     true,
		Precount:      true,
	}
}

// BasicOptions returns the Basic baseline's configuration: no candidate
// pruning beyond the Apriori subset test.
func BasicOptions(minSupport float64) Options {
	return Options{MinSupport: minSupport}
}

// LevelStats records per-length work for the pruning-power analysis
// (paper Figure 11).
type LevelStats struct {
	Length    int
	Generated int // candidates produced by the Apriori join
	Pruned    int // removed by Shared's optimizations before counting
	Counted   int // candidates whose support was measured
	Frequent  int
}

// Result is the output of one mining run.
type Result struct {
	// ByLength[k-1] holds the frequent itemsets of length k.
	ByLength [][]itemset.Counted
	// Levels holds per-length candidate statistics.
	Levels []LevelStats
	// Scans is the number of passes over the transaction database.
	Scans int
	// MinCount is the absolute support threshold used.
	MinCount int64
	// Aborted is true when CandidateLimit stopped the run early.
	Aborted bool

	index map[string]int64
}

// All returns every frequent itemset across lengths.
func (r *Result) All() []itemset.Counted {
	var out []itemset.Counted
	for _, l := range r.ByLength {
		out = append(out, l...)
	}
	return out
}

// Support looks up the support count of a sorted itemset; ok is false when
// the set is not frequent.
func (r *Result) Support(set []transact.Item) (int64, bool) {
	if r.index == nil {
		r.index = make(map[string]int64)
		for _, l := range r.ByLength {
			for _, c := range l {
				r.index[itemset.Key(c.Set)] = c.Count
			}
		}
	}
	n, ok := r.index[itemset.Key(set)]
	return n, ok
}

// MaxLen reports the longest frequent pattern length found.
func (r *Result) MaxLen() int {
	for k := len(r.ByLength); k > 0; k-- {
		if len(r.ByLength[k-1]) > 0 {
			return k
		}
	}
	return 0
}

// ResolveMinCount converts options to an absolute support threshold over n
// transactions. Minimum support must be positive: a zero threshold would
// ask for every subset of every transaction.
func ResolveMinCount(opts Options, n int) (int64, error) {
	if opts.MinCount > 0 {
		return opts.MinCount, nil
	}
	if opts.MinSupport <= 0 || opts.MinSupport > 1 {
		return 0, fmt.Errorf("mining: minimum support must be in (0,1], got %g", opts.MinSupport)
	}
	c := int64(math.Ceil(opts.MinSupport * float64(n)))
	if c < 1 {
		c = 1
	}
	return c, nil
}

// scanOnce performs the first database pass: item supports and, when
// precount is set, supports of pairs of top-abstraction-level items. With
// workers > 1 the transactions are sharded and the per-worker maps merged;
// the result is identical to the sequential scan.
func scanOnce(syms *transact.Symbols, txs []transact.Transaction, precount bool, workers int) (map[transact.Item]int64, map[int64]int64) {
	scan := func(part []transact.Transaction) (map[transact.Item]int64, map[int64]int64) {
		items := make(map[transact.Item]int64)
		var pairs map[int64]int64
		if precount {
			pairs = make(map[int64]int64)
		}
		var topBuf []transact.Item
		for _, tx := range part {
			for _, it := range tx {
				items[it]++
			}
			if !precount {
				continue
			}
			topBuf = topBuf[:0]
			for _, it := range tx {
				if syms.IsTopLevel(it) {
					topBuf = append(topBuf, it)
				}
			}
			for i := 0; i < len(topBuf); i++ {
				for j := i + 1; j < len(topBuf); j++ {
					pairs[pairKey(topBuf[i], topBuf[j])]++
				}
			}
		}
		return items, pairs
	}
	if workers <= 1 || len(txs) < 2*workers {
		return scan(txs)
	}
	type result struct {
		items map[transact.Item]int64
		pairs map[int64]int64
	}
	results := make([]result, workers)
	var wg sync.WaitGroup
	chunk := (len(txs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(txs) {
			break
		}
		hi := lo + chunk
		if hi > len(txs) {
			hi = len(txs)
		}
		wg.Add(1)
		go func(w int, part []transact.Transaction) {
			defer wg.Done()
			results[w].items, results[w].pairs = scan(part)
		}(w, txs[lo:hi])
	}
	wg.Wait()
	items := results[0].items
	pairs := results[0].pairs
	for _, r := range results[1:] {
		for it, n := range r.items {
			items[it] += n
		}
		for k, n := range r.pairs {
			pairs[k] += n
		}
	}
	return items, pairs
}

// pairKey packs an unordered item pair.
func pairKey(a, b transact.Item) int64 {
	if a > b {
		a, b = b, a
	}
	return int64(a)<<32 | int64(uint32(b))
}

// Mine runs the level-wise loop of Algorithm 1 over the encoded
// transactions. The symbol table must be the one that produced them.
func Mine(syms *transact.Symbols, txs []transact.Transaction, opts Options) (*Result, error) {
	minCount, err := ResolveMinCount(opts, len(txs))
	if err != nil {
		return nil, err
	}
	res := &Result{MinCount: minCount}

	// Scan 1: supports of single items, plus — under Precount — supports
	// of pairs of high-abstraction-level items (paper: "collect frequent
	// items of length 1 into L1, and pre-count patterns of length > 1 at
	// high abstraction levels into P1").
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	itemCounts, pairCounts := scanOnce(syms, txs, opts.Precount, workers)
	res.Scans = 1

	var l1 []itemset.Counted
	for it, n := range itemCounts {
		if n >= minCount {
			l1 = append(l1, itemset.Counted{Set: []transact.Item{it}, Count: n})
		}
	}
	itemset.SortCounted(l1)
	res.ByLength = append(res.ByLength, l1)
	res.Levels = append(res.Levels, LevelStats{
		Length: 1, Generated: len(itemCounts), Counted: len(itemCounts), Frequent: len(l1),
	})

	prev := l1
	for k := 2; len(prev) > 0 && (opts.MaxLen == 0 || k <= opts.MaxLen); k++ {
		cands := itemset.Join(prev)
		stats := LevelStats{Length: k, Generated: len(cands)}

		kept := cands[:0]
		for _, c := range cands {
			if opts.PruneAncestor && syms.HasAncestorPair(c) {
				continue
			}
			if opts.PruneLink && !syms.AllLinkable(c) {
				continue
			}
			if opts.Precount && k == 2 && precountPrunes(syms, pairCounts, c[0], c[1], minCount) {
				continue
			}
			kept = append(kept, c)
		}
		stats.Pruned = stats.Generated - len(kept)
		stats.Counted = len(kept)

		if opts.CandidateLimit > 0 && len(kept) > opts.CandidateLimit {
			res.Levels = append(res.Levels, stats)
			res.Aborted = true
			return res, nil
		}
		if len(kept) == 0 {
			res.Levels = append(res.Levels, stats)
			break
		}

		trie := itemset.NewTrie()
		for _, c := range kept {
			trie.Insert(c)
		}
		trie.CountParallel(txs, workers)
		res.Scans++

		lk := trie.Frequent(minCount)
		stats.Frequent = len(lk)
		res.Levels = append(res.Levels, stats)
		res.ByLength = append(res.ByLength, lk)
		prev = lk
	}
	return res, nil
}

// precountPrunes reports whether the pre-counted image pair of {a,b} proves
// the candidate infrequent. The image of an item is itself when it is
// already at the top abstraction level, its derivable top-level
// generalization otherwise; when either image is unknown the candidate
// cannot be pruned.
func precountPrunes(syms *transact.Symbols, pairCounts map[int64]int64, a, b transact.Item, minCount int64) bool {
	ia, ib := syms.PrecountImage(a), syms.PrecountImage(b)
	if ia < 0 || ib < 0 || ia == ib {
		return false
	}
	return pairCounts[pairKey(ia, ib)] < minCount
}

// Shared runs Algorithm 1 with all optimizations enabled.
func Shared(syms *transact.Symbols, txs []transact.Transaction, minSupport float64) (*Result, error) {
	return Mine(syms, txs, SharedOptions(minSupport))
}

// Basic runs the unoptimized baseline.
func Basic(syms *transact.Symbols, txs []transact.Transaction, minSupport float64) (*Result, error) {
	return Mine(syms, txs, BasicOptions(minSupport))
}
