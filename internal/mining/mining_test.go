package mining_test

import (
	"testing"

	"flowcube/internal/hierarchy"
	"flowcube/internal/itemset"
	"flowcube/internal/mining"
	"flowcube/internal/paperex"
	"flowcube/internal/pathdb"
	"flowcube/internal/transact"
)

// leafPlan materializes the two leaf-cut path levels (base time and '*'),
// which is the Table-3 encoding.
func leafPlan(ex *paperex.Example) transact.Plan {
	leaf := hierarchy.LevelCut(ex.Location, ex.Location.Depth())
	return transact.Plan{
		PathLevels: []pathdb.PathLevel{
			{Cut: leaf, Time: pathdb.TimeBase},
			{Cut: leaf, Time: pathdb.TimeAny},
		},
	}
}

func fullPlan(ex *paperex.Example) transact.Plan {
	leaf := hierarchy.LevelCut(ex.Location, ex.Location.Depth())
	up := hierarchy.LevelCut(ex.Location, 1)
	return transact.Plan{
		PathLevels: []pathdb.PathLevel{
			{Cut: leaf, Time: pathdb.TimeBase},
			{Cut: leaf, Time: pathdb.TimeAny},
			{Cut: up, Time: pathdb.TimeBase},
			{Cut: up, Time: pathdb.TimeAny},
		},
	}
}

func seq(ex *paperex.Example, names ...string) []hierarchy.NodeID {
	out := make([]hierarchy.NodeID, len(names))
	for i, n := range names {
		out[i] = ex.Location.MustLookup(n)
	}
	return out
}

// supports holds the hand-computed ground truth for the Table-1 running
// example. (The paper's Table 4 lists a few counts — e.g. {121}:5 — that
// contradict its own Table 1, where tennis appears in 4 paths; we assert
// the counts recomputed by hand, see EXPERIMENTS.md.)
func groundTruth(t *testing.T, ex *paperex.Example, syms *transact.Symbols) map[string]struct {
	set   []transact.Item
	count int64
} {
	t.Helper()
	dim := func(d int, h *hierarchy.Hierarchy, name string) transact.Item {
		it, ok := syms.LookupDimValue(d, h.MustLookup(name))
		if !ok {
			t.Fatalf("dim value %q not interned", name)
		}
		return it
	}
	stage := func(level int, dur int64, any bool, names ...string) transact.Item {
		it, ok := syms.LookupStage(level, seq(ex, names...), dur, any)
		if !ok {
			t.Fatalf("stage %v not interned", names)
		}
		return it
	}
	sortSet := func(items ...transact.Item) []transact.Item {
		for i := 1; i < len(items); i++ {
			for j := i; j > 0 && items[j] < items[j-1]; j-- {
				items[j], items[j-1] = items[j-1], items[j]
			}
		}
		return items
	}
	return map[string]struct {
		set   []transact.Item
		count int64
	}{
		"{tennis}":        {sortSet(dim(0, ex.Product, "tennis")), 4},
		"{shoes}":         {sortSet(dim(0, ex.Product, "shoes")), 5},
		"{(f,10)}":        {sortSet(stage(0, 10, false, "f")), 5},
		"{(f,*)}":         {sortSet(stage(1, 0, true, "f")), 8},
		"{(fd,2)}":        {sortSet(stage(0, 2, false, "f", "d")), 4},
		"{shoes,nike}":    {sortSet(dim(0, ex.Product, "shoes"), dim(1, ex.Brand, "nike")), 3},
		"{nike,(f,10)}":   {sortSet(dim(1, ex.Brand, "nike"), stage(0, 10, false, "f")), 5},
		"{(f,5),(fd,2)}":  {sortSet(stage(0, 5, false, "f"), stage(0, 2, false, "f", "d")), 3},
		"{(f,*),(fd,*)}":  {sortSet(stage(1, 0, true, "f"), stage(1, 0, true, "f", "d")), 5},
		"{tennis,(fd,2)}": {sortSet(dim(0, ex.Product, "tennis"), stage(0, 2, false, "f", "d")), 4},
	}
}

func TestSharedRunningExampleCounts(t *testing.T) {
	ex := paperex.New()
	syms := transact.MustNewSymbols(ex.Schema, leafPlan(ex))
	txs := syms.Encode(ex.DB)
	res, err := mining.Mine(syms, txs, mining.Options{MinCount: 3, PruneAncestor: true, PruneLink: true, Precount: true})
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range groundTruth(t, ex, syms) {
		got, ok := res.Support(want.set)
		if !ok {
			t.Errorf("%s not found frequent (want count %d)", name, want.count)
			continue
		}
		if got != want.count {
			t.Errorf("%s support = %d, want %d", name, got, want.count)
		}
	}
}

func TestBasicMatchesSharedOnSharedOutput(t *testing.T) {
	ex := paperex.New()
	syms := transact.MustNewSymbols(ex.Schema, fullPlan(ex))
	txs := syms.Encode(ex.DB)

	shared, err := mining.Mine(syms, txs, mining.SharedOptions(0.3))
	if err != nil {
		t.Fatal(err)
	}
	basic, err := mining.Mine(syms, txs, mining.BasicOptions(0.3))
	if err != nil {
		t.Fatal(err)
	}

	// Every Shared itemset must be found by Basic with the same count:
	// Shared's pruning is lossless for the sets it keeps.
	for _, c := range shared.All() {
		got, ok := basic.Support(c.Set)
		if !ok {
			t.Fatalf("basic misses shared itemset %s", syms.SetString(c.Set))
		}
		if got != c.Count {
			t.Errorf("count mismatch for %s: basic %d, shared %d", syms.SetString(c.Set), got, c.Count)
		}
	}

	// Conversely, every Basic itemset Shared skipped must contain an
	// item+ancestor pair — Shared's only lossy-looking prune is provably
	// redundant sets.
	for _, c := range basic.All() {
		if _, ok := shared.Support(c.Set); ok {
			continue
		}
		if !syms.HasAncestorPair(c.Set) {
			t.Errorf("shared dropped %s (count %d) which is not an ancestor-pair set",
				syms.SetString(c.Set), c.Count)
		}
	}
}

func TestSharedPruningReducesCandidates(t *testing.T) {
	ex := paperex.New()
	syms := transact.MustNewSymbols(ex.Schema, fullPlan(ex))
	txs := syms.Encode(ex.DB)

	shared, err := mining.Mine(syms, txs, mining.SharedOptions(0.25))
	if err != nil {
		t.Fatal(err)
	}
	basic, err := mining.Mine(syms, txs, mining.BasicOptions(0.25))
	if err != nil {
		t.Fatal(err)
	}
	sharedTotal, basicTotal := 0, 0
	for _, l := range shared.Levels {
		sharedTotal += l.Counted
	}
	for _, l := range basic.Levels {
		basicTotal += l.Counted
	}
	if sharedTotal >= basicTotal {
		t.Errorf("shared counted %d candidates, basic %d; shared should count fewer", sharedTotal, basicTotal)
	}
	if shared.MaxLen() > basic.MaxLen() {
		t.Errorf("shared max pattern length %d exceeds basic %d", shared.MaxLen(), basic.MaxLen())
	}
}

func TestPrecountIsLossless(t *testing.T) {
	ex := paperex.New()
	syms := transact.MustNewSymbols(ex.Schema, fullPlan(ex))
	txs := syms.Encode(ex.DB)

	with, err := mining.Mine(syms, txs, mining.Options{MinCount: 2, PruneAncestor: true, PruneLink: true, Precount: true})
	if err != nil {
		t.Fatal(err)
	}
	without, err := mining.Mine(syms, txs, mining.Options{MinCount: 2, PruneAncestor: true, PruneLink: true})
	if err != nil {
		t.Fatal(err)
	}
	a, b := with.All(), without.All()
	if len(a) != len(b) {
		t.Fatalf("precount changed result size: %d vs %d", len(a), len(b))
	}
	bySet := make(map[string]int64, len(b))
	for _, c := range b {
		bySet[itemset.Key(c.Set)] = c.Count
	}
	for _, c := range a {
		if bySet[itemset.Key(c.Set)] != c.Count {
			t.Errorf("precount changed support of %s", syms.SetString(c.Set))
		}
	}
}

func TestLinkPruneIsLossless(t *testing.T) {
	ex := paperex.New()
	syms := transact.MustNewSymbols(ex.Schema, fullPlan(ex))
	txs := syms.Encode(ex.DB)

	with, err := mining.Mine(syms, txs, mining.Options{MinCount: 3, PruneLink: true})
	if err != nil {
		t.Fatal(err)
	}
	without, err := mining.Mine(syms, txs, mining.Options{MinCount: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(with.All()) != len(without.All()) {
		t.Fatalf("linkability pruning changed result size: %d vs %d — it removed a satisfiable candidate",
			len(with.All()), len(without.All()))
	}
}

func TestMinSupportValidation(t *testing.T) {
	ex := paperex.New()
	syms := transact.MustNewSymbols(ex.Schema, leafPlan(ex))
	txs := syms.Encode(ex.DB)
	for _, bad := range []float64{0, -0.5, 1.5} {
		if _, err := mining.Mine(syms, txs, mining.Options{MinSupport: bad}); err == nil {
			t.Errorf("MinSupport=%g accepted, want error", bad)
		}
	}
}

func TestCandidateLimitAborts(t *testing.T) {
	ex := paperex.New()
	syms := transact.MustNewSymbols(ex.Schema, fullPlan(ex))
	txs := syms.Encode(ex.DB)
	opts := mining.BasicOptions(0.2)
	opts.CandidateLimit = 1
	res, err := mining.Mine(syms, txs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted {
		t.Errorf("CandidateLimit=1 did not abort")
	}
}

func TestMaxLenStopsLoop(t *testing.T) {
	ex := paperex.New()
	syms := transact.MustNewSymbols(ex.Schema, fullPlan(ex))
	txs := syms.Encode(ex.DB)
	opts := mining.SharedOptions(0.25)
	opts.MaxLen = 2
	res, err := mining.Mine(syms, txs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxLen() > 2 {
		t.Errorf("MaxLen=2 produced patterns of length %d", res.MaxLen())
	}
}

func TestSupportMonotonicity(t *testing.T) {
	ex := paperex.New()
	syms := transact.MustNewSymbols(ex.Schema, fullPlan(ex))
	txs := syms.Encode(ex.DB)
	res, err := mining.Mine(syms, txs, mining.SharedOptions(0.25))
	if err != nil {
		t.Fatal(err)
	}
	// Apriori invariant: every subset of a frequent itemset obtained by
	// dropping one item is at least as frequent — unless Shared pruned the
	// subset as an ancestor-pair set (it cannot be, dropping keeps
	// validity) — so the subset must be present with count >= superset's.
	for k := 1; k < len(res.ByLength); k++ {
		for _, c := range res.ByLength[k] {
			sub := make([]transact.Item, 0, len(c.Set)-1)
			for drop := range c.Set {
				sub = sub[:0]
				sub = append(sub, c.Set[:drop]...)
				sub = append(sub, c.Set[drop+1:]...)
				n, ok := res.Support(sub)
				if !ok {
					t.Fatalf("subset %s of frequent %s missing", syms.SetString(sub), syms.SetString(c.Set))
				}
				if n < c.Count {
					t.Errorf("subset %s support %d < superset %s support %d",
						syms.SetString(sub), n, syms.SetString(c.Set), c.Count)
				}
			}
		}
	}
}

// TestParallelMatchesSequential: worker-sharded counting must produce
// byte-identical results to the sequential run.
func TestParallelMatchesSequential(t *testing.T) {
	ex := paperex.New()
	syms := transact.MustNewSymbols(ex.Schema, fullPlan(ex))
	txs := syms.Encode(ex.DB)

	seq, err := mining.Mine(syms, txs, mining.SharedOptions(0.25))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 7} {
		opts := mining.SharedOptions(0.25)
		opts.Workers = workers
		par, err := mining.Mine(syms, txs, opts)
		if err != nil {
			t.Fatal(err)
		}
		a, b := seq.All(), par.All()
		if len(a) != len(b) {
			t.Fatalf("workers=%d: %d itemsets vs %d sequential", workers, len(b), len(a))
		}
		for _, c := range a {
			n, ok := par.Support(c.Set)
			if !ok || n != c.Count {
				t.Fatalf("workers=%d: support of %s = %d/%v, sequential %d",
					workers, syms.SetString(c.Set), n, ok, c.Count)
			}
		}
	}
}
