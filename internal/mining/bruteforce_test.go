package mining_test

import (
	"sort"
	"testing"

	"flowcube/internal/datagen"
	"flowcube/internal/itemset"
	"flowcube/internal/mining"
	"flowcube/internal/transact"
)

// bruteFrequent enumerates frequent itemsets by exhaustive depth-first
// search with support counting by scanning — the obviously-correct oracle.
func bruteFrequent(txs []transact.Transaction, minCount int64, maxLen int) map[string]int64 {
	// Universe of frequent single items first (anti-monotonicity makes the
	// DFS tractable).
	counts := map[transact.Item]int64{}
	for _, tx := range txs {
		for _, it := range tx {
			counts[it]++
		}
	}
	var items []transact.Item
	for it, n := range counts {
		if n >= minCount {
			items = append(items, it)
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })

	support := func(set []transact.Item) int64 {
		var n int64
	outer:
		for _, tx := range txs {
			i := 0
			for _, want := range set {
				for i < len(tx) && tx[i] < want {
					i++
				}
				if i >= len(tx) || tx[i] != want {
					continue outer
				}
			}
			n++
		}
		return n
	}

	out := map[string]int64{}
	var rec func(start int, cur []transact.Item)
	rec = func(start int, cur []transact.Item) {
		for i := start; i < len(items); i++ {
			cand := append(cur, items[i])
			n := support(cand)
			if n < minCount {
				continue
			}
			out[itemset.Key(cand)] = n
			if maxLen == 0 || len(cand) < maxLen {
				rec(i+1, cand)
			}
		}
	}
	rec(0, nil)
	return out
}

// TestSharedMatchesBruteForce cross-checks the Shared miner against the
// exhaustive oracle on small random databases: Shared must find exactly
// the frequent itemsets that contain no item+ancestor pair (which it
// provably prunes as derivable), each with the exact support.
func TestSharedMatchesBruteForce(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		cfg := datagen.Default()
		cfg.Seed = seed
		cfg.NumPaths = 60
		cfg.NumDims = 2
		cfg.NumSequences = 6
		cfg.SeqLenMin, cfg.SeqLenMax = 2, 3
		cfg.DurationDomain = 2
		ds := datagen.MustGenerate(cfg)
		syms := transact.MustNewSymbols(ds.Schema, ds.DefaultPlan())
		txs := syms.Encode(ds.DB)

		const maxLen = 4
		minCount := int64(8)
		opts := mining.SharedOptions(0)
		opts.MinCount = minCount
		opts.MaxLen = maxLen
		res, err := mining.Mine(syms, txs, opts)
		if err != nil {
			t.Fatal(err)
		}
		oracle := bruteFrequent(txs, minCount, maxLen)

		got := map[string]int64{}
		for _, c := range res.All() {
			got[itemset.Key(c.Set)] = c.Count
		}
		for key, n := range got {
			want, ok := oracle[key]
			if !ok {
				t.Fatalf("seed %d: shared found %s (count %d) which is not frequent",
					seed, syms.SetString(itemset.FromKey(key)), n)
			}
			if want != n {
				t.Fatalf("seed %d: support of %s = %d, oracle %d",
					seed, syms.SetString(itemset.FromKey(key)), n, want)
			}
		}
		missedNonDerivable := 0
		for key, n := range oracle {
			if _, ok := got[key]; ok {
				continue
			}
			set := itemset.FromKey(key)
			if !syms.HasAncestorPair(set) {
				missedNonDerivable++
				t.Errorf("seed %d: shared missed %s (count %d)", seed, syms.SetString(set), n)
				if missedNonDerivable > 5 {
					t.Fatalf("too many misses")
				}
			}
		}
	}
}
