package mining_test

import (
	"sync"
	"testing"

	"flowcube/internal/mining"
	"flowcube/internal/paperex"
	"flowcube/internal/transact"
)

// referenceScan is the pre-optimization map-based first scan, kept here as
// the oracle the dense-counter FirstScan must agree with.
func referenceScan(syms *transact.Symbols, txs []transact.Transaction) (map[transact.Item]int64, map[[2]transact.Item]int64) {
	items := make(map[transact.Item]int64)
	pairs := make(map[[2]transact.Item]int64)
	for _, tx := range txs {
		for _, it := range tx {
			items[it]++
		}
		var top []transact.Item
		for _, it := range tx {
			if syms.IsTopLevel(it) {
				top = append(top, it)
			}
		}
		for i := 0; i < len(top); i++ {
			for j := i + 1; j < len(top); j++ {
				a, b := top[i], top[j]
				if a > b {
					a, b = b, a
				}
				pairs[[2]transact.Item{a, b}]++
			}
		}
	}
	return items, pairs
}

func checkFirstScan(t *testing.T, syms *transact.Symbols, txs []transact.Transaction, workers int) {
	t.Helper()
	wantItems, wantPairs := referenceScan(syms, txs)
	items, pairs := mining.FirstScan(syms, txs, true, workers)
	if len(items) != syms.Len() {
		t.Fatalf("workers=%d: item counter has %d entries, symbols %d", workers, len(items), syms.Len())
	}
	for it, n := range items {
		if n != wantItems[transact.Item(it)] {
			t.Errorf("workers=%d: item %s count = %d, reference %d",
				workers, syms.ItemString(transact.Item(it)), n, wantItems[transact.Item(it)])
		}
	}
	// Every top-level pair (co-occurring or not) must agree with the
	// reference; absent pairs read as zero.
	var top []transact.Item
	for it := 0; it < syms.Len(); it++ {
		if syms.IsTopLevel(transact.Item(it)) {
			top = append(top, transact.Item(it))
		}
	}
	for i := 0; i < len(top); i++ {
		for j := i + 1; j < len(top); j++ {
			want := wantPairs[[2]transact.Item{top[i], top[j]}]
			if got := pairs.Get(top[i], top[j]); got != want {
				t.Errorf("workers=%d: pair {%s,%s} = %d, reference %d",
					workers, syms.ItemString(top[i]), syms.ItemString(top[j]), got, want)
			}
			if got := pairs.Get(top[j], top[i]); got != want {
				t.Errorf("workers=%d: pair lookup not symmetric for {%s,%s}",
					workers, syms.ItemString(top[i]), syms.ItemString(top[j]))
			}
		}
	}
}

// TestFirstScanMatchesReference: the dense slice counters (and the sharded
// merge) must reproduce the map-based scan exactly, on both the dense and
// the sparse pair-table paths.
func TestFirstScanMatchesReference(t *testing.T) {
	ex := paperex.New()
	syms := transact.MustNewSymbols(ex.Schema, fullPlan(ex))
	txs := syms.Encode(ex.DB)
	// Replicate the tiny example database so every worker count below gets
	// a real shard.
	for i := 0; i < 5; i++ {
		txs = append(txs, txs[:len(ex.DB.Records)]...)
	}

	for _, workers := range []int{1, 2, 4, 8} {
		checkFirstScan(t, syms, txs, workers)
	}

	// Force the sparse fallback and re-check every worker count.
	restore := mining.SetMaxDensePairsForTest(0)
	defer restore()
	for _, workers := range []int{1, 2, 4, 8} {
		checkFirstScan(t, syms, txs, workers)
	}
}

// TestFirstScanNoPrecount: pair counting off returns a nil table whose Get
// is safely zero.
func TestFirstScanNoPrecount(t *testing.T) {
	ex := paperex.New()
	syms := transact.MustNewSymbols(ex.Schema, leafPlan(ex))
	txs := syms.Encode(ex.DB)
	items, pairs := mining.FirstScan(syms, txs, false, 4)
	if pairs != nil {
		t.Fatalf("precount off returned a pair table")
	}
	if pairs.Get(0, 1) != 0 {
		t.Fatalf("nil pair table Get != 0")
	}
	wantItems, _ := referenceScan(syms, txs)
	for it, n := range items {
		if n != wantItems[transact.Item(it)] {
			t.Errorf("item %d count = %d, reference %d", it, n, wantItems[transact.Item(it)])
		}
	}
}

// TestSupportConcurrent hammers the lazily indexed Support from many
// goroutines; the race detector run in CI is what gives this test teeth.
func TestSupportConcurrent(t *testing.T) {
	ex := paperex.New()
	syms := transact.MustNewSymbols(ex.Schema, fullPlan(ex))
	txs := syms.Encode(ex.DB)
	res, err := mining.Mine(syms, txs, mining.SharedOptions(0.25))
	if err != nil {
		t.Fatal(err)
	}
	all := res.All()
	if len(all) == 0 {
		t.Fatal("no frequent itemsets to query")
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := range all {
				c := all[(i+g)%len(all)]
				n, ok := res.Support(c.Set)
				if !ok || n != c.Count {
					t.Errorf("concurrent Support(%v) = %d/%v, want %d", c.Set, n, ok, c.Count)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
