package mining

// SetMaxDensePairsForTest overrides the dense pair-matrix cap so tests can
// force the sparse fallback on small inputs. The returned func restores the
// production value.
func SetMaxDensePairsForTest(n int) (restore func()) {
	old := maxDensePairs
	maxDensePairs = n
	return func() { maxDensePairs = old }
}
