// Package ingest is the serving layer's write path: a durable write-ahead
// log that journals append batches before they fold into the cube, and a
// group-commit batcher that coalesces concurrent appends into one delta
// fold (see committer.go and DESIGN.md §11).
package ingest

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"flowcube/internal/pathdb"
)

// WAL framing, mirroring the v2 snapshot conventions (little-endian
// lengths, CRC-32C over the payload):
//
//	magic  "FCWALv1\n" (8 bytes)
//	entry  [u32 payload length][u32 CRC-32C(payload)][payload]
//
// One entry journals one accepted append batch; the payload is the batch in
// the path-database text format (pathdb.DB.WriteTo), so a journal is
// human-inspectable and replays through the ordinary parser. Entries are
// buffered per Append and made durable by Sync — the group committer calls
// Sync once per commit group, amortizing the fsync over every request in
// the group.
//
// Recovery semantics: Open scans the existing file frame by frame and
// truncates a torn or corrupt tail (a crash mid-write leaves a partial
// frame; everything before it is intact and everything after it was never
// acknowledged). A file that does not start with the WAL magic is rejected
// with a *CorruptError rather than truncated — it is probably not a WAL.

const walMagic = "FCWALv1\n"

// walHeaderLen is the per-entry frame header: u32 length + u32 CRC.
const walHeaderLen = 8

// maxWALEntry bounds a single entry's payload during scan/replay, so a
// corrupt length field cannot ask for a multi-gigabyte allocation. Append
// batches are bounded by the server's MaxAppendBytes (64 MiB default);
// 256 MiB leaves generous headroom.
const maxWALEntry = 256 << 20

var walCRCTable = crc32.MakeTable(crc32.Castagnoli)

// CorruptError reports a WAL whose content could not be accepted: a bad
// magic, or — for diagnostics after Open truncated — the reason the tail
// was dropped.
type CorruptError struct {
	// Offset is the byte offset of the first rejected byte.
	Offset int64
	// Entry is the index of the first rejected entry.
	Entry int
	// Reason describes the rejection.
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("ingest: corrupt WAL at offset %d (entry %d): %s", e.Offset, e.Entry, e.Reason)
}

// walFile is the slice of *os.File the WAL uses. Tests substitute a
// fault-injecting implementation to exercise write-error recovery.
type walFile interface {
	io.Reader
	io.ReaderAt
	io.Writer
	io.Seeker
	io.Closer
	Truncate(size int64) error
	Sync() error
	Stat() (os.FileInfo, error)
	WriteString(s string) (int, error)
}

// WAL is an append-only journal of accepted append batches. Methods are not
// safe for concurrent use; the group committer is the single writer.
type WAL struct {
	f       walFile
	path    string
	entries int
	size    int64 // valid bytes (magic + intact frames)
	torn    *CorruptError
	failed  error // set when a failed write could not be rolled back
	scratch bytes.Buffer
}

// Open opens (or creates) the WAL at path, scans existing entries, and
// truncates any torn tail so subsequent appends extend a valid log. A
// non-empty file that does not start with the WAL magic is rejected with a
// *CorruptError and left untouched.
func Open(path string) (*WAL, error) { return OpenContext(context.Background(), path) }

// OpenContext is Open with a context; ctx cancels the startup scan between
// frames (useful when a large journal delays server boot).
func OpenContext(ctx context.Context, path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	w := &WAL{f: f, path: path}
	if err := w.scan(ctx); err != nil {
		_ = f.Close() // the scan error is the actionable one
		return nil, err
	}
	if _, err := f.Seek(w.size, io.SeekStart); err != nil {
		_ = f.Close()
		return nil, err
	}
	return w, nil
}

// scan validates the file: checks the magic (writing it into an empty
// file), walks the frames, records the valid prefix, and truncates a torn
// tail (recorded in w.torn for logging).
func (w *WAL) scan(ctx context.Context) error {
	st, err := w.f.Stat()
	if err != nil {
		return err
	}
	if st.Size() == 0 {
		if _, err := w.f.WriteString(walMagic); err != nil {
			return err
		}
		if err := w.f.Sync(); err != nil {
			return err
		}
		w.size = int64(len(walMagic))
		return nil
	}
	var magic [len(walMagic)]byte
	if _, err := io.ReadFull(w.f, magic[:]); err != nil {
		return &CorruptError{Offset: 0, Reason: fmt.Sprintf("short magic: %v", err)}
	}
	if string(magic[:]) != walMagic {
		return &CorruptError{Offset: 0, Reason: fmt.Sprintf("bad magic %q, want %q", magic, walMagic)}
	}
	offset := int64(len(walMagic))
	var hdr [walHeaderLen]byte
	for offset < st.Size() {
		if err := ctx.Err(); err != nil {
			return err
		}
		if _, err := io.ReadFull(w.f, hdr[:]); err != nil {
			w.torn = &CorruptError{Offset: offset, Entry: w.entries, Reason: fmt.Sprintf("short frame header: %v", err)}
			break
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if length > maxWALEntry {
			w.torn = &CorruptError{Offset: offset, Entry: w.entries, Reason: fmt.Sprintf("entry length %d exceeds the %d-byte bound", length, maxWALEntry)}
			break
		}
		if offset+walHeaderLen+int64(length) > st.Size() {
			w.torn = &CorruptError{Offset: offset, Entry: w.entries, Reason: fmt.Sprintf("truncated entry: %d payload bytes claimed, %d in file", length, st.Size()-offset-walHeaderLen)}
			break
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(w.f, payload); err != nil {
			w.torn = &CorruptError{Offset: offset, Entry: w.entries, Reason: fmt.Sprintf("short payload: %v", err)}
			break
		}
		if got := crc32.Checksum(payload, walCRCTable); got != want {
			w.torn = &CorruptError{Offset: offset, Entry: w.entries, Reason: fmt.Sprintf("CRC mismatch: computed %08x, stored %08x", got, want)}
			break
		}
		offset += walHeaderLen + int64(length)
		w.entries++
	}
	w.size = offset
	if w.torn != nil && offset < st.Size() {
		if err := w.f.Truncate(offset); err != nil {
			return fmt.Errorf("ingest: truncate torn WAL tail: %w", err)
		}
		if err := w.f.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// Torn reports the corruption that made Open drop a tail, nil when the log
// was clean. The tail is already truncated; this is diagnostic only.
func (w *WAL) Torn() *CorruptError { return w.torn }

// Entries reports the number of intact journaled batches.
func (w *WAL) Entries() int { return w.entries }

// Size reports the journal's size in bytes (magic plus intact frames).
func (w *WAL) Size() int64 { return w.size }

// Path reports the journal's file path.
func (w *WAL) Path() string { return w.path }

// Append journals one batch. The write is buffered by the OS; call Sync to
// make it durable before acknowledging the batch.
//
// A failed write (ENOSPC, say) is rolled back: the file is truncated to the
// last intact frame and the offset restored, so the log stays appendable
// and a restart scan never stops early at a garbage partial frame — which
// would silently drop every later batch that was acknowledged as durable.
// If the rollback itself fails the WAL latches a failure and rejects
// further Appends and Syncs until reopened.
func (w *WAL) Append(schema *pathdb.Schema, batch []pathdb.Record) error {
	if w.failed != nil {
		return fmt.Errorf("ingest: WAL has a partial frame it could not remove; reopen to recover: %w", w.failed)
	}
	// Build the whole frame (header + payload) in the scratch buffer and
	// write it with one call: a short write can still tear it, but there is
	// no window where the header is durable and the payload write was never
	// attempted.
	w.scratch.Reset()
	var hdr [walHeaderLen]byte // placeholder; patched once the payload length and CRC are known
	w.scratch.Write(hdr[:])
	db := &pathdb.DB{Schema: schema, Records: batch}
	if _, err := db.WriteTo(&w.scratch); err != nil {
		return err
	}
	frame := w.scratch.Bytes()
	payload := frame[walHeaderLen:]
	if len(payload) > maxWALEntry {
		return fmt.Errorf("ingest: batch renders to %d bytes, exceeding the %d-byte WAL entry bound", len(payload), maxWALEntry)
	}
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, walCRCTable))
	if _, err := w.f.Write(frame); err != nil {
		return w.rollbackPartialFrame(err)
	}
	w.size += int64(len(frame))
	w.entries++
	return nil
}

// rollbackPartialFrame restores the invariant that the file ends at w.size
// after a failed frame write, returning writeErr on success. When the file
// cannot be restored the failure is latched: the OS offset may sit past
// garbage bytes, so further appends would bury a corrupt frame mid-log.
func (w *WAL) rollbackPartialFrame(writeErr error) error {
	if err := w.f.Truncate(w.size); err != nil {
		w.failed = fmt.Errorf("append write: %v; truncate partial frame: %w", writeErr, err)
		return w.failed
	}
	if _, err := w.f.Seek(w.size, io.SeekStart); err != nil {
		w.failed = fmt.Errorf("append write: %v; re-seek after truncate: %w", writeErr, err)
		return w.failed
	}
	return writeErr
}

// Sync flushes journaled entries to stable storage.
func (w *WAL) Sync() error {
	if w.failed != nil {
		return fmt.Errorf("ingest: WAL has a partial frame it could not remove; reopen to recover: %w", w.failed)
	}
	return w.f.Sync()
}

// Replay decodes every intact entry against schema and hands each batch to
// fn in journal order. Decoding reads the file independently of the append
// offset, so Replay is safe before or between appends (but not concurrently
// with them).
func (w *WAL) Replay(schema *pathdb.Schema, fn func(batch []pathdb.Record) error) error {
	return w.ReplayContext(context.Background(), schema, fn)
}

// ReplayContext is Replay with a context; ctx cancels between entries.
func (w *WAL) ReplayContext(ctx context.Context, schema *pathdb.Schema, fn func(batch []pathdb.Record) error) error {
	r := io.NewSectionReader(w.f, int64(len(walMagic)), w.size-int64(len(walMagic)))
	var hdr [walHeaderLen]byte
	for i := 0; i < w.entries; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return fmt.Errorf("ingest: replay entry %d header: %w", i, err)
		}
		payload := make([]byte, binary.LittleEndian.Uint32(hdr[0:4]))
		if _, err := io.ReadFull(r, payload); err != nil {
			return fmt.Errorf("ingest: replay entry %d payload: %w", i, err)
		}
		db, err := pathdb.Read(bytes.NewReader(payload), schema)
		if err != nil {
			// The CRC held but the payload does not parse against this
			// schema: the journal belongs to a different source. Surface it
			// as corruption rather than folding garbage.
			return &CorruptError{Offset: -1, Entry: i, Reason: fmt.Sprintf("entry does not parse against the serving schema: %v", err)}
		}
		if err := fn(db.Records); err != nil {
			return err
		}
	}
	return nil
}

// Reset discards every journaled entry, truncating the log back to its
// magic. The serving layer calls it on reload: a reload re-reads the
// loader's source of truth and deliberately discards appended records, so
// replaying them afterwards would double-apply.
func (w *WAL) Reset() error {
	if err := w.f.Truncate(int64(len(walMagic))); err != nil {
		return err
	}
	if _, err := w.f.Seek(int64(len(walMagic)), io.SeekStart); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.entries = 0
	w.size = int64(len(walMagic))
	w.torn = nil
	w.failed = nil // the truncate re-established the end-at-size invariant
	return nil
}

// Close closes the journal file.
func (w *WAL) Close() error { return w.f.Close() }

// IsCorrupt reports whether err is a *CorruptError.
func IsCorrupt(err error) bool {
	var ce *CorruptError
	return errors.As(err, &ce)
}
