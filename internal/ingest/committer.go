package ingest

import (
	"errors"
	"sort"
	"sync"

	"flowcube/internal/pathdb"
)

// ErrClosed is returned by Submit and Exec after Close.
var ErrClosed = errors.New("ingest: committer closed")

// ErrQueueFull is returned by Submit when Config.MaxPending appends are
// already waiting: the batch was NOT accepted and the caller should shed
// load (the HTTP layer maps it to 503 + Retry-After). A batch accepted
// before the queue filled is unaffected — admission is checked before
// enqueueing, never after, so overflow can only reject, not drop.
var ErrQueueFull = errors.New("ingest: committer queue full")

// Pending is one append request waiting for (or resolved by) a group
// commit. The handler goroutine blocks in Wait; the commit loop resolves it
// from the apply callback.
type Pending struct {
	// Records is the parsed batch to fold.
	Records []pathdb.Record
	// Tag is an opaque admission check: the snapshot schema generation the
	// batch was parsed against. The apply callback rejects stale tags.
	Tag uint64

	resp any
	err  error
	done chan struct{}
}

// NewPending builds an unqueued Pending with the same shape Submit
// produces. Apply harnesses and tests use it to invoke an apply callback
// directly and Wait on the outcome.
func NewPending(records []pathdb.Record, tag uint64) *Pending {
	return &Pending{Records: records, Tag: tag, done: make(chan struct{})}
}

// Resolve delivers the commit outcome to the waiting handler. Exactly one
// Resolve per Pending; the committer resolves stragglers itself if the
// apply callback forgets one.
func (p *Pending) Resolve(resp any, err error) {
	p.resp = resp
	p.err = err
	close(p.done)
}

func (p *Pending) resolved() bool {
	select {
	case <-p.done:
		return true
	default:
		return false
	}
}

// Wait blocks until the group containing this request commits (or fails)
// and returns the outcome set by Resolve.
func (p *Pending) Wait() (any, error) {
	<-p.done
	return p.resp, p.err
}

// Config parameterizes a Committer.
type Config struct {
	// GroupLimit caps how many pending appends fold in one commit group.
	// 0 or negative means the default (64). 1 disables group commit —
	// every batch folds alone, the serialized baseline the ingest bench
	// compares against.
	GroupLimit int
	// MaxPending bounds the number of append requests waiting in the
	// queue: Submit returns ErrQueueFull instead of enqueueing the
	// (MaxPending+1)th. 0 or negative means unbounded, the historical
	// behavior — under a sustained overload the queue (and the handler
	// goroutines parked in Wait) would otherwise grow without limit.
	MaxPending int
	// Apply folds one commit group. It must Resolve every Pending it is
	// given (unresolved ones are failed by the committer afterwards).
	// Called from the commit loop, so invocations are serialized.
	Apply func(group []*Pending)
}

const defaultGroupLimit = 64

// Committer is the single-writer commit loop behind /admin/append: handlers
// Submit parsed batches and block; the loop drains the queue into groups of
// up to GroupLimit and hands each group to Apply, which journals the
// batches in the WAL, folds them in one ApplyDelta, and swaps the snapshot.
// Coalescing means N concurrent small appends pay one clone+fold+fsync
// instead of N, while readers stay on the previous snapshot (MVCC via the
// holder pointer swap) and are never blocked by a commit.
//
// Exec runs an arbitrary function on the same loop, serialized against
// commits; the server uses it for reloads so snapshot swaps have a single
// writer. An Exec never joins a commit group: groups stop at the first
// queued Exec so queue order is preserved.
type Committer struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []item
	closed bool
	loopWG sync.WaitGroup

	cfg Config

	// pending is the number of append requests in the queue, guarded by
	// mu; Submit rejects when it reaches cfg.MaxPending.
	pending int

	// stats, guarded by mu
	groups     uint64
	requests   uint64
	execs      uint64
	rejected   uint64
	maxGroup   int
	groupSizes []int // capped histogram sample for p50
}

type item struct {
	p  *Pending
	fn func()
}

// NewCommitter starts the commit loop.
func NewCommitter(cfg Config) *Committer {
	if cfg.GroupLimit <= 0 {
		cfg.GroupLimit = defaultGroupLimit
	}
	c := &Committer{cfg: cfg}
	c.cond = sync.NewCond(&c.mu)
	c.loopWG.Add(1)
	go c.loop(&c.loopWG)
	return c
}

// Submit enqueues a parsed batch for the next commit group and returns the
// Pending the caller should Wait on. After Close it returns ErrClosed;
// with Config.MaxPending batches already queued it returns ErrQueueFull
// without accepting the batch. Admission is decided before enqueueing:
// once Submit returns a Pending, the batch is queued and will be resolved,
// whatever later overflow rejects.
func (c *Committer) Submit(records []pathdb.Record, tag uint64) (*Pending, error) {
	p := NewPending(records, tag)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if c.cfg.MaxPending > 0 && c.pending >= c.cfg.MaxPending {
		c.rejected++
		c.mu.Unlock()
		return nil, ErrQueueFull
	}
	c.pending++
	c.queue = append(c.queue, item{p: p})
	c.cond.Signal()
	c.mu.Unlock()
	return p, nil
}

// Exec runs fn on the commit loop, serialized against commit groups and
// other Execs, and blocks until it has run. After Close it returns
// ErrClosed without running fn.
func (c *Committer) Exec(fn func()) error {
	done := make(chan struct{})
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.queue = append(c.queue, item{fn: func() {
		defer close(done)
		fn()
	}})
	c.cond.Signal()
	c.mu.Unlock()
	<-done
	return nil
}

// Close stops accepting work, drains everything already queued, and waits
// for the loop to exit. Safe to call more than once.
func (c *Committer) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.loopWG.Wait()
		return
	}
	c.closed = true
	c.cond.Signal()
	c.mu.Unlock()
	c.loopWG.Wait()
}

// loop is the single writer. Its lifetime is bounded by wg (joined in
// Close); it exits once closed and drained.
func (c *Committer) loop(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		c.mu.Lock()
		for len(c.queue) == 0 && !c.closed {
			c.cond.Wait()
		}
		if len(c.queue) == 0 {
			// Closed and drained.
			c.mu.Unlock()
			return
		}
		if fn := c.queue[0].fn; fn != nil {
			c.queue = c.queue[1:]
			c.execs++
			c.mu.Unlock()
			fn()
			continue
		}
		// Group consecutive pendings up to the limit, stopping at the
		// first Exec so queue order is preserved.
		n := 0
		for n < len(c.queue) && n < c.cfg.GroupLimit && c.queue[n].fn == nil {
			n++
		}
		group := make([]*Pending, n)
		for i := 0; i < n; i++ {
			group[i] = c.queue[i].p
		}
		c.queue = c.queue[n:]
		c.pending -= n
		c.groups++
		c.requests += uint64(n)
		if n > c.maxGroup {
			c.maxGroup = n
		}
		if len(c.groupSizes) < 1024 {
			c.groupSizes = append(c.groupSizes, n)
		}
		c.mu.Unlock()

		c.cfg.Apply(group)
		for _, p := range group {
			if !p.resolved() {
				p.Resolve(nil, errors.New("ingest: commit group did not resolve this request"))
			}
		}
	}
}

// Stats is a point-in-time view of the committer's counters.
type Stats struct {
	// Groups is the number of commit groups applied.
	Groups uint64 `json:"groups"`
	// Requests is the number of append requests folded across all groups.
	Requests uint64 `json:"requests"`
	// Execs is the number of Exec functions run (reloads).
	Execs uint64 `json:"execs"`
	// Rejected is the number of Submits refused with ErrQueueFull.
	Rejected uint64 `json:"rejected"`
	// QueueDepth is the number of items waiting right now.
	QueueDepth int `json:"queue_depth"`
	// GroupP50 and GroupMax summarize commit-group sizes.
	GroupP50 int `json:"group_p50"`
	GroupMax int `json:"group_max"`
}

// Stats snapshots the committer's counters.
func (c *Committer) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		Groups:     c.groups,
		Requests:   c.requests,
		Execs:      c.execs,
		Rejected:   c.rejected,
		QueueDepth: len(c.queue),
		GroupMax:   c.maxGroup,
	}
	if len(c.groupSizes) > 0 {
		sizes := append([]int(nil), c.groupSizes...)
		sort.Ints(sizes)
		st.GroupP50 = sizes[len(sizes)/2]
	}
	return st
}
