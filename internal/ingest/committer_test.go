package ingest

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"flowcube/internal/paperex"
	"flowcube/internal/pathdb"
)

func TestCommitterResolvesEveryRequest(t *testing.T) {
	ex := paperex.New()
	var applied atomic.Int64
	c := NewCommitter(Config{
		GroupLimit: 8,
		Apply: func(group []*Pending) {
			for _, p := range group {
				applied.Add(int64(len(p.Records)))
				p.Resolve(len(p.Records), nil)
			}
		},
	})
	defer c.Close()

	const workers = 32
	var wg sync.WaitGroup
	var total atomic.Int64
	for i := 0; i < workers; i++ {
		rec := ex.DB.Records[i%ex.DB.Len()]
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, err := c.Submit([]pathdb.Record{rec}, 1)
			if err != nil {
				t.Errorf("Submit: %v", err)
				return
			}
			resp, err := p.Wait()
			if err != nil {
				t.Errorf("Wait: %v", err)
				return
			}
			total.Add(int64(resp.(int)))
		}()
	}
	wg.Wait()
	if total.Load() != workers || applied.Load() != workers {
		t.Fatalf("resolved %d / applied %d records, want %d", total.Load(), applied.Load(), workers)
	}
	st := c.Stats()
	if st.Requests != workers {
		t.Fatalf("Stats.Requests = %d, want %d", st.Requests, workers)
	}
	if st.GroupMax > 8 {
		t.Fatalf("GroupMax = %d exceeds the limit 8", st.GroupMax)
	}
}

// TestCommitterMaxPendingNeverDropsAcked fills the queue to MaxPending
// behind a stalled commit, overflows it, and checks the two halves of the
// admission contract: overflow Submits fail with ErrQueueFull without being
// queued, and every Submit that returned a Pending (the ack) resolves with
// its batch applied once the stall clears — rejection can never reach back
// and drop an accepted batch.
func TestCommitterMaxPendingNeverDropsAcked(t *testing.T) {
	ex := paperex.New()
	rec := ex.DB.Records[0]
	const maxPending = 4
	started := make(chan struct{})
	gate := make(chan struct{})
	var startedOnce sync.Once
	var applied atomic.Int64
	c := NewCommitter(Config{
		GroupLimit: 1,
		MaxPending: maxPending,
		Apply: func(group []*Pending) {
			startedOnce.Do(func() { close(started) })
			<-gate
			for _, p := range group {
				applied.Add(1)
				p.Resolve(len(p.Records), nil)
			}
		},
	})
	defer c.Close()

	// First batch: dequeued by the loop, which then stalls in Apply.
	first, err := c.Submit([]pathdb.Record{rec}, 1)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	acked := []*Pending{first}
	for i := 0; i < maxPending; i++ {
		p, err := c.Submit([]pathdb.Record{rec}, 1)
		if err != nil {
			t.Fatalf("Submit %d within MaxPending: %v", i, err)
		}
		acked = append(acked, p)
	}
	const overflow = 3
	for i := 0; i < overflow; i++ {
		if _, err := c.Submit([]pathdb.Record{rec}, 1); !errors.Is(err, ErrQueueFull) {
			t.Fatalf("Submit over MaxPending: err = %v, want ErrQueueFull", err)
		}
	}

	close(gate)
	for i, p := range acked {
		resp, err := p.Wait()
		if err != nil {
			t.Fatalf("acked batch %d failed: %v", i, err)
		}
		if resp.(int) != 1 {
			t.Fatalf("acked batch %d resolved %v, want 1", i, resp)
		}
	}
	if got := applied.Load(); got != int64(len(acked)) {
		t.Fatalf("applied %d batches, want %d", got, len(acked))
	}
	st := c.Stats()
	if st.Rejected != overflow {
		t.Fatalf("Stats.Rejected = %d, want %d", st.Rejected, overflow)
	}
	if st.Requests != uint64(len(acked)) {
		t.Fatalf("Stats.Requests = %d, want %d", st.Requests, len(acked))
	}
}

// TestCommitterGroupsUnderContention blocks the loop on a first commit so a
// backlog builds, then checks the backlog folds as groups, not singletons.
func TestCommitterGroupsUnderContention(t *testing.T) {
	ex := paperex.New()
	gate := make(chan struct{})
	first := true
	c := NewCommitter(Config{
		GroupLimit: 16,
		Apply: func(group []*Pending) {
			if first {
				first = false
				<-gate
			}
			for _, p := range group {
				p.Resolve(nil, nil)
			}
		},
	})
	defer c.Close()

	p0, err := c.Submit(ex.DB.Records[:1], 1)
	if err != nil {
		t.Fatal(err)
	}
	const backlog = 12
	pending := make([]*Pending, backlog)
	for i := range pending {
		if pending[i], err = c.Submit(ex.DB.Records[:1], 1); err != nil {
			t.Fatal(err)
		}
	}
	close(gate)
	p0.Wait()
	for _, p := range pending {
		p.Wait()
	}
	st := c.Stats()
	// The first group is the lone unblocked request; the backlog should
	// coalesce into far fewer groups than requests.
	if st.Groups >= 1+backlog {
		t.Fatalf("backlog of %d folded in %d groups — no coalescing", backlog, st.Groups-1)
	}
	if st.GroupMax < 2 {
		t.Fatalf("GroupMax = %d, want a real group", st.GroupMax)
	}
}

func TestCommitterGroupLimitOne(t *testing.T) {
	ex := paperex.New()
	c := NewCommitter(Config{
		GroupLimit: 1,
		Apply: func(group []*Pending) {
			if len(group) != 1 {
				t.Errorf("group of %d with GroupLimit 1", len(group))
			}
			for _, p := range group {
				p.Resolve(nil, nil)
			}
		},
	})
	defer c.Close()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, err := c.Submit(ex.DB.Records[:1], 1)
			if err != nil {
				t.Error(err)
				return
			}
			p.Wait()
		}()
	}
	wg.Wait()
	if st := c.Stats(); st.GroupMax != 1 {
		t.Fatalf("GroupMax = %d, want 1", st.GroupMax)
	}
}

// TestCommitterExecBarrier checks Exec is serialized against commits and
// never joins a group: requests queued behind an Exec commit after it runs.
func TestCommitterExecBarrier(t *testing.T) {
	ex := paperex.New()
	gate := make(chan struct{})
	started := make(chan struct{})
	first := true
	var order []string
	var mu sync.Mutex
	c := NewCommitter(Config{
		GroupLimit: 16,
		Apply: func(group []*Pending) {
			if first {
				first = false
				close(started)
				<-gate
			}
			mu.Lock()
			order = append(order, "commit")
			mu.Unlock()
			for _, p := range group {
				p.Resolve(nil, nil)
			}
		},
	})
	defer c.Close()

	// Block the loop on the first commit, then queue: append, exec, append.
	p0, err := c.Submit(ex.DB.Records[:1], 1)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	p1, err := c.Submit(ex.DB.Records[:1], 1)
	if err != nil {
		t.Fatal(err)
	}
	execDone := make(chan struct{})
	go func() {
		defer close(execDone)
		c.Exec(func() {
			mu.Lock()
			order = append(order, "exec")
			mu.Unlock()
		})
	}()
	// The exec is queued asynchronously; give it a deterministic position
	// by waiting until the queue holds it before submitting the tail.
	for {
		c.mu.Lock()
		queued := false
		for _, it := range c.queue {
			if it.fn != nil {
				queued = true
			}
		}
		c.mu.Unlock()
		if queued {
			break
		}
	}
	p2, err := c.Submit(ex.DB.Records[:1], 1)
	if err != nil {
		t.Fatal(err)
	}
	close(gate)
	p0.Wait()
	p1.Wait()
	<-execDone
	p2.Wait()

	mu.Lock()
	defer mu.Unlock()
	// p0 commits alone (it was in flight); p1 must commit before the exec,
	// p2 after — three entries, exec strictly between the last two commits.
	want := []string{"commit", "commit", "exec", "commit"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestCommitterCloseDrains(t *testing.T) {
	ex := paperex.New()
	gate := make(chan struct{})
	first := true
	var applied atomic.Int64
	c := NewCommitter(Config{
		Apply: func(group []*Pending) {
			if first {
				first = false
				<-gate
			}
			applied.Add(int64(len(group)))
			for _, p := range group {
				p.Resolve(nil, nil)
			}
		},
	})
	var pending []*Pending
	for i := 0; i < 8; i++ {
		p, err := c.Submit(ex.DB.Records[:1], 1)
		if err != nil {
			t.Fatal(err)
		}
		pending = append(pending, p)
	}
	closed := make(chan struct{})
	go func() {
		defer close(closed)
		c.Close()
	}()
	close(gate)
	<-closed
	for _, p := range pending {
		if _, err := p.Wait(); err != nil {
			t.Fatalf("queued request failed during drain: %v", err)
		}
	}
	if applied.Load() != 8 {
		t.Fatalf("drained %d requests, want 8", applied.Load())
	}
	if _, err := c.Submit(ex.DB.Records[:1], 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	if err := c.Exec(func() {}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Exec after Close = %v, want ErrClosed", err)
	}
	// Idempotent.
	c.Close()
}

func TestCommitterAutoResolvesForgotten(t *testing.T) {
	ex := paperex.New()
	c := NewCommitter(Config{
		Apply: func(group []*Pending) {}, // forgets to resolve
	})
	defer c.Close()
	p, err := c.Submit(ex.DB.Records[:1], 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Wait(); err == nil {
		t.Fatal("forgotten request resolved without error")
	}
}
