package ingest

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"flowcube/internal/paperex"
	"flowcube/internal/pathdb"
)

func walPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "ingest.wal")
}

func appendBatches(t *testing.T, w *WAL, ex *paperex.Example, batches [][]pathdb.Record) {
	t.Helper()
	for _, b := range batches {
		if err := w.Append(ex.DB.Schema, b); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
}

func replayAll(t *testing.T, w *WAL, schema *pathdb.Schema) [][]pathdb.Record {
	t.Helper()
	var got [][]pathdb.Record
	if err := w.Replay(schema, func(batch []pathdb.Record) error {
		got = append(got, batch)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got
}

func TestWALRoundTrip(t *testing.T) {
	ex := paperex.New()
	path := walPath(t)
	w, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	recs := ex.DB.Records
	batches := [][]pathdb.Record{recs[:2], recs[2:3], recs[3:6]}
	appendBatches(t, w, ex, batches)
	if w.Entries() != 3 {
		t.Fatalf("Entries = %d, want 3", w.Entries())
	}

	// Replay from the live handle, then from a fresh Open.
	for round := 0; round < 2; round++ {
		got := replayAll(t, w, ex.Schema)
		if len(got) != len(batches) {
			t.Fatalf("round %d: replayed %d batches, want %d", round, len(got), len(batches))
		}
		for i, b := range got {
			if len(b) != len(batches[i]) {
				t.Fatalf("round %d: batch %d has %d records, want %d", round, i, len(b), len(batches[i]))
			}
		}
		if round == 0 {
			if err := w.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if w, err = Open(path); err != nil {
				t.Fatalf("reopen: %v", err)
			}
			if w.Torn() != nil {
				t.Fatalf("clean log reported torn: %v", w.Torn())
			}
			if w.Entries() != 3 {
				t.Fatalf("reopened Entries = %d, want 3", w.Entries())
			}
		}
	}
	defer w.Close()

	// Appending after a reopen extends the log.
	if err := w.Append(ex.DB.Schema, recs[6:7]); err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
	if got := replayAll(t, w, ex.Schema); len(got) != 4 {
		t.Fatalf("replayed %d batches after reopen append, want 4", len(got))
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	ex := paperex.New()
	path := walPath(t)
	w, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	appendBatches(t, w, ex, [][]pathdb.Record{ex.DB.Records[:2], ex.DB.Records[2:4]})
	goodSize := w.Size()
	if err := w.Append(ex.DB.Schema, ex.DB.Records[4:6]); err != nil {
		t.Fatalf("Append: %v", err)
	}
	w.Close()

	// Simulate a crash mid-write: chop the last frame in half.
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := goodSize + (st.Size()-goodSize)/2
	if err := os.Truncate(path, cut); err != nil {
		t.Fatal(err)
	}

	w, err = Open(path)
	if err != nil {
		t.Fatalf("Open after torn tail: %v", err)
	}
	defer w.Close()
	if w.Torn() == nil {
		t.Fatal("expected Torn() to report the dropped tail")
	}
	if w.Entries() != 2 {
		t.Fatalf("Entries = %d, want the 2 intact batches", w.Entries())
	}
	if w.Size() != goodSize {
		t.Fatalf("Size = %d, want truncation back to %d", w.Size(), goodSize)
	}
	if got := replayAll(t, w, ex.Schema); len(got) != 2 {
		t.Fatalf("replayed %d batches, want 2", len(got))
	}
	// The file itself was truncated, so the next Open is clean.
	w.Close()
	if w, err = Open(path); err != nil {
		t.Fatalf("second reopen: %v", err)
	}
	defer w.Close()
	if w.Torn() != nil {
		t.Fatalf("tail not healed: %v", w.Torn())
	}
}

func TestWALCorruptFrameDropsTail(t *testing.T) {
	ex := paperex.New()
	path := walPath(t)
	w, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	appendBatches(t, w, ex, [][]pathdb.Record{ex.DB.Records[:2], ex.DB.Records[2:4], ex.DB.Records[4:6]})
	w.Close()

	// Flip a payload bit in the middle entry: it and everything after it
	// must be dropped (a later frame's position is only trustworthy if
	// every earlier frame is intact).
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	len0 := binary.LittleEndian.Uint32(buf[len(walMagic):])
	buf[len(walMagic)+walHeaderLen+int(len0)+walHeaderLen+2] ^= 0x40
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	w, err = Open(path)
	if err != nil {
		t.Fatalf("Open after bit flip: %v", err)
	}
	defer w.Close()
	if w.Torn() == nil {
		t.Fatal("expected corruption report")
	}
	if w.Entries() > 1 {
		t.Fatalf("Entries = %d, want at most the first intact entry", w.Entries())
	}
}

func TestWALBadMagicRejectedUntouched(t *testing.T) {
	path := walPath(t)
	content := []byte("definitely not a WAL\nbut some other file\n")
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(path)
	if !IsCorrupt(err) {
		t.Fatalf("Open = %v, want *CorruptError", err)
	}
	after, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if string(after) != string(content) {
		t.Fatal("Open modified a non-WAL file")
	}
}

func TestWALReset(t *testing.T) {
	ex := paperex.New()
	w, err := Open(walPath(t))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer w.Close()
	appendBatches(t, w, ex, [][]pathdb.Record{ex.DB.Records[:3]})
	if err := w.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if w.Entries() != 0 || w.Size() != int64(len(walMagic)) {
		t.Fatalf("after Reset: entries=%d size=%d", w.Entries(), w.Size())
	}
	if got := replayAll(t, w, ex.Schema); len(got) != 0 {
		t.Fatalf("replayed %d batches after Reset, want 0", len(got))
	}
	// The log is still appendable.
	appendBatches(t, w, ex, [][]pathdb.Record{ex.DB.Records[3:5]})
	if got := replayAll(t, w, ex.Schema); len(got) != 1 {
		t.Fatalf("replayed %d batches, want 1", len(got))
	}
}

func TestWALReplaySchemaMismatch(t *testing.T) {
	ex := paperex.New()
	w, err := Open(walPath(t))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer w.Close()
	appendBatches(t, w, ex, [][]pathdb.Record{ex.DB.Records[:2]})

	// A schema with no vocabulary cannot parse the journal; Replay must
	// surface a typed corruption error, not garbage records.
	empty := &pathdb.Schema{}
	err = w.Replay(empty, func([]pathdb.Record) error { return nil })
	if !IsCorrupt(err) {
		t.Fatalf("Replay = %v, want *CorruptError", err)
	}
}

func TestWALReplayCallbackError(t *testing.T) {
	ex := paperex.New()
	w, err := Open(walPath(t))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer w.Close()
	appendBatches(t, w, ex, [][]pathdb.Record{ex.DB.Records[:1], ex.DB.Records[1:2]})
	sentinel := errors.New("stop")
	calls := 0
	err = w.Replay(ex.Schema, func([]pathdb.Record) error {
		calls++
		return sentinel
	})
	if !errors.Is(err, sentinel) || calls != 1 {
		t.Fatalf("Replay = %v after %d calls, want sentinel after 1", err, calls)
	}
}

// faultFile wraps the real WAL file and fails the next write after
// admitting a prefix of it — the shape of an ENOSPC mid-frame. A negative
// admit leaves writes untouched. failTruncate additionally breaks the
// rollback path.
type faultFile struct {
	walFile
	admit        int // bytes of the next write to let through; -1 = no fault
	writeErr     error
	failTruncate bool
	writes       int
}

func (f *faultFile) Write(p []byte) (int, error) {
	f.writes++
	if f.admit < 0 {
		return f.walFile.Write(p)
	}
	admit := f.admit
	if admit > len(p) {
		admit = len(p)
	}
	f.admit = -1
	n, err := f.walFile.Write(p[:admit])
	if err != nil {
		return n, err
	}
	return n, f.writeErr
}

func (f *faultFile) Truncate(size int64) error {
	if f.failTruncate {
		return errors.New("injected truncate failure")
	}
	return f.walFile.Truncate(size)
}

// TestWALAppendWriteErrorRollsBack: a frame write that fails partway
// (header landed, payload did not) must not leave the partial frame in the
// file — the next Append would bury it, and a restart scan would stop there
// and silently drop every later acknowledged batch.
func TestWALAppendWriteErrorRollsBack(t *testing.T) {
	ex := paperex.New()
	path := walPath(t)
	w, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer w.Close()
	appendBatches(t, w, ex, [][]pathdb.Record{ex.DB.Records[:2]})
	goodSize := w.Size()

	boom := errors.New("injected ENOSPC")
	ff := &faultFile{walFile: w.f, admit: walHeaderLen + 3, writeErr: boom}
	w.f = ff
	if err := w.Append(ex.DB.Schema, ex.DB.Records[2:4]); !errors.Is(err, boom) {
		t.Fatalf("Append with failing write = %v, want %v", err, boom)
	}
	if w.Size() != goodSize || w.Entries() != 1 {
		t.Fatalf("after failed Append: size=%d entries=%d, want size=%d entries=1", w.Size(), w.Entries(), goodSize)
	}

	// The log must still be appendable, and the new frame must land exactly
	// where the rolled-back one started.
	appendBatches(t, w, ex, [][]pathdb.Record{ex.DB.Records[4:6]})
	if got := replayAll(t, w, ex.Schema); len(got) != 2 || len(got[1]) != 2 {
		t.Fatalf("replayed %d batches after rollback, want 2 with the retried batch intact", len(got))
	}

	// A restart scan agrees: two intact entries, no torn tail.
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	w, err = Open(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w.Close()
	if w.Torn() != nil {
		t.Fatalf("rollback left a torn tail: %v", w.Torn())
	}
	if w.Entries() != 2 {
		t.Fatalf("reopened Entries = %d, want 2", w.Entries())
	}
}

// TestWALAppendRollbackFailureLatches: when the partial frame cannot be
// truncated away, the WAL must refuse further work — appending past garbage
// would corrupt the log mid-file, beyond what a restart scan can heal.
func TestWALAppendRollbackFailureLatches(t *testing.T) {
	ex := paperex.New()
	w, err := Open(walPath(t))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer w.Close()
	appendBatches(t, w, ex, [][]pathdb.Record{ex.DB.Records[:2]})

	ff := &faultFile{walFile: w.f, admit: 3, writeErr: errors.New("injected ENOSPC"), failTruncate: true}
	w.f = ff
	if err := w.Append(ex.DB.Schema, ex.DB.Records[2:4]); err == nil {
		t.Fatal("Append with failing write and truncate succeeded")
	}
	if w.failed == nil {
		t.Fatal("failure not latched")
	}
	writesAtLatch := ff.writes
	if err := w.Append(ex.DB.Schema, ex.DB.Records[4:5]); err == nil {
		t.Fatal("Append on a failed WAL succeeded")
	}
	if err := w.Sync(); err == nil {
		t.Fatal("Sync on a failed WAL succeeded")
	}
	if ff.writes != writesAtLatch {
		t.Fatal("latched WAL still attempted a file write")
	}
}

// FuzzWALReplay feeds arbitrary bytes through Open+Replay: any input must
// yield typed errors and a clean partial replay — never a panic, and never
// a record the CRC did not vouch for.
func FuzzWALReplay(f *testing.F) {
	ex := paperex.New()
	// Seed with a valid two-entry log, a truncation, and a bit flip.
	dir := f.TempDir()
	seed := filepath.Join(dir, "seed.wal")
	w, err := Open(seed)
	if err != nil {
		f.Fatal(err)
	}
	_ = w.Append(ex.DB.Schema, ex.DB.Records[:2])
	_ = w.Append(ex.DB.Schema, ex.DB.Records[2:4])
	_ = w.Sync()
	w.Close()
	valid, err := os.ReadFile(seed)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x01
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte("FCWALv1\n"))
	f.Add([]byte("garbage that is not a WAL at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		w, err := Open(path)
		if err != nil {
			if !IsCorrupt(err) {
				t.Fatalf("Open returned untyped error %v", err)
			}
			return
		}
		defer w.Close()
		err = w.Replay(ex.Schema, func(batch []pathdb.Record) error {
			for _, r := range batch {
				if err := ex.Schema.ValidateRecord(r); err != nil {
					t.Fatalf("replay surfaced an invalid record: %v", err)
				}
			}
			return nil
		})
		if err != nil && !IsCorrupt(err) {
			t.Fatalf("Replay returned untyped error %v", err)
		}
	})
}
