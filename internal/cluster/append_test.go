package cluster_test

import (
	"bytes"
	"context"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"flowcube/internal/cluster"
	"flowcube/internal/core"
	"flowcube/internal/datagen"
	"flowcube/internal/paperex"
	"flowcube/internal/pathdb"
	"flowcube/internal/server"
	"flowcube/internal/transact"
)

// appendFixture is a cluster and a single-node reference whose snapshots
// were all loaded from the same saved cube (the deployment shape: shard
// servers boot from split snapshot files plus the replicated database).
type appendFixture struct {
	baseDB    *pathdb.DB
	batches   [][]pathdb.Record
	single    *server.Server
	shardSrvs []*server.Server
	router    *cluster.Router
}

func newAppendFixture(t *testing.T, n int) *appendFixture {
	t.Helper()
	cfg := datagen.Default()
	cfg.NumPaths = 400
	cfg.NumDims = 3
	cfg.NumSequences = 20
	ds := datagen.MustGenerate(cfg)
	total := ds.DB.Len()
	batchLen := total / 50
	split := total - 2*batchLen
	baseDB := &pathdb.DB{Schema: ds.DB.Schema, Records: append([]pathdb.Record(nil), ds.DB.Records[:split]...)}

	base, err := core.Build(baseDB, core.Config{
		MinCount:              5,
		Epsilon:               0.1,
		Plan:                  ds.DefaultPlan(),
		MineExceptions:        true,
		SingleStageExceptions: true,
		DeltaLedger:           true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := base.Save(&snap); err != nil {
		t.Fatal(err)
	}
	snapBytes := snap.Bytes()

	// Both sides load from the snapshot, not the in-memory build: a saved
	// cube does not carry MineExceptions, and byte-equivalence after append
	// only holds when single node and shards run the same configuration.
	loadFrom := func(data []byte) server.Loader {
		return func() (*core.Cube, server.LoadInfo, error) {
			cube, err := core.Load(bytes.NewReader(data))
			if err != nil {
				return nil, server.LoadInfo{}, err
			}
			db := &pathdb.DB{Schema: cube.Schema, Records: append([]pathdb.Record(nil), baseDB.Records...)}
			return cube, server.LoadInfo{DB: db}, nil
		}
	}

	fx := &appendFixture{
		baseDB: baseDB,
		batches: [][]pathdb.Record{
			ds.DB.Records[split : split+batchLen],
			ds.DB.Records[split+batchLen:],
		},
	}
	singleSrv, err := server.New(loadFrom(snapBytes), "test", quietConfig())
	if err != nil {
		t.Fatal(err)
	}
	fx.single = singleSrv

	loaded, err := core.Load(bytes.NewReader(snapBytes))
	if err != nil {
		t.Fatal(err)
	}
	parts, err := cluster.Split(loaded, n)
	if err != nil {
		t.Fatal(err)
	}
	urls := make([]string, n)
	for i, part := range parts {
		var pb bytes.Buffer
		if err := part.Save(&pb); err != nil {
			t.Fatal(err)
		}
		filter, err := cluster.ShardFilter(i, n)
		if err != nil {
			t.Fatal(err)
		}
		cfg := quietConfig()
		cfg.PostAppend = filter
		srv, err := server.New(loadFrom(pb.Bytes()), "test", cfg)
		if err != nil {
			t.Fatal(err)
		}
		fx.shardSrvs = append(fx.shardSrvs, srv)
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}

	meta, err := core.LoadMeta(bytes.NewReader(snapBytes))
	if err != nil {
		t.Fatal(err)
	}
	fx.router, err = cluster.NewRouter(meta, urls, cluster.RouterConfig{
		Source: "test",
		Logger: log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fx.router.Validate(context.Background()); err != nil {
		t.Fatalf("startup validation: %v", err)
	}
	return fx
}

// batchText renders records in the wire format /admin/append accepts.
func batchText(t *testing.T, schema *pathdb.Schema, records []pathdb.Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := (&pathdb.DB{Schema: schema, Records: records}).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func post(h http.Handler, url string, body []byte) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	req.Header.Set("Content-Type", "text/plain; charset=utf-8")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestClusterAppendMatchesSingleNode streams two append batches through the
// router and through a single node loaded from the same snapshot, then
// checks exact equivalence twice over: the merged shard cubes save to the
// single node's exact snapshot bytes, and the query surface answers
// byte-identically. Two batches matter — the second runs against shard
// ledgers that the first append's ShardFilter prune already filtered, the
// state a long-lived cluster is always in.
func TestClusterAppendMatchesSingleNode(t *testing.T) {
	fx := newAppendFixture(t, 3)

	for round, batch := range fx.batches {
		body := batchText(t, fx.baseDB.Schema, batch)
		rec := post(fx.single.Handler(), "/admin/append", body)
		if rec.Code != http.StatusOK {
			t.Fatalf("round %d: single-node append status %d: %s", round, rec.Code, rec.Body)
		}
		rec = post(fx.router.Handler(), "/admin/append", body)
		if rec.Code != http.StatusOK {
			t.Fatalf("round %d: cluster append status %d: %s", round, rec.Code, rec.Body)
		}
		if !strings.Contains(rec.Body.String(), `"appended"`) {
			t.Fatalf("round %d: cluster append response: %s", round, rec.Body)
		}

		parts := make([]*core.Cube, len(fx.shardSrvs))
		for i, srv := range fx.shardSrvs {
			parts[i] = srv.Snapshot().Cube
		}
		merged, err := cluster.Merge(parts)
		if err != nil {
			t.Fatalf("round %d: merge appended shards: %v", round, err)
		}
		if got, want := saveDigest(t, merged), saveDigest(t, fx.single.Snapshot().Cube); got != want {
			t.Fatalf("round %d: merged shard snapshot digest %x, single node has %x", round, got, want)
		}

		sfx := &fixture{single: fx.single, router: fx.router}
		for _, u := range cellURLs(fx.single.Snapshot().Cube, 30) {
			sfx.assertSame(t, u, false)
		}
		sfx.assertSame(t, "/v1/summary", true)
		sfx.assertSame(t, "/v1/cuboids", true)
	}
}

// TestClusterAppendErrorPaths pins the router-side append guards: requests
// that fail validation are answered locally with the single node's exact
// bytes (oversized, unparseable, empty), and a partially-applied fan-out
// reports which shards diverged.
func TestClusterAppendErrorPaths(t *testing.T) {
	fx := newAppendFixture(t, 2)
	body := batchText(t, fx.baseDB.Schema, fx.batches[0])

	// Local validation failures must match the single node byte for byte.
	smallSingle, err := server.New(func() (*core.Cube, server.LoadInfo, error) {
		return fx.single.Snapshot().Cube, server.LoadInfo{DB: fx.baseDB}, nil
	}, "test", server.Config{Logger: log.New(io.Discard, "", 0), MaxAppendBytes: 16})
	if err != nil {
		t.Fatal(err)
	}
	smallRouter, err := cluster.NewRouter(fx.single.Snapshot().Cube, fx.router.Shards(), cluster.RouterConfig{
		Source: "test", Logger: log.New(io.Discard, "", 0), MaxAppendBytes: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][]byte{
		body,                     // over the 16-byte cap → 413
		nil,                      // empty batch → 400
		[]byte("not a record\n"), // parse failure → 400
		[]byte("a|b\nnot|valid"), // parse failure → 400
	} {
		want := post(smallSingle.Handler(), "/admin/append", bad)
		got := post(smallRouter.Handler(), "/admin/append", bad)
		if got.Code != want.Code || !bytes.Equal(got.Body.Bytes(), want.Body.Bytes()) {
			t.Fatalf("append %q: router answered %d %s, single node %d %s",
				bad, got.Code, got.Body, want.Code, want.Body)
		}
		if want.Code == http.StatusOK {
			t.Fatalf("append %q unexpectedly succeeded", bad)
		}
	}

	// Fan-out failure: a router pointed at one live and one unreachable
	// shard reports divergence and names the failure, because the live shard
	// already applied the batch.
	brokenRouter, err := cluster.NewRouter(fx.single.Snapshot().Cube,
		[]string{fx.router.Shards()[0], "http://127.0.0.1:1"},
		cluster.RouterConfig{Source: "test", Logger: log.New(io.Discard, "", 0)})
	if err != nil {
		t.Fatal(err)
	}
	rec := post(brokenRouter.Handler(), "/admin/append", body)
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("append with an unreachable shard: status %d: %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "1 of 2 shards") || !strings.Contains(rec.Body.String(), "re-split") {
		t.Fatalf("divergence report missing detail: %s", rec.Body)
	}
}

// TestClusterAppendRejectsRedundancyMarking: re-marking needs item-lattice
// parents that may live off-shard, so clusters over tau-marked cubes are
// read-only.
func TestClusterAppendRejectsRedundancyMarking(t *testing.T) {
	ex := paperex.New()
	cube, err := core.Build(ex.DB, core.Config{
		MinCount: 2,
		Tau:      0.5,
		Plan: transact.Plan{PathLevels: []pathdb.PathLevel{
			ex.BasePathLevel(),
			ex.TransportPathLevel(),
		}},
		DeltaLedger: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := cluster.NewRouter(cube, []string{"http://127.0.0.1:1"}, cluster.RouterConfig{
		Logger: log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := post(rt.Handler(), "/admin/append", []byte("anything"))
	if rec.Code != http.StatusConflict {
		t.Fatalf("append on a tau-marked cluster: status %d, want 409: %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "redundancy marking") {
		t.Fatalf("409 body does not explain the tau restriction: %s", rec.Body)
	}
}
