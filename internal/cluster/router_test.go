package cluster_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"regexp"
	"runtime"
	"strings"
	"sync"
	"testing"

	"flowcube/internal/cluster"
	"flowcube/internal/core"
	"flowcube/internal/datagen"
	"flowcube/internal/hierarchy"
	"flowcube/internal/server"
)

// synthCube builds a synthetic cube big enough that a split spreads cells
// across every shard, with all persisted features on. The build is cached:
// several tests share it, the cube is immutable once built, and splits
// share cell pointers without mutating them.
var synthOnce sync.Once
var synthDS *datagen.Dataset
var synthC *core.Cube
var synthErr error

func synthCube(t testing.TB) (*datagen.Dataset, *core.Cube) {
	t.Helper()
	synthOnce.Do(func() {
		cfg := datagen.Default()
		cfg.NumPaths = 500
		cfg.NumDims = 3
		cfg.NumSequences = 20
		synthDS = datagen.MustGenerate(cfg)
		synthC, synthErr = core.Build(synthDS.DB, core.Config{
			MinCount:              5,
			Epsilon:               0.1,
			Plan:                  synthDS.DefaultPlan(),
			MineExceptions:        true,
			SingleStageExceptions: true,
			DeltaLedger:           true,
			Workers:               runtime.GOMAXPROCS(0),
		})
	})
	if synthErr != nil {
		t.Fatal(synthErr)
	}
	return synthDS, synthC
}

func quietConfig() server.Config {
	return server.Config{Logger: log.New(io.Discard, "", 0)}
}

// memServer boots an in-memory single-node server over a fixed cube.
func memServer(t testing.TB, cube *core.Cube, cfg server.Config) *server.Server {
	t.Helper()
	srv, err := server.New(func() (*core.Cube, server.LoadInfo, error) {
		return cube, server.LoadInfo{}, nil
	}, "test", cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// fixture is a single-node server and an equivalent router-fronted cluster
// over the same cube.
type fixture struct {
	cube   *core.Cube
	single *server.Server
	shards []*httptest.Server
	router *cluster.Router
}

// newFixture splits cube across n live shard servers and fronts them with a
// router whose metadata comes from the saved snapshot (the cmd/flowrouter
// load path).
func newFixture(t testing.TB, cube *core.Cube, n int) *fixture {
	t.Helper()
	parts, err := cluster.Split(cube, n)
	if err != nil {
		t.Fatal(err)
	}
	fx := &fixture{cube: cube, single: memServer(t, cube, quietConfig())}
	urls := make([]string, n)
	for i, part := range parts {
		ts := httptest.NewServer(memServer(t, part, quietConfig()).Handler())
		t.Cleanup(ts.Close)
		fx.shards = append(fx.shards, ts)
		urls[i] = ts.URL
	}
	var buf bytes.Buffer
	if err := cube.Save(&buf); err != nil {
		t.Fatal(err)
	}
	meta, err := core.LoadMeta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	fx.router, err = cluster.NewRouter(meta, urls, cluster.RouterConfig{
		Source: "test",
		Logger: log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fx.router.Validate(context.Background()); err != nil {
		t.Fatalf("startup validation: %v", err)
	}
	return fx
}

// get runs one request against a handler.
func get(h http.Handler, url string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodGet, url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// loadedAtRe normalizes the one legitimately instance-specific census
// field before byte comparison.
var loadedAtRe = regexp.MustCompile(`"loaded_at": "[^"]*"`)

// assertSame requires the router to answer url exactly as the single node
// does. normalizeTime masks loaded_at (census endpoints only).
func (fx *fixture) assertSame(t *testing.T, url string, normalizeTime bool) {
	t.Helper()
	want := get(fx.single.Handler(), url)
	got := get(fx.router.Handler(), url)
	if got.Code != want.Code {
		t.Fatalf("%s: router status %d, single node %d\nrouter body: %s", url, got.Code, want.Code, got.Body)
	}
	if gct, wct := got.Header().Get("Content-Type"), want.Header().Get("Content-Type"); gct != wct {
		t.Fatalf("%s: router content type %q, single node %q", url, gct, wct)
	}
	wb, gb := want.Body.Bytes(), got.Body.Bytes()
	if normalizeTime {
		wb = loadedAtRe.ReplaceAll(wb, []byte(`"loaded_at": "X"`))
		gb = loadedAtRe.ReplaceAll(gb, []byte(`"loaded_at": "X"`))
	}
	if !bytes.Equal(wb, gb) {
		t.Fatalf("%s: router body differs from single node\nrouter: %s\nsingle: %s", url, gb, wb)
	}
}

// cellURLs enumerates queries for every materialized cell, capped
// deterministically.
func cellURLs(cube *core.Cube, cap int) []string {
	var urls []string
	for _, s := range cube.CuboidSummaries() {
		cb := cube.Cuboids[s.Key]
		if cb == nil {
			continue
		}
		for _, cell := range cb.SortedCells() {
			urls = append(urls, fmt.Sprintf("/v1/cell?cell=%s&pathlevel=%d",
				core.FormatCell(cube.Schema, cell.Values), s.PathLevel))
		}
	}
	if len(urls) > cap {
		// Deterministic thinning that keeps coverage across the lattice
		// rather than the first cuboids only.
		step := len(urls) / cap
		var kept []string
		for i := 0; i < len(urls); i += step {
			kept = append(kept, urls[i])
		}
		urls = kept
	}
	return urls
}

// TestRouterMatchesSingleNodeByteForByte is the cluster's core contract
// (ISSUE 6 acceptance): for materialized cells, roll-ups, misses, error
// cases, exceptions, and the census endpoints, the router-fronted split
// cluster answers exactly as one server over the unsplit cube.
func TestRouterMatchesSingleNodeByteForByte(t *testing.T) {
	_, cube := synthCube(t)
	for _, n := range []int{1, 3} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			fx := newFixture(t, cube, n)

			urls := cellURLs(cube, 60)
			if len(urls) < 20 {
				t.Fatalf("only %d materialized cell queries; fixture too small to be meaningful", len(urls))
			}
			for _, u := range urls {
				fx.assertSame(t, u, false)
			}

			// Random tuples at arbitrary abstraction levels: a mix of exact
			// hits, roll-up inferences, and 404s. The seed is fixed so failures
			// reproduce.
			rng := rand.New(rand.NewSource(11))
			for i := 0; i < 80; i++ {
				values := make([]hierarchy.NodeID, len(cube.Schema.Dims))
				for d, h := range cube.Schema.Dims {
					values[d] = hierarchy.NodeID(rng.Intn(h.Len()))
				}
				pl := rng.Intn(len(cube.Symbols.PathLevels()))
				fx.assertSame(t, fmt.Sprintf("/v1/cell?cell=%s&pathlevel=%d",
					core.FormatCell(cube.Schema, values), pl), false)
			}

			// Graphviz rendering relays through the same winner shard.
			fx.assertSame(t, urls[0]+"&format=dot", false)
			fx.assertSame(t, urls[len(urls)-1]+"&format=dot", false)

			// Validation errors must match byte for byte, including order of
			// checks (format before pathlevel before cell spec).
			for _, u := range []string{
				"/v1/cell?cell=bogus&format=yaml&pathlevel=zap",
				"/v1/cell?cell=bogus&pathlevel=zap",
				"/v1/cell?cell=nosuchdim=x",
				"/v1/cell?cell=&pathlevel=99",
				"/v1/exceptions?k=-1",
				"/v1/exceptions?k=many",
			} {
				fx.assertSame(t, u, false)
			}

			for _, u := range []string{
				"/v1/exceptions",
				"/v1/exceptions?k=0",
				"/v1/exceptions?k=5",
				"/v1/exceptions?k=100000",
			} {
				fx.assertSame(t, u, false)
			}

			fx.assertSame(t, "/v1/summary", true)
			fx.assertSame(t, "/v1/cuboids", true)
		})
	}
}

// TestRouterValidateRejectsForeignShards checks the startup guard: a fleet
// serving a different cube (here: a different iceberg threshold) must be
// refused before it can answer merged queries.
func TestRouterValidateRejectsForeignShards(t *testing.T) {
	ds, cube := synthCube(t)
	other, err := core.Build(ds.DB, core.Config{MinCount: 50, Plan: ds.DefaultPlan()})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := cluster.Split(other, 2)
	if err != nil {
		t.Fatal(err)
	}
	var urls []string
	for _, part := range parts {
		ts := httptest.NewServer(memServer(t, part, quietConfig()).Handler())
		t.Cleanup(ts.Close)
		urls = append(urls, ts.URL)
	}
	rt, err := cluster.NewRouter(cube, urls, cluster.RouterConfig{Logger: log.New(io.Discard, "", 0)})
	if err != nil {
		t.Fatal(err)
	}
	err = rt.Validate(context.Background())
	if err == nil {
		t.Fatal("Validate accepted shards of a different cube")
	}
	if !strings.Contains(err.Error(), "min count") {
		t.Fatalf("unexpected validation error: %v", err)
	}
}

// TestRouterDegradesPartially checks behavior with one dead shard: census
// and exception reads answer from the live subset and flag it via
// X-Cluster-Partial; cell queries that need the dead shard fail loudly with
// 502 rather than answering wrong; health reports degraded.
func TestRouterDegradesPartially(t *testing.T) {
	_, cube := synthCube(t)
	fx := newFixture(t, cube, 2)
	deadURL := fx.shards[1].URL
	fx.shards[1].Close()

	rec := get(fx.router.Handler(), "/v1/summary")
	if rec.Code != http.StatusOK {
		t.Fatalf("partial summary status %d: %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get(cluster.PartialHeader); !strings.Contains(got, deadURL) {
		t.Fatalf("partial summary %s header %q, want it to name %s", cluster.PartialHeader, got, deadURL)
	}
	rec = get(fx.router.Handler(), "/v1/exceptions?k=5")
	if rec.Code != http.StatusOK || rec.Header().Get(cluster.PartialHeader) == "" {
		t.Fatalf("partial exceptions: status %d, header %q", rec.Code, rec.Header().Get(cluster.PartialHeader))
	}

	// A cell query cannot degrade: any unreachable shard might own the
	// answer (or a better roll-up), so the router refuses.
	sawGateway := false
	for _, u := range cellURLs(cube, 40) {
		rec := get(fx.router.Handler(), u)
		switch rec.Code {
		case http.StatusBadGateway:
			sawGateway = true
		case http.StatusOK:
			// Owner fast path on the live shard: exact answers need no other
			// shard, dead or not.
		default:
			t.Fatalf("%s with a dead shard: status %d: %s", u, rec.Code, rec.Body)
		}
	}
	if !sawGateway {
		t.Fatal("no cell query needed the dead shard; fixture does not exercise the failure path")
	}

	rec = get(fx.router.Handler(), "/healthz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz with a dead shard: status %d, want 503", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"degraded"`) {
		t.Fatalf("healthz body does not report degraded: %s", rec.Body)
	}

	// All shards down: census reads have nothing to merge and fail.
	fx.shards[0].Close()
	rec = get(fx.router.Handler(), "/v1/summary")
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("summary with all shards dead: status %d, want 502", rec.Code)
	}
}
