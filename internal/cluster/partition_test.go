package cluster_test

import (
	"math/rand"
	"testing"

	"flowcube/internal/cluster"
	"flowcube/internal/datagen"
	"flowcube/internal/hierarchy"
	"flowcube/internal/paperex"
	"flowcube/internal/pathdb"
)

// randomValues draws one value tuple with every dimension in range,
// including the root '*' (0), the shape cells and ledger entries actually
// carry.
func randomValues(rng *rand.Rand, schema *pathdb.Schema) []hierarchy.NodeID {
	values := make([]hierarchy.NodeID, len(schema.Dims))
	for d, h := range schema.Dims {
		values[d] = hierarchy.NodeID(rng.Intn(h.Len()))
	}
	return values
}

// TestOwnerIsTotalAndInRange is the core partition property: every value
// tuple has exactly one owner, and it is a valid shard index. Owner being a
// pure function makes "exactly one" equivalent to "deterministic", which
// the restart test below pins separately.
func TestOwnerIsTotalAndInRange(t *testing.T) {
	schema := paperex.New().DB.Schema
	for _, shards := range []int{1, 2, 3, 4, 7} {
		part, err := cluster.NewPartitioner(schema, shards)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(shards)))
		for i := 0; i < 5000; i++ {
			values := randomValues(rng, schema)
			owner := part.Owner(values)
			if owner < 0 || owner >= shards {
				t.Fatalf("owner(%v) = %d with %d shards, out of range", values, owner, shards)
			}
			if again := part.OwnerKey(part.Key(values)); again != owner {
				t.Fatalf("Owner(%v) = %d but OwnerKey(Key) = %d", values, owner, again)
			}
		}
	}
}

// TestOwnerIsStableAcrossPartitioners checks restart stability: two
// partitioners built independently over the same schema agree on every
// assignment, so a shard server restarted tomorrow owns exactly the cells
// it owned today.
func TestOwnerIsStableAcrossPartitioners(t *testing.T) {
	schema := paperex.New().DB.Schema
	a, err := cluster.NewPartitioner(schema, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cluster.NewPartitioner(schema, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		values := randomValues(rng, schema)
		if a.Owner(values) != b.Owner(values) {
			t.Fatalf("independently built partitioners disagree on %v: %d vs %d",
				values, a.Owner(values), b.Owner(values))
		}
	}
}

// TestOwnerGolden pins concrete assignments. The rendezvous hash is part of
// the on-disk contract — shard snapshots written by one build must be owned
// identically by every later build — so any change here is a breaking
// change that requires re-splitting every cluster, not a refactor.
func TestOwnerGolden(t *testing.T) {
	schema := paperex.New().DB.Schema
	part, err := cluster.NewPartitioner(schema, 4)
	if err != nil {
		t.Fatal(err)
	}
	golden := []struct {
		values []hierarchy.NodeID
		owner  int
	}{
		{[]hierarchy.NodeID{0, 0}, 2},
		{[]hierarchy.NodeID{1, 0}, 2},
		{[]hierarchy.NodeID{0, 1}, 1},
		{[]hierarchy.NodeID{1, 1}, 3},
		{[]hierarchy.NodeID{2, 1}, 1},
		{[]hierarchy.NodeID{1, 2}, 3},
		{[]hierarchy.NodeID{2, 2}, 3},
		{[]hierarchy.NodeID{3, 2}, 0},
		{[]hierarchy.NodeID{4, 3}, 3},
		{[]hierarchy.NodeID{5, 1}, 0},
	}
	for _, g := range golden {
		if got := part.Owner(g.values); got != g.owner {
			t.Errorf("Owner(%v) = %d, golden says %d — the hash changed; existing cluster splits are invalidated",
				g.values, got, g.owner)
		}
	}
}

// TestOwnerSpreadsLoad sanity-checks the rendezvous distribution: over many
// uniform tuples no shard ends up starved or hot by more than 2x of fair
// share. The synthetic datagen schema gives a key space large enough for
// the bound to be meaningful (the paper example's is a few dozen tuples,
// where per-key lumpiness dominates). This is a coarse bound — rendezvous
// over a 64-bit mix should be far tighter — meant to catch a broken mix
// function, not to measure it.
func TestOwnerSpreadsLoad(t *testing.T) {
	cfg := datagen.Default()
	cfg.NumPaths = 1
	schema := datagen.MustGenerate(cfg).DB.Schema
	const shards = 4
	part, err := cluster.NewPartitioner(schema, shards)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, shards)
	rng := rand.New(rand.NewSource(7))
	const n = 20000
	for i := 0; i < n; i++ {
		counts[part.Owner(randomValues(rng, schema))]++
	}
	fair := n / shards
	for s, c := range counts {
		if c < fair/2 || c > fair*2 {
			t.Fatalf("shard %d owns %d of %d tuples, outside [%d, %d]: %v", s, c, n, fair/2, fair*2, counts)
		}
	}
}

// TestNewPartitionerRejectsBadCounts covers the error path.
func TestNewPartitionerRejectsBadCounts(t *testing.T) {
	schema := paperex.New().DB.Schema
	for _, shards := range []int{0, -1} {
		if _, err := cluster.NewPartitioner(schema, shards); err == nil {
			t.Fatalf("NewPartitioner(%d) succeeded, want an error", shards)
		}
	}
}
