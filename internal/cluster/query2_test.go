package cluster_test

// Routed /v2/query tests: the owner fast path for materialized cells, the
// router-side scattered fold for cells of planner-dropped cuboids (the
// census certificate makes it exact or refused, never wrong), the ranked
// ancestor fallback under nocompute, local roll-up resolution, and the 501
// for multi-cell ops.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"flowcube/internal/core"
	"flowcube/internal/olap"
	"flowcube/internal/paperex"
	"flowcube/internal/pathdb"
	"flowcube/internal/transact"
)

// prunedPaperex builds the paper's running example twice — eager and
// planner-pruned — without exceptions (exception-bearing cuboids are never
// droppable) and with MinCount 1 so no iceberg truncation blocks
// reconstruction.
func prunedPaperex(t *testing.T) (eager, pruned *core.Cube, res *olap.PlanResult) {
	t.Helper()
	build := func() *core.Cube {
		ex := paperex.New()
		plan := transact.Plan{PathLevels: []pathdb.PathLevel{
			ex.BasePathLevel(),
			ex.TransportPathLevel(),
		}}
		cube, err := core.Build(ex.DB, core.Config{MinCount: 1, Plan: plan})
		if err != nil {
			t.Fatal(err)
		}
		return cube
	}
	eager, pruned = build(), build()
	res, err := olap.Prune(context.Background(), pruned, olap.PlannerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dropped) == 0 {
		t.Fatal("planner dropped nothing; the routed-fold test needs computed cells")
	}
	return eager, pruned, res
}

// queryBody is the slice of a /v2/query response the assertions need.
type queryBody struct {
	Op    string `json:"op"`
	Cells []struct {
		Cell       string `json:"cell"`
		Provenance string `json:"provenance"`
		Exact      bool   `json:"exact"`
		Source     struct {
			Count int64 `json:"count"`
		} `json:"source"`
		Folded []struct {
			Cuboid string `json:"cuboid"`
			Cell   string `json:"cell"`
		} `json:"folded"`
	} `json:"cells"`
}

// TestRouterQueryV2 splits a planner-pruned cube and checks the routed v2
// surface: every cell of the eager cube — materialized (owner relay),
// dropped (router-side scattered fold), and inferred — answers byte-for-byte
// as a single node over the same pruned cube, and a dropped cuboid's cell
// carries computed provenance with the eager cell's exact count.
func TestRouterQueryV2(t *testing.T) {
	eager, pruned, res := prunedPaperex(t)
	fx := newFixture(t, pruned, 3)

	dropped := make(map[string]bool)
	for _, d := range res.Dropped {
		dropped[d.Cuboid] = true
	}

	var computedURL string
	var computedCount int64
	for _, spec := range eager.MaterializedSpecs() {
		cb := eager.Cuboid(spec)
		for _, cell := range cb.SortedCells() {
			u := fmt.Sprintf("/v2/query?op=cell&cell=%s&pathlevel=%d",
				core.FormatCell(eager.Schema, cell.Values), spec.PathLevel)
			fx.assertSame(t, u, false)
			if dropped[spec.Key()] && computedURL == "" {
				computedURL, computedCount = u, cell.Count
			}
		}
	}
	if computedURL == "" {
		t.Fatal("no dropped cuboid cell was enumerated; fixture does not exercise the scattered fold")
	}

	// The dropped cell reconstructs through the router with the exact eager
	// count and the folded descendants listed.
	rec := get(fx.router.Handler(), computedURL)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", computedURL, rec.Code, rec.Body)
	}
	var body queryBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Cells) != 1 {
		t.Fatalf("computed cell answered %d cells, want 1", len(body.Cells))
	}
	c0 := body.Cells[0]
	if c0.Provenance != "computed" || !c0.Exact {
		t.Fatalf("dropped cell provenance/exact = %s/%v, want computed/true", c0.Provenance, c0.Exact)
	}
	if c0.Source.Count != computedCount {
		t.Fatalf("computed cell count = %d, eager cell has %d", c0.Source.Count, computedCount)
	}
	if len(c0.Folded) == 0 {
		t.Fatal("computed cell lists no folded descendants")
	}

	// With reconstruction disabled the same cell answers by ancestor
	// inference, ranked across shards exactly as a single node discovers it.
	fx.assertSame(t, computedURL+"&nocompute=1", false)

	// A roll-up resolves on the router's metadata snapshot and routes as the
	// target cell query.
	rec = get(fx.router.Handler(), "/v2/query?op=rollup&cell=product=shoes,brand=nike&dim=product")
	if rec.Code != http.StatusOK {
		t.Fatalf("routed rollup: status %d: %s", rec.Code, rec.Body)
	}
	body = queryBody{}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Cells) != 1 || body.Cells[0].Cell != "product=clothing,brand=nike" {
		t.Fatalf("routed rollup answered %+v, want product=clothing,brand=nike", body.Cells)
	}

	// Multi-cell ops need cross-shard enumeration the router does not do.
	rec = get(fx.router.Handler(), "/v2/query?op=slice&select=brand=nike")
	if rec.Code != http.StatusNotImplemented {
		t.Fatalf("routed slice: status %d, want 501: %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "not implemented") {
		t.Fatalf("routed slice body: %s", rec.Body)
	}

	// Parse errors surface as 400 without touching any shard.
	rec = get(fx.router.Handler(), "/v2/query?op=pivot")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("routed bad op: status %d, want 400: %s", rec.Code, rec.Body)
	}
}
