package cluster

// The stateless scatter-gather router: the single-node HTTP API of
// internal/server, served over a fleet of shard servers. The router holds
// only a snapshot's metadata (core.LoadMeta) — schema, plan, thresholds —
// which is enough to validate requests, route /v1/cell to the owning shard,
// and merge scattered answers deterministically. It keeps no cells, so any
// number of router replicas can front the same fleet.
//
// Response compatibility is a hard contract: for a cube and its split
// shards, the router's /v1/cell, /v1/summary, /v1/exceptions and
// /v1/cuboids bodies are byte-identical to a single flowserve over the
// unsplit cube (modulo the instance-specific source and loaded_at fields of
// the census endpoints). The merge logic below mirrors the single-node code
// paths — same validation order, same error strings, same JSON encoder
// settings, same sort comparators — and the tests assert the bytes.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"flowcube/internal/core"
	"flowcube/internal/hierarchy"
	"flowcube/internal/server"
)

// DefaultShardTimeout bounds each shard call within a scattered query.
const DefaultShardTimeout = 5 * time.Second

// PartialHeader is set on degraded scatter-gather responses (census and
// exception queries answered by a subset of shards); its value lists the
// unreachable shard URLs.
const PartialHeader = "X-Cluster-Partial"

// RouterConfig parameterizes the router. The zero value serves with
// defaults.
type RouterConfig struct {
	// Source is echoed as the source field of census responses; empty means
	// "cluster".
	Source string
	// RequestTimeout bounds each routed query end to end; 0 means
	// server.DefaultRequestTimeout.
	RequestTimeout time.Duration
	// ShardTimeout bounds each shard call within a scattered read; 0 means
	// DefaultShardTimeout. Appends and reloads are bounded only by the
	// client's request context: cutting a shard off mid-append would
	// guarantee divergence.
	ShardTimeout time.Duration
	// MaxAppendBytes bounds a POST /admin/append request body; 0 means
	// server.DefaultMaxAppendBytes.
	MaxAppendBytes int64
	// Logger receives one line per request; nil logs to the standard
	// logger.
	Logger *log.Logger
	// Client overrides the HTTP client used for shard calls (tests inject
	// httptest clients); nil builds one with pooled connections.
	Client *http.Client
}

// Router fronts a fleet of shard servers behind the single-node API.
type Router struct {
	meta    *core.Cube
	part    *Partitioner
	shards  []string
	cfg     RouterConfig
	client  *http.Client
	logger  *log.Logger
	handler http.Handler

	start       time.Time
	shardErrors atomic.Int64
	mu          sync.Mutex
	routes      map[string]*routeCount
}

type routeCount struct {
	count  int64
	errors int64
}

// NewRouter builds a router over shard base URLs (shard i of the split
// serves shardURLs[i] — order is the partitioning, so it must match the
// splitter's). meta is the unsplit snapshot's metadata, typically from
// core.LoadMeta over the original snapshot (any shard snapshot works too:
// the metadata sections are replicated).
func NewRouter(meta *core.Cube, shardURLs []string, cfg RouterConfig) (*Router, error) {
	if meta == nil {
		return nil, fmt.Errorf("cluster: router needs snapshot metadata")
	}
	part, err := NewPartitioner(meta.Schema, len(shardURLs))
	if err != nil {
		return nil, err
	}
	if cfg.Source == "" {
		cfg.Source = "cluster"
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = server.DefaultRequestTimeout
	}
	if cfg.ShardTimeout == 0 {
		cfg.ShardTimeout = DefaultShardTimeout
	}
	if cfg.MaxAppendBytes == 0 {
		cfg.MaxAppendBytes = server.DefaultMaxAppendBytes
	}
	rt := &Router{
		meta:   meta,
		part:   part,
		shards: make([]string, len(shardURLs)),
		cfg:    cfg,
		client: cfg.Client,
		logger: cfg.Logger,
		start:  time.Now(),
		routes: make(map[string]*routeCount),
	}
	for i, u := range shardURLs {
		rt.shards[i] = strings.TrimRight(u, "/")
	}
	if rt.client == nil {
		rt.client = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 32}}
	}
	if rt.logger == nil {
		rt.logger = log.Default()
	}
	rt.handler = rt.routeTable()
	return rt, nil
}

// Handler returns the fully assembled HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.handler }

// Shards returns the shard base URLs in partition order.
func (rt *Router) Shards() []string { return append([]string(nil), rt.shards...) }

func (rt *Router) routeTable() http.Handler {
	mux := http.NewServeMux()
	timeout := func(h http.HandlerFunc) http.Handler {
		return http.TimeoutHandler(h, rt.cfg.RequestTimeout,
			`{"error":"request timed out"}`)
	}
	mux.Handle("GET /v1/cell", timeout(rt.handleCell))
	mux.Handle("GET /v2/query", timeout(rt.handleQueryV2))
	mux.Handle("GET /v1/summary", timeout(rt.handleSummary))
	mux.Handle("GET /v1/exceptions", timeout(rt.handleExceptions))
	mux.Handle("GET /v1/cuboids", timeout(rt.handleCuboids))
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	mux.HandleFunc("POST /admin/append", rt.handleAppend)
	mux.HandleFunc("POST /admin/reload", rt.handleReload)
	return rt.instrument(mux)
}

func (rt *Router) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		route := r.Method + " " + r.URL.Path
		rt.mu.Lock()
		rc := rt.routes[route]
		if rc == nil {
			rc = &routeCount{}
			rt.routes[route] = rc
		}
		rc.count++
		if sw.status >= 400 {
			rc.errors++
		}
		rt.mu.Unlock()
		rt.logger.Printf("%s %s %d %s", r.Method, r.URL.RequestURI(), sw.status, elapsed.Round(time.Microsecond))
	})
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// httpError, writeJSON and writeError mirror internal/server exactly: the
// router's locally produced error bodies must be byte-identical to the
// single-node server's.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func errorStatus(err error) int {
	var he *httpError
	if errors.As(err, &he) {
		return he.status
	}
	return http.StatusInternalServerError
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

func writeError(w http.ResponseWriter, err error) {
	writeJSON(w, errorStatus(err), map[string]string{"error": err.Error()})
}

// shardResult is one shard call's outcome: transport errors in Err, HTTP
// outcomes (any status) in Status/Header/Body.
type shardResult struct {
	Shard  string
	Status int
	Header http.Header
	Body   []byte
	Err    error
}

// call performs one shard request. timeout 0 means the parent context alone
// bounds the call.
func (rt *Router) call(ctx context.Context, shard, method, pathQuery string, body []byte, contentType string, timeout time.Duration) shardResult {
	res := shardResult{Shard: shard}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, shard+pathQuery, rd)
	if err != nil {
		res.Err = err
		return res
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		rt.shardErrors.Add(1)
		res.Err = err
		return res
	}
	defer resp.Body.Close() //nolint:errcheck // read side; close errors carry no information
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		rt.shardErrors.Add(1)
		res.Err = err
		return res
	}
	res.Status = resp.StatusCode
	res.Header = resp.Header
	res.Body = b
	return res
}

// scatter fans one request to every shard concurrently, returning results
// indexed by shard. skip >= 0 leaves that slot zero for the caller to fill
// (the owner fast path already holds its result).
func (rt *Router) scatter(ctx context.Context, method, pathQuery string, body []byte, contentType string, timeout time.Duration, skip int) []shardResult {
	out := make([]shardResult, len(rt.shards))
	var wg sync.WaitGroup
	for i, shard := range rt.shards {
		if i == skip {
			continue
		}
		wg.Add(1)
		go func(i int, shard string) {
			defer wg.Done()
			out[i] = rt.call(ctx, shard, method, pathQuery, body, contentType, timeout)
		}(i, shard)
	}
	wg.Wait()
	return out
}

// relay forwards a shard response verbatim: its content type, status, and
// body bytes. This is what keeps routed /v1/cell responses byte-identical
// to single-node ones.
func relay(w http.ResponseWriter, res shardResult) {
	if ct := res.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(res.Status)
	w.Write(res.Body) //nolint:errcheck // client gone; nothing to do
}

// cellProbe is the slice of a shard's /v1/cell JSON body the router needs
// to rank answers: whether the shard answered exactly, and which
// materialized cell sourced the graph.
type cellProbe struct {
	Exact  bool `json:"exact"`
	Source struct {
		Cell string `json:"cell"`
	} `json:"source"`
}

// handleCell answers a flowgraph query by routing to the owning shard and,
// when roll-up inference is needed, scatter-gathering every shard's best
// local answer and keeping the one the single-node BFS would have found
// first. Local validation (format, pathlevel, cell spec) mirrors the
// single-node handler exactly so error responses match byte for byte.
func (rt *Router) handleCell(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	cellSpec := q.Get("cell")
	format := q.Get("format")
	if format == "" {
		format = "json"
	}
	if format != "json" && format != "dot" {
		writeError(w, &httpError{http.StatusBadRequest, fmt.Sprintf("unknown format %q, want json or dot", format)})
		return
	}
	pathLevel := 0
	if pl := q.Get("pathlevel"); pl != "" {
		n, err := strconv.Atoi(pl)
		if err != nil {
			writeError(w, &httpError{http.StatusBadRequest, fmt.Sprintf("bad pathlevel %q", pl)})
			return
		}
		pathLevel = n
	}
	il, values, err := core.ParseCellSpec(rt.meta.Schema, cellSpec)
	if err != nil {
		writeError(w, &httpError{http.StatusBadRequest, err.Error()})
		return
	}
	if pathLevel < 0 || pathLevel >= len(rt.meta.Symbols.PathLevels()) {
		writeError(w, &httpError{http.StatusBadRequest,
			fmt.Sprintf("pathlevel %d out of range, cube has %d path levels", pathLevel, len(rt.meta.Symbols.PathLevels()))})
		return
	}
	spec := core.CuboidSpec{Item: il, PathLevel: pathLevel}

	// Probe in JSON regardless of the requested format: the probe body
	// carries the source cell needed for ranking; a dot body does not. The
	// winner is re-fetched as dot below when asked for.
	probe := "/v1/cell?cell=" + url.QueryEscape(cellSpec) + "&pathlevel=" + strconv.Itoa(pathLevel)
	ctx := r.Context()

	// Owner fast path: the requested cell, if materialized at all, lives on
	// exactly one shard. An exact answer there ends the query — no other
	// shard can beat BFS rank 0.
	owner := rt.part.Owner(values)
	ownerRes := rt.call(ctx, rt.shards[owner], http.MethodGet, probe, nil, "", rt.cfg.ShardTimeout)
	if ownerRes.Err == nil && ownerRes.Status == http.StatusOK {
		var p cellProbe
		if json.Unmarshal(ownerRes.Body, &p) == nil && p.Exact {
			rt.relayCell(w, ctx, ownerRes, format, probe)
			return
		}
	}

	// Roll-up: every shard runs the same BFS over the same lattice, so each
	// returns the globally first-discovered candidate it materializes. The
	// discovery ranks below reproduce core.Cube.QueryGraph's probe order;
	// the minimum rank across shards is exactly the single-node answer.
	results := rt.scatter(ctx, http.MethodGet, probe, nil, "", rt.cfg.ShardTimeout, owner)
	results[owner] = ownerRes
	ranks := bfsRanks(rt.meta, spec, values)
	best, bestRank := -1, 0
	for i, res := range results {
		if res.Err != nil {
			writeError(w, &httpError{http.StatusBadGateway, fmt.Sprintf("shard %s unreachable: %v", res.Shard, res.Err)})
			return
		}
		if res.Status == http.StatusNotFound {
			continue
		}
		if res.Status != http.StatusOK {
			writeError(w, &httpError{http.StatusBadGateway, fmt.Sprintf("shard %s answered status %d", res.Shard, res.Status)})
			return
		}
		var p cellProbe
		if err := json.Unmarshal(res.Body, &p); err != nil {
			writeError(w, &httpError{http.StatusBadGateway, fmt.Sprintf("shard %s answered an unparseable cell response: %v", res.Shard, err)})
			return
		}
		rank, ok := rt.sourceRank(ranks, p.Source.Cell, pathLevel)
		if !ok {
			writeError(w, &httpError{http.StatusBadGateway,
				fmt.Sprintf("shard %s answered from cell %q, which the router's snapshot does not reach from %q", res.Shard, p.Source.Cell, cellSpec)})
			return
		}
		if best < 0 || rank < bestRank {
			best, bestRank = i, rank
		}
	}
	if best < 0 {
		// Every shard searched the whole lattice and found nothing — the
		// single-node answer is the same 404; relay the owner's verbatim.
		relay(w, ownerRes)
		return
	}
	rt.relayCell(w, ctx, results[best], format, probe)
}

// relayCell forwards the winning shard's answer, re-fetching it as dot from
// the same shard when that format was requested (the ranking probe is
// always JSON).
func (rt *Router) relayCell(w http.ResponseWriter, ctx context.Context, res shardResult, format, probe string) {
	if format != "dot" {
		relay(w, res)
		return
	}
	dot := rt.call(ctx, res.Shard, http.MethodGet, probe+"&format=dot", nil, "", rt.cfg.ShardTimeout)
	if dot.Err != nil {
		writeError(w, &httpError{http.StatusBadGateway, fmt.Sprintf("shard %s unreachable: %v", res.Shard, dot.Err)})
		return
	}
	if dot.Status != http.StatusOK {
		writeError(w, &httpError{http.StatusBadGateway, fmt.Sprintf("shard %s answered status %d", dot.Shard, dot.Status)})
		return
	}
	relay(w, dot)
}

// sourceRank resolves a shard's reported source cell to its BFS discovery
// rank: the cell spec names round-trip through the shared schema, and the
// item level is implied by the concept levels (core.ParseCellSpec), exactly
// as the shard derived them.
func (rt *Router) sourceRank(ranks map[string]int, sourceCell string, pathLevel int) (int, bool) {
	il, values, err := core.ParseCellSpec(rt.meta.Schema, sourceCell)
	if err != nil {
		return 0, false
	}
	spec := core.CuboidSpec{Item: il, PathLevel: pathLevel}
	rank, ok := ranks[spec.Key()+"|"+core.CellKey(values)]
	return rank, ok
}

// bfsRanks assigns every cell the breadth-first search could probe its
// discovery rank, reproducing core.Cube.QueryGraph's probe order: the
// requested cell is rank 0, then item-lattice parents in ParentRefs
// enumeration order, level by level, first discovery wins. QueryGraph's
// expansion depends only on the schema and plan — not on which cells are
// materialized — so these ranks are the same on every shard and on the
// router.
func bfsRanks(meta *core.Cube, spec core.CuboidSpec, values []hierarchy.NodeID) map[string]int {
	type ref struct {
		spec   core.CuboidSpec
		values []hierarchy.NodeID
	}
	key := func(s core.CuboidSpec, v []hierarchy.NodeID) string {
		return s.Key() + "|" + core.CellKey(v)
	}
	ranks := map[string]int{key(spec, values): 0}
	frontier := []ref{{spec, values}}
	for len(frontier) > 0 {
		var next []ref
		for _, r := range frontier {
			for _, p := range meta.ParentRefs(r.spec, r.values) {
				k := key(p.Spec, p.Values)
				if _, seen := ranks[k]; seen {
					continue
				}
				ranks[k] = len(ranks)
				next = append(next, ref{p.Spec, p.Values})
			}
		}
		frontier = next
	}
	return ranks
}

// Serve accepts connections on ln until ctx is cancelled, then shuts down
// gracefully, draining in-flight requests bounded by RequestTimeout.
func (rt *Router) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		// WithoutCancel: ctx is already done here; the drain deadline must
		// not inherit its cancellation or Shutdown would return immediately.
		shutdownCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), rt.cfg.RequestTimeout)
		defer cancel()
		err := srv.Shutdown(shutdownCtx)
		<-errc
		return err
	}
}

// ListenAndServe binds addr and calls Serve.
func (rt *Router) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	rt.logger.Printf("routing %d shards on %s", len(rt.shards), ln.Addr())
	return rt.Serve(ctx, ln)
}

// handleMetrics reports the router's own counters; shard-level metrics live
// on the shards.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	routes := make(map[string]map[string]int64)
	rt.mu.Lock()
	for route, rc := range rt.routes {
		routes[route] = map[string]int64{"count": rc.count, "errors": rc.errors}
	}
	rt.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"uptime_seconds": time.Since(rt.start).Seconds(),
		"shards":         rt.shards,
		"shard_errors":   rt.shardErrors.Load(),
		"routes":         routes,
	})
}

// handleHealthz aggregates shard liveness: 200 when every shard answers its
// own /healthz, 503 with per-shard detail otherwise.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	results := rt.scatter(r.Context(), http.MethodGet, "/healthz", nil, "", rt.cfg.ShardTimeout, -1)
	type shardHealth struct {
		Shard  string `json:"shard"`
		Status string `json:"status"`
		Error  string `json:"error,omitempty"`
	}
	out := make([]shardHealth, len(results))
	healthy := 0
	for i, res := range results {
		sh := shardHealth{Shard: res.Shard}
		switch {
		case res.Err != nil:
			sh.Status = "unreachable"
			sh.Error = res.Err.Error()
		case res.Status != http.StatusOK:
			sh.Status = "unhealthy"
			sh.Error = fmt.Sprintf("status %d", res.Status)
		default:
			sh.Status = "ok"
			healthy++
		}
		out[i] = sh
	}
	status, code := "ok", http.StatusOK
	if healthy < len(results) {
		status, code = "degraded", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status": status,
		"source": rt.cfg.Source,
		"shards": out,
	})
}
