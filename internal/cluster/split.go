package cluster

import (
	"fmt"
	"os"
	"path/filepath"

	"flowcube/internal/core"
	"flowcube/internal/hierarchy"
)

// Split carves a materialized cube into shards cubes along the rendezvous
// partitioning of cell keys: shard i holds exactly the cells (and sub-δ
// ledger entries) it owns, with every cuboid still present (possibly empty)
// and the schema, plan, and thresholds replicated. The shards share cell
// pointers with the input (see core.Cube.FilterCells), so they are cheap to
// produce and must be treated as read-only alongside it — typically they
// are saved to per-shard snapshot files right away (WriteShards).
//
// Merge over the result reproduces the original cube: split→merge→Save is
// byte-identical to Save of the input.
func Split(cube *core.Cube, shards int) ([]*core.Cube, error) {
	part, err := NewPartitioner(cube.Schema, shards)
	if err != nil {
		return nil, err
	}
	out := make([]*core.Cube, shards)
	for s := range out {
		shard := s
		out[s] = cube.FilterCells(func(values []hierarchy.NodeID) bool {
			return part.Owner(values) == shard
		})
	}
	return out, nil
}

// Merge reassembles shard cubes (as loaded from per-shard snapshots) into
// one cube; see core.Merge for the compatibility and disjointness rules.
func Merge(shards []*core.Cube) (*core.Cube, error) {
	return core.Merge(shards)
}

// ShardFileName names shard i of n inside a cluster snapshot directory.
func ShardFileName(i, n int) string {
	return fmt.Sprintf("shard-%d-of-%d.fcb", i, n)
}

// WriteShards splits cube into shards per-shard snapshots under dir
// (created if missing) and returns the written paths in shard order.
// Workers parallelizes each snapshot's cuboid encoding, exactly as
// core.SaveWith does; the files are byte-deterministic regardless.
func WriteShards(cube *core.Cube, shards int, dir string, workers int) ([]string, error) {
	cubes, err := Split(cube, shards)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	paths := make([]string, len(cubes))
	for i, sc := range cubes {
		path := filepath.Join(dir, ShardFileName(i, shards))
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		if err := sc.SaveWith(f, core.SaveOptions{Workers: workers}); err != nil {
			f.Close() //nolint:errcheck // save already failed; surface that error
			return nil, fmt.Errorf("cluster: save %s: %w", path, err)
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		paths[i] = path
	}
	return paths, nil
}

// ShardFilter returns a cube filter keeping only the cells shard index (of
// total) owns — the server-side ownership prune a shard applies after an
// append touches combinations it does not own (server.Config.PostAppend).
// The filter builds the partitioner from the cube's own schema, so it keeps
// working across reloads that change the schema shape.
func ShardFilter(index, total int) (func(*core.Cube) *core.Cube, error) {
	if total <= 0 {
		return nil, fmt.Errorf("cluster: shard count %d, want positive", total)
	}
	if index < 0 || index >= total {
		return nil, fmt.Errorf("cluster: shard index %d out of range [0,%d)", index, total)
	}
	return func(c *core.Cube) *core.Cube {
		part, err := NewPartitioner(c.Schema, total)
		if err != nil {
			// Unreachable: total was validated above and NewPartitioner has
			// no other failure mode. Serving an unfiltered cube is still
			// correct, just larger than necessary.
			return c
		}
		return c.FilterCells(func(values []hierarchy.NodeID) bool {
			return part.Owner(values) == index
		})
	}, nil
}
