package cluster

// Routed /v2/query: the OLAP cell query over a shard fleet. A materialized
// cell lives on exactly one shard (owner fast path, as /v1/cell). A cell of
// a planner-dropped cuboid is different: its fold sources — the cells of a
// materialized descendant cuboid — are scattered across shards, so no shard
// can certify the census locally and each refuses to reconstruct. The
// router runs the reconstruction itself: it scatters GET /v2/partial,
// merges each descendant cuboid's per-shard slices, and folds the first
// cuboid whose summed counts match the census — the same exactness
// certificate core.ReconstructCell applies on one node, so a scattered fold
// is either exact or refused. Refused folds fall back to the ancestor
// scatter, ranked exactly like /v1/cell.
//
// Only op=cell is routed; the multi-cell ops (drilldown, slice, dice) need
// cross-shard cell enumeration the router does not implement — they answer
// 501. op=rollup is resolved to its target cell locally (pure schema
// navigation on the metadata snapshot) and routed as that cell query, so a
// routed roll-up body echoes op "cell".

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"

	"flowcube/internal/core"
	"flowcube/internal/flowgraph"
	"flowcube/internal/hierarchy"
	"flowcube/internal/olap"
	"flowcube/internal/server"
)

// queryProbe is the slice of a shard's /v2/query body the router needs for
// relay decisions and ancestor ranking.
type queryProbe struct {
	Cells []struct {
		Provenance string `json:"provenance"`
		Source     struct {
			Cell string `json:"cell"`
		} `json:"source"`
	} `json:"cells"`
}

// handleQueryV2 routes one OLAP cell query.
func (rt *Router) handleQueryV2(w http.ResponseWriter, r *http.Request) {
	q, err := olap.ParseQuery(rt.meta, r.URL.Query())
	if err != nil {
		writeError(w, &httpError{http.StatusBadRequest, err.Error()})
		return
	}
	if q.Op != core.OpCell && q.Op != core.OpRollUp {
		writeError(w, &httpError{http.StatusNotImplemented,
			fmt.Sprintf("op %s is not implemented by the cluster router; use op=cell or query a shard directly", q.Op)})
		return
	}
	spec, values := q.Spec, q.Values
	if q.Op == core.OpRollUp {
		// Resolve the roll-up locally (pure schema navigation) and route the
		// resulting cell query.
		var ra *core.Answer
		ra, err = rollUpTarget(rt.meta, q)
		if err != nil {
			writeError(w, &httpError{http.StatusBadRequest, err.Error()})
			return
		}
		spec, values = ra.Query.Spec, ra.Query.Values
	}

	probe := "/v2/query?op=cell&cell=" + url.QueryEscape(core.FormatCell(rt.meta.Schema, values)) +
		"&pathlevel=" + strconv.Itoa(spec.PathLevel)
	if q.NoCompute {
		probe += "&nocompute=1"
	}
	ctx := r.Context()

	// Owner fast path: a materialized answer for the requested cell can only
	// come from its owner shard.
	owner := rt.part.Owner(values)
	ownerRes := rt.call(ctx, rt.shards[owner], http.MethodGet, probe, nil, "", rt.cfg.ShardTimeout)
	if ownerRes.Err == nil && ownerRes.Status == http.StatusOK {
		var p queryProbe
		if json.Unmarshal(ownerRes.Body, &p) == nil && len(p.Cells) == 1 && p.Cells[0].Provenance == "materialized" {
			relay(w, ownerRes)
			return
		}
	}

	// Router-side reconstruction from scattered descendants. Marshaled
	// exactly as server.computeQueryV2 marshals (MarshalIndent, no trailing
	// newline) so routed computed bodies are byte-identical to single-node
	// ones.
	if !q.NoCompute {
		if resp, ok := rt.foldPartials(ctx, spec, values); ok {
			body, err := json.MarshalIndent(resp, "", "  ")
			if err != nil {
				writeError(w, err)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			w.Write(body) //nolint:errcheck
			return
		}
	}

	// Ancestor fallback: every shard answers its best local inference (a
	// shard that can certify a reconstruction locally answers computed for
	// the cell itself, rank 0); the minimum BFS discovery rank across shards
	// is the single-node answer.
	results := rt.scatter(ctx, http.MethodGet, probe, nil, "", rt.cfg.ShardTimeout, owner)
	results[owner] = ownerRes
	ranks := bfsRanks(rt.meta, spec, values)
	best, bestRank := -1, 0
	for i, res := range results {
		if res.Err != nil {
			writeError(w, &httpError{http.StatusBadGateway, fmt.Sprintf("shard %s unreachable: %v", res.Shard, res.Err)})
			return
		}
		if res.Status == http.StatusNotFound {
			continue
		}
		if res.Status != http.StatusOK {
			writeError(w, &httpError{http.StatusBadGateway, fmt.Sprintf("shard %s answered status %d", res.Shard, res.Status)})
			return
		}
		var p queryProbe
		if err := json.Unmarshal(res.Body, &p); err != nil || len(p.Cells) != 1 {
			writeError(w, &httpError{http.StatusBadGateway, fmt.Sprintf("shard %s answered an unparseable query response", res.Shard)})
			return
		}
		rank, ok := rt.sourceRank(ranks, p.Cells[0].Source.Cell, spec.PathLevel)
		if !ok {
			writeError(w, &httpError{http.StatusBadGateway,
				fmt.Sprintf("shard %s answered from cell %q, which the router's snapshot does not reach", res.Shard, p.Cells[0].Source.Cell)})
			return
		}
		if best < 0 || rank < bestRank {
			best, bestRank = i, rank
		}
	}
	if best < 0 {
		relay(w, ownerRes)
		return
	}
	relay(w, results[best])
}

// rollUpTarget resolves a roll-up to the cell it queries using only schema
// metadata: Answer on the cell-less meta cube never finds a materialized
// cell, but validateQuery plus the roll-up navigation run first, and the
// navigated target is echoed in the returned error-free query. To keep the
// meta cube pure we re-derive the target with the exported pieces instead.
func rollUpTarget(meta *core.Cube, q core.Query) (*core.Answer, error) {
	spec, values, err := meta.RollUpRef(q.Spec, q.Values, q.Dim)
	if err != nil {
		return nil, err
	}
	return &core.Answer{Query: core.Query{Op: core.OpCell, Spec: spec, Values: values, NoCompute: q.NoCompute}}, nil
}

// foldPartials scatters /v2/partial and reconstructs the cell when the
// shards' slices certify it: the requested cuboid is materialized nowhere,
// a census count exists, and some descendant cuboid's counts sum to it.
func (rt *Router) foldPartials(ctx context.Context, spec core.CuboidSpec, values []hierarchy.NodeID) (server.QueryResponse, bool) {
	pu := "/v2/partial?cell=" + url.QueryEscape(core.FormatCell(rt.meta.Schema, values)) +
		"&pathlevel=" + strconv.Itoa(spec.PathLevel)
	results := rt.scatter(ctx, http.MethodGet, pu, nil, "", rt.cfg.ShardTimeout, -1)

	census := int64(-1)
	type slice struct {
		unusable bool
		cells    []server.PartialCellJSON
	}
	bySpec := map[string]*slice{}
	var order []string
	for _, res := range results {
		if res.Err != nil || res.Status != http.StatusOK {
			// A shard the fold might need is unreachable or refused; the
			// certificate cannot be established. Fall back.
			return server.QueryResponse{}, false
		}
		var p server.PartialResponse
		if err := json.Unmarshal(res.Body, &p); err != nil {
			return server.QueryResponse{}, false
		}
		if p.Materialized {
			// The cuboid is materialized: the compute gate does not fire on
			// any node, and neither may the router.
			return server.QueryResponse{}, false
		}
		if p.Census > census {
			census = p.Census
		}
		for _, d := range p.Descendants {
			s := bySpec[d.Cuboid]
			if s == nil {
				s = &slice{}
				bySpec[d.Cuboid] = s
				order = append(order, d.Cuboid)
			}
			if d.Unusable {
				s.unusable = true
			}
			s.cells = append(s.cells, d.Cells...)
		}
	}
	if census < 0 {
		return server.QueryResponse{}, false
	}
	// Each shard lists descendants in the shared nearest-first lattice order,
	// but a shard omits cuboids it holds no matching cells of, so the
	// first-appearance merge order can diverge from it. Re-rank by ladder
	// distance (ties by key) — exactly DescendantSpecs' order — so the router
	// folds the same cuboid a single node would.
	dist := make(map[string]int, len(order))
	for _, key := range order {
		dist[key] = 1 << 30
		if ds, err := core.ParseCuboidKey(key); err == nil {
			if d, ok := rt.meta.LatticeDist(spec, ds); ok {
				dist[key] = d
			}
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if dist[order[i]] != dist[order[j]] {
			return dist[order[i]] < dist[order[j]]
		}
		return order[i] < order[j]
	})
	for _, key := range order {
		s := bySpec[key]
		if s.unusable || len(s.cells) == 0 {
			continue
		}
		var sum int64
		for _, c := range s.cells {
			sum += c.Count
		}
		if sum != census {
			continue
		}
		ds, err := core.ParseCuboidKey(key)
		if err != nil {
			continue
		}
		type entry struct {
			key    string
			values []hierarchy.NodeID
			graph  *flowgraph.Graph
		}
		entries := make([]entry, 0, len(s.cells))
		ok := true
		for _, c := range s.cells {
			g, err := rt.meta.DecodeGraph(ds.PathLevel, c.Graph)
			if err != nil {
				ok = false
				break
			}
			_, cv, err := core.ParseCellSpec(rt.meta.Schema, c.Cell)
			if err != nil {
				ok = false
				break
			}
			entries = append(entries, entry{core.CellKey(cv), cv, g})
		}
		if !ok {
			continue
		}
		// A shard enumerates its slice in cell-key order, but the merge
		// concatenates slices in shard order; re-sorting restores the order a
		// single node folds in, so the routed body is byte-identical to the
		// single-node one (the fold itself is order-independent).
		sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
		graphs := make([]*flowgraph.Graph, 0, len(entries))
		folded := make([]core.CellRef, 0, len(entries))
		for _, e := range entries {
			graphs = append(graphs, e.graph)
			folded = append(folded, core.CellRef{Spec: ds, Values: e.values})
		}
		g, err := flowgraph.Fold(graphs)
		if err != nil {
			continue
		}
		ca := core.CellAnswer{
			Spec:       spec,
			Values:     values,
			Provenance: core.ComputedFromDescendants,
			Exact:      true,
			SourceSpec: spec,
			Source: &core.Cell{
				Values:     values,
				Count:      census,
				Graph:      g,
				Similarity: core.SimilarityUnknown,
			},
			Folded: folded,
			Graph:  g,
		}
		a := &core.Answer{
			Query: core.Query{Op: core.OpCell, Spec: spec, Values: values},
			Cells: []core.CellAnswer{ca},
		}
		return server.RenderQueryResponse(rt.meta, a), true
	}
	return server.QueryResponse{}, false
}
