package cluster_test

import (
	"bytes"
	"crypto/sha256"
	"os"
	"path/filepath"
	"testing"

	"flowcube/internal/cluster"
	"flowcube/internal/core"
	"flowcube/internal/paperex"
	"flowcube/internal/pathdb"
	"flowcube/internal/transact"
)

// buildClusterCube materializes the paper's running example with every
// persisted feature on (ledger, exceptions, redundancy marks), the
// worst-case payload a split has to carry.
func buildClusterCube(t testing.TB) (*paperex.Example, *core.Cube) {
	t.Helper()
	ex := paperex.New()
	cube, err := core.Build(ex.DB, core.Config{
		MinCount: 2,
		Epsilon:  0.1,
		Tau:      0.5,
		Plan: transact.Plan{PathLevels: []pathdb.PathLevel{
			ex.BasePathLevel(),
			ex.TransportPathLevel(),
		}},
		MineExceptions:        true,
		SingleStageExceptions: true,
		DeltaLedger:           true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cube.MarkRedundancy(0.5)
	return ex, cube
}

// saveDigest serializes a cube and hashes the snapshot bytes.
func saveDigest(t testing.TB, cube *core.Cube) [32]byte {
	t.Helper()
	var buf bytes.Buffer
	if err := cube.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return sha256.Sum256(buf.Bytes())
}

// TestSplitMergeRestoresSaveDigest is the splitter's round-trip contract
// for every practical shard count: split, merge, and the merged cube saves
// to exactly the original snapshot bytes (the byte-determinism machinery of
// core's TestSaveIsByteDeterministic makes digest equality meaningful).
func TestSplitMergeRestoresSaveDigest(t *testing.T) {
	_, cube := buildClusterCube(t)
	want := saveDigest(t, cube)

	for _, shards := range []int{1, 2, 3, 4, 8} {
		parts, err := cluster.Split(cube, shards)
		if err != nil {
			t.Fatal(err)
		}
		if len(parts) != shards {
			t.Fatalf("Split(%d) returned %d parts", shards, len(parts))
		}
		total := 0
		for _, p := range parts {
			total += p.NumCells()
		}
		if total != cube.NumCells() {
			t.Fatalf("%d shards hold %d cells in total, original has %d", shards, total, cube.NumCells())
		}
		merged, err := cluster.Merge(parts)
		if err != nil {
			t.Fatalf("merge %d shards: %v", shards, err)
		}
		if got := saveDigest(t, merged); got != want {
			t.Fatalf("%d shards: merged snapshot digest %x, want %x", shards, got, want)
		}
	}
}

// TestWriteShardsRoundTrips checks the on-disk path flowshard drives: shard
// files load back as cubes that merge into the original snapshot bytes.
func TestWriteShardsRoundTrips(t *testing.T) {
	_, cube := buildClusterCube(t)
	dir := t.TempDir()
	files, err := cluster.WriteShards(cube, 3, dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 3 {
		t.Fatalf("WriteShards wrote %d files, want 3", len(files))
	}
	if got, want := files[1], filepath.Join(dir, cluster.ShardFileName(1, 3)); got != want {
		t.Fatalf("shard file %q, want %q", got, want)
	}
	parts := make([]*core.Cube, len(files))
	for i, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		parts[i], err = core.Load(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
	}
	merged, err := cluster.Merge(parts)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := saveDigest(t, merged), saveDigest(t, cube); got != want {
		t.Fatalf("merged shard files digest %x, want %x", got, want)
	}
}

// TestShardFilterKeepsOwnedCells checks the append-prune hook: filtering
// the full cube with every shard's filter reproduces the split exactly.
func TestShardFilterKeepsOwnedCells(t *testing.T) {
	_, cube := buildClusterCube(t)
	parts, err := cluster.Split(cube, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range parts {
		filter, err := cluster.ShardFilter(i, 3)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := saveDigest(t, filter(cube)), saveDigest(t, parts[i]); got != want {
			t.Fatalf("ShardFilter(%d, 3) digest %x, split shard has %x", i, got, want)
		}
	}
	if _, err := cluster.ShardFilter(3, 3); err == nil {
		t.Fatal("ShardFilter(3, 3) succeeded, want a range error")
	}
	if _, err := cluster.ShardFilter(-1, 3); err == nil {
		t.Fatal("ShardFilter(-1, 3) succeeded, want a range error")
	}
}
