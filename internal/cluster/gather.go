package cluster

// Scatter-gather reads and fan-out writes: the census endpoints
// (/v1/cuboids, /v1/summary) merge per-shard counts positionally over the
// validated common cuboid lattice, /v1/exceptions re-ranks the union of
// per-shard top-k lists with the exact single-node comparator, and
// /admin/append fans the batch to every shard with all-or-nothing
// reporting. Census and exception reads degrade to the responding subset
// (flagged via the X-Cluster-Partial header) when shards are down; cell
// queries and appends never degrade — a missing shard could hide the
// answer, or diverge the fleet.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"flowcube/internal/core"
	"flowcube/internal/hierarchy"
	"flowcube/internal/pathdb"
	"flowcube/internal/server"
)

// Validate scatters /v1/cuboids and checks that every shard serves a split
// of the router's snapshot: same iceberg threshold, dimensions, path
// levels, and materialized cuboid lattice. Call it once at startup — a
// shard fleet pointed at the wrong snapshot fails loudly here instead of
// answering subtly wrong merges.
func (rt *Router) Validate(ctx context.Context) error {
	parsed, results := rt.scatterCuboids(ctx)
	var first *server.CuboidsResponse
	for i, p := range parsed {
		if results[i].Err != nil {
			return fmt.Errorf("cluster: shard %s unreachable: %w", results[i].Shard, results[i].Err)
		}
		if p == nil {
			return fmt.Errorf("cluster: shard %s answered status %d to /v1/cuboids", results[i].Shard, results[i].Status)
		}
		if err := rt.checkShardCensus(p); err != nil {
			return fmt.Errorf("cluster: shard %s: %w", results[i].Shard, err)
		}
		if first == nil {
			first = p
			continue
		}
		if err := alignedCensus(first.Cuboids, p.Cuboids); err != nil {
			return fmt.Errorf("cluster: shard %s: %w", results[i].Shard, err)
		}
	}
	return nil
}

// checkShardCensus compares one shard's census header against the router's
// snapshot metadata.
func (rt *Router) checkShardCensus(p *server.CuboidsResponse) error {
	if p.MinCount != rt.meta.MinCount() {
		return fmt.Errorf("min count %d, router snapshot has %d", p.MinCount, rt.meta.MinCount())
	}
	if want := len(rt.meta.Symbols.PathLevels()); p.PathLevels != want {
		return fmt.Errorf("%d path levels, router snapshot has %d", p.PathLevels, want)
	}
	if want := len(rt.meta.Schema.Dims); len(p.Dimensions) != want {
		return fmt.Errorf("%d dimensions, router snapshot has %d", len(p.Dimensions), want)
	}
	for d, h := range rt.meta.Schema.Dims {
		if p.Dimensions[d] != h.Dimension() {
			return fmt.Errorf("dimension %d is %q, router snapshot has %q", d, p.Dimensions[d], h.Dimension())
		}
	}
	return nil
}

// alignedCensus checks two shard censuses list the same cuboids in the same
// (sorted) order, which is what lets merges sum them positionally.
func alignedCensus(a, b []server.CuboidJSON) error {
	if len(a) != len(b) {
		return fmt.Errorf("%d cuboids, other shards have %d", len(b), len(a))
	}
	for i := range a {
		if a[i].Key != b[i].Key {
			return fmt.Errorf("cuboid %d is %s, other shards have %s", i, b[i].Key, a[i].Key)
		}
	}
	return nil
}

// scatterCuboids fetches and parses every shard's /v1/cuboids. parsed[i] is
// nil when shard i failed (transport error or non-200); results[i] has the
// detail.
func (rt *Router) scatterCuboids(ctx context.Context) ([]*server.CuboidsResponse, []shardResult) {
	results := rt.scatter(ctx, http.MethodGet, "/v1/cuboids", nil, "", rt.cfg.ShardTimeout, -1)
	parsed := make([]*server.CuboidsResponse, len(results))
	for i, res := range results {
		if res.Err != nil || res.Status != http.StatusOK {
			continue
		}
		var p server.CuboidsResponse
		if err := json.Unmarshal(res.Body, &p); err != nil {
			results[i].Err = fmt.Errorf("unparseable cuboids response: %w", err)
			continue
		}
		parsed[i] = &p
	}
	return parsed, results
}

// mergedCensus is the per-cuboid sum over responding shards plus which
// shards were missing.
type mergedCensus struct {
	cuboids  []server.CuboidJSON
	cells    int
	loadedAt string
	failed   []string
}

// mergeCensus sums responding shards' censuses positionally. It fails when
// no shard responds or when responders disagree on the cuboid lattice
// (mid-rollout fleets must not be silently averaged).
func (rt *Router) mergeCensus(parsed []*server.CuboidsResponse, results []shardResult) (*mergedCensus, error) {
	m := &mergedCensus{}
	var base *server.CuboidsResponse
	for i, p := range parsed {
		if p == nil {
			m.failed = append(m.failed, results[i].Shard)
			continue
		}
		if base == nil {
			base = p
			m.cuboids = make([]server.CuboidJSON, len(p.Cuboids))
			for j, c := range p.Cuboids {
				m.cuboids[j] = server.CuboidJSON{Key: c.Key, ItemLevel: c.ItemLevel, PathLevel: c.PathLevel}
			}
		} else if err := alignedCensus(base.Cuboids, p.Cuboids); err != nil {
			return nil, fmt.Errorf("shard %s: %w", results[i].Shard, err)
		}
		for j, c := range p.Cuboids {
			m.cuboids[j].Cells += c.Cells
			m.cuboids[j].Redundant += c.Redundant
		}
		m.cells += p.Cells
		if p.LoadedAt > m.loadedAt {
			// The fixed "2006-01-02T15:04:05Z" layout sorts lexicographically,
			// so the max string is the most recent shard load.
			m.loadedAt = p.LoadedAt
		}
	}
	if base == nil {
		var detail []string
		for i, res := range results {
			if parsed[i] != nil {
				continue
			}
			if res.Err != nil {
				detail = append(detail, fmt.Sprintf("%s: %v", res.Shard, res.Err))
			} else {
				detail = append(detail, fmt.Sprintf("%s: status %d", res.Shard, res.Status))
			}
		}
		return nil, fmt.Errorf("no shard answered the census scatter (%s)", strings.Join(detail, "; "))
	}
	return m, nil
}

// partial marks a degraded response, listing the shards that did not
// contribute.
func partial(w http.ResponseWriter, failed []string) {
	if len(failed) > 0 {
		w.Header().Set(PartialHeader, strings.Join(failed, ", "))
	}
}

// handleCuboids serves the merged cuboid census in the single-node
// response shape.
func (rt *Router) handleCuboids(w http.ResponseWriter, r *http.Request) {
	parsed, results := rt.scatterCuboids(r.Context())
	m, err := rt.mergeCensus(parsed, results)
	if err != nil {
		writeError(w, &httpError{http.StatusBadGateway, err.Error()})
		return
	}
	resp := server.CuboidsResponse{
		Source:     rt.cfg.Source,
		LoadedAt:   m.loadedAt,
		PathLevels: len(rt.meta.Symbols.PathLevels()),
		MinCount:   rt.meta.MinCount(),
		Cells:      m.cells,
		Cuboids:    m.cuboids,
	}
	for _, h := range rt.meta.Schema.Dims {
		resp.Dimensions = append(resp.Dimensions, h.Dimension())
	}
	partial(w, m.failed)
	writeJSON(w, http.StatusOK, resp)
}

// handleSummary rebuilds the single-node /v1/summary body from the merged
// census: same field derivations, same largest-cuboid ordering and cap as
// server.renderSummary, so the output is byte-identical to a single server
// over the unsplit cube (source and loaded_at aside).
func (rt *Router) handleSummary(w http.ResponseWriter, r *http.Request) {
	parsed, results := rt.scatterCuboids(r.Context())
	m, err := rt.mergeCensus(parsed, results)
	if err != nil {
		writeError(w, &httpError{http.StatusBadGateway, err.Error()})
		return
	}
	resp := server.SummaryResponse{
		Source:     rt.cfg.Source,
		LoadedAt:   m.loadedAt,
		PathLevels: len(rt.meta.Symbols.PathLevels()),
		MinCount:   rt.meta.MinCount(),
		Cuboids:    len(m.cuboids),
		Cells:      m.cells,
	}
	for _, h := range rt.meta.Schema.Dims {
		resp.Dimensions = append(resp.Dimensions, h.Dimension())
	}
	for _, c := range m.cuboids {
		if c.Cells == 0 {
			continue
		}
		resp.Largest = append(resp.Largest, c)
	}
	sort.Slice(resp.Largest, func(i, j int) bool {
		if resp.Largest[i].Cells != resp.Largest[j].Cells {
			return resp.Largest[i].Cells > resp.Largest[j].Cells
		}
		return resp.Largest[i].Key < resp.Largest[j].Key
	})
	if len(resp.Largest) > 20 {
		resp.Largest = resp.Largest[:20]
	}
	partial(w, m.failed)
	writeJSON(w, http.StatusOK, resp)
}

// exceptionItem carries one shard exception with the keys its global
// ordering needs.
type exceptionItem struct {
	x         server.ExceptionJSON
	cuboidKey string
	cellKey   string
	severity  float64
	shardPos  int
}

// handleExceptions merges per-shard top-k exception lists into the global
// top k. Every exception belongs to exactly one shard (its cell's owner)
// and per-shard ranking equals global ranking restricted to that shard, so
// the union of per-shard top-k lists contains the global top k. The merge
// reproduces the single-node order exactly: items are arranged in the cube
// visit order core.TopExceptions starts from (cuboid key, then cell key,
// then per-cell mining order — preserved inside each shard's stable-sorted
// list), then stable-sorted with the same comparator.
func (rt *Router) handleExceptions(w http.ResponseWriter, r *http.Request) {
	k := 20
	if kq := r.URL.Query().Get("k"); kq != "" {
		n, err := strconv.Atoi(kq)
		if err != nil || n < 0 {
			writeError(w, &httpError{http.StatusBadRequest, fmt.Sprintf("bad k %q", kq)})
			return
		}
		k = n
	}
	results := rt.scatter(r.Context(), http.MethodGet, "/v1/exceptions?k="+strconv.Itoa(k), nil, "", rt.cfg.ShardTimeout, -1)
	var items []exceptionItem
	var failed []string
	responded := 0
	for _, res := range results {
		if res.Err != nil || res.Status != http.StatusOK {
			failed = append(failed, res.Shard)
			continue
		}
		var body struct {
			Exceptions []server.ExceptionJSON `json:"exceptions"`
		}
		if err := json.Unmarshal(res.Body, &body); err != nil {
			writeError(w, &httpError{http.StatusBadGateway, fmt.Sprintf("shard %s answered an unparseable exceptions response: %v", res.Shard, err)})
			return
		}
		responded++
		for pos, x := range body.Exceptions {
			ck, err := rt.exceptionCellKey(x)
			if err != nil {
				writeError(w, &httpError{http.StatusBadGateway, fmt.Sprintf("shard %s: %v", res.Shard, err)})
				return
			}
			sev := x.DurationDeviation
			if x.TransitionDeviation > sev {
				sev = x.TransitionDeviation
			}
			items = append(items, exceptionItem{x: x, cuboidKey: x.Cuboid, cellKey: ck, severity: sev, shardPos: pos})
		}
	}
	if responded == 0 {
		writeError(w, &httpError{http.StatusBadGateway, "no shard answered the exceptions scatter"})
		return
	}
	// Visit-order arrangement. Same-cell items share a shard, and that
	// shard's stable sort preserved their mining order among ties, so shard
	// position is a faithful within-cell tiebreak.
	sort.SliceStable(items, func(i, j int) bool {
		if items[i].cuboidKey != items[j].cuboidKey {
			return items[i].cuboidKey < items[j].cuboidKey
		}
		if items[i].cellKey != items[j].cellKey {
			return items[i].cellKey < items[j].cellKey
		}
		return items[i].shardPos < items[j].shardPos
	})
	// The exact core.Cube.TopExceptions comparator, over JSON-round-tripped
	// floats (Go's encoder emits the shortest representation that parses
	// back to the same float64, so comparisons agree with the shard's).
	sort.SliceStable(items, func(i, j int) bool {
		si, sj := items[i].severity, items[j].severity
		if si > sj {
			return true
		}
		if sj > si {
			return false
		}
		return items[i].x.Support > items[j].x.Support
	})
	if k > 0 && len(items) > k {
		items = items[:k]
	}
	out := make([]server.ExceptionJSON, 0, len(items))
	for _, it := range items {
		out = append(out, it.x)
	}
	partial(w, failed)
	writeJSON(w, http.StatusOK, map[string]any{
		"exceptions": out,
	})
}

// exceptionCellKey resolves an exception's rendered cell names back to the
// canonical cell key its global visit order sorts by.
func (rt *Router) exceptionCellKey(x server.ExceptionJSON) (string, error) {
	if len(x.Cell) != len(rt.meta.Schema.Dims) {
		return "", fmt.Errorf("exception cell has %d values, schema has %d dimensions", len(x.Cell), len(rt.meta.Schema.Dims))
	}
	values := make([]hierarchy.NodeID, len(x.Cell))
	for d, name := range x.Cell {
		id, ok := rt.meta.Schema.Dims[d].Lookup(name)
		if !ok {
			return "", fmt.Errorf("exception cell names unknown %s concept %q", rt.meta.Schema.Dims[d].Dimension(), name)
		}
		values[d] = id
	}
	return core.CellKey(values), nil
}

// handleAppend validates the batch against the router's schema and fans it
// to every shard: each shard folds the full batch into its replicated
// database and keeps only the cells it owns (server.Config.PostAppend with
// ShardFilter). Reporting is all-or-nothing — any shard failure answers 502
// with per-shard detail, because a partially applied batch leaves the fleet
// divergent until it is re-split.
func (rt *Router) handleAppend(w http.ResponseWriter, r *http.Request) {
	if rt.meta.Config.Tau > 0 {
		writeError(w, &httpError{http.StatusConflict,
			"cluster append is not supported with redundancy marking (tau > 0): re-marking needs item-lattice parents that live on other shards; rebuild and re-split instead"})
		return
	}
	// Reject garbage before any shard sees it: a batch that fails to parse
	// here would fail on every shard, and fanning it out just multiplies the
	// error. The schema is replicated, so parsing against the router's copy
	// is authoritative. Parsing THROUGH MaxBytesReader — rather than sizing
	// the body first — reproduces the single node's error precedence
	// exactly: a parse failure on the truncated prefix answers 400 before
	// the size violation answers 413. The tee captures the body for the
	// shard fan-out below.
	var buf bytes.Buffer
	batchDB, err := pathdb.Read(io.TeeReader(http.MaxBytesReader(w, r.Body, rt.cfg.MaxAppendBytes), &buf), rt.meta.Schema)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, &httpError{http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds the %d-byte append limit", mbe.Limit)})
			return
		}
		writeError(w, &httpError{http.StatusBadRequest, err.Error()})
		return
	}
	body := buf.Bytes()
	if batchDB.Len() == 0 {
		writeError(w, &httpError{http.StatusBadRequest,
			"empty batch: body must hold at least one record line (dim,...|loc:dur ...)"})
		return
	}

	// No per-shard timeout: cutting a shard off mid-append guarantees the
	// divergence the all-or-nothing report exists to flag. The client's
	// request context still bounds the whole fan-out.
	results := rt.scatter(r.Context(), http.MethodPost, "/admin/append", body, "text/plain; charset=utf-8", 0, -1)
	type shardReport struct {
		Shard    string          `json:"shard"`
		Status   int             `json:"status,omitempty"`
		Response json.RawMessage `json:"response,omitempty"`
		Error    string          `json:"error,omitempty"`
	}
	reports := make([]shardReport, len(results))
	ok := 0
	for i, res := range results {
		sr := shardReport{Shard: res.Shard, Status: res.Status}
		switch {
		case res.Err != nil:
			sr.Error = res.Err.Error()
		case res.Status != http.StatusOK:
			sr.Error = string(res.Body)
		default:
			sr.Response = json.RawMessage(res.Body)
			ok++
		}
		reports[i] = sr
	}
	if ok != len(results) {
		writeJSON(w, http.StatusBadGateway, map[string]any{
			"error":  fmt.Sprintf("append applied on %d of %d shards; the fleet may be divergent — re-split the snapshot before trusting merged answers", ok, len(results)),
			"shards": reports,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "appended",
		"records": batchDB.Len(),
		"shards":  reports,
	})
}

// handleReload fans POST /admin/reload to every shard with the same
// all-or-nothing reporting as append.
func (rt *Router) handleReload(w http.ResponseWriter, r *http.Request) {
	results := rt.scatter(r.Context(), http.MethodPost, "/admin/reload", nil, "", 0, -1)
	type shardReport struct {
		Shard    string          `json:"shard"`
		Status   int             `json:"status,omitempty"`
		Response json.RawMessage `json:"response,omitempty"`
		Error    string          `json:"error,omitempty"`
	}
	reports := make([]shardReport, len(results))
	ok := 0
	for i, res := range results {
		sr := shardReport{Shard: res.Shard, Status: res.Status}
		switch {
		case res.Err != nil:
			sr.Error = res.Err.Error()
		case res.Status != http.StatusOK:
			sr.Error = string(res.Body)
		default:
			sr.Response = json.RawMessage(res.Body)
			ok++
		}
		reports[i] = sr
	}
	status, code := "reloaded", http.StatusOK
	if ok != len(results) {
		status, code = "partial", http.StatusBadGateway
	}
	writeJSON(w, code, map[string]any{
		"status": status,
		"shards": reports,
	})
}
