// Package cluster shards a materialized flowcube across processes (see
// DESIGN.md §10): a rendezvous-hashing partitioner over packed cell keys, a
// snapshot splitter that carves one v2 snapshot into per-shard snapshots
// along the per-cuboid section framing, and a stateless scatter-gather
// router that presents the shard fleet behind the single-node HTTP API.
package cluster

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/bits"

	"flowcube/internal/hierarchy"
	"flowcube/internal/pathdb"
)

// Partitioner maps a cell's per-dimension values to the shard that owns it.
// The domain is the same packed cell key the assignment scan uses
// (internal/core/assign.go): per-dimension node ids packed into one uint64
// when the schema's combined bit width fits, a 4-byte-per-dimension FNV-1a
// hash otherwise. Ownership is decided by rendezvous (highest-random-weight)
// hashing: each shard scores the key through its own salt and the highest
// score wins. The mapping is a pure function of (schema shape, shard count,
// values) — no state, so every process that builds a Partitioner with the
// same inputs agrees, across restarts and across machines.
//
// Cell values uniquely encode their item abstraction level (a dimension
// aggregated to '*' holds hierarchy.Root, and distinct levels occupy
// disjoint id ranges), so hashing values alone keeps a cell and its sub-δ
// ledger entry — which carries no cuboid spec — on the same shard.
type Partitioner struct {
	shards int
	packed bool
	shifts []uint
	salts  []uint64
}

// NewPartitioner builds the partitioner for a schema and shard count.
func NewPartitioner(schema *pathdb.Schema, shards int) (*Partitioner, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("cluster: shard count %d, want positive", shards)
	}
	p := &Partitioner{shards: shards, shifts: make([]uint, len(schema.Dims))}
	total := uint(0)
	for d, h := range schema.Dims {
		w := uint(bits.Len(uint(h.Len() - 1)))
		if w == 0 {
			w = 1
		}
		p.shifts[d] = total
		total += w
	}
	p.packed = total <= 64
	p.salts = make([]uint64, shards)
	for s := range p.salts {
		p.salts[s] = mix64(uint64(s) + 1)
	}
	return p, nil
}

// Shards reports the shard count the partitioner was built for.
func (p *Partitioner) Shards() int { return p.shards }

// Key reduces per-dimension values to the 64-bit hashing domain: the packed
// cell key when it fits, an FNV-1a hash of the fixed-width binary key
// otherwise. Injective in the packed case, which is every realistic schema.
func (p *Partitioner) Key(values []hierarchy.NodeID) uint64 {
	if p.packed {
		var key uint64
		for d, v := range values {
			key |= uint64(uint32(v)) << p.shifts[d]
		}
		return key
	}
	h := fnv.New64a()
	var buf [4]byte
	for _, v := range values {
		binary.LittleEndian.PutUint32(buf[:], uint32(v))
		h.Write(buf[:]) //nolint:errcheck // hash.Hash Write never fails
	}
	return h.Sum64()
}

// Owner returns the shard index owning the cell with these values.
func (p *Partitioner) Owner(values []hierarchy.NodeID) int {
	return p.OwnerKey(p.Key(values))
}

// OwnerKey returns the shard owning a 64-bit cell key: the rendezvous
// winner, i.e. the shard whose salted mix of the key scores highest (lowest
// index breaks ties). Removing or adding one shard moves only the keys that
// shard wins — the classic HRW stability property.
func (p *Partitioner) OwnerKey(key uint64) int {
	best := 0
	bestScore := mix64(key ^ p.salts[0])
	for s := 1; s < p.shards; s++ {
		if score := mix64(key ^ p.salts[s]); score > bestScore {
			best, bestScore = s, score
		}
	}
	return best
}

// mix64 is the splitmix64 finalizer: a cheap, well-dispersed bijection on
// uint64 used both to derive per-shard salts and to score keys. Fixed
// constants keep the shard mapping stable across builds and platforms.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
