// Package zipf provides a deterministic Zipf-distributed sampler over a
// finite integer domain [0, n).
//
// The FlowCube paper (§6.1) draws the values for concept-hierarchy levels,
// stage locations and stage durations from a Zipf distribution with a
// varying skew parameter alpha to simulate different degrees of data skew.
// The standard library's math/rand Zipf requires s > 1; the paper sweeps
// alpha through values at and below 1, so we implement the classic
// finite-domain Zipf by inverse-transform sampling over the exact CDF.
package zipf

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Zipf samples ranks in [0, N) with P(k) proportional to 1/(k+1)^Alpha.
// Alpha = 0 degenerates to the uniform distribution. The zero value is not
// usable; construct with New.
type Zipf struct {
	n   int
	cdf []float64
	rng *rand.Rand
}

// New returns a Zipf sampler over [0, n) with skew alpha >= 0, driven by the
// given source. It panics if n <= 0 or alpha < 0, which indicate programmer
// error rather than runtime conditions.
func New(rng *rand.Rand, n int, alpha float64) *Zipf {
	if n <= 0 {
		panic(fmt.Sprintf("zipf: domain size must be positive, got %d", n))
	}
	if alpha < 0 {
		panic(fmt.Sprintf("zipf: alpha must be non-negative, got %g", alpha))
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += math.Pow(float64(k+1), -alpha)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	return &Zipf{n: n, cdf: cdf, rng: rng}
}

// N reports the domain size.
func (z *Zipf) N() int { return z.n }

// Next draws one rank in [0, N()).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	// sort.SearchFloat64s finds the first index with cdf[i] >= u.
	i := sort.SearchFloat64s(z.cdf, u)
	if i >= z.n {
		i = z.n - 1
	}
	return i
}

// Prob reports the exact probability mass of rank k.
func (z *Zipf) Prob(k int) float64 {
	if k < 0 || k >= z.n {
		return 0
	}
	if k == 0 {
		return z.cdf[0]
	}
	return z.cdf[k] - z.cdf[k-1]
}
