package zipf_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"flowcube/internal/zipf"
)

func TestPanicsOnBadArgs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, c := range []struct {
		n     int
		alpha float64
	}{{0, 1}, {-3, 1}, {5, -0.1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d, %g) did not panic", c.n, c.alpha)
				}
			}()
			zipf.New(rng, c.n, c.alpha)
		}()
	}
}

func TestUniformWhenAlphaZero(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	z := zipf.New(rng, 4, 0)
	for k := 0; k < 4; k++ {
		if math.Abs(z.Prob(k)-0.25) > 1e-12 {
			t.Errorf("P(%d) = %g, want 0.25", k, z.Prob(k))
		}
	}
}

func TestProbMass(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	z := zipf.New(rng, 10, 1.2)
	sum := 0.0
	for k := 0; k < z.N(); k++ {
		p := z.Prob(k)
		if p <= 0 {
			t.Errorf("P(%d) = %g, want > 0", k, p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %g", sum)
	}
	if z.Prob(-1) != 0 || z.Prob(10) != 0 {
		t.Errorf("out-of-range Prob not zero")
	}
}

func TestSkewMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	z := zipf.New(rng, 8, 1.0)
	for k := 1; k < z.N(); k++ {
		if z.Prob(k) > z.Prob(k-1) {
			t.Errorf("P(%d)=%g > P(%d)=%g; Zipf must be non-increasing", k, z.Prob(k), k-1, z.Prob(k-1))
		}
	}
}

func TestEmpiricalMatchesAnalytic(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	z := zipf.New(rng, 5, 0.8)
	const n = 200000
	counts := make([]int, 5)
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	for k := 0; k < 5; k++ {
		got := float64(counts[k]) / n
		want := z.Prob(k)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("empirical P(%d) = %g, analytic %g", k, got, want)
		}
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a := zipf.New(rand.New(rand.NewSource(5)), 20, 1.1)
	b := zipf.New(rand.New(rand.NewSource(5)), 20, 1.1)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

// Property: Next always lands in [0, N).
func TestNextInRangeProperty(t *testing.T) {
	f := func(seed int64, n uint8, alphaTenths uint8) bool {
		domain := int(n%50) + 1
		alpha := float64(alphaTenths%30) / 10
		z := zipf.New(rand.New(rand.NewSource(seed)), domain, alpha)
		for i := 0; i < 100; i++ {
			k := z.Next()
			if k < 0 || k >= domain {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
