// Package cubing implements the paper's Algorithm 2 — the cubing-based
// competitor to Shared. It splits the path database into the item
// dimensions Di and the paths Dp, computes a BUC-style iceberg cube over Di
// whose cell measure is the list of transaction identifiers aggregated in
// the cell, and then runs an independent Apriori over the encoded paths of
// each frequent cell.
//
// The cube is computed from high abstraction levels toward low ones so that
// an infrequent high-level cell prunes all of its specializations, which is
// the property the paper requires of the cubing algorithm. What Algorithm 2
// cannot do — and what the evaluation measures — is prune by the *path*
// lattice: a path stage found infrequent at a high level is regenerated and
// recounted as a candidate in every cell.
package cubing

import (
	"sort"

	"flowcube/internal/fpgrowth"
	"flowcube/internal/hierarchy"
	"flowcube/internal/itemset"
	"flowcube/internal/mining"
	"flowcube/internal/pathdb"
	"flowcube/internal/transact"
)

// Engine selects the per-cell frequent-pattern algorithm. The paper calls
// plain Apriori; FP-growth is provided as the standard pattern-growth
// alternative ("any existing frequent pattern mining algorithm", §3).
type Engine int

const (
	// EngineApriori mines each cell with candidate generation and a
	// counting trie — the paper's choice.
	EngineApriori Engine = iota
	// EngineFPGrowth mines each cell with a conditional FP-tree recursion.
	EngineFPGrowth
)

// CellResult is the mined content of one frequent cell.
type CellResult struct {
	// Values holds, per dimension, the cell's concept (hierarchy.Root for
	// an aggregated '*' dimension).
	Values []hierarchy.NodeID
	// Count is the number of paths aggregated in the cell.
	Count int64
	// Segments are the frequent path-segment itemsets mined in the cell
	// (stage items only).
	Segments []itemset.Counted
}

// Result maps cell keys to mined cells. Keys come from CellKey.
type Result struct {
	Cells map[string]*CellResult
	// Stats aggregates the per-cell Apriori work: candidates counted by
	// pattern length, across all cells.
	Stats []mining.LevelStats
	// TIDBytes approximates the transaction-identifier list volume the
	// algorithm materializes (4 bytes per TID per frequent cell), the I/O
	// cost §5.2 calls out.
	TIDBytes int64
}

// CellKey canonically encodes a cell's per-dimension concepts.
func CellKey(values []hierarchy.NodeID) string {
	return itemset.Key(nodeItems(values))
}

func nodeItems(values []hierarchy.NodeID) []transact.Item {
	out := make([]transact.Item, len(values))
	for i, v := range values {
		out[i] = transact.Item(v)
	}
	return out
}

type engine struct {
	db        *pathdb.DB
	syms      *transact.Symbols
	stageTxs  []transact.Transaction
	dimLevels [][]int
	minCount  int64
	maxLen    int
	miner     Engine
	res       *Result
}

// Run executes Algorithm 2. The symbol table supplies the encoding plan;
// its path levels define the stage items mined per cell, and its dimension
// levels define the cuboids enumerated. opts.MinSupport/MinCount set the
// iceberg threshold δ, which is also the per-cell segment support (matching
// Shared, whose mixed itemsets carry the same absolute threshold). The
// pruning toggles of opts do not apply: per the paper, each cell is mined
// with plain Apriori.
func Run(db *pathdb.DB, syms *transact.Symbols, opts mining.Options) (*Result, error) {
	return RunEngine(db, syms, opts, EngineApriori)
}

// RunEngine is Run with an explicit per-cell mining engine.
func RunEngine(db *pathdb.DB, syms *transact.Symbols, opts mining.Options, miner Engine) (*Result, error) {
	minCount, err := mining.ResolveMinCount(opts, db.Len())
	if err != nil {
		return nil, err
	}
	e := &engine{
		db:        db,
		syms:      syms,
		dimLevels: syms.DimLevels(),
		minCount:  minCount,
		maxLen:    opts.MaxLen,
		miner:     miner,
		res:       &Result{Cells: make(map[string]*CellResult)},
	}
	// Step 2: transform Dp into a transaction database of encoded stages.
	e.stageTxs = make([]transact.Transaction, db.Len())
	for i, r := range db.Records {
		e.stageTxs[i] = syms.EncodeStages(r.Path)
	}

	all := make([]int32, db.Len())
	for i := range all {
		all[i] = int32(i)
	}
	cell := make([]hierarchy.NodeID, len(db.Schema.Dims))
	for i := range cell {
		cell[i] = hierarchy.Root
	}
	// The apex cell holds every path; it is frequent whenever the database
	// meets the threshold at all.
	if int64(len(all)) >= minCount {
		e.emit(cell, all)
		e.expandFrom(0, all, cell)
	}
	return e.res, nil
}

// expandFrom tries to group each remaining dimension, BUC style.
func (e *engine) expandFrom(dim int, tids []int32, cell []hierarchy.NodeID) {
	for d := dim; d < len(cell); d++ {
		e.expandDim(d, 0, tids, cell)
	}
}

// expandDim groups the tids by dimension d at its levelIdx-th materialized
// level (high abstraction first), recursing into frequent groups: sideways
// to later dimensions and downward to the next level of d. Infrequent
// groups are pruned together with all their specializations — the iceberg
// property.
func (e *engine) expandDim(d, levelIdx int, tids []int32, cell []hierarchy.NodeID) {
	if levelIdx >= len(e.dimLevels[d]) {
		return
	}
	level := e.dimLevels[d][levelIdx]
	h := e.db.Schema.Dims[d]
	groups := make(map[hierarchy.NodeID][]int32)
	for _, tid := range tids {
		v := h.AncestorAt(e.db.Records[tid].Dims[d], level)
		groups[v] = append(groups[v], tid)
	}
	// Deterministic order for reproducible stats.
	keys := make([]hierarchy.NodeID, 0, len(groups))
	for v := range groups {
		keys = append(keys, v)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, v := range keys {
		g := groups[v]
		if int64(len(g)) < e.minCount {
			continue
		}
		cell[d] = v
		e.emit(cell, g)
		e.expandFrom(d+1, g, cell)
		e.expandDim(d, levelIdx+1, g, cell)
	}
	cell[d] = hierarchy.Root
}

// emit records the frequent cell and mines its frequent path segments
// over the cell's stage transactions (Algorithm 2 steps 5-6) with the
// configured engine.
func (e *engine) emit(cell []hierarchy.NodeID, tids []int32) {
	cr := &CellResult{
		Values: append([]hierarchy.NodeID(nil), cell...),
		Count:  int64(len(tids)),
	}
	e.res.TIDBytes += int64(4 * len(tids))

	if e.miner == EngineFPGrowth {
		cellTxs := make([]transact.Transaction, len(tids))
		for i, tid := range tids {
			cellTxs[i] = e.stageTxs[tid]
		}
		cr.Segments = fpgrowth.Mine(cellTxs, e.minCount, e.maxLen)
		byLen := map[int]int{}
		for _, s := range cr.Segments {
			byLen[len(s.Set)]++
		}
		for l, n := range byLen {
			e.addStats(l, n, n, n)
		}
		e.res.Cells[CellKey(cell)] = cr
		return
	}

	// Scan 1: single stage items.
	counts := make(map[transact.Item]int64)
	for _, tid := range tids {
		for _, it := range e.stageTxs[tid] {
			counts[it]++
		}
	}
	var l1 []itemset.Counted
	for it, n := range counts {
		if n >= e.minCount {
			l1 = append(l1, itemset.Counted{Set: []transact.Item{it}, Count: n})
		}
	}
	itemset.SortCounted(l1)
	cr.Segments = append(cr.Segments, l1...)
	e.addStats(1, len(counts), len(counts), len(l1))

	prev := l1
	for k := 2; len(prev) > 0 && (e.maxLen == 0 || k <= e.maxLen); k++ {
		cands := itemset.Join(prev)
		if len(cands) == 0 {
			break
		}
		trie := itemset.NewTrie()
		for _, c := range cands {
			trie.Insert(c)
		}
		for _, tid := range tids {
			trie.Count(e.stageTxs[tid])
		}
		lk := trie.Frequent(e.minCount)
		e.addStats(k, len(cands), len(cands), len(lk))
		cr.Segments = append(cr.Segments, lk...)
		prev = lk
	}
	e.res.Cells[CellKey(cell)] = cr
}

func (e *engine) addStats(length, generated, counted, frequent int) {
	for len(e.res.Stats) < length {
		e.res.Stats = append(e.res.Stats, mining.LevelStats{Length: len(e.res.Stats) + 1})
	}
	s := &e.res.Stats[length-1]
	s.Generated += generated
	s.Counted += counted
	s.Frequent += frequent
}
