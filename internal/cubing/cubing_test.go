package cubing_test

import (
	"testing"

	"flowcube/internal/cubing"
	"flowcube/internal/datagen"
	"flowcube/internal/hierarchy"
	"flowcube/internal/itemset"
	"flowcube/internal/mining"
	"flowcube/internal/paperex"
	"flowcube/internal/pathdb"
	"flowcube/internal/transact"
)

func examplePlan(ex *paperex.Example) transact.Plan {
	leaf := hierarchy.LevelCut(ex.Location, ex.Location.Depth())
	up := hierarchy.LevelCut(ex.Location, 1)
	return transact.Plan{
		PathLevels: []pathdb.PathLevel{
			{Cut: leaf, Time: pathdb.TimeBase},
			{Cut: leaf, Time: pathdb.TimeAny},
			{Cut: up, Time: pathdb.TimeBase},
			{Cut: up, Time: pathdb.TimeAny},
		},
	}
}

func TestCubingRunningExampleCells(t *testing.T) {
	ex := paperex.New()
	syms := transact.MustNewSymbols(ex.Schema, examplePlan(ex))
	syms.Encode(ex.DB)

	res, err := cubing.Run(ex.DB, syms, mining.Options{MinCount: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Table 2's aggregated cells at (product level 2, brand level 2):
	// (shoes,nike)=3, (shoes,adidas)=2, (outerwear,nike)=3.
	cases := []struct {
		product, brand string
		want           int64
	}{
		{"shoes", "nike", 3},
		{"shoes", "adidas", 2},
		{"outerwear", "nike", 3},
	}
	for _, c := range cases {
		values := []hierarchy.NodeID{ex.Product.MustLookup(c.product), ex.Brand.MustLookup(c.brand)}
		cell, ok := res.Cells[cubing.CellKey(values)]
		if !ok {
			t.Errorf("cell (%s,%s) missing", c.product, c.brand)
			continue
		}
		if cell.Count != c.want {
			t.Errorf("cell (%s,%s) count = %d, want %d", c.product, c.brand, cell.Count, c.want)
		}
	}
	// The iceberg condition: (shirt, nike) holds a single path (< δ=2) and
	// must not be materialized. (The paper's own example: "if we set the
	// minimum support to 2, the cell (shirt, *) will not be materialized".)
	shirtNike := []hierarchy.NodeID{ex.Product.MustLookup("shirt"), ex.Brand.MustLookup("nike")}
	if _, ok := res.Cells[cubing.CellKey(shirtNike)]; ok {
		t.Errorf("iceberg condition violated: (shirt,nike) with 1 path materialized at δ=2")
	}
	shirtStar := []hierarchy.NodeID{ex.Product.MustLookup("shirt"), hierarchy.Root}
	if _, ok := res.Cells[cubing.CellKey(shirtStar)]; ok {
		t.Errorf("iceberg condition violated: (shirt,*) with 1 path materialized at δ=2")
	}

	// The apex cell holds all 8 paths.
	apex := []hierarchy.NodeID{hierarchy.Root, hierarchy.Root}
	cell, ok := res.Cells[cubing.CellKey(apex)]
	if !ok || cell.Count != 8 {
		t.Fatalf("apex cell missing or wrong count")
	}
}

// TestCubingMatchesShared cross-validates the two §5 algorithms on a small
// synthetic workload: they must discover exactly the same frequent cells
// with the same counts, and the same frequent path segments per cell.
func TestCubingMatchesShared(t *testing.T) {
	cfg := datagen.Default()
	cfg.NumPaths = 300
	cfg.NumDims = 2
	cfg.NumSequences = 12
	cfg.SeqLenMin, cfg.SeqLenMax = 3, 4
	cfg.DurationDomain = 3
	ds := datagen.MustGenerate(cfg)

	syms := transact.MustNewSymbols(ds.Schema, ds.DefaultPlan())
	txs := syms.Encode(ds.DB)
	shared, err := mining.Mine(syms, txs, mining.SharedOptions(0.15))
	if err != nil {
		t.Fatal(err)
	}
	cub, err := cubing.Run(ds.DB, syms, mining.Options{MinSupport: 0.15})
	if err != nil {
		t.Fatal(err)
	}

	// Index the shared result: cell part (dimension values) + stage part.
	type cellSeg struct{ cell, seg string }
	sharedSets := make(map[cellSeg]int64)
	for _, c := range shared.All() {
		values := make([]hierarchy.NodeID, len(ds.Schema.Dims))
		for i := range values {
			values[i] = hierarchy.Root
		}
		var stages []transact.Item
		skip := false
		for _, it := range c.Set {
			if syms.IsStage(it) {
				stages = append(stages, it)
				continue
			}
			d := syms.Dim(it)
			if values[d] != hierarchy.Root {
				skip = true // two levels of one dimension (not a cell)
				break
			}
			values[d] = syms.Node(it)
		}
		if skip {
			continue
		}
		sharedSets[cellSeg{cubing.CellKey(values), itemset.Key(stages)}] = c.Count
	}

	// Every cubing cell must match shared's pure-dimension itemset count
	// (the apex cell has no shared counterpart and is checked directly),
	// and every per-cell segment must match the mixed itemset count.
	checked := 0
	for key, cell := range cub.Cells {
		allStar := true
		for _, v := range cell.Values {
			if v != hierarchy.Root {
				allStar = false
			}
		}
		if allStar {
			if cell.Count != int64(ds.DB.Len()) {
				t.Errorf("apex count = %d, want %d", cell.Count, ds.DB.Len())
			}
		} else {
			n, ok := sharedSets[cellSeg{key, ""}]
			if !ok {
				t.Errorf("cell %v found by cubing but not shared", cell.Values)
				continue
			}
			if n != cell.Count {
				t.Errorf("cell %v count mismatch: cubing %d, shared %d", cell.Values, cell.Count, n)
			}
		}
		for _, seg := range cell.Segments {
			want, ok := sharedSets[cellSeg{key, itemset.Key(seg.Set)}]
			if !ok {
				// Shared prunes segments containing an item+ancestor pair
				// (they are derivable); cubing's vanilla Apriori keeps them.
				if syms.HasAncestorPair(seg.Set) {
					continue
				}
				t.Errorf("segment %s of cell %v missing from shared", syms.SetString(seg.Set), cell.Values)
				continue
			}
			if want != seg.Count {
				t.Errorf("segment %s of cell %v: cubing %d, shared %d",
					syms.SetString(seg.Set), cell.Values, seg.Count, want)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatalf("cross-validation checked no segments; workload too sparse")
	}

	// And the reverse: every shared itemset that denotes a cell+segment
	// must appear in the cubing output.
	for cs, n := range sharedSets {
		if cs.seg == "" {
			cell, ok := cub.Cells[cs.cell]
			if !ok {
				t.Errorf("shared cell %q missing from cubing", cs.cell)
				continue
			}
			if cell.Count != n {
				t.Errorf("shared cell %q count %d != cubing %d", cs.cell, n, cell.Count)
			}
			continue
		}
		cell, ok := cub.Cells[cs.cell]
		if !ok {
			t.Errorf("cell %q of shared segment missing from cubing", cs.cell)
			continue
		}
		found := false
		for _, seg := range cell.Segments {
			if itemset.Key(seg.Set) == cs.seg {
				found = true
				if seg.Count != n {
					t.Errorf("segment count mismatch in cell %q: shared %d, cubing %d", cs.cell, n, seg.Count)
				}
				break
			}
		}
		if !found {
			t.Errorf("shared segment missing from cubing cell %q", cs.cell)
		}
	}
}

func TestCubingTIDBytesAccounting(t *testing.T) {
	ex := paperex.New()
	syms := transact.MustNewSymbols(ex.Schema, examplePlan(ex))
	syms.Encode(ex.DB)
	res, err := cubing.Run(ex.DB, syms, mining.Options{MinCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, c := range res.Cells {
		want += 4 * c.Count
	}
	if res.TIDBytes != want {
		t.Errorf("TIDBytes = %d, want %d", res.TIDBytes, want)
	}
	if res.TIDBytes <= int64(4*ex.DB.Len()) {
		t.Errorf("TID lists should exceed the base table size (the §5.2 I/O point)")
	}
}

// TestEnginesAgree cross-validates the FP-growth per-cell engine against
// the Apriori one: identical cells and identical segment supports.
func TestEnginesAgree(t *testing.T) {
	ex := paperex.New()
	syms := transact.MustNewSymbols(ex.Schema, examplePlan(ex))
	syms.Encode(ex.DB)

	ap, err := cubing.RunEngine(ex.DB, syms, mining.Options{MinCount: 2}, cubing.EngineApriori)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := cubing.RunEngine(ex.DB, syms, mining.Options{MinCount: 2}, cubing.EngineFPGrowth)
	if err != nil {
		t.Fatal(err)
	}
	if len(ap.Cells) != len(fp.Cells) {
		t.Fatalf("apriori found %d cells, fpgrowth %d", len(ap.Cells), len(fp.Cells))
	}
	for key, ac := range ap.Cells {
		fc, ok := fp.Cells[key]
		if !ok {
			t.Fatalf("cell %q missing from fpgrowth run", key)
		}
		if ac.Count != fc.Count {
			t.Errorf("cell %q count mismatch: %d vs %d", key, ac.Count, fc.Count)
		}
		if len(ac.Segments) != len(fc.Segments) {
			t.Errorf("cell %q segments: apriori %d, fpgrowth %d", key, len(ac.Segments), len(fc.Segments))
			continue
		}
		am := map[string]int64{}
		for _, s := range ac.Segments {
			am[itemset.Key(s.Set)] = s.Count
		}
		for _, s := range fc.Segments {
			if am[itemset.Key(s.Set)] != s.Count {
				t.Errorf("cell %q segment %v mismatch", key, s.Set)
			}
		}
	}
}
