package fpgrowth_test

import (
	"testing"

	"flowcube/internal/datagen"
	"flowcube/internal/fpgrowth"
	"flowcube/internal/hierarchy"
	"flowcube/internal/itemset"
	"flowcube/internal/paperex"
	"flowcube/internal/pathdb"
	"flowcube/internal/transact"
)

// bruteFrequent is the exhaustive oracle (same as the mining package's).
func bruteFrequent(txs []transact.Transaction, minCount int64, maxLen int) map[string]int64 {
	counts := map[transact.Item]int64{}
	for _, tx := range txs {
		for _, it := range tx {
			counts[it]++
		}
	}
	var items []transact.Item
	for it, n := range counts {
		if n >= minCount {
			items = append(items, it)
		}
	}
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && items[j] < items[j-1]; j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
	support := func(set []transact.Item) int64 {
		var n int64
	outer:
		for _, tx := range txs {
			i := 0
			for _, want := range set {
				for i < len(tx) && tx[i] < want {
					i++
				}
				if i >= len(tx) || tx[i] != want {
					continue outer
				}
			}
			n++
		}
		return n
	}
	out := map[string]int64{}
	var rec func(start int, cur []transact.Item)
	rec = func(start int, cur []transact.Item) {
		for i := start; i < len(items); i++ {
			cand := append(cur, items[i])
			n := support(cand)
			if n < minCount {
				continue
			}
			out[itemset.Key(cand)] = n
			if maxLen == 0 || len(cand) < maxLen {
				rec(i+1, cand)
			}
		}
	}
	rec(0, nil)
	return out
}

func textbookTxs() []transact.Transaction {
	// The classic FP-growth running example (items renamed to ints):
	// f=1 c=2 a=3 b=4 m=5 p=6 i=7 o=8, minCount 3.
	return []transact.Transaction{
		{1, 2, 3, 5, 6},    // f c a m p
		{1, 2, 3, 4, 5},    // f c a b m
		{1, 4},             // f b
		{2, 4, 6},          // c b p
		{1, 2, 3, 5, 6, 8}, // f c a m p o
	}
}

func TestTextbookExample(t *testing.T) {
	got := fpgrowth.Mine(textbookTxs(), 3, 0)
	index := map[string]int64{}
	for _, c := range got {
		index[itemset.Key(c.Set)] = c.Count
	}
	want := map[string]int64{
		itemset.Key([]transact.Item{1}):          4, // f
		itemset.Key([]transact.Item{2}):          4, // c
		itemset.Key([]transact.Item{3}):          3, // a
		itemset.Key([]transact.Item{1, 2, 3, 5}): 3, // fcam
		itemset.Key([]transact.Item{2, 6}):       3, // cp
		itemset.Key([]transact.Item{1, 2}):       3, // fc
	}
	for key, n := range want {
		if index[key] != n {
			t.Errorf("support %v = %d, want %d", itemset.FromKey(key), index[key], n)
		}
	}
	oracle := bruteFrequent(textbookTxs(), 3, 0)
	if len(oracle) != len(got) {
		t.Fatalf("found %d itemsets, oracle has %d", len(got), len(oracle))
	}
}

func TestMatchesOracleOnSynthetic(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		cfg := datagen.Default()
		cfg.Seed = seed
		cfg.NumPaths = 80
		cfg.NumDims = 2
		cfg.NumSequences = 6
		cfg.SeqLenMin, cfg.SeqLenMax = 2, 3
		cfg.DurationDomain = 2
		ds := datagen.MustGenerate(cfg)
		leaf := hierarchy.LevelCut(ds.Schema.Location, ds.Schema.Location.Depth())
		syms := transact.MustNewSymbols(ds.Schema, transact.Plan{
			PathLevels: []pathdb.PathLevel{{Cut: leaf, Time: pathdb.TimeBase}},
		})
		txs := syms.Encode(ds.DB)

		const maxLen = 4
		const minCount = 8
		got := fpgrowth.Mine(txs, minCount, maxLen)
		oracle := bruteFrequent(txs, minCount, maxLen)
		if len(got) != len(oracle) {
			t.Fatalf("seed %d: fpgrowth found %d itemsets, oracle %d", seed, len(got), len(oracle))
		}
		for _, c := range got {
			if oracle[itemset.Key(c.Set)] != c.Count {
				t.Fatalf("seed %d: support of %s = %d, oracle %d",
					seed, syms.SetString(c.Set), c.Count, oracle[itemset.Key(c.Set)])
			}
		}
	}
}

func TestMaxLenRespected(t *testing.T) {
	got := fpgrowth.Mine(textbookTxs(), 2, 2)
	for _, c := range got {
		if len(c.Set) > 2 {
			t.Fatalf("maxLen=2 produced %v", c.Set)
		}
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	if got := fpgrowth.Mine(nil, 1, 0); got != nil {
		t.Errorf("empty input produced %v", got)
	}
	// minCount above every support finds nothing.
	if got := fpgrowth.Mine(textbookTxs(), 100, 0); got != nil {
		t.Errorf("impossible support produced %v", got)
	}
	// minCount < 1 is clamped to 1.
	got := fpgrowth.Mine([]transact.Transaction{{7}}, 0, 0)
	if len(got) != 1 || got[0].Count != 1 {
		t.Errorf("single transaction mined wrong: %v", got)
	}
}

func TestRunningExampleAgainstApriori(t *testing.T) {
	ex := paperex.New()
	leaf := hierarchy.LevelCut(ex.Location, ex.Location.Depth())
	syms := transact.MustNewSymbols(ex.Schema, transact.Plan{
		PathLevels: []pathdb.PathLevel{
			{Cut: leaf, Time: pathdb.TimeBase},
			{Cut: leaf, Time: pathdb.TimeAny},
		},
	})
	txs := syms.Encode(ex.DB)
	got := fpgrowth.Mine(txs, 3, 0)
	oracle := bruteFrequent(txs, 3, 0)
	if len(got) != len(oracle) {
		t.Fatalf("fpgrowth found %d itemsets, oracle %d", len(got), len(oracle))
	}
	for _, c := range got {
		if oracle[itemset.Key(c.Set)] != c.Count {
			t.Errorf("support of %s = %d, oracle %d",
				syms.SetString(c.Set), c.Count, oracle[itemset.Key(c.Set)])
		}
	}
}
