// Package fpgrowth implements the FP-growth frequent-itemset algorithm
// (Han, Pei & Yin, SIGMOD 2000) over encoded transactions.
//
// The paper's flowgraph construction (§3, step 3) allows "any existing
// frequent pattern mining algorithm" for the per-cell segment mining; this
// package provides the standard pattern-growth alternative to the Apriori
// substrate in internal/itemset, and the Cubing competitor can run on
// either engine. FP-growth avoids candidate generation entirely: it
// compresses the transactions into a prefix tree ordered by descending
// item frequency and recursively mines conditional trees.
package fpgrowth

import (
	"sort"

	"flowcube/internal/itemset"
	"flowcube/internal/transact"
)

type node struct {
	item     transact.Item
	count    int64
	parent   *node
	children map[transact.Item]*node
	next     *node // header-table chain of nodes carrying the same item
}

type header struct {
	item  transact.Item
	count int64
	head  *node
}

type tree struct {
	root    node
	headers []header // ordered by ascending total count (mining order)
	byItem  map[transact.Item]int
}

// order maps each frequent item to its rank: more frequent items come
// first on tree paths, which maximizes prefix sharing.
func buildTree(txs []transact.Transaction, counts map[transact.Item]int64, minCount int64) *tree {
	type ic struct {
		item  transact.Item
		count int64
	}
	var freq []ic
	for it, n := range counts {
		if n >= minCount {
			freq = append(freq, ic{it, n})
		}
	}
	sort.Slice(freq, func(i, j int) bool {
		if freq[i].count != freq[j].count {
			return freq[i].count > freq[j].count
		}
		return freq[i].item < freq[j].item
	})
	rank := make(map[transact.Item]int, len(freq))
	for i, f := range freq {
		rank[f.item] = i
	}

	t := &tree{
		root:   node{children: make(map[transact.Item]*node)},
		byItem: make(map[transact.Item]int, len(freq)),
	}
	// Headers in reverse frequency order: mining proceeds from the least
	// frequent item upward.
	t.headers = make([]header, len(freq))
	for i, f := range freq {
		t.headers[len(freq)-1-i] = header{item: f.item, count: f.count}
		t.byItem[f.item] = len(freq) - 1 - i
	}

	buf := make([]transact.Item, 0, 32)
	for _, tx := range txs {
		buf = buf[:0]
		for _, it := range tx {
			if _, ok := rank[it]; ok {
				buf = append(buf, it)
			}
		}
		sort.Slice(buf, func(i, j int) bool {
			ri, rj := rank[buf[i]], rank[buf[j]]
			if ri != rj {
				return ri < rj
			}
			return buf[i] < buf[j]
		})
		t.insert(buf, 1)
	}
	return t
}

func (t *tree) insert(items []transact.Item, count int64) {
	cur := &t.root
	for _, it := range items {
		child := cur.children[it]
		if child == nil {
			child = &node{item: it, parent: cur, children: make(map[transact.Item]*node)}
			cur.children[it] = child
			h := &t.headers[t.byItem[it]]
			child.next = h.head
			h.head = child
		}
		child.count += count
		cur = child
	}
}

// singlePath returns the tree's unique path when it has one, or nil. A
// single-path tree's frequent itemsets are all sub-combinations, emitted
// directly instead of recursing.
func (t *tree) singlePath() []*node {
	var path []*node
	cur := &t.root
	for {
		if len(cur.children) == 0 {
			return path
		}
		if len(cur.children) > 1 {
			return nil
		}
		for _, c := range cur.children {
			cur = c
		}
		path = append(path, cur)
	}
}

// Mine returns every itemset with support >= minCount (and at most maxLen
// items when maxLen > 0), each with its exact support, in lexicographic
// order. minCount must be positive.
func Mine(txs []transact.Transaction, minCount int64, maxLen int) []itemset.Counted {
	if minCount < 1 {
		minCount = 1
	}
	counts := make(map[transact.Item]int64)
	for _, tx := range txs {
		for _, it := range tx {
			counts[it]++
		}
	}
	t := buildTree(txs, counts, minCount)
	var out []itemset.Counted
	var suffix []transact.Item
	mineTree(t, minCount, maxLen, suffix, &out)
	for i := range out {
		sortItems(out[i].Set)
	}
	itemset.SortCounted(out)
	return out
}

func sortItems(s []transact.Item) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

func mineTree(t *tree, minCount int64, maxLen int, suffix []transact.Item, out *[]itemset.Counted) {
	if path := t.singlePath(); path != nil {
		emitCombinations(path, minCount, maxLen, suffix, out)
		return
	}
	for hi := range t.headers {
		h := &t.headers[hi]
		set := append(append([]transact.Item(nil), suffix...), h.item)
		*out = append(*out, itemset.Counted{Set: set, Count: h.count})
		if maxLen > 0 && len(set) >= maxLen {
			continue
		}
		// Conditional pattern base: the prefix paths above each node
		// carrying h.item, weighted by that node's count.
		condCounts := make(map[transact.Item]int64)
		var base []prefixed
		for n := h.head; n != nil; n = n.next {
			var items []transact.Item
			for p := n.parent; p != nil && p.parent != nil; p = p.parent {
				items = append(items, p.item)
			}
			if len(items) == 0 {
				continue
			}
			base = append(base, prefixed{items, n.count})
			for _, it := range items {
				condCounts[it] += n.count
			}
		}
		cond := condTree(base, condCounts, minCount)
		if cond != nil {
			mineTree(cond, minCount, maxLen, set, out)
		}
	}
}

// prefixed is one conditional-pattern-base entry: a prefix path and the
// count it contributes.
type prefixed struct {
	items []transact.Item
	count int64
}

// condTree builds the conditional FP-tree of a pattern base; nil when no
// conditional item is frequent.
func condTree(base []prefixed, counts map[transact.Item]int64, minCount int64) *tree {
	type ic struct {
		item  transact.Item
		count int64
	}
	var freq []ic
	for it, n := range counts {
		if n >= minCount {
			freq = append(freq, ic{it, n})
		}
	}
	if len(freq) == 0 {
		return nil
	}
	sort.Slice(freq, func(i, j int) bool {
		if freq[i].count != freq[j].count {
			return freq[i].count > freq[j].count
		}
		return freq[i].item < freq[j].item
	})
	rank := make(map[transact.Item]int, len(freq))
	for i, f := range freq {
		rank[f.item] = i
	}
	t := &tree{
		root:   node{children: make(map[transact.Item]*node)},
		byItem: make(map[transact.Item]int, len(freq)),
	}
	t.headers = make([]header, len(freq))
	for i, f := range freq {
		t.headers[len(freq)-1-i] = header{item: f.item, count: f.count}
		t.byItem[f.item] = len(freq) - 1 - i
	}
	buf := make([]transact.Item, 0, 16)
	for _, b := range base {
		buf = buf[:0]
		for _, it := range b.items {
			if _, ok := rank[it]; ok {
				buf = append(buf, it)
			}
		}
		sort.Slice(buf, func(i, j int) bool {
			ri, rj := rank[buf[i]], rank[buf[j]]
			if ri != rj {
				return ri < rj
			}
			return buf[i] < buf[j]
		})
		t.insert(buf, b.count)
	}
	return t
}

// emitCombinations handles the single-path shortcut: every combination of
// the path's nodes joined with the suffix is frequent with the count of
// its deepest member.
func emitCombinations(path []*node, minCount int64, maxLen int, suffix []transact.Item, out *[]itemset.Counted) {
	// Nodes on a single path have non-increasing counts; a combination's
	// support is the deepest (smallest-count) node's count.
	var rec func(start int, cur []transact.Item, cnt int64)
	rec = func(start int, cur []transact.Item, cnt int64) {
		for i := start; i < len(path); i++ {
			n := path[i]
			if n.count < minCount {
				continue
			}
			set := append(append([]transact.Item(nil), cur...), n.item)
			*out = append(*out, itemset.Counted{
				Set:   append(append([]transact.Item(nil), suffix...), set...),
				Count: n.count,
			})
			if maxLen <= 0 || len(suffix)+len(set) < maxLen {
				rec(i+1, set, n.count)
			}
		}
	}
	rec(0, nil, 0)
}
