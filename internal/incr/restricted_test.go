package incr_test

import (
	"testing"

	"flowcube/internal/core"
	"flowcube/internal/datagen"
	"flowcube/internal/incr"
)

// TestRestrictedRemineMatchesFull pins the two exception re-mining paths
// against each other directly: the same batch folded into a warm-cache
// clone (restricted path) and a cache-dropped clone (full per-cell re-mine)
// must produce identical Save bytes, and the stats must show which path
// ran. The digest property tests in incr_test.go already exercise the
// restricted path implicitly — Build warms the condition cache — but this
// test fails loudly if the cache stops discriminating the paths.
func TestRestrictedRemineMatchesFull(t *testing.T) {
	for _, variant := range []struct {
		name        string
		singleStage bool
	}{
		{"conds-only", false},
		{"singlestage", true},
	} {
		variant := variant
		t.Run(variant.name, func(t *testing.T) {
			t.Parallel()
			ds := datagen.MustGenerate(genConfig(41, 300))
			cfg := core.Config{
				MinCount: 4, Epsilon: 0.05, Tau: 0.6, Plan: ds.DefaultPlan(),
				MineExceptions: true, SingleStageExceptions: variant.singleStage,
				DeltaLedger: true, Workers: 2,
			}
			const split = 250
			db := dbWith(ds, split)
			base, err := core.Build(db, cfg)
			if err != nil {
				t.Fatal(err)
			}
			batch := ds.DB.Records[split:]

			warm := base.Clone()
			warmDB := dbWith(ds, split)
			warmStats, err := incr.ApplyDelta(warm, warmDB, batch)
			if err != nil {
				t.Fatalf("restricted fold: %v", err)
			}

			cold := base.Clone()
			cold.DropCondCache()
			coldDB := dbWith(ds, split)
			coldStats, err := incr.ApplyDelta(cold, coldDB, batch)
			if err != nil {
				t.Fatalf("full fold: %v", err)
			}

			if got, want := saveDigest(t, warm), saveDigest(t, cold); got != want {
				t.Errorf("restricted digest %s != full digest %s", got, want)
			}
			if warmStats.ExceptionsRemined == 0 {
				t.Fatal("batch touched no exception cells; workload too small to discriminate the paths")
			}
			// The warm clone's existing cells re-mine restricted (admitted
			// cells always mine in full); the cold clone never does.
			if warmStats.CellsReminedRestricted != warmStats.ExceptionsRemined-warmStats.CellsAdmitted {
				t.Errorf("restricted stats: %d of %d cells restricted with %d admitted",
					warmStats.CellsReminedRestricted, warmStats.ExceptionsRemined, warmStats.CellsAdmitted)
			}
			if warmStats.CellsReminedRestricted == 0 {
				t.Error("warm cache fold never took the restricted path")
			}
			if warmStats.PrefixesRemined == 0 {
				t.Error("restricted fold reports zero moved prefixes")
			}
			if coldStats.CellsReminedRestricted != 0 || coldStats.PrefixesRemined != 0 {
				t.Errorf("cold cache fold reports restricted work: %+v", coldStats)
			}
		})
	}
}

// TestRestrictedRemineChained folds several batches through the same warm
// cube — the cache must stay exact as conditions accumulate — and checks
// the final state against one full build of the union.
func TestRestrictedRemineChained(t *testing.T) {
	ds := datagen.MustGenerate(genConfig(43, 280))
	cfg := core.Config{
		MinCount: 4, Epsilon: 0.05, Plan: ds.DefaultPlan(),
		MineExceptions: true, SingleStageExceptions: true, DeltaLedger: true, Workers: 2,
	}
	full, err := core.Build(ds.DB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := saveDigest(t, full)

	splits := []int{180, 215, 250, 280}
	db := dbWith(ds, splits[0])
	cube, err := core.Build(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	restricted := 0
	for i := 1; i < len(splits); i++ {
		stats, err := incr.ApplyDelta(cube, db, ds.DB.Records[splits[i-1]:splits[i]])
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		restricted += stats.CellsReminedRestricted
	}
	if got := saveDigest(t, cube); got != want {
		t.Errorf("chained restricted digest %s != full digest %s", got, want)
	}
	if restricted == 0 {
		t.Error("no batch took the restricted path")
	}
}
