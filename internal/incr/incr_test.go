package incr_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"math/rand"
	"testing"

	"flowcube/internal/core"
	"flowcube/internal/datagen"
	"flowcube/internal/incr"
	"flowcube/internal/mining"
	"flowcube/internal/pathdb"
)

// genConfig is a small but non-trivial workload: 2 dimensions keeps the
// item lattice compact so the test explores splits quickly, while the
// default 50 sequences over 20 leaf locations still produce multi-level
// flowgraphs, exceptions, and sub-δ combinations on both sides of the
// threshold.
func genConfig(seed int64, paths int) datagen.Config {
	cfg := datagen.Default()
	cfg.Seed = seed
	cfg.NumPaths = paths
	cfg.NumDims = 2
	cfg.DimFanouts = [3]int{3, 3, 4}
	return cfg
}

func saveDigest(t *testing.T, cube *core.Cube) string {
	t.Helper()
	var buf bytes.Buffer
	if err := cube.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:])
}

func dbWith(ds *datagen.Dataset, n int) *pathdb.DB {
	return &pathdb.DB{Schema: ds.DB.Schema, Records: append([]pathdb.Record(nil), ds.DB.Records[:n]...)}
}

// TestApplyDeltaMatchesFullBuild is the exactness property test: for K
// random split points of a generated dataset, building over the prefix and
// delta-applying the suffix yields the same Save bytes as one full build
// over the whole database. Run under -race via scripts/check.sh.
func TestApplyDeltaMatchesFullBuild(t *testing.T) {
	variants := []struct {
		name string
		cfg  core.Config
	}{
		{"exceptions+ledger+tau", core.Config{
			MinCount: 4, Epsilon: 0.05, Tau: 0.6,
			MineExceptions: true, DeltaLedger: true, Workers: 2,
		}},
		{"singlestage+ledger", core.Config{
			MinCount: 4, Epsilon: 0.1,
			MineExceptions: true, SingleStageExceptions: true, DeltaLedger: true, Workers: 2,
		}},
		{"plain-noledger", core.Config{
			MinCount: 5, Tau: 0.5, Workers: 2,
		}},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			ds := datagen.MustGenerate(genConfig(7, 260))
			cfg := v.cfg
			cfg.Plan = ds.DefaultPlan()

			full, err := core.Build(ds.DB, cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := saveDigest(t, full)

			rng := rand.New(rand.NewSource(11))
			const K = 3
			for k := 0; k < K; k++ {
				split := 1 + rng.Intn(len(ds.DB.Records)-1)
				db := dbWith(ds, split)
				cube, err := core.Build(db, cfg)
				if err != nil {
					t.Fatal(err)
				}
				stats, err := incr.ApplyDelta(cube, db, ds.DB.Records[split:])
				if err != nil {
					t.Fatalf("split %d: ApplyDelta: %v", split, err)
				}
				if db.Len() != ds.DB.Len() {
					t.Fatalf("split %d: union db has %d records, want %d", split, db.Len(), ds.DB.Len())
				}
				if got := saveDigest(t, cube); got != want {
					t.Errorf("split %d: delta digest %s != full digest %s (stats %+v)", split, got, want, stats)
				}
				if err := cube.Validate(); err != nil {
					t.Errorf("split %d: delta cube invalid: %v", split, err)
				}
			}
		})
	}
}

// TestApplyDeltaMultipleBatches chains several deltas: base + batch1 +
// batch2 + batch3 must still match one full build.
func TestApplyDeltaMultipleBatches(t *testing.T) {
	ds := datagen.MustGenerate(genConfig(13, 240))
	cfg := core.Config{
		MinCount: 4, Epsilon: 0.05, Tau: 0.6, Plan: ds.DefaultPlan(),
		MineExceptions: true, DeltaLedger: true, Workers: 2,
	}
	full, err := core.Build(ds.DB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := saveDigest(t, full)

	splits := []int{140, 175, 210, 240}
	db := dbWith(ds, splits[0])
	cube, err := core.Build(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(splits); i++ {
		batch := ds.DB.Records[splits[i-1]:splits[i]]
		if _, err := incr.ApplyDelta(cube, db, batch); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	if got := saveDigest(t, cube); got != want {
		t.Errorf("chained delta digest %s != full digest %s", got, want)
	}
}

// TestApplyDeltaOnLoadedCube proves the snapshot round trip carries enough
// state (including the sub-δ ledger) for delta maintenance: save the base
// cube, load it, apply the batch to the loaded cube, and compare against a
// full build. Exception mining flags are not persisted, so this variant
// builds without exceptions — the configuration the loaded cube faithfully
// reports.
func TestApplyDeltaOnLoadedCube(t *testing.T) {
	ds := datagen.MustGenerate(genConfig(17, 220))
	cfg := core.Config{MinCount: 4, Tau: 0.5, Plan: ds.DefaultPlan(), DeltaLedger: true, Workers: 2}

	full, err := core.Build(ds.DB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := saveDigest(t, full)

	const split = 170
	db := dbWith(ds, split)
	base, err := core.Build(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := base.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := core.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Config.DeltaLedger || loaded.Ledger() == nil {
		t.Fatal("loaded cube lost its sub-δ ledger")
	}
	if _, err := incr.ApplyDelta(loaded, db, ds.DB.Records[split:]); err != nil {
		t.Fatal(err)
	}
	if got := saveDigest(t, loaded); got != want {
		t.Errorf("loaded+delta digest %s != full digest %s", got, want)
	}
}

// TestApplyDeltaOnClone exercises the serving path: delta-patch a Clone
// while the original stays bit-identical.
func TestApplyDeltaOnClone(t *testing.T) {
	ds := datagen.MustGenerate(genConfig(23, 220))
	cfg := core.Config{
		MinCount: 4, Epsilon: 0.05, Tau: 0.5, Plan: ds.DefaultPlan(),
		MineExceptions: true, DeltaLedger: true, Workers: 2,
	}
	const split = 180
	db := dbWith(ds, split)
	base, err := core.Build(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	baseDigest := saveDigest(t, base)

	full, err := core.Build(ds.DB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := saveDigest(t, full)

	clone := base.Clone()
	if _, err := incr.ApplyDelta(clone, db, ds.DB.Records[split:]); err != nil {
		t.Fatal(err)
	}
	if got := saveDigest(t, clone); got != want {
		t.Errorf("clone+delta digest %s != full digest %s", got, want)
	}
	if got := saveDigest(t, base); got != baseDigest {
		t.Errorf("delta on the clone mutated the original: digest %s != %s", got, baseDigest)
	}
}

func TestApplyDeltaTypedErrors(t *testing.T) {
	ds := datagen.MustGenerate(genConfig(29, 120))
	plan := ds.DefaultPlan()

	if _, err := incr.ApplyDelta(nil, ds.DB, nil); !errors.Is(err, incr.ErrNilCube) {
		t.Errorf("nil cube: got %v, want ErrNilCube", err)
	}

	fractional, err := core.Build(ds.DB, core.Config{MinSupport: 0.05, Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := incr.ApplyDelta(fractional, ds.DB, nil); !errors.Is(err, incr.ErrAbsoluteMinCount) {
		t.Errorf("fractional threshold: got %v, want ErrAbsoluteMinCount", err)
	}

	cube, err := core.Build(ds.DB, core.Config{MinCount: 3, Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := incr.ApplyDelta(cube, nil, nil); !errors.Is(err, incr.ErrNilDB) {
		t.Errorf("nil db: got %v, want ErrNilDB", err)
	}

	bad := ds.DB.Records[0]
	bad.Dims = bad.Dims[:0]
	before := ds.DB.Len()
	_, err = incr.ApplyDelta(cube, ds.DB, []pathdb.Record{ds.DB.Records[1], bad})
	var be *incr.BatchError
	if !errors.As(err, &be) {
		t.Fatalf("invalid record: got %v, want *BatchError", err)
	}
	if be.Index != 1 {
		t.Errorf("BatchError.Index = %d, want 1", be.Index)
	}
	if ds.DB.Len() != before {
		t.Errorf("rejected batch still appended records: %d -> %d", before, ds.DB.Len())
	}

	otherCfg := genConfig(29, 50)
	otherCfg.NumDims = 3
	mismatched := datagen.MustGenerate(otherCfg)
	if _, err := incr.ApplyDelta(cube, mismatched.DB, nil); !errors.Is(err, incr.ErrSchemaMismatch) {
		t.Errorf("schema mismatch: got %v, want ErrSchemaMismatch", err)
	}

	custom, err := core.Build(ds.DB, core.Config{
		MinCount: 3, Plan: plan,
		MiningOptions: &mining.Options{MinCount: 3, PruneAncestor: true, PruneLink: true, Precount: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := incr.ApplyDelta(custom, ds.DB, nil); !errors.Is(err, incr.ErrCustomMining) {
		t.Errorf("custom mining: got %v, want ErrCustomMining", err)
	}
}

func TestApplyDeltaEmptyBatch(t *testing.T) {
	ds := datagen.MustGenerate(genConfig(31, 150))
	cfg := core.Config{MinCount: 3, Plan: ds.DefaultPlan(), DeltaLedger: true}
	cube, err := core.Build(ds.DB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := saveDigest(t, cube)
	stats, err := incr.ApplyDelta(cube, ds.DB, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.BatchRecords != 0 || stats.CellsTouched != 0 || stats.CellsAdmitted != 0 {
		t.Errorf("empty batch stats = %+v, want zeros", stats)
	}
	if got := saveDigest(t, cube); got != before {
		t.Error("empty batch changed the cube")
	}
}
