// Package incr maintains a materialized flowcube under streaming appends
// (DESIGN.md §9). The paper builds its flowcubes once over a static path
// database and defers incremental update to future work (§7); this package
// supplies that delta-maintenance step: ApplyDelta takes a cube, the
// database it was built over, and a batch of new records, and updates only
// the affected state — the touched cells' counts, flowgraphs, exceptions
// and redundancy frontier, plus any sub-δ combination the batch pushes over
// the iceberg threshold.
//
// Delta application is exact: applying a batch and saving the cube yields
// the same snapshot bytes as a full Build over the union database with the
// same configuration. That holds because, with an absolute iceberg
// threshold, appends move every support monotonically upward — untouched
// cells are provably unchanged, and everything a batch can change is
// reachable from the batch's own records: the cells they land in (by the
// same packed-key assignment the populate scan uses), the below-threshold
// combinations they push over δ (decided by the sub-δ ledger carried in
// the cube, or one restricted base scan without it), and the item-lattice
// children of those cells for redundancy re-marking.
//
// Exactness therefore requires the cube's configuration to be
// N-independent: an absolute Config.MinCount (a fractional MinSupport
// re-resolves against the grown database, silently changing δ) and no
// MiningOptions override (a candidate limit or length cap makes the
// frequent-set collection scan-order dependent). ApplyDelta rejects both
// with typed errors.
package incr

import (
	"errors"
	"fmt"

	"flowcube/internal/core"
	"flowcube/internal/flowgraph"
	"flowcube/internal/hierarchy"
	"flowcube/internal/mining"
	"flowcube/internal/pathdb"
	"flowcube/internal/transact"
)

// Typed failures, testable with errors.Is / errors.As.
var (
	// ErrNilCube reports a nil cube argument.
	ErrNilCube = errors.New("incr: nil cube")
	// ErrNilDB reports a nil database argument.
	ErrNilDB = errors.New("incr: nil database")
	// ErrAbsoluteMinCount reports a cube built with a fractional iceberg
	// threshold: delta maintenance requires Config.MinCount > 0, because a
	// fractional MinSupport re-resolves against the grown database and
	// silently changes δ — exactness against a full rebuild is impossible.
	ErrAbsoluteMinCount = errors.New("incr: delta maintenance requires an absolute Config.MinCount")
	// ErrCustomMining reports a cube built with a MiningOptions override;
	// candidate limits and length caps make the frequent-set collection
	// depend on scan order, which delta maintenance cannot reproduce.
	ErrCustomMining = errors.New("incr: delta maintenance does not support Config.MiningOptions overrides")
	// ErrSchemaMismatch reports a database whose schema is not the one the
	// cube was built over.
	ErrSchemaMismatch = errors.New("incr: database schema does not match the cube's")
)

// BatchError reports one invalid record in an append batch. The batch is
// rejected atomically: no cube or database state changes before every
// record validates.
type BatchError struct {
	// Index is the offending record's position in the batch.
	Index int
	// Err is the underlying validation failure.
	Err error
}

func (e *BatchError) Error() string {
	return fmt.Sprintf("incr: batch record %d: %v", e.Index, e.Err)
}

func (e *BatchError) Unwrap() error { return e.Err }

// Stats reports what one ApplyDelta call did.
type Stats struct {
	// BatchRecords is the number of records appended.
	BatchRecords int `json:"batch_records"`
	// CellsTouched is the number of existing materialized (cuboid, cell)
	// entries the batch landed in.
	CellsTouched int `json:"cells_touched"`
	// CellsAdmitted is the number of newly materialized (cuboid, cell)
	// entries: sub-δ combinations the batch pushed over the iceberg
	// threshold, registered in every cuboid sharing their item level.
	CellsAdmitted int `json:"cells_admitted"`
	// ExceptionsRemined is the number of cells whose exception set was
	// recomputed (0 unless the cube was built with MineExceptions).
	ExceptionsRemined int `json:"exceptions_remined"`
	// CellsReminedRestricted is how many of those cells took the restricted
	// batch-proportional path (warm condition cache; see restricted.go)
	// instead of a full per-cell re-mine.
	CellsReminedRestricted int `json:"cells_remined_restricted"`
	// PrefixesRemined is the total number of moved flowgraph prefixes
	// (nodes on a batch path) the restricted passes re-aggregated.
	PrefixesRemined int `json:"prefixes_remined"`
	// RedundancyRemarked is the number of cells re-marked for redundancy
	// (touched cells plus their item-lattice children; 0 unless Tau > 0).
	RedundancyRemarked int `json:"redundancy_remarked"`
	// LedgerSize is the number of sub-δ ledger entries after the delta
	// (0 when the cube carries no ledger).
	LedgerSize int `json:"ledger_size"`
}

// combo accumulates one below-threshold (item level, values) combination
// observed in a batch.
type combo struct {
	levelIdx int
	values   []hierarchy.NodeID
	count    int64
	tids     []int32 // batch record ids, ascending
	baseTids []int32 // base record ids, ascending (filled by scanBase)
}

// valuesAt computes a record's per-dimension values at an item level.
func valuesAt(schema *pathdb.Schema, il core.ItemLevel, dims []hierarchy.NodeID) []hierarchy.NodeID {
	values := make([]hierarchy.NodeID, len(il))
	for d, l := range il {
		if l == 0 {
			values[d] = hierarchy.Root
		} else {
			values[d] = schema.Dims[d].AncestorAt(dims[d], l)
		}
	}
	return values
}

// scanBase walks the base records once and appends the id of every record
// matching a wanted combination. wanted maps item-level index → cell key →
// combo.
func scanBase(db *pathdb.DB, baseLen int, levels []core.ItemLevel, wanted map[int]map[string]*combo) {
	if len(wanted) == 0 {
		return
	}
	var lis []int
	for li := range wanted {
		lis = append(lis, li)
	}
	sortInts(lis)
	values := make([][]hierarchy.NodeID, len(levels))
	for _, li := range lis {
		values[li] = make([]hierarchy.NodeID, len(levels[li]))
	}
	for tid := 0; tid < baseLen; tid++ {
		rec := &db.Records[tid]
		for _, li := range lis {
			il := levels[li]
			vals := values[li]
			for d, l := range il {
				if l == 0 {
					vals[d] = hierarchy.Root
				} else {
					vals[d] = db.Schema.Dims[d].AncestorAt(rec.Dims[d], l)
				}
			}
			if c := wanted[li][core.CellKey(vals)]; c != nil {
				c.baseTids = append(c.baseTids, int32(tid))
			}
		}
	}
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// cellConds re-derives one cell's exception conditions: the frequent
// same-level path segments among the cell's records, exactly as a full
// build finds them as mixed dim+stage itemsets. Mining is restricted to the
// cell's transactions projected to stage items at the cuboid's path level —
// a transaction contains the cell's dimension items iff the record belongs
// to the cell, so in-cell stage supports equal the full build's mixed-set
// supports. Ancestor and linkability pruning mirror the Shared run (they
// shape the output set); pre-counting is off because the projected
// transactions lack the coarser levels it counts against (it is a lossless
// optimization, so the result set is unchanged).
//
// Duration-'*' path levels yield no conditions — every pin would be
// duration-'*', which stagePins rejects as vacuous — so mining is skipped
// there entirely.
func cellConds(cube *core.Cube, db *pathdb.DB, plIdx int, tids []int32) ([][]flowgraph.StagePin, error) {
	syms := cube.Symbols
	if syms.PathLevels()[plIdx].Time.Any {
		return nil, nil
	}
	txs := make([]transact.Transaction, len(tids))
	for i, tid := range tids {
		full := syms.EncodeStages(db.Records[tid].Path)
		var t transact.Transaction
		for _, it := range full {
			if syms.StageLevel(it) == plIdx {
				t = append(t, it)
			}
		}
		txs[i] = t
	}
	res, err := mining.Mine(syms, txs, mining.Options{
		MinCount:      cube.MinCount(),
		PruneAncestor: true,
		PruneLink:     true,
	})
	if err != nil {
		return nil, err
	}
	var conds [][]flowgraph.StagePin
	for _, counted := range res.All() {
		level, pins, ok := core.StagePins(syms, counted.Set)
		if !ok || level != plIdx {
			continue
		}
		conds = append(conds, pins)
	}
	return conds, nil
}

// schemaCompatible sanity-checks that a database's schema matches the
// cube's. Cubes loaded from snapshots reconstruct their schema, so pointer
// identity is too strict; the check is structural (dimension count and
// hierarchy sizes) — records of a structurally identical schema use the
// same node-id space, which is all delta application reads.
func schemaCompatible(a, b *pathdb.Schema) bool {
	if a == b {
		return true
	}
	if len(a.Dims) != len(b.Dims) || a.Location.Len() != b.Location.Len() {
		return false
	}
	for i := range a.Dims {
		if a.Dims[i].Len() != b.Dims[i].Len() {
			return false
		}
	}
	return true
}

// tidsMissing reports whether any materialized cell lacks its record-id
// list (cubes loaded from snapshots do not persist tids).
func tidsMissing(cube *core.Cube) bool {
	for _, cb := range cube.Cuboids {
		for _, cell := range cb.Cells {
			if cell.Count > 0 && cell.TIDs() == nil {
				return true
			}
		}
	}
	return false
}
