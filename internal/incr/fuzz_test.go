package incr_test

import (
	"errors"
	"sync"
	"testing"

	"flowcube/internal/core"
	"flowcube/internal/datagen"
	"flowcube/internal/hierarchy"
	"flowcube/internal/incr"
	"flowcube/internal/pathdb"
)

// fuzzFixture builds one small base cube per process; every fuzz iteration
// patches a Clone of it, so iterations are independent.
var fuzzFixture struct {
	once sync.Once
	ds   *datagen.Dataset
	cube *core.Cube
	err  error
}

func fuzzBase(t testing.TB) (*datagen.Dataset, *core.Cube) {
	fuzzFixture.once.Do(func() {
		cfg := datagen.Default()
		cfg.Seed = 41
		cfg.NumPaths = 60
		cfg.NumDims = 1
		cfg.DimFanouts = [3]int{2, 2, 3}
		fuzzFixture.ds = datagen.MustGenerate(cfg)
		fuzzFixture.cube, fuzzFixture.err = core.Build(fuzzFixture.ds.DB, core.Config{
			MinCount: 3, Tau: 0.5, Plan: fuzzFixture.ds.DefaultPlan(), DeltaLedger: true,
		})
	})
	if fuzzFixture.err != nil {
		t.Fatal(fuzzFixture.err)
	}
	return fuzzFixture.ds, fuzzFixture.cube
}

// decodeBatch turns fuzz bytes into an arbitrary batch — including records
// with out-of-range dimension values or locations, negative durations,
// empty paths, and duplicates. Validity is exactly what ApplyDelta must
// decide; the decoder only shapes bytes into records.
func decodeBatch(data []byte, dims int) []pathdb.Record {
	if len(data) == 0 {
		return nil
	}
	n := int(data[0] % 8)
	data = data[1:]
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	batch := make([]pathdb.Record, 0, n)
	for i := 0; i < n; i++ {
		rec := pathdb.Record{}
		nd := dims
		if next()%5 == 0 {
			nd = int(next() % 4) // wrong arity on purpose
		}
		for d := 0; d < nd; d++ {
			rec.Dims = append(rec.Dims, int32ToNodeID(next()))
		}
		steps := int(next() % 5) // 0 = empty path on purpose
		for sIdx := 0; sIdx < steps; sIdx++ {
			rec.Path = append(rec.Path, pathdb.Stage{
				Location: int32ToNodeID(next()),
				Duration: int64(int8(next())), // negative durations on purpose
			})
		}
		batch = append(batch, rec)
		if next()%4 == 0 && len(batch) > 0 {
			batch = append(batch, batch[len(batch)-1]) // duplicate
		}
	}
	return batch
}

func int32ToNodeID(b byte) hierarchy.NodeID { return hierarchy.NodeID(int8(b)) }

// FuzzApplyDelta asserts ApplyDelta never panics on arbitrary batches —
// corrupt, duplicate, or empty — and that every failure is a typed error.
// Successful applications must leave the cube structurally valid.
func FuzzApplyDelta(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 0, 1, 2, 0, 5, 1, 1, 2, 3})
	f.Add([]byte{7, 250, 0, 0, 200, 200, 9, 9, 9, 9, 9, 1, 2, 3, 4, 5, 6, 7, 8})
	ds, base := fuzzBase(f)
	baseRecords := append([]pathdb.Record(nil), ds.DB.Records...)

	f.Fuzz(func(t *testing.T, data []byte) {
		rawBatch := decodeBatch(data, len(ds.Schema.Dims))
		batch := make([]pathdb.Record, len(rawBatch))
		copy(batch, rawBatch)
		cube := base.Clone()
		db := &pathdb.DB{Schema: ds.Schema, Records: append([]pathdb.Record(nil), baseRecords...)}
		stats, err := incr.ApplyDelta(cube, db, batch)
		if err != nil {
			var be *incr.BatchError
			if !errors.As(err, &be) &&
				!errors.Is(err, incr.ErrNilCube) &&
				!errors.Is(err, incr.ErrNilDB) &&
				!errors.Is(err, incr.ErrAbsoluteMinCount) &&
				!errors.Is(err, incr.ErrCustomMining) &&
				!errors.Is(err, incr.ErrSchemaMismatch) {
				t.Fatalf("untyped error: %v", err)
			}
			if db.Len() != len(baseRecords) {
				t.Fatalf("failed delta still appended records: %d -> %d", len(baseRecords), db.Len())
			}
			return
		}
		if stats.BatchRecords != len(batch) {
			t.Fatalf("stats.BatchRecords = %d, want %d", stats.BatchRecords, len(batch))
		}
		if err := cube.Validate(); err != nil {
			t.Fatalf("cube invalid after delta: %v", err)
		}
	})
}
