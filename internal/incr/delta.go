package incr

// Delta application: the writes to core.Cube state live in this file, which
// internal/lint's immutcube analyzer allowlists as a legitimate build-phase
// writer — ApplyDelta mutates only cubes the caller owns exclusively (a
// fresh build, or a core.Cube.Clone made to be patched; see the server's
// append path).

import (
	"sort"

	"flowcube/internal/core"
	"flowcube/internal/flowgraph"
	"flowcube/internal/pathdb"
)

// ApplyDelta appends a batch of records to the cube and its database,
// updating only the affected state. On success db holds the union database
// (base records followed by the batch) and the cube is exactly what a full
// Build over that union with the same configuration would produce — byte
// identical under Save.
//
// The batch is validated atomically up front: any invalid record rejects
// the whole call with a *BatchError before anything changes. The cube must
// carry an absolute iceberg threshold (Config.MinCount > 0) and no
// MiningOptions override; see the package comment for why.
//
// ApplyDelta must not run concurrently with readers of cube, db, or the
// cube's symbol table. Long-lived servers should patch a Clone and swap
// snapshots (internal/server does).
func ApplyDelta(cube *core.Cube, db *pathdb.DB, batch []pathdb.Record) (*Stats, error) {
	if cube == nil {
		return nil, ErrNilCube
	}
	if db == nil {
		return nil, ErrNilDB
	}
	cfg := cube.Config
	if cfg.MinCount <= 0 {
		return nil, ErrAbsoluteMinCount
	}
	if cfg.MiningOptions != nil {
		return nil, ErrCustomMining
	}
	if !schemaCompatible(db.Schema, cube.Schema) {
		return nil, ErrSchemaMismatch
	}
	for i := range batch {
		if err := db.Schema.ValidateRecord(batch[i]); err != nil {
			return nil, &BatchError{Index: i, Err: err}
		}
	}
	stats := &Stats{BatchRecords: len(batch), LedgerSize: cube.Ledger().Size()}
	if len(batch) == 0 {
		return stats, nil
	}

	minCount := cube.MinCount()
	baseLen := db.Len()

	// Exception re-mining needs every touched cell's full record set; cubes
	// loaded from snapshots carry no tids, so recover them once from the
	// base database (before the batch lands in it).
	if cfg.MineExceptions && tidsMissing(cube) {
		cube.RebuildTIDs(db)
	}
	haveTids := !tidsMissing(cube)

	// Batch combo accounting: every (item level, values) combination a
	// batch record maps to either hits an existing cell — the assignment
	// pass below handles those — or is an admission candidate.
	levels := cube.ItemLevels()
	reps := representativeCuboids(cube, levels)
	candidates := make(map[int]map[string]*combo)
	var candOrder []*combo
	for i := range batch {
		tid := int32(baseLen + i)
		for li := range levels {
			if reps[li] == nil {
				continue
			}
			values := valuesAt(db.Schema, levels[li], batch[i].Dims)
			ck := core.CellKey(values)
			if _, exists := reps[li].Cells[ck]; exists {
				continue
			}
			if candidates[li] == nil {
				candidates[li] = make(map[string]*combo)
			}
			c := candidates[li][ck]
			if c == nil {
				c = &combo{levelIdx: li, values: values}
				candidates[li][ck] = c
				candOrder = append(candOrder, c)
			}
			c.count++
			c.tids = append(c.tids, tid)
		}
	}

	// Admission: a candidate crosses δ when its base count — from the sub-δ
	// ledger, or from one restricted base scan when the cube carries none —
	// plus its batch count reaches the threshold. The ledger is maintained
	// exactly: combinations still below δ are bumped, admitted ones leave it.
	var admitted []*combo
	ledger := cube.Ledger()
	if len(candOrder) > 0 && ledger == nil {
		scanBase(db, baseLen, levels, candidates)
	}
	needBaseTids := make(map[int]map[string]*combo)
	for _, c := range candOrder {
		var base int64
		if ledger != nil {
			base = ledger.Count(levels[c.levelIdx], c.values)
		} else {
			base = int64(len(c.baseTids))
		}
		if base+c.count >= minCount {
			admitted = append(admitted, c)
			if ledger != nil {
				ledger.Remove(levels[c.levelIdx], c.values)
				if base > 0 {
					if needBaseTids[c.levelIdx] == nil {
						needBaseTids[c.levelIdx] = make(map[string]*combo)
					}
					needBaseTids[c.levelIdx][core.CellKey(c.values)] = c
				}
			}
		} else if ledger != nil {
			ledger.Bump(levels[c.levelIdx], c.values, c.count)
		}
	}
	// With a ledger, admitted combos with base occurrences still need their
	// base record ids for flowgraph construction: one scan restricted to
	// exactly those combinations.
	scanBase(db, baseLen, levels, needBaseTids)

	// The batch lands in the database: db is the union from here on.
	for i := range batch {
		if err := db.Append(batch[i]); err != nil {
			return nil, &BatchError{Index: i, Err: err}
		}
	}
	// Intern the batch's items in record order, mirroring a full build's
	// encode pass: item ids — and therefore mined-itemset order, and
	// therefore exception pin order — match the full build exactly.
	for i := baseLen; i < db.Len(); i++ {
		cube.Symbols.EncodeRecord(db.Records[i])
	}

	type touchedCell struct {
		cuboid *core.Cuboid
		cell   *core.Cell
		// batchTIDs are the appended record ids that landed in the cell —
		// the restricted re-mine derives the moved prefixes from them.
		batchTIDs []int32
		// admitted marks newly materialized cells, whose whole graph is new
		// and must mine in full.
		admitted bool
	}
	var touched []touchedCell

	// Touched existing cells: route the appended range through the same
	// packed-key assignment plan the populate scan uses, then fold the new
	// paths into each hit cell's flowgraph.
	assignments := cube.AssignRange(db, baseLen, db.Len())
	pathLevels := cube.Symbols.PathLevels()
	for _, a := range assignments {
		a.Cell.Count += int64(len(a.TIDs))
		if haveTids {
			a.Cell.SetTIDs(append(a.Cell.TIDs(), a.TIDs...))
		}
		if a.Cell.Graph != nil {
			for _, tid := range a.TIDs {
				a.Cell.Graph.AddPath(db.Records[tid].Path)
			}
			if !cfg.MineExceptions {
				// The cube's configuration mines no exceptions, so a
				// freshly built union cube has none; drop any stale set a
				// loaded snapshot carried into the touched cell.
				a.Cell.Graph.ClearExceptions()
			}
		}
		touched = append(touched, touchedCell{cuboid: a.Cuboid, cell: a.Cell, batchTIDs: a.TIDs})
	}
	stats.CellsTouched = len(assignments)

	// Admitted cells: register in every cuboid sharing the item level (as
	// the build phase does for mined frequent cells) and build their
	// flowgraphs from the union record set.
	cuboidKeys := make([]string, 0, len(cube.Cuboids))
	for k := range cube.Cuboids {
		cuboidKeys = append(cuboidKeys, k)
	}
	sort.Strings(cuboidKeys)
	for _, c := range admitted {
		il := levels[c.levelIdx]
		tids := append(append([]int32(nil), c.baseTids...), c.tids...)
		cube.AdmitCell(il, c.values, int64(len(tids)))
		ilKey := il.Key()
		ck := core.CellKey(c.values)
		for _, key := range cuboidKeys {
			cb := cube.Cuboids[key]
			if cb.Spec.Item.Key() != ilKey {
				continue
			}
			cell := cb.Cells[ck]
			if cell == nil {
				continue
			}
			if haveTids {
				cell.SetTIDs(append([]int32(nil), tids...))
			}
			pl := pathLevels[cb.Spec.PathLevel]
			g := flowgraph.New(db.Schema.Location, pl, cfg.Merge)
			for _, tid := range tids {
				g.AddPath(db.Records[tid].Path)
			}
			cell.Graph = g
			touched = append(touched, touchedCell{cuboid: cb, cell: cell, admitted: true})
			stats.CellsAdmitted++
		}
	}

	// Exceptions: recompute exactly, per touched cell, over its union
	// records. With a warm condition cache the restricted path
	// (restricted.go) retains exceptions at unmoved prefixes and re-mines
	// only what the batch moved; otherwise — cold cache (cube loaded from a
	// snapshot) or a freshly admitted cell — fall back to the full re-mine:
	// replace the whole set (MineExceptions replaces; without the
	// single-stage pass the set is cleared first since MineExceptionsFor
	// appends) with conditions re-derived by in-cell mining (cellConds),
	// warming the cache for the next batch. Both paths produce byte-identical
	// Save output.
	if cfg.MineExceptions {
		for _, t := range touched {
			cell := t.cell
			if cell.Graph == nil {
				continue
			}
			specKey := t.cuboid.Spec.Key()
			ck := core.CellKey(cell.Values)
			tids := cell.TIDs()
			paths := make([]pathdb.Path, len(tids))
			for k, tid := range tids {
				paths[k] = db.Records[tid].Path
			}
			if old, warm := cube.CachedConds(specKey, ck); warm && !t.admitted {
				movedPrefixes, newConds, err := remineRestricted(cube, db, t.cuboid, cell, t.batchTIDs, paths, old, minCount)
				if err != nil {
					return nil, err
				}
				if len(newConds) > 0 {
					all := make([][]flowgraph.StagePin, 0, len(old.Pins)+len(newConds))
					all = append(append(all, old.Pins...), newConds...)
					cube.SetCachedConds(specKey, ck, all)
				}
				stats.CellsReminedRestricted++
				stats.PrefixesRemined += movedPrefixes
			} else {
				if cfg.SingleStageExceptions {
					cell.Graph.MineExceptions(paths, cfg.Epsilon, minCount)
				} else {
					cell.Graph.ClearExceptions()
				}
				conds, err := cellConds(cube, db, t.cuboid.Spec.PathLevel, tids)
				if err != nil {
					return nil, err
				}
				if len(conds) > 0 {
					cell.Graph.MineExceptionsFor(paths, conds, cfg.Epsilon, minCount)
				}
				cube.SetCachedConds(specKey, ck, conds)
			}
			stats.ExceptionsRemined++
		}
	}

	// Redundancy frontier: every touched or admitted cell, plus every cell
	// with one of them as an item-lattice parent, is re-marked against the
	// current lattice. Markings read only other cells' graphs — all final
	// by now — so the re-mark order is irrelevant.
	if cfg.Tau > 0 {
		touchedIDs := make(map[string]bool, len(touched))
		for _, t := range touched {
			touchedIDs[t.cuboid.Spec.Key()+"|"+core.CellKey(t.cell.Values)] = true
		}
		for _, key := range cuboidKeys {
			cb := cube.Cuboids[key]
			for _, cell := range cb.SortedCells() {
				need := touchedIDs[cb.Spec.Key()+"|"+core.CellKey(cell.Values)]
				if !need {
					for _, p := range cube.ParentRefs(cb.Spec, cell.Values) {
						if touchedIDs[p.Spec.Key()+"|"+core.CellKey(p.Values)] {
							need = true
							break
						}
					}
				}
				if need {
					cube.MarkCellRedundancy(cb.Spec, cell, cfg.Tau)
					stats.RedundancyRemarked++
				}
			}
		}
	}

	stats.LedgerSize = cube.Ledger().Size()
	return stats, nil
}

// representativeCuboids picks, per item level, one materialized cuboid to
// answer cell-existence checks (every cuboid sharing an item level holds
// the same cell set; addCell registers cells in all of them).
func representativeCuboids(cube *core.Cube, levels []core.ItemLevel) []*core.Cuboid {
	reps := make([]*core.Cuboid, len(levels))
	for li, il := range levels {
		key := il.Key()
		for _, cb := range cube.Cuboids {
			if cb.Spec.Item.Key() == key {
				reps[li] = cb
				break
			}
		}
	}
	return reps
}
