package incr

// Restricted exception re-mining: the batch-proportional replacement for
// re-mining every touched cell from scratch (DESIGN.md §11).
//
// The full path re-derives a touched cell's conditions by mining all of its
// transactions (cellConds) and replaces its whole exception set — cost
// tracking cube size, not batch size. The restricted path exploits two
// facts, both consequences of appends moving supports only upward:
//
//  1. An exception is keyed by a target node, and every aggregate behind it
//     depends only on the paths running through that target. Nodes on no
//     batch path ("unmoved") keep their exceptions verbatim; only moved
//     targets re-aggregate.
//
//  2. A condition frequent over the union but not over the base consists
//     solely of "moved" items — stage items some batch record carries —
//     because its support rose, so some batch transaction contains all of
//     it. Projecting the cell's transactions to the moved items preserves
//     the support of every such set, so one fp-growth run over the
//     projection (internal/fpgrowth), post-filtered with the same
//     hereditary predicates the Shared run prunes with, finds exactly the
//     new conditions. Old conditions stay frequent (supports are monotone)
//     and are remembered in the cube's condition cache (core/conds.go).
//
// The recombination — retained exceptions at unmoved targets, single-stage
// and old-condition mining at moved targets, new-condition mining at all
// targets, then one dedup+sort seal — reproduces the full re-mine's set
// byte-identically; incr's save-digest property tests exercise it on every
// build (Build warms the cache, so chained ApplyDelta calls run restricted).

import (
	"flowcube/internal/core"
	"flowcube/internal/flowgraph"
	"flowcube/internal/fpgrowth"
	"flowcube/internal/pathdb"
	"flowcube/internal/transact"
)

// remineRestricted recomputes one touched cell's exceptions from its cached
// condition set and the batch records that landed in it, and returns the
// moved-prefix count (for stats) and the newly frequent conditions (for the
// caller to fold into the cache). paths is the cell's full union record
// set; the cell must have a graph.
func remineRestricted(cube *core.Cube, db *pathdb.DB, cuboid *core.Cuboid, cell *core.Cell, batchTIDs []int32, paths []pathdb.Path, old *core.CondSet, minCount int64) (int, [][]flowgraph.StagePin, error) {
	cfg := cube.Config
	g := cell.Graph
	batchPaths := make([]pathdb.Path, len(batchTIDs))
	for i, tid := range batchTIDs {
		batchPaths[i] = db.Records[tid].Path
	}
	moved := g.MovedNodes(batchPaths)
	g.RetainExceptions(func(x *flowgraph.Exception) bool { return !moved[x.Node] })
	if cfg.SingleStageExceptions {
		g.MineExceptionsAt(paths, moved, cfg.Epsilon, minCount)
	}
	newConds, err := cellCondsDelta(cube, db, cuboid.Spec.PathLevel, cell.TIDs(), batchTIDs, old)
	if err != nil {
		return 0, nil, err
	}
	if len(old.Pins) > 0 {
		// Old conditions can only produce changed exceptions at moved
		// targets; the unmoved ones were just retained.
		g.MineExceptionsForAt(paths, old.Pins, moved, cfg.Epsilon, minCount)
	}
	if len(newConds) > 0 {
		// New conditions pin moved items, but base paths matching them may
		// continue through unmoved nodes — mine them at every target.
		g.MineExceptionsForAt(paths, newConds, nil, cfg.Epsilon, minCount)
	}
	g.SealExceptions()
	return len(moved), newConds, nil
}

// cellCondsDelta finds the conditions newly frequent among a cell's records
// after a batch: fp-growth over the cell's transactions projected to the
// batch's stage items at the cuboid's path level, post-filtered with the
// Shared run's pruning predicates and the build phase's pin filters, minus
// anything already in the old condition set. See the file comment for the
// exactness argument; cellConds (incr.go) documents the shared projection
// and filter conventions.
func cellCondsDelta(cube *core.Cube, db *pathdb.DB, plIdx int, tids, batchTIDs []int32, old *core.CondSet) ([][]flowgraph.StagePin, error) {
	syms := cube.Symbols
	if syms.PathLevels()[plIdx].Time.Any {
		return nil, nil
	}
	movedItems := make(map[transact.Item]bool)
	for _, tid := range batchTIDs {
		for _, it := range syms.EncodeStages(db.Records[tid].Path) {
			if syms.StageLevel(it) == plIdx {
				movedItems[it] = true
			}
		}
	}
	if len(movedItems) == 0 {
		return nil, nil
	}
	txs := make([]transact.Transaction, 0, len(tids))
	for _, tid := range tids {
		var t transact.Transaction
		for _, it := range syms.EncodeStages(db.Records[tid].Path) {
			if syms.StageLevel(it) == plIdx && movedItems[it] {
				t = append(t, it)
			}
		}
		if len(t) > 0 {
			txs = append(txs, t)
		}
	}
	var conds [][]flowgraph.StagePin
	for _, counted := range fpgrowth.Mine(txs, cube.MinCount(), 0) {
		set := counted.Set
		if syms.HasAncestorPair(set) || !syms.AllLinkable(set) {
			continue
		}
		level, pins, ok := core.StagePins(syms, set)
		if !ok || level != plIdx {
			continue
		}
		if old.Has(pins) {
			// Already a condition of the base cell. A duplicate slot would
			// mine identical exceptions and fall to the dedup seal anyway.
			continue
		}
		conds = append(conds, pins)
	}
	return conds, nil
}
