package flowgraph

import "fmt"

// Fold returns the exact associative fold of graphs: a fresh graph holding
// the union of every input's path observations, built by Merge (paper
// Lemma 4.2 — duration and transition distributions are algebraic, so the
// result is independent of fold order and identical to a graph built from
// the concatenated paths). Exceptions are holistic (Lemma 4.3) and cannot
// be folded; the result carries none. Inputs are not mutated.
//
// This is the shared fold path: incr's delta maintenance relies on the same
// Merge associativity when folding appended paths into touched cells, the
// merge-ablation benchmark measures it, and the OLAP engine (internal/olap,
// core.Answer) uses Fold to reconstruct non-materialized cells from their
// materialized descendants at query time.
func Fold(graphs []*Graph) (*Graph, error) {
	if len(graphs) == 0 {
		return nil, fmt.Errorf("flowgraph: fold of zero graphs")
	}
	out := graphs[0].Clone()
	out.ClearExceptions()
	for _, g := range graphs[1:] {
		if err := out.Merge(g); err != nil {
			return nil, err
		}
	}
	return out, nil
}
