package flowgraph_test

import (
	"reflect"
	"testing"

	"flowcube/internal/flowgraph"
	"flowcube/internal/paperex"
)

// flattenFixture builds the full Table-1 graph with mined exceptions and
// returns it alongside its columnar form.
func flattenFixture(t *testing.T) (*paperex.Example, *flowgraph.Graph, *flowgraph.Flat) {
	t.Helper()
	ex := paperex.New()
	paths := basePaths(ex)
	g := flowgraph.Build(ex.Location, ex.BasePathLevel(), paths, nil)
	g.MineExceptions(paths, 0.1, 2)
	if len(g.Exceptions()) == 0 {
		t.Fatal("fixture mined no exceptions")
	}
	return ex, g, flowgraph.Flatten(g)
}

func TestFlattenUnflattenRoundTrip(t *testing.T) {
	ex, g, f := flattenFixture(t)
	g2, err := flowgraph.Unflatten(ex.Location, ex.BasePathLevel(), f)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Paths() != g.Paths() {
		t.Errorf("paths: %d vs %d", g2.Paths(), g.Paths())
	}
	if d := flowgraph.Divergence(g, g2) + flowgraph.Divergence(g2, g); d > 1e-12 {
		t.Errorf("round-tripped graph diverges by %g", d)
	}
	ox, lx := g.Exceptions(), g2.Exceptions()
	if len(ox) != len(lx) {
		t.Fatalf("exceptions: %d vs %d", len(lx), len(ox))
	}
	for i := range ox {
		if ox[i].Support != lx[i].Support ||
			len(ox[i].Condition) != len(lx[i].Condition) ||
			ox[i].Node.Depth != lx[i].Node.Depth ||
			ox[i].Node.Location != lx[i].Node.Location {
			t.Errorf("exception %d mismatch after round trip", i)
		}
	}
	// Re-flattening the reconstruction reproduces the exact columns:
	// Flatten orders nodes deterministically, so this pins both directions.
	if f2 := flowgraph.Flatten(g2); !reflect.DeepEqual(f, f2) {
		t.Error("re-flattened columns differ from the original flattening")
	}
}

func TestFlattenUnflattenNoExceptions(t *testing.T) {
	ex := paperex.New()
	g := flowgraph.Build(ex.Location, ex.BasePathLevel(), basePaths(ex), nil)
	f := flowgraph.Flatten(g)
	if len(f.ExcNode) != 0 || len(f.ExcPinLo) != 1 || len(f.ExcDurLo) != 1 {
		t.Fatalf("unexpected exception columns: %d nodes, %d/%d sentinels",
			len(f.ExcNode), len(f.ExcPinLo), len(f.ExcDurLo))
	}
	g2, err := flowgraph.Unflatten(ex.Location, ex.BasePathLevel(), f)
	if err != nil {
		t.Fatal(err)
	}
	if d := flowgraph.Divergence(g, g2) + flowgraph.Divergence(g2, g); d > 1e-12 {
		t.Errorf("round-tripped graph diverges by %g", d)
	}
}

// TestUnflattenRejectsInvalid feeds Unflatten structurally corrupt columns
// and expects an error for each — this is the validation layer the snapshot
// decoder leans on after its own bounds checks pass.
func TestUnflattenRejectsInvalid(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(f *flowgraph.Flat)
	}{
		{"child range before self", func(f *flowgraph.Flat) { f.ChildLo[1] = 0 }},
		{"child range decreasing", func(f *flowgraph.Flat) {
			f.ChildLo[2] = f.ChildLo[1] - 1
		}},
		{"last child range open", func(f *flowgraph.Flat) {
			f.ChildLo[len(f.ChildLo)-1]--
		}},
		{"negative count", func(f *flowgraph.Flat) { f.Counts[1] = -1 }},
		{"duration offsets cross", func(f *flowgraph.Flat) { f.TrLo[0] = f.DurLo[1] + 1 }},
		{"outcomes not increasing", func(f *flowgraph.Flat) {
			// Node 1 (the factory) has two duration outcomes; make them equal.
			f.Outcomes[f.DurLo[1]+1] = f.Outcomes[f.DurLo[1]]
		}},
		{"exception node out of range", func(f *flowgraph.Flat) {
			f.ExcNode[0] = int32(f.NumNodes())
		}},
		{"exception pins unsorted", func(f *flowgraph.Flat) {
			f.ExcPinLo[1] = f.ExcPinLo[0] - 1
		}},
		{"location out of hierarchy", func(f *flowgraph.Flat) { f.Locations[1] = 1 << 20 }},
		{"truncated columns", func(f *flowgraph.Flat) { f.Counts = f.Counts[:1] }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ex, _, f := flattenFixture(t)
			tc.corrupt(f)
			if _, err := flowgraph.Unflatten(ex.Location, ex.BasePathLevel(), f); err == nil {
				t.Error("corrupt flat graph accepted")
			}
		})
	}
}
