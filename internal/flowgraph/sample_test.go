package flowgraph_test

import (
	"math"
	"math/rand"
	"testing"

	"flowcube/internal/flowgraph"
	"flowcube/internal/hierarchy"
	"flowcube/internal/paperex"
	"flowcube/internal/pathdb"
	"flowcube/internal/stats"
)

func TestValidateBuiltGraphs(t *testing.T) {
	ex := paperex.New()
	paths := basePaths(ex)
	for _, level := range []pathdb.PathLevel{
		ex.BasePathLevel(), ex.TransportPathLevel(), ex.StorePathLevel(),
	} {
		g := flowgraph.Build(ex.Location, level, paths, nil)
		if err := g.Validate(); err != nil {
			t.Errorf("built graph at %s invalid: %v", level.Key(), err)
		}
	}
	// Merged graphs stay valid.
	a := flowgraph.Build(ex.Location, ex.BasePathLevel(), paths[:4], nil)
	b := flowgraph.Build(ex.Location, ex.BasePathLevel(), paths[4:], nil)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Errorf("merged graph invalid: %v", err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	ex := paperex.New()
	g := flowgraph.Build(ex.Location, ex.BasePathLevel(), basePaths(ex), nil)
	// Graft a node with inconsistent counts: Validate must object.
	bad := stats.NewMultinomial()
	bad.Add(1, 3)
	if err := g.Graft([]hierarchy.NodeID{ex.Location.MustLookup("f")}, 99, bad, bad); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err == nil {
		t.Errorf("corrupted graph validated")
	}
}

// TestSampleConvergence: sampled paths' empirical route frequencies
// converge to the model's route probabilities, and every sampled path gets
// positive model probability.
func TestSampleConvergence(t *testing.T) {
	ex := paperex.New()
	g := flowgraph.Build(ex.Location, ex.BasePathLevel(), basePaths(ex), nil)
	rng := rand.New(rand.NewSource(3))

	const n = 20000
	counts := map[string]int{}
	keyOf := func(p pathdb.Path) string {
		s := ""
		for _, st := range p {
			s += string(rune(st.Location)) + "|"
		}
		return s
	}
	for i := 0; i < n; i++ {
		p := g.Sample(rng)
		if len(p) == 0 {
			t.Fatal("sampled an empty path")
		}
		if g.PathProb(p) <= 0 {
			t.Fatalf("sampled path has zero model probability: %v", p)
		}
		counts[keyOf(p)]++
	}
	// The dominant route f,d,t,s,c has marginal probability 3/8 on routes.
	routes := g.TopPaths(1)
	want := routes[0].Prob
	gotKey := ""
	var seq pathdb.Path
	for _, l := range routes[0].Locations {
		seq = append(seq, pathdb.Stage{Location: l})
	}
	gotKey = keyOf(seq)
	got := float64(counts[gotKey]) / n
	if math.Abs(got-want) > 0.02 {
		t.Errorf("top route frequency %g, model %g", got, want)
	}
}

func TestSampleEmptyGraph(t *testing.T) {
	ex := paperex.New()
	g := flowgraph.New(ex.Location, ex.BasePathLevel(), nil)
	if p := g.Sample(rand.New(rand.NewSource(1))); len(p) != 0 {
		t.Errorf("empty graph sampled a path: %v", p)
	}
}
