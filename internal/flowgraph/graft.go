package flowgraph

// Reconstruction primitives used when deserializing a persisted flowgraph:
// they rebuild the prefix tree node by node from previously computed
// distributions instead of replaying paths. They are also the extension
// point for loading flowgraphs computed by external systems.

import (
	"fmt"

	"flowcube/internal/hierarchy"
	"flowcube/internal/stats"
)

// SetRootTransitions installs the total path count and the distribution
// over first stages. Any existing counts at the root are replaced.
func (g *Graph) SetRootTransitions(paths int64, tr *stats.Multinomial) {
	g.paths = paths
	g.root.Transitions = tr
}

// Graft installs (or overwrites) the node at the given location prefix
// with precomputed count and distributions. Every strict prefix must have
// been grafted before, so callers rebuild the tree top-down.
func (g *Graph) Graft(seq []hierarchy.NodeID, count int64, durations, transitions *stats.Multinomial) error {
	if len(seq) == 0 {
		return fmt.Errorf("flowgraph: cannot graft an empty prefix")
	}
	parent := g.root
	for _, l := range seq[:len(seq)-1] {
		parent = parent.Child(l)
		if parent == nil {
			return fmt.Errorf("flowgraph: graft of %v before its prefix", seq)
		}
	}
	loc := seq[len(seq)-1]
	n := parent.Child(loc)
	if n == nil {
		n = &Node{
			Location: loc,
			Depth:    parent.Depth + 1,
			parent:   parent,
			children: make(map[hierarchy.NodeID]*Node),
		}
		parent.children[loc] = n
	}
	n.Count = count
	n.Durations = durations
	n.Transitions = transitions
	return nil
}

// GraftException installs a previously mined exception at the node
// identified by its location prefix.
func (g *Graph) GraftException(prefix []hierarchy.NodeID, cond []StagePin, support int64,
	durations, transitions *stats.Multinomial, devD, devT float64) error {
	n := g.NodeAt(prefix)
	if n == nil {
		return fmt.Errorf("flowgraph: exception references missing node %v", prefix)
	}
	g.exceptions = append(g.exceptions, Exception{
		Node:                n,
		Condition:           append([]StagePin(nil), cond...),
		Support:             support,
		Durations:           durations,
		Transitions:         transitions,
		DurationDeviation:   devD,
		TransitionDeviation: devT,
	})
	return nil
}
