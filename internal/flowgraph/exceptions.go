package flowgraph

import (
	"sort"

	"flowcube/internal/pathdb"
	"flowcube/internal/stats"
)

// Exception mining (paper §3, step 3 of flowgraph computation).
//
// Because the flowgraph is a prefix tree, a node's general distributions
// are already conditioned on the *locations* of its prefix; what exceptions
// add is conditioning on the *durations* spent at earlier stages — the
// paper's examples: "the transition probability from the truck to the
// warehouse ... is in general 33%, but that probability is 50% when we stay
// for just 1 hour at the truck", and the distribution-of-durations change
// given 5 hours at the factory.
//
// MineExceptions conditions on every single earlier stage duration with
// minimum support δ (expressed as a count). MineExceptionsFor additionally
// accepts arbitrary multi-stage conditions — typically the frequent path
// segments produced by the Shared algorithm — and checks each one.

type condKey struct {
	condNode *Node
	condDur  int64
	target   *Node
}

type condAgg struct {
	dur *stats.Multinomial
	tr  *stats.Multinomial
}

// MineExceptions scans the raw paths once, aggregating each to the graph's
// level, and records every exception whose condition is a single earlier
// stage duration: support ≥ minCount and L∞ deviation of the conditional
// duration or transition distribution from the node's general one > eps.
// Previously mined exceptions are replaced.
func (g *Graph) MineExceptions(paths []pathdb.Path, eps float64, minCount int64) {
	agg := make(map[condKey]*condAgg)
	for _, p := range paths {
		ap := pathdb.AggregatePath(p, g.level, g.merge)
		nodes, outcomes := g.walk(ap)
		if nodes == nil {
			continue
		}
		// j ranges from i (not i+1): conditioning a node's transition on
		// its own duration is the paper's truck example; the duration axis
		// of such self-conditions is vacuous and filtered downstream.
		for i := 0; i < len(nodes); i++ {
			for j := i; j < len(nodes); j++ {
				k := condKey{condNode: nodes[i], condDur: ap[i].Duration, target: nodes[j]}
				a := agg[k]
				if a == nil {
					a = &condAgg{dur: stats.NewMultinomial(), tr: stats.NewMultinomial()}
					agg[k] = a
				}
				a.dur.Observe(ap[j].Duration)
				a.tr.Observe(outcomes[j])
			}
		}
	}
	g.exceptions = g.exceptions[:0]
	for k, a := range agg {
		g.appendException(k.target, []StagePin{{
			Depth:    k.condNode.Depth,
			Location: k.condNode.Location,
			Duration: k.condDur,
		}}, a, eps, minCount)
	}
	g.sortExceptions()
}

// MineExceptionsFor checks the supplied conditions — each a set of pins on
// earlier stages, typically derived from frequent path segments — in a
// single scan of the paths and records those inducing deviations > eps with
// support ≥ minCount. Exceptions are appended to the existing set (then
// deduplicated by node and condition).
func (g *Graph) MineExceptionsFor(paths []pathdb.Path, conditions [][]StagePin, eps float64, minCount int64) {
	type slot struct {
		cond   []StagePin
		maxPin int
		aggs   map[*Node]*condAgg
	}
	slots := make([]*slot, 0, len(conditions))
	for _, c := range conditions {
		if len(c) == 0 {
			continue
		}
		cc := append([]StagePin(nil), c...)
		sort.Slice(cc, func(i, j int) bool { return cc[i].Depth < cc[j].Depth })
		slots = append(slots, &slot{cond: cc, maxPin: cc[len(cc)-1].Depth, aggs: make(map[*Node]*condAgg)})
	}
	for _, p := range paths {
		ap := pathdb.AggregatePath(p, g.level, g.merge)
		nodes, outcomes := g.walk(ap)
		if nodes == nil {
			continue
		}
		for _, s := range slots {
			if !pinsMatch(ap, s.cond) {
				continue
			}
			// Targets start at the deepest pinned node itself (index
			// maxPin-1): its transition may deviate under the condition.
			for j := s.maxPin - 1; j < len(nodes); j++ {
				a := s.aggs[nodes[j]]
				if a == nil {
					a = &condAgg{dur: stats.NewMultinomial(), tr: stats.NewMultinomial()}
					s.aggs[nodes[j]] = a
				}
				a.dur.Observe(ap[j].Duration)
				a.tr.Observe(outcomes[j])
			}
		}
	}
	for _, s := range slots {
		for target, a := range s.aggs {
			g.appendException(target, s.cond, a, eps, minCount)
		}
	}
	g.dedupExceptions()
	g.sortExceptions()
}

// walk resolves the tree nodes and per-position transition outcomes of an
// aggregated path; nil when the path is empty.
func (g *Graph) walk(ap pathdb.Path) ([]*Node, []int64) {
	if len(ap) == 0 {
		return nil, nil
	}
	nodes := make([]*Node, len(ap))
	outcomes := make([]int64, len(ap))
	cur := g.root
	for i, st := range ap {
		cur = cur.Child(st.Location)
		if cur == nil {
			// The path was not folded into this graph; skip it rather than
			// invent structure during exception mining.
			return nil, nil
		}
		nodes[i] = cur
	}
	for i := 0; i < len(ap)-1; i++ {
		outcomes[i] = int64(ap[i+1].Location)
	}
	outcomes[len(ap)-1] = Terminate
	return nodes, outcomes
}

func pinsMatch(ap pathdb.Path, pins []StagePin) bool {
	for _, pin := range pins {
		i := pin.Depth - 1
		if i < 0 || i >= len(ap) {
			return false
		}
		if ap[i].Location != pin.Location {
			return false
		}
		if !pin.DurAny && ap[i].Duration != pin.Duration {
			return false
		}
	}
	return true
}

// appendException applies the (ε, δ) filter. The target's node-general
// distributions are the reference; conditions that pin the target's own
// duration would trivially deviate on the duration axis, so when the
// deepest pin is the target node itself only the transition axis counts.
func (g *Graph) appendException(target *Node, cond []StagePin, a *condAgg, eps float64, minCount int64) {
	if a.tr.Total() < minCount {
		return
	}
	devD := a.dur.MaxDeviation(target.Durations)
	devT := a.tr.MaxDeviation(target.Transitions)
	pinsTarget := cond[len(cond)-1].Depth == target.Depth
	significant := devT > eps || (!pinsTarget && devD > eps)
	if !significant {
		return
	}
	if pinsTarget {
		devD = 0
	}
	g.exceptions = append(g.exceptions, Exception{
		Node:                target,
		Condition:           append([]StagePin(nil), cond...),
		Support:             a.tr.Total(),
		Durations:           a.dur,
		Transitions:         a.tr,
		DurationDeviation:   devD,
		TransitionDeviation: devT,
	})
}

func exceptionKey(x Exception) string {
	var b []byte
	for _, l := range x.Node.Prefix() {
		b = append(b, byte(l), '.')
	}
	b = append(b, '|')
	for _, pin := range x.Condition {
		b = append(b, byte(pin.Depth), byte(pin.Location))
		if pin.DurAny {
			b = append(b, '*')
		} else {
			for s := 0; s < 8; s++ {
				b = append(b, byte(pin.Duration>>(8*s)))
			}
		}
	}
	return string(b)
}

func (g *Graph) dedupExceptions() {
	seen := make(map[string]bool, len(g.exceptions))
	out := g.exceptions[:0]
	for _, x := range g.exceptions {
		k := exceptionKey(x)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, x)
	}
	g.exceptions = out
}

func (g *Graph) sortExceptions() {
	sort.Slice(g.exceptions, func(i, j int) bool {
		return exceptionKey(g.exceptions[i]) < exceptionKey(g.exceptions[j])
	})
}
