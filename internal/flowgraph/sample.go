package flowgraph

import (
	"fmt"
	"math/rand"

	"flowcube/internal/hierarchy"
	"flowcube/internal/pathdb"
	"flowcube/internal/stats"
)

// Sampling and self-validation. A flowgraph is a generative model: Sample
// draws synthetic paths from it, which supports what-if simulation
// (replay a year of flows under last year's model) and closes the loop in
// tests — the empirical distributions of sampled paths converge to the
// model. Validate checks the structural invariants every well-formed
// flowgraph satisfies; it guards deserialized and hand-grafted graphs.

// Sample draws one path from the flowgraph's generative model: starting at
// the root, repeatedly pick a transition (or termination) from T and a
// duration from D. The graph must be non-empty.
func (g *Graph) Sample(rng *rand.Rand) pathdb.Path {
	var p pathdb.Path
	cur := g.root
	for {
		outcome, ok := sampleOutcome(rng, cur.Transitions)
		if !ok || outcome == Terminate {
			return p
		}
		loc := hierarchy.NodeID(outcome)
		next := cur.children[loc]
		if next == nil {
			// Counts and children can only disagree on a corrupted graph;
			// stop rather than invent structure.
			return p
		}
		dur, ok := sampleOutcome(rng, next.Durations)
		if !ok {
			dur = 0
		}
		p = append(p, pathdb.Stage{Location: loc, Duration: dur})
		cur = next
	}
}

func sampleOutcome(rng *rand.Rand, m *stats.Multinomial) (int64, bool) {
	total := m.Total()
	if total == 0 {
		return 0, false
	}
	r := rng.Int63n(total)
	for _, v := range m.Outcomes() {
		r -= m.Count(v)
		if r < 0 {
			return v, true
		}
	}
	return 0, false
}

// Validate checks the flowgraph's structural invariants:
//
//  1. every node's duration observations equal its Count;
//  2. every node's transition observations equal its Count (each visit
//     either terminates or moves on);
//  3. a transition outcome exists for exactly the node's children, and the
//     outcome count equals the child's Count;
//  4. the root's transition total equals Paths().
//
// It returns the first violation found, or nil.
func (g *Graph) Validate() error {
	if got := g.root.Transitions.Total(); got != g.paths {
		return fmt.Errorf("flowgraph: root transitions %d != paths %d", got, g.paths)
	}
	var walk func(n *Node) error
	walk = func(n *Node) error {
		if n.Depth > 0 {
			if got := n.Durations.Total(); got != n.Count {
				return fmt.Errorf("flowgraph: node %v durations %d != count %d", n.Prefix(), got, n.Count)
			}
			if got := n.Transitions.Total(); got != n.Count {
				return fmt.Errorf("flowgraph: node %v transitions %d != count %d", n.Prefix(), got, n.Count)
			}
		}
		var childSum int64
		for _, c := range n.Children() {
			if got := n.Transitions.Count(int64(c.Location)); got != c.Count {
				return fmt.Errorf("flowgraph: node %v transition to %d is %d, child count %d",
					n.Prefix(), c.Location, got, c.Count)
			}
			childSum += c.Count
			if err := walk(c); err != nil {
				return err
			}
		}
		var total int64
		if n.Depth > 0 {
			total = n.Count
		} else {
			total = g.paths
		}
		if term := n.Transitions.Count(Terminate); childSum+term != total {
			return fmt.Errorf("flowgraph: node %v children+terminations %d != count %d",
				n.Prefix(), childSum+term, total)
		}
		return nil
	}
	return walk(g.root)
}
