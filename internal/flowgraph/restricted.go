package flowgraph

import (
	"sort"

	"flowcube/internal/pathdb"
	"flowcube/internal/stats"
)

// Restricted exception re-mining (the serving layer's incremental path).
//
// Exceptions are keyed by a target node; every aggregate behind one —
// support, conditional duration and transition multinomials, and the
// node-general reference distributions — depends only on the paths that run
// through the target. A batch therefore cannot change any exception whose
// target lies on none of the batch paths, so the delta fold retains those
// verbatim (RetainExceptions) and re-mines only at moved targets
// (MineExceptionsAt / MineExceptionsForAt with a target set), sealing with
// the same dedup+sort the full miners use so the result is byte-identical
// to mining from scratch. See DESIGN.md §11 for the full argument.

// MovedNodes resolves the set of nodes lying on any of the given raw paths
// (after aggregation to the graph's level). These are exactly the nodes
// whose counts, distributions, or exception aggregates a fold of those
// paths can change.
func (g *Graph) MovedNodes(paths []pathdb.Path) map[*Node]bool {
	moved := make(map[*Node]bool)
	for _, p := range paths {
		ap := pathdb.AggregatePath(p, g.level, g.merge)
		nodes, _ := g.walk(ap)
		for _, n := range nodes {
			moved[n] = true
		}
	}
	return moved
}

// RetainExceptions drops every mined exception for which keep is false,
// preserving order. The serving layer uses it to keep exceptions whose
// target a batch did not move.
func (g *Graph) RetainExceptions(keep func(*Exception) bool) {
	out := g.exceptions[:0]
	for i := range g.exceptions {
		if keep(&g.exceptions[i]) {
			out = append(out, g.exceptions[i])
		}
	}
	g.exceptions = out
}

// MineExceptionsAt is MineExceptions restricted to targets: it scans paths
// once and appends single-stage-condition exceptions whose target is in the
// set, leaving existing exceptions in place. Callers must SealExceptions
// when every restricted pass is done.
func (g *Graph) MineExceptionsAt(paths []pathdb.Path, targets map[*Node]bool, eps float64, minCount int64) {
	agg := make(map[condKey]*condAgg)
	for _, p := range paths {
		ap := pathdb.AggregatePath(p, g.level, g.merge)
		nodes, outcomes := g.walk(ap)
		if nodes == nil {
			continue
		}
		for i := 0; i < len(nodes); i++ {
			for j := i; j < len(nodes); j++ {
				if !targets[nodes[j]] {
					continue
				}
				k := condKey{condNode: nodes[i], condDur: ap[i].Duration, target: nodes[j]}
				a := agg[k]
				if a == nil {
					a = &condAgg{dur: stats.NewMultinomial(), tr: stats.NewMultinomial()}
					agg[k] = a
				}
				a.dur.Observe(ap[j].Duration)
				a.tr.Observe(outcomes[j])
			}
		}
	}
	for k, a := range agg {
		g.appendException(k.target, []StagePin{{
			Depth:    k.condNode.Depth,
			Location: k.condNode.Location,
			Duration: k.condDur,
		}}, a, eps, minCount)
	}
}

// MineExceptionsForAt is MineExceptionsFor restricted to targets (a nil set
// means every target, as in MineExceptionsFor) and without the final
// dedup+sort: exceptions are appended and the caller seals once all
// restricted passes are done.
func (g *Graph) MineExceptionsForAt(paths []pathdb.Path, conditions [][]StagePin, targets map[*Node]bool, eps float64, minCount int64) {
	type slot struct {
		cond   []StagePin
		maxPin int
		aggs   map[*Node]*condAgg
	}
	slots := make([]*slot, 0, len(conditions))
	for _, c := range conditions {
		if len(c) == 0 {
			continue
		}
		cc := append([]StagePin(nil), c...)
		sort.Slice(cc, func(i, j int) bool { return cc[i].Depth < cc[j].Depth })
		slots = append(slots, &slot{cond: cc, maxPin: cc[len(cc)-1].Depth, aggs: make(map[*Node]*condAgg)})
	}
	for _, p := range paths {
		ap := pathdb.AggregatePath(p, g.level, g.merge)
		nodes, outcomes := g.walk(ap)
		if nodes == nil {
			continue
		}
		for _, s := range slots {
			if !pinsMatch(ap, s.cond) {
				continue
			}
			for j := s.maxPin - 1; j < len(nodes); j++ {
				if targets != nil && !targets[nodes[j]] {
					continue
				}
				a := s.aggs[nodes[j]]
				if a == nil {
					a = &condAgg{dur: stats.NewMultinomial(), tr: stats.NewMultinomial()}
					s.aggs[nodes[j]] = a
				}
				a.dur.Observe(ap[j].Duration)
				a.tr.Observe(outcomes[j])
			}
		}
	}
	for _, s := range slots {
		for target, a := range s.aggs {
			g.appendException(target, s.cond, a, eps, minCount)
		}
	}
}

// SealExceptions deduplicates and sorts the mined exceptions — the same
// normalization the full miners end with, so a sequence of restricted
// passes produces the identical final set regardless of pass order.
func (g *Graph) SealExceptions() {
	g.dedupExceptions()
	g.sortExceptions()
}
