package flowgraph

import (
	"sort"

	"flowcube/internal/hierarchy"
)

// Contrast answers the paper's introductory question 3 — "present a
// workflow that summarizes the item movement ... and contrast path
// durations with historic flow information for the same region" — by
// walking two flowgraphs (e.g. this year's cell vs. last year's) over the
// union of their prefixes and reporting, per node, how the duration and
// transition behaviour shifted.

// NodeDiff describes the shift at one path prefix between a current graph
// and a baseline graph.
type NodeDiff struct {
	// Prefix is the location sequence identifying the node.
	Prefix []hierarchy.NodeID
	// CurrentReach and BaselineReach are the empirical probabilities that
	// a path visits the node in each graph (0 when absent).
	CurrentReach, BaselineReach float64
	// DurationShift is the change in mean stay (current − baseline);
	// meaningless when either side is absent.
	DurationShift float64
	// DurationDeviation and TransitionDeviation are the L∞ distances
	// between the two nodes' distributions.
	DurationDeviation   float64
	TransitionDeviation float64
	// OnlyIn marks prefixes present in just one graph: +1 current-only,
	// -1 baseline-only, 0 both.
	OnlyIn int
}

// Weight orders diffs by how much flow they affect: the larger reach times
// the larger distribution deviation.
func (d NodeDiff) Weight() float64 {
	reach := d.CurrentReach
	if d.BaselineReach > reach {
		reach = d.BaselineReach
	}
	dev := d.DurationDeviation
	if d.TransitionDeviation > dev {
		dev = d.TransitionDeviation
	}
	if d.OnlyIn != 0 {
		dev = 1
	}
	return reach * dev
}

// Contrast compares current against baseline (both at the same path
// abstraction level) and returns per-node diffs ordered by decreasing
// Weight. k <= 0 returns all.
func Contrast(current, baseline *Graph, k int) []NodeDiff {
	var out []NodeDiff
	var walk func(prefix []hierarchy.NodeID, a, b *Node)
	walk = func(prefix []hierarchy.NodeID, a, b *Node) {
		seen := map[hierarchy.NodeID]bool{}
		var locs []hierarchy.NodeID
		if a != nil {
			for _, c := range a.Children() {
				if !seen[c.Location] {
					seen[c.Location] = true
					locs = append(locs, c.Location)
				}
			}
		}
		if b != nil {
			for _, c := range b.Children() {
				if !seen[c.Location] {
					seen[c.Location] = true
					locs = append(locs, c.Location)
				}
			}
		}
		sort.Slice(locs, func(i, j int) bool { return locs[i] < locs[j] })
		for _, loc := range locs {
			var ca, cb *Node
			if a != nil {
				ca = a.Child(loc)
			}
			if b != nil {
				cb = b.Child(loc)
			}
			p := append(append([]hierarchy.NodeID(nil), prefix...), loc)
			d := NodeDiff{Prefix: p}
			switch {
			case ca != nil && cb != nil:
				d.CurrentReach = current.ReachProb(ca)
				d.BaselineReach = baseline.ReachProb(cb)
				d.DurationShift = ca.Durations.Mean() - cb.Durations.Mean()
				d.DurationDeviation = ca.Durations.MaxDeviation(cb.Durations)
				d.TransitionDeviation = ca.Transitions.MaxDeviation(cb.Transitions)
			case ca != nil:
				d.CurrentReach = current.ReachProb(ca)
				d.OnlyIn = 1
			default:
				d.BaselineReach = baseline.ReachProb(cb)
				d.OnlyIn = -1
			}
			out = append(out, d)
			walk(p, ca, cb)
		}
	}
	walk(nil, current.root, baseline.root)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Weight() > out[j].Weight() })
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
