package flowgraph

// Columnar (struct-of-arrays) form of a flowgraph, the layout the v2
// snapshot codec serializes. Flatten walks the prefix tree breadth-first —
// children sorted by location, exactly the order Children() reports — so
// every node's children occupy one contiguous index range and a single
// sentinel ChildLo slice describes the whole tree shape, mirroring
// itemset.flatTrie. All duration and transition distributions are pooled
// into one shared Outcomes/Weights pair with per-node offsets; exceptions
// and their condition pins are flat tables of the same style. Unflatten
// validates the invariants and rebuilds the pointer tree by carving nodes,
// distributions, pins and exceptions out of single backing allocations.

import (
	"fmt"

	"flowcube/internal/hierarchy"
	"flowcube/internal/pathdb"
	"flowcube/internal/stats"
)

// Flat is a flowgraph in columnar form. Node 0 is the virtual root (its
// Locations entry is hierarchy.Root and its Counts entry 0); the remaining
// nodes follow in BFS order with children sorted by location id.
type Flat struct {
	// Paths is Graph.Paths().
	Paths int64

	// Locations and Counts are per-node columns; ChildLo has one extra
	// sentinel entry, so node i's children are the index range
	// [ChildLo[i], ChildLo[i+1]).
	Locations []int32
	Counts    []int64
	ChildLo   []int32

	// DurLo and TrLo index the pooled distribution columns: node i's
	// duration distribution is Outcomes[DurLo[i]:TrLo[i]] with parallel
	// Weights, and its transition distribution Outcomes[TrLo[i]:DurLo[i+1]].
	// DurLo carries the sentinel (len(Locations)+1 entries).
	DurLo    []int32
	TrLo     []int32
	Outcomes []int64
	Weights  []int64

	// Exceptions as flat tables: exception j deviates at node ExcNode[j],
	// its condition pins are the range [ExcPinLo[j], ExcPinLo[j+1]) of the
	// Pin* columns, and its conditional distributions live in the pooled
	// ExcOutcomes/ExcWeights columns addressed like the node ones.
	ExcNode     []int32
	ExcSupport  []int64
	ExcDurDev   []float64
	ExcTrDev    []float64
	ExcPinLo    []int32
	PinDepth    []int32
	PinLoc      []int32
	PinDur      []int64
	PinDurAny   []bool
	ExcDurLo    []int32
	ExcTrLo     []int32
	ExcOutcomes []int64
	ExcWeights  []int64
}

// NumNodes reports the node count including the virtual root.
func (f *Flat) NumNodes() int { return len(f.Locations) }

// Flatten converts the graph to columnar form.
func Flatten(g *Graph) *Flat {
	f := &Flat{Paths: g.paths}
	order := []*Node{g.root}
	index := map[*Node]int32{g.root: 0}
	for i := 0; i < len(order); i++ {
		for _, c := range order[i].Children() {
			index[c] = int32(len(order))
			order = append(order, c)
		}
	}
	n := len(order)
	f.Locations = make([]int32, n)
	f.Counts = make([]int64, n)
	f.ChildLo = make([]int32, n+1)
	f.DurLo = make([]int32, n+1)
	f.TrLo = make([]int32, n)
	next := int32(1)
	for i, node := range order {
		f.Locations[i] = int32(node.Location)
		f.Counts[i] = node.Count
		f.ChildLo[i] = next
		next += int32(len(node.children))
		f.DurLo[i] = int32(len(f.Outcomes))
		f.Outcomes, f.Weights = node.Durations.AppendSorted(f.Outcomes, f.Weights)
		f.TrLo[i] = int32(len(f.Outcomes))
		f.Outcomes, f.Weights = node.Transitions.AppendSorted(f.Outcomes, f.Weights)
	}
	f.ChildLo[n] = next
	f.DurLo[n] = int32(len(f.Outcomes))

	for _, x := range g.exceptions {
		f.ExcNode = append(f.ExcNode, index[x.Node])
		f.ExcSupport = append(f.ExcSupport, x.Support)
		f.ExcDurDev = append(f.ExcDurDev, x.DurationDeviation)
		f.ExcTrDev = append(f.ExcTrDev, x.TransitionDeviation)
		f.ExcPinLo = append(f.ExcPinLo, int32(len(f.PinDepth)))
		for _, p := range x.Condition {
			f.PinDepth = append(f.PinDepth, int32(p.Depth))
			f.PinLoc = append(f.PinLoc, int32(p.Location))
			f.PinDur = append(f.PinDur, p.Duration)
			f.PinDurAny = append(f.PinDurAny, p.DurAny)
		}
		f.ExcDurLo = append(f.ExcDurLo, int32(len(f.ExcOutcomes)))
		f.ExcOutcomes, f.ExcWeights = x.Durations.AppendSorted(f.ExcOutcomes, f.ExcWeights)
		f.ExcTrLo = append(f.ExcTrLo, int32(len(f.ExcOutcomes)))
		f.ExcOutcomes, f.ExcWeights = x.Transitions.AppendSorted(f.ExcOutcomes, f.ExcWeights)
	}
	f.ExcPinLo = append(f.ExcPinLo, int32(len(f.PinDepth)))
	f.ExcDurLo = append(f.ExcDurLo, int32(len(f.ExcOutcomes)))
	return f
}

// validate checks every structural invariant of the columnar form before
// Unflatten allocates anything proportional to the claimed sizes beyond the
// columns themselves (which the snapshot decoder already bounded against
// the input length).
func (f *Flat) validate() error {
	n := len(f.Locations)
	if n < 1 {
		return fmt.Errorf("flowgraph: flat graph has no root node")
	}
	if len(f.Counts) != n || len(f.ChildLo) != n+1 || len(f.DurLo) != n+1 || len(f.TrLo) != n {
		return fmt.Errorf("flowgraph: flat node columns have inconsistent lengths")
	}
	if len(f.Outcomes) != len(f.Weights) {
		return fmt.Errorf("flowgraph: flat outcome/weight columns differ in length")
	}
	if f.ChildLo[0] != 1 || f.ChildLo[n] != int32(n) {
		return fmt.Errorf("flowgraph: flat child ranges do not cover the node set")
	}
	for i := 0; i < n; i++ {
		// BFS order: children of node i form a contiguous range strictly
		// after i. Monotone ranges with these bounds partition [1, n), so
		// every non-root node has exactly one parent and cycles are
		// impossible.
		if f.ChildLo[i] < int32(i)+1 || f.ChildLo[i+1] < f.ChildLo[i] {
			return fmt.Errorf("flowgraph: flat child range of node %d is malformed", i)
		}
		if f.DurLo[i] > f.TrLo[i] || f.TrLo[i] > f.DurLo[i+1] {
			return fmt.Errorf("flowgraph: flat distribution range of node %d is malformed", i)
		}
		if f.Counts[i] < 0 {
			return fmt.Errorf("flowgraph: flat node %d has negative count", i)
		}
	}
	if f.DurLo[0] != 0 || f.DurLo[n] != int32(len(f.Outcomes)) {
		return fmt.Errorf("flowgraph: flat distribution ranges do not cover the outcome pool")
	}
	m := len(f.ExcNode)
	if m == 0 && len(f.PinDepth) == 0 && len(f.ExcOutcomes) == 0 && len(f.ExcPinLo) == 0 &&
		len(f.ExcSupport) == 0 && len(f.ExcDurDev) == 0 && len(f.ExcTrDev) == 0 &&
		len(f.ExcDurLo) == 0 && len(f.ExcTrLo) == 0 && len(f.PinLoc) == 0 &&
		len(f.PinDur) == 0 && len(f.PinDurAny) == 0 && len(f.ExcWeights) == 0 {
		// Exception-free graphs may omit the sentinel columns entirely (the
		// snapshot decoder leaves them nil).
		return nil
	}
	if len(f.ExcSupport) != m || len(f.ExcDurDev) != m || len(f.ExcTrDev) != m ||
		len(f.ExcPinLo) != m+1 || len(f.ExcDurLo) != m+1 || len(f.ExcTrLo) != m {
		return fmt.Errorf("flowgraph: flat exception columns have inconsistent lengths")
	}
	p := len(f.PinDepth)
	if len(f.PinLoc) != p || len(f.PinDur) != p || len(f.PinDurAny) != p {
		return fmt.Errorf("flowgraph: flat pin columns have inconsistent lengths")
	}
	if len(f.ExcOutcomes) != len(f.ExcWeights) {
		return fmt.Errorf("flowgraph: flat exception outcome/weight columns differ in length")
	}
	if m > 0 || p > 0 || len(f.ExcOutcomes) > 0 {
		if len(f.ExcPinLo) == 0 || f.ExcPinLo[0] != 0 || f.ExcPinLo[m] != int32(p) {
			return fmt.Errorf("flowgraph: flat pin ranges do not cover the pin pool")
		}
		if f.ExcDurLo[0] != 0 || f.ExcDurLo[m] != int32(len(f.ExcOutcomes)) {
			return fmt.Errorf("flowgraph: flat exception distribution ranges do not cover the pool")
		}
	}
	for j := 0; j < m; j++ {
		if f.ExcNode[j] < 0 || int(f.ExcNode[j]) >= n {
			return fmt.Errorf("flowgraph: exception %d references node %d of %d", j, f.ExcNode[j], n)
		}
		if f.ExcPinLo[j+1] < f.ExcPinLo[j] {
			return fmt.Errorf("flowgraph: flat pin range of exception %d is malformed", j)
		}
		if f.ExcDurLo[j] > f.ExcTrLo[j] || f.ExcTrLo[j] > f.ExcDurLo[j+1] {
			return fmt.Errorf("flowgraph: flat distribution range of exception %d is malformed", j)
		}
	}
	return nil
}

// Unflatten validates the columnar form and rebuilds the pointer graph for
// paths at the given level. Nodes, distributions, pins and exceptions are
// carved out of one backing allocation each, so reconstructing a graph
// costs O(1) amortized allocations per node-free structure plus the
// per-node children maps — far cheaper than replaying Graft per node.
func Unflatten(loc *hierarchy.Hierarchy, level pathdb.PathLevel, f *Flat) (*Graph, error) {
	if err := f.validate(); err != nil {
		return nil, err
	}
	n := f.NumNodes()
	m := len(f.ExcNode)
	nodes := make([]Node, n)
	dists := make([]stats.Multinomial, 2*(n+m))
	initDist := func(k int, lo, hi int32) (*stats.Multinomial, error) {
		d := &dists[k]
		if err := d.InitSorted(f.Outcomes[lo:hi], f.Weights[lo:hi]); err != nil {
			return nil, err
		}
		return d, nil
	}
	var err error
	for i := 0; i < n; i++ {
		nd := &nodes[i]
		if f.Locations[i] < 0 || int(f.Locations[i]) >= loc.Len() {
			return nil, fmt.Errorf("flowgraph: node %d location %d outside hierarchy of %d nodes",
				i, f.Locations[i], loc.Len())
		}
		nd.Location = hierarchy.NodeID(f.Locations[i])
		nd.Count = f.Counts[i]
		if nd.Durations, err = initDist(2*i, f.DurLo[i], f.TrLo[i]); err != nil {
			return nil, err
		}
		if nd.Transitions, err = initDist(2*i+1, f.TrLo[i], f.DurLo[i+1]); err != nil {
			return nil, err
		}
		lo, hi := f.ChildLo[i], f.ChildLo[i+1]
		nd.children = make(map[hierarchy.NodeID]*Node, hi-lo)
		for j := lo; j < hi; j++ {
			child := &nodes[j]
			child.parent = nd
			child.Depth = nd.Depth + 1
			nd.children[hierarchy.NodeID(f.Locations[j])] = child
		}
		if len(nd.children) != int(hi-lo) {
			return nil, fmt.Errorf("flowgraph: node %d has duplicate child locations", i)
		}
	}
	g := &Graph{level: level, loc: loc, root: &nodes[0], paths: f.Paths}

	if m > 0 {
		pins := make([]StagePin, len(f.PinDepth))
		for i := range pins {
			pins[i] = StagePin{
				Depth:    int(f.PinDepth[i]),
				Location: hierarchy.NodeID(f.PinLoc[i]),
				Duration: f.PinDur[i],
				DurAny:   f.PinDurAny[i],
			}
		}
		excDist := func(k int, lo, hi int32) (*stats.Multinomial, error) {
			d := &dists[k]
			if err := d.InitSorted(f.ExcOutcomes[lo:hi], f.ExcWeights[lo:hi]); err != nil {
				return nil, err
			}
			return d, nil
		}
		g.exceptions = make([]Exception, m)
		for j := 0; j < m; j++ {
			x := &g.exceptions[j]
			x.Node = &nodes[f.ExcNode[j]]
			x.Condition = pins[f.ExcPinLo[j]:f.ExcPinLo[j+1]:f.ExcPinLo[j+1]]
			x.Support = f.ExcSupport[j]
			x.DurationDeviation = f.ExcDurDev[j]
			x.TransitionDeviation = f.ExcTrDev[j]
			if x.Durations, err = excDist(2*(n+j), f.ExcDurLo[j], f.ExcTrLo[j]); err != nil {
				return nil, err
			}
			if x.Transitions, err = excDist(2*(n+j)+1, f.ExcTrLo[j], f.ExcDurLo[j+1]); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// FlatExceptions extracts a flat graph's exception table without rebuilding
// the pointer tree — the lazy loader's exception scans call it so TopK
// queries over a mapped snapshot never materialize a cell. Exceptions come
// back in flat (mining) order with the same Support, Condition, deviations
// and conditional distributions Unflatten would produce. The Node chain is
// minimal: only the nodes on each exception's root path are materialized,
// with Location, Depth, Count and the parent link set (enough for Prefix and
// rendering) but nil distribution pointers and no children.
func FlatExceptions(f *Flat) ([]Exception, error) {
	if err := f.validate(); err != nil {
		return nil, err
	}
	m := len(f.ExcNode)
	if m == 0 {
		return nil, nil
	}
	n := f.NumNodes()
	// Invert the BFS child ranges into a parent column; validate proved the
	// ranges partition [1, n), so every non-root node is assigned exactly once.
	parent := make([]int32, n)
	parent[0] = -1
	for i := 0; i < n; i++ {
		for j := f.ChildLo[i]; j < f.ChildLo[i+1]; j++ {
			parent[j] = int32(i)
		}
	}
	nodes := make(map[int32]*Node, 2*m)
	var materialize func(idx int32) *Node
	materialize = func(idx int32) *Node {
		if nd, ok := nodes[idx]; ok {
			return nd
		}
		nd := &Node{Location: hierarchy.NodeID(f.Locations[idx]), Count: f.Counts[idx]}
		nodes[idx] = nd
		if idx != 0 {
			p := materialize(parent[idx])
			nd.parent = p
			nd.Depth = p.Depth + 1
		}
		return nd
	}
	pins := make([]StagePin, len(f.PinDepth))
	for i := range pins {
		pins[i] = StagePin{
			Depth:    int(f.PinDepth[i]),
			Location: hierarchy.NodeID(f.PinLoc[i]),
			Duration: f.PinDur[i],
			DurAny:   f.PinDurAny[i],
		}
	}
	dists := make([]stats.Multinomial, 2*m)
	out := make([]Exception, m)
	for j := 0; j < m; j++ {
		x := &out[j]
		x.Node = materialize(f.ExcNode[j])
		x.Condition = pins[f.ExcPinLo[j]:f.ExcPinLo[j+1]:f.ExcPinLo[j+1]]
		x.Support = f.ExcSupport[j]
		x.DurationDeviation = f.ExcDurDev[j]
		x.TransitionDeviation = f.ExcTrDev[j]
		d := &dists[2*j]
		if err := d.InitSorted(f.ExcOutcomes[f.ExcDurLo[j]:f.ExcTrLo[j]], f.ExcWeights[f.ExcDurLo[j]:f.ExcTrLo[j]]); err != nil {
			return nil, err
		}
		x.Durations = d
		t := &dists[2*j+1]
		if err := t.InitSorted(f.ExcOutcomes[f.ExcTrLo[j]:f.ExcDurLo[j+1]], f.ExcWeights[f.ExcTrLo[j]:f.ExcDurLo[j+1]]); err != nil {
			return nil, err
		}
		x.Transitions = t
	}
	return out, nil
}
