package flowgraph_test

import (
	"math"
	"strings"
	"testing"

	"flowcube/internal/flowgraph"
	"flowcube/internal/hierarchy"
	"flowcube/internal/paperex"
	"flowcube/internal/pathdb"
)

func basePaths(ex *paperex.Example) []pathdb.Path {
	out := make([]pathdb.Path, 0, ex.DB.Len())
	for _, r := range ex.DB.Records {
		out = append(out, r.Path)
	}
	return out
}

func buildExample(t *testing.T) (*paperex.Example, *flowgraph.Graph) {
	t.Helper()
	ex := paperex.New()
	g := flowgraph.Build(ex.Location, ex.BasePathLevel(), basePaths(ex), nil)
	return ex, g
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// TestFigure3Distributions pins the Figure-3 annotations recomputed from
// Table 1: the factory node's duration distribution is 5:0.375 / 10:0.625
// (the figure rounds to 0.38/0.62) and its transitions split 5/8 to the
// distribution center and 3/8 to the truck.
func TestFigure3Distributions(t *testing.T) {
	ex, g := buildExample(t)
	f := g.NodeAt([]hierarchy.NodeID{ex.Location.MustLookup("f")})
	if f == nil {
		t.Fatal("factory node missing")
	}
	if f.Count != 8 {
		t.Fatalf("factory count = %d, want 8", f.Count)
	}
	if !approx(f.Durations.Prob(5), 3.0/8) || !approx(f.Durations.Prob(10), 5.0/8) {
		t.Errorf("factory durations = %s, want 5:0.375 10:0.625", f.Durations)
	}
	d := int64(ex.Location.MustLookup("d"))
	tr := int64(ex.Location.MustLookup("t"))
	if !approx(f.Transitions.Prob(d), 5.0/8) || !approx(f.Transitions.Prob(tr), 3.0/8) {
		t.Errorf("factory transitions = %s, want d:0.625 t:0.375", f.Transitions)
	}
	if f.TerminationProb() != 0 {
		t.Errorf("factory termination = %g, want 0", f.TerminationProb())
	}

	// The f→t branch (paths 4,5,6): truck transitions 2/3 to shelf, 1/3 to
	// warehouse — the 0.67/0.33 edge of Figure 3.
	ft := g.NodeAt([]hierarchy.NodeID{ex.Location.MustLookup("f"), ex.Location.MustLookup("t")})
	if ft == nil {
		t.Fatal("f→t node missing")
	}
	s := int64(ex.Location.MustLookup("s"))
	w := int64(ex.Location.MustLookup("w"))
	if !approx(ft.Transitions.Prob(s), 2.0/3) || !approx(ft.Transitions.Prob(w), 1.0/3) {
		t.Errorf("f→t transitions = %s, want s:0.667 w:0.333", ft.Transitions)
	}
}

// TestFigure4CellGraph builds the flowgraph of the (outerwear, nike) cell —
// paths 4, 5, 6 — and checks Figure 4's structure: factory → truck with
// probability 1, truck → shelf 0.67 / warehouse 0.33, shelf → checkout 1.
func TestFigure4CellGraph(t *testing.T) {
	ex := paperex.New()
	cell := []pathdb.Path{ex.DB.Records[3].Path, ex.DB.Records[4].Path, ex.DB.Records[5].Path}
	g := flowgraph.Build(ex.Location, ex.BasePathLevel(), cell, nil)

	loc := func(n string) hierarchy.NodeID { return ex.Location.MustLookup(n) }
	f := g.NodeAt([]hierarchy.NodeID{loc("f")})
	if !approx(f.Transitions.Prob(int64(loc("t"))), 1) {
		t.Errorf("factory→truck = %g, want 1", f.Transitions.Prob(int64(loc("t"))))
	}
	ft := g.NodeAt([]hierarchy.NodeID{loc("f"), loc("t")})
	if !approx(ft.Transitions.Prob(int64(loc("s"))), 2.0/3) || !approx(ft.Transitions.Prob(int64(loc("w"))), 1.0/3) {
		t.Errorf("truck transitions = %s", ft.Transitions)
	}
	fts := g.NodeAt([]hierarchy.NodeID{loc("f"), loc("t"), loc("s")})
	if !approx(fts.Transitions.Prob(int64(loc("c"))), 1) {
		t.Errorf("shelf→checkout = %g, want 1", fts.Transitions.Prob(int64(loc("c"))))
	}
	ftw := g.NodeAt([]hierarchy.NodeID{loc("f"), loc("t"), loc("w")})
	if !approx(ftw.TerminationProb(), 1) {
		t.Errorf("warehouse termination = %g, want 1", ftw.TerminationProb())
	}
}

// TestPaperExceptionTruckToWarehouse reproduces §3's worked exception: in
// the f→t branch the truck→warehouse transition is 33% in general but 50%
// for items that stayed 1 hour at the truck (paths 4 and 6).
func TestPaperExceptionTruckToWarehouse(t *testing.T) {
	ex := paperex.New()
	cell := []pathdb.Path{ex.DB.Records[3].Path, ex.DB.Records[4].Path, ex.DB.Records[5].Path}
	g := flowgraph.Build(ex.Location, ex.BasePathLevel(), cell, nil)
	g.MineExceptions(cell, 0.1, 2)

	loc := func(n string) hierarchy.NodeID { return ex.Location.MustLookup(n) }
	ft := g.NodeAt([]hierarchy.NodeID{loc("f"), loc("t")})
	var found *flowgraph.Exception
	for i, x := range g.Exceptions() {
		if x.Node == ft && len(x.Condition) == 1 &&
			x.Condition[0].Depth == 2 && x.Condition[0].Duration == 1 {
			found = &g.Exceptions()[i]
		}
	}
	if found == nil {
		t.Fatalf("truck-duration-1 exception not mined; got %d exceptions", len(g.Exceptions()))
	}
	if found.Support != 2 {
		t.Errorf("exception support = %d, want 2", found.Support)
	}
	if got := found.Transitions.Prob(int64(loc("w"))); !approx(got, 0.5) {
		t.Errorf("conditional truck→warehouse = %g, want 0.5", got)
	}
	base := ft.Transitions.Prob(int64(loc("w")))
	if !approx(base, 1.0/3) {
		t.Errorf("general truck→warehouse = %g, want 1/3", base)
	}
	if found.TransitionDeviation < 0.1 {
		t.Errorf("deviation %g below ε", found.TransitionDeviation)
	}
}

func TestExceptionSupportThreshold(t *testing.T) {
	ex := paperex.New()
	cell := []pathdb.Path{ex.DB.Records[3].Path, ex.DB.Records[4].Path, ex.DB.Records[5].Path}
	g := flowgraph.Build(ex.Location, ex.BasePathLevel(), cell, nil)
	g.MineExceptions(cell, 0.1, 3)
	for _, x := range g.Exceptions() {
		if x.Support < 3 {
			t.Errorf("exception with support %d recorded under δ=3", x.Support)
		}
	}
}

func TestMineExceptionsForMultiPin(t *testing.T) {
	ex, g := buildExample(t)
	paths := basePaths(ex)
	loc := func(n string) hierarchy.NodeID { return ex.Location.MustLookup(n) }
	// Condition: (f,5) at depth 1 AND (d,2) at depth 2 — paths 2, 7, 8.
	// At the truck node the conditional durations are {1,2,3} vs the
	// branch-general distribution over paths 1,2,7,8 = {1,1,2,3}.
	conds := [][]flowgraph.StagePin{{
		{Depth: 1, Location: loc("f"), Duration: 5},
		{Depth: 2, Location: loc("d"), Duration: 2},
	}}
	g.MineExceptionsFor(paths, conds, 0.05, 2)
	fdt := g.NodeAt([]hierarchy.NodeID{loc("f"), loc("d"), loc("t")})
	found := false
	for _, x := range g.Exceptions() {
		if x.Node == fdt && len(x.Condition) == 2 {
			found = true
			if x.Support != 3 {
				t.Errorf("multi-pin exception support = %d, want 3", x.Support)
			}
			if !approx(x.Durations.Prob(1), 1.0/3) {
				t.Errorf("conditional dur(1) = %g, want 1/3", x.Durations.Prob(1))
			}
		}
	}
	if !found {
		t.Errorf("multi-pin condition produced no exception at f→d→t")
	}
}

// TestAlgebraicMerge verifies Lemma 4.2: merging the flowgraphs of a
// partition reproduces the flowgraph of the whole.
func TestAlgebraicMerge(t *testing.T) {
	ex := paperex.New()
	paths := basePaths(ex)
	whole := flowgraph.Build(ex.Location, ex.BasePathLevel(), paths, nil)

	merged := flowgraph.Build(ex.Location, ex.BasePathLevel(), paths[:3], nil)
	mid := flowgraph.Build(ex.Location, ex.BasePathLevel(), paths[3:6], nil)
	rest := flowgraph.Build(ex.Location, ex.BasePathLevel(), paths[6:], nil)
	if err := merged.Merge(mid); err != nil {
		t.Fatal(err)
	}
	if err := merged.Merge(rest); err != nil {
		t.Fatal(err)
	}

	if merged.Paths() != whole.Paths() {
		t.Fatalf("merged paths = %d, want %d", merged.Paths(), whole.Paths())
	}
	wn, mn := whole.Nodes(), merged.Nodes()
	if len(wn) != len(mn) {
		t.Fatalf("merged has %d nodes, whole has %d", len(mn), len(wn))
	}
	for i := range wn {
		if wn[i].Location != mn[i].Location || wn[i].Count != mn[i].Count {
			t.Errorf("node %d mismatch: (%v,%d) vs (%v,%d)",
				i, mn[i].Location, mn[i].Count, wn[i].Location, wn[i].Count)
		}
		if wn[i].Durations.String() != mn[i].Durations.String() {
			t.Errorf("node %d duration dist mismatch", i)
		}
		if wn[i].Transitions.String() != mn[i].Transitions.String() {
			t.Errorf("node %d transition dist mismatch", i)
		}
	}
	if d := flowgraph.Divergence(whole, merged); !approx(d, 0) {
		t.Errorf("divergence between whole and merged = %g, want 0", d)
	}
}

func TestMergeRejectsDifferentLevels(t *testing.T) {
	ex := paperex.New()
	paths := basePaths(ex)
	a := flowgraph.Build(ex.Location, ex.BasePathLevel(), paths, nil)
	b := flowgraph.Build(ex.Location, ex.TransportPathLevel(), paths, nil)
	if err := a.Merge(b); err == nil {
		t.Errorf("merging graphs at different path levels must fail")
	}
}

func TestPathProb(t *testing.T) {
	ex, g := buildExample(t)
	// Path 6: f(10) t(1) w(5): P = P(f)·P(10|f)·P(t|f)·P(1|ft)·P(w|ft)·P(5|ftw)·P(term|ftw)
	// = 1 · 5/8 · 3/8 · 2/3 · 1/3 · 1 · 1 = 5/96·... compute: 0.625·0.375·0.6667·0.3333 = 0.05208
	p := g.PathProb(ex.DB.Records[5].Path)
	want := (5.0 / 8) * (3.0 / 8) * (2.0 / 3) * (1.0 / 3)
	if !approx(p, want) {
		t.Errorf("PathProb = %g, want %g", p, want)
	}
	// A path leaving the tree has probability 0.
	alien := pathdb.Path{{Location: ex.Location.MustLookup("c"), Duration: 1}}
	if g.PathProb(alien) != 0 {
		t.Errorf("alien path probability = %g, want 0", g.PathProb(alien))
	}
}

func TestSimilarityProperties(t *testing.T) {
	ex := paperex.New()
	paths := basePaths(ex)
	a := flowgraph.Build(ex.Location, ex.BasePathLevel(), paths, nil)
	b := flowgraph.Build(ex.Location, ex.BasePathLevel(), paths[:4], nil)
	if s := flowgraph.Similarity(a, a); !approx(s, 1) {
		t.Errorf("self similarity = %g, want 1", s)
	}
	sab := flowgraph.Similarity(a, b)
	sba := flowgraph.Similarity(b, a)
	if !approx(sab, sba) {
		t.Errorf("similarity not symmetric: %g vs %g", sab, sba)
	}
	if sab <= 0 || sab >= 1 {
		t.Errorf("similarity of different graphs = %g, want in (0,1)", sab)
	}
}

func TestAggregatedGraphMergesStages(t *testing.T) {
	ex := paperex.New()
	paths := basePaths(ex)
	g := flowgraph.Build(ex.Location, pathdb.PathLevel{
		Cut:  hierarchy.LevelCut(ex.Location, 1),
		Time: pathdb.TimeBase,
	}, paths, nil)
	// Path 1 aggregates to factory(10) transportation(3) store(5): the d,t
	// and s,c runs merge with summed durations.
	fa := ex.Location.MustLookup("factory")
	tr := ex.Location.MustLookup("transportation")
	node := g.NodeAt([]hierarchy.NodeID{fa, tr})
	if node == nil {
		t.Fatal("factory→transportation node missing")
	}
	if node.Durations.Count(3) == 0 {
		t.Errorf("merged duration 3 (2+1) not observed: %s", node.Durations)
	}
}

func TestRenderings(t *testing.T) {
	ex, g := buildExample(t)
	_ = ex
	s := g.String()
	if !strings.Contains(s, "f ") || !strings.Contains(s, "8 paths") {
		t.Errorf("String() output missing content:\n%s", s)
	}
	dot := g.DOT("example")
	if !strings.HasPrefix(dot, "digraph") || !strings.Contains(dot, "->") {
		t.Errorf("DOT output malformed:\n%s", dot)
	}
}

func TestCloneIndependence(t *testing.T) {
	ex, g := buildExample(t)
	g.MineExceptions(basePaths(ex), 0.1, 2)
	c := g.Clone()
	if c.Paths() != g.Paths() || len(c.Exceptions()) != len(g.Exceptions()) {
		t.Fatalf("clone differs: paths %d/%d exceptions %d/%d",
			c.Paths(), g.Paths(), len(c.Exceptions()), len(g.Exceptions()))
	}
	// Mutating the clone must not affect the original.
	c.AddPath(ex.DB.Records[0].Path)
	if c.Paths() == g.Paths() {
		t.Errorf("clone shares state with original")
	}
	if d := flowgraph.Divergence(g, g); !approx(d, 0) {
		t.Errorf("original perturbed by clone mutation")
	}
}
