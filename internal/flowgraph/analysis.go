package flowgraph

import (
	"sort"

	"flowcube/internal/hierarchy"
)

// Analysis utilities over a flowgraph, answering the paper's introductory
// question 1: "the most typical paths, with average duration at each
// stage, ... and the most notable deviations from the typical paths that
// significantly increase total lead time".

// PathSummary is one complete root-to-termination route through the
// flowgraph.
type PathSummary struct {
	// Locations is the route's location sequence.
	Locations []hierarchy.NodeID
	// Prob is the probability the flowgraph assigns to the route
	// (transitions and termination only; durations marginalized).
	Prob float64
	// MeanDurations holds the expected stay at each stage.
	MeanDurations []float64
	// MeanLeadTime is the sum of the expected stays.
	MeanLeadTime float64
}

// TopPaths returns the k most probable complete routes, most probable
// first. Ties break lexicographically on the location sequence, so the
// result is deterministic.
func (g *Graph) TopPaths(k int) []PathSummary {
	var out []PathSummary
	var walk func(n *Node, prob float64, locs []hierarchy.NodeID, durs []float64, lead float64)
	walk = func(n *Node, prob float64, locs []hierarchy.NodeID, durs []float64, lead float64) {
		if prob == 0 {
			return
		}
		if term := n.Transitions.Prob(Terminate); term > 0 && n.Depth > 0 {
			out = append(out, PathSummary{
				Locations:     append([]hierarchy.NodeID(nil), locs...),
				Prob:          prob * term,
				MeanDurations: append([]float64(nil), durs...),
				MeanLeadTime:  lead,
			})
		}
		for _, c := range n.Children() {
			p := n.Transitions.Prob(int64(c.Location))
			m := c.Durations.Mean()
			walk(c, prob*p, append(locs, c.Location), append(durs, m), lead+m)
		}
	}
	walk(g.root, 1, nil, nil, 0)
	sort.Slice(out, func(i, j int) bool {
		// Two-sided comparison avoids float equality: probabilities that
		// differ only in rounding residue fall through to the location
		// tiebreak rather than being ordered by noise.
		if out[i].Prob > out[j].Prob {
			return true
		}
		if out[j].Prob > out[i].Prob {
			return false
		}
		return lessLocs(out[i].Locations, out[j].Locations)
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

func lessLocs(a, b []hierarchy.NodeID) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// ReachProb reports the empirical probability that a path visits the node.
func (g *Graph) ReachProb(n *Node) float64 {
	if g.paths == 0 {
		return 0
	}
	return float64(n.Count) / float64(g.paths)
}

// ExpectedLeadTime returns the expected total duration of a path drawn
// from the flowgraph's model: the mean stay at each node weighted by the
// probability of reaching it.
func (g *Graph) ExpectedLeadTime() float64 {
	var rec func(n *Node) float64
	rec = func(n *Node) float64 {
		var e float64
		if n.Depth > 0 {
			e = n.Durations.Mean()
		}
		for _, c := range n.Children() {
			e += n.Transitions.Prob(int64(c.Location)) * rec(c)
		}
		return e
	}
	return rec(g.root)
}

// SubtreeLeadTime returns the expected remaining duration from (and
// including) the given node to termination.
func (g *Graph) SubtreeLeadTime(n *Node) float64 {
	e := n.Durations.Mean()
	for _, c := range n.Children() {
		e += n.Transitions.Prob(int64(c.Location)) * g.SubtreeLeadTime(c)
	}
	return e
}

// Delay quantifies how much an exception shifts the expected stay at its
// node: the conditional mean duration minus the node's general mean.
// Positive values are slowdowns.
func (x Exception) Delay() float64 {
	return x.Durations.Mean() - x.Node.Durations.Mean()
}

// SlowestDeviations returns the mined exceptions ranked by decreasing
// Delay — the "most notable deviations ... that significantly increase
// total lead time" of the paper's question 1. Only exceptions with a
// positive delay are returned; k <= 0 returns all.
func (g *Graph) SlowestDeviations(k int) []Exception {
	var out []Exception
	for _, x := range g.exceptions {
		if x.Delay() > 0 {
			out = append(out, x)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Delay() > out[j].Delay() })
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
