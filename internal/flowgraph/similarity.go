package flowgraph

import "flowcube/internal/stats"

// Flowgraph similarity (paper §4.3). The paper leaves the similarity metric
// ϕ open, suggesting the KL divergence of the probability distributions the
// flowgraphs induce. We implement exactly that: a reach-probability-weighted
// sum of per-node KL divergences of the duration and transition
// distributions, walked over the union of the two trees, with Laplace
// smoothing so structurally different graphs still compare finitely.
// Similarity symmetrizes and maps divergence into (0,1]; redundancy
// elimination then applies the paper's "ϕ(G, Gi) > τ" rule.

// Divergence returns the asymmetric weighted divergence D(a ‖ b) ≥ 0; zero
// means b induces the same distribution over paths as a.
func Divergence(a, b *Graph) float64 {
	return divergeNode(a, a.root, b.root, 1.0)
}

func divergeNode(a *Graph, na, nb *Node, weight float64) float64 {
	// weight is a product of reach probabilities; down a deep unlikely
	// branch it decays through denormals instead of hitting exact zero, so
	// prune with the shared epsilon comparison rather than ==.
	if stats.AlmostEqual(weight, 0) {
		return 0
	}
	var d float64
	if nb == nil {
		// b lacks this branch entirely: compare against empty
		// distributions (pure smoothing mass).
		empty := stats.NewMultinomial()
		d = weight * (na.Durations.KLDivergence(empty) + na.Transitions.KLDivergence(empty))
	} else {
		d = weight * (na.Durations.KLDivergence(nb.Durations) + na.Transitions.KLDivergence(nb.Transitions))
	}
	for _, ca := range na.Children() {
		w := weight * na.Transitions.Prob(int64(ca.Location))
		var cb *Node
		if nb != nil {
			cb = nb.Child(ca.Location)
		}
		d += divergeNode(a, ca, cb, w)
	}
	return d
}

// Similarity returns ϕ(a, b) in (0, 1]: 1 for identical induced models,
// approaching 0 as the symmetrized divergence grows.
func Similarity(a, b *Graph) float64 {
	d := (Divergence(a, b) + Divergence(b, a)) / 2
	return 1 / (1 + d)
}
