// Package flowgraph implements the paper's §3 measure: a tree-shaped
// probabilistic workflow summarizing a collection of paths.
//
// A flowgraph is a tuple (V, D, T, X). V are the nodes of a prefix tree —
// one node per distinct path prefix, so all paths sharing a prefix share a
// branch. D annotates each node with a multinomial distribution over the
// durations items spent at the node. T annotates each node with a
// multinomial over its outgoing transitions, including a termination
// probability. X is the set of exceptions: significant deviations of a
// node's duration or transition distribution conditioned on a frequent
// path-segment prefix (parameters ε, the minimum deviation, and δ, the
// minimum support).
//
// Per the paper's Lemma 4.2 the (D, T) component is an algebraic measure —
// Merge builds a parent cell's distributions from children without touching
// the path database — while Lemma 4.3 shows X is holistic: Merge drops
// exceptions and the caller re-mines them.
package flowgraph

import (
	"fmt"
	"sort"
	"strings"

	"flowcube/internal/hierarchy"
	"flowcube/internal/pathdb"
	"flowcube/internal/stats"
)

// Terminate is the transition-distribution outcome standing for "the path
// ends here". Location concept ids are non-negative, so -1 is free.
const Terminate int64 = -1

// Node is one vertex of the flowgraph: a unique path prefix.
type Node struct {
	// Location is the (aggregated) location concept of this stage.
	Location hierarchy.NodeID
	// Depth is the 1-based position of the stage in the path; the virtual
	// root has depth 0.
	Depth int
	// Count is the number of paths that reach this node.
	Count int64
	// Durations is D's entry for the node.
	Durations *stats.Multinomial
	// Transitions is T's entry: outcomes are the child locations (as
	// int64), plus Terminate.
	Transitions *stats.Multinomial

	parent   *Node
	children map[hierarchy.NodeID]*Node
}

// Children returns the node's children ordered by location id.
func (n *Node) Children() []*Node {
	out := make([]*Node, 0, len(n.children))
	for _, c := range n.children {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Location < out[j].Location })
	return out
}

// Child returns the child at the given location, or nil.
func (n *Node) Child(loc hierarchy.NodeID) *Node { return n.children[loc] }

// Parent returns the node's parent; the virtual root's parent is nil.
func (n *Node) Parent() *Node { return n.parent }

// Prefix returns the location sequence from the first stage to this node.
func (n *Node) Prefix() []hierarchy.NodeID {
	var seq []hierarchy.NodeID
	for cur := n; cur != nil && cur.Depth > 0; cur = cur.parent {
		seq = append(seq, cur.Location)
	}
	for i, j := 0, len(seq)-1; i < j; i, j = i+1, j-1 {
		seq[i], seq[j] = seq[j], seq[i]
	}
	return seq
}

// TerminationProb is the probability a path ends at this node.
func (n *Node) TerminationProb() float64 { return n.Transitions.Prob(Terminate) }

// StagePin identifies one conditioning constraint of an exception: the
// stage at 1-based position Depth was at Location, with the given Duration
// (DurAny means the duration is unconstrained).
type StagePin struct {
	Depth    int
	Location hierarchy.NodeID
	Duration int64
	DurAny   bool
}

// Exception is one element of X: conditioned on the pinned prefix, the
// distributions at Node deviate from the node's general distributions.
type Exception struct {
	Node      *Node
	Condition []StagePin
	// Support is the number of paths matching the condition and reaching
	// the node.
	Support int64
	// Durations and Transitions are the conditional distributions.
	Durations   *stats.Multinomial
	Transitions *stats.Multinomial
	// DurationDeviation and TransitionDeviation are the L∞ distances from
	// the node's general distributions; an exception is recorded when
	// either exceeds ε.
	DurationDeviation   float64
	TransitionDeviation float64
}

// Graph is a flowgraph over paths aggregated to one path abstraction level.
type Graph struct {
	level      pathdb.PathLevel
	merge      pathdb.DurationMerge
	loc        *hierarchy.Hierarchy
	root       *Node
	paths      int64
	exceptions []Exception
}

// New returns an empty flowgraph for paths at the given level. merge
// combines durations of stages collapsed by aggregation (nil =
// pathdb.SumDurations).
func New(loc *hierarchy.Hierarchy, level pathdb.PathLevel, merge pathdb.DurationMerge) *Graph {
	return &Graph{
		level: level,
		merge: merge,
		loc:   loc,
		root: &Node{
			Durations:   stats.NewMultinomial(),
			Transitions: stats.NewMultinomial(),
			children:    make(map[hierarchy.NodeID]*Node),
		},
	}
}

// Build constructs a flowgraph from raw paths, aggregating each to the
// level first.
func Build(loc *hierarchy.Hierarchy, level pathdb.PathLevel, paths []pathdb.Path, merge pathdb.DurationMerge) *Graph {
	g := New(loc, level, merge)
	for _, p := range paths {
		g.AddPath(p)
	}
	return g
}

// Level returns the path abstraction level of the graph.
func (g *Graph) Level() pathdb.PathLevel { return g.level }

// Root returns the virtual root (depth 0). Its transition distribution is
// the distribution over first stages.
func (g *Graph) Root() *Node { return g.root }

// Paths reports the number of paths summarized.
func (g *Graph) Paths() int64 { return g.paths }

// Exceptions returns the mined exception set X.
func (g *Graph) Exceptions() []Exception { return g.exceptions }

// ClearExceptions drops the mined exception set, leaving the tree and its
// distributions intact. Delta maintenance clears a touched cell's
// exceptions before re-mining them over the union paths, since
// MineExceptionsFor appends to the existing set.
func (g *Graph) ClearExceptions() { g.exceptions = nil }

// AddPath aggregates the raw path to the graph's level and folds it in.
func (g *Graph) AddPath(p pathdb.Path) {
	g.addAggregated(pathdb.AggregatePath(p, g.level, g.merge))
}

// AddAggregated folds in a path already at the graph's level.
func (g *Graph) AddAggregated(p pathdb.Path) { g.addAggregated(p) }

func (g *Graph) addAggregated(p pathdb.Path) {
	if len(p) == 0 {
		return
	}
	g.paths++
	cur := g.root
	for _, st := range p {
		cur.Transitions.Observe(int64(st.Location))
		next := cur.children[st.Location]
		if next == nil {
			next = &Node{
				Location:    st.Location,
				Depth:       cur.Depth + 1,
				Durations:   stats.NewMultinomial(),
				Transitions: stats.NewMultinomial(),
				parent:      cur,
				children:    make(map[hierarchy.NodeID]*Node),
			}
			cur.children[st.Location] = next
		}
		next.Count++
		next.Durations.Observe(st.Duration)
		cur = next
	}
	cur.Transitions.Observe(Terminate)
}

// NodeAt resolves the node for a location-sequence prefix, or nil.
func (g *Graph) NodeAt(seq []hierarchy.NodeID) *Node {
	cur := g.root
	for _, l := range seq {
		cur = cur.children[l]
		if cur == nil {
			return nil
		}
	}
	return cur
}

// Nodes returns every node except the virtual root, in depth-first order
// with children visited by ascending location id.
func (g *Graph) Nodes() []*Node {
	var out []*Node
	var rec func(n *Node)
	rec = func(n *Node) {
		if n.Depth > 0 {
			out = append(out, n)
		}
		for _, c := range n.Children() {
			rec(c)
		}
	}
	rec(g.root)
	return out
}

// PathProb returns the probability the flowgraph's generative model assigns
// to a raw path: the product over stages of the transition probability into
// the stage and the probability of its duration, times the termination
// probability at the end. Paths leaving the tree get probability 0.
func (g *Graph) PathProb(p pathdb.Path) float64 {
	agg := pathdb.AggregatePath(p, g.level, g.merge)
	prob := 1.0
	cur := g.root
	for _, st := range agg {
		prob *= cur.Transitions.Prob(int64(st.Location))
		cur = cur.children[st.Location]
		if cur == nil || prob == 0 {
			return 0
		}
		prob *= cur.Durations.Prob(st.Duration)
	}
	return prob * cur.Transitions.Prob(Terminate)
}

// Merge folds other's counts into g (paper Lemma 4.2: duration and
// transition distributions are algebraic). Both graphs must be at the same
// path abstraction level. Exceptions are holistic (Lemma 4.3) and are
// cleared; re-mine them if needed.
func (g *Graph) Merge(other *Graph) error {
	if other == nil {
		return nil
	}
	if g.level.Key() != other.level.Key() {
		return fmt.Errorf("flowgraph: cannot merge graphs at different path levels %q and %q",
			g.level.Key(), other.level.Key())
	}
	g.paths += other.paths
	mergeNode(g.root, other.root)
	g.exceptions = nil
	return nil
}

func mergeNode(dst, src *Node) {
	dst.Count += src.Count
	dst.Durations.Merge(src.Durations)
	dst.Transitions.Merge(src.Transitions)
	for loc, sc := range src.children {
		dc := dst.children[loc]
		if dc == nil {
			dc = &Node{
				Location:    loc,
				Depth:       dst.Depth + 1,
				Durations:   stats.NewMultinomial(),
				Transitions: stats.NewMultinomial(),
				parent:      dst,
				children:    make(map[hierarchy.NodeID]*Node),
			}
			dst.children[loc] = dc
		}
		mergeNode(dc, sc)
	}
}

// Clone returns a deep copy of the graph including exceptions' conditional
// distributions (which are re-pointed at the cloned nodes).
func (g *Graph) Clone() *Graph {
	c := New(g.loc, g.level, g.merge)
	c.paths = g.paths
	mergeNode(c.root, g.root)
	for _, x := range g.exceptions {
		c.exceptions = append(c.exceptions, Exception{
			Node:                c.NodeAt(x.Node.Prefix()),
			Condition:           append([]StagePin(nil), x.Condition...),
			Support:             x.Support,
			Durations:           x.Durations.Clone(),
			Transitions:         x.Transitions.Clone(),
			DurationDeviation:   x.DurationDeviation,
			TransitionDeviation: x.TransitionDeviation,
		})
	}
	return c
}

// String renders the tree with per-node duration/transition annotations in
// the style of the paper's Figure 3.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "flowgraph (%d paths, level %s)\n", g.paths, g.level.Key())
	var rec func(n *Node, indent string)
	rec = func(n *Node, indent string) {
		for _, c := range n.Children() {
			frac := 0.0
			if g.paths > 0 {
				frac = n.Transitions.Prob(int64(c.Location))
			}
			fmt.Fprintf(&b, "%s%s p=%.2f dur[%s]", indent, g.loc.Name(c.Location), frac, c.Durations)
			if t := c.TerminationProb(); t > 0 {
				fmt.Fprintf(&b, " term=%.2f", t)
			}
			b.WriteByte('\n')
			rec(c, indent+"  ")
		}
	}
	rec(g.root, "  ")
	return b.String()
}

// DOT renders the graph in Graphviz dot syntax, one node per prefix, edges
// labelled with transition probabilities.
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n", name)
	id := func(n *Node) string {
		parts := []string{"root"}
		for _, l := range n.Prefix() {
			parts = append(parts, fmt.Sprint(l))
		}
		return strings.Join(parts, "_")
	}
	var rec func(n *Node)
	rec = func(n *Node) {
		label := "start"
		if n.Depth > 0 {
			label = fmt.Sprintf("%s\\ndur %s", g.loc.Name(n.Location), n.Durations)
			if t := n.TerminationProb(); t > 0 {
				label += fmt.Sprintf("\\nterm %.2f", t)
			}
		}
		fmt.Fprintf(&b, "  %s [label=\"%s\"];\n", id(n), label)
		for _, c := range n.Children() {
			fmt.Fprintf(&b, "  %s -> %s [label=\"%.2f\"];\n", id(n), id(c), n.Transitions.Prob(int64(c.Location)))
			rec(c)
		}
	}
	rec(g.root)
	b.WriteString("}\n")
	return b.String()
}
