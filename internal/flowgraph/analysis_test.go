package flowgraph_test

import (
	"math"
	"testing"

	"flowcube/internal/flowgraph"
	"flowcube/internal/hierarchy"
	"flowcube/internal/paperex"
)

func TestTopPaths(t *testing.T) {
	ex, g := buildExample(t)
	paths := g.TopPaths(0)
	// Table 1 has 6 distinct routes (paths 1/2 share one, 3 shares it too;
	// route multiset: fdtsc ×3, ftsc ×2, ftw ×1, fdts ×1, fdtsd ×1 → 5
	// distinct location routes).
	if len(paths) != 5 {
		t.Fatalf("got %d routes, want 5", len(paths))
	}
	// Probabilities of complete routes sum to 1.
	sum := 0.0
	for _, p := range paths {
		sum += p.Prob
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("route probabilities sum to %g", sum)
	}
	// The top route is f→d→t→s→c, taken by 3 of 8 paths.
	want := []string{"f", "d", "t", "s", "c"}
	top := paths[0]
	if len(top.Locations) != len(want) {
		t.Fatalf("top route = %v", top.Locations)
	}
	for i, name := range want {
		if top.Locations[i] != ex.Location.MustLookup(name) {
			t.Fatalf("top route differs at %d", i)
		}
	}
	if math.Abs(top.Prob-3.0/8) > 1e-9 {
		t.Errorf("top route prob = %g, want 0.375", top.Prob)
	}
	if len(top.MeanDurations) != 5 {
		t.Errorf("mean durations missing: %v", top.MeanDurations)
	}
	// Limiting k truncates.
	if got := g.TopPaths(2); len(got) != 2 {
		t.Errorf("TopPaths(2) returned %d", len(got))
	}
}

func TestReachProb(t *testing.T) {
	ex, g := buildExample(t)
	f := g.NodeAt([]hierarchy.NodeID{ex.Location.MustLookup("f")})
	if got := g.ReachProb(f); got != 1 {
		t.Errorf("reach(f) = %g", got)
	}
	ft := g.NodeAt([]hierarchy.NodeID{ex.Location.MustLookup("f"), ex.Location.MustLookup("t")})
	if got := g.ReachProb(ft); math.Abs(got-3.0/8) > 1e-9 {
		t.Errorf("reach(f,t) = %g, want 0.375", got)
	}
}

// TestExpectedLeadTime cross-checks the recursive expectation against the
// route enumeration: E[lead] = Σ_routes P(route)·meanLead(route).
func TestExpectedLeadTime(t *testing.T) {
	_, g := buildExample(t)
	var byRoutes float64
	for _, p := range g.TopPaths(0) {
		byRoutes += p.Prob * p.MeanLeadTime
	}
	direct := g.ExpectedLeadTime()
	// The two differ: route lead times weight means by route membership
	// while the recursive form weights by node reach; for a prefix tree
	// with per-node duration models they coincide.
	if math.Abs(byRoutes-direct) > 1e-9 {
		t.Errorf("lead time mismatch: routes %g vs recursion %g", byRoutes, direct)
	}
	if direct <= 0 {
		t.Errorf("lead time = %g", direct)
	}
}

func TestSubtreeLeadTime(t *testing.T) {
	ex, g := buildExample(t)
	loc := func(n string) hierarchy.NodeID { return ex.Location.MustLookup(n) }
	ftw := g.NodeAt([]hierarchy.NodeID{loc("f"), loc("t"), loc("w")})
	// Terminal node: remaining lead = its own mean stay (5).
	if got := g.SubtreeLeadTime(ftw); math.Abs(got-5) > 1e-9 {
		t.Errorf("subtree lead at warehouse = %g, want 5", got)
	}
}

func TestSlowestDeviations(t *testing.T) {
	ex := paperex.New()
	var cell []flowgraph.StagePin
	_ = cell
	paths := basePaths(ex)
	g := flowgraph.Build(ex.Location, ex.BasePathLevel(), paths, nil)
	g.MineExceptions(paths, 0.05, 2)
	slow := g.SlowestDeviations(0)
	for i, x := range slow {
		if x.Delay() <= 0 {
			t.Errorf("deviation %d has non-positive delay %g", i, x.Delay())
		}
		if i > 0 && slow[i-1].Delay() < x.Delay() {
			t.Errorf("deviations not sorted by delay")
		}
	}
	if len(slow) > 0 {
		if k1 := g.SlowestDeviations(1); len(k1) != 1 || k1[0].Delay() != slow[0].Delay() {
			t.Errorf("SlowestDeviations(1) wrong")
		}
	}
	// The paper's example: items with (f,5) then (d,2) reach the shelf
	// with longer stays (paths 2,7,8 have shelf durations 10,20,10 vs the
	// branch mean over 1,2,7,8 of (5+10+20+10)/4). Check some positive
	// delay exists at the f→d→t→s node.
	fdts := g.NodeAt([]hierarchy.NodeID{
		ex.Location.MustLookup("f"), ex.Location.MustLookup("d"),
		ex.Location.MustLookup("t"), ex.Location.MustLookup("s"),
	})
	found := false
	for _, x := range slow {
		if x.Node == fdts {
			found = true
		}
	}
	if !found {
		t.Errorf("no slowdown found at the shelf node; exceptions: %d", len(g.Exceptions()))
	}
}
