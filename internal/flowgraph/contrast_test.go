package flowgraph_test

import (
	"math"
	"testing"

	"flowcube/internal/flowgraph"
	"flowcube/internal/hierarchy"
	"flowcube/internal/paperex"
	"flowcube/internal/pathdb"
)

func TestContrastIdentical(t *testing.T) {
	ex := paperex.New()
	paths := basePaths(ex)
	a := flowgraph.Build(ex.Location, ex.BasePathLevel(), paths, nil)
	b := flowgraph.Build(ex.Location, ex.BasePathLevel(), paths, nil)
	for _, d := range flowgraph.Contrast(a, b, 0) {
		if d.OnlyIn != 0 || d.DurationDeviation > 1e-12 || d.TransitionDeviation > 1e-12 {
			t.Errorf("identical graphs produced a diff at %v: %+v", d.Prefix, d)
		}
	}
}

func TestContrastDetectsShift(t *testing.T) {
	ex := paperex.New()
	loc := func(n string) hierarchy.NodeID { return ex.Location.MustLookup(n) }
	mk := func(fDur int64) []pathdb.Path {
		var out []pathdb.Path
		for i := 0; i < 10; i++ {
			out = append(out, pathdb.Path{
				{Location: loc("f"), Duration: fDur},
				{Location: loc("s"), Duration: 3},
			})
		}
		return out
	}
	baseline := flowgraph.Build(ex.Location, ex.BasePathLevel(), mk(2), nil)
	current := flowgraph.Build(ex.Location, ex.BasePathLevel(), mk(7), nil)

	diffs := flowgraph.Contrast(current, baseline, 0)
	if len(diffs) == 0 {
		t.Fatal("no diffs")
	}
	top := diffs[0]
	if len(top.Prefix) != 1 || top.Prefix[0] != loc("f") {
		t.Fatalf("top diff at %v, want the factory node", top.Prefix)
	}
	if math.Abs(top.DurationShift-5) > 1e-9 {
		t.Errorf("duration shift = %g, want 5", top.DurationShift)
	}
	if top.DurationDeviation != 1 {
		t.Errorf("duration deviation = %g, want 1 (disjoint supports)", top.DurationDeviation)
	}
	// The shelf node is unchanged.
	for _, d := range diffs {
		if len(d.Prefix) == 2 && d.DurationDeviation > 1e-12 {
			t.Errorf("unchanged shelf node diffed: %+v", d)
		}
	}
}

func TestContrastStructuralDifference(t *testing.T) {
	ex := paperex.New()
	loc := func(n string) hierarchy.NodeID { return ex.Location.MustLookup(n) }
	baseline := flowgraph.Build(ex.Location, ex.BasePathLevel(), []pathdb.Path{
		{{Location: loc("f"), Duration: 1}, {Location: loc("s"), Duration: 1}},
	}, nil)
	current := flowgraph.Build(ex.Location, ex.BasePathLevel(), []pathdb.Path{
		{{Location: loc("f"), Duration: 1}, {Location: loc("w"), Duration: 1}},
	}, nil)
	diffs := flowgraph.Contrast(current, baseline, 0)
	var sawNew, sawGone bool
	for _, d := range diffs {
		if d.OnlyIn == 1 && d.Prefix[len(d.Prefix)-1] == loc("w") {
			sawNew = true
			if d.CurrentReach != 1 {
				t.Errorf("new branch reach = %g", d.CurrentReach)
			}
		}
		if d.OnlyIn == -1 && d.Prefix[len(d.Prefix)-1] == loc("s") {
			sawGone = true
		}
	}
	if !sawNew || !sawGone {
		t.Errorf("structural differences not reported: %+v", diffs)
	}
}

func TestContrastTruncates(t *testing.T) {
	ex := paperex.New()
	paths := basePaths(ex)
	a := flowgraph.Build(ex.Location, ex.BasePathLevel(), paths[:4], nil)
	b := flowgraph.Build(ex.Location, ex.BasePathLevel(), paths[4:], nil)
	all := flowgraph.Contrast(a, b, 0)
	two := flowgraph.Contrast(a, b, 2)
	if len(two) != 2 {
		t.Fatalf("k=2 returned %d", len(two))
	}
	if two[0].Weight() != all[0].Weight() {
		t.Errorf("truncation changed ordering")
	}
}
