// Package cleaning implements the paper's §2 preprocessing stage: turning
// a raw RFID reading stream into a path database.
//
// An RFID deployment emits tuples (EPC, location, time) — one per antenna
// read, so a single item parked on a shelf produces hundreds of readings.
// Cleaning groups the stream by EPC, orders each item's readings by time,
// collapses consecutive readings at one location into a stage
// (location, time_in, time_out), and finally discards absolute time in
// favour of relative durations, optionally discretized to a coarser unit
// (the paper: "duration may not need to be at the precision of seconds").
package cleaning

import (
	"fmt"
	"sort"

	"flowcube/internal/hierarchy"
	"flowcube/internal/pathdb"
)

// Reading is one raw tuple of the RFID stream. Time is in arbitrary ticks
// (seconds in a live deployment); only differences matter downstream.
type Reading struct {
	EPC      string
	Location hierarchy.NodeID
	Time     int64
}

// TaggedItem carries the path-independent dimension values for one EPC,
// joined from the deployment's product master data.
type TaggedItem struct {
	Dims []hierarchy.NodeID
}

// Options configures the cleaner.
type Options struct {
	// MaxGap is the largest time gap between consecutive readings at the
	// same location that still counts as one uninterrupted stay. A gap
	// larger than MaxGap splits the stay into two stages (the item left
	// the antenna field and came back). Zero means never split.
	MaxGap int64
	// MinStay drops stages shorter than this many ticks — spurious reads
	// from an adjacent antenna as the item passes by. Zero keeps all.
	MinStay int64
	// Unit discretizes durations by integer division (e.g. 3600 turns
	// second ticks into whole hours). Zero or one keeps ticks.
	Unit int64
	// MinDuration is the duration recorded for a stage whose discretized
	// duration would be zero; the paper's example paths use 0, so the
	// default keeps zeros.
	MinDuration int64
}

// Stage is an intermediate cleaned stage with absolute times, the
// (location, time_in, time_out) form of §2.
type Stage struct {
	Location hierarchy.NodeID
	TimeIn   int64
	TimeOut  int64
}

// Sessionize groups one item's readings into stages. The readings may
// arrive unordered; they are sorted by time first. Readings at the same
// location within Options.MaxGap of each other extend the current stage.
func Sessionize(readings []Reading, opts Options) []Stage {
	if len(readings) == 0 {
		return nil
	}
	sorted := append([]Reading(nil), readings...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Time < sorted[j].Time })

	var stages []Stage
	cur := Stage{Location: sorted[0].Location, TimeIn: sorted[0].Time, TimeOut: sorted[0].Time}
	for _, r := range sorted[1:] {
		sameLoc := r.Location == cur.Location
		withinGap := opts.MaxGap <= 0 || r.Time-cur.TimeOut <= opts.MaxGap
		if sameLoc && withinGap {
			cur.TimeOut = r.Time
			continue
		}
		stages = append(stages, cur)
		cur = Stage{Location: r.Location, TimeIn: r.Time, TimeOut: r.Time}
	}
	stages = append(stages, cur)

	if opts.MinStay > 0 {
		kept := stages[:0]
		for _, s := range stages {
			if s.TimeOut-s.TimeIn >= opts.MinStay {
				kept = append(kept, s)
			}
		}
		stages = kept
		// Dropping spurious stages can make two stays at one location
		// adjacent again; merge them.
		stages = mergeAdjacent(stages)
	}
	return stages
}

func mergeAdjacent(stages []Stage) []Stage {
	if len(stages) < 2 {
		return stages
	}
	out := stages[:1]
	for _, s := range stages[1:] {
		last := &out[len(out)-1]
		if s.Location == last.Location {
			last.TimeOut = s.TimeOut
			continue
		}
		out = append(out, s)
	}
	return out
}

// ToPath converts cleaned stages into the relative-duration form the path
// database stores, applying duration discretization.
func ToPath(stages []Stage, opts Options) pathdb.Path {
	unit := opts.Unit
	if unit <= 0 {
		unit = 1
	}
	p := make(pathdb.Path, 0, len(stages))
	for _, s := range stages {
		d := (s.TimeOut - s.TimeIn) / unit
		if d < opts.MinDuration {
			d = opts.MinDuration
		}
		p = append(p, pathdb.Stage{Location: s.Location, Duration: d})
	}
	return p
}

// Clean builds a path database from a raw reading stream. items supplies
// the path-independent dimensions per EPC; EPCs missing from it are
// reported in the returned error (the stream references an unregistered
// tag, which a production pipeline must surface, not drop silently).
// Items whose readings clean down to an empty path are skipped.
func Clean(schema *pathdb.Schema, readings []Reading, items map[string]TaggedItem, opts Options) (*pathdb.DB, error) {
	byEPC := make(map[string][]Reading)
	var epcs []string
	for _, r := range readings {
		if _, seen := byEPC[r.EPC]; !seen {
			epcs = append(epcs, r.EPC)
		}
		byEPC[r.EPC] = append(byEPC[r.EPC], r)
	}
	sort.Strings(epcs)

	db := pathdb.New(schema)
	for _, epc := range epcs {
		item, ok := items[epc]
		if !ok {
			return nil, fmt.Errorf("cleaning: EPC %q has readings but no registered item", epc)
		}
		stages := Sessionize(byEPC[epc], opts)
		path := ToPath(stages, opts)
		if len(path) == 0 {
			continue
		}
		if err := db.Append(pathdb.Record{Dims: item.Dims, Path: path}); err != nil {
			return nil, fmt.Errorf("cleaning: EPC %q: %w", epc, err)
		}
	}
	return db, nil
}
