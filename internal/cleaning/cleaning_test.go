package cleaning_test

import (
	"strings"
	"testing"
	"testing/quick"

	"flowcube/internal/cleaning"
	"flowcube/internal/hierarchy"
	"flowcube/internal/pathdb"
)

func testLoc(t *testing.T) *hierarchy.Hierarchy {
	t.Helper()
	loc := hierarchy.New("location")
	loc.MustAddPath("factory", "f")
	loc.MustAddPath("transportation", "d")
	loc.MustAddPath("store", "s")
	return loc
}

func r(epc string, loc hierarchy.NodeID, ts ...int64) []cleaning.Reading {
	out := make([]cleaning.Reading, len(ts))
	for i, t := range ts {
		out[i] = cleaning.Reading{EPC: epc, Location: loc, Time: t}
	}
	return out
}

func TestSessionizeCollapsesRuns(t *testing.T) {
	loc := testLoc(t)
	f, d := loc.MustLookup("f"), loc.MustLookup("d")
	var readings []cleaning.Reading
	readings = append(readings, r("a", f, 0, 5, 10)...)
	readings = append(readings, r("a", d, 20, 22)...)
	stages := cleaning.Sessionize(readings, cleaning.Options{})
	if len(stages) != 2 {
		t.Fatalf("got %d stages, want 2", len(stages))
	}
	if stages[0].Location != f || stages[0].TimeIn != 0 || stages[0].TimeOut != 10 {
		t.Errorf("stage 0 = %+v", stages[0])
	}
	if stages[1].Location != d || stages[1].TimeIn != 20 || stages[1].TimeOut != 22 {
		t.Errorf("stage 1 = %+v", stages[1])
	}
}

func TestSessionizeUnorderedInput(t *testing.T) {
	loc := testLoc(t)
	f, d := loc.MustLookup("f"), loc.MustLookup("d")
	readings := []cleaning.Reading{
		{EPC: "a", Location: d, Time: 20},
		{EPC: "a", Location: f, Time: 0},
		{EPC: "a", Location: f, Time: 10},
	}
	stages := cleaning.Sessionize(readings, cleaning.Options{})
	if len(stages) != 2 || stages[0].Location != f {
		t.Fatalf("unordered input mis-sessionized: %+v", stages)
	}
}

func TestSessionizeMaxGapSplits(t *testing.T) {
	loc := testLoc(t)
	f := loc.MustLookup("f")
	readings := r("a", f, 0, 5, 100, 105) // gap of 95 between 5 and 100
	stages := cleaning.Sessionize(readings, cleaning.Options{MaxGap: 50})
	if len(stages) != 2 {
		t.Fatalf("MaxGap did not split: %+v", stages)
	}
	all := cleaning.Sessionize(readings, cleaning.Options{})
	if len(all) != 1 {
		t.Fatalf("no MaxGap should keep one stage: %+v", all)
	}
}

func TestMinStayDropsSpuriousAndRemerges(t *testing.T) {
	loc := testLoc(t)
	f, d := loc.MustLookup("f"), loc.MustLookup("d")
	// A single spurious read at d (zero-length stay) interrupts a long
	// stay at f; MinStay drops it and the two f stages merge back.
	readings := []cleaning.Reading{
		{EPC: "a", Location: f, Time: 0},
		{EPC: "a", Location: f, Time: 10},
		{EPC: "a", Location: d, Time: 11},
		{EPC: "a", Location: f, Time: 12},
		{EPC: "a", Location: f, Time: 30},
	}
	stages := cleaning.Sessionize(readings, cleaning.Options{MinStay: 2})
	if len(stages) != 1 {
		t.Fatalf("spurious read not removed: %+v", stages)
	}
	if stages[0].Location != f || stages[0].TimeOut != 30 {
		t.Errorf("merged stage wrong: %+v", stages[0])
	}
}

func TestToPathDiscretizes(t *testing.T) {
	loc := testLoc(t)
	f := loc.MustLookup("f")
	stages := []cleaning.Stage{{Location: f, TimeIn: 0, TimeOut: 7200}}
	p := cleaning.ToPath(stages, cleaning.Options{Unit: 3600})
	if len(p) != 1 || p[0].Duration != 2 {
		t.Fatalf("hour discretization wrong: %+v", p)
	}
	short := []cleaning.Stage{{Location: f, TimeIn: 0, TimeOut: 10}}
	p2 := cleaning.ToPath(short, cleaning.Options{Unit: 3600, MinDuration: 1})
	if p2[0].Duration != 1 {
		t.Errorf("MinDuration floor not applied: %+v", p2)
	}
}

func TestCleanEndToEnd(t *testing.T) {
	loc := testLoc(t)
	prod := hierarchy.New("product")
	prod.MustAddPath("clothing", "shirt")
	schema := pathdb.MustNewSchema(loc, prod)
	f, d, s := loc.MustLookup("f"), loc.MustLookup("d"), loc.MustLookup("s")

	var readings []cleaning.Reading
	readings = append(readings, r("epc1", f, 0, 3600, 7200)...)
	readings = append(readings, r("epc1", d, 10800, 14400)...)
	readings = append(readings, r("epc1", s, 18000)...)
	readings = append(readings, r("epc2", f, 100, 3700)...)

	items := map[string]cleaning.TaggedItem{
		"epc1": {Dims: []hierarchy.NodeID{prod.MustLookup("shirt")}},
		"epc2": {Dims: []hierarchy.NodeID{prod.MustLookup("shirt")}},
	}
	db, err := cleaning.Clean(schema, readings, items, cleaning.Options{Unit: 3600})
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 2 {
		t.Fatalf("cleaned %d items, want 2", db.Len())
	}
	want := "(f,2)(d,1)(s,0)"
	if got := db.Records[0].Path.String(loc); got != want {
		t.Errorf("epc1 path = %s, want %s", got, want)
	}
}

func TestCleanRejectsUnregisteredEPC(t *testing.T) {
	loc := testLoc(t)
	prod := hierarchy.New("product")
	prod.MustAddPath("clothing", "shirt")
	schema := pathdb.MustNewSchema(loc, prod)
	readings := r("ghost", loc.MustLookup("f"), 0, 10)
	_, err := cleaning.Clean(schema, readings, nil, cleaning.Options{})
	if err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("unregistered EPC not reported: %v", err)
	}
}

// Property: sessionizing any reading sequence produces stages with
// non-decreasing, non-overlapping time ranges and no two consecutive
// stages at the same location (when no MinStay filtering applies).
func TestSessionizeProperty(t *testing.T) {
	loc := testLoc(t)
	leaves := loc.Leaves()
	f := func(locIdx []uint8, times []int16) bool {
		n := len(locIdx)
		if len(times) < n {
			n = len(times)
		}
		var readings []cleaning.Reading
		for i := 0; i < n; i++ {
			readings = append(readings, cleaning.Reading{
				EPC:      "x",
				Location: leaves[int(locIdx[i])%len(leaves)],
				Time:     int64(times[i]),
			})
		}
		stages := cleaning.Sessionize(readings, cleaning.Options{})
		if len(readings) == 0 {
			return stages == nil
		}
		for i, s := range stages {
			if s.TimeOut < s.TimeIn {
				return false
			}
			if i > 0 {
				if stages[i-1].Location == s.Location {
					return false
				}
				if s.TimeIn < stages[i-1].TimeOut {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
