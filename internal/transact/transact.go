// Package transact implements the paper's §5 transformation of a path
// database into a transaction database (Table 3), together with the interned
// symbol table the mining algorithms run over.
//
// Every value in the path database becomes an *item* that encodes its
// concept-hierarchy position:
//
//   - a path-independent dimension value contributes one item per
//     materialized abstraction level of its dimension (the paper's "121",
//     "12*", ... encoding), and
//   - a path stage contributes, for every configured path abstraction level,
//     one item recording the aggregated location prefix leading to the stage
//     plus the stage's duration at that level (the paper's "(fdt,1)",
//     "(fdt,*)", "(fTs,10)" encoding).
//
// The symbol table additionally records, per item, the metadata the Shared
// algorithm prunes with: ancestor links along the item and path lattices,
// stage linkability (two stages whose location prefixes conflict can never
// co-occur in one path), and each item's high-abstraction-level image used
// for pre-counting.
package transact

import (
	"fmt"
	"sort"
	"strings"

	"flowcube/internal/hierarchy"
	"flowcube/internal/pathdb"
)

// Item is an interned symbol identifier. Items are dense, starting at 0.
type Item int32

// Kind distinguishes the two item families.
type Kind uint8

const (
	// KindDimValue is a path-independent dimension value at some level.
	KindDimValue Kind = iota
	// KindStage is an encoded path stage at some path abstraction level.
	KindStage
)

// Transaction is one encoded path-database record: the sorted set of items
// it supports.
type Transaction []Item

// Plan configures the encoding: which abstraction levels are materialized.
// This is the paper's cube materialization plan restricted to what mining
// needs (§5 "the concrete cuboids ... determined based on the cube
// materialization plan").
type Plan struct {
	// DimLevels lists, per dimension, the hierarchy levels to materialize
	// (1 = most general non-'*' level). A nil entry means every level
	// 1..depth of that dimension.
	DimLevels [][]int
	// PathLevels lists the path abstraction levels to materialize.
	PathLevels []pathdb.PathLevel
	// IncludeTop, when set, also materializes the root-'*' item of every
	// dimension. The paper's optimization 3 removes these from the
	// transaction database; the Basic baseline keeps them.
	IncludeTop bool
	// Merge combines durations of stages merged during path aggregation;
	// nil means pathdb.SumDurations.
	Merge pathdb.DurationMerge
}

// NormalizedDimLevels returns the per-dimension level lists with nil entries
// expanded to 1..depth.
func (p Plan) NormalizedDimLevels(schema *pathdb.Schema) [][]int {
	out := make([][]int, len(schema.Dims))
	for i, h := range schema.Dims {
		if i < len(p.DimLevels) && p.DimLevels[i] != nil {
			out[i] = append([]int(nil), p.DimLevels[i]...)
			sort.Ints(out[i])
			continue
		}
		for l := 1; l <= h.Depth(); l++ {
			out[i] = append(out[i], l)
		}
	}
	return out
}

type itemInfo struct {
	kind Kind

	// KindDimValue fields.
	dim   int
	node  hierarchy.NodeID
	level int

	// KindStage fields.
	pathLevel int                // index into Symbols.pathLevels
	seq       []hierarchy.NodeID // aggregated location prefix; last = stage location
	dur       int64              // duration at the stage; ignored when durAny
	durAny    bool

	ancestors []Item // strict generalizations guaranteed present alongside this item
	topImage  Item   // high-abstraction-level image for pre-counting; -1 if none
}

// Symbols interns items for one schema+plan and answers the structural
// queries mining needs. It is not safe for concurrent mutation; encode the
// whole database first, after which all read methods are safe concurrently.
type Symbols struct {
	schema     *pathdb.Schema
	plan       Plan
	dimLevels  [][]int
	pathLevels []pathdb.PathLevel

	items    []itemInfo
	byDimVal map[int64]Item
	byStage  map[string]Item

	// precountLevel is the index of the coarsest path level (used as the
	// stage pre-counting target), or -1 when there is a single level.
	precountLevel int
}

// Clone returns an independently mutable copy of the symbol table. Encoding
// new records interns fresh stage items — a mutation — so delta maintenance
// clones the table instead of racing readers of the original cube. Interned
// item entries are immutable once created, so the per-item metadata (seq,
// ancestors) is shared; only the containers are copied.
func (s *Symbols) Clone() *Symbols {
	c := &Symbols{
		schema:        s.schema,
		plan:          s.plan,
		dimLevels:     s.dimLevels,
		pathLevels:    s.pathLevels,
		items:         append([]itemInfo(nil), s.items...),
		byDimVal:      make(map[int64]Item, len(s.byDimVal)),
		byStage:       make(map[string]Item, len(s.byStage)),
		precountLevel: s.precountLevel,
	}
	for k, v := range s.byDimVal {
		c.byDimVal[k] = v
	}
	for k, v := range s.byStage {
		c.byStage[k] = v
	}
	return c
}

// NewSymbols builds an empty symbol table for the schema and plan. The plan
// must contain at least one path level.
func NewSymbols(schema *pathdb.Schema, plan Plan) (*Symbols, error) {
	if len(plan.PathLevels) == 0 {
		return nil, fmt.Errorf("transact: plan has no path abstraction levels")
	}
	if len(plan.DimLevels) > len(schema.Dims) {
		return nil, fmt.Errorf("transact: plan has %d dimension level lists, schema has %d dimensions",
			len(plan.DimLevels), len(schema.Dims))
	}
	s := &Symbols{
		schema:     schema,
		plan:       plan,
		dimLevels:  plan.NormalizedDimLevels(schema),
		pathLevels: plan.PathLevels,
		byDimVal:   make(map[int64]Item),
		byStage:    make(map[string]Item),
	}
	s.precountLevel = s.coarsestPathLevel()
	return s, nil
}

// MustNewSymbols is NewSymbols for static construction; it panics on error.
func MustNewSymbols(schema *pathdb.Schema, plan Plan) *Symbols {
	s, err := NewSymbols(schema, plan)
	if err != nil {
		panic(err)
	}
	return s
}

// coarsestPathLevel picks the level every other level refines, preferring
// TimeAny; -1 if none strictly coarser than all others exists.
func (s *Symbols) coarsestPathLevel() int {
	best := -1
	for i, cand := range s.pathLevels {
		ok := true
		for j, other := range s.pathLevels {
			if i == j {
				continue
			}
			if !other.Cut.Refines(cand.Cut) {
				ok = false
				break
			}
			if cand.Time.Any || other.Time.Any == cand.Time.Any {
				continue
			}
			ok = false
			break
		}
		if !ok {
			continue
		}
		if best == -1 || (cand.Time.Any && !s.pathLevels[best].Time.Any) {
			best = i
		}
	}
	if best >= 0 && len(s.pathLevels) > 1 {
		return best
	}
	return -1
}

// Schema returns the schema the symbols were built for.
func (s *Symbols) Schema() *pathdb.Schema { return s.schema }

// PathLevels returns the materialized path abstraction levels.
func (s *Symbols) PathLevels() []pathdb.PathLevel { return s.pathLevels }

// DimLevels returns the materialized levels per dimension.
func (s *Symbols) DimLevels() [][]int { return s.dimLevels }

// Len reports the number of interned items.
func (s *Symbols) Len() int { return len(s.items) }

// Kind reports an item's family.
func (s *Symbols) Kind(it Item) Kind { return s.items[it].kind }

// IsStage reports whether the item encodes a path stage.
func (s *Symbols) IsStage(it Item) bool { return s.items[it].kind == KindStage }

// Dim reports the dimension index of a KindDimValue item.
func (s *Symbols) Dim(it Item) int { return s.items[it].dim }

// Node reports the concept of a KindDimValue item.
func (s *Symbols) Node(it Item) hierarchy.NodeID { return s.items[it].node }

// Level reports the hierarchy level of a KindDimValue item.
func (s *Symbols) Level(it Item) int { return s.items[it].level }

// StageLevel reports the path-level index of a KindStage item.
func (s *Symbols) StageLevel(it Item) int { return s.items[it].pathLevel }

// StageSeq reports the aggregated location prefix of a KindStage item. The
// returned slice is owned by the table and must not be modified.
func (s *Symbols) StageSeq(it Item) []hierarchy.NodeID { return s.items[it].seq }

// StageDuration reports the stage duration; ok is false when the duration
// is aggregated to '*'.
func (s *Symbols) StageDuration(it Item) (d int64, ok bool) {
	inf := &s.items[it]
	return inf.dur, !inf.durAny
}

// Ancestors returns the interned strict generalizations of an item that are
// guaranteed to co-occur with it in every transaction. The slice is owned
// by the table.
func (s *Symbols) Ancestors(it Item) []Item { return s.items[it].ancestors }

// TopImage returns the item's high-abstraction-level image used for
// pre-counting, or -1 when the item has none (it is already at the top, and
// counting it again would be wasted work, or no coarsest path level exists).
func (s *Symbols) TopImage(it Item) Item { return s.items[it].topImage }

// PrecountLevel returns the index of the coarsest materialized path level,
// the target of stage pre-counting, or -1 when no such level exists.
func (s *Symbols) PrecountLevel() int { return s.precountLevel }

// IsTopLevel reports whether the item lives at the highest materialized
// abstraction of its family: a dimension value at its dimension's most
// general materialized level (excluding '*'), or a stage at the coarsest
// path level. Pre-counting during the first scan pairs exactly these items.
func (s *Symbols) IsTopLevel(it Item) bool {
	inf := &s.items[it]
	if inf.kind == KindDimValue {
		levels := s.dimLevels[inf.dim]
		return len(levels) > 0 && inf.level == levels[0]
	}
	return s.precountLevel >= 0 && inf.pathLevel == s.precountLevel
}

// PrecountImage returns the item whose pre-counted support bounds this
// item's support: the item itself when it is top-level, its TopImage when
// one is derivable, and -1 otherwise.
func (s *Symbols) PrecountImage(it Item) Item {
	if s.IsTopLevel(it) {
		return it
	}
	return s.items[it].topImage
}

// LookupDimValue resolves the item for a dimension value without interning
// new symbols; ok is false when the value never occurred at that level.
func (s *Symbols) LookupDimValue(dim int, node hierarchy.NodeID) (Item, bool) {
	it, ok := s.byDimVal[dimValKey(dim, node)]
	return it, ok
}

// LookupStage resolves a stage item without interning; ok is false when the
// encoded database contains no such stage.
func (s *Symbols) LookupStage(level int, seq []hierarchy.NodeID, dur int64, durAny bool) (Item, bool) {
	it, ok := s.byStage[stageKey(level, seq, dur, durAny)]
	return it, ok
}

func dimValKey(dim int, node hierarchy.NodeID) int64 {
	return int64(dim)<<32 | int64(uint32(node))
}

func stageKey(level int, seq []hierarchy.NodeID, dur int64, durAny bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d:", level)
	for _, n := range seq {
		fmt.Fprintf(&b, "%d.", n)
	}
	if durAny {
		b.WriteString("*")
	} else {
		fmt.Fprintf(&b, "%d", dur)
	}
	return b.String()
}

// internDimValue interns the item for concept node of dimension dim,
// resolving its ancestors at the materialized higher levels.
func (s *Symbols) internDimValue(dim int, node hierarchy.NodeID) Item {
	key := dimValKey(dim, node)
	if it, ok := s.byDimVal[key]; ok {
		return it
	}
	h := s.schema.Dims[dim]
	level := h.Level(node)
	it := Item(len(s.items))
	s.items = append(s.items, itemInfo{
		kind: KindDimValue, dim: dim, node: node, level: level, topImage: -1,
	})
	s.byDimVal[key] = it

	// Ancestors: the same dimension's concepts at every materialized level
	// above this one (plus '*' when the plan includes top items).
	var anc []Item
	for _, l := range s.dimLevels[dim] {
		if l >= level {
			break
		}
		anc = append(anc, s.internDimValue(dim, h.AncestorAt(node, l)))
	}
	if s.plan.IncludeTop && level > 0 {
		anc = append(anc, s.internDimValue(dim, hierarchy.Root))
	}
	top := Item(-1)
	if len(s.dimLevels[dim]) > 0 {
		if minLevel := s.dimLevels[dim][0]; minLevel < level {
			top = s.internDimValue(dim, h.AncestorAt(node, minLevel))
		}
	}
	s.items[it].ancestors = anc
	s.items[it].topImage = top
	return it
}

// internStage interns the stage item for the given path level, aggregated
// prefix and duration, wiring ancestor and pre-count metadata.
func (s *Symbols) internStage(level int, seq []hierarchy.NodeID, dur int64, durAny bool) Item {
	key := stageKey(level, seq, dur, durAny)
	if it, ok := s.byStage[key]; ok {
		return it
	}
	it := Item(len(s.items))
	seqCopy := append([]hierarchy.NodeID(nil), seq...)
	s.items = append(s.items, itemInfo{
		kind: KindStage, pathLevel: level, seq: seqCopy, dur: dur, durAny: durAny,
		topImage: -1,
	})
	s.byStage[key] = it

	var anc []Item
	// Time-axis generalization within the same cut: always sound.
	if !durAny {
		if any := s.sameCutAnyLevel(level); any >= 0 {
			anc = append(anc, s.internStage(any, seqCopy, 0, true))
		}
	}
	// Cut-axis generalization: sound only when aggregating the prefix under
	// the coarser cut produces no merges and the image of the final
	// location covers a single leaf (see stageAncestorAt).
	for target := range s.pathLevels {
		if target == level {
			continue
		}
		if a, ok := s.stageAncestorAt(level, seqCopy, dur, durAny, target); ok {
			anc = append(anc, a)
		}
	}
	s.items[it].ancestors = dedupItems(anc)

	if s.precountLevel >= 0 && level != s.precountLevel {
		if img, ok := s.stageAncestorAt(level, seqCopy, dur, durAny, s.precountLevel); ok {
			s.items[it].topImage = img
		}
	}
	return it
}

// sameCutAnyLevel finds a materialized path level with the same cut and
// TimeAny, or -1.
func (s *Symbols) sameCutAnyLevel(level int) int {
	cut := s.pathLevels[level].Cut
	for i, pl := range s.pathLevels {
		if i != level && pl.Time.Any && pl.Cut.Key() == cut.Key() {
			return i
		}
	}
	return -1
}

// stageAncestorAt computes, if soundly derivable, the generalization of a
// stage item at the target path level. The generalization is sound — i.e.
// guaranteed to appear in every transaction containing the original stage —
// only when:
//
//  1. the target cut is refined by the source cut and the target time level
//     is at least as coarse;
//  2. mapping the prefix under the target cut merges no consecutive stages
//     (a merge would fold durations of neighbours into the item, which the
//     source item does not carry); and
//  3. either the target time is '*', or the image of the final location
//     covers exactly one leaf, so no later stage of the path can merge into
//     it and change its duration.
func (s *Symbols) stageAncestorAt(level int, seq []hierarchy.NodeID, dur int64, durAny bool, target int) (Item, bool) {
	src, dst := s.pathLevels[level], s.pathLevels[target]
	if !src.Cut.Refines(dst.Cut) || src.Cut.Key() == dst.Cut.Key() {
		return -1, false
	}
	if durAny && !dst.Time.Any {
		return -1, false
	}
	mapped := make([]hierarchy.NodeID, len(seq))
	for i, n := range seq {
		mapped[i] = dst.Cut.Map(n)
		if i > 0 && mapped[i] == mapped[i-1] {
			return -1, false // a merge occurred; duration not derivable
		}
	}
	if dst.Time.Any {
		return s.internStage(target, mapped, 0, true), true
	}
	last := mapped[len(mapped)-1]
	if s.leafCover(dst.Cut, last) != 1 {
		return -1, false // a successor stage could merge into the image
	}
	return s.internStage(target, mapped, dst.Time.Apply(dur), false), true
}

// leafCover counts leaves of the location hierarchy mapping to node under
// the cut.
func (s *Symbols) leafCover(cut *hierarchy.Cut, node hierarchy.NodeID) int {
	n := 0
	for _, leaf := range s.schema.Location.Leaves() {
		if cut.Map(leaf) == node {
			n++
		}
	}
	return n
}

func dedupItems(in []Item) []Item {
	if len(in) < 2 {
		return in
	}
	sort.Slice(in, func(i, j int) bool { return in[i] < in[j] })
	out := in[:1]
	for _, it := range in[1:] {
		if it != out[len(out)-1] {
			out = append(out, it)
		}
	}
	return out
}

// EncodeRecord encodes one record into a sorted transaction containing its
// dimension-value items at every materialized level and its stage items at
// every materialized path level.
func (s *Symbols) EncodeRecord(r pathdb.Record) Transaction {
	var t Transaction
	for dim, v := range r.Dims {
		h := s.schema.Dims[dim]
		for _, l := range s.dimLevels[dim] {
			t = append(t, s.internDimValue(dim, h.AncestorAt(v, l)))
		}
		if s.plan.IncludeTop {
			t = append(t, s.internDimValue(dim, hierarchy.Root))
		}
	}
	t = append(t, s.encodeStages(r.Path)...)
	sort.Slice(t, func(i, j int) bool { return t[i] < t[j] })
	return dedupTransaction(t)
}

// EncodeStages encodes only the path portion of a record: its stage items
// at every materialized path level. This is what the Cubing competitor
// mines per cell (Algorithm 2 step 2).
func (s *Symbols) EncodeStages(p pathdb.Path) Transaction {
	t := s.encodeStages(p)
	sort.Slice(t, func(i, j int) bool { return t[i] < t[j] })
	return dedupTransaction(t)
}

func (s *Symbols) encodeStages(p pathdb.Path) []Item {
	var t []Item
	for li, pl := range s.pathLevels {
		agg := pathdb.AggregatePath(p, pl, s.plan.Merge)
		seq := make([]hierarchy.NodeID, 0, len(agg))
		for _, st := range agg {
			seq = append(seq, st.Location)
			t = append(t, s.internStage(li, seq, st.Duration, pl.Time.Any))
		}
	}
	return t
}

func dedupTransaction(t Transaction) Transaction {
	if len(t) < 2 {
		return t
	}
	out := t[:1]
	for _, it := range t[1:] {
		if it != out[len(out)-1] {
			out = append(out, it)
		}
	}
	return out
}

// Encode encodes the whole database. The i-th transaction corresponds to
// the i-th record.
func (s *Symbols) Encode(db *pathdb.DB) []Transaction {
	out := make([]Transaction, len(db.Records))
	for i, r := range db.Records {
		out[i] = s.EncodeRecord(r)
	}
	return out
}

// Linkable reports whether two items can co-occur in some path. Dimension
// values are always linkable with anything (different dimensions vary
// freely; the same dimension's same-level distinct values cannot co-occur,
// which we also detect). For stages, two encoded prefixes conflict when
// their location sequences disagree — the paper's "(fd,2) and (fts,5) can
// never appear in the same path".
func (s *Symbols) Linkable(a, b Item) bool {
	ia, ib := &s.items[a], &s.items[b]
	if ia.kind == KindDimValue && ib.kind == KindDimValue {
		if ia.dim != ib.dim {
			return true
		}
		// Same dimension: compatible only along one hierarchy branch.
		h := s.schema.Dims[ia.dim]
		return h.IsAncestorOrSelf(ia.node, ib.node) || h.IsAncestorOrSelf(ib.node, ia.node)
	}
	if ia.kind != ib.kind {
		return true
	}
	return s.stagesLinkable(ia, ib)
}

func (s *Symbols) stagesLinkable(ia, ib *itemInfo) bool {
	if ia.pathLevel == ib.pathLevel {
		return s.seqsCompatible(ia, ib, true)
	}
	la, lb := s.pathLevels[ia.pathLevel], s.pathLevels[ib.pathLevel]
	switch {
	case la.Cut.Key() == lb.Cut.Key():
		// Same cut, different time level: sequences share a domain but
		// durations are not comparable across levels.
		return s.seqsCompatible(ia, ib, false)
	case la.Cut.Refines(lb.Cut):
		return s.crossCutCompatible(ia, ib, lb.Cut)
	case lb.Cut.Refines(la.Cut):
		return s.crossCutCompatible(ib, ia, la.Cut)
	default:
		return true // incomparable cuts: assume linkable
	}
}

// seqsCompatible checks prefix compatibility of two stages over the same
// cut. When durations are comparable and the sequences are identical, the
// stages denote the same path position and must agree on duration.
func (s *Symbols) seqsCompatible(ia, ib *itemInfo, compareDur bool) bool {
	short, long := ia, ib
	if len(short.seq) > len(long.seq) {
		short, long = long, short
	}
	for i, n := range short.seq {
		if long.seq[i] != n {
			return false
		}
	}
	if compareDur && len(ia.seq) == len(ib.seq) && !ia.durAny && !ib.durAny && ia.dur != ib.dur {
		return false
	}
	return true
}

// crossCutCompatible checks a fine-cut stage against a coarse-cut stage:
// the coarse image of the fine prefix (minus its possibly-unfinished last
// run) must be prefix-compatible with the coarse stage's sequence.
func (s *Symbols) crossCutCompatible(fine, coarse *itemInfo, coarseCut *hierarchy.Cut) bool {
	img := make([]hierarchy.NodeID, 0, len(fine.seq))
	for _, n := range fine.seq {
		m := coarseCut.Map(n)
		if len(img) == 0 || img[len(img)-1] != m {
			img = append(img, m)
		}
	}
	// The last image element may extend by absorbing later path stages, so
	// only the first len(img) locations of the coarse path are pinned, and
	// of those the last is pinned in location but not in position-end.
	n := len(img)
	if len(coarse.seq) <= n {
		for i, c := range coarse.seq {
			if img[i] != c {
				return false
			}
		}
		return true
	}
	for i := 0; i < n; i++ {
		if img[i] != coarse.seq[i] {
			return false
		}
	}
	return true
}

// HasAncestorPair reports whether the itemset contains some item together
// with one of its ancestors — such candidates are redundant (Srikant &
// Agrawal): the ancestor's presence is implied, so the count equals the
// subset without it.
func (s *Symbols) HasAncestorPair(set []Item) bool {
	if len(set) < 2 {
		return false
	}
	present := make(map[Item]bool, len(set))
	for _, it := range set {
		present[it] = true
	}
	for _, it := range set {
		for _, a := range s.items[it].ancestors {
			if present[a] {
				return true
			}
		}
	}
	return false
}

// AllLinkable reports whether every pair in the itemset is linkable.
func (s *Symbols) AllLinkable(set []Item) bool {
	for i := 0; i < len(set); i++ {
		for j := i + 1; j < len(set); j++ {
			if !s.Linkable(set[i], set[j]) {
				return false
			}
		}
	}
	return true
}

// ItemString renders an item in the paper's notation, e.g. "product=shoes"
// or "(f.d.t,1)@L0", for diagnostics and tests.
func (s *Symbols) ItemString(it Item) string {
	inf := &s.items[it]
	if inf.kind == KindDimValue {
		return fmt.Sprintf("%s=%s", s.schema.Dims[inf.dim].Dimension(), s.schema.Dims[inf.dim].Name(inf.node))
	}
	var b strings.Builder
	b.WriteByte('(')
	for i, n := range inf.seq {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(s.schema.Location.Name(n))
	}
	b.WriteByte(',')
	if inf.durAny {
		b.WriteByte('*')
	} else {
		fmt.Fprintf(&b, "%d", inf.dur)
	}
	fmt.Fprintf(&b, ")@L%d", inf.pathLevel)
	return b.String()
}

// SetString renders an itemset for diagnostics.
func (s *Symbols) SetString(set []Item) string {
	parts := make([]string, len(set))
	for i, it := range set {
		parts[i] = s.ItemString(it)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
