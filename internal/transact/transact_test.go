package transact_test

import (
	"strings"
	"testing"

	"flowcube/internal/hierarchy"
	"flowcube/internal/paperex"
	"flowcube/internal/pathdb"
	"flowcube/internal/transact"
)

// examplePlan builds the Table-3 encoding plan for the running example:
// leaf locations × {base time, '*'} plus the one-level-up location cut, the
// four path levels the experiments use.
func examplePlan(ex *paperex.Example) transact.Plan {
	loc := ex.Location
	leaf := hierarchy.LevelCut(loc, loc.Depth())
	up := hierarchy.LevelCut(loc, 1)
	return transact.Plan{
		PathLevels: []pathdb.PathLevel{
			{Cut: leaf, Time: pathdb.TimeBase},
			{Cut: leaf, Time: pathdb.TimeAny},
			{Cut: up, Time: pathdb.TimeBase},
			{Cut: up, Time: pathdb.TimeAny},
		},
	}
}

func leafOnlyPlan(ex *paperex.Example) transact.Plan {
	leaf := hierarchy.LevelCut(ex.Location, ex.Location.Depth())
	return transact.Plan{
		PathLevels: []pathdb.PathLevel{
			{Cut: leaf, Time: pathdb.TimeBase},
			{Cut: leaf, Time: pathdb.TimeAny},
		},
	}
}

func seq(ex *paperex.Example, names ...string) []hierarchy.NodeID {
	out := make([]hierarchy.NodeID, len(names))
	for i, n := range names {
		out[i] = ex.Location.MustLookup(n)
	}
	return out
}

func TestEncodeRecordTable3(t *testing.T) {
	ex := paperex.New()
	syms := transact.MustNewSymbols(ex.Schema, leafOnlyPlan(ex))
	txs := syms.Encode(ex.DB)
	if len(txs) != 8 {
		t.Fatalf("encoded %d transactions, want 8", len(txs))
	}

	// Transaction 1 (tennis, nike, (f,10)(d,2)(t,1)(s,5)(c,0)) must contain
	// the Table-3 stage items at the base level plus their '*' variants.
	tx := txs[0]
	wantStages := []struct {
		names []string
		dur   int64
		any   bool
	}{
		{[]string{"f"}, 10, false},
		{[]string{"f", "d"}, 2, false},
		{[]string{"f", "d", "t"}, 1, false},
		{[]string{"f", "d", "t", "s"}, 5, false},
		{[]string{"f", "d", "t", "s", "c"}, 0, false},
		{[]string{"f", "d", "t", "s", "c"}, 0, true},
	}
	for _, w := range wantStages {
		level := 0
		if w.any {
			level = 1
		}
		it, ok := syms.LookupStage(level, seq(ex, w.names...), w.dur, w.any)
		if !ok {
			t.Fatalf("stage %v dur=%d any=%v was never interned", w.names, w.dur, w.any)
		}
		if !contains(tx, it) {
			t.Errorf("transaction 1 lacks stage %s", syms.ItemString(it))
		}
	}

	// Dimension items at every level: product tennis (level 3), shoes (2),
	// clothing (1); brand nike (2), sports (1).
	for _, w := range []struct {
		dim  int
		name string
		h    *hierarchy.Hierarchy
	}{
		{0, "tennis", ex.Product},
		{0, "shoes", ex.Product},
		{0, "clothing", ex.Product},
		{1, "nike", ex.Brand},
		{1, "sports", ex.Brand},
	} {
		it, ok := syms.LookupDimValue(w.dim, w.h.MustLookup(w.name))
		if !ok {
			t.Fatalf("dim value %q was never interned", w.name)
		}
		if !contains(tx, it) {
			t.Errorf("transaction 1 lacks dim item %s", syms.ItemString(it))
		}
	}

	// The '*' root items are excluded by default (optimization 3).
	if _, ok := syms.LookupDimValue(0, hierarchy.Root); ok {
		t.Errorf("root '*' item interned without IncludeTop")
	}
}

func TestEncodeIncludeTop(t *testing.T) {
	ex := paperex.New()
	plan := leafOnlyPlan(ex)
	plan.IncludeTop = true
	syms := transact.MustNewSymbols(ex.Schema, plan)
	txs := syms.Encode(ex.DB)
	it, ok := syms.LookupDimValue(0, hierarchy.Root)
	if !ok {
		t.Fatalf("IncludeTop did not intern the product '*' item")
	}
	for i, tx := range txs {
		if !contains(tx, it) {
			t.Errorf("transaction %d lacks the '*' product item under IncludeTop", i+1)
		}
	}
}

func TestStageAggregationSupportsHigherLevels(t *testing.T) {
	ex := paperex.New()
	syms := transact.MustNewSymbols(ex.Schema, examplePlan(ex))
	txs := syms.Encode(ex.DB)

	// Path 4 (f,10)(t,1)(s,5)(c,0): at the one-level-up cut its path is
	// factory, transportation, store(5+0 merged? s and c both map to store:
	// durations 5 and 0 merge to 5).
	up := 2 // index of (up cut, TimeBase)
	fa := ex.Location.MustLookup("factory")
	tr := ex.Location.MustLookup("transportation")
	st := ex.Location.MustLookup("store")
	it, ok := syms.LookupStage(up, []hierarchy.NodeID{fa, tr, st}, 5, false)
	if !ok {
		t.Fatalf("aggregated stage (factory.transportation.store,5) missing")
	}
	if !contains(txs[3], it) {
		t.Errorf("transaction 4 lacks %s", syms.ItemString(it))
	}

	// Path 1 (f,10)(d,2)(t,1)(s,5)(c,0): d and t merge into transportation
	// with duration 3; s and c merge into store with duration 5.
	it2, ok := syms.LookupStage(up, []hierarchy.NodeID{fa, tr}, 3, false)
	if !ok {
		t.Fatalf("aggregated stage (factory.transportation,3) missing")
	}
	if !contains(txs[0], it2) {
		t.Errorf("transaction 1 lacks %s", syms.ItemString(it2))
	}
}

func TestAncestors(t *testing.T) {
	ex := paperex.New()
	syms := transact.MustNewSymbols(ex.Schema, examplePlan(ex))
	syms.Encode(ex.DB)

	// tennis -> shoes -> clothing along the product dimension.
	tennis, _ := syms.LookupDimValue(0, ex.Product.MustLookup("tennis"))
	shoes, _ := syms.LookupDimValue(0, ex.Product.MustLookup("shoes"))
	clothing, _ := syms.LookupDimValue(0, ex.Product.MustLookup("clothing"))
	anc := syms.Ancestors(tennis)
	if !containsItem(anc, shoes) || !containsItem(anc, clothing) {
		t.Errorf("tennis ancestors = %v, want shoes and clothing", anc)
	}

	// (f,10) at the base level has (f,*) as a same-cut ancestor.
	f10, ok := syms.LookupStage(0, seq(ex, "f"), 10, false)
	if !ok {
		t.Fatalf("(f,10) missing")
	}
	fAny, ok := syms.LookupStage(1, seq(ex, "f"), 0, true)
	if !ok {
		t.Fatalf("(f,*) missing")
	}
	if !containsItem(syms.Ancestors(f10), fAny) {
		t.Errorf("(f,10) ancestors lack (f,*): %v", syms.Ancestors(f10))
	}

	// Cross-cut ancestry to a TimeAny level is always sound: (f.d,2) at the
	// leaf cut generalizes to (factory.transportation,*) at level 3.
	fd2, ok := syms.LookupStage(0, seq(ex, "f", "d"), 2, false)
	if !ok {
		t.Fatalf("(f.d,2) missing")
	}
	fa := ex.Location.MustLookup("factory")
	tr := ex.Location.MustLookup("transportation")
	ftAny, ok := syms.LookupStage(3, []hierarchy.NodeID{fa, tr}, 0, true)
	if !ok {
		t.Fatalf("(factory.transportation,*) missing")
	}
	if !containsItem(syms.Ancestors(fd2), ftAny) {
		t.Errorf("(f.d,2) ancestors lack (factory.transportation,*)")
	}

	// Cross-cut ancestry at a concrete time level is unsound when the
	// image's last concept covers several leaves (a successor could merge
	// in and change the duration): (f.d,2) must NOT claim
	// (factory.transportation,2) as an ancestor.
	if ft2, ok := syms.LookupStage(2, []hierarchy.NodeID{fa, tr}, 2, false); ok {
		if containsItem(syms.Ancestors(fd2), ft2) {
			t.Errorf("(f.d,2) wrongly claims concrete-duration cross-cut ancestor")
		}
	}
}

func TestLinkability(t *testing.T) {
	ex := paperex.New()
	syms := transact.MustNewSymbols(ex.Schema, examplePlan(ex))
	syms.Encode(ex.DB)

	get := func(level int, dur int64, any bool, names ...string) transact.Item {
		t.Helper()
		it, ok := syms.LookupStage(level, seq(ex, names...), dur, any)
		if !ok {
			t.Fatalf("stage %v missing", names)
		}
		return it
	}

	fd2 := get(0, 2, false, "f", "d")
	fdt1 := get(0, 1, false, "f", "d", "t")
	// Paper's example: (fd,2) and (fts,5) can never appear in one path.
	ft1 := get(0, 1, false, "f", "t")
	if syms.Linkable(fd2, ft1) {
		t.Errorf("(f.d,2) and (f.t,1) should be unlinkable: prefixes conflict")
	}
	if !syms.Linkable(fd2, fdt1) {
		t.Errorf("(f.d,2) and (f.d.t,1) should be linkable")
	}

	// Same position, different durations: unlinkable.
	f10 := get(0, 10, false, "f")
	f5 := get(0, 5, false, "f")
	if syms.Linkable(f10, f5) {
		t.Errorf("(f,10) and (f,5) should be unlinkable")
	}

	// Same-dimension values on different branches are unlinkable.
	tennis, _ := syms.LookupDimValue(0, ex.Product.MustLookup("tennis"))
	outer, _ := syms.LookupDimValue(0, ex.Product.MustLookup("outerwear"))
	shoes, _ := syms.LookupDimValue(0, ex.Product.MustLookup("shoes"))
	if syms.Linkable(tennis, outer) {
		t.Errorf("tennis and outerwear should be unlinkable (same dimension, different branches)")
	}
	if !syms.Linkable(tennis, shoes) {
		t.Errorf("tennis and shoes should be linkable (ancestor chain)")
	}

	// Items of different dimensions are always linkable.
	nike, _ := syms.LookupDimValue(1, ex.Brand.MustLookup("nike"))
	if !syms.Linkable(tennis, nike) {
		t.Errorf("tennis and nike should be linkable")
	}
}

func TestHasAncestorPair(t *testing.T) {
	ex := paperex.New()
	syms := transact.MustNewSymbols(ex.Schema, examplePlan(ex))
	syms.Encode(ex.DB)

	tennis, _ := syms.LookupDimValue(0, ex.Product.MustLookup("tennis"))
	shoes, _ := syms.LookupDimValue(0, ex.Product.MustLookup("shoes"))
	nike, _ := syms.LookupDimValue(1, ex.Brand.MustLookup("nike"))
	if !syms.HasAncestorPair([]transact.Item{tennis, shoes}) {
		t.Errorf("{tennis, shoes} is an ancestor pair")
	}
	if syms.HasAncestorPair([]transact.Item{tennis, nike}) {
		t.Errorf("{tennis, nike} is not an ancestor pair")
	}
}

func TestPrecountImage(t *testing.T) {
	ex := paperex.New()
	syms := transact.MustNewSymbols(ex.Schema, examplePlan(ex))
	syms.Encode(ex.DB)

	if syms.PrecountLevel() != 3 {
		t.Fatalf("precount level = %d, want 3 (up cut, time '*')", syms.PrecountLevel())
	}
	// A top-level item's image is itself.
	clothing, _ := syms.LookupDimValue(0, ex.Product.MustLookup("clothing"))
	if img := syms.PrecountImage(clothing); img != clothing {
		t.Errorf("clothing precount image = %v, want itself", img)
	}
	// A deep dim value's image is its level-1 ancestor.
	tennis, _ := syms.LookupDimValue(0, ex.Product.MustLookup("tennis"))
	if img := syms.PrecountImage(tennis); img != clothing {
		t.Errorf("tennis precount image = %v, want clothing item %v", img, clothing)
	}
}

func contains(tx transact.Transaction, it transact.Item) bool {
	for _, x := range tx {
		if x == it {
			return true
		}
	}
	return false
}

func containsItem(set []transact.Item, it transact.Item) bool {
	for _, x := range set {
		if x == it {
			return true
		}
	}
	return false
}

func TestAccessors(t *testing.T) {
	ex := paperex.New()
	plan := examplePlan(ex)
	syms := transact.MustNewSymbols(ex.Schema, plan)
	syms.Encode(ex.DB)

	if syms.Schema() != ex.Schema {
		t.Errorf("Schema accessor wrong")
	}
	if len(syms.PathLevels()) != 4 {
		t.Errorf("PathLevels = %d", len(syms.PathLevels()))
	}
	if got := syms.DimLevels(); len(got) != 2 || len(got[0]) != 3 || len(got[1]) != 2 {
		t.Errorf("DimLevels = %v", got)
	}
	if syms.Len() == 0 {
		t.Errorf("no items interned")
	}

	tennis, _ := syms.LookupDimValue(0, ex.Product.MustLookup("tennis"))
	if syms.Kind(tennis) != transact.KindDimValue || syms.IsStage(tennis) {
		t.Errorf("tennis misclassified")
	}
	if syms.Dim(tennis) != 0 || syms.Node(tennis) != ex.Product.MustLookup("tennis") || syms.Level(tennis) != 3 {
		t.Errorf("tennis metadata wrong")
	}
	if s := syms.ItemString(tennis); s != "product=tennis" {
		t.Errorf("ItemString = %q", s)
	}

	f10, _ := syms.LookupStage(0, seq(ex, "f"), 10, false)
	if syms.Kind(f10) != transact.KindStage || !syms.IsStage(f10) {
		t.Errorf("(f,10) misclassified")
	}
	if syms.StageLevel(f10) != 0 {
		t.Errorf("StageLevel = %d", syms.StageLevel(f10))
	}
	if got := syms.StageSeq(f10); len(got) != 1 || got[0] != ex.Location.MustLookup("f") {
		t.Errorf("StageSeq = %v", got)
	}
	if d, ok := syms.StageDuration(f10); !ok || d != 10 {
		t.Errorf("StageDuration = %d,%v", d, ok)
	}
	fAny, _ := syms.LookupStage(1, seq(ex, "f"), 0, true)
	if _, ok := syms.StageDuration(fAny); ok {
		t.Errorf("'*' duration reported as concrete")
	}
	if s := syms.ItemString(fAny); s != "(f,*)@L1" {
		t.Errorf("ItemString = %q", s)
	}
	if s := syms.SetString([]transact.Item{tennis, f10}); !strings.Contains(s, "tennis") || !strings.Contains(s, "(f,10)") {
		t.Errorf("SetString = %q", s)
	}
	if _, ok := syms.LookupDimValue(0, 9999); ok {
		t.Errorf("bogus lookup succeeded")
	}
	if _, ok := syms.LookupStage(0, seq(ex, "c", "f"), 1, false); ok {
		t.Errorf("bogus stage lookup succeeded")
	}
}

func TestNewSymbolsValidation(t *testing.T) {
	ex := paperex.New()
	if _, err := transact.NewSymbols(ex.Schema, transact.Plan{}); err == nil {
		t.Errorf("plan without path levels accepted")
	}
	plan := examplePlan(ex)
	plan.DimLevels = [][]int{{1}, {1}, {1}} // more lists than dimensions
	if _, err := transact.NewSymbols(ex.Schema, plan); err == nil {
		t.Errorf("oversized DimLevels accepted")
	}
}

func TestAllLinkable(t *testing.T) {
	ex := paperex.New()
	syms := transact.MustNewSymbols(ex.Schema, examplePlan(ex))
	txs := syms.Encode(ex.DB)
	// Every real transaction is fully linkable.
	if !syms.AllLinkable(txs[0]) {
		t.Errorf("a real transaction reported unlinkable")
	}
	f10, _ := syms.LookupStage(0, seq(ex, "f"), 10, false)
	f5, _ := syms.LookupStage(0, seq(ex, "f"), 5, false)
	if syms.AllLinkable([]transact.Item{f10, f5}) {
		t.Errorf("conflicting durations reported linkable")
	}
}
