package transact_test

import (
	"math/rand"
	"testing"

	"flowcube/internal/datagen"
	"flowcube/internal/transact"
)

// Soundness properties of the encoding on random synthetic databases.
// These are the invariants the Shared algorithm's pruning correctness
// rests on; a violation would make pruning lossy rather than merely
// aggressive.

func randomDataset(seed int64) (*datagen.Dataset, *transact.Symbols, []transact.Transaction) {
	cfg := datagen.Default()
	cfg.Seed = seed
	cfg.NumPaths = 120
	cfg.NumDims = 2
	cfg.NumSequences = 15
	cfg.SeqLenMin, cfg.SeqLenMax = 2, 6
	cfg.DurationDomain = 4
	ds := datagen.MustGenerate(cfg)
	syms := transact.MustNewSymbols(ds.Schema, ds.DefaultPlan())
	return ds, syms, syms.Encode(ds.DB)
}

// TestAncestorsPresentInTransaction: every declared ancestor of every item
// of a transaction is itself in the transaction. This is exactly the
// property that makes the item+ancestor candidate prune lossless and the
// pre-count support bound valid.
func TestAncestorsPresentInTransaction(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		_, syms, txs := randomDataset(seed)
		for ti, tx := range txs {
			present := make(map[transact.Item]bool, len(tx))
			for _, it := range tx {
				present[it] = true
			}
			for _, it := range tx {
				for _, anc := range syms.Ancestors(it) {
					if !present[anc] {
						t.Fatalf("seed %d tx %d: ancestor %s of %s missing from transaction",
							seed, ti, syms.ItemString(anc), syms.ItemString(it))
					}
				}
			}
		}
	}
}

// TestPrecountImagePresent: an item's pre-count image, when defined, is in
// every transaction containing the item.
func TestPrecountImagePresent(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		_, syms, txs := randomDataset(seed)
		for ti, tx := range txs {
			present := make(map[transact.Item]bool, len(tx))
			for _, it := range tx {
				present[it] = true
			}
			for _, it := range tx {
				img := syms.PrecountImage(it)
				if img >= 0 && !present[img] {
					t.Fatalf("seed %d tx %d: precount image %s of %s missing",
						seed, ti, syms.ItemString(img), syms.ItemString(it))
				}
			}
		}
	}
}

// TestLinkabilitySound: any two items co-occurring in a real transaction
// must be declared linkable — the prune may only remove pairs that can
// never co-occur.
func TestLinkabilitySound(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		_, syms, txs := randomDataset(seed)
		rng := rand.New(rand.NewSource(seed))
		for ti, tx := range txs {
			// Exhaustive pairs are O(n²); sample for speed.
			for k := 0; k < 200; k++ {
				i, j := rng.Intn(len(tx)), rng.Intn(len(tx))
				if i == j {
					continue
				}
				if !syms.Linkable(tx[i], tx[j]) {
					t.Fatalf("seed %d tx %d: co-occurring items %s and %s declared unlinkable",
						seed, ti, syms.ItemString(tx[i]), syms.ItemString(tx[j]))
				}
			}
		}
	}
}

// TestEncodeDeterministic: encoding the same record twice produces the same
// transaction.
func TestEncodeDeterministic(t *testing.T) {
	ds, syms, txs := randomDataset(42)
	for i, r := range ds.DB.Records {
		again := syms.EncodeRecord(r)
		if len(again) != len(txs[i]) {
			t.Fatalf("record %d re-encoded to different size", i)
		}
		for j := range again {
			if again[j] != txs[i][j] {
				t.Fatalf("record %d re-encoded differently at %d", i, j)
			}
		}
	}
}

// TestTransactionSortedUnique: transactions are sorted and duplicate-free,
// which the trie counter and join rely on.
func TestTransactionSortedUnique(t *testing.T) {
	_, _, txs := randomDataset(7)
	for i, tx := range txs {
		for j := 1; j < len(tx); j++ {
			if tx[j] <= tx[j-1] {
				t.Fatalf("transaction %d not strictly sorted at %d", i, j)
			}
		}
	}
}
