package stats_test

import (
	"math"
	"testing"
	"testing/quick"

	"flowcube/internal/stats"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestBasicCounts(t *testing.T) {
	m := stats.NewMultinomial()
	if m.Total() != 0 || m.Support() != 0 {
		t.Fatalf("empty distribution not empty")
	}
	m.Observe(5)
	m.Observe(5)
	m.Observe(10)
	if m.Total() != 3 || m.Support() != 2 {
		t.Errorf("total=%d support=%d, want 3 and 2", m.Total(), m.Support())
	}
	if m.Count(5) != 2 || m.Count(10) != 1 || m.Count(99) != 0 {
		t.Errorf("counts wrong")
	}
	if !approx(m.Prob(5), 2.0/3) || !approx(m.Prob(99), 0) {
		t.Errorf("probs wrong")
	}
	if got := m.Outcomes(); len(got) != 2 || got[0] != 5 || got[1] != 10 {
		t.Errorf("outcomes = %v", got)
	}
}

func TestAddPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Add(-1) did not panic")
		}
	}()
	stats.NewMultinomial().Add(1, -1)
}

func TestZeroValueUsable(t *testing.T) {
	var m stats.Multinomial
	m.Observe(1)
	if m.Total() != 1 {
		t.Errorf("zero value not usable")
	}
}

func TestMergeAndClone(t *testing.T) {
	a := stats.NewMultinomial()
	a.Add(1, 2)
	a.Add(2, 3)
	b := stats.NewMultinomial()
	b.Add(2, 1)
	b.Add(3, 4)
	c := a.Clone()
	c.Merge(b)
	if c.Total() != 10 || c.Count(2) != 4 || c.Count(3) != 4 {
		t.Errorf("merge wrong: %s", c)
	}
	if a.Total() != 5 {
		t.Errorf("clone aliased the original")
	}
	c.Merge(nil) // must be a no-op
	if c.Total() != 10 {
		t.Errorf("Merge(nil) changed the distribution")
	}
}

func TestModeAndMean(t *testing.T) {
	m := stats.NewMultinomial()
	if _, _, ok := m.Mode(); ok {
		t.Errorf("empty Mode reported ok")
	}
	m.Add(5, 3)
	m.Add(10, 5)
	v, p, ok := m.Mode()
	if !ok || v != 10 || !approx(p, 5.0/8) {
		t.Errorf("mode = %d,%g", v, p)
	}
	if !approx(m.Mean(), (5*3+10*5)/8.0) {
		t.Errorf("mean = %g", m.Mean())
	}
	// Tie breaks toward the smaller outcome.
	tie := stats.NewMultinomial()
	tie.Add(7, 2)
	tie.Add(3, 2)
	if v, _, _ := tie.Mode(); v != 3 {
		t.Errorf("tie mode = %d, want 3", v)
	}
}

func TestDeviations(t *testing.T) {
	a := stats.NewMultinomial()
	a.Add(1, 1)
	a.Add(2, 1)
	b := stats.NewMultinomial()
	b.Add(1, 1)
	b.Add(3, 1)
	// probs: a={1:.5,2:.5}, b={1:.5,3:.5}: L∞=0.5, TV=(0+0.5+0.5)/2=0.5
	if !approx(a.MaxDeviation(b), 0.5) {
		t.Errorf("MaxDeviation = %g, want 0.5", a.MaxDeviation(b))
	}
	if !approx(a.TotalVariation(b), 0.5) {
		t.Errorf("TotalVariation = %g, want 0.5", a.TotalVariation(b))
	}
	if !approx(a.MaxDeviation(a), 0) || !approx(a.TotalVariation(a), 0) {
		t.Errorf("self deviation nonzero")
	}
}

func TestKLDivergence(t *testing.T) {
	a := stats.NewMultinomial()
	a.Add(1, 50)
	a.Add(2, 50)
	b := stats.NewMultinomial()
	b.Add(1, 90)
	b.Add(2, 10)
	if d := a.KLDivergence(a); !approx(d, 0) {
		t.Errorf("self KL = %g", d)
	}
	if d := a.KLDivergence(b); d <= 0 {
		t.Errorf("KL to a different distribution = %g, want > 0", d)
	}
	// Disjoint supports stay finite thanks to smoothing.
	c := stats.NewMultinomial()
	c.Add(7, 100)
	if d := a.KLDivergence(c); math.IsInf(d, 0) || math.IsNaN(d) {
		t.Errorf("disjoint-support KL not finite: %g", d)
	}
	// Empty vs empty.
	e1, e2 := stats.NewMultinomial(), stats.NewMultinomial()
	if d := e1.KLDivergence(e2); !approx(d, 0) {
		t.Errorf("empty KL = %g", d)
	}
}

func TestStringDeterministic(t *testing.T) {
	m := stats.NewMultinomial()
	m.Add(10, 5)
	m.Add(5, 3)
	if m.String() != "5:0.38 10:0.62" {
		t.Errorf("String = %q", m.String())
	}
}

// Property: probabilities always sum to 1 (within epsilon) for non-empty
// distributions, and every probability is within [0,1].
func TestProbSumProperty(t *testing.T) {
	f := func(obs []uint8) bool {
		if len(obs) == 0 {
			return true
		}
		m := stats.NewMultinomial()
		for _, o := range obs {
			m.Observe(int64(o % 16))
		}
		sum := 0.0
		for _, v := range m.Outcomes() {
			p := m.Prob(v)
			if p < 0 || p > 1 {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: KL divergence is non-negative (Gibbs' inequality holds for the
// smoothed estimates too).
func TestKLNonNegativeProperty(t *testing.T) {
	f := func(a, b []uint8) bool {
		ma, mb := stats.NewMultinomial(), stats.NewMultinomial()
		for _, o := range a {
			ma.Observe(int64(o % 8))
		}
		for _, o := range b {
			mb.Observe(int64(o % 8))
		}
		return ma.KLDivergence(mb) >= 0 && mb.KLDivergence(ma) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Merge is equivalent to observing the union of samples.
func TestMergeEquivalenceProperty(t *testing.T) {
	f := func(a, b []uint8) bool {
		ma, mb, mu := stats.NewMultinomial(), stats.NewMultinomial(), stats.NewMultinomial()
		for _, o := range a {
			ma.Observe(int64(o))
			mu.Observe(int64(o))
		}
		for _, o := range b {
			mb.Observe(int64(o))
			mu.Observe(int64(o))
		}
		ma.Merge(mb)
		if ma.Total() != mu.Total() {
			return false
		}
		for _, v := range mu.Outcomes() {
			if ma.Count(v) != mu.Count(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: MaxDeviation is a symmetric pseudo-metric bounded by 1.
func TestMaxDeviationProperty(t *testing.T) {
	f := func(a, b []uint8) bool {
		ma, mb := stats.NewMultinomial(), stats.NewMultinomial()
		for _, o := range a {
			ma.Observe(int64(o % 8))
		}
		for _, o := range b {
			mb.Observe(int64(o % 8))
		}
		d1, d2 := ma.MaxDeviation(mb), mb.MaxDeviation(ma)
		return approx(d1, d2) && d1 >= 0 && d1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
