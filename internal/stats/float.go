package stats

import "math"

// Epsilon-aware float comparison shared by every layer that handles the
// cube's computed measures (similarity ϕ, KL divergence, deviations, mean
// durations). Raw == / != on computed floats depends on rounding; flowlint's
// floatcmp analyzer flags it and points here.

// almostEqualEps is the default tolerance: generous enough to absorb
// accumulated rounding across a flowgraph walk, far below any ε or τ a
// caller would configure.
const almostEqualEps = 1e-9

// AlmostEqual reports whether a and b are equal within a mixed
// absolute/relative tolerance: |a-b| <= eps * max(1, |a|, |b|). Exact
// sentinel checks (core.SimilarityUnknown) should keep using ==, which is
// well-defined for assigned-never-computed values.
func AlmostEqual(a, b float64) bool {
	if a == b { //flowlint:ignore floatcmp fast path; the epsilon branch below decides near-misses
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return diff <= almostEqualEps*scale
}
