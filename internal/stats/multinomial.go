// Package stats provides the small statistical substrate the flowgraph
// measure is built on: multinomial count distributions over integer-keyed
// outcomes, deviation metrics used to detect exceptions (the paper's ε
// parameter), and smoothed Kullback–Leibler divergence used by the
// flowgraph similarity function for redundancy elimination (the paper's τ
// parameter, §4.3).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Multinomial is a count-backed multinomial distribution over int64
// outcomes. Outcomes are durations (in time units) for node duration
// distributions, or node identifiers for transition distributions. The zero
// value is an empty distribution ready to use.
type Multinomial struct {
	counts map[int64]int64
	total  int64
}

// NewMultinomial returns an empty distribution.
func NewMultinomial() *Multinomial {
	return &Multinomial{counts: make(map[int64]int64)}
}

// Add records n observations of outcome v. It panics on negative n, which
// would silently corrupt the distribution.
func (m *Multinomial) Add(v int64, n int64) {
	if n < 0 {
		panic(fmt.Sprintf("stats: negative observation count %d", n))
	}
	if m.counts == nil {
		m.counts = make(map[int64]int64)
	}
	m.counts[v] += n
	m.total += n
}

// Observe records a single observation of outcome v.
func (m *Multinomial) Observe(v int64) { m.Add(v, 1) }

// Count reports the number of observations of outcome v.
func (m *Multinomial) Count(v int64) int64 {
	return m.counts[v]
}

// Total reports the total number of observations.
func (m *Multinomial) Total() int64 { return m.total }

// Support reports the number of distinct outcomes observed.
func (m *Multinomial) Support() int { return len(m.counts) }

// Prob reports the empirical probability of outcome v, or 0 for an empty
// distribution.
func (m *Multinomial) Prob(v int64) float64 {
	if m.total == 0 {
		return 0
	}
	return float64(m.counts[v]) / float64(m.total)
}

// Outcomes returns the observed outcomes in ascending order.
func (m *Multinomial) Outcomes() []int64 {
	out := make([]int64, 0, len(m.counts))
	for v := range m.counts {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AppendSorted appends the distribution's (outcome, count) pairs in
// ascending outcome order to the two parallel slices and returns them. The
// columnar snapshot encoder uses it to pool many distributions into shared
// backing arrays without an intermediate per-distribution slice.
func (m *Multinomial) AppendSorted(outcomes, counts []int64) ([]int64, []int64) {
	for _, v := range m.Outcomes() {
		outcomes = append(outcomes, v)
		counts = append(counts, m.counts[v])
	}
	return outcomes, counts
}

// InitSorted initializes a zero-value Multinomial from parallel slices of
// strictly increasing outcomes and non-negative counts. Snapshot decoding
// uses it to rebuild many distributions out of pooled columnar arrays with
// exactly one map allocation each; the slices are copied, not retained.
func (m *Multinomial) InitSorted(outcomes, counts []int64) error {
	if len(outcomes) != len(counts) {
		return fmt.Errorf("stats: %d outcomes vs %d counts", len(outcomes), len(counts))
	}
	m.counts = make(map[int64]int64, len(outcomes))
	m.total = 0
	for i, v := range outcomes {
		if i > 0 && outcomes[i-1] >= v {
			return fmt.Errorf("stats: outcomes not strictly increasing at index %d", i)
		}
		if counts[i] < 0 {
			return fmt.Errorf("stats: negative count %d for outcome %d", counts[i], v)
		}
		m.counts[v] = counts[i]
		m.total += counts[i]
	}
	return nil
}

// Merge folds the observations of other into m. This is what makes the
// duration and transition components of a flowgraph algebraic measures
// (paper Lemma 4.2): a parent cell's distribution is the merge of its
// children's.
func (m *Multinomial) Merge(other *Multinomial) {
	if other == nil {
		return
	}
	for v, n := range other.counts {
		m.Add(v, n)
	}
}

// Clone returns a deep copy.
func (m *Multinomial) Clone() *Multinomial {
	c := NewMultinomial()
	c.Merge(m)
	return c
}

// Mode returns the most probable outcome and its probability. The second
// return is false for an empty distribution. Ties break toward the smaller
// outcome so the result is deterministic.
func (m *Multinomial) Mode() (int64, float64, bool) {
	if m.total == 0 {
		return 0, 0, false
	}
	var best int64
	var bestN int64 = -1
	for _, v := range m.Outcomes() {
		if n := m.counts[v]; n > bestN {
			best, bestN = v, n
		}
	}
	return best, float64(bestN) / float64(m.total), true
}

// Mean returns the expectation of the outcome value (meaningful for
// duration distributions). It returns 0 for an empty distribution.
// Outcomes are summed in ascending order so the rounding — and therefore
// every serialized mean — is identical across runs.
func (m *Multinomial) Mean() float64 {
	if m.total == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range m.Outcomes() {
		sum += float64(v) * float64(m.counts[v])
	}
	return sum / float64(m.total)
}

// unionOutcomes returns the union of the two distributions' outcomes in
// ascending order. Deviation and divergence sums iterate this slice instead
// of a set map: floating-point addition is not associative, so summing in
// map iteration order would give different low bits on every run — and
// those bits end up in persisted similarities and served JSON.
func (m *Multinomial) unionOutcomes(other *Multinomial) []int64 {
	out := make([]int64, 0, len(m.counts)+other.Support())
	for v := range m.counts {
		out = append(out, v)
	}
	for v := range other.counts {
		if _, dup := m.counts[v]; !dup {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MaxDeviation returns the L∞ distance between the probability vectors of m
// and other over the union of their outcomes. This is the deviation measure
// behind exception detection: a conditional distribution whose MaxDeviation
// from the node's base distribution exceeds ε is an exception.
func (m *Multinomial) MaxDeviation(other *Multinomial) float64 {
	max := 0.0
	for _, v := range m.unionOutcomes(other) {
		d := math.Abs(m.Prob(v) - other.Prob(v))
		if d > max {
			max = d
		}
	}
	return max
}

// TotalVariation returns half the L1 distance between the two probability
// vectors, an alternative deviation metric exposed for applications that
// prefer mass-weighted deviations.
func (m *Multinomial) TotalVariation(other *Multinomial) float64 {
	sum := 0.0
	for _, v := range m.unionOutcomes(other) {
		sum += math.Abs(m.Prob(v) - other.Prob(v))
	}
	return sum / 2
}

// KLDivergence returns D(m ‖ other) with add-one (Laplace) smoothing over
// the union of outcomes, so it is finite even when the supports differ.
// Lower values mean the distributions are more alike.
func (m *Multinomial) KLDivergence(other *Multinomial) float64 {
	outcomes := m.unionOutcomes(other)
	k := float64(len(outcomes))
	if k == 0 {
		return 0
	}
	mTot := float64(m.total) + k
	oTot := float64(other.total) + k
	d := 0.0
	for _, v := range outcomes {
		p := (float64(m.counts[v]) + 1) / mTot
		q := (float64(other.counts[v]) + 1) / oTot
		d += p * math.Log(p/q)
	}
	if d < 0 { // guard tiny negative rounding residue
		return 0
	}
	return d
}

// String renders the distribution as "v:p v:p ..." with outcomes in
// ascending order, matching the paper's Figure-3 annotation style.
func (m *Multinomial) String() string {
	var b strings.Builder
	for i, v := range m.Outcomes() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%.2f", v, m.Prob(v))
	}
	return b.String()
}
