package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"
)

// Serving microbenchmarks: the same /v1/cell query answered from the LRU
// cache versus recomputed every time (cache capacity < 0 disables storage).
//
//	go test ./internal/server -bench BenchmarkCell -run '^$'
//
// FLOWSERVE_RESULTS=path go test ./internal/server -run ServeLatency
// additionally measures requests/sec with p50/p99 and writes the JSON
// consumed by results/serve_latency.json.

const benchQuery = "/v1/cell?cell=product=shoes,brand=nike&pathlevel=0"

func benchServer(tb testing.TB, cacheSize int) *Server {
	tb.Helper()
	_, cube := buildExampleCube(tb)
	cfg := quietConfig()
	cfg.CacheSize = cacheSize
	return newTestServer(tb, cube, cfg)
}

func serveOnce(tb testing.TB, h http.Handler, url string) {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
	if rec.Code != http.StatusOK {
		tb.Fatalf("GET %s: %d", url, rec.Code)
	}
}

func BenchmarkCellCached(b *testing.B) {
	s := benchServer(b, DefaultCacheSize)
	h := s.Handler()
	serveOnce(b, h, benchQuery) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serveOnce(b, h, benchQuery)
	}
}

func BenchmarkCellUncached(b *testing.B) {
	s := benchServer(b, -1)
	h := s.Handler()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serveOnce(b, h, benchQuery)
	}
}

func BenchmarkCellCachedParallel(b *testing.B) {
	s := benchServer(b, DefaultCacheSize)
	h := s.Handler()
	serveOnce(b, h, benchQuery)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			serveOnce(b, h, benchQuery)
		}
	})
}

type latencyStats struct {
	Requests   int     `json:"requests"`
	ReqPerSec  float64 `json:"requests_per_sec"`
	P50Micros  float64 `json:"p50_us"`
	P99Micros  float64 `json:"p99_us"`
	MeanMicros float64 `json:"mean_us"`
}

func measure(tb testing.TB, h http.Handler, url string, n int) latencyStats {
	lat := make([]time.Duration, n)
	start := time.Now()
	for i := 0; i < n; i++ {
		t0 := time.Now()
		serveOnce(tb, h, url)
		lat[i] = time.Since(t0)
	}
	total := time.Since(start)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	var sum time.Duration
	for _, d := range lat {
		sum += d
	}
	return latencyStats{
		Requests:   n,
		ReqPerSec:  float64(n) / total.Seconds(),
		P50Micros:  float64(lat[n/2].Nanoseconds()) / 1e3,
		P99Micros:  float64(lat[n*99/100].Nanoseconds()) / 1e3,
		MeanMicros: float64(sum.Nanoseconds()) / float64(n) / 1e3,
	}
}

// reloadStats summarizes POST /admin/reload timing over a persisted v2
// snapshot file: end-to-end request latency plus the loader-reported load_ms
// and snapshot size from the final reload response.
type reloadStats struct {
	Reloads       int     `json:"reloads"`
	MeanMs        float64 `json:"mean_ms"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
	LoadMs        float64 `json:"load_ms"`
	SnapshotBytes int64   `json:"snapshot_bytes"`
}

// measureReload saves the example cube to disk, serves it through
// FileLoader, and times n snapshot reloads.
func measureReload(tb testing.TB, n int) reloadStats {
	_, cube := buildExampleCube(tb)
	path := filepath.Join(tb.TempDir(), "cube.fcb")
	f, err := os.Create(path)
	if err != nil {
		tb.Fatal(err)
	}
	if err := cube.Save(f); err != nil {
		tb.Fatal(err)
	}
	if err := f.Close(); err != nil {
		tb.Fatal(err)
	}
	s, err := New(FileLoader(path, BuildOptions{}), path, quietConfig())
	if err != nil {
		tb.Fatal(err)
	}
	h := s.Handler()

	lat := make([]time.Duration, n)
	var lastBody []byte
	for i := 0; i < n; i++ {
		rec := httptest.NewRecorder()
		t0 := time.Now()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/admin/reload", nil))
		lat[i] = time.Since(t0)
		if rec.Code != http.StatusOK {
			tb.Fatalf("reload %d: %d %s", i, rec.Code, rec.Body.String())
		}
		lastBody = rec.Body.Bytes()
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	var sum time.Duration
	for _, d := range lat {
		sum += d
	}
	var resp struct {
		LoadMs        float64 `json:"load_ms"`
		SnapshotBytes int64   `json:"snapshot_bytes"`
	}
	if err := json.Unmarshal(lastBody, &resp); err != nil {
		tb.Fatal(err)
	}
	return reloadStats{
		Reloads:       n,
		MeanMs:        float64(sum.Nanoseconds()) / float64(n) / 1e6,
		P50Ms:         float64(lat[n/2].Nanoseconds()) / 1e6,
		P99Ms:         float64(lat[n*99/100].Nanoseconds()) / 1e6,
		LoadMs:        resp.LoadMs,
		SnapshotBytes: resp.SnapshotBytes,
	}
}

// TestServeLatencyResults regenerates results/serve_latency.json:
//
//	FLOWSERVE_RESULTS=results/serve_latency.json go test ./internal/server -run ServeLatency
func TestServeLatencyResults(t *testing.T) {
	out := os.Getenv("FLOWSERVE_RESULTS")
	if out == "" {
		t.Skip("set FLOWSERVE_RESULTS=<path> to write the serving latency microbenchmark")
	}
	const n = 5000

	cachedSrv := benchServer(t, DefaultCacheSize)
	serveOnce(t, cachedSrv.Handler(), benchQuery) // warm
	cachedStats := measure(t, cachedSrv.Handler(), benchQuery, n)

	uncachedSrv := benchServer(t, -1)
	uncachedStats := measure(t, uncachedSrv.Handler(), benchQuery, n)

	reloadStats := measureReload(t, 50)

	result := map[string]any{
		"benchmark": "GET /v1/cell (paper running-example cube, single goroutine, httptest)",
		"query":     benchQuery,
		"command":   "FLOWSERVE_RESULTS=results/serve_latency.json go test ./internal/server -run ServeLatency",
		"cached":    cachedStats,
		"uncached":  uncachedStats,
		"reload":    reloadStats,
	}
	body, err := json.MarshalIndent(result, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(body, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("cached: %.0f req/s p50=%.1fus p99=%.1fus; uncached: %.0f req/s p50=%.1fus p99=%.1fus\n",
		cachedStats.ReqPerSec, cachedStats.P50Micros, cachedStats.P99Micros,
		uncachedStats.ReqPerSec, uncachedStats.P50Micros, uncachedStats.P99Micros)
}
