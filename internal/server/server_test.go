package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flowcube/internal/core"
	"flowcube/internal/hierarchy"
	"flowcube/internal/paperex"
	"flowcube/internal/pathdb"
	"flowcube/internal/transact"
)

// buildExampleCube materializes the paper's running example with exceptions
// mined, the fixture every handler test serves from.
func buildExampleCube(t testing.TB) (*paperex.Example, *core.Cube) {
	t.Helper()
	ex := paperex.New()
	plan := transact.Plan{
		PathLevels: []pathdb.PathLevel{
			ex.BasePathLevel(),
			ex.TransportPathLevel(),
		},
	}
	cube, err := core.Build(ex.DB, core.Config{
		MinCount:              2,
		Epsilon:               0.1,
		Plan:                  plan,
		MineExceptions:        true,
		SingleStageExceptions: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ex, cube
}

func quietConfig() Config {
	return Config{Logger: log.New(io.Discard, "", 0)}
}

// newTestServer serves a fixed cube through an in-memory loader.
func newTestServer(t testing.TB, cube *core.Cube, cfg Config) *Server {
	t.Helper()
	s, err := New(func() (*core.Cube, LoadInfo, error) { return cube, LoadInfo{}, nil }, "test", cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func get(t testing.TB, h http.Handler, url string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var body map[string]any
	if strings.HasPrefix(rec.Header().Get("Content-Type"), "application/json") {
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("GET %s: bad JSON: %v\n%s", url, err, rec.Body.String())
		}
	}
	return rec, body
}

func TestCellExactQuery(t *testing.T) {
	_, cube := buildExampleCube(t)
	s := newTestServer(t, cube, quietConfig())

	rec, body := get(t, s.Handler(), "/v1/cell?cell=product=shoes,brand=nike&pathlevel=0")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if body["exact"] != true {
		t.Errorf("exact = %v, want true", body["exact"])
	}
	src := body["source"].(map[string]any)
	if src["count"].(float64) != 3 {
		t.Errorf("source count = %v, want 3 (Table-1 shoes/nike paths)", src["count"])
	}
	graph := body["graph"].(map[string]any)
	if graph["paths"].(float64) != 3 {
		t.Errorf("graph paths = %v, want 3", graph["paths"])
	}
	// All example paths start at the factory.
	roots := graph["roots"].([]any)
	if len(roots) != 1 || roots[0].(map[string]any)["location"] != "f" {
		t.Errorf("roots = %v, want single factory root", roots)
	}
}

func TestCellRollupInference(t *testing.T) {
	_, cube := buildExampleCube(t)
	s := newTestServer(t, cube, quietConfig())

	// (sandals, nike) holds one path — below δ=2 — so the answer must come
	// from a materialized ancestor, flagged exact=false.
	rec, body := get(t, s.Handler(), "/v1/cell?cell=product=sandals,brand=nike")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if body["exact"] != false {
		t.Errorf("exact = %v, want false for a below-threshold cell", body["exact"])
	}
	src := body["source"].(map[string]any)
	if src["count"].(float64) < 2 {
		t.Errorf("ancestor count = %v, want >= δ", src["count"])
	}
}

func TestCellDOTMatchesDirectQuery(t *testing.T) {
	ex, cube := buildExampleCube(t)
	s := newTestServer(t, cube, quietConfig())

	spec := "product=shoes,brand=nike"
	rec, _ := get(t, s.Handler(), "/v1/cell?cell="+spec+"&format=dot")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "graphviz") {
		t.Errorf("content type = %q", ct)
	}

	// The served DOT must be byte-identical to what flowquery prints for
	// the same cell spec (both call QueryGraph then Graph.DOT).
	g, _, _, ok := cube.QueryGraph(
		core.CuboidSpec{Item: core.ItemLevel{2, 2}, PathLevel: 0},
		[]hierarchy.NodeID{ex.Product.MustLookup("shoes"), ex.Brand.MustLookup("nike")},
	)
	if !ok {
		t.Fatal("direct query failed")
	}
	if want := g.DOT(spec); rec.Body.String() != want {
		t.Errorf("served DOT differs from direct query output:\n-- served --\n%s\n-- direct --\n%s",
			rec.Body.String(), want)
	}
}

func TestCellErrors(t *testing.T) {
	_, cube := buildExampleCube(t)
	s := newTestServer(t, cube, quietConfig())

	for _, tc := range []struct {
		url  string
		want int
	}{
		{"/v1/cell?cell=bogus=shoes", http.StatusBadRequest},
		{"/v1/cell?cell=product=bogus", http.StatusBadRequest},
		{"/v1/cell?cell=product%3Dshoes&pathlevel=99", http.StatusBadRequest},
		{"/v1/cell?cell=product=shoes&pathlevel=nope", http.StatusBadRequest},
		{"/v1/cell?format=xml", http.StatusBadRequest},
	} {
		rec, body := get(t, s.Handler(), tc.url)
		if rec.Code != tc.want {
			t.Errorf("GET %s: status %d, want %d", tc.url, rec.Code, tc.want)
		}
		if body["error"] == "" {
			t.Errorf("GET %s: no error message", tc.url)
		}
	}
}

func TestSummary(t *testing.T) {
	_, cube := buildExampleCube(t)
	s := newTestServer(t, cube, quietConfig())

	rec, body := get(t, s.Handler(), "/v1/summary")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if int(body["cells"].(float64)) != cube.NumCells() {
		t.Errorf("cells = %v, want %d", body["cells"], cube.NumCells())
	}
	if int(body["min_count"].(float64)) != 2 {
		t.Errorf("min_count = %v, want 2", body["min_count"])
	}
	dims := body["dimensions"].([]any)
	if len(dims) != 2 || dims[0] != "product" || dims[1] != "brand" {
		t.Errorf("dimensions = %v", dims)
	}
	if len(body["largest"].([]any)) == 0 {
		t.Error("no cuboids listed")
	}
}

func TestExceptions(t *testing.T) {
	_, cube := buildExampleCube(t)
	s := newTestServer(t, cube, quietConfig())

	rec, body := get(t, s.Handler(), "/v1/exceptions?k=5")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	xs := body["exceptions"].([]any)
	if len(xs) == 0 {
		t.Fatal("no exceptions served; the example cube mines some")
	}
	if len(xs) > 5 {
		t.Errorf("k=5 returned %d exceptions", len(xs))
	}
	first := xs[0].(map[string]any)
	for _, field := range []string{"cuboid", "node", "support", "severity"} {
		if _, ok := first[field]; !ok {
			t.Errorf("exception missing %q: %v", field, first)
		}
	}

	rec, _ = get(t, s.Handler(), "/v1/exceptions?k=junk")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad k: status %d, want 400", rec.Code)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, cube := buildExampleCube(t)
	s := newTestServer(t, cube, quietConfig())

	rec, body := get(t, s.Handler(), "/healthz")
	if rec.Code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz: %d %v", rec.Code, body)
	}

	// Two identical queries: one miss, one hit.
	get(t, s.Handler(), "/v1/cell?cell=product=shoes")
	get(t, s.Handler(), "/v1/cell?cell=product=shoes")

	rec, body = get(t, s.Handler(), "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rec.Code)
	}
	cache := body["cache"].(map[string]any)
	if cache["hits"].(float64) != 1 || cache["misses"].(float64) != 1 {
		t.Errorf("cache counters = %v, want 1 hit / 1 miss", cache)
	}
	routes := body["routes"].(map[string]any)
	cell := routes["GET /v1/cell"].(map[string]any)
	if cell["count"].(float64) != 2 {
		t.Errorf("cell route count = %v, want 2", cell["count"])
	}

	// Cache headers mirror the counters.
	rec, _ = get(t, s.Handler(), "/v1/cell?cell=product=shoes")
	if rec.Header().Get("X-Cache") != "hit" {
		t.Errorf("X-Cache = %q, want hit", rec.Header().Get("X-Cache"))
	}
}

func TestReloadSwapsSnapshot(t *testing.T) {
	var loads atomic.Int64
	loader := func() (*core.Cube, LoadInfo, error) {
		loads.Add(1)
		_, cube := buildExampleCube(t)
		return cube, LoadInfo{Bytes: 4242}, nil
	}
	s, err := New(loader, "test", quietConfig())
	if err != nil {
		t.Fatal(err)
	}
	if loads.Load() != 1 {
		t.Fatalf("loader ran %d times at startup, want 1", loads.Load())
	}
	before := s.Snapshot()

	// Warm the cache, then reload: the new snapshot must start cold.
	get(t, s.Handler(), "/v1/cell?cell=product=shoes")
	if before.cache.len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", before.cache.len())
	}

	req := httptest.NewRequest(http.MethodPost, "/admin/reload", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("reload: %d %s", rec.Code, rec.Body.String())
	}
	if loads.Load() != 2 {
		t.Errorf("loader ran %d times, want 2", loads.Load())
	}

	// The reload response reports how the new snapshot was produced.
	var reloadBody map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &reloadBody); err != nil {
		t.Fatal(err)
	}
	if got, ok := reloadBody["snapshot_bytes"].(float64); !ok || int64(got) != 4242 {
		t.Errorf("reload snapshot_bytes = %v, want 4242", reloadBody["snapshot_bytes"])
	}
	if ms, ok := reloadBody["load_ms"].(float64); !ok || ms < 0 {
		t.Errorf("reload load_ms = %v, want non-negative number", reloadBody["load_ms"])
	}
	after := s.Snapshot()
	if after == before {
		t.Error("snapshot pointer did not change")
	}
	if after.cache.len() != 0 {
		t.Errorf("fresh snapshot cache holds %d entries", after.cache.len())
	}
	if got := s.Metrics().Reloads; got != 1 {
		t.Errorf("reload counter = %d, want 1", got)
	}
	if m := s.Metrics().Snapshot; m.Bytes != 4242 || m.LoadMs < 0 || m.LoadedAt == "" {
		t.Errorf("snapshot gauges = %+v, want bytes 4242 with load time", m)
	}

	// /metrics carries the same snapshot gauges.
	_, metricsBody := get(t, s.Handler(), "/metrics")
	snapGauges, ok := metricsBody["snapshot"].(map[string]any)
	if !ok {
		t.Fatalf("/metrics missing snapshot gauges: %v", metricsBody)
	}
	if got, ok := snapGauges["snapshot_bytes"].(float64); !ok || int64(got) != 4242 {
		t.Errorf("/metrics snapshot_bytes = %v, want 4242", snapGauges["snapshot_bytes"])
	}

	// GET on the admin route is rejected.
	rec, _ = get(t, s.Handler(), "/admin/reload")
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /admin/reload: %d, want 405", rec.Code)
	}
}

// TestConcurrentQueriesDuringReload is the race-detector workout: clients
// hammer /v1/cell while reloads swap the snapshot underneath them.
func TestConcurrentQueriesDuringReload(t *testing.T) {
	loader := func() (*core.Cube, LoadInfo, error) {
		_, cube := buildExampleCube(t)
		return cube, LoadInfo{}, nil
	}
	s, err := New(loader, "test", quietConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cells := []string{
		"product=shoes,brand=nike",
		"product=outerwear,brand=nike",
		"product=sandals,brand=nike", // roll-up path
		"product=shoes",
		"",
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				url := fmt.Sprintf("%s/v1/cell?cell=%s&pathlevel=%d", ts.URL, cells[(w+i)%len(cells)], i%2)
				resp, err := http.Get(url)
				if err != nil {
					t.Error(err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					b, _ := io.ReadAll(resp.Body)
					t.Errorf("GET %s: %d %s", url, resp.StatusCode, b)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			resp, err := http.Post(ts.URL+"/admin/reload", "", nil)
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("reload %d: status %d", i, resp.StatusCode)
			}
		}
	}()
	wg.Wait()
}

func TestServeGracefulShutdown(t *testing.T) {
	_, cube := buildExampleCube(t)
	s := newTestServer(t, cube, quietConfig())

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()

	url := "http://" + ln.Addr().String()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Serve returned %v after graceful shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after context cancellation")
	}
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Error("server still answering after shutdown")
	}
}

func TestRequestTimeout(t *testing.T) {
	_, cube := buildExampleCube(t)
	// A 1ns budget: TimeoutHandler answers 503 before the query completes.
	s := newTestServer(t, cube, Config{
		RequestTimeout: time.Nanosecond,
		Logger:         log.New(io.Discard, "", 0),
	})
	rec, _ := get(t, s.Handler(), "/v1/cell?cell=product=shoes")
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("status %d, want 503 on timeout", rec.Code)
	}
}
