package server

import (
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

// The golden-response suite pins the /v1 read API byte-for-byte: the v2
// query surface (Answer, /v2/query) must not perturb a single byte of the
// responses existing clients parse, and the cluster router's parity
// contract is stated against these same bodies. Regenerate deliberately
// with:
//
//	go test ./internal/server -run Golden -update-golden
//
// and review the diff like any other API change.

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_v1.json from live responses")

// goldenURLs is the pinned request set: exact hits, roll-up inference,
// dot rendering, census endpoints, and the documented error shapes.
var goldenURLs = []string{
	"/v1/cell?cell=product=shoes,brand=nike&pathlevel=0",
	"/v1/cell?cell=product=shoes,brand=nike&pathlevel=1",
	"/v1/cell?cell=&pathlevel=0",
	"/v1/cell?cell=product=sandals,brand=nike&pathlevel=0",
	"/v1/cell?cell=product=outerwear&pathlevel=1",
	"/v1/cell?cell=product=shoes,brand=nike&pathlevel=0&format=dot",
	"/v1/cell?cell=product=bogus&pathlevel=0",
	"/v1/cell?cell=product=shoes&pathlevel=9",
	"/v1/cell?cell=product=shoes&format=yaml",
	"/v1/summary",
	"/v1/exceptions?k=5",
	"/v1/cuboids",
}

// goldenEntry is one recorded response.
type goldenEntry struct {
	URL         string `json:"url"`
	Status      int    `json:"status"`
	ContentType string `json:"content_type"`
	Body        string `json:"body"`
}

// loadedAtRe erases the only nondeterministic field of the census bodies;
// everything else must match exactly.
var loadedAtRe = regexp.MustCompile(`"loaded_at": "[^"]*"`)

func recordGolden(t *testing.T, h http.Handler) []goldenEntry {
	t.Helper()
	out := make([]goldenEntry, 0, len(goldenURLs))
	for _, u := range goldenURLs {
		req := httptest.NewRequest(http.MethodGet, u, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		body := loadedAtRe.ReplaceAllString(rec.Body.String(), `"loaded_at": "<pinned>"`)
		out = append(out, goldenEntry{
			URL:         u,
			Status:      rec.Code,
			ContentType: rec.Header().Get("Content-Type"),
			Body:        body,
		})
	}
	return out
}

func TestGoldenV1Responses(t *testing.T) {
	_, cube := buildExampleCube(t)
	s := newTestServer(t, cube, quietConfig())
	got := recordGolden(t, s.Handler())

	path := filepath.Join("testdata", "golden_v1.json")
	if *updateGolden {
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d responses)", path, len(got))
		return
	}

	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden fixture (regenerate with -update-golden): %v", err)
	}
	var want []goldenEntry
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatalf("parse golden fixture: %v", err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden fixture has %d responses, live suite produced %d; regenerate with -update-golden", len(want), len(got))
	}
	for i, w := range want {
		g := got[i]
		if g.URL != w.URL {
			t.Errorf("request %d: url %q, fixture has %q", i, g.URL, w.URL)
			continue
		}
		if g.Status != w.Status {
			t.Errorf("GET %s: status %d, golden %d", w.URL, g.Status, w.Status)
		}
		if g.ContentType != w.ContentType {
			t.Errorf("GET %s: content type %q, golden %q", w.URL, g.ContentType, w.ContentType)
		}
		if g.Body != w.Body {
			t.Errorf("GET %s: body diverged from golden fixture\ngot:\n%s\nwant:\n%s", w.URL, g.Body, w.Body)
		}
	}
}
