package server

// Ingest write-path tests: crash recovery through the WAL, group-commit
// correctness under concurrency (-race), reload/append fencing, and the
// stale-schema conflict. The digest assertions lean on incr.ApplyDelta's
// exactness contract: a folded cube must be byte-identical under Save to a
// full Build over the union database in commit order.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"flowcube/internal/core"
	"flowcube/internal/datagen"
	"flowcube/internal/ingest"
	"flowcube/internal/paperex"
	"flowcube/internal/pathdb"
	"flowcube/internal/transact"
)

func ingestDataset(t testing.TB, seed int64, paths int) *datagen.Dataset {
	t.Helper()
	cfg := datagen.Default()
	cfg.Seed = seed
	cfg.NumPaths = paths
	cfg.NumDims = 2
	cfg.DimFanouts = [3]int{3, 3, 4}
	return datagen.MustGenerate(cfg)
}

// copyPrefix returns a freshly allocated database over the first n records —
// what a real loader produces on every load, and what the copy-on-write
// store's adoption contract requires.
func copyPrefix(ds *datagen.Dataset, n int) *pathdb.DB {
	return &pathdb.DB{Schema: ds.DB.Schema, Records: append([]pathdb.Record(nil), ds.DB.Records[:n]...)}
}

func cubeDigest(t testing.TB, cube *core.Cube) string {
	t.Helper()
	var buf bytes.Buffer
	if err := cube.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:])
}

// prefixLoader builds a fresh cube (and database copy) over the dataset's
// first n records on every call, like FileLoader re-reading its file.
func prefixLoader(t testing.TB, ds *datagen.Dataset, n int, cfg core.Config) Loader {
	return func() (*core.Cube, LoadInfo, error) {
		db := copyPrefix(ds, n)
		cube, err := core.Build(db, cfg)
		if err != nil {
			return nil, LoadInfo{}, err
		}
		return cube, LoadInfo{DB: db}, nil
	}
}

// paperexLoader is the cheap loader for the fencing tests: the 8-record
// running example builds in milliseconds, so reload-heavy tests stay fast.
// Every call copies the records — the store adopts them.
func paperexLoader(ex *paperex.Example, cfg core.Config) Loader {
	return func() (*core.Cube, LoadInfo, error) {
		db := &pathdb.DB{Schema: ex.DB.Schema, Records: append([]pathdb.Record(nil), ex.DB.Records...)}
		cube, err := core.Build(db, cfg)
		if err != nil {
			return nil, LoadInfo{}, err
		}
		return cube, LoadInfo{DB: db}, nil
	}
}

func paperexConfig(ex *paperex.Example) core.Config {
	return core.Config{
		MinCount:    2,
		Plan:        transact.Plan{PathLevels: []pathdb.PathLevel{ex.BasePathLevel()}},
		DeltaLedger: true,
	}
}

func recordsBody(t testing.TB, schema *pathdb.Schema, recs []pathdb.Record) string {
	t.Helper()
	var buf bytes.Buffer
	db := &pathdb.DB{Schema: schema, Records: recs}
	if _, err := db.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestIngestWALCrashRecovery is the acceptance scenario from DESIGN.md §11:
// batches journaled in the WAL but never folded into a persisted snapshot
// (the swap is volatile — any crash after the fsync loses it) must replay on
// startup to the exact state an uninterrupted run reaches.
func TestIngestWALCrashRecovery(t *testing.T) {
	ds := ingestDataset(t, 51, 160)
	const base = 120
	cfg := core.Config{
		MinCount: 4, Epsilon: 0.05, Plan: ds.DefaultPlan(),
		MineExceptions: true, SingleStageExceptions: true, DeltaLedger: true, Workers: 2,
	}
	walPath := filepath.Join(t.TempDir(), "ingest.wal")

	// The uninterrupted run: a full build over all 160 records in order.
	full, err := core.Build(&pathdb.DB{Schema: ds.DB.Schema, Records: ds.DB.Records}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := cubeDigest(t, full)

	// Crash before any fold: the journal holds two acknowledged batches the
	// in-memory snapshot never absorbed.
	w, err := ingest.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, split := range [][2]int{{base, 140}, {140, 160}} {
		if err := w.Append(ds.DB.Schema, ds.DB.Records[split[0]:split[1]]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	sCfg := quietConfig()
	sCfg.WALPath = walPath
	s, err := New(prefixLoader(t, ds, base, cfg), "test", sCfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if snap.DB.Len() != 160 {
		t.Fatalf("replayed snapshot has %d records, want 160", snap.DB.Len())
	}
	if got := cubeDigest(t, snap.Cube); got != want {
		t.Errorf("replayed digest %s != uninterrupted digest %s", got, want)
	}
	if got := s.Metrics().Ingest.WALEntries; got != 2 {
		t.Errorf("wal_entries = %d after replay, want 2", got)
	}

	// The journal keeps extending after replay: an append journals entry 3,
	// and a second restart replays all three.
	rec, _ := postBody(t, s.Handler(), "/admin/append",
		recordsBody(t, ds.DB.Schema, ds.DB.Records[150:160]))
	if rec.Code != http.StatusOK {
		t.Fatalf("append after replay: status %d: %s", rec.Code, rec.Body.String())
	}
	wantLen := s.Snapshot().DB.Len()
	wantDigest := cubeDigest(t, s.Snapshot().Cube)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := New(prefixLoader(t, ds, base, cfg), "test", sCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Snapshot().DB.Len(); got != wantLen {
		t.Fatalf("second restart has %d records, want %d", got, wantLen)
	}
	if got := cubeDigest(t, s2.Snapshot().Cube); got != wantDigest {
		t.Errorf("second restart digest %s != pre-crash digest %s", got, wantDigest)
	}
}

// TestIngestReloadResetsWAL: reload rebuilds from the loader's source of
// truth and deliberately discards appended records, so it must also discard
// their journal entries — replaying them after a restart would double-apply.
func TestIngestReloadResetsWAL(t *testing.T) {
	ex := paperex.New()
	const base = 8 // the full running example
	cfg := paperexConfig(ex)
	walPath := filepath.Join(t.TempDir(), "ingest.wal")
	sCfg := quietConfig()
	sCfg.WALPath = walPath
	s, err := New(paperexLoader(ex, cfg), "test", sCfg)
	if err != nil {
		t.Fatal(err)
	}

	rec, _ := postBody(t, s.Handler(), "/admin/append",
		recordsBody(t, ex.DB.Schema, ex.DB.Records[:2]))
	if rec.Code != http.StatusOK {
		t.Fatalf("append: status %d: %s", rec.Code, rec.Body.String())
	}
	if got := s.Metrics().Ingest.WALEntries; got != 1 {
		t.Fatalf("wal_entries = %d after append, want 1", got)
	}

	if rec, _ := postBody(t, s.Handler(), "/admin/reload", ""); rec.Code != http.StatusOK {
		t.Fatalf("reload: status %d: %s", rec.Code, rec.Body.String())
	}
	if got := s.Metrics().Ingest.WALEntries; got != 0 {
		t.Errorf("wal_entries = %d after reload, want 0", got)
	}
	if got := s.Snapshot().DB.Len(); got != base {
		t.Errorf("post-reload snapshot has %d records, want %d", got, base)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: nothing to replay.
	s2, err := New(paperexLoader(ex, cfg), "test", sCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Snapshot().DB.Len(); got != base {
		t.Errorf("restart after reload has %d records, want %d (WAL double-applied)", got, base)
	}
}

// TestIngestStaleSchemaConflict pins the parse-then-commit race determin-
// istically: a batch parsed against a pre-reload snapshot must be rejected
// at commit with a retryable 409, because the reload may have changed the
// schema the batch's node ids were resolved against.
func TestIngestStaleSchemaConflict(t *testing.T) {
	ex := paperex.New()
	cfg := paperexConfig(ex)
	s, err := New(paperexLoader(ex, cfg), "test", quietConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	staleTag := s.Snapshot().SchemaGen
	if rec, _ := postBody(t, s.Handler(), "/admin/reload", ""); rec.Code != http.StatusOK {
		t.Fatalf("reload: status %d: %s", rec.Code, rec.Body.String())
	}
	if got := s.Snapshot().SchemaGen; got != staleTag+1 {
		t.Fatalf("SchemaGen after reload = %d, want %d", got, staleTag+1)
	}

	p, err := s.committer.Submit(ex.DB.Records[:2], staleTag)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Wait(); errorStatus(err) != http.StatusConflict {
		t.Fatalf("stale-tag commit: err %v, want 409", err)
	}
	if got := s.Metrics().Ingest.StaleConflicts; got != 1 {
		t.Errorf("stale_conflicts = %d, want 1", got)
	}

	// A batch carrying the current generation folds normally.
	rec, _ := postBody(t, s.Handler(), "/admin/append",
		recordsBody(t, ex.DB.Schema, ex.DB.Records[:2]))
	if rec.Code != http.StatusOK {
		t.Errorf("fresh append after conflict: status %d: %s", rec.Code, rec.Body.String())
	}
}

// TestIngestBatchErrorIsolatedToOwner: one caller's invalid batch must not
// fail the unrelated requests grouped with it. The owner alone gets the 400
// (with the record index rebased to its own batch), the survivors refold
// and commit together, and the bad batch is never journaled.
func TestIngestBatchErrorIsolatedToOwner(t *testing.T) {
	ex := paperex.New()
	cfg := paperexConfig(ex)
	sCfg := quietConfig()
	sCfg.WALPath = filepath.Join(t.TempDir(), "ingest.wal")
	s, err := New(paperexLoader(ex, cfg), "test", sCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	tag := s.Snapshot().SchemaGen
	base := s.Snapshot().DB.Len()
	good1 := ingest.NewPending(append([]pathdb.Record(nil), ex.DB.Records[:2]...), tag)
	// The invalid record (empty path) sits at position 1 of its own batch,
	// concatenated position 3 of the group: the reported index must be
	// rebased to the owner's batch.
	bad := ingest.NewPending([]pathdb.Record{ex.DB.Records[2], {Dims: ex.DB.Records[2].Dims}}, tag)
	good2 := ingest.NewPending(append([]pathdb.Record(nil), ex.DB.Records[3:5]...), tag)

	// Drive the apply callback directly: the committer would deliver the
	// same group, but only under a timing race between Submit calls.
	s.applyGroup([]*ingest.Pending{good1, bad, good2})

	_, badErr := bad.Wait()
	if errorStatus(badErr) != http.StatusBadRequest {
		t.Fatalf("bad batch: err %v, want 400", badErr)
	}
	if !strings.Contains(badErr.Error(), "record 1") {
		t.Errorf("bad batch error %q does not carry the index rebased to its own batch", badErr)
	}
	for i, p := range []*ingest.Pending{good1, good2} {
		resp, err := p.Wait()
		if err != nil {
			t.Fatalf("good batch %d failed alongside the bad one: %v", i, err)
		}
		if got := resp.(map[string]any)["group_records"]; got != 4 {
			t.Errorf("good batch %d group_records = %v, want 4 (the two surviving batches)", i, got)
		}
	}
	if got := s.Snapshot().DB.Len(); got != base+4 {
		t.Errorf("snapshot has %d records, want %d (both good batches, not the bad one)", got, base+4)
	}
	if got := s.Metrics().Ingest.WALEntries; got != 2 {
		t.Errorf("wal_entries = %d, want 2 (the rejected batch must never be journaled)", got)
	}
}

// TestIngestFoldFailureLeavesWALClean pins the fold-then-journal ordering:
// a batch that fails the fold is reported to the client with nothing
// durable left behind, so a restart has nothing to replay — journal-first
// would refuse to start (the replayed entry fails the same deterministic
// fold) or double-apply a batch the client was told failed.
func TestIngestFoldFailureLeavesWALClean(t *testing.T) {
	ex := paperex.New()
	cfg := paperexConfig(ex)
	sCfg := quietConfig()
	sCfg.WALPath = filepath.Join(t.TempDir(), "ingest.wal")
	s, err := New(paperexLoader(ex, cfg), "test", sCfg)
	if err != nil {
		t.Fatal(err)
	}

	bad := ingest.NewPending([]pathdb.Record{{Dims: ex.DB.Records[0].Dims}}, s.Snapshot().SchemaGen)
	s.applyGroup([]*ingest.Pending{bad})
	if _, err := bad.Wait(); errorStatus(err) != http.StatusBadRequest {
		t.Fatalf("bad batch: err %v, want 400", err)
	}
	if got := s.Metrics().Ingest.WALEntries; got != 0 {
		t.Fatalf("wal_entries = %d after a failed fold, want 0", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := New(paperexLoader(ex, cfg), "test", sCfg)
	if err != nil {
		t.Fatalf("restart after failed fold: %v", err)
	}
	defer s2.Close()
	if got := s2.Snapshot().DB.Len(); got != len(ex.DB.Records) {
		t.Errorf("restart has %d records, want the %d base records (failed batch replayed)",
			got, len(ex.DB.Records))
	}
}

// TestIngestStressConcurrent is the -race stress test for the group-commit
// write path: disjoint two-record batches fired from many goroutines while
// readers spin on the snapshot pointer. No update may be lost (every record
// lands exactly once), reads may never observe a partial batch (the record
// count past the base is always a whole number of batches), and the final
// cube must be byte-identical to a full build over the database the commits
// produced.
func TestIngestStressConcurrent(t *testing.T) {
	ds := ingestDataset(t, 59, 200)
	const (
		base      = 120
		batchSize = 2
		writers   = 8
		perWriter = 5 // batches each; writers*perWriter*batchSize covers [base,200)
	)
	cfg := core.Config{
		MinCount: 4, Epsilon: 0.05, Plan: ds.DefaultPlan(),
		MineExceptions: true, SingleStageExceptions: true, DeltaLedger: true, Workers: 2,
	}
	sCfg := quietConfig()
	sCfg.WALPath = filepath.Join(t.TempDir(), "ingest.wal")
	s, err := New(prefixLoader(t, ds, base, cfg), "test", sCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var done atomic.Bool
	violations := make(chan string, 64)
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			lastGen, lastLen := uint64(0), 0
			for !done.Load() {
				snap := s.Snapshot()
				n := snap.DB.Len()
				if (n-base)%batchSize != 0 {
					select {
					case violations <- fmt.Sprintf("partial batch visible: %d records past base", n-base):
					default:
					}
				}
				if snap.Gen < lastGen || n < lastLen {
					select {
					case violations <- fmt.Sprintf("snapshot went backwards: gen %d→%d len %d→%d", lastGen, snap.Gen, lastLen, n):
					default:
					}
				}
				lastGen, lastLen = snap.Gen, n
			}
		}()
	}

	var writersWG sync.WaitGroup
	writeErrs := make([]error, writers)
	for wi := 0; wi < writers; wi++ {
		writersWG.Add(1)
		go func(wi int) {
			defer writersWG.Done()
			for b := 0; b < perWriter; b++ {
				lo := base + (wi*perWriter+b)*batchSize
				body := recordsBody(t, ds.DB.Schema, ds.DB.Records[lo:lo+batchSize])
				req := httptest.NewRequest(http.MethodPost, "/admin/append", strings.NewReader(body))
				rec := httptest.NewRecorder()
				s.Handler().ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					writeErrs[wi] = fmt.Errorf("writer %d batch %d: status %d: %s", wi, b, rec.Code, rec.Body.String())
					return
				}
			}
		}(wi)
	}
	writersWG.Wait()
	done.Store(true)
	readers.Wait()
	close(violations)
	for v := range violations {
		t.Error(v)
	}
	for _, err := range writeErrs {
		if err != nil {
			t.Fatal(err)
		}
	}

	snap := s.Snapshot()
	if snap.DB.Len() != 200 {
		t.Fatalf("final snapshot has %d records, want 200 (a batch was lost)", snap.DB.Len())
	}
	// Exactness in commit order: rebuild over the exact database the
	// concurrent folds produced.
	rebuilt, err := core.Build(&pathdb.DB{
		Schema:  ds.DB.Schema,
		Records: append([]pathdb.Record(nil), snap.DB.Records...),
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := cubeDigest(t, snap.Cube), cubeDigest(t, rebuilt); got != want {
		t.Errorf("final folded digest %s != full-build digest %s", got, want)
	}
	m := s.Metrics()
	if m.Ingest.GroupedRequests != writers*perWriter {
		t.Errorf("grouped_requests = %d, want %d", m.Ingest.GroupedRequests, writers*perWriter)
	}
	if m.Ingest.WALEntries != writers*perWriter {
		t.Errorf("wal_entries = %d, want %d (one journal entry per accepted batch)", m.Ingest.WALEntries, writers*perWriter)
	}
}

// TestIngestStressWithReloads mixes appends, reloads, and reads: appends may
// cleanly conflict (409) when a reload fences them off, but nothing may
// crash, race, or leave the server unhealthy, and readers must never observe
// a partial batch (reloads reset the record count to the base, commits add
// whole batches).
func TestIngestStressWithReloads(t *testing.T) {
	ex := paperex.New()
	const (
		base      = 8 // the full running example
		batchSize = 2
	)
	cfg := paperexConfig(ex)
	s, err := New(paperexLoader(ex, cfg), "test", quietConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var done atomic.Bool
	violations := make(chan string, 64)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				if n := s.Snapshot().DB.Len(); (n-base)%batchSize != 0 {
					select {
					case violations <- fmt.Sprintf("partial batch visible: %d records past base", n-base):
					default:
					}
				}
			}
		}()
	}

	var writersWG sync.WaitGroup
	writeErrs := make([]error, 6)
	for wi := 0; wi < len(writeErrs); wi++ {
		writersWG.Add(1)
		go func(wi int) {
			defer writersWG.Done()
			for b := 0; b < 4; b++ {
				// Batches reuse example records (duplicates are ordinary
				// appends); what matters here is the swap traffic.
				lo := (wi*4 + b) * batchSize % (base - batchSize)
				body := recordsBody(t, ex.DB.Schema, ex.DB.Records[lo:lo+batchSize])
				req := httptest.NewRequest(http.MethodPost, "/admin/append", strings.NewReader(body))
				rec := httptest.NewRecorder()
				s.Handler().ServeHTTP(rec, req)
				// 200 = committed; 409 = fenced by a concurrent reload —
				// both are correct outcomes. Anything else is a bug.
				if rec.Code != http.StatusOK && rec.Code != http.StatusConflict {
					writeErrs[wi] = fmt.Errorf("writer %d batch %d: status %d: %s", wi, b, rec.Code, rec.Body.String())
					return
				}
			}
		}(wi)
	}
	var reloadErr error
	writersWG.Add(1)
	go func() {
		defer writersWG.Done()
		for i := 0; i < 5; i++ {
			req := httptest.NewRequest(http.MethodPost, "/admin/reload", nil)
			rec := httptest.NewRecorder()
			s.Handler().ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				reloadErr = fmt.Errorf("reload %d: status %d: %s", i, rec.Code, rec.Body.String())
				return
			}
		}
	}()
	writersWG.Wait()
	done.Store(true)
	wg.Wait()
	close(violations)
	for v := range violations {
		t.Error(v)
	}
	for _, err := range writeErrs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if reloadErr != nil {
		t.Fatal(reloadErr)
	}

	if rec, _ := get(t, s.Handler(), "/healthz"); rec.Code != http.StatusOK {
		t.Errorf("healthz after stress: status %d", rec.Code)
	}
	// The snapshot is still internally consistent: generation counters moved
	// and the record count parses as whole batches.
	snap := s.Snapshot()
	if (snap.DB.Len()-base)%batchSize != 0 {
		t.Errorf("final record count %d is not base plus whole batches", snap.DB.Len())
	}
	if snap.Gen == 0 {
		t.Error("no snapshot swap happened during the stress run")
	}
}
