package server

// v2 query-surface tests: the OLAP handler's operations and error shapes,
// the bounded append queue's 503, and the acceptance scenario for the
// materialization planner — /v1 responses over a planner-pruned snapshot
// are byte-identical to the unpruned server's, because dropped cells are
// reconstructed exactly at query time.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"flowcube/internal/core"
	"flowcube/internal/olap"
	"flowcube/internal/paperex"
	"flowcube/internal/pathdb"
	"flowcube/internal/transact"
)

func TestQueryV2Ops(t *testing.T) {
	_, cube := buildExampleCube(t)
	s := newTestServer(t, cube, quietConfig())
	h := s.Handler()

	t.Run("materialized cell", func(t *testing.T) {
		rec, body := get(t, h, "/v2/query?op=cell&cell=product=shoes,brand=nike")
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
		cells := body["cells"].([]any)
		if len(cells) != 1 {
			t.Fatalf("cells = %v, want 1", len(cells))
		}
		c0 := cells[0].(map[string]any)
		if c0["provenance"] != "materialized" || c0["exact"] != true {
			t.Errorf("provenance/exact = %v/%v, want materialized/true", c0["provenance"], c0["exact"])
		}
		if c0["source"].(map[string]any)["count"].(float64) != 3 {
			t.Errorf("source count = %v, want 3", c0["source"])
		}
	})

	t.Run("rollup", func(t *testing.T) {
		rec, body := get(t, h, "/v2/query?op=rollup&cell=product=shoes,brand=nike&dim=product")
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
		c0 := body["cells"].([]any)[0].(map[string]any)
		if c0["cell"] != "product=clothing,brand=nike" {
			t.Errorf("rolled up to %q, want product=clothing,brand=nike", c0["cell"])
		}
	})

	t.Run("slice", func(t *testing.T) {
		rec, body := get(t, h, "/v2/query?op=slice&select=brand=nike")
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
		cells := body["cells"].([]any)
		if len(cells) == 0 {
			t.Fatal("slice answered no cells")
		}
		for _, c := range cells {
			if cell := c.(map[string]any)["cell"].(string); !strings.Contains(cell, "brand=nike") {
				t.Errorf("slice cell %q does not pin brand=nike", cell)
			}
		}
	})

	t.Run("ancestor fallback", func(t *testing.T) {
		// (sandals, nike) is below δ=2; the v1 inference rule answers.
		rec, body := get(t, h, "/v2/query?op=cell&cell=product=sandals,brand=nike")
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
		c0 := body["cells"].([]any)[0].(map[string]any)
		if c0["provenance"] != "ancestor" || c0["exact"] != false {
			t.Errorf("provenance/exact = %v/%v, want ancestor/false", c0["provenance"], c0["exact"])
		}
	})

	t.Run("errors", func(t *testing.T) {
		for url, status := range map[string]int{
			"/v2/query?op=pivot":                       http.StatusBadRequest,
			"/v2/query?op=rollup&cell=product=shoes":   http.StatusBadRequest, // missing dim
			"/v2/query?cell=product=bogus":             http.StatusBadRequest,
			"/v2/query?cell=product=shoes&pathlevel=9": http.StatusBadRequest,
			"/v2/query?op=slice&select=brand":          http.StatusBadRequest,
		} {
			if rec, _ := get(t, h, url); rec.Code != status {
				t.Errorf("GET %s: status %d, want %d", url, rec.Code, status)
			}
		}
	})
}

// prunedExample builds the running example twice — eager and planner-pruned
// — without exceptions (exception-bearing cuboids are never droppable) and
// with MinCount 1 so no iceberg truncation blocks reconstruction.
func prunedExample(t *testing.T) (eager, pruned *core.Cube, res *olap.PlanResult) {
	t.Helper()
	build := func() *core.Cube {
		ex := paperex.New()
		plan := transact.Plan{PathLevels: []pathdb.PathLevel{
			ex.BasePathLevel(),
			ex.TransportPathLevel(),
		}}
		cube, err := core.Build(ex.DB, core.Config{MinCount: 1, Plan: plan})
		if err != nil {
			t.Fatal(err)
		}
		return cube
	}
	eager, pruned = build(), build()
	res, err := olap.Prune(context.Background(), pruned, olap.PlannerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dropped) == 0 {
		t.Fatal("planner dropped nothing; the parity test needs computed cells")
	}
	return eager, pruned, res
}

// TestPrunedV1Parity is the /v1 acceptance bar for the materialization
// planner: every /v1/cell response over the pruned snapshot — including
// cells of dropped cuboids, answered through query-time reconstruction —
// must match the eager server's byte for byte, along with the 404 shape.
func TestPrunedV1Parity(t *testing.T) {
	eager, pruned, res := prunedExample(t)
	se := newTestServer(t, eager, quietConfig())
	sp := newTestServer(t, pruned, quietConfig())

	var urls []string
	for _, spec := range eager.MaterializedSpecs() {
		cb := eager.Cuboid(spec)
		for _, cell := range cb.SortedCells() {
			urls = append(urls,
				"/v1/cell?cell="+core.FormatCell(eager.Schema, cell.Values)+
					"&pathlevel="+string(rune('0'+spec.PathLevel)))
		}
	}
	urls = append(urls, "/v1/cell?cell=product=socks,brand=nike") // 400 on both

	fetch := func(h http.Handler, url string) (int, string) {
		req := httptest.NewRequest(http.MethodGet, url, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code, loadedAtRe.ReplaceAllString(rec.Body.String(), `"loaded_at": "<pinned>"`)
	}
	for _, u := range urls {
		wantCode, wantBody := fetch(se.Handler(), u)
		gotCode, gotBody := fetch(sp.Handler(), u)
		if gotCode != wantCode || gotBody != wantBody {
			t.Errorf("GET %s diverged on the pruned snapshot\neager %d: %s\npruned %d: %s",
				u, wantCode, wantBody, gotCode, gotBody)
		}
	}

	// A cell of a dropped cuboid answers /v2 with computed provenance and
	// the folded descendants listed.
	spec, err := core.ParseCuboidKey(res.Dropped[0].Cuboid)
	if err != nil {
		t.Fatal(err)
	}
	values, ok := eager.EnumerateCellValues(spec)
	if !ok || len(values) == 0 {
		t.Fatalf("dropped cuboid %s has no enumerable cells", res.Dropped[0].Cuboid)
	}
	u := "/v2/query?op=cell&pathlevel=" + string(rune('0'+spec.PathLevel)) +
		"&cell=" + core.FormatCell(eager.Schema, values[0])
	rec, body := get(t, sp.Handler(), u)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", u, rec.Code, rec.Body.String())
	}
	c0 := body["cells"].([]any)[0].(map[string]any)
	if c0["provenance"] != "computed" || c0["exact"] != true {
		t.Fatalf("dropped cell provenance/exact = %v/%v, want computed/true", c0["provenance"], c0["exact"])
	}
	if len(c0["folded"].([]any)) == 0 {
		t.Fatal("computed cell lists no folded descendants")
	}

	// /v2/partial over the eager snapshot serves the census and at least one
	// usable descendant cuboid for the same cell.
	pu := "/v2/partial?pathlevel=" + string(rune('0'+spec.PathLevel)) +
		"&cell=" + core.FormatCell(eager.Schema, values[0])
	rec, body = get(t, se.Handler(), pu)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", pu, rec.Code, rec.Body.String())
	}
	if body["census"].(float64) < 1 {
		t.Errorf("partial census = %v, want >= 1", body["census"])
	}
	if len(body["descendants"].([]any)) == 0 {
		t.Error("partial lists no descendant fold sources")
	}
}

// TestAppendQueueFull503 pins the HTTP face of ingest.Config.MaxPending:
// with the commit loop stalled and the queue full, POST /admin/append sheds
// load with 503 + Retry-After, while the queued append still commits.
func TestAppendQueueFull503(t *testing.T) {
	ex := paperex.New()
	cfg := quietConfig()
	cfg.GroupLimit = 1
	cfg.MaxPending = 1
	s := newTestServer2(t, paperexLoader(ex, paperexConfig(ex)), cfg)
	h := s.Handler()
	body := recordsBody(t, ex.DB.Schema, ex.DB.Records[:1])

	// Stall the commit loop so submitted appends stay queued.
	gate := make(chan struct{})
	execRunning := make(chan struct{})
	var execWG sync.WaitGroup
	execWG.Add(1)
	go func() {
		defer execWG.Done()
		_ = s.committer.Exec(func() {
			close(execRunning)
			<-gate
		})
	}()
	<-execRunning

	type result struct {
		code int
		body string
	}
	first := make(chan result, 1)
	go func() {
		req := httptest.NewRequest(http.MethodPost, "/admin/append", strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		first <- result{rec.Code, rec.Body.String()}
	}()
	// The first append is admitted: the stalled exec has already been
	// dequeued, so depth 1 is the append sitting at MaxPending.
	for s.committer.Stats().QueueDepth < 1 {
		time.Sleep(time.Millisecond)
	}

	req := httptest.NewRequest(http.MethodPost, "/admin/append", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("overflow append: status %d, want 503: %s", rec.Code, rec.Body.String())
	}
	if ra := rec.Header().Get("Retry-After"); ra != "1" {
		t.Fatalf("overflow append: Retry-After = %q, want \"1\"", ra)
	}
	if !strings.Contains(rec.Body.String(), "queue is full") {
		t.Fatalf("overflow append body: %s", rec.Body.String())
	}

	close(gate)
	execWG.Wait()
	if r := <-first; r.code != http.StatusOK {
		t.Fatalf("admitted append failed after the stall: status %d: %s", r.code, r.body)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// newTestServer2 builds a server over an arbitrary loader.
func newTestServer2(t testing.TB, loader Loader, cfg Config) *Server {
	t.Helper()
	s, err := New(loader, "test", cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
