package server

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync/atomic"
	"time"

	"flowcube/internal/core"
	"flowcube/internal/datagen"
	"flowcube/internal/mining"
	"flowcube/internal/pathdb"
)

// Snapshot wraps one immutable materialized cube for serving. The cube is
// never mutated after construction (see the concurrency contract on
// core.Cube); a hot reload builds a whole new Snapshot and swaps the
// pointer, so in-flight requests finish against the snapshot they started
// with. Each snapshot owns its response cache, which makes reloads
// self-invalidating.
type Snapshot struct {
	Cube     *core.Cube
	Source   string
	LoadedAt time.Time
	// LoadDuration is how long the loader took to produce the cube (or, for
	// snapshots produced by POST /admin/append, how long the delta took).
	LoadDuration time.Duration
	// Bytes is the serialized size of the snapshot's input (the cube or
	// path-database file), 0 when the loader cannot know it.
	Bytes int64
	// DB is the path database the cube was built over, when the loader had
	// it. Snapshots with a DB accept streaming appends (POST /admin/append);
	// snapshots loaded from a saved cube alone do not. Its record slice is a
	// capacity-clamped view of the server's copy-on-write store
	// (pathdb.Store), so append commits never move records under a reader.
	DB *pathdb.DB
	// Gen counts snapshot swaps monotonically: every commit or reload
	// produces a snapshot with the next generation.
	Gen uint64
	// SchemaGen counts reloads: appends inherit it, reloads bump it. A batch
	// parsed against one SchemaGen cannot fold into a snapshot with another —
	// the reload may have changed the schema or the source of truth — so the
	// committer rejects the stale batch with a retryable conflict.
	SchemaGen uint64

	cache *lru
}

func newSnapshot(cube *core.Cube, source string, cacheSize int, loadDur time.Duration, bytes int64) *Snapshot {
	return &Snapshot{
		Cube:         cube,
		Source:       source,
		LoadedAt:     time.Now(),
		LoadDuration: loadDur,
		Bytes:        bytes,
		cache:        newLRU(cacheSize),
	}
}

// holder is the atomic snapshot pointer — the MVCC pivot: readers load it
// once and answer wholly from that snapshot, the commit loop publishes a
// new one per commit or reload, and neither ever blocks the other.
type holder struct {
	snap atomic.Pointer[Snapshot]
}

func (h *holder) get() *Snapshot { return h.snap.Load() }

func (h *holder) set(s *Snapshot) { h.snap.Store(s) }

// LoadInfo describes the serialized input a Loader read its cube from, for
// the snapshot gauges on /metrics and the reload response.
type LoadInfo struct {
	// Bytes is the size of the serialized snapshot input; 0 when unknown
	// (e.g. a cube built in memory).
	Bytes int64
	// DB is the path database the cube was built over; loaders that have it
	// should return it so the server can serve streaming appends. Nil when
	// the loader only had a saved cube. The server adopts the record slice
	// into its copy-on-write store (pathdb.Store), so every load call must
	// return a freshly allocated slice, never one shared with earlier loads
	// or retained by the caller.
	DB *pathdb.DB
}

// Loader produces a fresh cube; it is called once at startup and again on
// every POST /admin/reload. It must return a cube no other goroutine will
// mutate.
type Loader func() (*core.Cube, LoadInfo, error)

// BuildOptions parameterize cube construction when the loader starts from a
// raw path database rather than a persisted cube.
type BuildOptions struct {
	// MinSupport is the iceberg threshold δ as a fraction of the database.
	MinSupport float64
	// Epsilon is the minimum deviation ε for exceptions.
	Epsilon float64
	// Tau is the redundancy threshold τ; 0 disables redundancy marking.
	Tau float64
	// MineExceptions computes flowgraph exceptions (the holistic, expensive
	// part of the measure).
	MineExceptions bool
	// Workers spreads flowgraph construction across goroutines.
	Workers int
	// Lazy opens v2 cube snapshots with core.LoadCubeLazy: the file is
	// mapped read-only and cuboid sections decode on first touch, so the
	// server is ready in milliseconds and resident memory stays bounded by
	// LazyCacheBytes rather than the full cube size. Inputs that are not v2
	// snapshots (v1 cubes, path databases) fall back to the eager path.
	Lazy bool
	// LazyCacheBytes is the decoded-section LRU budget for lazy opens;
	// 0 means core.DefaultLazyCacheBytes, negative disables eviction.
	LazyCacheBytes int64
}

// WithDatabase wraps a loader so the snapshots it produces carry the path
// database read from dbPath whenever the loader itself has none (a loader
// over a saved cube snapshot, for example). Shard servers use it so
// /admin/append keeps working over split snapshots: the cube is shard-local
// but the database is the replicated source of truth (see internal/cluster
// and DESIGN.md §10). The database is re-read on every load, so reloads see
// a replaced file.
func WithDatabase(loader Loader, dbPath string) Loader {
	return func() (*core.Cube, LoadInfo, error) {
		cube, info, err := loader()
		if err != nil || info.DB != nil {
			return cube, info, err
		}
		f, err := os.Open(dbPath)
		if err != nil {
			return nil, LoadInfo{}, fmt.Errorf("server: open database %s: %w", dbPath, err)
		}
		defer func() { _ = f.Close() }() // read-only; close errors carry no information
		ds, err := datagen.Read(f)
		if err != nil {
			return nil, LoadInfo{}, fmt.Errorf("server: read database %s: %w", dbPath, err)
		}
		if len(ds.DB.Schema.Dims) != len(cube.Schema.Dims) {
			return nil, LoadInfo{}, fmt.Errorf("server: database %s has %d dimensions, cube has %d",
				dbPath, len(ds.DB.Schema.Dims), len(cube.Schema.Dims))
		}
		for d := range cube.Schema.Dims {
			if got, want := ds.DB.Schema.Dims[d].Dimension(), cube.Schema.Dims[d].Dimension(); got != want {
				return nil, LoadInfo{}, fmt.Errorf("server: database %s dimension %d is %q, cube has %q",
					dbPath, d, got, want)
			}
		}
		info.DB = ds.DB
		return cube, info, nil
	}
}

// FileLoader returns a Loader over a file path holding either a persisted
// cube (flowquery -save, typically .fcb) or a flowgen path database
// (typically .fdb). The format is sniffed, not inferred from the extension:
// with opts.Lazy a zero-copy mmap open is attempted first, then an eager
// cube load, then a dataset read plus a full Build with opts. Reload
// re-reads the file, so replacing it on disk and POSTing /admin/reload
// rolls the serving snapshot forward — a near-free pointer swap when the
// snapshot opens lazily.
func FileLoader(path string, opts BuildOptions) Loader {
	return func() (*core.Cube, LoadInfo, error) {
		if opts.Lazy {
			cube, err := core.LoadCubeLazy(path, core.LazyOptions{CacheBytes: opts.LazyCacheBytes})
			if err == nil {
				var info LoadInfo
				if st, err := os.Stat(path); err == nil {
					info.Bytes = st.Size()
				}
				return cube, info, nil
			}
			if !errors.Is(err, core.ErrNotLazySnapshot) {
				return nil, LoadInfo{}, err
			}
			// Not a v2 snapshot — fall through to the eager sniff below.
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, LoadInfo{}, err
		}
		defer func() { _ = f.Close() }() // read-only; close errors carry no information
		var info LoadInfo
		if st, err := f.Stat(); err == nil {
			info.Bytes = st.Size()
		}
		cube, cubeErr := core.Load(f)
		if cubeErr == nil {
			return cube, info, nil
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return nil, LoadInfo{}, err
		}
		ds, dsErr := datagen.Read(f)
		if dsErr != nil {
			return nil, LoadInfo{}, fmt.Errorf("server: %s is neither a saved cube (%v) nor a path database (%v)",
				path, cubeErr, dsErr)
		}
		// Resolve the fractional threshold to an absolute δ up front — the
		// same resolution the miner would apply — so the served cube is
		// delta-maintainable (incr.ApplyDelta requires an absolute MinCount;
		// the ledger lets admissions skip base re-scans).
		minCount, err := mining.ResolveMinCount(mining.Options{MinSupport: opts.MinSupport}, ds.DB.Len())
		if err != nil {
			return nil, LoadInfo{}, fmt.Errorf("server: resolve threshold for %s: %w", path, err)
		}
		cube, err = core.Build(ds.DB, core.Config{
			MinCount:              minCount,
			Epsilon:               opts.Epsilon,
			Tau:                   opts.Tau,
			Plan:                  ds.DefaultPlan(),
			MineExceptions:        opts.MineExceptions,
			SingleStageExceptions: opts.MineExceptions,
			Workers:               opts.Workers,
			DeltaLedger:           true,
		})
		if err != nil {
			return nil, LoadInfo{}, fmt.Errorf("server: build cube from %s: %w", path, err)
		}
		info.DB = ds.DB
		return cube, info, nil
	}
}
