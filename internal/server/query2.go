package server

// The v2 query surface: GET /v2/query exposes the OLAP algebra of
// core.Cube.Answer — roll-up, drill-down, slice, dice, and exact query-time
// reconstruction of cells the materialization planner dropped — and GET
// /v2/partial exports one shard's local fold sources for a cell so a
// cluster router can reconstruct cells whose descendants are scattered
// across shards (internal/cluster). The response renderers are exported:
// the router reuses them so routed /v2 bodies look like single-node ones.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"

	"flowcube/internal/core"
	"flowcube/internal/hierarchy"
	"flowcube/internal/olap"
)

// CellAnswerJSON is one answered cell of a /v2/query response.
type CellAnswerJSON struct {
	// Cell and PathLevel identify the requested (or enumerated) cell.
	Cell      string `json:"cell"`
	PathLevel int    `json:"path_level"`
	// Provenance is how the cell was answered: "materialized", "computed"
	// (reconstructed exactly from materialized descendants), or "ancestor"
	// (roll-up inference; not exact).
	Provenance string `json:"provenance"`
	Exact      bool   `json:"exact"`
	// SourceCuboid and Source are the cell that answered.
	SourceCuboid string      `json:"source_cuboid"`
	Source       CellRefJSON `json:"source"`
	// Folded lists the descendant cells folded into a computed answer.
	Folded []FoldedRefJSON `json:"folded,omitempty"`
	Graph  GraphJSON       `json:"graph"`
}

// FoldedRefJSON names one descendant cell folded into a computed answer.
type FoldedRefJSON struct {
	Cuboid string `json:"cuboid"`
	Cell   string `json:"cell"`
}

// QueryResponse is the GET /v2/query JSON body.
type QueryResponse struct {
	Op        string           `json:"op"`
	Cells     []CellAnswerJSON `json:"cells"`
	Truncated bool             `json:"truncated,omitempty"`
	Skipped   int              `json:"skipped,omitempty"`
}

// RenderCellAnswer projects one core.CellAnswer to JSON. Exported for the
// cluster router, which renders router-side folds with the same shapes.
func RenderCellAnswer(cube *core.Cube, ca core.CellAnswer) CellAnswerJSON {
	out := CellAnswerJSON{
		Cell:         core.FormatCell(cube.Schema, ca.Values),
		PathLevel:    ca.Spec.PathLevel,
		Provenance:   ca.Provenance.String(),
		Exact:        ca.Exact,
		SourceCuboid: ca.SourceSpec.Key(),
		Source:       renderCellRef(cube, ca.Source),
		Graph:        renderGraph(cube.Schema.Location, ca.Graph),
	}
	for _, f := range ca.Folded {
		out.Folded = append(out.Folded, FoldedRefJSON{
			Cuboid: f.Spec.Key(),
			Cell:   core.FormatCell(cube.Schema, f.Values),
		})
	}
	return out
}

// RenderQueryResponse projects a core.Answer to the /v2/query JSON body.
func RenderQueryResponse(cube *core.Cube, a *core.Answer) QueryResponse {
	resp := QueryResponse{
		Op:        a.Query.Op.String(),
		Cells:     make([]CellAnswerJSON, 0, len(a.Cells)),
		Truncated: a.Truncated,
		Skipped:   a.Skipped,
	}
	for _, ca := range a.Cells {
		resp.Cells = append(resp.Cells, RenderCellAnswer(cube, ca))
	}
	return resp
}

// handleQueryV2 answers one OLAP query (see olap.ParseQuery for the
// parameters). Like /v1/cell, identical queries are answered from the
// snapshot's LRU cache with single-flight deduplication.
func (s *Server) handleQueryV2(w http.ResponseWriter, r *http.Request) {
	snap := s.holder.get()
	key := "v2|" + r.URL.RawQuery
	v, hit, err := snap.cache.do(key, func() (*cached, error) {
		return computeQueryV2(r.Context(), snap.Cube, r.URL.Query())
	})
	if err != nil {
		s.metrics.cacheMisses.Add(1)
		writeError(w, err)
		return
	}
	if hit {
		s.metrics.cacheHits.Add(1)
	} else {
		s.metrics.cacheMisses.Add(1)
	}
	if err := r.Context().Err(); err != nil {
		return
	}
	w.Header().Set("Content-Type", v.contentType)
	if hit {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	w.WriteHeader(v.status)
	w.Write(v.body) //nolint:errcheck
}

// computeQueryV2 parses, answers, and renders one /v2/query request; the
// result is cacheable (errors are not cached).
func computeQueryV2(ctx context.Context, cube *core.Cube, params url.Values) (*cached, error) {
	q, err := olap.ParseQuery(cube, params)
	if err != nil {
		return nil, &httpError{http.StatusBadRequest, err.Error()}
	}
	a, err := cube.Answer(ctx, q)
	if err != nil {
		switch {
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			return nil, err
		case errors.Is(err, core.ErrCellNotFound):
			// As on /v1: a lazy decode failure masquerades as absence; the
			// sticky error disambiguates corruption (500) from a 404.
			if lerr := cube.LazyErr(); lerr != nil {
				return nil, &httpError{http.StatusInternalServerError, lerr.Error()}
			}
			return nil, &httpError{http.StatusNotFound, err.Error()}
		}
		return nil, &httpError{http.StatusBadRequest, err.Error()}
	}
	body, err := json.MarshalIndent(RenderQueryResponse(cube, a), "", "  ")
	if err != nil {
		return nil, err
	}
	return &cached{status: http.StatusOK, contentType: "application/json", body: body}, nil
}

// PartialCellJSON is one local fold source: a materialized descendant cell
// generalizing to the requested cell, with its flowgraph in the portable
// flat encoding (core.EncodeGraph, base64 over the wire).
type PartialCellJSON struct {
	Cell  string `json:"cell"`
	Count int64  `json:"count"`
	Graph []byte `json:"graph,omitempty"`
}

// PartialCuboidJSON groups one descendant cuboid's local fold sources.
// Unusable marks a cuboid holding a matching cell without a flowgraph
// (compressed away): no fold through it can be exact, on any shard.
type PartialCuboidJSON struct {
	Cuboid   string            `json:"cuboid"`
	Unusable bool              `json:"unusable,omitempty"`
	Cells    []PartialCellJSON `json:"cells,omitempty"`
}

// PartialResponse is the GET /v2/partial JSON body: everything this shard
// contributes to reconstructing one cell. Census is the cell's exact path
// count when a local materialized cuboid shares the item level (the shard
// owning the cell's values has it; others answer -1). Descendants lists, in
// this shard's DescendantSpecs order — identical on every shard, since the
// cuboid lattice is replicated — the local cells of each materialized
// descendant cuboid that generalize to the requested cell. The router sums
// each cuboid's counts across shards and folds the first whose total
// matches the census: the same certificate core.ReconstructCell applies
// locally, so a scattered fold is either exact or refused.
// Materialized reports whether the requested cuboid itself is materialized
// in this shard's snapshot (the cuboid lattice is replicated, so every shard
// answers alike): when it is, the single-node compute gate would not fire —
// an absent cell there means sub-δ or compressed, answered by ancestors —
// and the router must not reconstruct either.
type PartialResponse struct {
	Cuboid       string              `json:"cuboid"`
	Cell         string              `json:"cell"`
	Materialized bool                `json:"materialized"`
	Census       int64               `json:"census"`
	Descendants  []PartialCuboidJSON `json:"descendants,omitempty"`
}

// handlePartial serves a shard's local fold sources for one cell
// (GET /v2/partial?cell=...&pathlevel=N). Parameter validation mirrors
// /v1/cell so router-relayed errors stay consistent.
func (s *Server) handlePartial(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	cellSpec := q.Get("cell")
	pathLevel := 0
	if pl := q.Get("pathlevel"); pl != "" {
		n, err := strconv.Atoi(pl)
		if err != nil {
			writeError(w, &httpError{http.StatusBadRequest, fmt.Sprintf("bad pathlevel %q", pl)})
			return
		}
		pathLevel = n
	}
	snap := s.holder.get()
	cube := snap.Cube
	il, values, err := core.ParseCellSpec(cube.Schema, cellSpec)
	if err != nil {
		writeError(w, &httpError{http.StatusBadRequest, err.Error()})
		return
	}
	if pathLevel < 0 || pathLevel >= len(cube.Symbols.PathLevels()) {
		writeError(w, &httpError{http.StatusBadRequest,
			fmt.Sprintf("pathlevel %d out of range, cube has %d path levels", pathLevel, len(cube.Symbols.PathLevels()))})
		return
	}
	spec := core.CuboidSpec{Item: il, PathLevel: pathLevel}
	resp := renderPartial(cube, spec, values)
	if !checkLazy(w, snap) {
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// renderPartial collects the shard-local reconstruction inputs for one cell.
func renderPartial(cube *core.Cube, spec core.CuboidSpec, values []hierarchy.NodeID) PartialResponse {
	resp := PartialResponse{
		Cuboid:       spec.Key(),
		Cell:         core.FormatCell(cube.Schema, values),
		Materialized: cube.Cuboid(spec) != nil,
		Census:       -1,
	}
	if n, ok := cube.CensusCount(spec, values); ok {
		resp.Census = n
	}
	target := core.CellKey(values)
	for _, ds := range cube.DescendantSpecs(spec) {
		cb := cube.Cuboid(ds)
		if cb == nil {
			continue
		}
		pc := PartialCuboidJSON{Cuboid: ds.Key()}
		for _, cell := range cb.SortedCells() {
			if core.CellKey(cube.GeneralizeValues(ds.Item, spec.Item, cell.Values)) != target {
				continue
			}
			if cell.Graph == nil {
				pc.Unusable = true
				pc.Cells = nil
				break
			}
			pc.Cells = append(pc.Cells, PartialCellJSON{
				Cell:  core.FormatCell(cube.Schema, cell.Values),
				Count: cell.Count,
				Graph: core.EncodeGraph(cell.Graph),
			})
		}
		if pc.Unusable || len(pc.Cells) > 0 {
			resp.Descendants = append(resp.Descendants, pc)
		}
	}
	return resp
}
