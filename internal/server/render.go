package server

import (
	"sort"
	"strconv"

	"flowcube/internal/core"
	"flowcube/internal/flowgraph"
	"flowcube/internal/hierarchy"
)

// JSON projections of the serving read model. These mirror what the
// flowquery CLI prints, but structured: flowgraphs keep their prefix-tree
// shape, distributions become {outcome: probability} maps, and every
// hierarchy node is rendered by name so responses are self-describing.

// NodeJSON is one flowgraph node: a unique path prefix, annotated with the
// transition probability from its parent, its duration distribution, and
// its termination probability.
type NodeJSON struct {
	Location        string             `json:"location"`
	Count           int64              `json:"count"`
	Prob            float64            `json:"prob"`
	TerminationProb float64            `json:"termination_prob,omitempty"`
	MeanDuration    float64            `json:"mean_duration"`
	Durations       map[string]float64 `json:"durations,omitempty"`
	Children        []NodeJSON         `json:"children,omitempty"`
}

// GraphJSON is a whole flowgraph measure.
type GraphJSON struct {
	Paths int64      `json:"paths"`
	Roots []NodeJSON `json:"roots"`
}

// CellRefJSON identifies a materialized cell.
type CellRefJSON struct {
	Cell      string   `json:"cell"`
	Values    []string `json:"values"`
	Count     int64    `json:"count"`
	Redundant bool     `json:"redundant,omitempty"`
}

// CellResponse is the GET /v1/cell JSON body.
type CellResponse struct {
	Cell      string `json:"cell"`
	PathLevel int    `json:"path_level"`
	// Exact reports whether the requested cell itself answered; false means
	// the graph was inferred from the nearest materialized ancestor
	// (roll-up inference over the non-redundant cube).
	Exact  bool        `json:"exact"`
	Source CellRefJSON `json:"source"`
	Graph  GraphJSON   `json:"graph"`
}

// ExceptionJSON is one ranked exception.
type ExceptionJSON struct {
	Cuboid              string         `json:"cuboid"`
	Cell                []string       `json:"cell"`
	Node                []string       `json:"node"`
	Condition           []StagePinJSON `json:"condition"`
	Support             int64          `json:"support"`
	DurationDeviation   float64        `json:"duration_deviation"`
	TransitionDeviation float64        `json:"transition_deviation"`
	Severity            float64        `json:"severity"`
}

// StagePinJSON is one conditioning constraint of an exception.
type StagePinJSON struct {
	Depth    int    `json:"depth"`
	Location string `json:"location"`
	Duration int64  `json:"duration,omitempty"`
	DurAny   bool   `json:"duration_any,omitempty"`
}

// CuboidJSON summarizes one materialized cuboid.
type CuboidJSON struct {
	Key       string `json:"key"`
	ItemLevel []int  `json:"item_level"`
	PathLevel int    `json:"path_level"`
	Cells     int    `json:"cells"`
	Redundant int    `json:"redundant,omitempty"`
}

// SummaryResponse is the GET /v1/summary JSON body.
type SummaryResponse struct {
	Source     string       `json:"source"`
	LoadedAt   string       `json:"loaded_at"`
	Dimensions []string     `json:"dimensions"`
	PathLevels int          `json:"path_levels"`
	MinCount   int64        `json:"min_count"`
	Cuboids    int          `json:"cuboids"`
	Cells      int          `json:"cells"`
	Largest    []CuboidJSON `json:"largest"`
}

func renderDist(m interface {
	Outcomes() []int64
	Prob(int64) float64
}) map[string]float64 {
	out := make(map[string]float64)
	for _, v := range m.Outcomes() {
		out[strconv.FormatInt(v, 10)] = m.Prob(v)
	}
	return out
}

func renderNode(loc *hierarchy.Hierarchy, parent, n *flowgraph.Node) NodeJSON {
	nj := NodeJSON{
		Location:        loc.Name(n.Location),
		Count:           n.Count,
		Prob:            parent.Transitions.Prob(int64(n.Location)),
		TerminationProb: n.TerminationProb(),
		MeanDuration:    n.Durations.Mean(),
		Durations:       renderDist(n.Durations),
	}
	for _, c := range n.Children() {
		nj.Children = append(nj.Children, renderNode(loc, n, c))
	}
	return nj
}

func renderGraph(loc *hierarchy.Hierarchy, g *flowgraph.Graph) GraphJSON {
	gj := GraphJSON{Paths: g.Paths()}
	for _, c := range g.Root().Children() {
		gj.Roots = append(gj.Roots, renderNode(loc, g.Root(), c))
	}
	return gj
}

func renderCellRef(cube *core.Cube, cell *core.Cell) CellRefJSON {
	ref := CellRefJSON{
		Cell:      core.FormatCell(cube.Schema, cell.Values),
		Count:     cell.Count,
		Redundant: cell.Redundant,
	}
	for d, v := range cell.Values {
		ref.Values = append(ref.Values, cube.Schema.Dims[d].Name(v))
	}
	return ref
}

func renderExceptions(cube *core.Cube, k int) []ExceptionJSON {
	ranked := cube.TopExceptions(k)
	out := make([]ExceptionJSON, 0, len(ranked))
	for _, r := range ranked {
		xj := ExceptionJSON{
			Cuboid:              r.Spec.Key(),
			Support:             r.Support,
			DurationDeviation:   r.DurationDeviation,
			TransitionDeviation: r.TransitionDeviation,
			Severity:            r.Severity(),
		}
		for d, v := range r.Values {
			xj.Cell = append(xj.Cell, cube.Schema.Dims[d].Name(v))
		}
		for _, l := range r.Node.Prefix() {
			xj.Node = append(xj.Node, cube.Schema.Location.Name(l))
		}
		for _, p := range r.Condition {
			xj.Condition = append(xj.Condition, StagePinJSON{
				Depth:    p.Depth,
				Location: cube.Schema.Location.Name(p.Location),
				Duration: p.Duration,
				DurAny:   p.DurAny,
			})
		}
		out = append(out, xj)
	}
	return out
}

// CuboidsResponse is the GET /v1/cuboids JSON body: the full materialized
// cuboid census, including empty cuboids — unlike /v1/summary's Largest
// list, which is sampled. A cluster router uses it to validate at startup
// that every shard materializes the same lattice (internal/cluster).
type CuboidsResponse struct {
	Source     string       `json:"source"`
	LoadedAt   string       `json:"loaded_at"`
	Dimensions []string     `json:"dimensions"`
	PathLevels int          `json:"path_levels"`
	MinCount   int64        `json:"min_count"`
	Cells      int          `json:"cells"`
	Cuboids    []CuboidJSON `json:"cuboids"`
}

func renderCuboids(snap *Snapshot) CuboidsResponse {
	cube := snap.Cube
	resp := CuboidsResponse{
		Source:     snap.Source,
		LoadedAt:   snap.LoadedAt.UTC().Format("2006-01-02T15:04:05Z"),
		PathLevels: len(cube.Symbols.PathLevels()),
		MinCount:   cube.MinCount(),
		Cells:      cube.NumCells(),
	}
	for _, h := range cube.Schema.Dims {
		resp.Dimensions = append(resp.Dimensions, h.Dimension())
	}
	summaries := cube.CuboidSummaries()
	resp.Cuboids = make([]CuboidJSON, 0, len(summaries))
	for _, s := range summaries {
		resp.Cuboids = append(resp.Cuboids, CuboidJSON{
			Key:       s.Key,
			ItemLevel: s.Item,
			PathLevel: s.PathLevel,
			Cells:     s.Cells,
			Redundant: s.Redundant,
		})
	}
	return resp
}

func renderSummary(snap *Snapshot) SummaryResponse {
	cube := snap.Cube
	resp := SummaryResponse{
		Source:     snap.Source,
		LoadedAt:   snap.LoadedAt.UTC().Format("2006-01-02T15:04:05Z"),
		PathLevels: len(cube.Symbols.PathLevels()),
		MinCount:   cube.MinCount(),
		Cells:      cube.NumCells(),
	}
	for _, h := range cube.Schema.Dims {
		resp.Dimensions = append(resp.Dimensions, h.Dimension())
	}
	summaries := cube.CuboidSummaries()
	resp.Cuboids = len(summaries)
	for _, s := range summaries {
		if s.Cells == 0 {
			continue
		}
		resp.Largest = append(resp.Largest, CuboidJSON{
			Key:       s.Key,
			ItemLevel: s.Item,
			PathLevel: s.PathLevel,
			Cells:     s.Cells,
			Redundant: s.Redundant,
		})
	}
	// Largest first, key as tiebreak, capped to keep the payload bounded.
	sort.Slice(resp.Largest, func(i, j int) bool {
		if resp.Largest[i].Cells != resp.Largest[j].Cells {
			return resp.Largest[i].Cells > resp.Largest[j].Cells
		}
		return resp.Largest[i].Key < resp.Largest[j].Key
	})
	if len(resp.Largest) > 20 {
		resp.Largest = resp.Largest[:20]
	}
	return resp
}
