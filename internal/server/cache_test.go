package server

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestLRUEviction(t *testing.T) {
	c := newLRU(2)
	calls := 0
	get := func(key string) {
		t.Helper()
		if _, _, err := c.do(key, func() (*cached, error) {
			calls++
			return &cached{body: []byte(key)}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	get("a")
	get("b")
	get("a") // refresh a: b is now least recently used
	get("c") // evicts b
	if c.len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.len())
	}
	if calls != 3 {
		t.Fatalf("computed %d times, want 3", calls)
	}
	get("b") // must recompute
	if calls != 4 {
		t.Fatalf("evicted key did not recompute: %d calls, want 4", calls)
	}
	get("a") // a must have been evicted by b's reinsert or still present; either way no error
}

func TestLRUHitReporting(t *testing.T) {
	c := newLRU(4)
	_, hit, _ := c.do("k", func() (*cached, error) { return &cached{}, nil })
	if hit {
		t.Error("first call reported a hit")
	}
	_, hit, _ = c.do("k", func() (*cached, error) {
		t.Fatal("cached key recomputed")
		return nil, nil
	})
	if !hit {
		t.Error("second call reported a miss")
	}
}

func TestLRUSingleFlight(t *testing.T) {
	c := newLRU(4)
	var calls atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})

	var wg sync.WaitGroup
	hits := make([]bool, 8)
	// One leader computes; everyone else must share its flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.do("k", func() (*cached, error) {
			calls.Add(1)
			close(started)
			<-release
			return &cached{body: []byte("v")}, nil
		})
	}()
	<-started
	for i := range hits {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, hit, err := c.do("k", func() (*cached, error) {
				calls.Add(1)
				return &cached{body: []byte("v")}, nil
			})
			if err != nil || string(v.body) != "v" {
				t.Errorf("waiter got %v, %v", v, err)
			}
			hits[i] = hit
		}(i)
	}
	close(release)
	wg.Wait()

	if n := calls.Load(); n != 1 {
		t.Errorf("fn ran %d times, want 1 (single flight)", n)
	}
	for i, h := range hits {
		if !h {
			t.Errorf("waiter %d reported a miss", i)
		}
	}
}

func TestLRUErrorsNotCached(t *testing.T) {
	c := newLRU(4)
	calls := 0
	boom := errors.New("boom")
	for i := 0; i < 2; i++ {
		if _, _, err := c.do("k", func() (*cached, error) {
			calls++
			return nil, boom
		}); !errors.Is(err, boom) {
			t.Fatalf("call %d: err = %v, want boom", i, err)
		}
	}
	if calls != 2 {
		t.Errorf("error was cached: %d calls, want 2", calls)
	}
}

func TestLRUDisabledStillDeduplicates(t *testing.T) {
	c := newLRU(0)
	calls := 0
	for i := 0; i < 3; i++ {
		c.do("k", func() (*cached, error) {
			calls++
			return &cached{}, nil
		})
	}
	if calls != 3 {
		t.Errorf("disabled cache stored responses: %d calls, want 3", calls)
	}
	if c.len() != 0 {
		t.Errorf("disabled cache holds %d entries", c.len())
	}
}
