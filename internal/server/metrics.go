package server

import (
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"flowcube/internal/core"
	"flowcube/internal/incr"
)

// Serving metrics, stdlib only: per-route request counts, error counts and
// a fixed-bucket latency histogram, plus cube-cache counters. Exposed as
// plain JSON on GET /metrics; the histogram buckets are cumulative-friendly
// (each bucket counts observations at or below its bound) so p50/p99 can be
// estimated server-side without retaining samples.

// latencyBoundsMs are the histogram bucket upper bounds in milliseconds;
// an implicit overflow bucket catches everything slower.
var latencyBoundsMs = []float64{
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 1000,
}

type routeStats struct {
	count   int64
	errors  int64 // responses with status >= 400
	totalNs int64
	buckets []int64 // len(latencyBoundsMs)+1, last = overflow
	maxNs   int64
}

type metrics struct {
	start time.Time

	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	reloads     atomic.Int64

	// Streaming-append gauges: total appends plus the last delta's cost and
	// touch footprint (POST /admin/append).
	appends           atomic.Int64
	lastDeltaNs       atomic.Int64
	lastCellsTouched  atomic.Int64
	lastCellsAdmitted atomic.Int64

	// Ingest write-path gauges. The WAL itself is touched only on the
	// commit loop, so its counters are mirrored here atomically for
	// /metrics readers; the committer's own stats are mutex-guarded and
	// read directly (Server.Metrics).
	lastGroupSize         atomic.Int64
	lastReminedRestricted atomic.Int64
	lastPrefixesRemined   atomic.Int64
	staleConflicts        atomic.Int64
	walEntries            atomic.Int64
	walBytes              atomic.Int64

	mu     sync.Mutex
	routes map[string]*routeStats
}

// recordAppend stores one append's counters.
func (m *metrics) recordAppend(d time.Duration, stats *incr.Stats) {
	m.appends.Add(1)
	m.lastDeltaNs.Store(d.Nanoseconds())
	m.lastCellsTouched.Store(int64(stats.CellsTouched))
	m.lastCellsAdmitted.Store(int64(stats.CellsAdmitted))
	m.lastReminedRestricted.Store(int64(stats.CellsReminedRestricted))
	m.lastPrefixesRemined.Store(int64(stats.PrefixesRemined))
}

func newMetrics() *metrics {
	return &metrics{start: time.Now(), routes: make(map[string]*routeStats)}
}

// observe records one served request.
func (m *metrics) observe(route string, status int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rs := m.routes[route]
	if rs == nil {
		rs = &routeStats{buckets: make([]int64, len(latencyBoundsMs)+1)}
		m.routes[route] = rs
	}
	rs.count++
	if status >= 400 {
		rs.errors++
	}
	rs.totalNs += d.Nanoseconds()
	if d.Nanoseconds() > rs.maxNs {
		rs.maxNs = d.Nanoseconds()
	}
	ms := float64(d.Nanoseconds()) / 1e6
	i := sort.SearchFloat64s(latencyBoundsMs, ms)
	rs.buckets[i]++
}

// quantileMs estimates a latency quantile from the histogram: the upper
// bound of the bucket holding the q-th observation (the recorded maximum
// for the overflow bucket).
func (rs *routeStats) quantileMs(q float64) float64 {
	if rs.count == 0 {
		return 0
	}
	rank := int64(q * float64(rs.count))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, n := range rs.buckets {
		cum += n
		if cum >= rank {
			if i < len(latencyBoundsMs) {
				return latencyBoundsMs[i]
			}
			return float64(rs.maxNs) / 1e6
		}
	}
	return float64(rs.maxNs) / 1e6
}

// RouteMetrics is the JSON shape of one route's counters.
type RouteMetrics struct {
	Count   int64            `json:"count"`
	Errors  int64            `json:"errors"`
	MeanMs  float64          `json:"mean_ms"`
	P50Ms   float64          `json:"p50_ms"`
	P99Ms   float64          `json:"p99_ms"`
	MaxMs   float64          `json:"max_ms"`
	Buckets map[string]int64 `json:"buckets_ms_le,omitempty"`
}

// CacheMetrics is the JSON shape of the response-cache counters.
type CacheMetrics struct {
	Hits     int64   `json:"hits"`
	Misses   int64   `json:"misses"`
	HitRatio float64 `json:"hit_ratio"`
}

// SnapshotMetrics are the gauges of the currently served snapshot: how long
// the loader took and how many serialized bytes it read. Server.Metrics
// fills them from the snapshot holder; they reset on every reload.
type SnapshotMetrics struct {
	LoadMs   float64 `json:"load_ms"`
	Bytes    int64   `json:"snapshot_bytes"`
	LoadedAt string  `json:"loaded_at"`
	// Lazy carries the mmap/LRU gauges of a lazily opened snapshot; absent
	// for eager snapshots.
	Lazy *LazyMetrics `json:"lazy,omitempty"`
}

// LazyMetrics are the zero-copy serving gauges of a lazily opened snapshot:
// how much of the file is mapped versus decoded so far, and how the
// decoded-section LRU is behaving. Unlike the request counters these are
// per-snapshot (they reset on reload), which is what makes them useful —
// decoded_bytes versus mapped_bytes is exactly the RSS the lazy open saved.
type LazyMetrics struct {
	Mapped          bool  `json:"mapped"` // false on the pread fallback build
	MappedBytes     int64 `json:"mapped_bytes"`
	BudgetBytes     int64 `json:"budget_bytes"`
	Sections        int   `json:"sections"`
	DecodedSections int64 `json:"decoded_sections"`
	DecodedBytes    int64 `json:"decoded_bytes"`
	CachedSections  int   `json:"cached_sections"`
	CachedBytes     int64 `json:"cached_bytes"`
	CacheHits       int64 `json:"cache_hits"`
	CacheMisses     int64 `json:"cache_misses"`
	Evictions       int64 `json:"evictions"`
}

// lazyMetrics converts core's stats to the JSON gauge shape; nil for eager
// cubes.
func lazyMetrics(st core.LazyStats, ok bool) *LazyMetrics {
	if !ok {
		return nil
	}
	return &LazyMetrics{
		Mapped:          st.Mapped,
		MappedBytes:     st.MappedBytes,
		BudgetBytes:     st.BudgetBytes,
		Sections:        st.Sections,
		DecodedSections: st.DecodedSections,
		DecodedBytes:    st.DecodedBytes,
		CachedSections:  st.CachedSections,
		CachedBytes:     st.CachedBytes,
		CacheHits:       st.CacheHits,
		CacheMisses:     st.CacheMisses,
		Evictions:       st.Evictions,
	}
}

// AppendMetrics are the streaming-append counters: how many deltas have
// been applied and what the most recent one cost.
type AppendMetrics struct {
	Count             int64   `json:"count"`
	LastDeltaMs       float64 `json:"last_delta_ms"`
	LastCellsTouched  int64   `json:"last_cells_touched"`
	LastCellsAdmitted int64   `json:"last_cells_admitted"`
	// LastReminedRestricted and LastPrefixesRemined report the last fold's
	// batch-proportional exception re-mining: how many touched cells took
	// the restricted path and how many moved flowgraph prefixes they
	// re-aggregated.
	LastReminedRestricted int64 `json:"last_cells_remined_restricted"`
	LastPrefixesRemined   int64 `json:"last_prefixes_remined"`
}

// IngestMetrics are the write-path gauges: group-commit shape (how well
// concurrent appends coalesce), WAL depth, and admission conflicts.
type IngestMetrics struct {
	// Groups and GroupedRequests count commit groups and the append
	// requests folded across them; GroupedRequests/Groups is the achieved
	// coalescing factor.
	Groups          int64 `json:"groups"`
	GroupedRequests int64 `json:"grouped_requests"`
	GroupP50        int   `json:"group_p50"`
	GroupMax        int   `json:"group_max"`
	LastGroupSize   int64 `json:"last_group_size"`
	// QueueDepth is the number of submitted-but-uncommitted items right now.
	QueueDepth int `json:"queue_depth"`
	// Execs counts reloads run on the commit loop.
	Execs int64 `json:"execs"`
	// WALEntries and WALBytes gauge the journal since the last reset.
	WALEntries int64 `json:"wal_entries"`
	WALBytes   int64 `json:"wal_bytes"`
	// StaleConflicts counts appends rejected because a reload swapped the
	// schema generation between parse and commit (409, retryable).
	StaleConflicts int64 `json:"stale_conflicts"`
}

// MetricsSnapshot is the GET /metrics response body.
type MetricsSnapshot struct {
	UptimeSeconds float64                 `json:"uptime_seconds"`
	Reloads       int64                   `json:"reloads"`
	Appends       AppendMetrics           `json:"appends"`
	Ingest        IngestMetrics           `json:"ingest"`
	Snapshot      SnapshotMetrics         `json:"snapshot"`
	Cache         CacheMetrics            `json:"cache"`
	Routes        map[string]RouteMetrics `json:"routes"`
}

// snapshot captures every counter for serialization.
func (m *metrics) snapshot() MetricsSnapshot {
	out := MetricsSnapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Reloads:       m.reloads.Load(),
		Appends: AppendMetrics{
			Count:                 m.appends.Load(),
			LastDeltaMs:           float64(m.lastDeltaNs.Load()) / 1e6,
			LastCellsTouched:      m.lastCellsTouched.Load(),
			LastCellsAdmitted:     m.lastCellsAdmitted.Load(),
			LastReminedRestricted: m.lastReminedRestricted.Load(),
			LastPrefixesRemined:   m.lastPrefixesRemined.Load(),
		},
		Ingest: IngestMetrics{
			LastGroupSize:  m.lastGroupSize.Load(),
			WALEntries:     m.walEntries.Load(),
			WALBytes:       m.walBytes.Load(),
			StaleConflicts: m.staleConflicts.Load(),
		},
		Routes: make(map[string]RouteMetrics),
	}
	hits, misses := m.cacheHits.Load(), m.cacheMisses.Load()
	out.Cache = CacheMetrics{Hits: hits, Misses: misses}
	if hits+misses > 0 {
		out.Cache.HitRatio = float64(hits) / float64(hits+misses)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for route, rs := range m.routes {
		rm := RouteMetrics{
			Count:   rs.count,
			Errors:  rs.errors,
			P50Ms:   rs.quantileMs(0.50),
			P99Ms:   rs.quantileMs(0.99),
			MaxMs:   float64(rs.maxNs) / 1e6,
			Buckets: make(map[string]int64, len(rs.buckets)),
		}
		if rs.count > 0 {
			rm.MeanMs = float64(rs.totalNs) / float64(rs.count) / 1e6
		}
		for i, n := range rs.buckets {
			if n == 0 {
				continue
			}
			if i < len(latencyBoundsMs) {
				rm.Buckets[formatBound(latencyBoundsMs[i])] = n
			} else {
				rm.Buckets["+inf"] = n
			}
		}
		out.Routes[route] = rm
	}
	return out
}

// formatBound renders a bucket bound as a stable JSON key: 0.05 → "0.05",
// 1 → "1".
func formatBound(ms float64) string {
	return strconv.FormatFloat(ms, 'g', -1, 64)
}
