package server

// POST /admin/append: streaming appends into the serving cube, the read
// side of the ingest write path (DESIGN.md §11). The handler parses the
// body against the serving schema and submits the batch to the group
// committer (internal/ingest); the commit loop folds each group's batches
// with one incr.ApplyDelta (exact against a full rebuild over the union),
// journals the folded batches in the WAL, and swaps the snapshot pointer
// atomically.
// Readers are never blocked: they stay on the snapshot they loaded, and the
// record store is copy-on-write (pathdb.Store), so a commit appends O(batch)
// records instead of copying the whole database.

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	"flowcube/internal/core"
	"flowcube/internal/incr"
	"flowcube/internal/ingest"
	"flowcube/internal/pathdb"
)

// DefaultMaxAppendBytes bounds an append request body when
// Config.MaxAppendBytes is zero.
const DefaultMaxAppendBytes = 64 << 20

// handleAppend parses the body as path-database text records (one
// `dim,...|loc:dur ...` line each, against the serving schema) and blocks
// until the commit group containing the batch has journaled, folded, and
// swapped — every request in a group is answered with the same committed
// snapshot's state.
func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	// Parse before submitting: reading the request is network I/O paced by
	// the client, and a slow peer must not stall the commit loop. The parse
	// runs against the current snapshot's schema; the batch carries that
	// snapshot's SchemaGen so a reload landing in between surfaces as a
	// clean retryable conflict instead of folding against a swapped schema.
	snap := s.holder.get()
	if snap.DB == nil {
		writeError(w, errNoAppendDB)
		return
	}
	batchDB, err := pathdb.Read(http.MaxBytesReader(w, r.Body, s.cfg.MaxAppendBytes), snap.DB.Schema)
	if err != nil {
		// An oversized body is a hard protocol violation (413), not a parse
		// error: MaxBytesReader has already closed the connection's intake,
		// and retrying the same payload cannot succeed.
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, &httpError{http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds the %d-byte append limit", mbe.Limit)})
			return
		}
		writeError(w, &httpError{http.StatusBadRequest, err.Error()})
		return
	}
	if batchDB.Len() == 0 {
		writeError(w, &httpError{http.StatusBadRequest,
			"empty batch: body must hold at least one record line (dim,...|loc:dur ...)"})
		return
	}

	p, err := s.committer.Submit(batchDB.Records, snap.SchemaGen)
	if err != nil {
		if errors.Is(err, ingest.ErrQueueFull) {
			// Admission control: the commit queue is at Config.MaxPending.
			// The batch was not accepted — shed load and invite a retry.
			w.Header().Set("Retry-After", "1")
			writeError(w, &httpError{http.StatusServiceUnavailable,
				"append queue is full; retry after the backlog drains"})
			return
		}
		// ErrClosed: the server is draining for shutdown.
		writeError(w, &httpError{http.StatusServiceUnavailable, "server is shutting down"})
		return
	}
	resp, err := p.Wait()
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

var errNoAppendDB = &httpError{http.StatusConflict,
	"serving snapshot has no path database (loaded from a saved cube); append needs a database-backed snapshot"}

// errStaleSchema is the parse-then-commit race surfaced cleanly: the
// snapshot was reloaded between parsing a batch and folding it, so the
// parsed node ids may no longer mean the same thing. 409 with a retry hint.
var errStaleSchema = &httpError{http.StatusConflict,
	"snapshot reloaded while the append was in flight; re-read the serving schema and retry the batch"}

// applyGroup is the committer's apply callback: it folds one commit group —
// one ApplyDelta over the concatenated records, then journal every folded
// batch in the WAL, fsync once, swap the snapshot — and resolves every
// request in the group. It runs on the commit loop, the only goroutine
// that writes the snapshot pointer, the record store, or the WAL.
//
// Ordering is fold-then-journal: a batch that cannot fold is never
// journaled, so the WAL only ever holds batches that folded cleanly once,
// and a fold failure is reported to the client with nothing durable left
// behind to replay (journal-first would brick startup on a deterministic
// fold error, or double-apply on a client retry). Durability is unchanged —
// a request is resolved only after its WAL entry is fsynced.
func (s *Server) applyGroup(group []*ingest.Pending) {
	snap := s.holder.get()

	// Admission: batches parsed against a reloaded-away schema conflict;
	// everything else in the group commits together.
	live := group[:0:0]
	for _, p := range group {
		if snap.DB == nil {
			p.Resolve(nil, errNoAppendDB)
			continue
		}
		if p.Tag != snap.SchemaGen {
			s.metrics.staleConflicts.Add(1)
			p.Resolve(nil, errStaleSchema)
			continue
		}
		live = append(live, p)
	}

	// Fold, ejecting bad batches: a *BatchError identifies one invalid
	// record, and one caller's bad batch must not fail the unrelated
	// requests grouped with it. Resolve the owner alone (with the record
	// index rebased to its own batch) and refold the remainder.
	start := time.Now()
	var elapsed time.Duration
	var fr *foldResult
	for {
		if len(live) == 0 {
			return
		}
		total := 0
		for _, p := range live {
			total += len(p.Records)
		}
		batch := make([]pathdb.Record, 0, total)
		for _, p := range live {
			batch = append(batch, p.Records...)
		}
		var err error
		fr, err = s.fold(snap, batch)
		if err == nil {
			elapsed = time.Since(start)
			break
		}
		var be *incr.BatchError
		if errors.As(err, &be) {
			if i, off := groupOwner(live, be.Index); i >= 0 {
				live[i].Resolve(nil, appendError(&incr.BatchError{Index: be.Index - off, Err: be.Err}))
				live = append(live[:i], live[i+1:]...)
				continue
			}
		}
		for _, p := range live {
			p.Resolve(nil, appendError(err))
		}
		return
	}

	// Durability: journal each folded batch, one fsync for the group. A
	// batch is acknowledged only after its WAL entry is stable, so a crash
	// between here and the snapshot swap replays it on restart. On a
	// journal failure nothing is published: the store reservation is
	// abandoned and the serving snapshot stands.
	if s.wal != nil {
		if err := s.journalGroup(snap, live); err != nil {
			s.logger.Printf("append: WAL journal failed: %v", err)
			fail := &httpError{http.StatusInternalServerError, fmt.Sprintf("journal append batch: %v", err)}
			for _, p := range live {
				p.Resolve(nil, fail)
			}
			return
		}
	}

	next := s.publish(snap, fr)
	stats := fr.stats
	s.holder.set(next)
	s.metrics.recordAppend(elapsed, stats)
	s.metrics.lastGroupSize.Store(int64(len(live)))
	s.logger.Printf("appended %d records (%d requests grouped): %d cells touched, %d admitted, %d restricted re-mines in %s",
		stats.BatchRecords, len(live), stats.CellsTouched, stats.CellsAdmitted, stats.CellsReminedRestricted, elapsed.Round(time.Microsecond))

	for _, p := range live {
		p.Resolve(map[string]any{
			"status":        "appended",
			"records":       len(p.Records),
			"group_records": stats.BatchRecords,
			"group_size":    len(live),
			"delta_ms":      float64(elapsed.Nanoseconds()) / 1e6,
			"stats":         stats,
			"cells":         next.Cube.NumCells(),
			"generation":    next.Gen,
		}, nil)
	}
}

// journalGroup appends each live batch to the WAL and makes the group
// durable with a single fsync.
func (s *Server) journalGroup(snap *Snapshot, live []*ingest.Pending) error {
	for _, p := range live {
		if err := s.wal.Append(snap.DB.Schema, p.Records); err != nil {
			return err
		}
	}
	if err := s.wal.Sync(); err != nil {
		return err
	}
	s.metrics.walEntries.Store(int64(s.wal.Entries()))
	s.metrics.walBytes.Store(s.wal.Size())
	return nil
}

// groupOwner maps a record index in the group's concatenated batch back to
// the request that contributed it, returning the request's position in live
// and the offset its batch starts at (-1, 0 when the index is out of range).
func groupOwner(live []*ingest.Pending, index int) (i, offset int) {
	off := 0
	for i, p := range live {
		if index < off+len(p.Records) {
			return i, off
		}
		off += len(p.Records)
	}
	return -1, 0
}

// foldResult is a folded-but-unpublished commit: the delta-patched cube,
// the record-store reservation extended with the batch, and the delta
// stats. publish commits it; dropping it instead abandons the reservation
// and leaves the committed store and serving snapshot untouched. The split
// lets applyGroup journal the group after the fold has validated it but
// before any state becomes visible.
type foldResult struct {
	cube    *core.Cube
	records []pathdb.Record
	stats   *incr.Stats
}

// fold applies one concatenated batch to a copy of the serving state and
// returns the unpublished result. Exactness comes from incr.ApplyDelta;
// O(batch) memory comes from patching a Materialize copy of the cube plus a
// copy-on-write reservation in the record store instead of duplicating the
// database.
func (s *Server) fold(snap *Snapshot, batch []pathdb.Record) (*foldResult, error) {
	// Materialize rather than Clone: a lazily served snapshot must be fully
	// decoded before delta-patching, and a corrupt section should fail the
	// append loudly instead of patching an empty skeleton.
	cube, err := snap.Cube.Materialize()
	if err != nil {
		return nil, &httpError{http.StatusInternalServerError,
			fmt.Sprintf("materialize serving snapshot for append: %v", err)}
	}
	db := &pathdb.DB{Schema: snap.DB.Schema, Records: s.store.Reserve(len(batch))}
	stats, err := incr.ApplyDelta(cube, db, batch)
	if err != nil {
		// The reservation is abandoned; the committed store is untouched.
		return nil, err
	}
	if s.cfg.PostAppend != nil {
		cube = s.cfg.PostAppend(cube)
	}
	return &foldResult{cube: cube, records: db.Records, stats: stats}, nil
}

// publish commits a fold's record reservation to the store and wraps the
// folded cube in the next snapshot, ready for the holder swap.
func (s *Server) publish(snap *Snapshot, fr *foldResult) *Snapshot {
	s.store.Commit(fr.records)
	next := newSnapshot(fr.cube, snap.Source, s.cfg.CacheSize, 0, snap.Bytes)
	next.DB = &pathdb.DB{Schema: snap.DB.Schema, Records: s.store.Committed()}
	next.Gen = snap.Gen + 1
	next.SchemaGen = snap.SchemaGen
	return next
}

// appendError maps delta-maintenance failures to HTTP statuses: bad batch
// records are the client's fault (400); a cube whose configuration cannot
// be delta-maintained is a state conflict (409).
func appendError(err error) error {
	var be *incr.BatchError
	switch {
	case errors.As(err, &be):
		return &httpError{http.StatusBadRequest, err.Error()}
	case errors.Is(err, incr.ErrAbsoluteMinCount),
		errors.Is(err, incr.ErrCustomMining),
		errors.Is(err, incr.ErrSchemaMismatch):
		return &httpError{http.StatusConflict, err.Error()}
	}
	return err
}
