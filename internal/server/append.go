package server

// POST /admin/append: streaming appends into the serving cube. The handler
// never edits the live snapshot — it clones the cube and the database,
// delta-maintains the clone with incr.ApplyDelta (exact against a full
// rebuild over the union), and swaps the snapshot pointer atomically, so
// in-flight readers finish against the snapshot they started with.

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	"flowcube/internal/incr"
	"flowcube/internal/pathdb"
)

// DefaultMaxAppendBytes bounds an append request body when
// Config.MaxAppendBytes is zero.
const DefaultMaxAppendBytes = 64 << 20

// handleAppend parses the body as path-database text records (one
// `dim,...|loc:dur ...` line each, against the serving schema), applies
// them as a delta, and swaps in the patched snapshot. Appends single-flight
// with reloads under adminMu.
func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	// Parse the body before taking adminMu: reading the request is network
	// I/O paced by the client, and a slow peer must not stall reloads or
	// other appends. The schema is fixed per source, so parsing against the
	// pre-lock snapshot is safe; a mid-flight swap would surface as a
	// *BatchError from ApplyDelta below.
	snap := s.holder.get()
	if snap.DB == nil {
		writeError(w, &httpError{http.StatusConflict,
			"serving snapshot has no path database (loaded from a saved cube); append needs a database-backed snapshot"})
		return
	}
	batchDB, err := pathdb.Read(http.MaxBytesReader(w, r.Body, s.cfg.MaxAppendBytes), snap.DB.Schema)
	if err != nil {
		// An oversized body is a hard protocol violation (413), not a parse
		// error: MaxBytesReader has already closed the connection's intake,
		// and retrying the same payload cannot succeed.
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, &httpError{http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds the %d-byte append limit", mbe.Limit)})
			return
		}
		writeError(w, &httpError{http.StatusBadRequest, err.Error()})
		return
	}
	if batchDB.Len() == 0 {
		writeError(w, &httpError{http.StatusBadRequest,
			"empty batch: body must hold at least one record line (dim,...|loc:dur ...)"})
		return
	}

	s.adminMu.Lock()
	defer s.adminMu.Unlock()

	// Re-fetch under the lock: a reload may have swapped the snapshot while
	// the body was streaming in.
	snap = s.holder.get()
	if snap.DB == nil {
		writeError(w, &httpError{http.StatusConflict,
			"serving snapshot has no path database (loaded from a saved cube); append needs a database-backed snapshot"})
		return
	}

	// Materialize rather than Clone: a lazily served snapshot must be fully
	// decoded before delta-patching, and a corrupt section should fail the
	// append loudly instead of patching an empty skeleton. It runs under
	// adminMu for the same reason ApplyDelta does below — the decode must
	// see the snapshot fetched under this lock, or a concurrent reload could
	// swap mid-materialize and the patch would target a stale cube.
	//flowlint:ignore lockblock materialize-patch-swap is single-flight by design; reads bypass adminMu via holder.get
	cube, err := snap.Cube.Materialize()
	if err != nil {
		writeError(w, &httpError{http.StatusInternalServerError,
			fmt.Sprintf("materialize serving snapshot for append: %v", err)})
		return
	}
	db := &pathdb.DB{Schema: snap.DB.Schema, Records: append([]pathdb.Record(nil), snap.DB.Records...)}
	start := time.Now()
	// adminMu is deliberately held across ApplyDelta: appends are
	// clone-patch-swap against the snapshot fetched above, so two appends
	// running concurrently would each patch their own clone and the second
	// swap would silently discard the first batch. Serializing admin
	// mutations here is the correctness mechanism (reads are never blocked —
	// they go through holder.get, not adminMu); TestAdminAppendSerialized
	// locks the no-lost-update behavior in.
	//flowlint:ignore lockblock single-flight by design: concurrent appends must queue or lose updates
	stats, err := incr.ApplyDelta(cube, db, batchDB.Records)
	if err != nil {
		writeError(w, appendError(err))
		return
	}
	elapsed := time.Since(start)
	if s.cfg.PostAppend != nil {
		cube = s.cfg.PostAppend(cube)
	}

	next := newSnapshot(cube, snap.Source, s.cfg.CacheSize, elapsed, snap.Bytes)
	next.DB = db
	s.holder.set(next)
	s.metrics.recordAppend(elapsed, stats)
	s.logger.Printf("appended %d records: %d cells touched, %d admitted in %s",
		stats.BatchRecords, stats.CellsTouched, stats.CellsAdmitted, elapsed.Round(time.Microsecond))
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "appended",
		"records":  stats.BatchRecords,
		"delta_ms": float64(elapsed.Nanoseconds()) / 1e6,
		"stats":    stats,
		"cells":    cube.NumCells(),
	})
}

// appendError maps delta-maintenance failures to HTTP statuses: bad batch
// records are the client's fault (400); a cube whose configuration cannot
// be delta-maintained is a state conflict (409).
func appendError(err error) error {
	var be *incr.BatchError
	switch {
	case errors.As(err, &be):
		return &httpError{http.StatusBadRequest, err.Error()}
	case errors.Is(err, incr.ErrAbsoluteMinCount),
		errors.Is(err, incr.ErrCustomMining),
		errors.Is(err, incr.ErrSchemaMismatch):
		return &httpError{http.StatusConflict, err.Error()}
	}
	return err
}
