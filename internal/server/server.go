// Package server is the online serving layer over materialized flowcubes:
// an HTTP/JSON API that loads a cube snapshot once (or builds it from a
// path database) and answers concurrent read traffic — the "materialize
// once, query many times" access pattern OLAP assumes, which the one-shot
// CLI tools cannot express.
//
// Endpoints:
//
//	GET  /v1/cell?cell=dim=concept,...&pathlevel=N[&format=dot]  flowgraph
//	     query with roll-up inference (core.Cube.Answer, OpCell)
//	GET  /v2/query        OLAP algebra: op=cell|rollup|drilldown|slice|dice
//	     with typed provenance; cells the materialization planner dropped
//	     are reconstructed exactly at query time (core.Cube.Answer)
//	GET  /v2/partial      one shard's local fold sources for a cell, used
//	     by the cluster router to reconstruct across shards
//	GET  /v1/summary      cuboid/cell census of the serving snapshot
//	GET  /v1/exceptions   most severe exceptions across the cube
//	GET  /v1/cuboids      full materialized-cuboid census (schemas + counts)
//	GET  /healthz         liveness plus snapshot identity
//	GET  /metrics         request counts, latency histograms, cache ratio
//	POST /admin/reload    re-run the loader and atomically swap the snapshot
//	POST /admin/append    delta-maintain the cube with new records
//	     (incr.ApplyDelta on a clone, then an atomic snapshot swap)
//
// The cube is held behind an atomic snapshot pointer (MVCC: readers load it
// once and are never blocked by writes); queries are answered through a
// per-snapshot LRU response cache with single-flight deduplication. Appends
// and reloads flow through a single-writer group-commit loop
// (internal/ingest): concurrent appends coalesce into one WAL-journaled
// delta fold per group, and the fold lands in a copy-on-write record store
// so committing costs O(batch), not O(database). Requests carry a context
// deadline, are logged, and the listener shuts down gracefully when the
// serve context is cancelled.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"flowcube/internal/core"
	"flowcube/internal/ingest"
	"flowcube/internal/pathdb"
)

// Config parameterizes the server. The zero value serves with defaults.
type Config struct {
	// RequestTimeout bounds each query request via its context; 0 means
	// DefaultRequestTimeout.
	RequestTimeout time.Duration
	// CacheSize is the per-snapshot response cache capacity in entries;
	// 0 means DefaultCacheSize, negative disables caching.
	CacheSize int
	// Logger receives one line per request and reload events; nil logs to
	// the standard logger. Use log.New(io.Discard, ...) to silence.
	Logger *log.Logger
	// MaxAppendBytes bounds a POST /admin/append request body; 0 means
	// DefaultMaxAppendBytes. Oversized bodies are rejected with 413.
	MaxAppendBytes int64
	// PostAppend, when set, transforms the delta-maintained cube before it
	// becomes the serving snapshot. Shard servers use it to drop state the
	// shard does not own after an append (cluster.ShardFilter); it must
	// return a cube safe to serve (the input is exclusively owned).
	PostAppend func(*core.Cube) *core.Cube
	// WALPath, when set, journals every accepted append batch to a
	// write-ahead log at this path before folding it, and replays intact
	// entries on startup — an acknowledged append survives a crash that
	// predates the next snapshot swap. Empty disables journaling.
	WALPath string
	// GroupLimit caps how many concurrent append requests coalesce into one
	// commit group (one WAL fsync + one delta fold). 0 means the ingest
	// default (64); 1 serializes appends, the baseline flowbench -ingest
	// compares against.
	GroupLimit int
	// MaxPending bounds the append commit queue: when MaxPending batches are
	// already waiting, POST /admin/append answers 503 with a Retry-After
	// header instead of queueing — a parked handler goroutine per queued
	// batch is the server's only ingest buffering, so an unbounded queue
	// under sustained overload grows without limit. 0 or negative means
	// unbounded, the historical behavior. Batches accepted before the queue
	// filled always commit and are acknowledged normally.
	MaxPending int
}

// Defaults for Config zero values.
const (
	DefaultRequestTimeout = 10 * time.Second
	DefaultCacheSize      = 1024
)

// Server serves read traffic over one cube snapshot at a time.
type Server struct {
	cfg     Config
	loader  Loader
	source  string
	holder  holder
	metrics *metrics
	logger  *log.Logger
	handler http.Handler

	// committer is the single-writer commit loop: appends and reloads all
	// run on it, so the snapshot pointer, the record store, and the WAL
	// have exactly one writing goroutine.
	committer *ingest.Committer
	// wal journals accepted batches before they fold; nil when
	// Config.WALPath is empty. Touched only on the commit loop.
	wal *ingest.WAL
	// store is the copy-on-write record store behind every snapshot's DB:
	// commits append into reserved tail capacity while readers keep their
	// capacity-clamped views. Replaced wholesale on reload (commit loop
	// only).
	store *pathdb.Store

	closeOnce sync.Once
	closeErr  error
}

// New loads the initial snapshot through loader and returns a ready server.
// source is a human-readable description of where snapshots come from
// (typically the file path), echoed by /healthz and /v1/summary.
func New(loader Loader, source string, cfg Config) (*Server, error) {
	return NewContext(context.Background(), loader, source, cfg)
}

// NewContext is New with a context covering startup: it cancels the WAL
// scan-and-replay between batches (the loader itself is not yet
// context-aware).
func NewContext(ctx context.Context, loader Loader, source string, cfg Config) (*Server, error) {
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = DefaultCacheSize
	}
	if cfg.MaxAppendBytes == 0 {
		cfg.MaxAppendBytes = DefaultMaxAppendBytes
	}
	s := &Server{
		cfg:     cfg,
		loader:  loader,
		source:  source,
		metrics: newMetrics(),
		logger:  cfg.Logger,
	}
	if s.logger == nil {
		s.logger = log.Default()
	}
	snap, err := s.load()
	if err != nil {
		return nil, err
	}
	s.installStore(snap)
	if cfg.WALPath != "" {
		snap, err = s.openWAL(ctx, snap)
		if err != nil {
			return nil, err
		}
	}
	s.holder.set(snap)
	s.committer = ingest.NewCommitter(ingest.Config{
		GroupLimit: cfg.GroupLimit,
		MaxPending: cfg.MaxPending,
		Apply:      s.applyGroup,
	})
	s.handler = s.routes()
	return s, nil
}

// installStore rehouses a freshly loaded snapshot's records in a new
// copy-on-write store, so subsequent append commits extend the store instead
// of copying the database. Commit-loop-only after startup.
func (s *Server) installStore(snap *Snapshot) {
	if snap.DB == nil {
		s.store = nil
		return
	}
	s.store = pathdb.NewStore(snap.DB.Records)
	snap.DB = &pathdb.DB{Schema: snap.DB.Schema, Records: s.store.Committed()}
}

// openWAL opens (or creates) the journal at Config.WALPath and replays any
// intact entries — batches that were acknowledged before a crash but whose
// snapshot swap never happened — through the ordinary fold path, returning
// the caught-up snapshot. Runs during New, before any request is served.
func (s *Server) openWAL(ctx context.Context, snap *Snapshot) (*Snapshot, error) {
	w, err := ingest.OpenContext(ctx, s.cfg.WALPath)
	if err != nil {
		return nil, fmt.Errorf("server: open WAL %s: %w", s.cfg.WALPath, err)
	}
	if torn := w.Torn(); torn != nil {
		s.logger.Printf("WAL %s: dropped torn tail: %v", s.cfg.WALPath, torn)
	}
	if w.Entries() > 0 {
		if snap.DB == nil {
			_ = w.Close()
			return nil, fmt.Errorf("server: WAL %s holds %d entries but the snapshot has no path database to replay them into",
				s.cfg.WALPath, w.Entries())
		}
		replayed, skipped, entry := 0, 0, 0
		err := w.ReplayContext(ctx, snap.DB.Schema, func(batch []pathdb.Record) error {
			entry++
			fr, ferr := s.fold(snap, batch)
			if ferr != nil {
				// Every journaled batch folded cleanly once before it was
				// acknowledged (applyGroup journals after the fold), so a
				// fold failure here means the base snapshot changed out
				// from under the journal — a replaced source file, say.
				// Skip the entry and keep the server bootable rather than
				// refusing to start over state the operator can't fix
				// without deleting the WAL by hand.
				skipped++
				s.logger.Printf("WAL %s: entry %d no longer folds against the loaded snapshot, skipping: %v",
					s.cfg.WALPath, entry-1, ferr)
				return nil
			}
			snap = s.publish(snap, fr)
			replayed++
			return nil
		})
		if err != nil {
			_ = w.Close()
			return nil, fmt.Errorf("server: replay WAL %s: %w", s.cfg.WALPath, err)
		}
		s.logger.Printf("replayed %d WAL entries from %s (%d skipped): %d cells",
			replayed, s.cfg.WALPath, skipped, snap.Cube.NumCells())
	}
	s.wal = w
	s.metrics.walEntries.Store(int64(w.Entries()))
	s.metrics.walBytes.Store(w.Size())
	return snap, nil
}

// Close drains the commit loop (in-flight appends resolve) and closes the
// WAL. Safe to call more than once; Serve calls it on shutdown.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		if s.committer != nil {
			s.committer.Close()
		}
		if s.wal != nil {
			s.closeErr = s.wal.Close()
		}
	})
	return s.closeErr
}

// load runs the loader once and wraps the result in a timed snapshot.
func (s *Server) load() (*Snapshot, error) {
	start := time.Now()
	cube, info, err := s.loader()
	if err != nil {
		return nil, err
	}
	snap := newSnapshot(cube, s.source, s.cfg.CacheSize, time.Since(start), info.Bytes)
	snap.DB = info.DB
	return snap, nil
}

// Snapshot returns the current serving snapshot.
func (s *Server) Snapshot() *Snapshot { return s.holder.get() }

// Metrics returns a point-in-time copy of the serving metrics, including
// the current snapshot's load gauges.
func (s *Server) Metrics() MetricsSnapshot {
	out := s.metrics.snapshot()
	if s.committer != nil {
		st := s.committer.Stats()
		out.Ingest.Groups = int64(st.Groups)
		out.Ingest.GroupedRequests = int64(st.Requests)
		out.Ingest.Execs = int64(st.Execs)
		out.Ingest.QueueDepth = st.QueueDepth
		out.Ingest.GroupP50 = st.GroupP50
		out.Ingest.GroupMax = st.GroupMax
	}
	if snap := s.holder.get(); snap != nil {
		out.Snapshot = SnapshotMetrics{
			LoadMs:   float64(snap.LoadDuration.Nanoseconds()) / 1e6,
			Bytes:    snap.Bytes,
			LoadedAt: snap.LoadedAt.UTC().Format(time.RFC3339),
			Lazy:     lazyMetrics(snap.Cube.LazyStats()),
		}
	}
	return out
}

// Handler returns the fully assembled HTTP handler (routing, logging,
// metrics, per-request timeouts).
func (s *Server) Handler() http.Handler { return s.handler }

func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	timeout := func(h http.HandlerFunc) http.Handler {
		// TimeoutHandler propagates the deadline through r.Context() and
		// answers 503 when a query overruns it.
		return http.TimeoutHandler(h, s.cfg.RequestTimeout,
			`{"error":"request timed out"}`)
	}
	mux.Handle("GET /v1/cell", timeout(s.handleCell))
	mux.Handle("GET /v1/summary", timeout(s.handleSummary))
	mux.Handle("GET /v1/exceptions", timeout(s.handleExceptions))
	mux.Handle("GET /v1/cuboids", timeout(s.handleCuboids))
	mux.Handle("GET /v2/query", timeout(s.handleQueryV2))
	mux.Handle("GET /v2/partial", timeout(s.handlePartial))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /admin/reload", s.handleReload)
	mux.HandleFunc("POST /admin/append", s.handleAppend)
	return s.instrument(mux)
}

// statusWriter captures the response status for logging and metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps the router with request logging and latency metrics,
// keyed by method+path (query strings excluded).
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		route := r.Method + " " + r.URL.Path
		s.metrics.observe(route, sw.status, elapsed)
		s.logger.Printf("%s %s %d %s", r.Method, r.URL.RequestURI(), sw.status, elapsed.Round(time.Microsecond))
	})
}

// httpError carries a status code through the cache-compute path.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func errorStatus(err error) int {
	var he *httpError
	if errors.As(err, &he) {
		return he.status
	}
	return http.StatusInternalServerError
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

func writeError(w http.ResponseWriter, err error) {
	writeJSON(w, errorStatus(err), map[string]string{"error": err.Error()})
}

// handleCell answers a flowgraph query. Identical queries are answered from
// the snapshot's LRU cache; concurrent identical misses share one
// computation.
func (s *Server) handleCell(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	cellSpec := q.Get("cell")
	format := q.Get("format")
	if format == "" {
		format = "json"
	}
	if format != "json" && format != "dot" {
		writeError(w, &httpError{http.StatusBadRequest, fmt.Sprintf("unknown format %q, want json or dot", format)})
		return
	}
	pathLevel := 0
	if pl := q.Get("pathlevel"); pl != "" {
		n, err := strconv.Atoi(pl)
		if err != nil {
			writeError(w, &httpError{http.StatusBadRequest, fmt.Sprintf("bad pathlevel %q", pl)})
			return
		}
		pathLevel = n
	}

	snap := s.holder.get()
	key := format + "|" + strconv.Itoa(pathLevel) + "|" + cellSpec
	v, hit, err := snap.cache.do(key, func() (*cached, error) {
		return computeCell(r.Context(), snap.Cube, cellSpec, pathLevel, format)
	})
	if err != nil {
		s.metrics.cacheMisses.Add(1)
		writeError(w, err)
		return
	}
	if hit {
		s.metrics.cacheHits.Add(1)
	} else {
		s.metrics.cacheMisses.Add(1)
	}
	if err := r.Context().Err(); err != nil {
		// The deadline fired while we computed; TimeoutHandler already
		// answered 503 and our write would be dropped.
		return
	}
	w.Header().Set("Content-Type", v.contentType)
	if hit {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	w.WriteHeader(v.status)
	w.Write(v.body) //nolint:errcheck
}

// computeCell resolves and renders one cell query; the result is cacheable
// (errors are not cached). The resolution is Cube.Answer's OpCell path: on a
// fully materialized cube it answers exactly as the old QueryGraph did, and
// on a planner-pruned cube it reconstructs dropped cells exactly from their
// materialized descendants, so /v1 responses over a pruned snapshot match
// the unpruned ones.
func computeCell(ctx context.Context, cube *core.Cube, cellSpec string, pathLevel int, format string) (*cached, error) {
	il, values, err := core.ParseCellSpec(cube.Schema, cellSpec)
	if err != nil {
		return nil, &httpError{http.StatusBadRequest, err.Error()}
	}
	if pathLevel < 0 || pathLevel >= len(cube.Symbols.PathLevels()) {
		return nil, &httpError{http.StatusBadRequest,
			fmt.Sprintf("pathlevel %d out of range, cube has %d path levels", pathLevel, len(cube.Symbols.PathLevels()))}
	}
	spec := core.CuboidSpec{Item: il, PathLevel: pathLevel}
	a, err := cube.Answer(ctx, core.Query{Op: core.OpCell, Spec: spec, Values: values})
	if err != nil {
		if !errors.Is(err, core.ErrCellNotFound) {
			return nil, err
		}
		// A lazily loaded cube answers "not found" both for genuinely absent
		// cells and when the section holding them failed to decode; the
		// sticky LazyErr disambiguates corruption (500) from absence (404).
		if err := cube.LazyErr(); err != nil {
			return nil, &httpError{http.StatusInternalServerError, err.Error()}
		}
		return nil, &httpError{http.StatusNotFound,
			fmt.Sprintf("no materialized cell answers %q (even by roll-up)", cellSpec)}
	}
	g, src, exact := a.Cells[0].Graph, a.Cells[0].Source, a.Cells[0].Exact
	if format == "dot" {
		name := cellSpec
		if name == "" {
			name = "apex"
		}
		return &cached{
			status:      http.StatusOK,
			contentType: "text/vnd.graphviz; charset=utf-8",
			body:        []byte(g.DOT(name)),
		}, nil
	}
	resp := CellResponse{
		Cell:      core.FormatCell(cube.Schema, values),
		PathLevel: pathLevel,
		Exact:     exact,
		Source:    renderCellRef(cube, src),
		Graph:     renderGraph(cube.Schema.Location, g),
	}
	body, err := json.MarshalIndent(resp, "", "  ")
	if err != nil {
		return nil, err
	}
	return &cached{status: http.StatusOK, contentType: "application/json", body: body}, nil
}

// checkLazy reports a lazily loaded snapshot's sticky decode error, if any,
// as a 500. The error-less cube walks (summaries, exceptions, roll-ups)
// degrade to empty answers when a mapped section turns out corrupt; the
// post-render check here keeps the server from passing that degradation off
// as a legitimately small cube.
func checkLazy(w http.ResponseWriter, snap *Snapshot) bool {
	if err := snap.Cube.LazyErr(); err != nil {
		writeError(w, &httpError{http.StatusInternalServerError, err.Error()})
		return false
	}
	return true
}

func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request) {
	snap := s.holder.get()
	resp := renderSummary(snap)
	if !checkLazy(w, snap) {
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCuboids(w http.ResponseWriter, r *http.Request) {
	snap := s.holder.get()
	resp := renderCuboids(snap)
	if !checkLazy(w, snap) {
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleExceptions(w http.ResponseWriter, r *http.Request) {
	k := 20
	if kq := r.URL.Query().Get("k"); kq != "" {
		n, err := strconv.Atoi(kq)
		if err != nil || n < 0 {
			writeError(w, &httpError{http.StatusBadRequest, fmt.Sprintf("bad k %q", kq)})
			return
		}
		k = n
	}
	snap := s.holder.get()
	resp := renderExceptions(snap.Cube, k)
	if !checkLazy(w, snap) {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"exceptions": resp,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.holder.get()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"source":    snap.Source,
		"loaded_at": snap.LoadedAt.UTC().Format(time.RFC3339),
		"cells":     snap.Cube.NumCells(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

// handleReload re-runs the loader and swaps the serving snapshot. In-flight
// queries keep the snapshot (and cache) they started with. The swap runs on
// the commit loop (committer.Exec), serialized against append groups, so the
// snapshot pointer and record store keep a single writer. Reload discards
// records appended since the last load — it rebuilds from the loader's
// source of truth — so the WAL is reset too: replaying the discarded appends
// on a later restart would double-apply them. Batches parsed against the
// pre-reload snapshot are fenced off by the SchemaGen bump (409 at commit).
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	var snap *Snapshot
	var loadErr error
	err := s.committer.Exec(func() {
		next, err := s.load()
		if err != nil {
			loadErr = err
			return
		}
		prev := s.holder.get()
		next.Gen = prev.Gen + 1
		next.SchemaGen = prev.SchemaGen + 1
		s.installStore(next)
		if s.wal != nil {
			if err := s.wal.Reset(); err != nil {
				loadErr = fmt.Errorf("reset WAL after reload: %w", err)
				return
			}
			s.metrics.walEntries.Store(0)
			s.metrics.walBytes.Store(s.wal.Size())
		}
		s.holder.set(next)
		snap = next
	})
	if err != nil {
		writeError(w, &httpError{http.StatusServiceUnavailable, "server is shutting down"})
		return
	}
	if loadErr != nil {
		writeError(w, fmt.Errorf("reload: %w", loadErr))
		return
	}
	s.metrics.reloads.Add(1)
	s.logger.Printf("reloaded snapshot from %s: %d cells, %d bytes in %s",
		snap.Source, snap.Cube.NumCells(), snap.Bytes, snap.LoadDuration.Round(time.Microsecond))
	// A lazy open maps the file and decodes nothing, so mapped_bytes is the
	// whole snapshot and decoded_bytes starts near zero; an eager open holds
	// the full decoded cube, reported as decoded_bytes with nothing mapped.
	lazy, mapped, decoded := false, int64(0), snap.Bytes
	if st, ok := snap.Cube.LazyStats(); ok {
		lazy, mapped, decoded = true, st.MappedBytes, st.DecodedBytes
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "reloaded",
		"cells":          snap.Cube.NumCells(),
		"loaded_at":      snap.LoadedAt.UTC().Format(time.RFC3339),
		"load_ms":        float64(snap.LoadDuration.Nanoseconds()) / 1e6,
		"snapshot_bytes": snap.Bytes,
		"lazy":           lazy,
		"mapped_bytes":   mapped,
		"decoded_bytes":  decoded,
	})
}

// Serve accepts connections on ln until ctx is cancelled, then shuts down
// gracefully (draining in-flight requests, bounded by RequestTimeout).
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		_ = s.Close() // the listener error is the actionable one
		return err
	case <-ctx.Done():
		// WithoutCancel: ctx is already done here; the drain deadline must
		// not inherit its cancellation or Shutdown would return immediately.
		shutdownCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), s.cfg.RequestTimeout)
		defer cancel()
		err := srv.Shutdown(shutdownCtx)
		<-errc // Serve has returned http.ErrServerClosed
		if cerr := s.Close(); err == nil {
			err = cerr
		}
		return err
	}
}

// ListenAndServe binds addr and calls Serve.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.logger.Printf("listening on %s", ln.Addr())
	return s.Serve(ctx, ln)
}
