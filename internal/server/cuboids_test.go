package server

import (
	"net/http"
	"strings"
	"testing"

	"flowcube/internal/core"
	"flowcube/internal/hierarchy"
	"flowcube/internal/paperex"
	"flowcube/internal/pathdb"
	"flowcube/internal/transact"
)

// TestCuboidsCensus pins the GET /v1/cuboids shape: the full cuboid list in
// CuboidSummaries order (including empty cuboids), plus the cube-identity
// fields a cluster router compares across shards at startup.
func TestCuboidsCensus(t *testing.T) {
	_, cube := buildExampleCube(t)
	s := newTestServer(t, cube, quietConfig())

	rec, body := get(t, s.Handler(), "/v1/cuboids")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if body["source"] != "test" {
		t.Errorf("source = %v, want test", body["source"])
	}
	if body["min_count"].(float64) != 2 {
		t.Errorf("min_count = %v, want 2", body["min_count"])
	}
	if body["path_levels"].(float64) != 2 {
		t.Errorf("path_levels = %v, want 2 (base + transport)", body["path_levels"])
	}
	dims := body["dimensions"].([]any)
	if len(dims) != len(cube.Schema.Dims) {
		t.Fatalf("dimensions = %v, want %d entries", dims, len(cube.Schema.Dims))
	}
	for i, h := range cube.Schema.Dims {
		if dims[i] != h.Dimension() {
			t.Errorf("dimensions[%d] = %v, want %s", i, dims[i], h.Dimension())
		}
	}
	if body["cells"].(float64) != float64(cube.NumCells()) {
		t.Errorf("cells = %v, want %d", body["cells"], cube.NumCells())
	}

	// Unlike /v1/summary, the census is exhaustive: one entry per planned
	// cuboid, empty or not, in deterministic summary order.
	summaries := cube.CuboidSummaries()
	cuboids := body["cuboids"].([]any)
	if len(cuboids) != len(summaries) {
		t.Fatalf("census lists %d cuboids, plan has %d", len(cuboids), len(summaries))
	}
	var total float64
	for i, raw := range cuboids {
		cj := raw.(map[string]any)
		if cj["key"] != summaries[i].Key {
			t.Errorf("cuboids[%d].key = %v, want %s", i, cj["key"], summaries[i].Key)
		}
		if cj["cells"].(float64) != float64(summaries[i].Cells) {
			t.Errorf("cuboids[%d].cells = %v, want %d", i, cj["cells"], summaries[i].Cells)
		}
		total += cj["cells"].(float64)
	}
	if total != float64(cube.NumCells()) {
		t.Errorf("census cell total %v, cube holds %d", total, cube.NumCells())
	}
}

// TestAppendBodyLimit checks Config.MaxAppendBytes: a body over the cap is
// refused with 413 and the serving snapshot stays untouched. The limit is
// set to exactly one record line so the truncated prefix still parses and
// the size violation — not a parse error — is what surfaces.
func TestAppendBodyLimit(t *testing.T) {
	ex := paperex.New()
	plan := transact.Plan{PathLevels: []pathdb.PathLevel{ex.BasePathLevel()}}
	cube, err := core.Build(ex.DB, core.Config{MinCount: 2, Plan: plan, DeltaLedger: true})
	if err != nil {
		t.Fatal(err)
	}
	line := "tennis,nike|f:1 s:2\n"
	cfg := quietConfig()
	cfg.MaxAppendBytes = int64(len(line))
	s, err := New(func() (*core.Cube, LoadInfo, error) {
		return cube, LoadInfo{DB: ex.DB}, nil
	}, "test", cfg)
	if err != nil {
		t.Fatal(err)
	}

	rec, body := postBody(t, s.Handler(), "/admin/append", line+line)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413: %s", rec.Code, rec.Body.String())
	}
	msg := body["error"].(string)
	if !strings.Contains(msg, "exceeds the 20-byte append limit") {
		t.Errorf("413 error %q does not name the limit", msg)
	}
	if got := s.Snapshot().DB.Len(); got != ex.DB.Len() {
		t.Errorf("rejected append changed the database: %d records, want %d", got, ex.DB.Len())
	}

	// At the cap exactly, the append goes through.
	if rec, _ := postBody(t, s.Handler(), "/admin/append", line); rec.Code != http.StatusOK {
		t.Errorf("at-limit body: status %d, want 200: %s", rec.Code, rec.Body.String())
	}
}

// TestPostAppendHook checks that Config.PostAppend transforms the
// delta-maintained cube before the snapshot swap — the mechanism shard
// servers use to re-prune foreign cells after every append.
func TestPostAppendHook(t *testing.T) {
	ex := paperex.New()
	plan := transact.Plan{PathLevels: []pathdb.PathLevel{ex.BasePathLevel()}}
	cube, err := core.Build(ex.DB, core.Config{MinCount: 2, Plan: plan, DeltaLedger: true})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	cfg := quietConfig()
	cfg.PostAppend = func(c *core.Cube) *core.Cube {
		calls++
		return c.FilterCells(func([]hierarchy.NodeID) bool { return false })
	}
	s, err := New(func() (*core.Cube, LoadInfo, error) {
		return cube, LoadInfo{DB: ex.DB}, nil
	}, "test", cfg)
	if err != nil {
		t.Fatal(err)
	}

	rec, _ := postBody(t, s.Handler(), "/admin/append", "tennis,nike|f:1 s:2\n")
	if rec.Code != http.StatusOK {
		t.Fatalf("append: status %d: %s", rec.Code, rec.Body.String())
	}
	if calls != 1 {
		t.Fatalf("PostAppend ran %d times, want 1", calls)
	}
	if got := s.Snapshot().Cube.NumCells(); got != 0 {
		t.Errorf("snapshot has %d cells; the drop-everything hook's result was not installed", got)
	}
	// The hook only shapes the swapped-in cube; the loader's cube is shared
	// and must stay intact.
	if cube.NumCells() == 0 {
		t.Error("PostAppend mutated the pre-append cube")
	}
}
