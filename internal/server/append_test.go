package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"flowcube/internal/core"
	"flowcube/internal/paperex"
	"flowcube/internal/pathdb"
	"flowcube/internal/transact"
)

func postBody(t testing.TB, h http.Handler, url, body string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, url, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var parsed map[string]any
	if strings.HasPrefix(rec.Header().Get("Content-Type"), "application/json") {
		if err := json.Unmarshal(rec.Body.Bytes(), &parsed); err != nil {
			t.Fatalf("POST %s: bad JSON: %v\n%s", url, err, rec.Body.String())
		}
	}
	return rec, parsed
}

// TestAdminAppend drives the streaming-append flow: serve a cube built over
// a prefix of the running example, POST the remaining records, and check
// the swapped snapshot matches a full build over everything — byte-exact
// under Save.
func TestAdminAppend(t *testing.T) {
	ex := paperex.New()
	plan := transact.Plan{PathLevels: []pathdb.PathLevel{ex.BasePathLevel(), ex.TransportPathLevel()}}
	cfg := core.Config{MinCount: 2, Plan: plan, DeltaLedger: true}

	full, err := core.Build(ex.DB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := full.Save(&want); err != nil {
		t.Fatal(err)
	}

	split := ex.DB.Len() - 3
	prefix := &pathdb.DB{Schema: ex.DB.Schema, Records: append([]pathdb.Record(nil), ex.DB.Records[:split]...)}
	cube, err := core.Build(prefix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(func() (*core.Cube, LoadInfo, error) {
		return cube, LoadInfo{DB: prefix}, nil
	}, "test", quietConfig())
	if err != nil {
		t.Fatal(err)
	}

	var batch bytes.Buffer
	batchDB := &pathdb.DB{Schema: ex.DB.Schema, Records: ex.DB.Records[split:]}
	if _, err := batchDB.WriteTo(&batch); err != nil {
		t.Fatal(err)
	}
	rec, body := postBody(t, s.Handler(), "/admin/append", batch.String())
	if rec.Code != http.StatusOK {
		t.Fatalf("append: status %d: %s", rec.Code, rec.Body.String())
	}
	if body["status"] != "appended" || body["records"] != float64(3) {
		t.Errorf("append response = %v", body)
	}

	snap := s.Snapshot()
	if snap.Cube == cube {
		t.Fatal("append mutated the serving snapshot in place instead of swapping")
	}
	if snap.DB.Len() != ex.DB.Len() {
		t.Errorf("swapped snapshot DB has %d records, want %d", snap.DB.Len(), ex.DB.Len())
	}
	var got bytes.Buffer
	if err := snap.Cube.Save(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Error("appended snapshot differs from a full build over the union database")
	}

	m := s.Metrics()
	if m.Appends.Count != 1 {
		t.Errorf("appends.count = %d, want 1", m.Appends.Count)
	}
	if m.Appends.LastDeltaMs <= 0 {
		t.Errorf("appends.last_delta_ms = %g, want > 0", m.Appends.LastDeltaMs)
	}
	if m.Appends.LastCellsTouched <= 0 {
		t.Errorf("appends.last_cells_touched = %d, want > 0", m.Appends.LastCellsTouched)
	}
}

func TestAdminAppendErrors(t *testing.T) {
	ex := paperex.New()
	plan := transact.Plan{PathLevels: []pathdb.PathLevel{ex.BasePathLevel()}}

	// A snapshot loaded without a path database cannot append.
	_, cubeOnly := buildExampleCube(t)
	s := newTestServer(t, cubeOnly, quietConfig())
	rec, _ := postBody(t, s.Handler(), "/admin/append", "tennis,nike|f:1 s:2\n")
	if rec.Code != http.StatusConflict {
		t.Errorf("append without DB: status %d, want 409", rec.Code)
	}

	// A database-backed snapshot rejects malformed and empty bodies.
	cube, err := core.Build(ex.DB, core.Config{MinCount: 2, Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	s, err = New(func() (*core.Cube, LoadInfo, error) {
		return cube, LoadInfo{DB: ex.DB}, nil
	}, "test", quietConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rec, _ := postBody(t, s.Handler(), "/admin/append", "not a record line\n"); rec.Code != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", rec.Code)
	}
	if rec, _ := postBody(t, s.Handler(), "/admin/append", "# comments only\n"); rec.Code != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", rec.Code)
	}

	// A cube built with a fractional threshold is not delta-maintainable.
	fractional, err := core.Build(ex.DB, core.Config{MinSupport: 0.25, Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	s, err = New(func() (*core.Cube, LoadInfo, error) {
		return fractional, LoadInfo{DB: ex.DB}, nil
	}, "test", quietConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rec, _ := postBody(t, s.Handler(), "/admin/append", "tennis,nike|f:1 s:2\n"); rec.Code != http.StatusConflict {
		t.Errorf("fractional cube: status %d, want 409", rec.Code)
	}
}

// TestAdminAppendSerialized guards the no-lost-updates contract of the
// group committer: concurrent appends coalesce into commit groups on a
// single-writer loop instead of racing clone-patch-swap, so every batch
// lands exactly once however the groups form. Fire the remaining records as
// concurrent single-record batches and require every one to land.
func TestAdminAppendSerialized(t *testing.T) {
	ex := paperex.New()
	plan := transact.Plan{PathLevels: []pathdb.PathLevel{ex.BasePathLevel(), ex.TransportPathLevel()}}
	cfg := core.Config{MinCount: 2, Plan: plan, DeltaLedger: true}

	split := ex.DB.Len() - 3
	prefix := &pathdb.DB{Schema: ex.DB.Schema, Records: append([]pathdb.Record(nil), ex.DB.Records[:split]...)}
	cube, err := core.Build(prefix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(func() (*core.Cube, LoadInfo, error) {
		return cube, LoadInfo{DB: prefix}, nil
	}, "test", quietConfig())
	if err != nil {
		t.Fatal(err)
	}

	rest := ex.DB.Records[split:]
	var wg sync.WaitGroup
	errs := make([]string, len(rest))
	for i, r := range rest {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var batch bytes.Buffer
			one := &pathdb.DB{Schema: ex.DB.Schema, Records: []pathdb.Record{r}}
			if _, err := one.WriteTo(&batch); err != nil {
				errs[i] = err.Error()
				return
			}
			rec, _ := postBody(t, s.Handler(), "/admin/append", batch.String())
			if rec.Code != http.StatusOK {
				errs[i] = rec.Body.String()
			}
		}()
	}
	wg.Wait()
	for i, e := range errs {
		if e != "" {
			t.Fatalf("concurrent append %d failed: %s", i, e)
		}
	}

	snap := s.Snapshot()
	if snap.DB.Len() != ex.DB.Len() {
		t.Fatalf("after %d concurrent appends, snapshot DB has %d records, want %d (a batch was lost)",
			len(rest), snap.DB.Len(), ex.DB.Len())
	}
	m := s.Metrics()
	// Appends.Count counts folds (one per commit group), so coalescing can
	// make it smaller than the request count — never zero, never larger.
	if m.Appends.Count < 1 || m.Appends.Count > int64(len(rest)) {
		t.Errorf("appends.count = %d, want 1..%d", m.Appends.Count, len(rest))
	}
	if m.Ingest.GroupedRequests != int64(len(rest)) {
		t.Errorf("ingest.grouped_requests = %d, want %d", m.Ingest.GroupedRequests, len(rest))
	}
}
