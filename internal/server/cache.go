package server

import (
	"container/list"
	"sync"
)

// Response cache for the query endpoints: a fixed-capacity LRU over
// rendered responses, with single-flight deduplication so a thundering herd
// of identical cell queries computes the answer once. Each snapshot owns
// its own cache (see Snapshot), so a hot reload naturally invalidates every
// cached response without a clear/race dance.

// cached is one rendered response: everything a handler needs to replay it.
type cached struct {
	status      int
	contentType string
	body        []byte
}

// lru is a mutex-guarded LRU map with single-flight computation. A
// capacity <= 0 disables storage (every call recomputes) but keeps the
// single-flight deduplication.
type lru struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used
	items    map[string]*list.Element
	inflight map[string]*flight
}

type lruEntry struct {
	key string
	val *cached
}

// flight is one in-progress computation; waiters block on done.
type flight struct {
	done chan struct{}
	val  *cached
	err  error
}

func newLRU(capacity int) *lru {
	return &lru{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[string]*list.Element),
		inflight: make(map[string]*flight),
	}
}

// do returns the response for key, computing it with fn on a miss.
// Concurrent callers for the same key share one fn call; hit reports
// whether the caller avoided computing (cache hit or shared flight).
// Errors are never cached.
func (c *lru) do(key string, fn func() (*cached, error)) (v *cached, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		v := el.Value.(*lruEntry).val
		c.mu.Unlock()
		return v, true, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, false, f.err
		}
		return f.val, true, nil
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	f.val, f.err = fn()

	c.mu.Lock()
	delete(c.inflight, key)
	if f.err == nil && c.capacity > 0 {
		c.items[key] = c.order.PushFront(&lruEntry{key: key, val: f.val})
		for len(c.items) > c.capacity {
			last := c.order.Back()
			c.order.Remove(last)
			delete(c.items, last.Value.(*lruEntry).key)
		}
	}
	c.mu.Unlock()
	close(f.done)
	return f.val, false, f.err
}

// len reports the number of stored responses.
func (c *lru) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}
