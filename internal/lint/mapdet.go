package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// mapdet guards the byte-determinism of everything the flowcube system
// emits: persisted snapshots (encoding/gob in core.Save), HTTP response
// bodies (/v1/summary, /v1/cell), digests, and returned slices that callers
// compare or serialize. Go randomizes map iteration order, so a
// `for range m` whose body feeds an encoder or builds an output slice
// produces a different byte stream on every run unless the iteration (or
// the collected result) is explicitly sorted.
//
// Three write-shapes are flagged inside a range-over-map body:
//
//  1. direct encode/write calls — methods named Encode, Write,
//     WriteString, WriteByte, WriteRune, WriteTo, or Sum, and the
//     fmt.Fprint*/fmt.Print* family — which serialize in iteration order;
//  2. appends that escape — v = append(v, ...) where v is mentioned by a
//     later return statement or passed to a later encode call — unless a
//     sort call (sort.* or slices.Sort*) over v appears between the loop
//     and that use;
//  3. floating-point accumulation (x += ..., x = x + ...) — FP addition is
//     not associative, so even an order-independent *set* of addends yields
//     different low bits per iteration order; KL divergences and means
//     computed this way leak nondeterminism into persisted similarities.
//
// Counters and max/min folds over maps are order-independent and are not
// flagged. The fix is the pattern core.Cuboid.SortedCells and
// stats.Multinomial.Outcomes already use: collect keys, sort, iterate the
// sorted slice.

// MapDet flags nondeterministic map iteration feeding encoders, returned
// slices, or floating-point accumulators.
var MapDet = &Analyzer{
	Name: "mapdet",
	Doc:  "flags for-range over maps whose iteration order leaks into encoders, returned slices, or float accumulators",
	Run:  runMapDet,
}

var encodeMethodNames = map[string]bool{
	"Encode":      true,
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"WriteTo":     true,
	"Sum":         true,
}

var fmtWriteFuncs = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

func runMapDet(pass *Pass) []Diagnostic {
	var diags []Diagnostic
	for _, file := range pass.Files {
		// Functions are analyzed one at a time so post-loop context (sorts,
		// returns, encodes) is visible.
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			diags = append(diags, mapDetFunc(pass, body)...)
			return true
		})
	}
	return diags
}

// mapDetFunc inspects one function body. Nested function literals are
// skipped here (the outer Inspect visits them with their own context).
func mapDetFunc(pass *Pass, body *ast.BlockStmt) []Diagnostic {
	var diags []Diagnostic
	var ranges []*ast.RangeStmt
	inspectShallow(body, func(n ast.Node) bool {
		if r, ok := n.(*ast.RangeStmt); ok && isMap(pass.Info.TypeOf(r.X)) {
			ranges = append(ranges, r)
		}
		return true
	})
	for _, r := range ranges {
		diags = append(diags, mapDetRange(pass, body, r)...)
	}
	return diags
}

// inspectShallow walks n but does not descend into nested function
// literals.
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}

func mapDetRange(pass *Pass, funcBody *ast.BlockStmt, r *ast.RangeStmt) []Diagnostic {
	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
	}

	// Appended-to roots pending an escape check: root ident name → position
	// of the first append.
	appended := map[string]token.Pos{}

	inspectShallow(r.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.CallExpr:
			if name, ok := encodeCallName(pass, stmt); ok {
				report(stmt.Pos(),
					"%s inside range over map: output depends on map iteration order; iterate sorted keys instead", name)
			}
		case *ast.AssignStmt:
			for i, lhs := range stmt.Lhs {
				if i < len(stmt.Rhs) {
					if call, ok := ast.Unparen(stmt.Rhs[i]).(*ast.CallExpr); ok && isBuiltinAppend(pass, call) {
						if root := rootIdent(lhs); root != nil {
							if _, seen := appended[root.Name]; !seen {
								appended[root.Name] = stmt.Pos()
							}
							continue
						}
					}
				}
				if isFloatAccum(pass, stmt, i, lhs) {
					report(stmt.Pos(),
						"floating-point accumulation over map iteration: addition order changes the result bits; iterate outcomes in sorted order")
				}
			}
		}
		return true
	})

	for root, pos := range appended {
		if use, ok := escapeUse(pass, funcBody, r, root); ok && !sortedBetween(pass, funcBody, r, use, root) {
			report(pos,
				"slice %s is built in map iteration order and later %s; sort it (or the keys) before use", root, use.kind)
		}
	}
	return diags
}

// encodeCallName classifies calls that serialize state in call order.
func encodeCallName(pass *Pass, call *ast.CallExpr) (string, bool) {
	fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	// Method on some value: treat every Write/Encode-family method as
	// serializing in call order.
	if encodeMethodNames[fun.Sel.Name] {
		if sel := pass.Info.Selections[fun]; sel != nil && sel.Kind() == types.MethodVal {
			return "call to " + fun.Sel.Name, true
		}
	}
	// Package-qualified fmt writer (fmt.Fprintf and friends).
	if fmtWriteFuncs[fun.Sel.Name] && calleePkgPath(pass.Info, call) == "fmt" {
		return "call to fmt." + fun.Sel.Name, true
	}
	return "", false
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := pass.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// isFloatAccum reports whether the i-th assignment target accumulates a
// floating-point value (x += e, x -= e, x *= e, or x = x + e).
func isFloatAccum(pass *Pass, stmt *ast.AssignStmt, i int, lhs ast.Expr) bool {
	if !isFloat(pass.Info.TypeOf(lhs)) {
		return false
	}
	switch stmt.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return true
	case token.ASSIGN:
		if i >= len(stmt.Rhs) {
			return false
		}
		bin, ok := ast.Unparen(stmt.Rhs[i]).(*ast.BinaryExpr)
		if !ok || (bin.Op != token.ADD && bin.Op != token.SUB && bin.Op != token.MUL) {
			return false
		}
		lroot := rootIdent(lhs)
		xroot, yroot := rootIdent(bin.X), rootIdent(bin.Y)
		return lroot != nil &&
			((xroot != nil && xroot.Name == lroot.Name) || (yroot != nil && yroot.Name == lroot.Name))
	}
	return false
}

// escape describes how a loop-built slice leaves the function.
type escape struct {
	kind string // "returned" or "encoded"
	pos  token.Pos
}

// escapeUse looks for a use of root after the range loop that makes
// iteration order observable: a return statement mentioning it, or an
// encode call taking it.
func escapeUse(pass *Pass, funcBody *ast.BlockStmt, r *ast.RangeStmt, root string) (escape, bool) {
	var found escape
	var ok bool
	inspectShallow(funcBody, func(n ast.Node) bool {
		if n == nil || ok {
			return false
		}
		if n.Pos() < r.End() {
			return true // only statements after the loop matter
		}
		switch stmt := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range stmt.Results {
				if mentionsIdentObservably(pass, res, root) {
					found, ok = escape{kind: "returned", pos: stmt.Pos()}, true
				}
			}
		case *ast.CallExpr:
			if _, enc := encodeCallName(pass, stmt); enc {
				for _, arg := range stmt.Args {
					if mentionsIdent(arg, root) {
						found, ok = escape{kind: "encoded", pos: stmt.Pos()}, true
					}
				}
			}
		}
		return !ok
	})
	// Named results make a bare return an escape too; handled by the
	// mention check only when explicit. Keep conservative.
	return found, ok
}

// sortedBetween reports whether a sort call over root appears after the
// loop and before the escaping use.
func sortedBetween(pass *Pass, funcBody *ast.BlockStmt, r *ast.RangeStmt, use escape, root string) bool {
	sorted := false
	inspectShallow(funcBody, func(n ast.Node) bool {
		if sorted || n == nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if call.Pos() < r.End() || call.Pos() > use.pos {
			return true
		}
		pkg := calleePkgPath(pass.Info, call)
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if mentionsIdent(arg, root) {
				sorted = true
			}
		}
		return !sorted
	})
	return sorted
}

func mentionsIdent(e ast.Expr, name string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

// mentionsIdentObservably is mentionsIdent, except that mentions inside
// len(x)/cap(x) do not count: those observe only the size, which is
// independent of iteration order.
func mentionsIdentObservably(pass *Pass, e ast.Expr, name string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if id, isID := ast.Unparen(call.Fun).(*ast.Ident); isID {
				if b, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin &&
					(b.Name() == "len" || b.Name() == "cap") {
					return false
				}
			}
		}
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}
