package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// errpath keeps persistence and I/O paths honest about failure. A cube
// snapshot that half-saved because a Close error was dropped, a path
// database whose final Flush failed silently, a CLI that ignored its flag
// parser — all corrupt downstream state without a trace. The analyzer
// flags any *implicitly* discarded error: an expression statement (or
// defer/go) whose call returns an error that nothing receives.
//
// Explicit discards stay legal and visible: `_ = f.Close()` says "I
// considered this error and chose to drop it" and is the idiomatic fix for
// best-effort cleanup on read-only files. The conventional
// //nolint:errcheck (and //flowlint:ignore errpath) comments suppress a
// finding in place.
//
// Exemptions, to keep the signal high:
//   - fmt.Print/Printf/Println — terminal chatter, errors unactionable;
//   - fmt.Fprint* into strings.Builder, bytes.Buffer, or os.Stdout/Stderr —
//     in-memory sinks never fail, and stdout failures are unactionable;
//   - fmt.Fprint* into a destination typed as an interface (io.Writer) —
//     the report-rendering convention throughout cmd/* and internal/bench;
//     the sink is the caller's choice and in practice a standard stream;
//   - methods on strings.Builder and bytes.Buffer (Write* are documented
//     to always return a nil error).
//
// fmt.Fprint* into a concrete failing writer (*os.File other than the
// standard streams, *bufio.Writer, net.Conn) is flagged: those are
// precisely the persistence paths that lose data.

// ErrPath flags implicitly discarded error results.
var ErrPath = &Analyzer{
	Name: "errpath",
	Doc:  "flags call statements that silently discard an error result; handle it or assign to _",
	Run:  runErrPath,
}

func runErrPath(pass *Pass) []Diagnostic {
	var diags []Diagnostic
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				if c, ok := ast.Unparen(stmt.X).(*ast.CallExpr); ok {
					call = c
				}
			case *ast.DeferStmt:
				call = stmt.Call
			case *ast.GoStmt:
				call = stmt.Call
			}
			if call == nil {
				return true
			}
			if !returnsError(pass, call) || errPathExempt(pass, call) {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos: call.Pos(),
				Message: fmt.Sprintf(
					"error result of %s is silently discarded; handle it or assign to _ explicitly",
					callDescription(pass, call)),
			})
			return true
		})
	}
	return diags
}

// returnsError reports whether the call's last result is an error.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.Info.TypeOf(call)
	if t == nil {
		return false
	}
	switch rt := t.(type) {
	case *types.Tuple:
		if rt.Len() == 0 {
			return false
		}
		t = rt.At(rt.Len() - 1).Type()
	}
	named := namedOf(t)
	return named != nil && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

func errPathExempt(pass *Pass, call *ast.CallExpr) bool {
	obj := calleeObj(pass.Info, call)
	if obj == nil {
		return false
	}
	// Methods on never-failing in-memory writers.
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		if recvNamed := namedOf(sig.Recv().Type()); recvNamed != nil {
			rp := recvNamed.Obj()
			if rp.Pkg() != nil {
				switch rp.Pkg().Path() + "." + rp.Name() {
				case "strings.Builder", "bytes.Buffer":
					return true
				}
			}
		}
	}
	if obj.Pkg() == nil || obj.Pkg().Path() != "fmt" {
		return false
	}
	name := obj.Name()
	switch name {
	case "Print", "Printf", "Println":
		return true
	case "Fprint", "Fprintf", "Fprintln":
		if len(call.Args) == 0 {
			return false
		}
		return benignWriter(pass, call.Args[0])
	}
	return false
}

// benignWriter reports whether the fmt.Fprint* destination cannot fail in a
// way the program should handle: an in-memory builder/buffer, or the
// process's standard streams.
func benignWriter(pass *Pass, w ast.Expr) bool {
	w = ast.Unparen(w)
	if sel, ok := w.(*ast.SelectorExpr); ok {
		if obj := pass.Info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil &&
			obj.Pkg().Path() == "os" && (obj.Name() == "Stdout" || obj.Name() == "Stderr") {
			return true
		}
	}
	t := pass.Info.TypeOf(w)
	if t == nil {
		return false
	}
	// Interface-typed destination: the concrete sink is the caller's
	// choice (report-rendering convention); not a persistence path here.
	if _, isIface := t.Underlying().(*types.Interface); isIface {
		return true
	}
	if named := namedOf(t); named != nil {
		obj := named.Obj()
		if obj.Pkg() != nil {
			switch obj.Pkg().Path() + "." + obj.Name() {
			case "strings.Builder", "bytes.Buffer":
				return true
			}
		}
	}
	return false
}

func callDescription(pass *Pass, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if obj := calleeObj(pass.Info, call); obj != nil && obj.Pkg() != nil {
			if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
				if recvNamed := namedOf(sig.Recv().Type()); recvNamed != nil {
					return recvNamed.Obj().Name() + "." + fun.Sel.Name
				}
			}
			return obj.Pkg().Name() + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}
