package lint

// Phase 1 of the two-phase multichecker: fact computation. Every loaded
// package is walked once and each function declaration is summarized into a
// FuncFact — does it block (and on what: network, channels, sync waits,
// sleeps, subprocesses), does it spawn goroutines, does it accept or
// forward a context.Context, and which nondeterminism sources (time.Now,
// math/rand, emitting map iteration) it touches. Facts are keyed by the
// function's canonical name (import path + receiver + name) and collected
// into a FactTable keyed by import path, so phase-2 analyzers (goroleak,
// ctxflow, bodyclose, lockblock, detrand) can reason across package
// boundaries: a mutex in internal/server held across a call into
// internal/incr is visible because incr's facts say the callee blocks.
//
// Blocking is propagated over the module-internal call graph to a fixed
// point: a function that calls a blocking function blocks, transitively,
// with the first cause recorded for diagnostics. Calls through interfaces
// and function-typed values do not propagate (no static callee); the
// analyzers are linters, not verifiers, and unresolved calls are assumed
// non-blocking.
//
// Function literals are folded into the enclosing declaration's facts only
// when they run within the declaration's own activation — immediately
// invoked or deferred. Literals that are go-spawned, returned, assigned, or
// passed as callbacks execute on someone else's clock, so their blocking
// does not make the enclosing function blocking. Nondeterminism sources are
// the exception: they are recorded from every nested literal including
// go-spawned workers, because a time.Now inside a parallel codec worker
// corrupts byte-determinism just as surely as one on the main path.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// BlockClass is a bit set categorizing why a function can block.
type BlockClass uint16

const (
	// BlockNet covers net dials/listens/conn I/O, net/http client and
	// server calls, and io plumbing (Copy, ReadAll, ReadFull) that blocks
	// for as long as its reader does.
	BlockNet BlockClass = 1 << iota
	// BlockChan covers channel sends, receives, ranges, and selects
	// without a default clause.
	BlockChan
	// BlockSync covers sync.WaitGroup.Wait and sync.Cond.Wait.
	BlockSync
	// BlockSleep covers time.Sleep.
	BlockSleep
	// BlockExec covers os/exec Cmd.Run/Wait/Output/CombinedOutput.
	BlockExec
)

// String renders the set as "net|chan|...", or "none".
func (c BlockClass) String() string {
	if c == 0 {
		return "none"
	}
	names := []struct {
		bit  BlockClass
		name string
	}{
		{BlockNet, "net"}, {BlockChan, "chan"}, {BlockSync, "sync"},
		{BlockSleep, "sleep"}, {BlockExec, "exec"},
	}
	var parts []string
	for _, n := range names {
		if c&n.bit != 0 {
			parts = append(parts, n.name)
		}
	}
	return strings.Join(parts, "|")
}

// NondetOp is one nondeterminism source inside a function, recorded for
// detrand.
type NondetOp struct {
	Pos  token.Pos
	What string // "time.Now", "math/rand.Shuffle", "map iteration emitted to <op>"
}

// FuncFact is one function's phase-1 summary.
type FuncFact struct {
	// Key is the canonical function name: "pkg.Name" for package-level
	// functions, "pkg.(Recv).Name" or "pkg.(*Recv).Name" for methods.
	Key string
	// Pkg is the import path of the declaring package.
	Pkg string
	// Blocks is the transitive blocking classification.
	Blocks BlockClass
	// BlockedBy is the first recorded cause, for diagnostics: a direct op
	// ("net/http.Do") or a call chain ("calls flowcube/internal/incr.ApplyDelta").
	BlockedBy string
	// Spawns reports whether the function contains a go statement.
	Spawns bool
	// AcceptsCtx reports a context.Context parameter.
	AcceptsCtx bool
	// ForwardsCtx reports passing a context.Context to some callee.
	ForwardsCtx bool
	// DerivesCtx reports calling context.WithCancel/WithTimeout/
	// WithDeadline/WithoutCancel directly.
	DerivesCtx bool
	// HasHTTPRequest reports a *net/http.Request parameter (whose Context
	// method makes a separate ctx parameter redundant).
	HasHTTPRequest bool
	// Exported reports whether the function or method name is exported.
	Exported bool
	// CtxWrapper reports the sanctioned context-less convenience shape: a
	// single-statement body forwarding to a sibling whose name contains
	// "Context" (func Build(...) { return BuildContext(context.Background(), ...) }).
	CtxWrapper bool
	// Calls lists module-internal callees by fact key, sorted and deduped.
	Calls []string
	// Nondet lists nondeterminism sources, in source order.
	Nondet []NondetOp

	// directBlocks is the pre-propagation classification.
	directBlocks BlockClass
}

// FactTable indexes every loaded function's facts by import path and by
// canonical key.
type FactTable struct {
	funcs map[string]*FuncFact // canonical key → fact
	pkgs  map[string][]string  // import path → sorted keys
}

// Lookup resolves a called function object to its fact, or nil when the
// callee is outside the loaded package set (stdlib, interface methods,
// function-typed values).
func (t *FactTable) Lookup(obj *types.Func) *FuncFact {
	if t == nil || obj == nil {
		return nil
	}
	return t.funcs[FactKey(obj)]
}

// ByKey resolves a canonical key, or nil.
func (t *FactTable) ByKey(key string) *FuncFact {
	if t == nil {
		return nil
	}
	return t.funcs[key]
}

// PkgKeys returns the sorted fact keys of one import path.
func (t *FactTable) PkgKeys(pkgPath string) []string {
	if t == nil {
		return nil
	}
	return t.pkgs[pkgPath]
}

// Export returns every fact sorted by key — the serialized form behind
// flowlint -facts and the determinism tests.
func (t *FactTable) Export() []FuncFact {
	if t == nil {
		return nil
	}
	keys := make([]string, 0, len(t.funcs))
	for k := range t.funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]FuncFact, len(keys))
	for i, k := range keys {
		out[i] = *t.funcs[k]
	}
	return out
}

// Reachable returns the set of fact keys reachable from the given roots
// over module-internal call edges (roots included, when present).
func (t *FactTable) Reachable(roots []string) map[string]bool {
	seen := make(map[string]bool)
	if t == nil {
		return seen
	}
	frontier := make([]string, 0, len(roots))
	for _, r := range roots {
		if t.funcs[r] != nil && !seen[r] {
			seen[r] = true
			frontier = append(frontier, r)
		}
	}
	for len(frontier) > 0 {
		var next []string
		for _, k := range frontier {
			for _, callee := range t.funcs[k].Calls {
				if f := t.funcs[callee]; f != nil && !seen[callee] {
					seen[callee] = true
					next = append(next, callee)
				}
			}
		}
		frontier = next
	}
	return seen
}

// FactKey renders a function object's canonical key: "pkg.Name" or
// "pkg.(Recv).Name" / "pkg.(*Recv).Name". Objects without a package (error
// builtins and the like) key to "".
func FactKey(obj *types.Func) string {
	pkg := obj.Pkg()
	if pkg == nil {
		return ""
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return pkg.Path() + "." + obj.Name()
	}
	recv := sig.Recv()
	if recv == nil {
		return pkg.Path() + "." + obj.Name()
	}
	t := recv.Type()
	star := ""
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
		star = "*"
	}
	named := namedOf(t)
	if named == nil {
		return ""
	}
	return pkg.Path() + ".(" + star + named.Obj().Name() + ")." + obj.Name()
}

// ComputeFacts runs phase 1 over every loaded package and propagates
// blocking to a fixed point. Call edges are recorded only between loaded
// packages, so analyses scoped to a package subset degrade gracefully to
// that subset's facts.
func ComputeFacts(pkgs []*Package) *FactTable {
	t := &FactTable{funcs: make(map[string]*FuncFact), pkgs: make(map[string][]string)}
	loaded := make(map[string]bool, len(pkgs))
	for _, pkg := range pkgs {
		loaded[pkg.PkgPath] = true
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, _ := pkg.Info.Defs[fn.Name].(*types.Func)
				if obj == nil {
					continue
				}
				key := FactKey(obj)
				if key == "" {
					continue
				}
				fact := computeFuncFact(pkg, fn, key, loaded)
				t.funcs[key] = fact
				t.pkgs[pkg.PkgPath] = append(t.pkgs[pkg.PkgPath], key)
			}
		}
	}
	for _, keys := range t.pkgs {
		sort.Strings(keys)
	}
	t.propagate()
	return t
}

// propagate closes Blocks over module-internal call edges. Iteration is in
// sorted key order every round, so BlockedBy chains are deterministic.
func (t *FactTable) propagate() {
	keys := make([]string, 0, len(t.funcs))
	for k := range t.funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for changed := true; changed; {
		changed = false
		for _, k := range keys {
			f := t.funcs[k]
			for _, calleeKey := range f.Calls {
				callee := t.funcs[calleeKey]
				if callee == nil {
					continue
				}
				if add := callee.Blocks &^ f.Blocks; add != 0 {
					f.Blocks |= add
					if f.BlockedBy == "" {
						f.BlockedBy = "calls " + calleeKey
					}
					changed = true
				}
			}
		}
	}
}

// factWalker accumulates one declaration's facts.
type factWalker struct {
	pkg    *Package
	fact   *FuncFact
	loaded map[string]bool
}

func computeFuncFact(pkg *Package, fn *ast.FuncDecl, key string, loaded map[string]bool) *FuncFact {
	fact := &FuncFact{
		Key:      key,
		Pkg:      pkg.PkgPath,
		Exported: fn.Name.IsExported(),
	}
	if fn.Type.Params != nil {
		for _, p := range fn.Type.Params.List {
			pt := pkg.Info.TypeOf(p.Type)
			if isContextType(pt) {
				fact.AcceptsCtx = true
			}
			if isHTTPRequestPtr(pt) {
				fact.HasHTTPRequest = true
			}
		}
	}
	w := &factWalker{pkg: pkg, fact: fact, loaded: loaded}
	if fn.Body != nil {
		w.walk(fn.Body, true)
		fact.CtxWrapper = isCtxWrapper(pkg, fn)
	}
	sort.Strings(fact.Calls)
	fact.Calls = dedupSorted(fact.Calls)
	fact.Blocks = fact.directBlocks
	return fact
}

func dedupSorted(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// isCtxWrapper recognizes the sanctioned context-less convenience wrapper:
// a body that is exactly one statement forwarding to a context-carrying
// callee — one whose name contains "Context" (Load → LoadContext), or one
// whose first parameter is a context.Context (QueryGraph → Answer). The
// forwarding call may sit under an adapter (legacy shapes wrapping the new
// entry point), so every call within the single statement is considered.
func isCtxWrapper(pkg *Package, fn *ast.FuncDecl) bool {
	if fn.Body == nil || len(fn.Body.List) != 1 {
		return false
	}
	switch fn.Body.List[0].(type) {
	case *ast.ReturnStmt, *ast.ExprStmt:
	default:
		return false
	}
	wrapper := false
	ast.Inspect(fn.Body.List[0], func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeObj(pkg.Info, call)
		if obj == nil {
			return true
		}
		if strings.Contains(obj.Name(), "Context") || firstParamIsCtx(obj) {
			wrapper = true
		}
		return true
	})
	return wrapper
}

// firstParamIsCtx reports whether obj is a function whose first parameter
// is a context.Context.
func firstParamIsCtx(obj types.Object) bool {
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return false
	}
	named := namedOf(sig.Params().At(0).Type())
	if named == nil {
		return false
	}
	o := named.Obj()
	return o.Pkg() != nil && o.Pkg().Path() == "context" && o.Name() == "Context"
}

// walk visits one statement/expression tree. counting is true while the
// visited code runs within the declaration's own activation; inside
// go-spawned, returned, assigned, or callback literals it flips to false
// and only nondeterminism sources keep being recorded.
func (w *factWalker) walk(n ast.Node, counting bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			// Reached only when the literal is not in one of the folded
			// positions handled below (immediate invocation, defer): record
			// nondeterminism only.
			w.walk(x.Body, false)
			return false
		case *ast.GoStmt:
			w.fact.Spawns = true
			// The spawned call's arguments are evaluated here; the body runs
			// elsewhere.
			for _, arg := range x.Call.Args {
				w.walk(arg, counting)
			}
			if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
				w.walk(lit.Body, false)
			} else {
				w.walk(x.Call.Fun, counting)
			}
			return false
		case *ast.DeferStmt:
			// Deferred work runs in this activation at return.
			for _, arg := range x.Call.Args {
				w.walk(arg, counting)
			}
			if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
				w.walk(lit.Body, counting)
			} else {
				w.classifyCall(x.Call, counting)
				w.walk(x.Call.Fun, counting)
			}
			return false
		case *ast.SendStmt:
			w.block(BlockChan, "channel send", counting)
			return true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				w.block(BlockChan, "channel receive", counting)
			}
			return true
		case *ast.RangeStmt:
			t := w.pkg.Info.TypeOf(x.X)
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Chan:
					w.block(BlockChan, "range over channel", counting)
				case *types.Map:
					w.recordMapRange(x)
				}
			}
			return true
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				w.block(BlockChan, "select", counting)
			}
			// Case bodies run in this activation either way; comm-clause
			// channel ops are already covered by the select classification
			// (or made non-blocking by the default), so walk bodies only.
			for _, c := range x.Body.List {
				cc, ok := c.(*ast.CommClause)
				if !ok {
					continue
				}
				for _, st := range cc.Body {
					w.walk(st, counting)
				}
			}
			return false
		case *ast.CallExpr:
			if lit, ok := ast.Unparen(x.Fun).(*ast.FuncLit); ok {
				// Immediately invoked literal: runs here, facts fold in.
				for _, arg := range x.Args {
					w.walk(arg, counting)
				}
				w.walk(lit.Body, counting)
				return false
			}
			w.classifyCall(x, counting)
			return true
		}
		return true
	})
}

// block records a direct blocking cause when counting.
func (w *factWalker) block(class BlockClass, cause string, counting bool) {
	if !counting {
		return
	}
	if w.fact.directBlocks&class == 0 && w.fact.BlockedBy == "" {
		w.fact.BlockedBy = cause
	}
	w.fact.directBlocks |= class
}

// recordMapRange records a map iteration whose body emits values in
// iteration order — a send, or a call into an encoder/writer (Write*,
// Encode, Fprint*/Print*). The sanctioned collect-then-sort pattern
// (append into a slice, sort after the loop) stays silent.
func (w *factWalker) recordMapRange(rng *ast.RangeStmt) {
	var emit string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if emit != "" {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			emit = "a channel send"
			return false
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				name := sel.Sel.Name
				if strings.HasPrefix(name, "Write") || name == "Encode" ||
					strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Print") {
					emit = "call to " + name
					return false
				}
			}
		}
		return true
	})
	if emit != "" {
		w.fact.Nondet = append(w.fact.Nondet, NondetOp{
			Pos:  rng.Pos(),
			What: "map iteration emitted via " + emit,
		})
	}
}

// classifyCall records the blocking class, context flow, nondeterminism,
// and module-internal call edges of one call.
func (w *factWalker) classifyCall(call *ast.CallExpr, counting bool) {
	for _, arg := range call.Args {
		if isContextType(w.pkg.Info.TypeOf(arg)) && counting {
			w.fact.ForwardsCtx = true
		}
	}
	obj := calleeObj(w.pkg.Info, call)
	if obj == nil || obj.Pkg() == nil {
		return
	}
	pkgPath := obj.Pkg().Path()
	name := obj.Name()
	switch pkgPath {
	case "context":
		switch name {
		case "WithCancel", "WithTimeout", "WithDeadline", "WithoutCancel":
			if counting {
				w.fact.DerivesCtx = true
			}
		}
		return
	case "time":
		if name == "Sleep" {
			w.block(BlockSleep, "time.Sleep", counting)
		}
		if name == "Now" {
			w.fact.Nondet = append(w.fact.Nondet, NondetOp{Pos: call.Pos(), What: "time.Now"})
		}
		return
	case "math/rand", "math/rand/v2", "crypto/rand":
		w.fact.Nondet = append(w.fact.Nondet, NondetOp{Pos: call.Pos(), What: pkgPath + "." + name})
		return
	}
	if class, cause := stdlibBlockClass(pkgPath, name); class != 0 {
		w.block(class, cause, counting)
		return
	}
	if w.loaded[pkgPath] && counting {
		if fobj, ok := obj.(*types.Func); ok {
			if key := FactKey(fobj); key != "" {
				w.fact.Calls = append(w.fact.Calls, key)
			}
		}
	}
}

// stdlibBlockClass classifies a standard-library call as blocking, or 0.
func stdlibBlockClass(pkgPath, name string) (BlockClass, string) {
	switch pkgPath {
	case "net":
		return BlockNet, "net." + name
	case "net/http":
		switch name {
		case "Get", "Head", "Post", "PostForm", "Do", "Serve", "ServeTLS",
			"ListenAndServe", "ListenAndServeTLS", "Shutdown":
			return BlockNet, "net/http." + name
		}
	case "io":
		switch name {
		case "Copy", "CopyN", "CopyBuffer", "ReadAll", "ReadFull", "ReadAtLeast":
			return BlockNet, "io." + name
		}
	case "os/exec":
		switch name {
		case "Run", "Wait", "Output", "CombinedOutput":
			return BlockExec, "os/exec." + name
		}
	case "sync":
		if name == "Wait" {
			return BlockSync, "sync.Wait"
		}
	case "time":
		if name == "Sleep" {
			return BlockSleep, "time.Sleep"
		}
	}
	return 0, ""
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named := namedOf(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" &&
		(obj.Name() == "Context" || obj.Name() == "CancelFunc")
}

// isHTTPRequestPtr reports whether t is *net/http.Request.
func isHTTPRequestPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named := namedOf(p.Elem())
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Request"
}

// FormatFacts renders the table deterministically for flowlint -facts: one
// line per function, keyed by import path then function key.
func FormatFacts(t *FactTable) string {
	var b strings.Builder
	for _, f := range t.Export() {
		flags := make([]string, 0, 4)
		if f.Spawns {
			flags = append(flags, "spawns")
		}
		if f.AcceptsCtx {
			flags = append(flags, "ctx")
		}
		if f.ForwardsCtx {
			flags = append(flags, "fwd-ctx")
		}
		if len(f.Nondet) > 0 {
			flags = append(flags, fmt.Sprintf("nondet=%d", len(f.Nondet)))
		}
		fmt.Fprintf(&b, "%s blocks=%s", f.Key, f.Blocks)
		if f.BlockedBy != "" {
			fmt.Fprintf(&b, " (%s)", f.BlockedBy)
		}
		if len(flags) > 0 {
			fmt.Fprintf(&b, " [%s]", strings.Join(flags, ","))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
