package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// locksafe machine-checks the serving layer's lock discipline. The snapshot
// holder and response cache in internal/server guard hot-path state with
// sync.Mutex/RWMutex; two mistakes there are both easy to make and
// catastrophic under load:
//
//  1. copying a lock-bearing struct by value — a value receiver, value
//     parameter, or plain assignment silently duplicates the mutex, so the
//     "copy" and the original no longer exclude each other;
//  2. holding a mutex across blocking I/O — a lock held while calling into
//     net, net/http, os, os/exec, or time.Sleep turns one slow client into
//     a server-wide stall (every reader of the snapshot holder queues
//     behind the writer). The cache's single-flight path deliberately drops
//     the lock before computing; this analyzer keeps it that way.
//
// The held-region analysis is a linear scan per function: X.Lock()/RLock()
// opens a region, X.Unlock()/RUnlock() closes it, defer X.Unlock() keeps it
// open to the end of the function. Branch bodies are scanned with a copy of
// the held set, so a lock taken inside an if-arm does not poison the code
// after it.

// LockSafe flags lock-bearing structs copied by value and mutexes held
// across blocking I/O.
var LockSafe = &Analyzer{
	Name: "locksafe",
	Doc:  "flags by-value copies of lock-bearing structs and sync.Mutex/RWMutex held across blocking I/O",
	Run:  runLockSafe,
}

// blockingPkgs are packages whose calls are treated as blocking I/O.
var blockingPkgs = map[string]bool{
	"net":      true,
	"net/http": true,
	"os":       true,
	"os/exec":  true,
}

func runLockSafe(pass *Pass) []Diagnostic {
	var diags []Diagnostic
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				diags = append(diags, lockCopyChecks(pass, fn)...)
				if fn.Body != nil {
					diags = append(diags, newLockScan(pass).block(fn.Body, newHeldSet())...)
				}
			case *ast.FuncLit:
				if fn.Body != nil {
					diags = append(diags, newLockScan(pass).block(fn.Body, newHeldSet())...)
				}
			}
			return true
		})
	}
	return diags
}

// --- check 1: lock-bearing structs copied by value ---

func lockCopyChecks(pass *Pass, fn *ast.FuncDecl) []Diagnostic {
	var diags []Diagnostic
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			t := pass.Info.TypeOf(f.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.(*types.Pointer); isPtr {
				continue
			}
			if path := lockPath(t, nil); path != "" {
				diags = append(diags, Diagnostic{
					Pos: f.Pos(),
					Message: fmt.Sprintf("%s of %s passes a lock by value (contains %s); use a pointer",
						what, fn.Name.Name, path),
				})
			}
		}
	}
	check(fn.Recv, "value receiver")
	if fn.Type.Params != nil {
		check(fn.Type.Params, "value parameter")
	}
	return diags
}

// lockPath reports a dotted path to an embedded sync lock inside t, or "".
func lockPath(t types.Type, seen []*types.Named) string {
	if named := namedOf(t); named != nil {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool", "Map":
				return "sync." + obj.Name()
			}
		}
		for _, s := range seen {
			if s == named {
				return ""
			}
		}
		seen = append(seen, named)
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if _, isPtr := f.Type().(*types.Pointer); isPtr {
			continue
		}
		if sub := lockPath(f.Type(), seen); sub != "" {
			return f.Name() + "." + sub
		}
	}
	return ""
}

// --- check 2: mutex held across blocking I/O ---

type heldSet struct {
	exprs map[string]token.Pos // printed lock receiver → Lock() position
}

func newHeldSet() *heldSet { return &heldSet{exprs: make(map[string]token.Pos)} }

func (h *heldSet) clone() *heldSet {
	c := newHeldSet()
	for k, v := range h.exprs {
		c.exprs[k] = v
	}
	return c
}

// lockScan scans held-lock regions. classify decides which calls count as
// blocking under a held lock and renders their name; format renders the
// diagnostic. locksafe uses the syntactic stdlib classifier; lockblock
// (lockblock.go) plugs in the cross-package facts classifier.
type lockScan struct {
	pass     *Pass
	classify func(*ast.CallExpr) (string, bool)
	format   func(name, lock string) string
}

// newLockScan builds locksafe's syntactic scanner.
func newLockScan(pass *Pass) *lockScan {
	s := &lockScan{pass: pass}
	s.classify = s.blockingCall
	s.format = func(name, lock string) string {
		return fmt.Sprintf("blocking call %s while holding %s; release the lock before I/O (one slow peer stalls every lock waiter)",
			name, lock)
	}
	return s
}

// block scans a statement list linearly, tracking the held set, and returns
// diagnostics for blocking calls made while any lock is held.
func (s *lockScan) block(b *ast.BlockStmt, held *heldSet) []Diagnostic {
	var diags []Diagnostic
	for _, stmt := range b.List {
		diags = append(diags, s.stmt(stmt, held)...)
	}
	return diags
}

func (s *lockScan) stmt(stmt ast.Stmt, held *heldSet) []Diagnostic {
	switch st := stmt.(type) {
	case *ast.ExprStmt:
		if recv, op, ok := s.lockOp(st.X); ok {
			switch op {
			case "Lock", "RLock":
				held.exprs[recv] = st.Pos()
			case "Unlock", "RUnlock":
				delete(held.exprs, recv)
			}
			return nil
		}
		return s.checkCalls(st.X, held)
	case *ast.DeferStmt:
		if recv, op, ok := s.lockOp(st.Call); ok && (op == "Unlock" || op == "RUnlock") {
			// Deferred release: the lock stays held for the rest of the
			// function, which is fine as long as nothing below blocks. Keep
			// the receiver in the held set.
			_ = recv
			return nil
		}
		return s.checkCalls(st.Call, held)
	case *ast.AssignStmt:
		var diags []Diagnostic
		for _, e := range st.Rhs {
			diags = append(diags, s.checkCalls(e, held)...)
		}
		return diags
	case *ast.ReturnStmt:
		var diags []Diagnostic
		for _, e := range st.Results {
			diags = append(diags, s.checkCalls(e, held)...)
		}
		return diags
	case *ast.IfStmt:
		var diags []Diagnostic
		if st.Init != nil {
			diags = append(diags, s.stmt(st.Init, held)...)
		}
		diags = append(diags, s.checkCalls(st.Cond, held)...)
		diags = append(diags, s.block(st.Body, held.clone())...)
		if st.Else != nil {
			diags = append(diags, s.stmt(st.Else, held.clone())...)
		}
		return diags
	case *ast.BlockStmt:
		return s.block(st, held)
	case *ast.ForStmt:
		var diags []Diagnostic
		if st.Init != nil {
			diags = append(diags, s.stmt(st.Init, held)...)
		}
		diags = append(diags, s.block(st.Body, held.clone())...)
		return diags
	case *ast.RangeStmt:
		return s.block(st.Body, held.clone())
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var diags []Diagnostic
		ast.Inspect(st, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				diags = append(diags, s.checkCall(call, held)...)
			}
			return true
		})
		return diags
	case *ast.GoStmt:
		return nil // the goroutine does not run under this frame's locks
	default:
		return nil
	}
}

// checkCalls inspects an expression tree for blocking calls, skipping
// nested function literals (they execute later, not under this lock).
func (s *lockScan) checkCalls(e ast.Expr, held *heldSet) []Diagnostic {
	if e == nil || len(held.exprs) == 0 {
		return nil
	}
	var diags []Diagnostic
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			diags = append(diags, s.checkCall(call, held)...)
		}
		return true
	})
	return diags
}

func (s *lockScan) checkCall(call *ast.CallExpr, held *heldSet) []Diagnostic {
	if len(held.exprs) == 0 {
		return nil
	}
	name, blocking := s.classify(call)
	if !blocking {
		return nil
	}
	// One report per call, against the lexicographically first held lock so
	// the diagnostic is deterministic.
	first := ""
	for recv := range held.exprs {
		if first == "" || recv < first {
			first = recv
		}
	}
	return []Diagnostic{{
		Pos:     call.Pos(),
		Message: s.format(name, first),
	}}
}

// blockingCall classifies calls into blocking I/O: package functions and
// methods from net, net/http, os, os/exec, plus time.Sleep.
func (s *lockScan) blockingCall(call *ast.CallExpr) (string, bool) {
	obj := calleeObj(s.pass.Info, call)
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	pkg := obj.Pkg().Path()
	if pkg == "time" && obj.Name() == "Sleep" {
		return "time.Sleep", true
	}
	if !blockingPkgs[pkg] {
		return "", false
	}
	return pkg + "." + obj.Name(), true
}

// lockOp matches <expr>.Lock / RLock / Unlock / RUnlock calls on
// sync.Mutex/RWMutex (directly or promoted through embedding) and returns
// the printed receiver expression and the operation name.
func (s *lockScan) lockOp(e ast.Expr) (recv, op string, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	obj := s.pass.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", "", false
	}
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, s.pass.Fset, sel.X); err != nil {
		return "", "", false
	}
	return buf.String(), sel.Sel.Name, true
}
