package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// immutcube enforces the immutable-after-build contract documented on
// core.Cube: once Build (or Load) returns, the cube is shared by concurrent
// readers — internal/server hands the same *core.Cube to every in-flight
// request — so field writes to Cube, Cuboid, or Cell values are only legal
// inside package core's designated mutation files. Everywhere else (the
// serving layer, CLI tools, examples, sibling internal packages) the cube
// must be treated as deeply read-only; a server that wants new data swaps a
// whole snapshot instead of editing the live one.
//
// The designated files are the build phase and the documented mutating
// operations: build.go (Build, populate, exception mining), append.go
// (incremental Append), persist.go and snapshotv2.go (the v1 and v2
// snapshot decoders reconstruct a cube), query.go (MarkRedundancy,
// Compress, DropCuboid — documented as must-not-run-concurrently),
// answer.go (whose reconstructed cells are freshly allocated per query and
// never part of the shared cube), and conds.go (the condition cache,
// written only on cubes the writer owns exclusively: during build or by
// incr's delta maintenance on a clone).
//
// Detected write forms: field assignment (cell.Count = n, cell.Count++),
// writes through field-held maps and slices (cb.Cells[k] = v,
// cell.Values[i] = v), and delete(cb.Cells, k). Mutation through an
// aliased map or a method call is out of static reach and stays on the
// prose contract.

// immutAllowedFiles maps package name → the files within it that may write
// cube state. Package core's build-phase files define the cube; package
// incr's delta.go is the delta-maintenance writer (it patches only cubes
// the caller owns exclusively — a fresh build or a Clone; see
// internal/incr).
var immutAllowedFiles = map[string]map[string]bool{
	"core": {
		"build.go":      true,
		"append.go":     true,
		"delta.go":      true,
		"persist.go":    true,
		"snapshotv2.go": true,
		"lazyload.go":   true,
		"query.go":      true,
		"answer.go":     true,
		"partition.go":  true,
		"conds.go":      true,
	},
	"incr": {
		"delta.go": true,
	},
}

var immutTypes = map[string]bool{
	"Cube":   true,
	"Cuboid": true,
	"Cell":   true,
}

// ImmutCube flags writes to core.Cube/Cuboid/Cell state outside the build
// phase.
var ImmutCube = &Analyzer{
	Name: "immutcube",
	Doc:  "flags writes to core.Cube/Cuboid/Cell fields outside the cube build phase",
	Run:  runImmutCube,
}

func runImmutCube(pass *Pass) []Diagnostic {
	var diags []Diagnostic
	for _, file := range pass.Files {
		// Designated mutation files may write.
		if immutAllowedFiles[pass.Pkg.Name()][pass.Filename(file.Pos())] {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range stmt.Lhs {
					if field, owner, ok := immutWriteTarget(pass.Info, lhs); ok {
						diags = append(diags, Diagnostic{
							Pos: lhs.Pos(),
							Message: fmt.Sprintf(
								"write to core.%s field %s outside the build phase (cube is immutable once served; see the concurrency contract on core.Cube)",
								owner, field),
						})
					}
				}
			case *ast.IncDecStmt:
				if field, owner, ok := immutWriteTarget(pass.Info, stmt.X); ok {
					diags = append(diags, Diagnostic{
						Pos: stmt.Pos(),
						Message: fmt.Sprintf(
							"write to core.%s field %s outside the build phase (cube is immutable once served; see the concurrency contract on core.Cube)",
							owner, field),
					})
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(stmt.Fun).(*ast.Ident); ok && id.Name == "delete" && len(stmt.Args) == 2 {
					if obj, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin && obj.Name() == "delete" {
						if field, owner, ok := immutWriteTarget(pass.Info, stmt.Args[0]); ok {
							diags = append(diags, Diagnostic{
								Pos: stmt.Pos(),
								Message: fmt.Sprintf(
									"delete from core.%s field %s outside the build phase (cube is immutable once served)",
									owner, field),
							})
						}
					}
				}
			}
			return true
		})
	}
	return diags
}

// immutWriteTarget reports whether the write target expression resolves (up
// through index and dereference operations) to a field of core.Cube,
// core.Cuboid, or core.Cell, returning the field and owning type names.
func immutWriteTarget(info *types.Info, e ast.Expr) (field, owner string, ok bool) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			sel := info.Selections[x]
			if sel == nil || sel.Kind() != types.FieldVal {
				return "", "", false
			}
			named := namedOf(sel.Recv())
			if named == nil {
				return "", "", false
			}
			obj := named.Obj()
			if obj.Pkg() == nil || obj.Pkg().Name() != "core" || !immutTypes[obj.Name()] {
				return "", "", false
			}
			return x.Sel.Name, obj.Name(), true
		default:
			return "", "", false
		}
	}
}
