package linttest_test

import (
	"path/filepath"
	"strings"
	"testing"

	"flowcube/internal/lint"
	"flowcube/internal/lint/linttest"
)

// TestHarnessCatchesMismatches is the meta-test: a fixture with one stale
// want annotation and one unannotated finding must produce exactly one
// mismatch of each kind. If this test fails, every green analyzer test is
// suspect — the harness would be accepting fixtures it should reject.
func TestHarnessCatchesMismatches(t *testing.T) {
	dir := filepath.Join("..", "testdata", "src", "meta")
	mismatches, err := linttest.Check(dir, "flowcube/internal/lint/testdata/meta", lint.FloatCmp)
	if err != nil {
		t.Fatalf("load meta fixture: %v", err)
	}
	var stale, unexpected int
	for _, m := range mismatches {
		switch {
		case strings.Contains(m, "expected finding matching"):
			stale++
		case strings.Contains(m, "unexpected finding"):
			unexpected++
		default:
			t.Errorf("unclassified mismatch: %s", m)
		}
	}
	if stale != 1 {
		t.Errorf("stale-want mismatches = %d, want 1 (all: %q)", stale, mismatches)
	}
	if unexpected != 1 {
		t.Errorf("unexpected-finding mismatches = %d, want 1 (all: %q)", unexpected, mismatches)
	}
}
