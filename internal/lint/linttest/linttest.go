// Package linttest is flowlint's analogue of
// golang.org/x/tools/go/analysis/analysistest: it loads a testdata package,
// applies one analyzer through the full lint.Run pipeline (so ignore
// directives are honored exactly as in production), and compares the
// findings against // want annotations in the source.
//
// An expectation is a comment of the form
//
//	cell.Count = 7 // want `write to core\.Cell field Count`
//
// on the line the diagnostic is reported at. The backquoted (or quoted)
// strings are regular expressions matched against the finding message;
// several may appear on one line. Every finding must match an expectation
// and every expectation must be matched, or the test fails.
package linttest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"flowcube/internal/lint"
)

// wantArgRE extracts the backquoted or double-quoted expectation patterns
// from the tail of a want comment.
var wantArgRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type expectation struct {
	re      *regexp.Regexp
	line    int
	matched bool
}

// Run loads the single package under dir and applies the analyzer,
// comparing its findings to the // want annotations.
func Run(t *testing.T, dir string, a *lint.Analyzer) {
	t.Helper()
	pkg, err := lint.LoadDir(dir, "flowcube/internal/lint/testdata/"+a.Name)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	wants := collectWants(t, pkg)
	findings := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{a})

	for _, f := range findings {
		key := posKey(f.Position.Filename, f.Position.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(f.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected finding matching %q, got none", key, w.re)
			}
		}
	}
}

func posKey(filename string, line int) string {
	return fmt.Sprintf("%s:%d", filename, line)
}

// collectWants scans the package's comments for want annotations.
func collectWants(t *testing.T, pkg *lint.Package) map[string][]*expectation {
	t.Helper()
	wants := make(map[string][]*expectation)
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				args := wantArgRE.FindAllString(rest, -1)
				if len(args) == 0 {
					t.Fatalf("%s: malformed want comment %q", pos, c.Text)
				}
				for _, arg := range args {
					var pat string
					if strings.HasPrefix(arg, "`") {
						pat = strings.Trim(arg, "`")
					} else {
						var err error
						if pat, err = strconv.Unquote(arg); err != nil {
							t.Fatalf("%s: bad want pattern %s: %v", pos, arg, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					key := posKey(pos.Filename, pos.Line)
					wants[key] = append(wants[key], &expectation{re: re, line: pos.Line})
				}
			}
		}
	}
	return wants
}
