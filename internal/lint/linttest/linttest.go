// Package linttest is flowlint's analogue of
// golang.org/x/tools/go/analysis/analysistest: it loads a testdata fixture
// (plus any dependency packages in its subdirectories), applies one
// analyzer through the full lint.Run pipeline (so cross-package facts and
// ignore directives are honored exactly as in production), and compares the
// findings against // want annotations in the source.
//
// An expectation is a comment of the form
//
//	cell.Count = 7 // want `write to core\.Cell field Count`
//
// on the line the diagnostic is reported at. The backquoted (or quoted)
// strings are regular expressions matched against the finding message;
// several may appear on one line. Every finding must match an expectation
// and every expectation must be matched, or the test fails. A fixture file
// with no want comments is therefore a clean-path test: any finding in it
// fails.
//
// Check is the assertion core, returned as data instead of reported to a
// *testing.T; the meta-tests use it to assert that the harness itself fails
// on stale annotations.
package linttest

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"flowcube/internal/lint"
)

// wantArgRE extracts the backquoted or double-quoted expectation patterns
// from the tail of a want comment.
var wantArgRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type expectation struct {
	re      *regexp.Regexp
	line    int
	matched bool
}

// Run loads the fixture under dir and applies the analyzer, reporting
// want-annotation mismatches as test errors.
func Run(t *testing.T, dir string, a *lint.Analyzer) {
	t.Helper()
	mismatches, err := Check(dir, "flowcube/internal/lint/testdata/"+a.Name, a)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	for _, m := range mismatches {
		t.Error(m)
	}
}

// Check loads the fixture package under dir (dependency subpackages
// included), runs the analyzer with facts over the whole fixture, and
// returns one message per mismatch between findings and want annotations.
// A nil slice means the fixture passes.
func Check(dir, pkgPath string, a *lint.Analyzer) ([]string, error) {
	pkgs, err := lint.LoadFixture(dir, pkgPath)
	if err != nil {
		return nil, err
	}
	wants := make(map[string][]*expectation)
	for _, pkg := range pkgs {
		if err := collectWants(pkg, wants); err != nil {
			return nil, err
		}
	}
	findings := lint.Run(pkgs, []*lint.Analyzer{a})

	var mismatches []string
	for _, f := range findings {
		key := posKey(f.Position.Filename, f.Position.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(f.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			mismatches = append(mismatches, fmt.Sprintf("unexpected finding: %s", f))
		}
	}
	keys := make([]string, 0, len(wants))
	for key := range wants {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		for _, w := range wants[key] {
			if !w.matched {
				mismatches = append(mismatches, fmt.Sprintf("%s: expected finding matching %q, got none", key, w.re))
			}
		}
	}
	return mismatches, nil
}

func posKey(filename string, line int) string {
	return fmt.Sprintf("%s:%d", filename, line)
}

// collectWants scans the package's comments for want annotations.
func collectWants(pkg *lint.Package, wants map[string][]*expectation) error {
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				args := wantArgRE.FindAllString(rest, -1)
				if len(args) == 0 {
					return fmt.Errorf("%s: malformed want comment %q", pos, c.Text)
				}
				for _, arg := range args {
					var pat string
					if strings.HasPrefix(arg, "`") {
						pat = strings.Trim(arg, "`")
					} else {
						var err error
						if pat, err = strconv.Unquote(arg); err != nil {
							return fmt.Errorf("%s: bad want pattern %s: %v", pos, arg, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return fmt.Errorf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					key := posKey(pos.Filename, pos.Line)
					wants[key] = append(wants[key], &expectation{re: re, line: pos.Line})
				}
			}
		}
	}
	return nil
}
