package lint

import (
	"fmt"
	"strings"
)

// detrand guards the paper's central guarantee — deterministic, lossless
// aggregation — at its most fragile point: the byte-deterministic snapshot
// codec. Split/merge round-trips, shard-append parity, and the golden
// v1→v2 fixture all assert exact bytes; one time.Now, math/rand draw, or
// emitted map iteration anywhere in the Save call tree breaks every one of
// them, possibly only under rare orderings.
//
// The analyzer is fact-driven and interprocedural: it takes the package-
// level determinism roots below (the entry points whose output is asserted
// byte-identical), computes the set of functions reachable from them over
// the cross-package call graph, and reports every nondeterminism source
// phase 1 recorded inside that set — including sources inside go-spawned
// codec workers, which fold into their declaring function's facts. With
// facts disabled the analyzer reports nothing (reachability is undefined).
//
// DeterminismRoots is an allowlist by construction: adding an entry puts a
// function's whole call tree under the no-nondeterminism contract. Keep it
// to functions whose output bytes a test asserts equality on.

// DeterminismRoots names the functions (by fact key) whose call trees must
// be free of nondeterminism. They are the entry points proven
// byte-deterministic by TestSaveIsByteDeterministic, the split/merge digest
// property tests, and the shard-append parity tests.
var DeterminismRoots = []string{
	"flowcube/internal/core.(*Cube).Save",
	"flowcube/internal/core.(*Cube).SaveV1",
	"flowcube/internal/cluster.WriteShards",
	"flowcube/internal/cluster.Split",
	"flowcube/internal/cluster.Merge",
}

// DetRand flags time.Now/math/rand/emitted-map-iteration reachable from
// the byte-deterministic save/codec entry points.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc:  "flags time.Now, math/rand, and emitted map iteration reachable from the byte-deterministic snapshot codec",
	Run:  runDetRand,
}

func runDetRand(pass *Pass) []Diagnostic {
	if pass.Facts == nil {
		return nil
	}
	roots := DeterminismRoots
	if extra := fixtureRoots(pass); len(extra) > 0 {
		roots = append(append([]string(nil), roots...), extra...)
	}
	reach := pass.Facts.Reachable(roots)
	if len(reach) == 0 {
		return nil
	}
	var diags []Diagnostic
	for _, key := range pass.Facts.PkgKeys(pass.Pkg.Path()) {
		if !reach[key] {
			continue
		}
		fact := pass.Facts.ByKey(key)
		for _, op := range fact.Nondet {
			diags = append(diags, Diagnostic{
				Pos: op.Pos,
				Message: fmt.Sprintf("%s inside %s, which is reachable from a determinism root; snapshot bytes must not depend on it (hoist it out of the save path or thread it in as data)",
					op.What, shortKey(key)),
			})
		}
	}
	return diags
}

// shortKey trims the module prefix for readable diagnostics.
func shortKey(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return key[i+1:]
	}
	return key
}

// fixtureRoots lets testdata packages declare their own determinism roots:
// a package-level comment of the form
//
//	//flowlint:detrand-root <FuncName>
//
// marks pkgpath.FuncName as a root. Production packages do not use this —
// the real roots are the DeterminismRoots table above, reviewed in code —
// but the golden fixtures need self-contained packages.
func fixtureRoots(pass *Pass) []string {
	var roots []string
	for _, file := range pass.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "flowlint:detrand-root ")
				if !ok {
					continue
				}
				for _, name := range strings.Fields(rest) {
					roots = append(roots, pass.Pkg.Path()+"."+name)
				}
			}
		}
	}
	return roots
}
