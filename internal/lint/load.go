package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package loading for flowlint. Packages are discovered by walking the
// module tree (no go/packages available in this environment), parsed with
// go/parser, and type-checked with go/types. Imports — both stdlib and
// intra-module — resolve through the stdlib source importer, which handles
// module paths by consulting the go command; that requires the process
// working directory to be inside the module, which ModuleRoot guarantees
// for callers that chdir to it.
//
// Test files (_test.go) are not loaded: the analyzers enforce production
// contracts, and tests legitimately construct and mutate cubes. Files
// excluded by build constraints (//go:build lines or _GOOS filename
// suffixes) for the host build context are skipped too — otherwise a pair
// of mutually exclusive platform files (mmap_linux.go / mmap_fallback.go)
// would type-check as one package and collide on their shared
// declarations.

// Package is one parsed and type-checked package.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
}

// ModuleRoot walks up from dir to the enclosing go.mod and returns its
// directory and module path.
func ModuleRoot(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Load expands the package patterns (./dir, ./dir/..., ./...) relative to
// the module root enclosing the working directory and returns the parsed,
// type-checked packages in deterministic (import path) order.
func Load(patterns []string) ([]*Package, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	root, modPath, err := ModuleRoot(cwd)
	if err != nil {
		return nil, err
	}
	dirSet := make(map[string]bool)
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		}
		base := filepath.Join(cwd, pat)
		if !recursive {
			if hasGoFiles(base) {
				dirSet[base] = true
			}
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				dirSet[path] = true
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	dirs := make([]string, 0, len(dirSet))
	for d := range dirSet {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		pkgPath := modPath
		if rel != "." {
			pkgPath = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := checkDir(fset, imp, dir, pkgPath)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the single package in dir under the given
// import path, with imports resolved by the stdlib source importer. It is
// the entry point the analyzer tests use on testdata packages.
func LoadDir(dir, pkgPath string) (*Package, error) {
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	pkg, err := checkDir(fset, imp, dir, pkgPath)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	return pkg, nil
}

// tableImporter resolves imports from already-loaded packages first, then
// falls back to the stdlib source importer. It is what lets a testdata
// fixture import a sibling testdata package — the go command refuses to
// resolve import paths under testdata/, so the fixture loader type-checks
// the dependency itself and serves it from the table.
type tableImporter struct {
	loaded   map[string]*types.Package
	fallback types.Importer
}

func (t *tableImporter) Import(path string) (*types.Package, error) {
	if p := t.loaded[path]; p != nil {
		return p, nil
	}
	return t.fallback.Import(path)
}

// LoadFixture loads the fixture package in dir under pkgPath, together with
// its dependency packages: every subdirectory of dir holding Go files is
// type-checked first as pkgPath/<sub> and made importable by the fixture.
// All packages share one FileSet (positions and facts stay comparable) and
// are returned dependencies-first, the fixture package last. Dependencies
// must not import each other; fixtures that need a deeper graph should
// nest further subdirectories instead.
func LoadFixture(dir, pkgPath string) ([]*Package, error) {
	fset := token.NewFileSet()
	imp := &tableImporter{
		loaded:   make(map[string]*types.Package),
		fallback: importer.ForCompiler(fset, "source", nil),
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, e := range ents {
		if !e.IsDir() || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		sub := filepath.Join(dir, e.Name())
		if !hasGoFiles(sub) {
			continue
		}
		subPath := pkgPath + "/" + e.Name()
		dep, err := checkDir(fset, imp, sub, subPath)
		if err != nil {
			return nil, err
		}
		if dep != nil {
			imp.loaded[subPath] = dep.Pkg
			pkgs = append(pkgs, dep)
		}
	}
	main, err := checkDir(fset, imp, dir, pkgPath)
	if err != nil {
		return nil, err
	}
	if main == nil {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	return append(pkgs, main), nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if isSourceFile(dir, e) {
			return true
		}
	}
	return false
}

func isSourceFile(dir string, e os.DirEntry) bool {
	name := e.Name()
	if e.IsDir() || !strings.HasSuffix(name, ".go") ||
		strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
		return false
	}
	// MatchFile applies //go:build constraints and _GOOS/_GOARCH filename
	// suffixes against the host build context, like the compiler would.
	match, err := build.Default.MatchFile(dir, name)
	return err == nil && match
}

func checkDir(fset *token.FileSet, imp types.Importer, dir, pkgPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if isSourceFile(dir, e) {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %w", pkgPath, err)
	}
	return &Package{PkgPath: pkgPath, Dir: dir, Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}
