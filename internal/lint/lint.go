// Package lint is flowlint's analysis framework: a small, stdlib-only
// reimplementation of the golang.org/x/tools/go/analysis vocabulary
// (Analyzer, Pass, Diagnostic, and a Facts table) plus the project-specific
// analyzers that machine-check the contracts the flowcube codebase
// otherwise states only in prose. The original five are single-package: the
// immutable-after-build cube (immutcube), byte-deterministic encodings over
// map-backed state (mapdet), lock discipline in the serving layer
// (locksafe), epsilon-safe floating-point comparisons (floatcmp), and
// surfaced errors on persistence paths (errpath). The cluster era added
// five fact-driven concurrency and contract analyzers: leak-prone goroutine
// spawns (goroleak), context plumbing on blocking exported surfaces
// (ctxflow), unclosed HTTP response bodies (bodyclose), locks held across
// interprocedurally blocking calls (lockblock), and nondeterminism reaching
// the byte-deterministic snapshot codec (detrand).
//
// Analysis is two-phase. Phase 1 (facts.go) walks every loaded package and
// summarizes each function into a FuncFact — blocking classification,
// goroutine spawns, context acceptance/forwarding, nondeterminism sources —
// propagated over the module-internal call graph and keyed by import path.
// Phase 2 runs the analyzers one package at a time with the whole table in
// Pass.Facts, which is how a lock site in one package learns that its
// callee in another package blocks.
//
// The framework is deliberately tiny: packages are parsed and type-checked
// with go/parser and go/types, cross-package imports resolve through the
// stdlib source importer (which shells out to the go command for module
// paths). It exists because the container pins the dependency set — x/tools
// is not available — and because ten narrow project analyzers do not need
// the full Fact/Requires machinery.
//
// Suppression: a diagnostic is dropped when the offending line (or the line
// directly above it) carries a comment of the form
//
//	//flowlint:ignore <analyzer> <reason>
//
// naming the reporting analyzer. errpath additionally honors the
// conventional //nolint:errcheck.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc is a one-paragraph description of the enforced contract.
	Doc string
	// Run inspects one package and returns its diagnostics.
	Run func(*Pass) []Diagnostic
}

// Pass carries one type-checked package through an analyzer. Facts is the
// phase-1 cross-package fact table over every package in the Run; it is nil
// when facts are disabled, and fact-driven analyzers (goroleak, ctxflow,
// lockblock, detrand) degrade to their purely syntactic subset (for
// lockblock: nothing) in that mode.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	Facts *FactTable
}

// Diagnostic is one finding, positioned inside the package under analysis.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Filename returns the base name of the file containing pos.
func (p *Pass) Filename(pos token.Pos) string {
	return filepath.Base(p.Fset.Position(pos).Filename)
}

// All returns the flowlint analyzer suite in reporting order: the original
// five single-package analyzers, then the five fact-driven concurrency and
// contract analyzers added for the cluster era.
func All() []*Analyzer {
	return []*Analyzer{
		ImmutCube,
		MapDet,
		LockSafe,
		FloatCmp,
		ErrPath,
		GoroLeak,
		CtxFlow,
		BodyClose,
		LockBlock,
		DetRand,
	}
}

// Finding is a Diagnostic resolved against its package and analyzer, ready
// for printing.
type Finding struct {
	Position token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Position, f.Analyzer, f.Message)
}

// AnalyzerStat is one analyzer's aggregate over a Run: surviving findings
// and wall time summed across packages.
type AnalyzerStat struct {
	Name     string
	Findings int
	Elapsed  time.Duration
}

// Run applies every analyzer to every package — phase 1 computes the
// cross-package fact table, phase 2 runs the analyzers over it — resolves
// ignore directives, and returns the surviving findings sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	findings, _ := RunStats(pkgs, analyzers, ComputeFacts(pkgs))
	return findings
}

// RunWithFacts is Run with an explicit fact table; nil disables facts, and
// fact-driven analyzers degrade to their syntactic subset.
func RunWithFacts(pkgs []*Package, analyzers []*Analyzer, facts *FactTable) []Finding {
	findings, _ := RunStats(pkgs, analyzers, facts)
	return findings
}

// RunStats is RunWithFacts plus per-analyzer finding counts and wall time,
// in analyzer order.
func RunStats(pkgs []*Package, analyzers []*Analyzer, facts *FactTable) ([]Finding, []AnalyzerStat) {
	stats := make([]AnalyzerStat, len(analyzers))
	for i, a := range analyzers {
		stats[i].Name = a.Name
	}
	var out []Finding
	for _, pkg := range pkgs {
		ignores := collectIgnores(pkg.Fset, pkg.Files)
		pass := &Pass{Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Pkg, Info: pkg.Info, Facts: facts}
		for i, a := range analyzers {
			start := time.Now()
			for _, d := range a.Run(pass) {
				pos := pkg.Fset.Position(d.Pos)
				if ignores.suppresses(a.Name, pos) {
					continue
				}
				out = append(out, Finding{Position: pos, Analyzer: a.Name, Message: d.Message})
				stats[i].Findings++
			}
			stats[i].Elapsed += time.Since(start)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := out[i].Position, out[j].Position
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, stats
}

// ignoreIndex maps file → line → analyzer names suppressed on that line.
type ignoreIndex map[string]map[int][]string

func collectIgnores(fset *token.FileSet, files []*ast.File) ignoreIndex {
	idx := make(ignoreIndex)
	add := func(pos token.Position, name string) {
		m := idx[pos.Filename]
		if m == nil {
			m = make(map[int][]string)
			idx[pos.Filename] = m
		}
		m[pos.Line] = append(m[pos.Line], name)
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				switch {
				case strings.HasPrefix(text, "flowlint:ignore"):
					rest := strings.Fields(strings.TrimPrefix(text, "flowlint:ignore"))
					if len(rest) > 0 {
						add(fset.Position(c.Pos()), rest[0])
					}
				case strings.HasPrefix(text, "nolint:"):
					// Only the first whitespace-separated field is the
					// linter list; anything after is explanation.
					names, _, _ := strings.Cut(strings.TrimPrefix(text, "nolint:"), " ")
					for _, name := range strings.Split(names, ",") {
						name = strings.TrimSpace(name)
						if name == "errcheck" {
							// The conventional errcheck directive maps to
							// errpath, flowlint's discarded-error analyzer.
							add(fset.Position(c.Pos()), "errpath")
						}
					}
				}
			}
		}
	}
	return idx
}

// suppresses reports whether a directive on the diagnostic's line, or the
// line directly above it, names the analyzer.
func (idx ignoreIndex) suppresses(analyzer string, pos token.Position) bool {
	lines := idx[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range lines[line] {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}

// --- shared type helpers used by several analyzers ---

// deref unwraps pointers and named types down to the underlying type.
func deref(t types.Type) types.Type {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			t = u.Underlying()
		case *types.Alias:
			t = types.Unalias(u)
		default:
			return t
		}
	}
}

// namedOf returns the named type behind t (through pointers), or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// isFloat reports whether t is (or has underlying) float32/float64 or an
// untyped float constant type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isMap reports whether t's underlying type is a map.
func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// rootIdent descends through selectors, indexes, parens, and stars to the
// leftmost identifier of an expression, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.CallExpr:
			e = x.Fun
		default:
			return nil
		}
	}
}

// calleeObj resolves the called function or method object, or nil.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// calleePkgPath returns the import path of the called function's package,
// or "" for builtins and locals without package.
func calleePkgPath(info *types.Info, call *ast.CallExpr) string {
	obj := calleeObj(info, call)
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}
