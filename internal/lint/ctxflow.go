package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// ctxflow machine-checks context plumbing — the discipline that lets the
// cluster's scatter-gather reads be cancelled instead of piling up behind a
// dead shard. Three checks:
//
//  1. Exported functions whose facts say they block on the outside world
//     (net, sleep, subprocess — not CPU-parallel channel/WaitGroup joins)
//     must accept a context.Context, carry a *http.Request (whose Context
//     travels with it), or derive their own. A blocking exported surface
//     with no context is uncancellable by construction.
//  2. context.Background()/TODO() belongs in package main (the process
//     root) and in the sanctioned context-less convenience wrapper — a
//     single-statement body forwarding to a Context-suffixed sibling.
//     Anywhere else it silently detaches work from its caller's lifetime;
//     derive from the caller's ctx (context.WithoutCancel for deliberate
//     detachment) instead.
//  3. context.Context stored in a struct field outlives the call tree it
//     was scoped to; pass it as the first parameter instead.
//
// Check 1 is fact-driven (transitive blocking over the cross-package call
// graph); with facts disabled it degrades to direct stdlib blocking only.

// CtxFlow flags blocking exported functions without a context, stray
// context.Background/TODO, and contexts stored in struct fields.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "flags blocking exported functions with no context.Context, context.Background outside main/wrappers, and ctx stored in struct fields",
	Run:  runCtxFlow,
}

// ctxBlockMask is the blocking classes that demand cancellation: waits on
// the outside world. Channel and WaitGroup joins of CPU-bound workers
// complete on their own and are exempt.
const ctxBlockMask = BlockNet | BlockSleep | BlockExec

func runCtxFlow(pass *Pass) []Diagnostic {
	var diags []Diagnostic
	isMain := pass.Pkg.Name() == "main"
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if d, bad := checkExportedBlocking(pass, fn, isMain); bad {
				diags = append(diags, d)
			}
			if fn.Body != nil {
				diags = append(diags, checkBackground(pass, fn, isMain)...)
			}
		}
		diags = append(diags, checkCtxFields(pass, file)...)
	}
	return diags
}

// checkExportedBlocking applies check 1 to one declaration.
func checkExportedBlocking(pass *Pass, fn *ast.FuncDecl, isMain bool) (Diagnostic, bool) {
	if isMain || !fn.Name.IsExported() {
		return Diagnostic{}, false
	}
	obj, _ := pass.Info.Defs[fn.Name].(*types.Func)
	fact := pass.Facts.Lookup(obj)
	if fact == nil {
		return Diagnostic{}, false
	}
	if fact.Blocks&ctxBlockMask == 0 {
		return Diagnostic{}, false
	}
	if fact.AcceptsCtx || fact.HasHTTPRequest || fact.DerivesCtx || fact.CtxWrapper {
		return Diagnostic{}, false
	}
	return Diagnostic{
		Pos: fn.Name.Pos(),
		Message: fmt.Sprintf("exported %s blocks (%s; %s) but neither takes nor derives a context.Context; callers cannot cancel it",
			fn.Name.Name, (fact.Blocks & ctxBlockMask).String(), fact.BlockedBy),
	}, true
}

// checkBackground applies check 2 inside one declaration.
func checkBackground(pass *Pass, fn *ast.FuncDecl, isMain bool) []Diagnostic {
	if isMain {
		return nil
	}
	obj, _ := pass.Info.Defs[fn.Name].(*types.Func)
	if fact := pass.Facts.Lookup(obj); fact != nil && fact.CtxWrapper {
		return nil
	}
	// Without facts (single-analyzer or facts-disabled runs), recognize the
	// wrapper shape directly so the check does not regress.
	if isCtxWrapper(&Package{PkgPath: pass.Pkg.Path(), Files: pass.Files, Info: pass.Info}, fn) {
		return nil
	}
	var diags []Diagnostic
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeObj(pass.Info, call)
		if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
			return true
		}
		if obj.Name() != "Background" && obj.Name() != "TODO" {
			return true
		}
		diags = append(diags, Diagnostic{
			Pos: call.Pos(),
			Message: fmt.Sprintf("context.%s outside package main detaches work from its caller's lifetime; accept a ctx parameter (use context.WithoutCancel for deliberate detachment)",
				obj.Name()),
		})
		return true
	})
	return diags
}

// checkCtxFields applies check 3 to one file's type declarations.
func checkCtxFields(pass *Pass, file *ast.File) []Diagnostic {
	var diags []Diagnostic
	ast.Inspect(file, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok {
			return true
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			return true
		}
		for _, f := range st.Fields.List {
			t := pass.Info.TypeOf(f.Type)
			if t == nil {
				continue
			}
			named := namedOf(t)
			if named == nil {
				continue
			}
			o := named.Obj()
			if o.Pkg() != nil && o.Pkg().Path() == "context" && o.Name() == "Context" {
				diags = append(diags, Diagnostic{
					Pos: f.Pos(),
					Message: fmt.Sprintf("struct %s stores a context.Context in a field; contexts are call-scoped — pass ctx as the first parameter instead",
						ts.Name.Name),
				})
			}
		}
		return true
	})
	return diags
}
