package lint_test

import (
	"path/filepath"
	"testing"

	"flowcube/internal/lint"
	"flowcube/internal/lint/linttest"
)

// TestAnalyzers runs every analyzer over its testdata package, checking the
// findings against the // want annotations (and that allowed/suppressed
// cases stay silent).
func TestAnalyzers(t *testing.T) {
	for _, a := range lint.All() {
		t.Run(a.Name, func(t *testing.T) {
			linttest.Run(t, filepath.Join("testdata", "src", a.Name), a)
		})
	}
}

// TestModuleRoot sanity-checks module discovery from a nested directory.
func TestModuleRoot(t *testing.T) {
	root, mod, err := lint.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	if mod != "flowcube" {
		t.Errorf("module path = %q, want flowcube", mod)
	}
	if filepath.Base(root) == "lint" {
		t.Errorf("module root %q should be above internal/lint", root)
	}
}
