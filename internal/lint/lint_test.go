package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"flowcube/internal/lint"
	"flowcube/internal/lint/linttest"
)

// TestAnalyzers runs every analyzer over its testdata package, checking the
// findings against the // want annotations (and that allowed/suppressed
// cases stay silent).
func TestAnalyzers(t *testing.T) {
	for _, a := range lint.All() {
		t.Run(a.Name, func(t *testing.T) {
			linttest.Run(t, filepath.Join("testdata", "src", a.Name), a)
		})
	}
}

// TestLockBlockCrossPackageFacts is the acceptance test for phase-1 facts:
// the lockblock fixture holds a mutex across a call whose blocking lives in
// a different package (testdata/lockblock/dep). With facts the finding
// appears; with facts disabled the same fixture is silent, proving the
// diagnosis comes from cross-package fact flow and not from anything
// visible in the reporting package.
func TestLockBlockCrossPackageFacts(t *testing.T) {
	dir := filepath.Join("testdata", "src", "lockblock")
	pkgs, err := lint.LoadFixture(dir, "flowcube/internal/lint/testdata/lockblock")
	if err != nil {
		t.Fatal(err)
	}
	withFacts := lint.Run(pkgs, []*lint.Analyzer{lint.LockBlock})
	crossPkg := false
	for _, f := range withFacts {
		if strings.Contains(f.Message, "testdata/lockblock/dep.Fetch") {
			crossPkg = true
		}
	}
	if !crossPkg {
		t.Errorf("with facts: no finding names the cross-package callee dep.Fetch; got %v", withFacts)
	}
	if got := lint.RunWithFacts(pkgs, []*lint.Analyzer{lint.LockBlock}, nil); len(got) != 0 {
		t.Errorf("with facts disabled, lockblock must report nothing; got %v", got)
	}
}

// TestFactPropagation pins the phase-1 table down on the lockblock fixture:
// direct stdlib blocking is classified at the callee, propagates to
// module-internal callers across the package boundary, and the exported
// table is byte-deterministic.
func TestFactPropagation(t *testing.T) {
	dir := filepath.Join("testdata", "src", "lockblock")
	pkgs, err := lint.LoadFixture(dir, "flowcube/internal/lint/testdata/lockblock")
	if err != nil {
		t.Fatal(err)
	}
	table := lint.ComputeFacts(pkgs)

	fetch := table.ByKey("flowcube/internal/lint/testdata/lockblock/dep.Fetch")
	if fetch == nil || fetch.Blocks&lint.BlockNet == 0 {
		t.Fatalf("dep.Fetch fact = %+v, want blocks: net", fetch)
	}
	quick := table.ByKey("flowcube/internal/lint/testdata/lockblock/dep.Quick")
	if quick == nil || quick.Blocks != 0 {
		t.Errorf("dep.Quick fact = %+v, want blocks: none", quick)
	}
	// refresh blocks only via its cross-package callee.
	refresh := table.ByKey("flowcube/internal/lint/testdata/lockblock.(*cache).refresh")
	if refresh == nil || refresh.Blocks&lint.BlockNet == 0 {
		t.Fatalf("(*cache).refresh fact = %+v, want propagated blocks: net", refresh)
	}
	if !strings.Contains(refresh.BlockedBy, "dep.Fetch") {
		t.Errorf("(*cache).refresh BlockedBy = %q, want the dep.Fetch call chain", refresh.BlockedBy)
	}

	if a, b := lint.FormatFacts(table), lint.FormatFacts(lint.ComputeFacts(pkgs)); a != b {
		t.Errorf("FormatFacts is not deterministic across recomputation:\n%s\n---\n%s", a, b)
	}
}

// TestModuleRoot sanity-checks module discovery from a nested directory.
func TestModuleRoot(t *testing.T) {
	root, mod, err := lint.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	if mod != "flowcube" {
		t.Errorf("module path = %q, want flowcube", mod)
	}
	if filepath.Base(root) == "lint" {
		t.Errorf("module root %q should be above internal/lint", root)
	}
}
