package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// bodyclose: every *http.Response produced by a call must have its Body
// closed, or one slow/leaky fan-out path exhausts the router's connection
// pool. The check is per function and ownership-based rather than fully
// path-sensitive: a response variable must either reach a Body.Close (call
// or defer, anywhere in the function — the repo convention is `defer
// resp.Body.Close()` immediately after the error check) or visibly hand
// ownership away (returned, passed as a call argument, stored into a
// struct field or slice/map element). A response assigned to the blank
// identifier, or a response-returning call whose result is discarded
// outright, is always a leak.

// BodyClose flags http.Response bodies that are neither closed nor handed
// off in the producing function.
var BodyClose = &Analyzer{
	Name: "bodyclose",
	Doc:  "flags *http.Response values whose Body is neither closed nor handed off",
	Run:  runBodyClose,
}

func runBodyClose(pass *Pass) []Diagnostic {
	var diags []Diagnostic
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				diags = append(diags, checkBodyClose(pass, body)...)
			}
			return true
		})
	}
	return diags
}

// responseType reports whether t is *net/http.Response.
func responseType(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named := namedOf(p.Elem())
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Response"
}

// callYieldsResponse reports whether a call's result (single or first tuple
// element) is *http.Response.
func callYieldsResponse(pass *Pass, call *ast.CallExpr) bool {
	t := pass.Info.TypeOf(call)
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return false
		}
		t = tup.At(0).Type()
	}
	return responseType(t)
}

func checkBodyClose(pass *Pass, body *ast.BlockStmt) []Diagnostic {
	var diags []Diagnostic
	// Pass 1: response-producing assignments in this body (not nested
	// literals — they run their own check).
	type respVar struct {
		obj types.Object
		pos ast.Node
	}
	var vars []respVar
	inspectShallow(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
			if !ok || !callYieldsResponse(pass, call) {
				return true
			}
			id, ok := st.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			if id.Name == "_" {
				diags = append(diags, Diagnostic{
					Pos:     st.Pos(),
					Message: "http.Response discarded to _; its Body must be closed (read it into a variable and defer resp.Body.Close())",
				})
				return true
			}
			obj := pass.Info.Defs[id]
			if obj == nil {
				obj = pass.Info.Uses[id]
			}
			if obj != nil {
				vars = append(vars, respVar{obj: obj, pos: st})
			}
		case *ast.ExprStmt:
			call, ok := ast.Unparen(st.X).(*ast.CallExpr)
			if ok && callYieldsResponse(pass, call) {
				diags = append(diags, Diagnostic{
					Pos:     st.Pos(),
					Message: "http.Response result discarded; its Body must be closed (assign it and defer resp.Body.Close())",
				})
			}
		}
		return true
	})
	if len(vars) == 0 {
		return diags
	}
	// Pass 2: for each response variable, look for a Close or a hand-off
	// anywhere in the body, nested literals included (a deferred closure
	// closing the body counts).
	for _, v := range vars {
		if respClosedOrEscapes(pass, body, v.obj) {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos: v.pos.Pos(),
			Message: fmt.Sprintf("%s.Body is never closed on some path; defer %s.Body.Close() after the error check or hand the response off",
				v.obj.Name(), v.obj.Name()),
		})
	}
	return diags
}

// respClosedOrEscapes reports whether obj's Body reaches a Close, or obj
// itself is handed off (returned, passed as an argument, stored).
func respClosedOrEscapes(pass *Pass, body *ast.BlockStmt, obj types.Object) bool {
	usesObj := func(e ast.Expr) bool {
		id := rootIdent(e)
		return id != nil && (pass.Info.Uses[id] == obj || pass.Info.Defs[id] == obj)
	}
	done := false
	ast.Inspect(body, func(n ast.Node) bool {
		if done {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			// resp.Body.Close() — selector chain Close(Body(resp)).
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Close" {
				if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok && inner.Sel.Name == "Body" && usesObj(inner.X) {
					done = true
					return false
				}
			}
			// Hand-off: resp passed as an argument.
			for _, arg := range x.Args {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok && (pass.Info.Uses[id] == obj) {
					done = true
					return false
				}
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if usesObj(r) {
					done = true
					return false
				}
			}
		case *ast.AssignStmt:
			// Hand-off: resp (or resp.Body) stored somewhere other than its
			// own defining assignment.
			for i, rhs := range x.Rhs {
				if id, ok := ast.Unparen(rhs).(*ast.Ident); ok && pass.Info.Uses[id] == obj {
					if i < len(x.Lhs) {
						if lid, ok := x.Lhs[i].(*ast.Ident); ok && lid.Name == "_" {
							continue
						}
					}
					done = true
					return false
				}
			}
		}
		return true
	})
	return done
}
