package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// goroleak flags go statements that can leak: the spawned body blocks —
// a channel operation on a possibly-unbuffered channel, a select without
// default, or a call whose fact (or stdlib classification) says it blocks —
// and nothing ties the goroutine's lifetime to anyone: no context in scope
// (a ctx.Done select, a cancellable call, a CancelFunc to fire), no
// sync.WaitGroup, no buffered-channel escape. The motivating target is the
// scatter-gather layer in internal/cluster: a per-shard fan-out goroutine
// that blocks on a dead peer with no cancellation leaks one goroutine per
// request per dead shard, forever.
//
// Escape hatches, checked over the whole spawned body:
//
//   - any reference to a context.Context or context.CancelFunc (covers
//     <-ctx.Done(), passing ctx into the blocking call, and driving a
//     cancel);
//   - any reference to a sync.WaitGroup (structured concurrency: someone
//     joins this goroutine);
//   - a select with a default clause (the body polls instead of parking);
//   - channel operations whose channel is provably buffered (made with a
//     constant capacity > 0 in the enclosing declaration);
//   - a blocking call whose result is sent directly to a buffered channel
//     (`errc <- srv.Serve(ln)`): the goroutine cannot outlive the call and
//     its completion is observable, so lifetime belongs to the channel's
//     owner.
//
// go statements targeting named functions are checked against the callee's
// fact: spawning a blocking function without handing it a context or
// WaitGroup argument is flagged the same way.

// GoroLeak flags goroutines that can block forever with no cancellation,
// join, or buffered-channel escape.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc:  "flags go statements whose body can block forever with no ctx.Done/WaitGroup/buffered-channel escape",
	Run:  runGoroLeak,
}

func runGoroLeak(pass *Pass) []Diagnostic {
	var diags []Diagnostic
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			buffered := bufferedChans(pass, fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if d, leak := checkGoStmt(pass, g, buffered); leak {
					diags = append(diags, d)
				}
				return true
			})
			return true
		})
	}
	return diags
}

// bufferedChans collects channel objects made with a constant capacity > 0
// anywhere in the declaration body.
func bufferedChans(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	record := func(lhs ast.Expr, rhs ast.Expr) {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || len(call.Args) < 2 {
			return
		}
		fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || fun.Name != "make" {
			return
		}
		if _, isChan := deref(pass.Info.TypeOf(call.Args[0])).(*types.Chan); !isChan {
			if _, isChan := pass.Info.TypeOf(call.Args[0]).Underlying().(*types.Chan); !isChan {
				return
			}
		}
		tv, ok := pass.Info.Types[call.Args[1]]
		if !ok || tv.Value == nil {
			return
		}
		if v, exact := constant.Int64Val(tv.Value); !exact || v <= 0 {
			return
		}
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		if obj := pass.Info.Defs[id]; obj != nil {
			out[obj] = true
		} else if obj := pass.Info.Uses[id]; obj != nil {
			out[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) == len(st.Rhs) {
				for i := range st.Lhs {
					record(st.Lhs[i], st.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(st.Names) == len(st.Values) {
				for i := range st.Names {
					record(st.Names[i], st.Values[i])
				}
			}
		}
		return true
	})
	return out
}

// checkGoStmt decides whether one go statement leaks.
func checkGoStmt(pass *Pass, g *ast.GoStmt, buffered map[types.Object]bool) (Diagnostic, bool) {
	lit, isLit := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !isLit {
		return checkGoCall(pass, g)
	}
	if hasEscapeToken(pass, lit.Body) {
		return Diagnostic{}, false
	}
	cause := firstBlockingOp(pass, lit.Body, buffered)
	if cause == "" {
		return Diagnostic{}, false
	}
	return Diagnostic{
		Pos: g.Pos(),
		Message: fmt.Sprintf("goroutine can block forever on %s with no ctx.Done/WaitGroup/buffered-channel escape; bound its lifetime (context, WaitGroup, or buffer the channel)",
			cause),
	}, true
}

// checkGoCall handles `go f(args)` for a named f: leak when f's fact blocks
// and no argument hands it a lifetime (context or WaitGroup).
func checkGoCall(pass *Pass, g *ast.GoStmt) (Diagnostic, bool) {
	obj, _ := calleeObj(pass.Info, g.Call).(*types.Func)
	fact := pass.Facts.Lookup(obj)
	if fact == nil || fact.Blocks == 0 {
		return Diagnostic{}, false
	}
	for _, arg := range g.Call.Args {
		t := pass.Info.TypeOf(arg)
		if isContextType(t) || isWaitGroupRef(t) {
			return Diagnostic{}, false
		}
	}
	return Diagnostic{
		Pos: g.Pos(),
		Message: fmt.Sprintf("goroutine spawns %s, which blocks (%s), with no context or WaitGroup argument to bound its lifetime",
			fact.Key, fact.Blocks),
	}, true
}

// hasEscapeToken scans a spawned body for anything that ties the
// goroutine's lifetime to an owner.
func hasEscapeToken(pass *Pass, body *ast.BlockStmt) bool {
	escape := false
	ast.Inspect(body, func(n ast.Node) bool {
		if escape {
			return false
		}
		switch x := n.(type) {
		case *ast.Ident:
			obj := pass.Info.Uses[x]
			if obj == nil {
				return true
			}
			if isContextType(obj.Type()) || isWaitGroupRef(obj.Type()) {
				escape = true
				return false
			}
		case *ast.SelectStmt:
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					escape = true
					return false
				}
			}
		}
		return true
	})
	return escape
}

// isWaitGroupRef reports whether t is sync.WaitGroup or *sync.WaitGroup.
func isWaitGroupRef(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named := namedOf(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// firstBlockingOp returns a description of the first op in the spawned body
// that can block indefinitely, or "".
func firstBlockingOp(pass *Pass, body *ast.BlockStmt, buffered map[types.Object]bool) string {
	cause := ""
	chanBuffered := func(e ast.Expr) bool {
		id := rootIdent(e)
		if id == nil {
			return false
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			obj = pass.Info.Defs[id]
		}
		return obj != nil && buffered[obj]
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if cause != "" {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			return false // nested goroutines are their own diagnostics
		case *ast.SendStmt:
			if !chanBuffered(x.Chan) {
				cause = "a channel send"
				return false
			}
			// The async-result idiom: `errc <- blockingCall()` on a buffered
			// channel is an escaped send AND an escaped call — the goroutine
			// cannot outlive the call, and its completion is observable on
			// the channel.
			if _, ok := ast.Unparen(x.Value).(*ast.CallExpr); ok {
				return false
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && !chanBuffered(x.X) {
				cause = "a channel receive"
			}
		case *ast.RangeStmt:
			if t := pass.Info.TypeOf(x.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan && !chanBuffered(x.X) {
					cause = "a channel range"
				}
			}
		case *ast.SelectStmt:
			// A select with default never parks; one without is covered by
			// its comm-clause channel ops when they are visible here.
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					return false
				}
			}
		case *ast.CallExpr:
			obj := calleeObj(pass.Info, x)
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			if class, op := stdlibBlockClass(obj.Pkg().Path(), obj.Name()); class != 0 {
				cause = op
				return false
			}
			if fobj, ok := obj.(*types.Func); ok {
				if fact := pass.Facts.Lookup(fobj); fact != nil && fact.Blocks != 0 {
					cause = fact.Key + " (blocks: " + fact.Blocks.String() + ")"
					return false
				}
			}
		}
		return true
	})
	return cause
}
