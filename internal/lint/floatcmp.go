package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// floatcmp polices equality on floating-point values. The flowcube measures
// are floats through and through — KL divergence, similarity ϕ, deviation
// maxima, mean durations — and `==`/`!=` on computed floats silently
// depends on rounding (and, before mapdet's fixes, on map iteration order).
// The project rule:
//
//   - computed floats are compared with stats.AlmostEqual (epsilon) or
//     restructured to avoid equality entirely (sort comparators use
//     two-sided `<`);
//   - comparisons against a *named constant* are allowed: sentinels like
//     core.SimilarityUnknown are assigned verbatim, never computed, so
//     exact equality is their contract — and writing `x == -1` instead of
//     `x == SimilarityUnknown` is exactly the bug this analyzer surfaces;
//   - comparisons against literal zero are allowed: they test "was never
//     touched / exact annihilation", which is well-defined in IEEE 754 and
//     pervasive in guard clauses (`if total == 0 { return 0 }`).
//
// Everything else is flagged.

// FloatCmp flags == and != on floating-point operands.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "flags ==/!= on floating-point values; compare with stats.AlmostEqual or a named sentinel constant",
	Run:  runFloatCmp,
}

func runFloatCmp(pass *Pass) []Diagnostic {
	var diags []Diagnostic
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.Info.TypeOf(bin.X)) && !isFloat(pass.Info.TypeOf(bin.Y)) {
				return true
			}
			if floatCmpExempt(pass, bin.X) || floatCmpExempt(pass, bin.Y) {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos: bin.Pos(),
				Message: fmt.Sprintf(
					"floating-point %s comparison; use stats.AlmostEqual (or compare against a named sentinel constant)",
					bin.Op),
			})
			return true
		})
	}
	return diags
}

// floatCmpExempt reports whether the operand makes an exact comparison
// legitimate: it is a reference to a named constant, or the literal zero.
func floatCmpExempt(pass *Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	// Named constant reference (sentinels: core.SimilarityUnknown, etc.).
	switch x := e.(type) {
	case *ast.Ident:
		if _, isConst := pass.Info.Uses[x].(*types.Const); isConst {
			return true
		}
	case *ast.SelectorExpr:
		if _, isConst := pass.Info.Uses[x.Sel].(*types.Const); isConst {
			return true
		}
	}
	// Literal (or constant-folded) exact zero.
	if tv, ok := pass.Info.Types[e]; ok && tv.Value != nil {
		if constant.Sign(tv.Value) == 0 {
			return true
		}
	}
	return false
}
