// Clean-path fixtures for bodyclose: closes and every recognized hand-off.
// Any finding in this file fails the golden test.
package bodyclose

import "net/http"

func closed(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return nil
}

func closedInClosure(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer func() {
		resp.Body.Close()
	}()
	return nil
}

// handedOff transfers ownership to the caller.
func handedOff(url string) (*http.Response, error) {
	resp, err := http.Get(url)
	return resp, err
}

// passedAlong transfers ownership to drain, which closes.
func passedAlong(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	return drain(resp)
}

func drain(resp *http.Response) error {
	defer resp.Body.Close()
	return nil
}

type holder struct {
	resp *http.Response
}

// stored transfers ownership into a struct the caller owns.
func stored(url string) (*holder, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	h := &holder{}
	h.resp = resp
	return h, nil
}

func (h *holder) close() error {
	if h.resp != nil {
		return h.resp.Body.Close()
	}
	return nil
}
