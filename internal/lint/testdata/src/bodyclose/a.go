// Seeded-bad fixtures for bodyclose: response bodies that never reach a
// Close and are never handed off.
package bodyclose

import "net/http"

func leak(url string) error {
	resp, err := http.Get(url) // want `resp\.Body is never closed on some path`
	if err != nil {
		return err
	}
	_ = resp.Status
	return nil
}

func discardExpr(url string) {
	http.Get(url) // want `http\.Response result discarded; its Body must be closed`
}

func discardBlank(url string) {
	_, _ = http.Get(url) // want `http\.Response discarded to _; its Body must be closed`
}

func leakRenamed(url string) error {
	r, err := http.Get(url) // want `r\.Body is never closed on some path`
	if err != nil {
		return err
	}
	if r.StatusCode != http.StatusOK {
		return nil
	}
	return nil
}
